package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadCSVBasic(t *testing.T) {
	in := `# comment line
7,3,100
3 9 50
7	9	200
% another comment

9;3;150
`
	tr, err := ReadCSV(strings.NewReader(in), "test")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 4 {
		t.Fatalf("edges = %d, want 4", tr.NumEdges())
	}
	if tr.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3 (ids 7,3,9 remapped)", tr.NumNodes())
	}
	// Sorted by time: 50, 100, 150, 200. First edge (time 50) touches
	// original 3 and 9 → new ids 0 and 1.
	if tr.Edges[0].Time != 50 || tr.Edges[0].U != 0 || tr.Edges[0].V != 1 {
		t.Fatalf("first edge = %+v", tr.Edges[0])
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVTwoColumns(t *testing.T) {
	// Without timestamps all edges land at t=0, still a valid static trace.
	tr, err := ReadCSV(strings.NewReader("0,1\n1,2\n"), "static")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 2 || tr.Edges[0].Time != 0 {
		t.Fatalf("trace = %+v", tr.Edges)
	}
}

func TestReadCSVFloatTimestamps(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("0,1,1234.75\n"), "float")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Edges[0].Time != 1234 {
		t.Fatalf("time = %d", tr.Edges[0].Time)
	}
}

func TestReadCSVSelfLoopsDropped(t *testing.T) {
	tr, err := ReadCSV(strings.NewReader("0,0,5\n0,1,6\n"), "loops")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", tr.NumEdges())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"only comments": "# nothing\n",
		"single column": "42\n",
		"bad source":    "x,1,2\n",
		"bad target":    "1,y,2\n",
		"bad time":      "1,2,zebra\n",
		"negative id":   "-1,2,3\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), name); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := testTrace()
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != orig.NumEdges() {
		t.Fatalf("edges = %d, want %d", got.NumEdges(), orig.NumEdges())
	}
	// Edge times survive; IDs are remapped but the multiset of times and
	// the per-snapshot structure must match.
	for i := range got.Edges {
		if got.Edges[i].Time != orig.Edges[i].Time {
			t.Fatalf("edge %d time %d != %d", i, got.Edges[i].Time, orig.Edges[i].Time)
		}
	}
	a := orig.SnapshotAtEdge(orig.NumEdges())
	b := got.SnapshotAtEdge(got.NumEdges())
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("snapshot edges %d != %d", a.NumEdges(), b.NumEdges())
	}
}

// Property: CSV round trip preserves edge count, node count and the degree
// multiset for random traces.
func TestCSVRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var edges []Edge
		tm := int64(0)
		seen := map[uint64]bool{}
		for i := 0; i < 30; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			key := uint64(uint32(min(u, v)))<<32 | uint64(uint32(max(u, v)))
			if seen[key] {
				continue
			}
			seen[key] = true
			tm += int64(rng.Intn(5))
			edges = append(edges, Edge{U: u, V: v, Time: tm})
		}
		if len(edges) == 0 {
			return true
		}
		orig := &Trace{Name: "q", Arrival: make([]int64, n), Edges: edges}
		var buf bytes.Buffer
		if err := orig.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf, "q")
		if err != nil {
			return false
		}
		if got.NumEdges() != len(edges) {
			return false
		}
		ga := orig.SnapshotAtEdge(len(edges))
		gb := got.SnapshotAtEdge(len(edges))
		da := degreeHistogram(ga)
		db := degreeHistogram(gb)
		if len(da) != len(db) {
			return false
		}
		for k, v := range da {
			if db[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func degreeHistogram(g *Graph) map[int]int {
	h := map[int]int{}
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.Degree(NodeID(u)); d > 0 {
			h[d]++
		}
	}
	return h
}

package graph

import (
	"testing"
)

func csrTestTrace() *Trace {
	t := &Trace{Name: "csr"}
	// A small deterministic growth pattern with hubs, isolated arrivals via
	// same-timestamp batches, and duplicate edges (dropped by Build).
	edges := [][3]int64{
		{0, 1, 10}, {0, 2, 10}, {1, 2, 11}, {2, 3, 12}, {0, 3, 12},
		{3, 4, 13}, {4, 5, 13}, {0, 5, 14}, {1, 5, 14}, {2, 5, 15},
		{5, 6, 16}, {6, 7, 16}, {0, 7, 17}, {3, 7, 18}, {1, 4, 19},
	}
	for _, e := range edges {
		if _, err := t.Append(NodeID(e[0]), NodeID(e[1]), e[2]); err != nil {
			panic(err)
		}
	}
	return t
}

func requireSameGraph(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() || got.Time != want.Time {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for u := 0; u < want.NumNodes(); u++ {
		a, b := got.Neighbors(NodeID(u)), want.Neighbors(NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("%s: node %d degree %d, want %d", label, u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: node %d entry %d = %d, want %d", label, u, i, a[i], b[i])
			}
		}
	}
}

func TestCSRRoundTrip(t *testing.T) {
	tr := csrTestTrace()
	for _, m := range []int{0, 1, 7, tr.NumEdges()} {
		g := tr.SnapshotAtEdge(m)
		rowptr, cols := g.CSR()
		back, err := FromCSR(g.NumNodes(), rowptr, cols, g.NumEdges(), g.Time)
		if err != nil {
			t.Fatalf("FromCSR at %d: %v", m, err)
		}
		requireSameGraph(t, back, g, "round trip")
	}
}

func TestCSRRoundTripPaged(t *testing.T) {
	// Paged snapshots (incremental emissions) must dump identically to
	// flat ones.
	tr := csrTestTrace()
	b := NewIncrementalBuilder(tr)
	g := b.AtEdge(tr.NumEdges())
	rowptr, cols := g.CSR()
	back, err := FromCSR(g.NumNodes(), rowptr, cols, g.NumEdges(), g.Time)
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	requireSameGraph(t, back, tr.SnapshotAtEdge(tr.NumEdges()), "paged round trip")
}

func TestFromCSRRejectsMalformed(t *testing.T) {
	g := csrTestTrace().SnapshotAtEdge(15)
	rowptr, cols := g.CSR()
	n, e, tm := g.NumNodes(), g.NumEdges(), g.Time

	cases := []struct {
		name   string
		mutate func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int)
	}{
		{"short rowptr", func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int) {
			return n, rp[:n], cs, e
		}},
		{"nonzero origin", func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int) {
			rp[0] = 1
			return n, rp, cs, e
		}},
		{"count mismatch", func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int) {
			return n, rp, cs, e + 1
		}},
		{"non-monotone rowptr", func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int) {
			rp[1], rp[2] = rp[2]+1, rp[1]
			rp[1] = rp[2] + 1
			return n, rp, cs, e
		}},
		{"out of range entry", func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int) {
			cs[0] = NodeID(n)
			return n, rp, cs, e
		}},
		{"self loop", func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int) {
			cs[rp[3]] = 3
			return n, rp, cs, e
		}},
		{"unsorted row", func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int) {
			cs[0], cs[1] = cs[1], cs[0]
			return n, rp, cs, e
		}},
		{"asymmetric", func(rp []int64, cs []NodeID) (int, []int64, []NodeID, int) {
			// Retarget 0's entry for node 7 to node 6, which does not point
			// back (row stays sorted: [... 5, 6]).
			row := cs[rp[0]:rp[1]]
			row[len(row)-1] = 6
			return n, rp, cs, e
		}},
	}
	for _, tc := range cases {
		rp := append([]int64(nil), rowptr...)
		cs := append([]NodeID(nil), cols...)
		nn, nrp, ncs, ne := tc.mutate(rp, cs)
		if _, err := FromCSR(nn, nrp, ncs, ne, tm); err == nil {
			t.Errorf("%s: FromCSR accepted malformed input", tc.name)
		}
	}
}

func TestIncrementalBuilderFromMatchesOffline(t *testing.T) {
	tr := csrTestTrace()
	total := tr.NumEdges()
	for _, m := range []int{0, 1, 6, 10, total} {
		seed := tr.SnapshotAtEdge(m)
		// Route through CSR to mimic the checkpoint-recovery path exactly.
		rowptr, cols := seed.CSR()
		loaded, err := FromCSR(seed.NumNodes(), rowptr, cols, seed.NumEdges(), seed.Time)
		if err != nil {
			t.Fatalf("FromCSR at %d: %v", m, err)
		}
		b := NewIncrementalBuilderFrom(tr, loaded, m)
		for k := m; k <= total; k += 3 {
			got := b.AtEdge(k)
			requireSameGraph(t, got, tr.SnapshotAtEdge(k), "seeded builder")
		}
		// The seed snapshot must be untouched: copy-on-write protects the
		// (possibly memory-mapped) source rows.
		requireSameGraph(t, loaded, seed, "seed immutability")
	}
}

func TestIncrementalBuilderFromDoesNotMutateColsBuffer(t *testing.T) {
	tr := csrTestTrace()
	m := 8
	seed := tr.SnapshotAtEdge(m)
	rowptr, cols := seed.CSR()
	orig := append([]NodeID(nil), cols...)
	loaded, err := FromCSR(seed.NumNodes(), rowptr, cols, seed.NumEdges(), seed.Time)
	if err != nil {
		t.Fatal(err)
	}
	b := NewIncrementalBuilderFrom(tr, loaded, m)
	b.AtEdge(tr.NumEdges())
	for i := range cols {
		if cols[i] != orig[i] {
			t.Fatalf("cols[%d] mutated from %d to %d — builder wrote through the shared buffer", i, orig[i], cols[i])
		}
	}
}

package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses a dynamic-network trace from the common three-column text
// form real datasets ship in:
//
//	u,v,timestamp
//
// Separators may be commas, tabs or runs of spaces; lines starting with
// '#' or '%' are comments. Node IDs are arbitrary non-negative integers and
// are remapped densely in arrival order; edges are sorted by timestamp.
// This is the interchange path for loading real traces (e.g. the public
// Facebook New Orleans links file) into the toolkit.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rawEdge struct {
		u, v NodeID
		t    int64
	}
	var raws []rawEdge
	// External IDs are remapped densely at parse time (first-seen order);
	// Sort below re-derives the final arrival-order mapping. Allocating
	// Arrival at maxID+1 instead would let a single hostile line like
	// "0 2147483646" demand a multi-gigabyte slice (FuzzTraceParse).
	idmap := make(map[int64]NodeID)
	dense := func(id int64) NodeID {
		d, ok := idmap[id]
		if !ok {
			d = NodeID(len(idmap))
			idmap[id] = d
		}
		return d
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := splitFlexible(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: %s:%d: need at least u and v, got %q", name, lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: %s:%d: bad source id %q", name, lineNo, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: %s:%d: bad target id %q", name, lineNo, fields[1])
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: %s:%d: negative node id", name, lineNo)
		}
		var t int64
		if len(fields) >= 3 && fields[2] != `\N` {
			// Some datasets use floating-point epochs.
			tf, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: %s:%d: bad timestamp %q", name, lineNo, fields[2])
			}
			t = int64(tf)
		}
		if u == v {
			continue // self loops carry no link-prediction signal
		}
		raws = append(raws, rawEdge{u: dense(u), v: dense(v), t: t})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read %s: %w", name, err)
	}
	if len(raws) == 0 {
		return nil, fmt.Errorf("graph: %s contains no edges", name)
	}
	loose := &Trace{Name: name, Arrival: make([]int64, len(idmap))}
	for _, e := range raws {
		loose.Edges = append(loose.Edges, Edge{U: e.u, V: e.v, Time: e.t})
	}
	// Sort remaps IDs densely in first-touch order and validates.
	out := loose.Sort()
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteCSV writes the trace as "u,v,timestamp" lines with a header comment.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# linkpred trace %q: %d nodes, %d edges\n", t.Name, t.NumNodes(), t.NumEdges()); err != nil {
		return err
	}
	for _, e := range t.Edges {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d\n", e.U, e.V, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// splitFlexible splits on commas, tabs, semicolons, or runs of spaces.
func splitFlexible(line string) []string {
	return strings.FieldsFunc(line, func(r rune) bool {
		return r == ',' || r == '\t' || r == ';' || r == ' '
	})
}

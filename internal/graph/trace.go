package graph

import (
	"bufio"
	"cmp"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"slices"
	"sort"
)

// Day is the number of seconds per day, the time unit used by the paper's
// temporal analysis (idle times, d-day windows, CN time gaps).
const Day int64 = 86400

// Trace is a full dynamic-network history: every link creation event with
// its timestamp, plus per-node arrival times. Edges are sorted by time.
type Trace struct {
	Name string
	// Arrival[v] is the time node v joined the network.
	Arrival []int64
	// Edges are link-creation events sorted by non-decreasing Time.
	Edges []Edge
}

// NumNodes returns the total number of nodes that ever appear in the trace.
func (t *Trace) NumNodes() int { return len(t.Arrival) }

// NumEdges returns the total number of link-creation events.
func (t *Trace) NumEdges() int { return len(t.Edges) }

// Duration returns the time span between the first and last edge.
func (t *Trace) Duration() int64 {
	if len(t.Edges) == 0 {
		return 0
	}
	return t.Edges[len(t.Edges)-1].Time - t.Edges[0].Time
}

// Validate checks trace invariants: edge endpoints within range, timestamps
// sorted, no self loops, arrival times non-decreasing in node ID, and no
// edge predating the arrival of either endpoint. The last two are the
// invariants nodesArrivedBy's binary search and the snapshot builders rely
// on — a trace violating them would make SnapshotAtEdge hand Build an edge
// whose endpoint exceeds the node count and panic, which is why loaders
// (including the fuzzed parsers) must reject such inputs here.
func (t *Trace) Validate() error {
	n := NodeID(len(t.Arrival))
	for i := 1; i < len(t.Arrival); i++ {
		if t.Arrival[i] < t.Arrival[i-1] {
			return fmt.Errorf("trace %q: node %d arrives at %d before node %d at %d; arrivals must be non-decreasing in ID",
				t.Name, i, t.Arrival[i], i-1, t.Arrival[i-1])
		}
	}
	prev := int64(math.MinInt64)
	for i, e := range t.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("trace %q: edge %d endpoint out of range: %v", t.Name, i, e)
		}
		if e.U == e.V {
			return fmt.Errorf("trace %q: edge %d is a self loop on node %d", t.Name, i, e.U)
		}
		if e.Time < prev {
			return fmt.Errorf("trace %q: edge %d out of time order (%d < %d)", t.Name, i, e.Time, prev)
		}
		if t.Arrival[e.U] > e.Time || t.Arrival[e.V] > e.Time {
			return fmt.Errorf("trace %q: edge %d at time %d predates an endpoint arrival (%d at %d, %d at %d)",
				t.Name, i, e.Time, e.U, t.Arrival[e.U], e.V, t.Arrival[e.V])
		}
		prev = e.Time
	}
	return nil
}

// Append adds one live edge event to the trace in place, maintaining every
// invariant Validate checks so the incremental snapshot builders stay safe:
// timestamps earlier than the last event are clamped forward (live streams
// deliver slightly out-of-order events; a sorted history cannot represent
// them), and endpoints at or beyond NumNodes extend the ID space densely
// with arrival set to the event time. It returns the edge as recorded.
// Callers own ID remapping (external IDs must already be dense) and
// synchronization — Append must not run concurrently with readers of the
// trace, though snapshots already built from it are unaffected.
func (t *Trace) Append(u, v NodeID, tm int64) (Edge, error) {
	if u < 0 || v < 0 {
		return Edge{}, fmt.Errorf("trace %q: negative node id (%d, %d)", t.Name, u, v)
	}
	if u == v {
		return Edge{}, fmt.Errorf("trace %q: self loop on node %d", t.Name, u)
	}
	if n := len(t.Edges); n > 0 && tm < t.Edges[n-1].Time {
		tm = t.Edges[n-1].Time
	}
	if top := int(max(u, v)); top >= len(t.Arrival) {
		arr := tm
		if n := len(t.Arrival); n > 0 && t.Arrival[n-1] > arr {
			// A declared arrival may postdate the clamped event time; keep
			// the per-ID monotonicity nodesArrivedBy requires.
			arr = t.Arrival[n-1]
		}
		for len(t.Arrival) <= top {
			t.Arrival = append(t.Arrival, arr)
		}
		// An endpoint whose arrival postdates the event would fail Validate;
		// clamp the event forward instead of rejecting it.
		if arr > tm {
			tm = arr
		}
	}
	if a := max(t.Arrival[u], t.Arrival[v]); a > tm {
		tm = a
	}
	e := Edge{U: u, V: v, Time: tm}
	t.Edges = append(t.Edges, e)
	return e, nil
}

// nodesArrivedBy returns the count of nodes with Arrival <= tm, relying on
// arrival times being non-decreasing in node ID (generators guarantee this;
// Sort normalizes loaded traces).
func (t *Trace) nodesArrivedBy(tm int64) int {
	return sort.Search(len(t.Arrival), func(i int) bool { return t.Arrival[i] > tm })
}

// SnapshotAtEdge builds the graph containing the first m edges of the trace
// and every node that has arrived by the m-th edge's timestamp.
func (t *Trace) SnapshotAtEdge(m int) *Graph {
	if m > len(t.Edges) {
		m = len(t.Edges)
	}
	var tm int64
	if m > 0 {
		tm = t.Edges[m-1].Time
	}
	g := Build(t.nodesArrivedBy(tm), t.Edges[:m])
	g.Time = tm
	return g
}

// SnapshotAtTime builds the graph of all edges with Time <= tm.
func (t *Trace) SnapshotAtTime(tm int64) *Graph {
	m := sort.Search(len(t.Edges), func(i int) bool { return t.Edges[i].Time > tm })
	g := Build(t.nodesArrivedBy(tm), t.Edges[:m])
	g.Time = tm
	return g
}

// SnapshotCut is one element of a constant-delta snapshot sequence: the
// number of trace edges included and the resulting snapshot time.
type SnapshotCut struct {
	EdgeCount int
	Time      int64
}

// Cuts returns the snapshot boundaries obtained by keeping the number of new
// edges per snapshot constant at delta, the paper's "snapshot delta"
// discretization (§3.2). The first cut is at delta edges; the final partial
// snapshot is dropped so every transition has exactly delta new edges.
func (t *Trace) Cuts(delta int) []SnapshotCut {
	if delta <= 0 {
		return nil
	}
	var cuts []SnapshotCut
	for m := delta; m <= len(t.Edges); m += delta {
		cuts = append(cuts, SnapshotCut{EdgeCount: m, Time: t.Edges[m-1].Time})
	}
	return cuts
}

// Sequence materializes the snapshot sequence (G_1 ... G_T) for the given
// delta, extending each snapshot from the previous one instead of
// re-sorting every edge prefix. Snapshots never share mutable state and may
// be used concurrently.
func (t *Trace) Sequence(delta int) []*Graph {
	cuts := t.Cuts(delta)
	gs := make([]*Graph, len(cuts))
	b := NewIncrementalBuilder(t)
	for i, c := range cuts {
		gs[i] = b.AtEdge(c.EdgeCount)
	}
	return gs
}

// NewEdgesBetween returns the edges created strictly after snapshot cut a
// and up to cut b, i.e. the ground-truth links for the transition G_a → G_b.
func (t *Trace) NewEdgesBetween(a, b SnapshotCut) []Edge {
	return t.Edges[a.EdgeCount:b.EdgeCount]
}

// Sort orders edges by time (stable) and re-derives arrival order so that
// node IDs are dense in arrival order. It returns a remapped trace; the
// receiver is left unchanged. Used when loading external traces whose IDs
// are arbitrary.
func (t *Trace) Sort() *Trace {
	edges := make([]Edge, len(t.Edges))
	copy(edges, t.Edges)
	slices.SortStableFunc(edges, func(a, b Edge) int { return cmp.Compare(a.Time, b.Time) })

	// First-touch remap: a node's arrival is its declared arrival if known,
	// otherwise the time of its first edge.
	remap := make([]NodeID, len(t.Arrival))
	for i := range remap {
		remap[i] = -1
	}
	var arrival []int64
	next := NodeID(0)
	touch := func(v NodeID, tm int64) NodeID {
		if remap[v] < 0 {
			remap[v] = next
			next++
			a := tm
			if int(v) < len(t.Arrival) && t.Arrival[v] != 0 && t.Arrival[v] <= tm {
				a = t.Arrival[v]
			}
			arrival = append(arrival, a)
		}
		return remap[v]
	}
	out := make([]Edge, len(edges))
	for i, e := range edges {
		out[i] = Edge{U: touch(e.U, e.Time), V: touch(e.V, e.Time), Time: e.Time}
	}
	// Arrival times must be non-decreasing in the remapped IDs for
	// nodesArrivedBy; first-touch order guarantees it only if declared
	// arrivals are consistent, so enforce monotonicity.
	for i := 1; i < len(arrival); i++ {
		if arrival[i] < arrival[i-1] {
			arrival[i] = arrival[i-1]
		}
	}
	return &Trace{Name: t.Name, Arrival: arrival, Edges: out}
}

const traceMagic = "LPTRACE1"

// WriteTo serializes the trace in a compact binary format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if _, err := bw.WriteString(traceMagic); err != nil {
		return n, err
	}
	n += int64(len(traceMagic))
	if err := write(int32(len(t.Name))); err != nil {
		return n, err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return n, err
	}
	n += int64(len(t.Name))
	if err := write(int64(len(t.Arrival))); err != nil {
		return n, err
	}
	if err := write(t.Arrival); err != nil {
		return n, err
	}
	if err := write(int64(len(t.Edges))); err != nil {
		return n, err
	}
	for _, e := range t.Edges {
		if err := write(e.U); err != nil {
			return n, err
		}
		if err := write(e.V); err != nil {
			return n, err
		}
		if err := write(e.Time); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("read trace header: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, errors.New("not a linkpred trace file")
	}
	var nameLen int32
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen < 0 || nameLen > 1<<20 {
		return nil, fmt.Errorf("implausible trace name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var nNodes int64
	if err := binary.Read(br, binary.LittleEndian, &nNodes); err != nil {
		return nil, err
	}
	if nNodes < 0 || nNodes > 1<<32 {
		return nil, fmt.Errorf("implausible node count %d", nNodes)
	}
	// Declared counts may be corrupted, so grow buffers incrementally in
	// bounded chunks: a lying header then fails with a read error instead
	// of a giant up-front allocation.
	const chunk = 1 << 18
	arrival := make([]int64, 0, min(nNodes, chunk))
	for int64(len(arrival)) < nNodes {
		n := min(nNodes-int64(len(arrival)), chunk)
		buf := make([]int64, n)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("read arrivals: %w", err)
		}
		arrival = append(arrival, buf...)
	}
	var nEdges int64
	if err := binary.Read(br, binary.LittleEndian, &nEdges); err != nil {
		return nil, err
	}
	if nEdges < 0 || nEdges > 1<<40 {
		return nil, fmt.Errorf("implausible edge count %d", nEdges)
	}
	edges := make([]Edge, 0, min(nEdges, chunk))
	for int64(len(edges)) < nEdges {
		var rec struct {
			U, V NodeID
			Time int64
		}
		if err := binary.Read(br, binary.LittleEndian, &rec); err != nil {
			return nil, fmt.Errorf("read edges: %w", err)
		}
		edges = append(edges, Edge(rec))
	}
	t := &Trace{Name: string(name), Arrival: arrival, Edges: edges}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

package graph

import (
	"bytes"
	"testing"
)

// FuzzTraceParse hammers the CSV trace parser with arbitrary bytes. The
// invariant: whatever ReadCSV accepts must be a fully valid trace — it
// passes Validate (time-sorted edges, non-decreasing arrivals, no edge
// predating its endpoints), snapshots build without panicking, the
// incremental builder agrees with the batch snapshot path, and the trace
// round-trips through WriteCSV. Anything ReadCSV rejects must be rejected
// with an error, never a panic or an absurd allocation (the dense-remap
// guard: a single "0 2147483646" line must not demand a multi-gigabyte
// arrival slice).
func FuzzTraceParse(f *testing.F) {
	f.Add([]byte("0 1 10\n1 2 20\n2 3 30\n"))
	f.Add([]byte("# comment\n% also comment\n5,9,100\n9,7,100\n"))
	f.Add([]byte("3\t4\t1.5e3\n4\t5\t2e3\n"))
	f.Add([]byte("0 1\n1 2\n"))                 // no timestamp column
	f.Add([]byte("10 10 5\n10 11 6\n"))         // self loop line
	f.Add([]byte("0 2147483646 1\n"))           // huge sparse ID
	f.Add([]byte("1 2 \\N\n2 3 7\n"))           // null timestamp
	f.Add([]byte("7;8;9\n8;9;10\n"))            // semicolon separator
	f.Add([]byte("0 1 100\n1 2 50\n2 3 75\n"))  // unsorted timestamps
	f.Add([]byte("-1 2 3\n"))                   // negative ID
	f.Add([]byte("0 1 99999999999999999999\n")) // timestamp overflow
	f.Add([]byte("1 2 3 4 5\n2 3 4 5 6\n"))     // extra columns
	f.Add([]byte("a b c\n"))                    // non-numeric
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		tr, err := ReadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadCSV accepted an invalid trace: %v", err)
		}
		g := tr.SnapshotAtEdge(tr.NumEdges())
		b := NewIncrementalBuilder(tr)
		b.AtEdge(tr.NumEdges() / 2)
		g2 := b.AtEdge(tr.NumEdges())
		if g.NumNodes() != g2.NumNodes() || g.NumEdges() != g2.NumEdges() {
			t.Fatalf("incremental snapshot (%d nodes, %d edges) disagrees with batch (%d nodes, %d edges)",
				g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("WriteCSV of a valid trace: %v", err)
		}
		tr2, err := ReadCSV(&buf, "roundtrip")
		if err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		if tr2.NumEdges() != tr.NumEdges() || tr2.NumNodes() != tr.NumNodes() {
			t.Fatalf("round-trip changed shape: %d/%d nodes, %d/%d edges",
				tr.NumNodes(), tr2.NumNodes(), tr.NumEdges(), tr2.NumEdges())
		}
	})
}

// FuzzTraceAppend drives the live-ingest Append path with arbitrary event
// streams: every accepted stream must leave the trace valid and
// snapshot-buildable at any prefix, with the incremental builder agreeing.
func FuzzTraceAppend(f *testing.F) {
	f.Add([]byte{0, 1, 1, 1, 2, 2, 2, 0, 3})
	f.Add([]byte{5, 0, 10, 0, 5, 10, 1, 2, 0})
	f.Add([]byte{0, 0, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, stream []byte) {
		if len(stream) > 3*512 {
			return
		}
		tr := &Trace{Name: "fuzz-append"}
		b := NewIncrementalBuilder(tr)
		for i := 0; i+2 < len(stream); i += 3 {
			u := NodeID(stream[i] % 64)
			v := NodeID(stream[i+1] % 64)
			tm := int64(stream[i+2])
			if _, err := tr.Append(u, v, tm); err != nil {
				continue // self loop or other rejection
			}
			if len(tr.Edges)%7 == 0 {
				g := b.AtEdge(len(tr.Edges))
				want := tr.SnapshotAtEdge(len(tr.Edges))
				if g.NumNodes() != want.NumNodes() || g.NumEdges() != want.NumEdges() {
					t.Fatalf("after %d events: incremental (%d nodes, %d edges) vs batch (%d, %d)",
						len(tr.Edges), g.NumNodes(), g.NumEdges(), want.NumNodes(), want.NumEdges())
				}
			}
		}
		if err := tr.Validate(); len(tr.Edges) > 0 && err != nil {
			t.Fatalf("Append left the trace invalid: %v", err)
		}
	})
}

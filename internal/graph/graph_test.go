package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func mkEdges(pairs ...[2]NodeID) []Edge {
	es := make([]Edge, len(pairs))
	for i, p := range pairs {
		es[i] = Edge{U: p[0], V: p[1], Time: int64(i)}
	}
	return es
}

func TestBuildBasic(t *testing.T) {
	g := Build(5, mkEdges([2]NodeID{0, 1}, [2]NodeID{1, 2}, [2]NodeID{2, 0}, [2]NodeID{3, 4}))
	if got := g.NumNodes(); got != 5 {
		t.Fatalf("NumNodes = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Fatalf("NumEdges = %d, want 4", got)
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Errorf("HasEdge(0,1) should hold in both directions")
	}
	if g.HasEdge(0, 3) {
		t.Errorf("HasEdge(0,3) should be false")
	}
	if g.Time != 3 {
		t.Errorf("Time = %d, want 3", g.Time)
	}
}

func TestBuildDedupAndSelfLoops(t *testing.T) {
	g := Build(3, []Edge{
		{U: 0, V: 1, Time: 1},
		{U: 1, V: 0, Time: 2},
		{U: 0, V: 1, Time: 3},
		{U: 2, V: 2, Time: 4},
	})
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup and self-loop removal", got)
	}
	if got := g.Degree(2); got != 0 {
		t.Errorf("Degree(2) = %d, want 0", got)
	}
}

func TestCommonNeighbors(t *testing.T) {
	// Star: 0 connected to 1..4; 5 connected to 1,2.
	g := Build(6, mkEdges(
		[2]NodeID{0, 1}, [2]NodeID{0, 2}, [2]NodeID{0, 3}, [2]NodeID{0, 4},
		[2]NodeID{5, 1}, [2]NodeID{5, 2},
	))
	cn := g.CommonNeighbors(0, 5)
	want := []NodeID{1, 2}
	if !reflect.DeepEqual(cn, want) {
		t.Fatalf("CommonNeighbors(0,5) = %v, want %v", cn, want)
	}
	if got := g.CountCommonNeighbors(0, 5); got != 2 {
		t.Errorf("CountCommonNeighbors = %d, want 2", got)
	}
	if got := g.CountCommonNeighbors(3, 4); got != 1 {
		t.Errorf("CountCommonNeighbors(3,4) = %d, want 1 (node 0)", got)
	}
}

func TestUnconnectedPairs(t *testing.T) {
	g := Build(4, mkEdges([2]NodeID{0, 1}, [2]NodeID{2, 3}))
	// C(4,2)=6 pairs, 2 connected.
	if got := g.UnconnectedPairs(); got != 4 {
		t.Fatalf("UnconnectedPairs = %d, want 4", got)
	}
}

func TestSubgraph(t *testing.T) {
	g := Build(5, mkEdges([2]NodeID{0, 1}, [2]NodeID{1, 2}, [2]NodeID{2, 3}, [2]NodeID{3, 4}))
	sub, back := g.Subgraph([]NodeID{1, 2, 3})
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph = %v, want 3 nodes 2 edges", sub)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Errorf("subgraph edges wrong: %v", sub)
	}
	if !reflect.DeepEqual(back, []NodeID{1, 2, 3}) {
		t.Errorf("back map = %v", back)
	}
}

// TestSubgraphRemapEdgeCases exercises the dense remap slice: node 0 mapped
// to a non-zero new ID (its remap entry must not read as "absent"), reorder
// of the input node list, and exclusion of edges to unselected neighbors.
func TestSubgraphRemapEdgeCases(t *testing.T) {
	g := Build(5, mkEdges([2]NodeID{0, 1}, [2]NodeID{0, 4}, [2]NodeID{1, 2}, [2]NodeID{2, 3}))
	sub, back := g.Subgraph([]NodeID{4, 0, 2})
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d, want 3", sub.NumNodes())
	}
	// Only 0-4 survives (0 and 4 selected); 0-1, 1-2, 2-3 all touch
	// unselected nodes. New IDs follow the given order: 4→0, 0→1, 2→2.
	if sub.NumEdges() != 1 || !sub.HasEdge(0, 1) {
		t.Errorf("subgraph = %v, want exactly edge (0,1)", sub)
	}
	if sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Errorf("subgraph kept an edge to an unselected node: %v", sub)
	}
	if !reflect.DeepEqual(back, []NodeID{4, 0, 2}) {
		t.Errorf("back map = %v, want [4 0 2]", back)
	}
}

// Property: HasEdge agrees with a brute-force map for random graphs, and
// degrees sum to twice the edge count.
func TestGraphInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		m := rng.Intn(3 * n)
		edges := make([]Edge, m)
		truth := map[[2]NodeID]bool{}
		for i := range edges {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			edges[i] = Edge{U: u, V: v, Time: int64(i)}
			if u != v {
				a, b := u, v
				if a > b {
					a, b = b, a
				}
				truth[[2]NodeID{a, b}] = true
			}
		}
		g := Build(n, edges)
		if g.NumEdges() != len(truth) {
			return false
		}
		degSum := 0
		for u := 0; u < n; u++ {
			degSum += g.Degree(NodeID(u))
			if !sort.SliceIsSorted(g.Neighbors(NodeID(u)), func(i, j int) bool {
				return g.Neighbors(NodeID(u))[i] < g.Neighbors(NodeID(u))[j]
			}) {
				return false
			}
		}
		if degSum != 2*g.NumEdges() {
			return false
		}
		for u := NodeID(0); int(u) < n; u++ {
			for v := u + 1; int(v) < n; v++ {
				if g.HasEdge(u, v) != truth[[2]NodeID{u, v}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: CommonNeighbors is symmetric and its length matches
// CountCommonNeighbors.
func TestCommonNeighborsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < 4*n; i++ {
			edges = append(edges, Edge{U: NodeID(rng.Intn(n)), V: NodeID(rng.Intn(n)), Time: int64(i)})
		}
		g := Build(n, edges)
		for trial := 0; trial < 20; trial++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			uv := g.CommonNeighbors(u, v)
			vu := g.CommonNeighbors(v, u)
			if !reflect.DeepEqual(uv, vu) {
				return false
			}
			if len(uv) != g.CountCommonNeighbors(u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func testTrace() *Trace {
	return &Trace{
		Name:    "test",
		Arrival: []int64{0, 0, 5, 10, 20, 30},
		Edges: []Edge{
			{U: 0, V: 1, Time: 1},
			{U: 1, V: 2, Time: 6},
			{U: 2, V: 3, Time: 12},
			{U: 0, V: 3, Time: 15},
			{U: 3, V: 4, Time: 22},
			{U: 4, V: 5, Time: 31},
		},
	}
}

func TestTraceValidate(t *testing.T) {
	tr := testTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := testTrace()
	bad.Edges[2].Time = 0
	if err := bad.Validate(); err == nil {
		t.Error("out-of-order trace accepted")
	}
	bad2 := testTrace()
	bad2.Edges[0].V = 99
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	bad3 := testTrace()
	bad3.Edges[0].V = bad3.Edges[0].U
	if err := bad3.Validate(); err == nil {
		t.Error("self loop accepted")
	}
}

func TestSnapshotAtEdge(t *testing.T) {
	tr := testTrace()
	g := tr.SnapshotAtEdge(2)
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	// Last included edge is at time 6; nodes 0,1,2 arrived by then.
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	if g.Time != 6 {
		t.Errorf("time = %d, want 6", g.Time)
	}
	full := tr.SnapshotAtEdge(100)
	if full.NumEdges() != 6 || full.NumNodes() != 6 {
		t.Errorf("full snapshot = %v", full)
	}
}

func TestSnapshotAtTime(t *testing.T) {
	tr := testTrace()
	g := tr.SnapshotAtTime(12)
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d, want 3", g.NumEdges())
	}
	if g.NumNodes() != 4 {
		t.Fatalf("nodes = %d, want 4 (arrivals 0,0,5,10)", g.NumNodes())
	}
}

func TestCutsAndSequence(t *testing.T) {
	tr := testTrace()
	cuts := tr.Cuts(2)
	if len(cuts) != 3 {
		t.Fatalf("cuts = %v, want 3", cuts)
	}
	for i, c := range cuts {
		if c.EdgeCount != 2*(i+1) {
			t.Errorf("cut %d EdgeCount = %d", i, c.EdgeCount)
		}
	}
	gs := tr.Sequence(2)
	if len(gs) != 3 {
		t.Fatalf("sequence length = %d", len(gs))
	}
	for i, g := range gs {
		if g.NumEdges() != 2*(i+1) {
			t.Errorf("snapshot %d edges = %d, want %d", i, g.NumEdges(), 2*(i+1))
		}
	}
	newE := tr.NewEdgesBetween(cuts[0], cuts[1])
	if len(newE) != 2 || newE[0].Time != 12 {
		t.Errorf("NewEdgesBetween = %v", newE)
	}
	if got := tr.Cuts(0); got != nil {
		t.Errorf("Cuts(0) = %v, want nil", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTraceSort(t *testing.T) {
	tr := &Trace{
		Name:    "unsorted",
		Arrival: make([]int64, 4),
		Edges: []Edge{
			{U: 3, V: 2, Time: 10},
			{U: 1, V: 0, Time: 5},
			{U: 2, V: 1, Time: 7},
		},
	}
	s := tr.Sort()
	if err := s.Validate(); err != nil {
		t.Fatalf("sorted trace invalid: %v", err)
	}
	if len(s.Edges) != 3 || s.Edges[0].Time != 5 {
		t.Fatalf("edges = %+v", s.Edges)
	}
	// First edge (time 5) touches original nodes 1,0 → new IDs 0,1.
	if s.Edges[0].U != 0 || s.Edges[0].V != 1 {
		t.Errorf("first edge remap = %+v", s.Edges[0])
	}
	for i := 1; i < len(s.Arrival); i++ {
		if s.Arrival[i] < s.Arrival[i-1] {
			t.Errorf("arrivals not monotone: %v", s.Arrival)
		}
	}
}

// Property: trace binary round trip is lossless for random traces.
func TestTraceRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		arr := make([]int64, n)
		for i := 1; i < n; i++ {
			arr[i] = arr[i-1] + int64(rng.Intn(5))
		}
		var edges []Edge
		tm := int64(0)
		for i := 0; i < rng.Intn(40); i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			tm += int64(rng.Intn(3))
			// Edges may not predate their endpoints' arrival (Validate
			// rejects such traces since the fuzz hardening: they would make
			// nodesArrivedBy cut a snapshot below an endpoint and panic).
			if a := max(arr[u], arr[v]); a > tm {
				tm = a
			}
			edges = append(edges, Edge{U: u, V: v, Time: tm})
		}
		tr := &Trace{Name: "q", Arrival: arr, Edges: edges}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got.Edges) != len(tr.Edges) || got.NumNodes() != tr.NumNodes() {
			return false
		}
		if len(tr.Edges) == 0 {
			return true
		}
		return reflect.DeepEqual(got.Edges, tr.Edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

package graph

import (
	"fmt"
	"sort"
)

// CSR returns the snapshot's adjacency in compressed-sparse-row form:
// row u is cols[rowptr[u]:rowptr[u+1]], sorted. The slices are freshly
// allocated except that rows are copied, not shared. Requires a full
// snapshot — a partitioned one materializes only a subset of entries.
func (g *Graph) CSR() (rowptr []int64, cols []NodeID) {
	g.mustFull("CSR")
	n := g.NumNodes()
	rowptr = make([]int64, n+1)
	for u := 0; u < n; u++ {
		rowptr[u+1] = rowptr[u] + int64(len(g.row(NodeID(u))))
	}
	cols = make([]NodeID, rowptr[n])
	for u := 0; u < n; u++ {
		copy(cols[rowptr[u]:], g.row(NodeID(u)))
	}
	return rowptr, cols
}

// FromCSR builds a flat full snapshot over n nodes whose row u is
// cols[rowptr[u]:rowptr[u+1]]. Rows alias cols — callers loading a
// checkpoint from a memory-mapped buffer get a zero-copy graph, and must
// keep the buffer immutable and alive for the graph's lifetime. The
// structure is fully validated (monotone rowptr, sorted in-range rows, no
// self loops or duplicates, symmetry, entry count = 2*edges) so hostile
// input fails here instead of corrupting a sweep.
func FromCSR(n int, rowptr []int64, cols []NodeID, edges int, tm int64) (*Graph, error) {
	if n < 0 || edges < 0 {
		return nil, fmt.Errorf("graph: FromCSR negative dimensions (n=%d edges=%d)", n, edges)
	}
	if len(rowptr) != n+1 {
		return nil, fmt.Errorf("graph: FromCSR rowptr length %d, want %d", len(rowptr), n+1)
	}
	if rowptr[0] != 0 {
		return nil, fmt.Errorf("graph: FromCSR rowptr[0] = %d, want 0", rowptr[0])
	}
	if rowptr[n] != int64(len(cols)) {
		return nil, fmt.Errorf("graph: FromCSR rowptr[n] = %d, want %d", rowptr[n], len(cols))
	}
	if int64(len(cols)) != 2*int64(edges) {
		return nil, fmt.Errorf("graph: FromCSR %d entries for %d edges, want %d", len(cols), edges, 2*edges)
	}
	adj := make([][]NodeID, n)
	for u := 0; u < n; u++ {
		lo, hi := rowptr[u], rowptr[u+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: FromCSR rowptr not monotone at %d (%d > %d)", u, lo, hi)
		}
		row := cols[lo:hi:hi]
		for i, v := range row {
			if int(v) < 0 || int(v) >= n {
				return nil, fmt.Errorf("graph: FromCSR row %d entry %d out of range", u, v)
			}
			if v == NodeID(u) {
				return nil, fmt.Errorf("graph: FromCSR self loop on node %d", u)
			}
			if i > 0 && row[i-1] >= v {
				return nil, fmt.Errorf("graph: FromCSR row %d not strictly increasing at entry %d", u, i)
			}
		}
		adj[u] = row
	}
	// Symmetry: every entry must have its mirror, or degree-based scores and
	// wedge sweeps silently diverge from the trace they claim to snapshot.
	for u := 0; u < n; u++ {
		for _, v := range adj[u] {
			row := adj[v]
			i := sort.Search(len(row), func(i int) bool { return row[i] >= NodeID(u) })
			if i >= len(row) || row[i] != NodeID(u) {
				return nil, fmt.Errorf("graph: FromCSR edge (%d, %d) has no mirror entry", u, v)
			}
		}
	}
	return &Graph{adj: adj, edges: edges, resident: int64(len(cols)), Time: tm}, nil
}

// NewIncrementalBuilderFrom returns a builder seeded from an existing full
// snapshot g at trace edge count m, positioned to continue applying edges
// m, m+1, ... of t. The builder shares g's rows copy-on-write: emitGen
// starts at 1 with all row/page generations at 0, so the first mutation of
// any row clones it — g (and any buffer its rows alias, e.g. a mapped
// checkpoint) is never written through. This is the recovery path's warm
// start: replaying a trace tail on top of a checkpoint snapshot instead of
// rebuilding from edge zero.
func NewIncrementalBuilderFrom(t *Trace, g *Graph, m int) *IncrementalBuilder {
	if g.Partition() != nil {
		panic("graph: NewIncrementalBuilderFrom requires a full snapshot")
	}
	n := g.NumNodes()
	b := &IncrementalBuilder{t: t, m: m, n: n, edges: g.NumEdges(), emitGen: 1}
	np := (n + pageSize - 1) >> pageShift
	b.pages = make([][][]NodeID, np)
	b.pageGen = make([]int32, np)
	b.rowGen = make([]int32, n)
	if g.pages != nil {
		copy(b.pages, g.pages[:np])
	} else {
		for u := 0; u < n; u++ {
			if row := g.adj[u]; row != nil {
				p := u >> pageShift
				if b.pages[p] == nil {
					b.pages[p] = make([][]NodeID, pageSize)
				}
				b.pages[p][u&pageMask] = row
			}
		}
	}
	return b
}

package graph

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// shardBounds returns a contiguous equal-count cover of [0, n) — boundary
// placement is irrelevant to correctness (any disjoint cover works), so the
// simple split keeps the tests readable.
func shardBounds(n, shards int) [][2]NodeID {
	out := make([][2]NodeID, shards)
	for s := 0; s < shards; s++ {
		out[s] = [2]NodeID{NodeID(s * n / shards), NodeID((s + 1) * n / shards)}
	}
	// Open-ended last shard, as the serving layer configures it.
	out[shards-1][1] = 1 << 30
	return out
}

func randomBuiltGraph(seed int64, n, m int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v})
	}
	return Build(n, edges)
}

// TestPartitionViewInvariants pins the ownership + frontier contract of the
// offline view: global metadata (node count, edge count, degrees) identical
// to the full snapshot, owned rows shared verbatim, frontier rows truncated
// to suffixes that keep every entry >= τ_w (w's smallest owned neighbor),
// and nothing else materialized.
func TestPartitionViewInvariants(t *testing.T) {
	g := randomBuiltGraph(11, 300, 1500)
	n := g.NumNodes()
	for _, shards := range []int{1, 2, 3, 5, 8} {
		var totalResident int64
		for _, b := range shardBounds(n, shards) {
			lo, hi := b[0], b[1]
			pv := PartitionView(g, lo, hi)
			if pv.Partition() == nil || !pv.Partition().Owns(lo) && lo < hi && int(lo) < n {
				t.Fatalf("shards=%d [%d,%d): partition descriptor wrong", shards, lo, hi)
			}
			if pv.NumNodes() != n || pv.NumEdges() != g.NumEdges() {
				t.Fatalf("shards=%d [%d,%d): global counts differ", shards, lo, hi)
			}
			clampHi := hi
			if int(clampHi) > n {
				clampHi = NodeID(n)
			}
			// τ from the definition, independently of the implementation.
			tau := make(map[NodeID]NodeID)
			for u := lo; u < clampHi; u++ {
				for _, w := range g.Neighbors(u) {
					if _, ok := tau[w]; !ok || u < tau[w] {
						if t0, ok := tau[w]; !ok || u < t0 {
							tau[w] = u
						}
					}
				}
			}
			var resident int64
			for w := 0; w < n; w++ {
				id := NodeID(w)
				full := g.Neighbors(id)
				got := pv.Neighbors(id)
				resident += int64(len(got))
				if pv.Degree(id) != g.Degree(id) {
					t.Fatalf("shards=%d [%d,%d): Degree(%d)=%d, want %d", shards, lo, hi, w, pv.Degree(id), g.Degree(id))
				}
				if id >= lo && id < clampHi {
					if !slices.Equal(got, full) {
						t.Fatalf("shards=%d [%d,%d): owned row %d truncated", shards, lo, hi, w)
					}
					continue
				}
				t0, frontier := tau[id]
				if !frontier {
					if len(got) != 0 {
						t.Fatalf("shards=%d [%d,%d): non-frontier row %d materialized", shards, lo, hi, w)
					}
					continue
				}
				// Exactly the suffix of entries >= τ_w.
				i := 0
				for i < len(full) && full[i] < t0 {
					i++
				}
				if !slices.Equal(got, full[i:]) {
					t.Fatalf("shards=%d [%d,%d): frontier row %d = %v, want %v (tau=%d)", shards, lo, hi, w, got, full[i:], t0)
				}
			}
			if pv.ResidentEntries() != resident {
				t.Fatalf("shards=%d [%d,%d): ResidentEntries=%d, want %d", shards, lo, hi, pv.ResidentEntries(), resident)
			}
			if resident > g.ResidentEntries() {
				t.Fatalf("shards=%d [%d,%d): view larger than full snapshot", shards, lo, hi)
			}
			totalResident += resident
		}
		_ = totalResident
	}
}

// TestPartitionViewHasEdge: owned-endpoint probes agree with the full
// snapshot; probes with neither endpoint owned panic rather than answering
// from a truncated row.
func TestPartitionViewHasEdge(t *testing.T) {
	g := randomBuiltGraph(5, 120, 500)
	pv := PartitionView(g, 40, 80)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		u := NodeID(rng.Intn(120))
		v := NodeID(rng.Intn(120))
		uOwned := u >= 40 && u < 80
		vOwned := v >= 40 && v < 80
		if !uOwned && !vOwned {
			continue
		}
		if pv.HasEdge(u, v) != g.HasEdge(u, v) {
			t.Fatalf("HasEdge(%d,%d) diverges from full snapshot", u, v)
		}
	}
	assertPanics(t, "HasEdge outside owned range", func() { pv.HasEdge(3, 99) })
	assertPanics(t, "CommonNeighbors on partition", func() { pv.CommonNeighbors(41, 45) })
	assertPanics(t, "Subgraph on partition", func() { pv.Subgraph([]NodeID{1, 2}) })
	assertPanics(t, "PartitionView of a partition", func() { PartitionView(pv, 0, 10) })
}

func assertPanics(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	f()
}

// Property: the streaming partitioned builder materializes, at every cut of
// a randomized (duplicate-bearing) trace, a superset of the offline
// PartitionView's rows and a subset of the full snapshot's — with exact
// global degrees and edge counts — and earlier emissions stay immutable as
// the builder advances.
func TestPartitionedBuilderMatchesViewQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		n := len(tr.Arrival)
		shards := 1 + rng.Intn(4)
		bounds := shardBounds(n, shards)
		s := rng.Intn(shards)
		lo, hi := bounds[s][0], bounds[s][1]
		b := NewPartitionedBuilder(tr, lo, hi)
		cuts := tr.Cuts(1 + rng.Intn(5))
		type emitted struct {
			m int
			g *Graph
		}
		var prev []emitted
		check := func(pg *Graph, m int) bool {
			full := tr.SnapshotAtEdge(m)
			if pg.NumNodes() != full.NumNodes() || pg.NumEdges() != full.NumEdges() || pg.Time != full.Time {
				return false
			}
			view := PartitionView(full, lo, hi)
			var resident int64
			for u := 0; u < full.NumNodes(); u++ {
				id := NodeID(u)
				if pg.Degree(id) != full.Degree(id) {
					return false
				}
				row := pg.Neighbors(id)
				resident += int64(len(row))
				fullRow := full.Neighbors(id)
				if id >= lo && id < hi {
					if !slices.Equal(row, fullRow) {
						return false
					}
					continue
				}
				// Subset of the true row, superset of the view's τ-suffix.
				for _, v := range row {
					if !slices.Contains(fullRow, v) {
						return false
					}
				}
				for _, v := range view.Neighbors(id) {
					if !slices.Contains(row, v) {
						return false
					}
				}
			}
			return pg.ResidentEntries() == resident
		}
		for _, c := range cuts {
			pg := b.AtEdge(c.EdgeCount)
			if !check(pg, c.EdgeCount) {
				return false
			}
			prev = append(prev, emitted{c.EdgeCount, pg})
		}
		for _, e := range prev {
			if !check(e.g, e.m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalDeltaSchedulesQuick: randomized batch schedules (not just
// Cuts) reproduce SnapshotAtEdge exactly, including degenerate zero-edge
// batches, on the paged delta-publish layout.
func TestIncrementalDeltaSchedulesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		b := NewIncrementalBuilder(tr)
		m := 0
		for m < tr.NumEdges() {
			m += rng.Intn(7) // zero-length batches included
			if m > tr.NumEdges() {
				m = tr.NumEdges()
			}
			if !graphsEqual(b.AtEdge(m), tr.SnapshotAtEdge(m)) {
				return false
			}
		}
		return graphsEqual(b.AtEdge(tr.NumEdges()), tr.SnapshotAtEdge(tr.NumEdges()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// warmPublishTrace builds a wide trace (all nodes arrive up front, edges in
// timestamp order) so publish-time costs can be measured at a given node
// count.
func warmPublishTrace(rng *rand.Rand, n, m int) *Trace {
	arr := make([]int64, n)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v, Time: 1})
	}
	return &Trace{Name: "warm", Arrival: arr, Edges: edges}
}

// TestWarmPublishAllocs is the delta-publish allocation guard: once the
// builder is warm, publishing a small batch allocates O(touched rows + top
// page table), independent of the node count. A full-CSR rebuild (or a
// per-node page table copy) would blow the bound by orders of magnitude.
func TestWarmPublishAllocs(t *testing.T) {
	for _, n := range []int{4096, 32768} {
		rng := rand.New(rand.NewSource(int64(n)))
		tr := warmPublishTrace(rng, n, n*4)
		b := NewIncrementalBuilder(tr)
		warm := tr.NumEdges() / 2
		b.AtEdge(warm)
		const batch = 16
		m := warm
		allocs := testing.AllocsPerRun(20, func() {
			m += batch
			if m > tr.NumEdges() {
				t.Fatalf("trace too short for alloc run")
			}
			b.AtEdge(m)
		})
		// Per publish: one top page-table copy, up to `batch` row clones and
		// 2*batch page clones (amortized arena slabs add a fraction more).
		// The bound is deliberately loose but far below O(n) — a per-node
		// cost at n=32768 would show up as thousands of allocations.
		if allocs > 128 {
			t.Fatalf("n=%d: warm publish of %d edges allocated %.0f times; want O(touched rows)", n, batch, allocs)
		}
	}
}

// TestWarmPublishAllocsPartitioned covers the partitioned builder's extra
// degree-page copies under the same bound.
func TestWarmPublishAllocsPartitioned(t *testing.T) {
	const n = 16384
	rng := rand.New(rand.NewSource(77))
	tr := warmPublishTrace(rng, n, n*4)
	b := NewPartitionedBuilder(tr, NodeID(n/4), NodeID(n/2))
	b.AtEdge(tr.NumEdges() / 2)
	const batch = 16
	m := tr.NumEdges() / 2
	allocs := testing.AllocsPerRun(20, func() {
		m += batch
		if m > tr.NumEdges() {
			t.Fatalf("trace too short for alloc run")
		}
		b.AtEdge(m)
	})
	if allocs > 192 {
		t.Fatalf("partitioned warm publish of %d edges allocated %.0f times; want O(touched rows)", batch, allocs)
	}
}

// TestPartitionedBuilderDeltaCounters: DeltaRows/DeltaPages advance with
// publish work and ResidentEntries tracks the materialized entry count.
func TestPartitionedBuilderDeltaCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tr := warmPublishTrace(rng, 100, 400)
	b := NewPartitionedBuilder(tr, 0, 50)
	g1 := b.AtEdge(tr.NumEdges() / 2)
	r1, p1 := b.DeltaRows(), b.DeltaPages()
	if p1 == 0 {
		t.Fatal("first publish reported no page work")
	}
	g2 := b.AtEdge(tr.NumEdges())
	if b.DeltaRows() <= r1 {
		t.Fatal("second publish did not advance DeltaRows")
	}
	if g2.ResidentEntries() < g1.ResidentEntries() {
		t.Fatal("resident entries shrank across publishes")
	}
	if g1.ResidentEntries() != PartitionView(tr.SnapshotAtEdge(tr.NumEdges()/2), 0, 50).ResidentEntries() {
		// The streaming rule keeps a superset of the view's rows, so resident
		// counts may differ — but never by less.
		if g1.ResidentEntries() < PartitionView(tr.SnapshotAtEdge(tr.NumEdges()/2), 0, 50).ResidentEntries() {
			t.Fatal("streaming builder materialized less than the minimal view")
		}
	}
}

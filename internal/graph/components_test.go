package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; 5 isolated.
	g := Build(6, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}})
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Errorf("component 0 split: %v", labels)
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Errorf("component 1 wrong: %v", labels)
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Errorf("isolated node joined: %v", labels)
	}
	lc := LargestComponent(g)
	if len(lc) != 3 || lc[0] != 0 || lc[2] != 2 {
		t.Fatalf("largest = %v", lc)
	}
	if got := LargestComponent(Build(0, nil)); got != nil {
		t.Errorf("empty graph largest = %v", got)
	}
}

// Property: component labels are consistent with edge connectivity, and
// sizes sum to n.
func TestComponentsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		var edges []Edge
		for i := 0; i < n; i++ {
			edges = append(edges, Edge{U: NodeID(rng.Intn(n)), V: NodeID(rng.Intn(n))})
		}
		g := Build(n, edges)
		labels, count := ConnectedComponents(g)
		for u := 0; u < n; u++ {
			for _, v := range g.Neighbors(NodeID(u)) {
				if labels[u] != labels[v] {
					return false
				}
			}
			if labels[u] < 0 || int(labels[u]) >= count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestReadTraceCorruption feeds randomly corrupted valid traces to the
// binary reader: it must either return an error or a valid trace, never
// panic (failure-injection hardening).
func TestReadTraceCorruption(t *testing.T) {
	orig := testTrace()
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		data := append([]byte(nil), pristine...)
		// Corrupt 1-4 random bytes, or truncate.
		if trial%5 == 0 {
			data = data[:rng.Intn(len(data))]
		} else {
			for c := 0; c <= rng.Intn(4); c++ {
				data[rng.Intn(len(data))] ^= byte(1 << rng.Intn(8))
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadTrace panicked: %v", trial, r)
				}
			}()
			tr, err := ReadTrace(bytes.NewReader(data))
			if err == nil {
				// Must at least satisfy the validator if accepted.
				if verr := tr.Validate(); verr != nil {
					t.Fatalf("trial %d: accepted invalid trace: %v", trial, verr)
				}
			}
		}()
	}
}

// TestReadCSVCorruption mirrors the same guarantee for the text loader.
func TestReadCSVCorruption(t *testing.T) {
	base := []byte("0,1,100\n1,2,200\n2,3,300\n")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), base...)
		for c := 0; c <= rng.Intn(3); c++ {
			data[rng.Intn(len(data))] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadCSV panicked on %q: %v", trial, data, r)
				}
			}()
			tr, err := ReadCSV(bytes.NewReader(data), "fuzz")
			if err == nil {
				if verr := tr.Validate(); verr != nil {
					t.Fatalf("trial %d: accepted invalid trace: %v", trial, verr)
				}
			}
		}()
	}
}

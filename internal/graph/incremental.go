package graph

import (
	"fmt"
	"sort"

	"linkpred/internal/obs"
)

const (
	// rowHeadroom is the extra capacity cloned rows get so a few subsequent
	// inserts extend in place instead of re-allocating.
	rowHeadroom = 4
	// slabEntries sizes the arena slabs row clones are carved from. Clones
	// bump-allocate out of the current slab, so a warm publish of a small
	// batch performs O(touched rows) allocations instead of one per clone
	// plus one per node.
	slabEntries = 1 << 15
)

// IncrementalBuilder materializes the snapshot sequence of one trace by
// extending the previous cut's adjacency with the trace delta, instead of
// re-sorting the whole O(E) edge prefix per cut the way SnapshotAtEdge
// does. Emitted graphs honor the immutability contract via a paged
// copy-on-write layout: rows live in fixed-size pages, a row or page is
// cloned before its first mutation after an emit, and AtEdge publishes by
// copying only the small top-level page table — O(nodes/pageSize + touched
// pages), not O(nodes). Row clones are carved from arena slabs reused
// across epochs, so a warm publish of a small batch allocates O(touched
// rows).
//
// A builder may be partitioned (NewPartitionedBuilder): it still consumes
// the full replicated edge stream, maintaining exact full-graph degrees and
// the global unique-edge count, but materializes only the rows its owned
// source range [lo, hi) can ever read under the min-endpoint ownership
// rule: complete rows for owned sources, and for every other node only the
// entries >= lo (the candidate side of any wedge swept from an owned
// source) plus the min-endpoint entry that makes duplicate detection exact.
//
// AtEdge must be called with non-decreasing edge counts; unpartitioned
// snapshots are identical to t.SnapshotAtEdge(m) row for row (pinned by
// TestIncrementalMatchesSnapshotAtEdge).
type IncrementalBuilder struct {
	t     *Trace
	m     int // edges applied so far
	n     int // rows allocated
	edges int

	pages   [][][]NodeID
	pageGen []int32
	// emitGen counts emitted snapshots; rowGen[u] records the generation in
	// which row u was last cloned (rows at the current generation are owned
	// by the builder and may be mutated in place).
	emitGen int32
	rowGen  []int32
	slab    []NodeID

	// Partition mode.
	partitioned bool
	lo, hi      NodeID
	degPages    [][]int32
	degPageGen  []int32

	resident   int64
	deltaRows  int64 // rows cloned or created, cumulative across emits
	deltaPages int64 // pages cloned or created, cumulative across emits
}

// NewIncrementalBuilder returns a builder positioned before the first edge.
func NewIncrementalBuilder(t *Trace) *IncrementalBuilder {
	return &IncrementalBuilder{t: t}
}

// NewPartitionedBuilder returns a builder that emits partitioned snapshots
// owning source range [lo, hi). hi is an exclusive bound and may be set
// beyond any plausible node count for an open-ended last shard.
func NewPartitionedBuilder(t *Trace, lo, hi NodeID) *IncrementalBuilder {
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("graph: NewPartitionedBuilder range [%d, %d) invalid", lo, hi))
	}
	return &IncrementalBuilder{t: t, partitioned: true, lo: lo, hi: hi}
}

// Applied returns the number of trace edges already folded into the
// builder's adjacency — the edge count of the last emitted snapshot. Live
// ingestion uses it to measure how far published snapshots lag the trace.
func (b *IncrementalBuilder) Applied() int { return b.m }

// Trace returns the trace this builder materializes snapshots of.
func (b *IncrementalBuilder) Trace() *Trace { return b.t }

// ResidentEntries returns the number of adjacency entries currently
// materialized (2*edges unpartitioned; fewer in partition mode).
func (b *IncrementalBuilder) ResidentEntries() int64 {
	if b.partitioned {
		return b.resident
	}
	return 2 * int64(b.edges)
}

// DeltaRows returns the cumulative number of row clones performed — the
// copy-on-write work the delta publishes did. Serving layers diff it across
// publishes for the publish_delta_rows counter.
func (b *IncrementalBuilder) DeltaRows() int64 { return b.deltaRows }

// DeltaPages returns the cumulative number of page clones performed.
func (b *IncrementalBuilder) DeltaPages() int64 { return b.deltaPages }

// touchPage returns a page the builder may mutate, cloning it if it is
// shared with an emitted snapshot.
func (b *IncrementalBuilder) touchPage(p int) [][]NodeID {
	pg := b.pages[p]
	if pg == nil || b.pageGen[p] != b.emitGen {
		clone := make([][]NodeID, pageSize)
		copy(clone, pg)
		b.pages[p] = clone
		b.pageGen[p] = b.emitGen
		b.deltaPages++
		pg = clone
	}
	return pg
}

// cloneRow copies row into the arena with headroom.
func (b *IncrementalBuilder) cloneRow(row []NodeID) []NodeID {
	need := len(row) + rowHeadroom
	if need > len(b.slab) {
		size := slabEntries
		if need > size {
			size = need
		}
		b.slab = make([]NodeID, size)
	}
	clone := b.slab[:len(row):need]
	b.slab = b.slab[need:]
	copy(clone, row)
	return clone
}

// insert adds v to u's sorted row, returning false on duplicates.
func (b *IncrementalBuilder) insert(u, v NodeID) bool {
	var row []NodeID
	if pg := b.pages[int(u)>>pageShift]; pg != nil {
		row = pg[int(u)&pageMask]
	}
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return false
	}
	if b.rowGen[u] != b.emitGen {
		// The row's backing array is shared with an emitted snapshot; clone
		// with headroom before shifting in place.
		row = b.cloneRow(row)
		b.rowGen[u] = b.emitGen
		b.deltaRows++
	}
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = v
	pg := b.touchPage(int(u) >> pageShift)
	pg[int(u)&pageMask] = row
	b.resident++
	return true
}

// bumpDeg increments the full-graph degree of u (partition mode only),
// copy-on-write against emitted snapshots.
func (b *IncrementalBuilder) bumpDeg(u NodeID) {
	p := int(u) >> pageShift
	pg := b.degPages[p]
	if pg == nil || b.degPageGen[p] != b.emitGen {
		clone := make([]int32, pageSize)
		copy(clone, pg)
		b.degPages[p] = clone
		b.degPageGen[p] = b.emitGen
		pg = clone
	}
	pg[int(u)&pageMask]++
}

// apply folds one trace edge into the builder state.
func (b *IncrementalBuilder) apply(e Edge) {
	if e.U == e.V {
		return
	}
	if top := max(e.U, e.V); int(top) >= b.n {
		b.grow(int(top) + 1)
	}
	if !b.partitioned {
		if b.insert(e.U, e.V) {
			b.insert(e.V, e.U)
			b.edges++
		}
		return
	}
	// Partition mode. Canonicalize so u < v; the min endpoint's row always
	// keeps the entry (owned rows are complete, and the suffix rule keeps
	// entries >= lo — for a min endpoint u >= lo the entry v > u >= lo
	// qualifies; for u < lo it is kept expressly so this insert stays an
	// exact duplicate detector even for edges both of whose endpoints lie
	// below the owned range).
	u, v := e.U, e.V
	if u > v {
		u, v = v, u
	}
	if !b.insert(u, v) {
		return
	}
	b.edges++
	b.bumpDeg(u)
	b.bumpDeg(v)
	// The reverse entry u in v's row is needed only if v's row can be read
	// by an owned sweep: complete when v is owned, suffix >= lo otherwise.
	if (v >= b.lo && v < b.hi) || u >= b.lo {
		b.insert(v, u)
	}
}

// AtEdge applies trace edges up to count m and returns the snapshot, which
// (unpartitioned) matches t.SnapshotAtEdge(m) exactly. m must be
// non-decreasing across calls.
func (b *IncrementalBuilder) AtEdge(m int) *Graph {
	if m > len(b.t.Edges) {
		m = len(b.t.Edges)
	}
	if m < b.m {
		panic(fmt.Sprintf("graph: IncrementalBuilder.AtEdge(%d) after %d; counts must be non-decreasing", m, b.m))
	}
	applied := m - b.m
	for _, e := range b.t.Edges[b.m:m] {
		b.apply(e)
	}
	b.m = m
	var tm int64
	if m > 0 {
		tm = b.t.Edges[m-1].Time
	}
	// Isolated nodes arrive by timestamp alone, so the snapshot may be wider
	// than the edge-touched prefix.
	n := b.t.nodesArrivedBy(tm)
	if n > b.n {
		b.grow(n)
	}
	np := (n + pageSize - 1) >> pageShift
	top := make([][][]NodeID, np)
	copy(top, b.pages[:np])
	g := &Graph{pages: top, n: n, edges: b.edges, Time: tm}
	if b.partitioned {
		dtop := make([][]int32, np)
		copy(dtop, b.degPages[:np])
		g.part = &Partition{Lo: b.lo, Hi: b.hi, degPages: dtop}
		g.resident = b.resident
	} else {
		g.resident = 2 * int64(b.edges)
	}
	b.emitGen++
	if obs.Enabled() {
		obs.GetCounter("graph/inc_snapshots").Inc()
		obs.GetCounter("graph/inc_edges_applied").Add(int64(applied))
	}
	return g
}

// grow extends the row space to n nodes; fresh rows are owned but their
// pages stay nil until first touched.
func (b *IncrementalBuilder) grow(n int) {
	for b.n < n {
		b.rowGen = append(b.rowGen, b.emitGen)
		b.n++
	}
	for np := (b.n + pageSize - 1) >> pageShift; len(b.pages) < np; {
		b.pages = append(b.pages, nil)
		b.pageGen = append(b.pageGen, b.emitGen)
		if b.partitioned {
			b.degPages = append(b.degPages, nil)
			b.degPageGen = append(b.degPageGen, b.emitGen)
		}
	}
}

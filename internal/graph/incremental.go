package graph

import (
	"fmt"
	"sort"

	"linkpred/internal/obs"
)

// IncrementalBuilder materializes the snapshot sequence of one trace by
// extending the previous cut's adjacency with the trace delta, instead of
// re-sorting the whole O(E) edge prefix per cut the way SnapshotAtEdge
// does. Emitted graphs honor the immutability contract: rows are shared
// with the builder copy-on-write, so a row is cloned before its first
// mutation after an emit and snapshots already handed out never change.
//
// AtEdge must be called with non-decreasing edge counts; the produced
// snapshots are identical to t.SnapshotAtEdge(m) field for field (the
// equivalence is pinned by TestIncrementalMatchesSnapshotAtEdge).
type IncrementalBuilder struct {
	t     *Trace
	m     int // edges applied so far
	adj   [][]NodeID
	edges int
	// emitGen counts emitted snapshots; rowGen[u] records the generation in
	// which row u was last cloned (rows at the current generation are owned
	// by the builder and may be mutated in place).
	emitGen int32
	rowGen  []int32
}

// NewIncrementalBuilder returns a builder positioned before the first edge.
func NewIncrementalBuilder(t *Trace) *IncrementalBuilder {
	return &IncrementalBuilder{t: t}
}

// Applied returns the number of trace edges already folded into the
// builder's adjacency — the edge count of the last emitted snapshot. Live
// ingestion uses it to measure how far published snapshots lag the trace.
func (b *IncrementalBuilder) Applied() int { return b.m }

// Trace returns the trace this builder materializes snapshots of.
func (b *IncrementalBuilder) Trace() *Trace { return b.t }

// insert adds v to u's sorted row, returning false on duplicates.
func (b *IncrementalBuilder) insert(u, v NodeID) bool {
	row := b.adj[u]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	if i < len(row) && row[i] == v {
		return false
	}
	if b.rowGen[u] != b.emitGen {
		// The row's backing array is shared with an emitted snapshot; clone
		// with headroom before shifting in place.
		clone := make([]NodeID, len(row), len(row)+4)
		copy(clone, row)
		row = clone
		b.rowGen[u] = b.emitGen
	}
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = v
	b.adj[u] = row
	return true
}

// AtEdge applies trace edges up to count m and returns the snapshot, which
// matches t.SnapshotAtEdge(m) exactly. m must be non-decreasing across
// calls.
func (b *IncrementalBuilder) AtEdge(m int) *Graph {
	if m > len(b.t.Edges) {
		m = len(b.t.Edges)
	}
	if m < b.m {
		panic(fmt.Sprintf("graph: IncrementalBuilder.AtEdge(%d) after %d; counts must be non-decreasing", m, b.m))
	}
	applied := m - b.m
	for _, e := range b.t.Edges[b.m:m] {
		if e.U == e.V {
			continue
		}
		if top := max(e.U, e.V); int(top) >= len(b.adj) {
			b.grow(int(top) + 1)
		}
		if b.insert(e.U, e.V) {
			b.insert(e.V, e.U)
			b.edges++
		}
	}
	b.m = m
	var tm int64
	if m > 0 {
		tm = b.t.Edges[m-1].Time
	}
	// Isolated nodes arrive by timestamp alone, so the snapshot may be wider
	// than the edge-touched prefix.
	n := b.t.nodesArrivedBy(tm)
	if n > len(b.adj) {
		b.grow(n)
	}
	g := &Graph{adj: make([][]NodeID, n), edges: b.edges, Time: tm}
	copy(g.adj, b.adj[:n])
	b.emitGen++
	if obs.Enabled() {
		obs.GetCounter("graph/inc_snapshots").Inc()
		obs.GetCounter("graph/inc_edges_applied").Add(int64(applied))
	}
	return g
}

// grow extends the adjacency to n rows; fresh rows are owned.
func (b *IncrementalBuilder) grow(n int) {
	for len(b.adj) < n {
		b.adj = append(b.adj, nil)
		b.rowGen = append(b.rowGen, b.emitGen)
	}
}

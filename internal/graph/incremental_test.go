package graph

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

// graphsEqual compares two snapshots field for field.
func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.Time != b.Time {
		return false
	}
	for u := 0; u < a.NumNodes(); u++ {
		if !slices.Equal(a.Neighbors(NodeID(u)), b.Neighbors(NodeID(u))) {
			return false
		}
	}
	return true
}

func TestIncrementalMatchesSnapshotAtEdge(t *testing.T) {
	tr := testTrace()
	b := NewIncrementalBuilder(tr)
	// Every prefix, including m=0 and repeated counts past the end.
	for m := 0; m <= tr.NumEdges()+1; m++ {
		got := b.AtEdge(m)
		want := tr.SnapshotAtEdge(m)
		if !graphsEqual(got, want) {
			t.Fatalf("AtEdge(%d): n=%d e=%d t=%d, want n=%d e=%d t=%d",
				m, got.NumNodes(), got.NumEdges(), got.Time,
				want.NumNodes(), want.NumEdges(), want.Time)
		}
	}
}

// randomTrace builds a consistent trace: non-decreasing arrivals, edges only
// among arrived nodes, with duplicate edges mixed in to exercise dedup.
func randomTrace(rng *rand.Rand) *Trace {
	n := 2 + rng.Intn(25)
	arr := make([]int64, n)
	for i := 1; i < n; i++ {
		arr[i] = arr[i-1] + int64(rng.Intn(4))
	}
	var edges []Edge
	tm := arr[0]
	for i := 0; i < rng.Intn(80); i++ {
		tm += int64(rng.Intn(3))
		alive := 0
		for alive < n && arr[alive] <= tm {
			alive++
		}
		if alive < 2 {
			continue
		}
		u := NodeID(rng.Intn(alive))
		v := NodeID(rng.Intn(alive))
		if u == v {
			continue
		}
		edges = append(edges, Edge{U: u, V: v, Time: tm})
		if rng.Intn(4) == 0 {
			// Duplicate (possibly flipped) to exercise the dedup path.
			edges = append(edges, Edge{U: v, V: u, Time: tm})
		}
	}
	return &Trace{Name: "q", Arrival: arr, Edges: edges}
}

// Property: the incremental builder reproduces SnapshotAtEdge over a full
// cut sequence of a random trace, and earlier snapshots stay immutable as
// the builder advances past them.
func TestIncrementalMatchesSnapshotQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng)
		cuts := tr.Cuts(1 + rng.Intn(5))
		b := NewIncrementalBuilder(tr)
		type emitted struct {
			m int
			g *Graph
		}
		var prev []emitted
		for _, c := range cuts {
			g := b.AtEdge(c.EdgeCount)
			if !graphsEqual(g, tr.SnapshotAtEdge(c.EdgeCount)) {
				return false
			}
			prev = append(prev, emitted{c.EdgeCount, g})
		}
		// Copy-on-write must not have bled later deltas into earlier emits.
		for _, e := range prev {
			if !graphsEqual(e.g, tr.SnapshotAtEdge(e.m)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalPanicsOnDecreasing(t *testing.T) {
	b := NewIncrementalBuilder(testTrace())
	b.AtEdge(4)
	defer func() {
		if recover() == nil {
			t.Fatal("AtEdge(2) after AtEdge(4) should panic")
		}
	}()
	b.AtEdge(2)
}

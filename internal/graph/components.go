package graph

// ConnectedComponents labels every node with a component ID in [0, count)
// assigned in order of each component's smallest node ID.
func ConnectedComponents(g *Graph) (labels []int32, count int) {
	n := g.NumNodes()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []NodeID
	next := int32(0)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = next
		queue = append(queue[:0], NodeID(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if labels[v] < 0 {
					labels[v] = next
					queue = append(queue, v)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// LargestComponent returns the node set of the largest connected component
// (ties broken toward the smallest component label), sorted by node ID.
func LargestComponent(g *Graph) []NodeID {
	labels, count := ConnectedComponents(g)
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for l, s := range sizes {
		if s > sizes[best] {
			best = l
		}
	}
	out := make([]NodeID, 0, sizes[best])
	for v, l := range labels {
		if int(l) == best {
			out = append(out, NodeID(v))
		}
	}
	return out
}

package graph

import (
	"math/rand"
	"testing"
)

func benchEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{U: NodeID(rng.Intn(n)), V: NodeID(rng.Intn(n)), Time: int64(i)}
	}
	return edges
}

// BenchmarkBuild measures snapshot construction (sorted adjacency + dedupe).
func BenchmarkBuild(b *testing.B) {
	const n, m = 10000, 80000
	edges := benchEdges(n, m, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := Build(n, edges)
		if g.NumEdges() == 0 {
			b.Fatal("no edges")
		}
	}
}

// BenchmarkHasEdge measures membership probes on a built snapshot.
func BenchmarkHasEdge(b *testing.B) {
	const n, m = 10000, 80000
	g := Build(n, benchEdges(n, m, 1))
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.HasEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
}

// BenchmarkCommonNeighbors measures the sorted-intersection hot path.
func BenchmarkCommonNeighbors(b *testing.B) {
	const n, m = 10000, 80000
	g := Build(n, benchEdges(n, m, 1))
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CountCommonNeighbors(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
}

// BenchmarkSnapshotSequence measures constant-delta sequencing of a trace.
func BenchmarkSnapshotSequence(b *testing.B) {
	const n, m = 5000, 40000
	tr := &Trace{Name: "bench", Arrival: make([]int64, n), Edges: benchEdges(n, m, 4)}
	for i := range tr.Edges {
		tr.Edges[i].Time = int64(i)
		if tr.Edges[i].U == tr.Edges[i].V {
			tr.Edges[i].V = (tr.Edges[i].V + 1) % NodeID(n)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gs := tr.Sequence(m / 20)
		if len(gs) != 20 {
			b.Fatalf("snapshots = %d", len(gs))
		}
	}
}

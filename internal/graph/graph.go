// Package graph provides the dynamic-network substrate used throughout the
// reproduction: timestamped edge traces, immutable graph snapshots with
// sorted adjacency lists, and the constant-delta snapshot sequencing that
// drives the paper's evaluation methodology (§3.2).
//
// Node identifiers are dense int32 values assigned in arrival order, which
// keeps snapshots compact and lets adjacency be stored as slices rather than
// maps even for graphs with millions of edges.
//
// Snapshots come in two physical layouts behind one interface: flat rows
// (Build, Subgraph — one []NodeID per node) and paged rows (incremental
// emissions — rows grouped into fixed-size pages so a publish only copies
// the touched pages plus a small top-level page table). A snapshot may also
// be partitioned (Partition non-nil): it materializes complete rows only
// for an owned source range plus the truncated frontier rows the wedge
// kernels intersect against, while Degree still reports full-graph degrees.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// NodeID identifies a node within a trace. IDs are dense and assigned in
// arrival order starting from zero.
type NodeID = int32

// Edge is a single timestamped, undirected link creation event. U < V is not
// required on input; snapshots canonicalize internally.
type Edge struct {
	U, V NodeID
	// Time is seconds since the trace epoch.
	Time int64
}

// Rows are grouped into pages of 1<<pageShift nodes in the incremental
// layout, so publishing a snapshot copies O(touched pages) instead of
// O(nodes) row headers.
const (
	pageShift = 8
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Graph is an immutable snapshot of an undirected network at a point in
// time. Adjacency lists are sorted by NodeID, enabling O(log d) membership
// tests and linear-time neighborhood intersection.
type Graph struct {
	adj   [][]NodeID   // flat layout; nil when paged
	pages [][][]NodeID // paged layout; nil when flat
	n     int          // node count in the paged layout
	edges int
	// resident counts materialized adjacency entries (each undirected edge
	// contributes up to two). Equal to 2*edges on full snapshots; smaller on
	// partitioned ones.
	resident int64
	part     *Partition
	// Time is the timestamp of the last edge included in the snapshot.
	Time int64
}

// Partition describes a partitioned snapshot: the shard owns candidate
// pairs whose min endpoint falls in [Lo, Hi) (the same ownership rule the
// prediction engines shard by). Owned rows are complete; every other
// materialized row is truncated to entries >= Lo — exactly what a wedge
// sweep from an owned source needs, since every candidate it can emit is
// > source >= Lo. Degrees remain full-graph values so witness weights and
// degree-based scores are bit-identical to an unpartitioned sweep.
type Partition struct {
	// Lo, Hi bound the owned source range [Lo, Hi). Hi may exceed the
	// snapshot's node count (an open-ended last shard); sweeps clamp.
	Lo, Hi NodeID
	// Full-graph degrees, in exactly one of the two layouts.
	deg      []int32   // flat (offline views)
	degPages [][]int32 // paged (incremental emissions)
}

// Owns reports whether source u falls in the owned range.
func (p *Partition) Owns(u NodeID) bool { return u >= p.Lo && u < p.Hi }

func (p *Partition) degree(u NodeID) int {
	if p.deg != nil {
		return int(p.deg[u])
	}
	pg := p.degPages[int(u)>>pageShift]
	if pg == nil {
		return 0
	}
	return int(pg[int(u)&pageMask])
}

// Partition returns the partition descriptor, or nil for a full snapshot.
func (g *Graph) Partition() *Partition { return g.part }

// row returns the materialized adjacency row of u in either layout.
func (g *Graph) row(u NodeID) []NodeID {
	if g.pages != nil {
		pg := g.pages[int(u)>>pageShift]
		if pg == nil {
			return nil
		}
		return pg[int(u)&pageMask]
	}
	return g.adj[u]
}

// NumNodes returns the number of nodes in the snapshot, including isolated
// nodes that have arrived but created no edges yet.
func (g *Graph) NumNodes() int {
	if g.pages != nil {
		return g.n
	}
	return len(g.adj)
}

// NumEdges returns the number of undirected edges. On a partitioned
// snapshot this is still the full-graph count.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of node u. On a partitioned snapshot this is
// the full-graph degree, which may exceed the materialized row length.
func (g *Graph) Degree(u NodeID) int {
	if g.part != nil {
		return g.part.degree(u)
	}
	return len(g.row(u))
}

// Neighbors returns the sorted adjacency list of u. The returned slice is
// shared with the graph and must not be modified. On a partitioned snapshot
// only owned rows are complete: frontier rows are truncated to entries
// >= Partition.Lo and unmaterialized rows are nil.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.row(u) }

// ResidentEntries returns the number of materialized adjacency entries
// (2*edges on a full snapshot; fewer on a partitioned one).
func (g *Graph) ResidentEntries() int64 { return g.resident }

// ResidentBytes estimates the resident size of the adjacency structure:
// entry payload plus row headers, page tables, and the partition's degree
// table. It is the quantity the cluster memory gauges and bench memory
// columns report.
func (g *Graph) ResidentBytes() int64 {
	const sliceHeader = 24
	b := g.resident * 4
	if g.pages != nil {
		b += int64(len(g.pages)) * sliceHeader
		for _, pg := range g.pages {
			if pg != nil {
				b += pageSize * sliceHeader
			}
		}
	} else {
		b += int64(len(g.adj)) * sliceHeader
	}
	if g.part != nil {
		if g.part.deg != nil {
			b += int64(len(g.part.deg)) * 4
		} else {
			for _, pg := range g.part.degPages {
				if pg != nil {
					b += pageSize * 4
				}
			}
			b += int64(len(g.part.degPages)) * sliceHeader
		}
	}
	return b
}

// HasEdge reports whether the undirected edge (u, v) exists. On a
// partitioned snapshot at least one endpoint must be owned (only owned rows
// are complete); callers respecting the min-endpoint ownership rule always
// satisfy this.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) >= g.NumNodes() || int(v) >= g.NumNodes() {
		return false
	}
	if g.part != nil {
		switch {
		case g.part.Owns(u):
		case g.part.Owns(v):
			u, v = v, u
		default:
			panic(fmt.Sprintf("graph: HasEdge(%d, %d) with neither endpoint in the owned range [%d, %d) of a partitioned snapshot",
				u, v, g.part.Lo, g.part.Hi))
		}
		a := g.row(u)
		i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
		return i < len(a) && a[i] == v
	}
	a := g.row(u)
	if b := g.row(v); len(b) < len(a) {
		a, v = b, u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// CommonNeighbors returns the sorted intersection of the neighbor sets of u
// and v. The result is freshly allocated. Requires a full snapshot: on a
// partitioned one at most one of the two rows is complete.
func (g *Graph) CommonNeighbors(u, v NodeID) []NodeID {
	g.mustFull("CommonNeighbors")
	a, b := g.row(u), g.row(v)
	out := make([]NodeID, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// CountCommonNeighbors returns |Γ(u) ∩ Γ(v)| without allocating. Requires a
// full snapshot.
func (g *Graph) CountCommonNeighbors(u, v NodeID) int {
	g.mustFull("CountCommonNeighbors")
	a, b := g.row(u), g.row(v)
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

func (g *Graph) mustFull(op string) {
	if g.part != nil {
		panic(fmt.Sprintf("graph: %s requires a full snapshot, not a partitioned one owning [%d, %d)", op, g.part.Lo, g.part.Hi))
	}
}

// UnconnectedPairs returns the number of unordered node pairs with no edge
// between them: C(n,2) - |E|. This is the denominator of the paper's
// random-prediction expectation.
func (g *Graph) UnconnectedPairs() int64 {
	n := int64(g.NumNodes())
	return n*(n-1)/2 - int64(g.edges)
}

// Build constructs a snapshot from a set of edges over n nodes. Duplicate
// edges and self-loops are dropped. The snapshot Time is the maximum edge
// timestamp (zero for an empty edge set).
func Build(n int, edges []Edge) *Graph {
	g := &Graph{adj: make([][]NodeID, n)}
	deg := make([]int32, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	for i := range g.adj {
		g.adj[i] = make([]NodeID, 0, deg[i])
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
		if e.Time > g.Time {
			g.Time = e.Time
		}
	}
	for u := range g.adj {
		a := g.adj[u]
		slices.Sort(a)
		// Deduplicate in place.
		w := 0
		for i := range a {
			if i == 0 || a[i] != a[i-1] {
				a[w] = a[i]
				w++
			}
		}
		g.adj[u] = a[:w]
		g.edges += w
	}
	g.edges /= 2
	g.resident = 2 * int64(g.edges)
	return g
}

// PartitionView returns a partitioned view of the full snapshot g that owns
// source range [lo, hi): complete rows for owned sources, truncated rows
// for the 1-hop frontier (any node adjacent to an owned source), nil rows
// elsewhere. Rows are shared with g — the view costs O(nodes) headers plus
// a degree table, never a copy of the entries.
//
// Frontier truncation is per-row minimal: row w keeps only entries
// >= τ_w, where τ_w is w's smallest owned neighbor. A wedge sweep from
// owned source u reads w's row only when u ∈ N(w), and only for entries
// v >= u >= τ_w (Predict skips v <= u itself; batch scoring of a pair whose
// min endpoint is u reads candidates v >= u) — so every readable entry
// survives. This is within one entry per frontier row of the information
// floor for exact local scores under min-endpoint ownership: any edge (w,v)
// with v > τ_w participates in a wedge τ_w–w–v this shard must count.
func PartitionView(g *Graph, lo, hi NodeID) *Graph {
	g.mustFull("PartitionView")
	n := g.NumNodes()
	if lo < 0 || hi < lo {
		panic(fmt.Sprintf("graph: PartitionView range [%d, %d) invalid", lo, hi))
	}
	deg := make([]int32, n)
	for u := 0; u < n; u++ {
		deg[u] = int32(len(g.row(NodeID(u))))
	}
	adj := make([][]NodeID, n)
	// tau[w] = min owned neighbor of w, or -1 when w is not frontier.
	// Sources are visited in ascending order, so the first assignment wins.
	tau := make([]NodeID, n)
	for i := range tau {
		tau[i] = -1
	}
	var resident int64
	clampHi := hi
	if clampHi > NodeID(n) {
		clampHi = NodeID(n)
	}
	for u := lo; u < clampHi; u++ {
		row := g.row(u)
		adj[u] = row
		resident += int64(len(row))
		for _, w := range row {
			if tau[w] < 0 {
				tau[w] = u
			}
		}
	}
	for w := 0; w < n; w++ {
		id := NodeID(w)
		if tau[w] < 0 || (id >= lo && id < clampHi) {
			continue
		}
		row := g.row(id)
		t := tau[w]
		i := sort.Search(len(row), func(i int) bool { return row[i] >= t })
		if i < len(row) {
			adj[w] = row[i:]
			resident += int64(len(row) - i)
		}
	}
	return &Graph{
		adj:      adj,
		edges:    g.edges,
		resident: resident,
		part:     &Partition{Lo: lo, Hi: hi, deg: deg},
		Time:     g.Time,
	}
}

// Subgraph returns the induced subgraph on the given node set, with node IDs
// remapped densely in the order given. The second return value maps new IDs
// back to original IDs. Requires a full snapshot.
func (g *Graph) Subgraph(nodes []NodeID) (*Graph, []NodeID) {
	g.mustFull("Subgraph")
	// IDs are dense by construction, so the remap is a flat slice indexed by
	// original ID (-1 = not selected) — no hashing on the extraction path,
	// which snowball sampling hits once per evaluation seed.
	remap := make([]NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range nodes {
		remap[v] = NodeID(i)
	}
	var edges []Edge
	for i, v := range nodes {
		for _, w := range g.row(v) {
			if j := remap[w]; j >= 0 && NodeID(i) < j {
				edges = append(edges, Edge{U: NodeID(i), V: j, Time: g.Time})
			}
		}
	}
	sub := Build(len(nodes), edges)
	sub.Time = g.Time
	back := make([]NodeID, len(nodes))
	copy(back, nodes)
	return sub, back
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes=%d edges=%d time=%d}", g.NumNodes(), g.edges, g.Time)
}

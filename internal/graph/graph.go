// Package graph provides the dynamic-network substrate used throughout the
// reproduction: timestamped edge traces, immutable graph snapshots with
// sorted adjacency lists, and the constant-delta snapshot sequencing that
// drives the paper's evaluation methodology (§3.2).
//
// Node identifiers are dense int32 values assigned in arrival order, which
// keeps snapshots compact and lets adjacency be stored as slices rather than
// maps even for graphs with millions of edges.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// NodeID identifies a node within a trace. IDs are dense and assigned in
// arrival order starting from zero.
type NodeID = int32

// Edge is a single timestamped, undirected link creation event. U < V is not
// required on input; snapshots canonicalize internally.
type Edge struct {
	U, V NodeID
	// Time is seconds since the trace epoch.
	Time int64
}

// Graph is an immutable snapshot of an undirected network at a point in
// time. Adjacency lists are sorted by NodeID, enabling O(log d) membership
// tests and linear-time neighborhood intersection.
type Graph struct {
	adj   [][]NodeID
	edges int
	// Time is the timestamp of the last edge included in the snapshot.
	Time int64
}

// NumNodes returns the number of nodes in the snapshot, including isolated
// nodes that have arrived but created no edges yet.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of node u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns the sorted adjacency list of u. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(u NodeID) []NodeID { return g.adj[u] }

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return false
	}
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, u, v = g.adj[v], v, u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// CommonNeighbors returns the sorted intersection of the neighbor sets of u
// and v. The result is freshly allocated.
func (g *Graph) CommonNeighbors(u, v NodeID) []NodeID {
	a, b := g.adj[u], g.adj[v]
	out := make([]NodeID, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// CountCommonNeighbors returns |Γ(u) ∩ Γ(v)| without allocating.
func (g *Graph) CountCommonNeighbors(u, v NodeID) int {
	a, b := g.adj[u], g.adj[v]
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// UnconnectedPairs returns the number of unordered node pairs with no edge
// between them: C(n,2) - |E|. This is the denominator of the paper's
// random-prediction expectation.
func (g *Graph) UnconnectedPairs() int64 {
	n := int64(g.NumNodes())
	return n*(n-1)/2 - int64(g.edges)
}

// Build constructs a snapshot from a set of edges over n nodes. Duplicate
// edges and self-loops are dropped. The snapshot Time is the maximum edge
// timestamp (zero for an empty edge set).
func Build(n int, edges []Edge) *Graph {
	g := &Graph{adj: make([][]NodeID, n)}
	deg := make([]int32, n)
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		deg[e.U]++
		deg[e.V]++
	}
	for i := range g.adj {
		g.adj[i] = make([]NodeID, 0, deg[i])
	}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		g.adj[e.U] = append(g.adj[e.U], e.V)
		g.adj[e.V] = append(g.adj[e.V], e.U)
		if e.Time > g.Time {
			g.Time = e.Time
		}
	}
	for u := range g.adj {
		a := g.adj[u]
		slices.Sort(a)
		// Deduplicate in place.
		w := 0
		for i := range a {
			if i == 0 || a[i] != a[i-1] {
				a[w] = a[i]
				w++
			}
		}
		g.adj[u] = a[:w]
		g.edges += w
	}
	g.edges /= 2
	return g
}

// Subgraph returns the induced subgraph on the given node set, with node IDs
// remapped densely in the order given. The second return value maps new IDs
// back to original IDs.
func (g *Graph) Subgraph(nodes []NodeID) (*Graph, []NodeID) {
	// IDs are dense by construction, so the remap is a flat slice indexed by
	// original ID (-1 = not selected) — no hashing on the extraction path,
	// which snowball sampling hits once per evaluation seed.
	remap := make([]NodeID, len(g.adj))
	for i := range remap {
		remap[i] = -1
	}
	for i, v := range nodes {
		remap[v] = NodeID(i)
	}
	var edges []Edge
	for i, v := range nodes {
		for _, w := range g.adj[v] {
			if j := remap[w]; j >= 0 && NodeID(i) < j {
				edges = append(edges, Edge{U: NodeID(i), V: j, Time: g.Time})
			}
		}
	}
	sub := Build(len(nodes), edges)
	sub.Time = g.Time
	back := make([]NodeID, len(nodes))
	copy(back, nodes)
	return sub, back
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes=%d edges=%d time=%d}", g.NumNodes(), g.edges, g.Time)
}

package predict

import (
	"linkpred/internal/graph"
	"linkpred/internal/snapcache"
)

// paAlgorithm is Preferential Attachment: score(u,v) = deg(u) * deg(v).
// Predict computes the exact global top-k with a frontier heap over the
// degree-sorted node list, the "top-K node pairs" optimization the paper
// mentions for PA's fast runtime (§3.2). The frontier expansion is
// inherently sequential (each pop decides the next pushes), so Predict runs
// on one goroutine regardless of Options.Workers — it is already the
// cheapest algorithm by orders of magnitude; ScorePairs shards normally.
type paAlgorithm struct{}

// PA is the Preferential Attachment algorithm [Barabási & Albert 1999].
var PA Algorithm = paAlgorithm{}

func (paAlgorithm) Name() string { return "PA" }

func (paAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	r := beginRun("PA", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	out := make([]float64, len(pairs))
	shardRange(opt, len(pairs), workerCount(opt), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(g.Degree(pairs[i].U)) * float64(g.Degree(pairs[i].V))
		}
	})
	return out
}

// paFrontier is a max-heap of (i, j) index pairs into the degree-sorted node
// list, ordered by degree product.
type paFrontier struct {
	items []paItem
}

type paItem struct {
	i, j    int32
	product int64
}

func (f *paFrontier) push(it paItem) {
	f.items = append(f.items, it)
	i := len(f.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if f.items[parent].product >= f.items[i].product {
			break
		}
		f.items[parent], f.items[i] = f.items[i], f.items[parent]
		i = parent
	}
}

func (f *paFrontier) pop() paItem {
	top := f.items[0]
	last := len(f.items) - 1
	f.items[0] = f.items[last]
	f.items = f.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < last && f.items[l].product > f.items[largest].product {
			largest = l
		}
		if r < last && f.items[r].product > f.items[largest].product {
			largest = r
		}
		if largest == i {
			break
		}
		f.items[i], f.items[largest] = f.items[largest], f.items[i]
		i = largest
	}
	return top
}

func (paAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	opt = resolvePartition(g, opt)
	validateOptions(opt)
	r := beginRun("PA", opPredict)
	defer r.end()
	opt.rec = r
	n := g.NumNodes()
	if n < 2 || k <= 0 {
		return nil
	}
	// Nodes sorted by descending degree (stable on ID for determinism),
	// shared through the snapshot cache with the other supernode consumers.
	order := snapcache.For(g).DegreeOrder()
	deg := func(i int32) int64 { return int64(g.Degree(order[i])) }

	top := newTopKRec(k, opt)
	var frontier paFrontier
	frontier.push(paItem{i: 0, j: 1, product: deg(0) * deg(1)})
	visited := map[uint64]bool{PairKey(0, 1): true}
	// The frontier pops products in non-increasing order, so once the top-k
	// heap is full and the next product is strictly worse than its minimum,
	// the selection is exact. Under a SourceRange the frontier expansion is
	// unchanged and only emission is filtered by pair ownership; the early
	// break then reasons about the heap of owned pairs, which is exact for
	// the shard's universe (a sparser frontier just pops further).
	for len(frontier.items) > 0 {
		it := frontier.pop()
		if len(top.pairs) == k && float64(it.product) < top.pairs[0].Score {
			break
		}
		u, v := order[it.i], order[it.j]
		// Ownership is checked first: on a partitioned snapshot an owned pair
		// guarantees HasEdge an owned (complete) endpoint row, and unowned
		// pairs must not probe adjacency at all.
		if opt.ownsPair(u, v) && !g.HasEdge(u, v) {
			top.Add(u, v, float64(it.product))
		}
		if int(it.i+1) < n && it.i+1 < it.j {
			key := PairKey(it.i+1, it.j)
			if !visited[key] {
				visited[key] = true
				frontier.push(paItem{i: it.i + 1, j: it.j, product: deg(it.i+1) * deg(it.j)})
			}
		}
		if int(it.j+1) < n {
			key := PairKey(it.i, it.j+1)
			if !visited[key] {
				visited[key] = true
				frontier.push(paItem{i: it.i, j: it.j + 1, product: deg(it.i) * deg(it.j+1)})
			}
		}
	}
	return top.Result()
}

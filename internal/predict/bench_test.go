package predict

import (
	"fmt"
	"runtime"
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/liveeval"
	"linkpred/internal/obs"
)

// benchGraph is a mid-size Renren-like snapshot shared by the package
// microbenchmarks.
func benchGraph(b *testing.B) (*graph.Graph, int) {
	b.Helper()
	cfg := gen.Renren(1).Scaled(0.2)
	tr := gen.MustGenerate(cfg)
	delta := gen.DefaultDelta(cfg)
	cuts := tr.Cuts(delta)
	g := tr.SnapshotAtEdge(cuts[len(cuts)-2].EdgeCount)
	return g, delta
}

// BenchmarkPredictScorePairs measures batch scoring throughput per
// algorithm over a fixed 2-hop candidate sample.
func BenchmarkPredictScorePairs(b *testing.B) {
	g, _ := benchGraph(b)
	var pairs []Pair
	twoHopPairs(g, func(u, v graph.NodeID) {
		if len(pairs) < 5000 {
			pairs = append(pairs, Pair{U: u, V: v})
		}
	})
	opt := DefaultOptions()
	for _, alg := range All() {
		b.Run(alg.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scores := alg.ScorePairs(g, pairs, opt)
				if len(scores) != len(pairs) {
					b.Fatal("score length mismatch")
				}
			}
		})
	}
}

// benchWorkerCounts are the engine configurations compared by the parallel
// benchmarks: serial, a fixed multi-worker count, and the host's capacity.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// BenchmarkPredictParallel measures full top-k prediction per algorithm at
// each worker count. Speedups only materialize with GOMAXPROCS > 1; the
// determinism suite proves the output is identical either way.
func BenchmarkPredictParallel(b *testing.B) {
	g, _ := benchGraph(b)
	k := 200
	for _, alg := range All() {
		for _, w := range benchWorkerCounts() {
			opt := DefaultOptions()
			opt.Workers = w
			b.Run(fmt.Sprintf("%s/workers=%d", alg.Name(), w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if len(alg.Predict(g, k, opt)) == 0 {
						b.Fatal("no predictions")
					}
				}
			})
		}
	}
}

// BenchmarkPredictTelemetry quantifies the telemetry tax on the hottest
// path: CN.Predict with collection disabled (the default; the off/disabled
// delta is the <2% overhead budget DESIGN.md §6 commits to), enabled, and
// enabled with the full serving-side liveeval hook — recording every
// prediction into a prequential engine and scoring a stream of ingested
// edges against it, the way internal/serve wires it. The liveeval mode
// exists so the accuracy loop's cost is measured against the same baseline
// as the rest of the telemetry budget.
func BenchmarkPredictTelemetry(b *testing.B) {
	g, _ := benchGraph(b)
	opt := DefaultOptions()
	opt.Workers = 4
	for _, mode := range []struct {
		name     string
		enabled  bool
		liveeval bool
	}{{"disabled", false, false}, {"enabled", true, false}, {"enabled-liveeval", true, true}} {
		b.Run(mode.name, func(b *testing.B) {
			obs.Reset()
			obs.Enable(mode.enabled)
			defer func() {
				obs.Enable(false)
				obs.Reset()
			}()
			var eval *liveeval.Engine
			if mode.liveeval {
				eval = liveeval.New(liveeval.Config{TopK: 128, Ring: 4, Window: 1024, HalfLife: 256})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pairs := CN.Predict(g, 200, opt)
				if len(pairs) == 0 {
					b.Fatal("no predictions")
				}
				if eval != nil {
					ranked := make([][2]graph.NodeID, len(pairs))
					for j, p := range pairs {
						ranked[j] = [2]graph.NodeID{p.U, p.V}
					}
					eval.Record("CN", int64(i), 0, i*64, ranked)
					for e := 0; e < 64; e++ {
						eval.ObserveEdge(graph.NodeID(e%500), graph.NodeID(500+e), i*64+e)
					}
				}
			}
		})
	}
}

// BenchmarkTwoHopEnumeration measures the candidate sweep itself.
func BenchmarkTwoHopEnumeration(b *testing.B) {
	g, _ := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		twoHopPairs(g, func(u, v graph.NodeID) { count++ })
		if count == 0 {
			b.Fatal("no 2-hop pairs")
		}
	}
}

// BenchmarkTopKSelection measures the bounded heap under heavy churn.
func BenchmarkTopKSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		top := newTopK(500, 1)
		for v := graph.NodeID(1); v < 100000; v++ {
			top.Add(0, v, float64(v%997))
		}
		if len(top.Result()) != 500 {
			b.Fatal("selection size wrong")
		}
	}
}

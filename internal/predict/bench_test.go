package predict

import (
	"fmt"
	"runtime"
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/obs"
)

// benchGraph is a mid-size Renren-like snapshot shared by the package
// microbenchmarks.
func benchGraph(b *testing.B) (*graph.Graph, int) {
	b.Helper()
	cfg := gen.Renren(1).Scaled(0.2)
	tr := gen.MustGenerate(cfg)
	delta := gen.DefaultDelta(cfg)
	cuts := tr.Cuts(delta)
	g := tr.SnapshotAtEdge(cuts[len(cuts)-2].EdgeCount)
	return g, delta
}

// BenchmarkPredictScorePairs measures batch scoring throughput per
// algorithm over a fixed 2-hop candidate sample.
func BenchmarkPredictScorePairs(b *testing.B) {
	g, _ := benchGraph(b)
	var pairs []Pair
	twoHopPairs(g, func(u, v graph.NodeID) {
		if len(pairs) < 5000 {
			pairs = append(pairs, Pair{U: u, V: v})
		}
	})
	opt := DefaultOptions()
	for _, alg := range All() {
		b.Run(alg.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				scores := alg.ScorePairs(g, pairs, opt)
				if len(scores) != len(pairs) {
					b.Fatal("score length mismatch")
				}
			}
		})
	}
}

// benchWorkerCounts are the engine configurations compared by the parallel
// benchmarks: serial, a fixed multi-worker count, and the host's capacity.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

// BenchmarkPredictParallel measures full top-k prediction per algorithm at
// each worker count. Speedups only materialize with GOMAXPROCS > 1; the
// determinism suite proves the output is identical either way.
func BenchmarkPredictParallel(b *testing.B) {
	g, _ := benchGraph(b)
	k := 200
	for _, alg := range All() {
		for _, w := range benchWorkerCounts() {
			opt := DefaultOptions()
			opt.Workers = w
			b.Run(fmt.Sprintf("%s/workers=%d", alg.Name(), w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if len(alg.Predict(g, k, opt)) == 0 {
						b.Fatal("no predictions")
					}
				}
			})
		}
	}
}

// BenchmarkPredictTelemetry quantifies the telemetry tax on the hottest
// path: CN.Predict with collection disabled (the default; the off/disabled
// delta is the <2% overhead budget DESIGN.md §6 commits to) and enabled.
func BenchmarkPredictTelemetry(b *testing.B) {
	g, _ := benchGraph(b)
	opt := DefaultOptions()
	opt.Workers = 4
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"disabled", false}, {"enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			obs.Reset()
			obs.Enable(mode.enabled)
			defer func() {
				obs.Enable(false)
				obs.Reset()
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(CN.Predict(g, 200, opt)) == 0 {
					b.Fatal("no predictions")
				}
			}
		})
	}
}

// BenchmarkTwoHopEnumeration measures the candidate sweep itself.
func BenchmarkTwoHopEnumeration(b *testing.B) {
	g, _ := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		twoHopPairs(g, func(u, v graph.NodeID) { count++ })
		if count == 0 {
			b.Fatal("no 2-hop pairs")
		}
	}
}

// BenchmarkTopKSelection measures the bounded heap under heavy churn.
func BenchmarkTopKSelection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		top := newTopK(500, 1)
		for v := graph.NodeID(1); v < 100000; v++ {
			top.Add(0, v, float64(v%997))
		}
		if len(top.Result()) != 500 {
			b.Fatal("selection size wrong")
		}
	}
}

package predict

import (
	"math"
	"testing"
	"testing/quick"

	"linkpred/internal/graph"
)

func TestExtensionValues(t *testing.T) {
	g := kite()
	// Pair (0,3): |∩| = 2, deg(0)=2, deg(3)=3.
	cases := []struct {
		alg  Algorithm
		want float64
	}{
		{Salton, 2 / math.Sqrt(6)},
		{Sorensen, 4.0 / 5.0},
		{HPI, 1},       // 2/min(2,3)
		{HDI, 2.0 / 3}, // 2/max(2,3)
		{LHN, 2.0 / 6},
	}
	for _, tc := range cases {
		if got := scoreOne(t, tc.alg, g, 0, 3); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s(0,3) = %v, want %v", tc.alg.Name(), got, tc.want)
		}
		// No common neighbors → 0.
		if got := scoreOne(t, tc.alg, g, 0, 4); got != 0 {
			t.Errorf("%s(0,4) = %v, want 0", tc.alg.Name(), got)
		}
	}
}

func TestExtensionsRegistry(t *testing.T) {
	exts := Extensions()
	if len(exts) != 6 {
		t.Fatalf("extensions = %d", len(exts))
	}
	for _, a := range exts {
		got, err := ByName(a.Name())
		if err != nil || got.Name() != a.Name() {
			t.Errorf("ByName(%q): %v", a.Name(), err)
		}
		// Extensions must not leak into the paper-faithful registries.
		for _, core := range All() {
			if core.Name() == a.Name() {
				t.Errorf("extension %s also in All()", a.Name())
			}
		}
	}
}

func TestExtensionsPredictContract(t *testing.T) {
	g := randomGraph(17, 40, 120)
	opt := DefaultOptions()
	for _, a := range Extensions() {
		pred := a.Predict(g, 10, opt)
		for _, p := range pred {
			if g.HasEdge(p.U, p.V) {
				t.Errorf("%s predicted existing edge %+v", a.Name(), p)
			}
		}
		again := a.Predict(g, 10, opt)
		for i := range pred {
			if pred[i] != again[i] {
				t.Errorf("%s non-deterministic", a.Name())
			}
		}
	}
}

// Property: the normalized indices stay within their analytic ranges and
// respect known dominance relations (HPI >= Salton >= HDI >= LHN·min-deg
// relations are fiddly; we assert the simple bounds).
func TestExtensionBoundsQuick(t *testing.T) {
	opt := DefaultOptions()
	f := func(seed int64) bool {
		g := randomGraph(seed, 25, 60)
		var pairs []Pair
		for u := 0; u < 25; u++ {
			for v := u + 1; v < 25; v++ {
				pairs = append(pairs, Pair{U: graph.NodeID(u), V: graph.NodeID(v)})
			}
		}
		salton := Salton.ScorePairs(g, pairs, opt)
		sorensen := Sorensen.ScorePairs(g, pairs, opt)
		hpi := HPI.ScorePairs(g, pairs, opt)
		hdi := HDI.ScorePairs(g, pairs, opt)
		for i := range pairs {
			for _, v := range []float64{salton[i], sorensen[i], hpi[i], hdi[i]} {
				if v < 0 || v > 1+1e-12 {
					return false
				}
			}
			// HPI divides by the min degree, HDI by the max: HPI >= HDI.
			if hpi[i]+1e-12 < hdi[i] {
				return false
			}
			// Salton is the geometric-mean normalization, between the two.
			if salton[i] > hpi[i]+1e-9 || salton[i]+1e-9 < hdi[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

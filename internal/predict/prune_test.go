package predict

import (
	"math"
	"math/rand"
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/snapcache"
)

// The pruned candidate engine's contract: Predict output is bit-identical
// to the exhaustive fused sweep and to the per-pair intersection reference
// for every local metric, worker count, and graph shape — pruning may only
// remove sources whose bound proves they cannot reach the top k. These
// tests force pruning on skewed graphs (the small fused_test fixtures fit
// in one batch and never prune) and pin the worker-invariant telemetry.

// pruneHubbyGraph builds a deterministic skewed graph: a handful of dense
// hubs wired to much of the node set plus a long low-degree tail — the
// shape where threshold pruning bites (tail bounds fall below the top-k
// floor set by hub candidates).
func pruneHubbyGraph(seed int64, n, hubs int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for h := 0; h < hubs; h++ {
		for v := hubs; v < n; v++ {
			if rng.Intn(3*(hubs-h)) == 0 {
				edges = append(edges, graph.Edge{U: graph.NodeID(h), V: graph.NodeID(v)})
			}
		}
	}
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{
			U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n)),
		})
	}
	return graph.Build(n, edges)
}

// hostileGraph glues together the adversarial shapes in one snapshot: a
// star whose center clears the hub-bitset degree floor, a clique (whose
// members have no 2-hop candidates among themselves), isolated nodes, and
// a few bridges between the regions.
func hostileGraph() *graph.Graph {
	const (
		leaves      = 200 // star: node 0 + leaves 1..200
		cliqueStart = 201
		cliqueEnd   = 221 // clique on 201..220
		isolatedEnd = 241 // 221..240 isolated
	)
	var edges []graph.Edge
	for v := 1; v <= leaves; v++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.NodeID(v)})
	}
	for u := cliqueStart; u < cliqueEnd; u++ {
		for v := u + 1; v < cliqueEnd; v++ {
			edges = append(edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)})
		}
	}
	// Bridges: a few leaves into the clique, so the regions interact.
	for i := 0; i < 5; i++ {
		edges = append(edges, graph.Edge{U: graph.NodeID(1 + i), V: graph.NodeID(cliqueStart + i)})
	}
	return graph.Build(isolatedEnd, edges)
}

func pruneGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"hubby":   pruneHubbyGraph(1, 1500, 5),
		"hostile": hostileGraph(),
		"clique":  graph.Build(30, cliqueEdges(30)),
	}
}

func cliqueEdges(n int) []graph.Edge {
	var edges []graph.Edge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)})
		}
	}
	return edges
}

// TestPrunedPredictComplete is the candidate-set completeness property
// test: for all 12 local metrics, worker counts 1/2/4/7, a pruning k and a
// heap-never-fills k, the pruned Predict must equal both the exhaustive
// fused sweep and the per-pair reference bit for bit (pairs, order, float
// scores).
func TestPrunedPredictComplete(t *testing.T) {
	for name, g := range pruneGraphs() {
		for _, m := range fusedMetrics() {
			for _, k := range []int{15, 5000} {
				opt := DefaultOptions()
				opt.Workers = 1
				ref := m.referencePredict(g, k, opt)
				opt.ExhaustiveSweep = true
				exh := m.Predict(g, k, opt)
				if len(exh) != len(ref) {
					t.Fatalf("%s/%s k=%d: exhaustive %d pairs, reference %d", name, m.name, k, len(exh), len(ref))
				}
				for _, w := range fusedWorkerCounts() {
					opt = DefaultOptions()
					opt.Workers = w
					got := m.Predict(g, k, opt)
					if len(got) != len(ref) {
						t.Errorf("%s/%s k=%d workers=%d: pruned %d pairs, reference %d",
							name, m.name, k, w, len(got), len(ref))
						continue
					}
					for i := range ref {
						if got[i] != ref[i] {
							t.Errorf("%s/%s k=%d workers=%d: rank %d pruned %+v, reference %+v",
								name, m.name, k, w, i, got[i], ref[i])
							break
						}
					}
				}
			}
		}
	}
}

// TestPrunedPredictActuallyPrunes guards the test above against vacuity:
// on the skewed fixture with a small k the engine must skip a substantial
// share of sources, for every metric with a non-trivial bound.
func TestPrunedPredictActuallyPrunes(t *testing.T) {
	g := pruneHubbyGraph(1, 1500, 5)
	for _, alg := range []Algorithm{CN, AA, RA, BCN, BAA, BRA, LHN} {
		withTelemetry(t, func() {
			opt := DefaultOptions()
			opt.Workers = 1
			alg.Predict(g, 15, opt)
			c, ok := obs.LookupCounter("predict/" + alg.Name() + "/sources_pruned")
			if !ok || c.Value() == 0 {
				t.Errorf("%s: no sources pruned on the skewed fixture (ok=%v)", alg.Name(), ok)
			} else if c.Value() < int64(g.NumNodes())/4 {
				t.Errorf("%s: only %d of %d sources pruned", alg.Name(), c.Value(), g.NumNodes())
			}
		})
	}
}

// TestPruneTelemetryWorkerInvariant pins the candidates_generated and
// sources_pruned counters: batch boundaries and merged floors depend only
// on (graph, k, seed), so the exact counts must be identical at workers 1
// and 4.
func TestPruneTelemetryWorkerInvariant(t *testing.T) {
	g := pruneHubbyGraph(2, 1500, 5)
	for _, alg := range []Algorithm{CN, AA, LHN} {
		counts := map[int][2]int64{}
		for _, workers := range []int{1, 4} {
			withTelemetry(t, func() {
				opt := DefaultOptions()
				opt.Workers = workers
				alg.Predict(g, 15, opt)
				var got [2]int64
				if c, ok := obs.LookupCounter("predict/" + alg.Name() + "/candidates_generated"); ok {
					got[0] = c.Value()
				}
				if c, ok := obs.LookupCounter("predict/" + alg.Name() + "/sources_pruned"); ok {
					got[1] = c.Value()
				}
				counts[workers] = got
			})
		}
		if counts[1] != counts[4] {
			t.Errorf("%s: counters differ across worker counts: workers=1 %v, workers=4 %v",
				alg.Name(), counts[1], counts[4])
		}
		if counts[1][0] == 0 || counts[1][1] == 0 {
			t.Errorf("%s: degenerate counts %v — fixture exercises no pruning", alg.Name(), counts[1])
		}
	}
}

// TestWorkerClampKeepsTinySweepsSerial covers the small-graph regression
// fix: a sweep whose estimated wedge work is under the per-worker floor
// must not fan out even when Options.Workers asks for parallelism, and the
// clamped run's output must be bit-identical to the serial one.
func TestWorkerClampKeepsTinySweepsSerial(t *testing.T) {
	g := randomGraph(5, 80, 200)
	if w := wedgeWork(g); w >= minSweepWork {
		t.Fatalf("fixture too large to test the clamp: wedge work %d", w)
	}
	for _, alg := range []Algorithm{CN, JC, AA} {
		opt := DefaultOptions()
		opt.Workers = 1
		want := alg.Predict(g, 30, opt)
		var got []Pair
		withTelemetry(t, func() {
			opt.Workers = 4
			got = alg.Predict(g, 30, opt)
			if c, ok := obs.LookupCounter("engine/shard_fanouts"); ok && c.Value() != 0 {
				t.Errorf("%s: %d shard fanouts on a sub-threshold sweep at Workers=4", alg.Name(), c.Value())
			}
		})
		if len(got) != len(want) {
			t.Fatalf("%s: clamped run returned %d pairs, serial %d", alg.Name(), len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: rank %d clamped %+v, serial %+v", alg.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestScorePairsHubProbesMatchReference drives the bitset probe path in
// scorePairsFused with a duplicate-heavy batch against a hub source: many
// repeated, reversed, self, and connected queries whose group cost makes
// probing cheaper than sweeping. Scores must equal the per-pair reference
// bit for bit at every worker count.
func TestScorePairsHubProbesMatchReference(t *testing.T) {
	g := hostileGraph() // node 0 is a 200-leaf star center, over the hub floor
	if snapcache.For(g).CSRView().Hubs == 0 {
		t.Fatal("fixture has no hub rows; probe path unreachable")
	}
	var pairs []Pair
	for i := 0; i < 40; i++ {
		pairs = append(pairs,
			Pair{U: 0, V: graph.NodeID(1 + i%7)},           // duplicate-heavy hub source, connected targets
			Pair{U: 0, V: graph.NodeID(205 + i%3)},         // hub source, clique targets
			Pair{U: graph.NodeID(1 + i%5), V: 0},           // reversed: low-degree source, hub target
			Pair{U: 0, V: 0},                               // self pair on the hub
			Pair{U: graph.NodeID(225), V: graph.NodeID(3)}, // isolated source
		)
	}
	for _, m := range fusedMetrics() {
		opt := DefaultOptions()
		opt.Workers = 1
		want := m.referenceScorePairs(g, pairs, opt)
		for _, w := range fusedWorkerCounts() {
			opt.Workers = w
			got := m.ScorePairs(g, pairs, opt)
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s workers=%d: score[%d] = %v, reference %v (pair %+v)",
						m.name, w, i, got[i], want[i], pairs[i])
					break
				}
			}
		}
	}
}

// TestNaiveBayesHubProbesMatchBruteForce pins the bitset-accelerated
// triangle statistics against an independent per-edge enumeration: same
// per-node triangle counts, hence bit-identical role ratios, at workers 1
// and 4.
func TestNaiveBayesHubProbesMatchBruteForce(t *testing.T) {
	g := pruneHubbyGraph(3, 900, 4)
	if snapcache.For(g).CSRView().Hubs == 0 {
		t.Fatal("fixture has no hub rows; probe path unreachable")
	}
	n := g.NumNodes()
	tri := make([]int64, n)
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		for _, v := range g.Neighbors(uid) {
			if v <= uid {
				continue
			}
			for _, w := range g.CommonNeighbors(uid, v) {
				if w > v { // count each triangle once, at its smallest edge
					tri[uid]++
					tri[v]++
					tri[w]++
				}
			}
		}
	}
	for _, workers := range []int{1, 4} {
		opt := DefaultOptions()
		opt.Workers = workers
		nb := newNaiveBayes(g, opt)
		for w := 0; w < n; w++ {
			deg := int64(g.Degree(graph.NodeID(w)))
			open := deg*(deg-1)/2 - tri[w]
			if open < 0 {
				open = 0
			}
			want := math.Log(float64(tri[w]+1) / float64(open+1))
			if nb.logR[w] != want {
				t.Fatalf("workers=%d: logR[%d] = %v, brute force %v (tri=%d)", workers, w, nb.logR[w], want, tri[w])
			}
		}
	}
}

// TestPrunedPredictSmallK exercises degenerate selector sizes through the
// pruned engine (k smaller than the first batch floor interplay, k = 1,
// and k = 0, which must return an empty, non-panicking result).
func TestPrunedPredictSmallK(t *testing.T) {
	g := pruneHubbyGraph(4, 800, 4)
	for _, k := range []int{0, 1, 3} {
		for _, m := range fusedMetrics() {
			opt := DefaultOptions()
			opt.Workers = 2
			want := m.referencePredict(g, k, opt)
			got := m.Predict(g, k, opt)
			if len(got) != len(want) {
				t.Fatalf("%s k=%d: pruned %d pairs, reference %d", m.name, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s k=%d: rank %d pruned %+v, reference %+v", m.name, k, i, got[i], want[i])
				}
			}
		}
	}
}

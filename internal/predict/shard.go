package predict

import "linkpred/internal/graph"

// This file is the source-sharding layer of the prediction engine: the
// SourceRange restriction that lets N processes each sweep a contiguous
// slice of the source-node space, and the exported merge primitives that
// fold their partial top-k lists back into the exact single-process result.
//
// Ownership rule. Every candidate pair (u, v) is owned by exactly one
// shard: the one whose range contains the canonical lower endpoint
// min(u, v). The per-source sweeps (local family, LP, SP, LRW, SRW,
// KatzExact, the 2-hop phase of the global candidate set) emit candidates
// as (u, v) with v > u from source u, so restricting their source loop to
// [Lo, Hi) implements the rule directly. Sweeps whose traversal cannot be
// range-restricted — the PA frontier, PPR's two-sided push accumulation,
// the global set's block and random phases — run their full traversal and
// filter emission by the same rule, so the union of the shards' candidate
// universes is a disjoint partition of the unrestricted universe at every
// shard count.
//
// Merge exactness. Each shard's Predict returns the exact top k of its
// ownership universe (threshold pruning, the PA early break, and the SP
// 2-hop shortcut all reason only about that universe). Any pair in the
// global top k has at most k-1 pairs ranking above it globally, hence at
// most k-1 above it within its owning shard, so it appears in that shard's
// local top k — MergeTopK over the shards therefore reproduces the
// unrestricted top k. Scores are computed by the same per-source
// accumulation code either way and the tie-hash depends only on
// (seed, pair), so the reproduction is bit-identical, at any shard count
// and any per-shard Options.Workers.

// SourceRange restricts a Predict call to the candidate pairs owned by the
// half-open source-node interval [Lo, Hi). See Options.SourceRange.
type SourceRange struct {
	Lo, Hi int
}

// ShardSourceRange returns the contiguous source range owned by shard
// index shard of shards over an n-node snapshot: [shard·n/shards,
// (shard+1)·n/shards). Every node belongs to exactly one shard and range
// sizes differ by at most one. Panics on an invalid shard index.
func ShardSourceRange(n, shard, shards int) SourceRange {
	if shards <= 0 || shard < 0 || shard >= shards {
		panic("predict: invalid shard index")
	}
	if n < 0 {
		n = 0
	}
	return SourceRange{Lo: shard * n / shards, Hi: (shard + 1) * n / shards}
}

// WeightedSourceRanges partitions [0, n) into shards contiguous source
// ranges of approximately equal sweep cost instead of equal node count.
// Growth traces assign low IDs to old nodes, and old nodes are the hubs, so
// equal-count ranges pile the expensive sources — and, under the min(u, v)
// ownership rule, nearly all hub–hub candidates — onto shard 0; measured on
// renren-100k, shard 0 of 4 carries ~65% of the sweep. The weight here is
// each source's wedge count Σ_{v∈N(u)} deg(v) (+1 per node so empty ranges
// only appear when shards > n), the work driver of the local-family sweep
// and a serviceable proxy for the other per-source families. Boundaries are
// chosen by prefix-sum so every shard gets ~total/shards weight.
//
// The split is a pure function of the snapshot's degree sequence: replicas
// holding identical snapshots compute identical boundaries with no
// coordination, which is what lets each cluster worker derive its own range
// from (shard, shards) alone. The ranges are contiguous, disjoint, and
// cover [0, n), so the ownership rule and merge-exactness argument above
// apply unchanged.
func WeightedSourceRanges(g *graph.Graph, shards int) []SourceRange {
	if shards <= 0 {
		panic("predict: invalid shard count")
	}
	n := g.NumNodes()
	var total uint64
	weight := make([]uint64, n)
	for u := 0; u < n; u++ {
		w := uint64(1)
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			w += uint64(g.Degree(v))
		}
		weight[u] = w
		total += w
	}
	ranges := make([]SourceRange, shards)
	lo := 0
	var acc uint64
	for s := 0; s < shards; s++ {
		hi := lo
		if s == shards-1 {
			hi = n
		} else {
			target := total * uint64(s+1) / uint64(shards)
			for hi < n && acc+weight[hi] <= target {
				acc += weight[hi]
				hi++
			}
		}
		ranges[s] = SourceRange{Lo: lo, Hi: hi}
		lo = hi
	}
	return ranges
}

// sourceSpan resolves the call's source restriction against an n-node
// snapshot: nil means the full [0, n), anything else is clamped into it.
func (o *Options) sourceSpan(n int) (lo, hi int) {
	if o.SourceRange == nil {
		return 0, n
	}
	lo, hi = o.SourceRange.Lo, o.SourceRange.Hi
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// ownsPair reports whether the call's restriction owns candidate (u, v):
// the canonical lower endpoint falls inside the range. With no restriction
// every pair is owned. This is the emission filter for sweeps that cannot
// restrict their traversal (PA, PPR, the global block/random phases).
func (o *Options) ownsPair(u, v graph.NodeID) bool {
	if o.SourceRange == nil {
		return true
	}
	m := int(minID(u, v))
	return m >= o.SourceRange.Lo && m < o.SourceRange.Hi
}

// TieHash is the deterministic tie-break hash behind every ranked
// selection: splitmix64 over the seed and the canonical pair key. Exported
// so out-of-process mergers (the cluster router) can reason about — and
// tests can verify — the exact order Predict uses for equal scores.
func TieHash(seed int64, u, v graph.NodeID) uint64 {
	return tieHash(seed, u, v)
}

// MergeTopK folds N independently selected top-k lists into the top k of
// their union, using the same score-then-tie-hash order Predict uses. If
// each part is a shard's Predict output produced with the same seed and k
// over disjoint ownership ranges, the merge is bit-identical to the
// unrestricted single-process Predict — the tie-hash depends only on
// (seed, pair), so re-offering a pair here reproduces the hash it carried
// inside the shard. Part order never matters; parts may be nil or short.
func MergeTopK(parts [][]Pair, k int, seed int64) []Pair {
	t := newTopK(k, seed)
	for _, part := range parts {
		for _, p := range part {
			t.add(Pair{U: minID(p.U, p.V), V: maxID(p.U, p.V), Score: p.Score}, tieHash(seed, p.U, p.V))
		}
	}
	return t.Result()
}

package predict

import (
	"fmt"
	"math/bits"

	"linkpred/internal/graph"
)

// This file is the source-sharding layer of the prediction engine: the
// SourceRange restriction that lets N processes each sweep a contiguous
// slice of the source-node space, and the exported merge primitives that
// fold their partial top-k lists back into the exact single-process result.
//
// Ownership rule. Every candidate pair (u, v) is owned by exactly one
// shard: the one whose range contains the canonical lower endpoint
// min(u, v). The per-source sweeps (local family, LP, SP, LRW, SRW,
// KatzExact, the 2-hop phase of the global candidate set) emit candidates
// as (u, v) with v > u from source u, so restricting their source loop to
// [Lo, Hi) implements the rule directly. Sweeps whose traversal cannot be
// range-restricted — the PA frontier, PPR's two-sided push accumulation,
// the global set's block and random phases — run their full traversal and
// filter emission by the same rule, so the union of the shards' candidate
// universes is a disjoint partition of the unrestricted universe at every
// shard count.
//
// Merge exactness. Each shard's Predict returns the exact top k of its
// ownership universe (threshold pruning, the PA early break, and the SP
// 2-hop shortcut all reason only about that universe). Any pair in the
// global top k has at most k-1 pairs ranking above it globally, hence at
// most k-1 above it within its owning shard, so it appears in that shard's
// local top k — MergeTopK over the shards therefore reproduces the
// unrestricted top k. Scores are computed by the same per-source
// accumulation code either way and the tie-hash depends only on
// (seed, pair), so the reproduction is bit-identical, at any shard count
// and any per-shard Options.Workers.

// SourceRange restricts a Predict call to the candidate pairs owned by the
// half-open source-node interval [Lo, Hi). See Options.SourceRange.
type SourceRange struct {
	Lo, Hi int
}

// ShardSourceRange returns the contiguous source range owned by shard
// index shard of shards over an n-node snapshot: [shard·n/shards,
// (shard+1)·n/shards). Every node belongs to exactly one shard and range
// sizes differ by at most one. Panics on an invalid shard index.
func ShardSourceRange(n, shard, shards int) SourceRange {
	if shards <= 0 || shard < 0 || shard >= shards {
		panic("predict: invalid shard index")
	}
	if n < 0 {
		n = 0
	}
	return SourceRange{Lo: shard * n / shards, Hi: (shard + 1) * n / shards}
}

// CostModel selects the per-source work estimate shard boundaries are
// balanced over. One wedge-weight model fits the unbounded local sweeps but
// misprices everything else: the naive Bayes kernels prune hub sources
// almost immediately (their per-witness terms go negative exactly where
// wedge counts explode), and the latent families do per-source work
// proportional to a row, not a wedge fan-out. Balancing each family by its
// own cost curve is what lifts the bounded kernels past the ~1.8× plateau
// the wedge split left them at on 4 shards.
type CostModel uint8

const (
	// CostWedge weighs source u by 1 + Σ_{v∈N(u)} deg(v), the wedge-visit
	// count of the unbounded local sweep (CN, JC, AA, RA and the survey
	// extensions).
	CostWedge CostModel = iota
	// CostCappedWedge weighs source u by 1 + Σ_{v∈N(u)} min(deg(v),
	// WedgeCap). The naive Bayes family's additive score bounds collapse on
	// hub sources (hub witnesses carry negative log role-ratios), so top-k
	// pruning truncates their hub sweeps after a bounded amount of work —
	// the uncapped model bills shard 0 for wedges the pruned engine never
	// visits and starves the tail shards.
	CostCappedWedge
	// CostRows weighs source u by 1 + deg(u): the per-source cost of the
	// row-driven families (matvec-backed latents, walks, paths), which
	// touch each adjacency row O(1) times per iteration rather than
	// fanning out through neighbor degrees.
	CostRows
)

// WedgeCap is the per-neighbor degree cap of CostCappedWedge. The value
// tracks the effective hub truncation of the pruned naive Bayes sweeps on
// power-law growth traces; it is a balance heuristic only — boundary choice
// never affects output, just shard wall-clock skew.
const WedgeCap = 64

// CostModelFor maps an algorithm name to the cost model that best predicts
// its per-source sweep cost. Unknown names get CostWedge, the conservative
// default.
func CostModelFor(alg string) CostModel {
	switch alg {
	case "BCN", "BAA", "BRA":
		return CostCappedWedge
	case "SP", "LP", "LRW", "SRW", "PPR", "Katz", "KatzSC", "KatzExact", "Rescal":
		return CostRows
	default:
		return CostWedge
	}
}

// SourceCosts returns the per-source cost array of model over g, plus its
// total. Costs are exact integer functions of the degree sequence (every
// node contributes at least 1, so empty ranges only appear when shards >
// n). Requires a full snapshot: boundary planning happens where the whole
// degree/adjacency structure lives (replicas and the bench harness), never
// on a partitioned shard.
//
// The wedge models additionally apply a pruning-survival weight: the
// top-k engine sweeps sources in descending upper-bound order and
// truncates the suffix once the floor passes it, so a source's expected
// work is its wedge count times the chance it is swept at all. Growth
// traces assign low IDs to old (hub) nodes, whose bounds stay above any
// floor, while high-ID tail sources are almost always truncated —
// profiled in 16 equal-wedge blocks on renren-100k, the effective cost
// per wedge decays near-linearly from ~1.7× the mean at the head to
// ~0.4× at the tail. The weight m(F) = 7/4 − 5/4·F (F = wedge-prefix
// fraction) models that decay; without it, raw wedge balance hands the
// hub shard ~1.6× the mean wall clock (2.3× at 4 shards where ~3.2× is
// reachable). Still a pure integer function of the degree sequence, so
// replicas agree; boundary choice never affects output, only skew.
func SourceCosts(g *graph.Graph, model CostModel) (costs []uint64, total uint64) {
	mustFullGraph(g, "SourceCosts")
	n := g.NumNodes()
	costs = make([]uint64, n)
	for u := 0; u < n; u++ {
		w := uint64(1)
		switch model {
		case CostRows:
			w += uint64(g.Degree(graph.NodeID(u)))
		case CostCappedWedge:
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				if d := g.Degree(v); d < WedgeCap {
					w += uint64(d)
				} else {
					w += WedgeCap
				}
			}
		default:
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				w += uint64(g.Degree(v))
			}
		}
		costs[u] = w
		total += w
	}
	if model == CostRows || total == 0 {
		return costs, total
	}
	// costs[u] ← costs[u] · (7·total − 5·prefix) / (4·total), in 128-bit
	// intermediates so degenerate dense graphs cannot overflow.
	var prefix, rescaled uint64
	for u := range costs {
		w := costs[u]
		hi, lo := bits.Mul64(w, 7*total-5*prefix)
		q, _ := bits.Div64(hi, lo, 4*total)
		if q == 0 {
			q = 1
		}
		costs[u] = q
		prefix += w
		rescaled += q
	}
	return costs, rescaled
}

// RangesFromCosts partitions [0, len(costs)) into shards contiguous ranges
// of approximately equal total cost, by prefix-sum against evenly spaced
// targets. The ranges are contiguous, disjoint, and cover the whole span,
// so the ownership rule and merge-exactness argument above apply at any
// boundary placement.
func RangesFromCosts(costs []uint64, total uint64, shards int) []SourceRange {
	if shards <= 0 {
		panic("predict: invalid shard count")
	}
	n := len(costs)
	ranges := make([]SourceRange, shards)
	lo := 0
	var acc uint64
	for s := 0; s < shards; s++ {
		hi := lo
		if s == shards-1 {
			hi = n
		} else {
			target := total * uint64(s+1) / uint64(shards)
			for hi < n && acc+costs[hi] <= target {
				acc += costs[hi]
				hi++
			}
		}
		ranges[s] = SourceRange{Lo: lo, Hi: hi}
		lo = hi
	}
	return ranges
}

// WeightedSourceRangesFor partitions [0, n) into shards contiguous source
// ranges of approximately equal cost under model. Growth traces assign low
// IDs to old nodes, and old nodes are the hubs, so equal-count ranges pile
// the expensive sources — and, under the min(u, v) ownership rule, nearly
// all hub–hub candidates — onto shard 0; measured on renren-100k, shard 0
// of 4 carries ~65% of the wedge sweep.
//
// The split is a pure function of the snapshot's degree sequence and the
// model: replicas holding identical snapshots compute identical boundaries
// with no coordination, which is what lets each cluster worker derive its
// own range from (shard, shards, algorithm) alone.
func WeightedSourceRangesFor(g *graph.Graph, shards int, model CostModel) []SourceRange {
	if shards <= 0 {
		panic("predict: invalid shard count")
	}
	costs, total := SourceCosts(g, model)
	return RangesFromCosts(costs, total, shards)
}

// WeightedSourceRanges is WeightedSourceRangesFor under CostWedge, the
// historical wedge-weight split.
func WeightedSourceRanges(g *graph.Graph, shards int) []SourceRange {
	return WeightedSourceRangesFor(g, shards, CostWedge)
}

// PartitionSafe reports whether the named algorithm may run on a
// partitioned snapshot (graph.PartitionView / graph.NewPartitionedBuilder).
// Safe algorithms read only owned sources' rows plus the frontier suffixes
// those rows certify, and finish candidates from global degrees — exactly
// the state a partitioned snapshot materializes — so their output over the
// owned range is bit-identical to a full snapshot's. Everything else (the
// naive Bayes family's triangle prepass, path/walk traversals, the latent
// factorizations, the random baseline) reads rows an ownership partition
// drops, and panics on partitioned snapshots rather than silently
// mis-scoring.
func PartitionSafe(name string) bool {
	switch name {
	case "CN", "JC", "AA", "RA", "PA", "Salton", "Sorensen", "HPI", "HDI", "LHN":
		return true
	}
	return false
}

// mustFullGraph panics when g is a partitioned snapshot: op's traversal
// reads adjacency rows outside the partition's materialized set, so its
// result would be silently wrong rather than detectably absent.
func mustFullGraph(g *graph.Graph, op string) {
	if g.Partition() != nil {
		panic("predict: " + op + " requires a full snapshot; partitioned snapshots support only the partition-safe local family (see PartitionSafe)")
	}
}

// resolvePartition reconciles the call's source restriction with a
// partitioned snapshot: nil defaults to the owned range, an explicit range
// must sit inside it (sources outside the owned range have incomplete rows,
// so sweeping them would produce silently wrong scores). Full snapshots
// pass through untouched. The returned Options carry a fresh SourceRange;
// the caller's is never mutated.
func resolvePartition(g *graph.Graph, opt Options) Options {
	p := g.Partition()
	if p == nil {
		return opt
	}
	n := g.NumNodes()
	lo, hi := int(p.Lo), int(p.Hi)
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	if opt.SourceRange == nil {
		opt.SourceRange = &SourceRange{Lo: lo, Hi: hi}
		return opt
	}
	rlo, rhi := opt.SourceRange.Lo, opt.SourceRange.Hi
	if rlo < 0 {
		rlo = 0
	}
	if rhi > n {
		rhi = n
	}
	if rhi < rlo {
		rhi = rlo
	}
	if rlo < lo || rhi > hi {
		panic(fmt.Sprintf("predict: SourceRange [%d, %d) reaches outside the partitioned snapshot's owned range [%d, %d)",
			opt.SourceRange.Lo, opt.SourceRange.Hi, lo, hi))
	}
	opt.SourceRange = &SourceRange{Lo: rlo, Hi: rhi}
	return opt
}

// sourceSpan resolves the call's source restriction against an n-node
// snapshot: nil means the full [0, n), anything else is clamped into it.
func (o *Options) sourceSpan(n int) (lo, hi int) {
	if o.SourceRange == nil {
		return 0, n
	}
	lo, hi = o.SourceRange.Lo, o.SourceRange.Hi
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// ownsPair reports whether the call's restriction owns candidate (u, v):
// the canonical lower endpoint falls inside the range. With no restriction
// every pair is owned. This is the emission filter for sweeps that cannot
// restrict their traversal (PA, PPR, the global block/random phases).
func (o *Options) ownsPair(u, v graph.NodeID) bool {
	if o.SourceRange == nil {
		return true
	}
	m := int(minID(u, v))
	return m >= o.SourceRange.Lo && m < o.SourceRange.Hi
}

// TieHash is the deterministic tie-break hash behind every ranked
// selection: splitmix64 over the seed and the canonical pair key. Exported
// so out-of-process mergers (the cluster router) can reason about — and
// tests can verify — the exact order Predict uses for equal scores.
func TieHash(seed int64, u, v graph.NodeID) uint64 {
	return tieHash(seed, u, v)
}

// MergeTopK folds N independently selected top-k lists into the top k of
// their union, using the same score-then-tie-hash order Predict uses. If
// each part is a shard's Predict output produced with the same seed and k
// over disjoint ownership ranges, the merge is bit-identical to the
// unrestricted single-process Predict — the tie-hash depends only on
// (seed, pair), so re-offering a pair here reproduces the hash it carried
// inside the shard. Part order never matters; parts may be nil or short.
func MergeTopK(parts [][]Pair, k int, seed int64) []Pair {
	t := newTopK(k, seed)
	for _, part := range parts {
		for _, p := range part {
			t.add(Pair{U: minID(p.U, p.V), V: maxID(p.U, p.V), Score: p.Score}, tieHash(seed, p.U, p.V))
		}
	}
	return t.Result()
}

package predict

import (
	"context"
	"sync/atomic"
	"testing"

	"linkpred/internal/par"
)

// The engine's deadline contract: Options.Ctx is checked once per chunk
// claim, so an expired context stops a sweep within one chunk of work, and
// a live-but-never-cancelled context changes nothing — output stays
// bit-identical to running without a context.

// TestShardRangeCtxExpired checks that an already-expired context runs no
// chunks at all, serial and parallel.
func TestShardRangeCtxExpired(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		err := par.ShardRangeCtx(ctx, 10000, workers, 1, func(worker, lo, hi int) {
			calls.Add(1)
		})
		if err == nil {
			t.Fatalf("workers=%d: no error from expired context", workers)
		}
		if calls.Load() != 0 {
			t.Fatalf("workers=%d: %d chunks ran under an expired context", workers, calls.Load())
		}
	}
}

// TestShardRangeCtxCancelMidway cancels from inside the first chunk and
// checks the bound: each in-flight worker may finish the chunk it already
// claimed, but no worker claims another one.
func TestShardRangeCtxCancelMidway(t *testing.T) {
	const workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	err := par.ShardRangeCtx(ctx, 100000, workers, 1, func(worker, lo, hi int) {
		if calls.Add(1) == 1 {
			cancel()
		}
	})
	if err == nil {
		t.Fatal("no error from cancelled context")
	}
	// One chunk triggered the cancel; at most workers-1 others were already
	// claimed when it fired.
	if got := calls.Load(); got > workers {
		t.Fatalf("%d chunks ran after a first-chunk cancel; bound is %d", got, workers)
	}
	// The range has workers*8 chunks, so a completed sweep is impossible.
}

// TestShardRangeCtxNilMatchesPlain checks that a nil and a non-cancellable
// context cover the full range exactly like ShardRangeMin.
func TestShardRangeCtxNilMatchesPlain(t *testing.T) {
	for _, ctx := range []context.Context{nil, context.Background()} {
		var covered atomic.Int64
		if err := par.ShardRangeCtx(ctx, 5000, 4, 1, func(worker, lo, hi int) {
			covered.Add(int64(hi - lo))
		}); err != nil {
			t.Fatalf("ctx=%v: %v", ctx, err)
		}
		if covered.Load() != 5000 {
			t.Fatalf("ctx=%v: covered %d of 5000", ctx, covered.Load())
		}
	}
}

// TestPredictLiveCtxBitIdentical pins the no-interference half of the
// contract: a cancellable context that never fires leaves Predict and
// ScorePairs bit-identical to the no-context run, across algorithm
// families and worker counts.
func TestPredictLiveCtxBitIdentical(t *testing.T) {
	g := randomGraph(11, 80, 300)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pairs := []Pair{{U: 0, V: 5}, {U: 3, V: 40}, {U: 7, V: 7}, {U: 60, V: 2}}
	for _, name := range []string{"CN", "BAA", "Katz", "KatzSC", "Rescal", "PPR"} {
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			plain := DefaultOptions()
			plain.Workers = workers
			withCtx := plain
			withCtx.Ctx = ctx

			want := alg.Predict(g, 20, plain)
			got := alg.Predict(g, 20, withCtx)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d pairs with ctx, %d without", name, workers, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: rank %d ctx %+v, plain %+v", name, workers, i, got[i], want[i])
				}
			}

			wantS := alg.ScorePairs(g, pairs, plain)
			gotS := alg.ScorePairs(g, pairs, withCtx)
			for i := range wantS {
				if gotS[i] != wantS[i] {
					t.Fatalf("%s workers=%d: score[%d] ctx %v, plain %v", name, workers, i, gotS[i], wantS[i])
				}
			}
		}
	}
}

// TestPredictExpiredCtxReturns checks that an expired context makes the
// fused local sweeps return promptly with correctly-sized (but partial,
// caller-discarded) output instead of hanging or panicking.
func TestPredictExpiredCtxReturns(t *testing.T) {
	g := randomGraph(12, 120, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt := DefaultOptions()
	opt.Workers = 4
	opt.Ctx = ctx
	for _, name := range []string{"CN", "AA", "Katz"} {
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		_ = alg.Predict(g, 20, opt)
		pairs := []Pair{{U: 0, V: 1}, {U: 2, V: 3}}
		if got := alg.ScorePairs(g, pairs, opt); len(got) != len(pairs) {
			t.Fatalf("%s: ScorePairs returned %d values for %d pairs", name, len(got), len(pairs))
		}
	}
}

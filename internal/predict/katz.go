package predict

import (
	"fmt"
	"math"
	"math/rand"

	"linkpred/internal/graph"
	"linkpred/internal/linalg"
	"linkpred/internal/snapcache"
)

// katzLR is the low-rank Katz approximation (Katz_lr, Acar et al. [1]):
// with the rank-r eigendecomposition A ≈ Q Λ Qᵀ,
//
//	Katz(u,v) = Σ_{l>=1} βˡ (Aˡ)_{uv} ≈ Σ_i f(λ_i) q_ui q_vi,
//	f(λ) = βλ / (1 - βλ).
type katzLR struct{}

// KatzLR is the low-rank Katz algorithm; the paper calls it Katz_lr and,
// after §4.2, simply Katz.
var KatzLR Algorithm = katzLR{}

func (katzLR) Name() string { return "Katz" }

// katzFactors returns the rank-r factors: scaled[u] · raw[v] = score(u,v).
// The factors are cached per snapshot under the full parameter set, so
// Predict and ScorePairs against the same cut share one eigensolve.
func katzFactors(g *graph.Graph, opt Options) (scaled, raw *linalg.Dense) {
	rank := opt.KatzRank
	if rank <= 0 {
		rank = 32
	}
	iters := opt.KatzEigIters
	if iters <= 0 {
		iters = 40
	}
	key := fmt.Sprintf("predict/katz/r=%d,it=%d,beta=%v,seed=%d", rank, iters, opt.KatzBeta, opt.Seed)
	return factorPair(g, key, func() (*linalg.Dense, *linalg.Dense) {
		a := snapCSR(g)
		vals, vecs := a.TopEig(rank, iters, opt.Seed, workerCount(opt))
		scaled := vecs.Clone()
		for i, lam := range vals {
			f := 0.0
			bl := opt.KatzBeta * lam
			if bl < 1 {
				f = bl / (1 - bl)
			} else {
				// Series diverges for βλ >= 1; clamp to a large finite weight,
				// preserving the ordering (dominant directions dominate).
				f = 1e6
			}
			for u := 0; u < scaled.Rows; u++ {
				scaled.Set(u, i, vecs.At(u, i)*f)
			}
		}
		return scaled, vecs
	})
}

func (katzLR) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "Katz")
	validateOptions(opt)
	r := beginRun("Katz", opPredict)
	defer r.end()
	opt.rec = r
	// The factors build once (parallel eigensolve, cached per snapshot) and
	// are read-only across the scoring workers.
	scaled, raw := katzFactors(g, opt)
	return predictGlobal(g, k, opt, func(u, v graph.NodeID) float64 {
		return linalg.Dot(scaled.Row(int(u)), raw.Row(int(v)))
	})
}

func (katzLR) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "Katz")
	r := beginRun("Katz", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	scaled, raw := katzFactors(g, opt)
	out := make([]float64, len(pairs))
	shardRange(opt, len(pairs), workerCount(opt), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			out[i] = linalg.Dot(scaled.Row(int(p.U)), raw.Row(int(p.V)))
		}
	})
	return out
}

// katzSC is the scalable Katz proximity estimation (Katz_sc, after Song et
// al. [38]): a Nyström-style landmark embedding. Truncated Katz columns are
// computed exactly for L landmark nodes (half top-degree, half random), and
// Katz(u,v) ≈ C W⁺ Cᵀ where C holds the landmark columns and W the
// landmark-landmark submatrix. Cheaper but less accurate than Katz_lr,
// matching the paper's observed ordering.
type katzSC struct{}

// KatzSC is the scalable Katz approximation.
var KatzSC Algorithm = katzSC{}

func (katzSC) Name() string { return "KatzSC" }

// katzSCFactors returns P = C W⁺ (n x L) and C (n x L); score = P_u · C_v.
// Cached per snapshot under the full parameter set.
func katzSCFactors(g *graph.Graph, opt Options) (p, c *linalg.Dense) {
	n := g.NumNodes()
	L := opt.KatzLandmarks
	if L <= 0 {
		L = 64
	}
	if L > n {
		L = n
	}
	maxLen := opt.KatzMaxLen
	if maxLen <= 0 {
		maxLen = 4
	}
	key := fmt.Sprintf("predict/katzsc/L=%d,len=%d,beta=%v,seed=%d", L, maxLen, opt.KatzBeta, opt.Seed)
	// The build runs context-free: the factors are cached per snapshot and
	// shared across callers, so a request deadline must not truncate them.
	bopt := opt
	bopt.Ctx = nil
	return factorPair(g, key, func() (*linalg.Dense, *linalg.Dense) {
		return buildKatzSCFactors(g, bopt, n, L, maxLen)
	})
}

func buildKatzSCFactors(g *graph.Graph, opt Options, n, L, maxLen int) (p, c *linalg.Dense) {
	landmarks := pickLandmarks(g, L, opt.Seed)
	// C columns: truncated Katz vectors from each landmark. Columns are
	// independent, so the computation shards over landmarks; workers write
	// disjoint columns of c.
	c = linalg.NewDense(n, L)
	workers := workerCount(opt)
	scratch := make([]*katzScratch, workers)
	shardRange(opt, len(landmarks), workers, func(wk, lo, hi int) {
		if scratch[wk] == nil {
			scratch[wk] = newKatzScratch(n)
		}
		s := scratch[wk]
		for j := lo; j < hi; j++ {
			katzVector(g, landmarks[j], opt.KatzBeta, maxLen, s)
			for _, v := range s.acc.touched {
				c.Set(int(v), j, s.acc.val[v])
			}
		}
	})
	// W = C[landmarks, :], symmetrized; pseudo-inverse via Jacobi.
	w := linalg.NewDense(L, L)
	for i, l := range landmarks {
		for j := 0; j < L; j++ {
			w.Set(i, j, c.At(int(l), j))
		}
	}
	for i := 0; i < L; i++ {
		for j := i + 1; j < L; j++ {
			v := (w.At(i, j) + w.At(j, i)) / 2
			w.Set(i, j, v)
			w.Set(j, i, v)
		}
	}
	vals, vecs := linalg.JacobiEig(w)
	// W⁺ = V f(Λ) Vᵀ with f(λ) = 1/λ for |λ| above a relative threshold.
	var maxAbs float64
	for _, v := range vals {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	ridge := nystromCutoff * maxAbs
	ridge *= ridge
	winv := linalg.NewDense(L, L)
	for i := 0; i < L; i++ {
		for j := 0; j < L; j++ {
			var s float64
			for t := 0; t < L; t++ {
				s += vecs.At(i, t) * vecs.At(j, t) * vals[t] / (vals[t]*vals[t] + ridge)
			}
			winv.Set(i, j, s)
		}
	}
	return c.MatMul(winv, workerCount(opt)), c
}

var nystromCutoff = 1e-10

// pickLandmarks selects half the landmarks by top degree and the rest
// uniformly at random among remaining nodes. The degree order comes from
// the shared snapshot cache (same canonical comparator as the top-degree
// candidate block and PA's frontier).
func pickLandmarks(g *graph.Graph, L int, seed int64) []graph.NodeID {
	order := snapcache.For(g).DegreeOrder()
	half := L / 2
	landmarks := append([]graph.NodeID(nil), order[:half]...)
	rest := append([]graph.NodeID(nil), order[half:]...)
	rng := rand.New(rand.NewSource(seed ^ 0xca72))
	rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
	landmarks = append(landmarks, rest[:L-half]...)
	return landmarks
}

func (katzSC) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "KatzSC")
	validateOptions(opt)
	r := beginRun("KatzSC", opPredict)
	defer r.end()
	opt.rec = r
	p, c := katzSCFactors(g, opt)
	return predictGlobal(g, k, opt, func(u, v graph.NodeID) float64 {
		return linalg.Dot(p.Row(int(u)), c.Row(int(v)))
	})
}

func (katzSC) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "KatzSC")
	r := beginRun("KatzSC", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	p, c := katzSCFactors(g, opt)
	out := make([]float64, len(pairs))
	shardRange(opt, len(pairs), workerCount(opt), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pr := pairs[i]
			out[i] = linalg.Dot(p.Row(int(pr.U)), c.Row(int(pr.V)))
		}
	})
	return out
}

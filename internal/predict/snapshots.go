package predict

import (
	"linkpred/internal/graph"
	"linkpred/internal/linalg"
	"linkpred/internal/snapcache"
)

// This file binds the algorithms to the per-snapshot artifact cache
// (internal/snapcache): the CSR adjacency, log-degree table, and latent
// factor matrices are built once per snapshot and shared across algorithms,
// worker counts, and Predict/ScorePairs calls. Every cached artifact is a
// deterministic, worker-count-invariant function of the graph and the
// parameters encoded in its key, so cache hits can never change output —
// the worker-invariance suite exercises both cold and warm paths.

// snapCSR returns the snapshot's shared CSR adjacency. The only build error
// is the int32 offset overflow guard (≥ 2³¹ directed entries), which no
// in-memory snapshot on this substrate can reach, hence panic over error
// plumbing through the Algorithm interface.
func snapCSR(g *graph.Graph) *linalg.CSR {
	c, err := snapcache.For(g).CSR()
	if err != nil {
		panic(err)
	}
	return c
}

// logDegTable returns the shared per-node nonNegLog(deg) table used by the
// log-weighted witnesses (AA, BAA). Values are exactly nonNegLog of the
// degree, so table lookups keep the fused kernels bit-identical to the
// reference folds.
func logDegTable(g *graph.Graph) []float64 {
	v, _ := snapcache.For(g).Artifact("predict/logdeg", func() (any, error) {
		t := make([]float64, g.NumNodes())
		for i := range t {
			t[i] = nonNegLog(float64(g.Degree(graph.NodeID(i))))
		}
		return t, nil
	})
	return v.([]float64)
}

// factorPair caches a two-matrix factorization (Katz scaled/raw, Rescal
// XR/X, KatzSC P/C) under a key that encodes every parameter influencing
// the result. Worker counts are excluded by design: the factor builds are
// bit-identical at any worker count (pinned by TestLatentFactorsWorkerInvariance),
// so a factor computed by one engine configuration is valid for all.
func factorPair(g *graph.Graph, key string, build func() (*linalg.Dense, *linalg.Dense)) (*linalg.Dense, *linalg.Dense) {
	v, _ := snapcache.For(g).Artifact(key, func() (any, error) {
		a, b := build()
		return [2]*linalg.Dense{a, b}, nil
	})
	f := v.([2]*linalg.Dense)
	return f[0], f[1]
}

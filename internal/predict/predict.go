// Package predict implements the paper's core subject matter: the 14
// metric-based link prediction algorithms of Table 3 (CN, JC, AA, RA, BCN,
// BAA, BRA, PA, SP, LP, Katz with low-rank and scalable approximations, PPR,
// LRW, Rescal), the candidate enumeration and top-k selection machinery, and
// the random-prediction baseline that defines the accuracy ratio.
//
// Every algorithm supports two operations:
//
//   - Predict: return the top-k most likely new edges on a snapshot, the
//     §4.1 experiment;
//   - ScorePairs: score an explicit list of candidate pairs, used both for
//     classifier feature extraction (§5) and for evaluating metrics on
//     snowball-sampled node sets (Fig. 11).
//
// Scores are comparable only within a single (algorithm, snapshot) pair,
// exactly as the paper uses them.
package predict

import (
	"context"
	"fmt"
	"math"
	"sort"

	"linkpred/internal/graph"
)

// Pair is a scored candidate node pair with U < V.
type Pair struct {
	U, V  graph.NodeID
	Score float64
}

// Key returns a canonical uint64 key for the pair.
func (p Pair) Key() uint64 { return PairKey(p.U, p.V) }

// PairKey canonicalizes (u, v) into a single map key.
func PairKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// KeyPair inverts PairKey.
func KeyPair(k uint64) (u, v graph.NodeID) {
	return graph.NodeID(k >> 32), graph.NodeID(uint32(k))
}

// Options carries the tunable parameters of all algorithms, using the
// paper's fine-tuned settings as defaults (§3.2).
type Options struct {
	// Seed drives tie-breaking and every internal randomized routine.
	Seed int64

	// Workers bounds the goroutines used inside Predict and ScorePairs
	// (0 = runtime.GOMAXPROCS). Output is bit-identical for every worker
	// count; validateOptions rejects negative values.
	Workers int

	// Ctx, when non-nil and cancellable, bounds in-flight work: the engine
	// checks it once per chunk claim and stops claiming further chunks after
	// cancellation, so a cancelled call returns within one chunk of work per
	// worker. The results of a cancelled call are partial and must be
	// discarded — callers own the Ctx.Err() check after the call returns.
	// Cached per-snapshot artifact builds (latent factor matrices) ignore
	// the context deliberately: they are shared across callers through
	// snapcache, and aborting one mid-build would poison every later request
	// against the same snapshot. A nil or never-cancelled Ctx leaves output
	// bit-identical to the context-free path.
	Ctx context.Context

	// KatzBeta is the Katz attenuation factor (paper: 0.001).
	KatzBeta float64
	// KatzRank is the rank of the low-rank approximation Katz_lr.
	KatzRank int
	// KatzEigIters bounds subspace-iteration sweeps for Katz_lr.
	KatzEigIters int
	// KatzLandmarks is the Nyström landmark count for Katz_sc.
	KatzLandmarks int
	// KatzMaxLen truncates the walk-length sum in Katz_sc columns.
	KatzMaxLen int

	// LPEpsilon weights 3-hop paths in the Local Path index (paper: 1e-4).
	LPEpsilon float64

	// PPRAlpha is the personalized PageRank restart probability (paper: 0.15).
	PPRAlpha float64
	// PPREps is the forward-push residual threshold.
	PPREps float64

	// LRWSteps is the Local Random Walk step count m.
	LRWSteps int

	// RescalRank, RescalIters, RescalLambda parameterize ALS factorization.
	RescalRank   int
	RescalIters  int
	RescalLambda float64

	// SPMaxDepth truncates shortest-path BFS.
	SPMaxDepth int

	// SourceRange, when non-nil, restricts Predict to the candidate pairs
	// owned by the source-node interval [Lo, Hi) — the distributed sweep's
	// unit of work (shard.go documents the ownership rule and the merge
	// exactness argument). The restricted sweep computes exactly the scores
	// the unrestricted sweep computes for the owned pairs, so merging the
	// Predict outputs of a disjoint cover of [0, n) through MergeTopK is
	// bit-identical to a single unrestricted Predict. ScorePairs ignores the
	// restriction: explicit pair batches are already routed by their caller.
	// validateOptions rejects Lo < 0 and Hi < Lo; Hi is clamped to the
	// snapshot size.
	SourceRange *SourceRange

	// ExhaustiveSweep disables top-k threshold pruning in the local-metric
	// Predict path, sweeping every source exactly as the reference engine
	// does. Output is identical either way — pruning only skips sources
	// whose score upper bound proves they cannot enter the top k — so the
	// toggle exists for benchmarking the pruned engine against the full
	// sweep and as an operational escape hatch.
	ExhaustiveSweep bool

	// TopDegreeBlock is the number of highest-degree nodes whose pairings
	// with every other node are added to the global candidate set used by
	// latent-space algorithms.
	TopDegreeBlock int
	// RandomCandidates is the number of uniform random unconnected pairs
	// added to the global candidate set.
	RandomCandidates int

	// rec collects telemetry for the current call. Each algorithm entry
	// point attaches it on its local Options copy via beginRun; nil (the
	// zero value, and always when obs is disabled) makes every hook a
	// no-op. Never set by callers.
	rec *obsRun
}

// DefaultOptions returns the paper's tuned parameter settings.
func DefaultOptions() Options {
	return Options{
		Seed:             1,
		KatzBeta:         0.001,
		KatzRank:         32,
		KatzEigIters:     40,
		KatzLandmarks:    64,
		KatzMaxLen:       4,
		LPEpsilon:        1e-4,
		PPRAlpha:         0.15,
		PPREps:           1e-5,
		LRWSteps:         3,
		RescalRank:       16,
		RescalIters:      4,
		RescalLambda:     10,
		SPMaxDepth:       6,
		TopDegreeBlock:   48,
		RandomCandidates: 20000,
	}
}

// Algorithm is one link prediction method.
type Algorithm interface {
	// Name is the paper's abbreviation (CN, JC, ..., Rescal).
	Name() string
	// Predict returns the k candidate pairs most likely to form edges on
	// g, highest score first. Ties are broken by a deterministic
	// pseudo-random hash of (Options.Seed, pair), mirroring the paper's
	// implicit random tie-breaking.
	Predict(g *graph.Graph, k int, opt Options) []Pair
	// ScorePairs returns a score for each given pair (in order). Pairs
	// need not be unconnected; callers filter as needed.
	ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64
}

// tieHash produces the deterministic tie-break for equal scores
// (splitmix64 over the seed and canonical pair key).
func tieHash(seed int64, u, v graph.NodeID) uint64 {
	x := uint64(seed) ^ PairKey(u, v)
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// topK is a bounded min-heap selecting the k best (score, tie) entries.
type topK struct {
	k     int
	seed  int64
	pairs []Pair
	ties  []uint64
	// rec, when non-nil, receives pair-offered and eviction counts; it is
	// attached only to the sweep-level selectors (newTopKRec), never to
	// merge targets, so merged entries are not double counted.
	rec *obsRun
}

func newTopK(k int, seed int64) *topK {
	return &topK{k: k, seed: seed, pairs: make([]Pair, 0, k), ties: make([]uint64, 0, k)}
}

// newTopKRec is newTopK with the current call's telemetry recorder
// attached; the sharded sweeps use it for their per-worker selectors.
func newTopKRec(k int, opt Options) *topK {
	t := newTopK(k, opt.Seed)
	t.rec = opt.rec
	return t
}

// less reports whether entry i ranks below entry j (worse score first).
func (t *topK) less(i, j int) bool {
	if t.pairs[i].Score != t.pairs[j].Score {
		return t.pairs[i].Score < t.pairs[j].Score
	}
	return t.ties[i] < t.ties[j]
}

func (t *topK) swap(i, j int) {
	t.pairs[i], t.pairs[j] = t.pairs[j], t.pairs[i]
	t.ties[i], t.ties[j] = t.ties[j], t.ties[i]
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			break
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *topK) siftDown(i int) {
	n := len(t.pairs)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.less(l, smallest) {
			smallest = l
		}
		if r < n && t.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}

// Add offers a candidate; returns quickly when it cannot enter the top k.
func (t *topK) Add(u, v graph.NodeID, score float64) {
	if t.rec != nil {
		t.rec.pairs.Add(1)
	}
	t.add(Pair{U: minID(u, v), V: maxID(u, v), Score: score}, tieHash(t.seed, u, v))
}

// add inserts an already-canonical entry with a precomputed tie-hash; the
// parallel merge uses it to carry ties across per-worker selections without
// rehashing.
func (t *topK) add(p Pair, tie uint64) {
	if t.k <= 0 {
		return
	}
	if len(t.pairs) == t.k {
		worst := t.pairs[0]
		if p.Score < worst.Score || (p.Score == worst.Score && tie <= t.ties[0]) {
			return
		}
		if t.rec != nil {
			t.rec.evict.Add(1)
		}
		t.pairs[0] = p
		t.ties[0] = tie
		t.siftDown(0)
		return
	}
	t.pairs = append(t.pairs, p)
	t.ties = append(t.ties, tie)
	t.siftUp(len(t.pairs) - 1)
}

// Result returns the selected pairs sorted best-first. The sort permutes
// (pairs, ties) in place — no index slice, no copy — which finalizes the
// selector: offering further candidates afterwards is not supported.
func (t *topK) Result() []Pair {
	sort.Sort((*topKByRank)(t))
	return t.pairs
}

// topKByRank sorts a topK's parallel slices best-first (descending score,
// then descending tie-hash).
type topKByRank topK

func (t *topKByRank) Len() int { return len(t.pairs) }

func (t *topKByRank) Less(i, j int) bool {
	if t.pairs[i].Score != t.pairs[j].Score {
		return t.pairs[i].Score > t.pairs[j].Score
	}
	return t.ties[i] > t.ties[j]
}

func (t *topKByRank) Swap(i, j int) { (*topK)(t).swap(i, j) }

// Ranker is an exported bounded top-k selector with the same deterministic
// tie-breaking Predict uses; the classification pipeline ranks candidate
// pairs through it so metric- and classifier-based selections are directly
// comparable.
type Ranker struct{ t *topK }

// NewRanker returns a selector keeping the k best-scored pairs.
func NewRanker(k int, seed int64) *Ranker { return &Ranker{t: newTopK(k, seed)} }

// Add offers a scored pair.
func (r *Ranker) Add(u, v graph.NodeID, score float64) { r.t.Add(u, v, score) }

// Result returns the selected pairs, best first.
func (r *Ranker) Result() []Pair { return r.t.Result() }

func minID(a, b graph.NodeID) graph.NodeID {
	if a < b {
		return a
	}
	return b
}

func maxID(a, b graph.NodeID) graph.NodeID {
	if a < b {
		return b
	}
	return a
}

// ExpectedRandomOverlap returns the expected number of correct predictions
// when k pairs are drawn uniformly from the unconnected pairs of g and
// exactly k of those pairs actually connect: k²/U (§4.1).
func ExpectedRandomOverlap(g *graph.Graph, k int) float64 {
	u := g.UnconnectedPairs()
	if u <= 0 {
		return 0
	}
	return float64(k) * float64(k) / float64(u)
}

// AccuracyRatio is the paper's headline performance metric: correct
// predictions divided by the random baseline's expectation.
func AccuracyRatio(correct, k int, g *graph.Graph) float64 {
	exp := ExpectedRandomOverlap(g, k)
	if exp <= 0 {
		return 0
	}
	return float64(correct) / exp
}

// CountCorrect returns how many predicted pairs appear in truth, where truth
// holds PairKey values of the actually created edges.
func CountCorrect(pred []Pair, truth map[uint64]bool) int {
	n := 0
	for _, p := range pred {
		if truth[p.Key()] {
			n++
		}
	}
	return n
}

// TruthSet builds the PairKey set of new edges appearing among the nodes of
// prev (both endpoints must already exist and be unconnected in prev),
// matching the paper's prediction target definition (§2).
func TruthSet(prev *graph.Graph, newEdges []graph.Edge) map[uint64]bool {
	n := graph.NodeID(prev.NumNodes())
	truth := make(map[uint64]bool)
	for _, e := range newEdges {
		if e.U >= n || e.V >= n || e.U == e.V || prev.HasEdge(e.U, e.V) {
			continue
		}
		truth[PairKey(e.U, e.V)] = true
	}
	return truth
}

// validateOptions panics on nonsensical option values; algorithms call it at
// the top of Predict.
func validateOptions(opt Options) {
	if opt.KatzBeta < 0 || opt.LPEpsilon < 0 || opt.PPRAlpha <= 0 || opt.PPRAlpha >= 1 || opt.Workers < 0 {
		panic(fmt.Sprintf("predict: invalid options %+v", opt))
	}
	if r := opt.SourceRange; r != nil && (r.Lo < 0 || r.Hi < r.Lo) {
		panic(fmt.Sprintf("predict: invalid source range [%d, %d)", r.Lo, r.Hi))
	}
}

// nonNegLog guards log computations used by the naive Bayes metrics.
func nonNegLog(x float64) float64 {
	if x <= 1 {
		// log(deg) with deg <= 2 would zero or invert the AA weight; the
		// standard convention clamps the denominator.
		return math.Log(2)
	}
	return math.Log(x)
}

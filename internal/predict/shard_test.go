package predict

import (
	"fmt"
	"testing"

	"linkpred/internal/graph"
)

// shardTestAlgorithms is the registry-wide coverage of the sharded-sweep
// contract: the full Table 3 set, the survey extensions, and the
// comparators — local, path, walk, and latent families all included.
func shardTestAlgorithms() []Algorithm {
	algs := All()
	algs = append(algs, Extensions()...)
	algs = append(algs, Comparators()...)
	return algs
}

// predictSharded runs one Predict per shard of a disjoint source cover and
// merges the partial lists — the in-process model of the cluster's
// scatter/gather path.
func predictSharded(g *graph.Graph, alg Algorithm, k, shards int, opt Options) []Pair {
	n := g.NumNodes()
	parts := make([][]Pair, shards)
	for s := 0; s < shards; s++ {
		o := opt
		r := ShardSourceRange(n, s, shards)
		o.SourceRange = &r
		parts[s] = alg.Predict(g, k, o)
	}
	return MergeTopK(parts, k, opt.Seed)
}

// TestShardedPredictMergeEquivalence is the distributed-correctness
// property test: for every registry algorithm, merging the top-k lists of
// N source shards is bit-identical to the unrestricted single-process
// sweep, for shard counts {1, 2, 3, 5, 8} at per-shard worker counts
// {1, 4}.
func TestShardedPredictMergeEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"kite":   kite(), // tiny: most shards own zero or one source
		"random": randomGraph(42, 400, 1600),
	}
	const k = 25
	for gname, g := range graphs {
		for _, alg := range shardTestAlgorithms() {
			t.Run(fmt.Sprintf("%s/%s", gname, alg.Name()), func(t *testing.T) {
				for _, workers := range []int{1, 4} {
					opt := DefaultOptions()
					opt.Workers = workers
					opt.RandomCandidates = 500
					// PPR repeats its full push sweep in every shard by
					// design; a coarser residual threshold keeps the 38
					// sweeps this test runs per algorithm affordable.
					opt.PPREps = 1e-3
					want := alg.Predict(g, k, opt)
					for _, shards := range []int{1, 2, 3, 5, 8} {
						got := predictSharded(g, alg, k, shards, opt)
						assertSamePairs(t, want, got,
							fmt.Sprintf("%d shards x %d workers", shards, workers))
					}
				}
			})
		}
	}
}

// TestShardedPredictFusedPath covers the exhaustive fused engine (the
// pruned engine is the local family's default) under the same contract.
func TestShardedPredictFusedPath(t *testing.T) {
	g := randomGraph(7, 300, 1200)
	const k = 20
	for _, alg := range []Algorithm{CN, AA, BRA} {
		opt := DefaultOptions()
		opt.ExhaustiveSweep = true
		opt.Workers = 4
		want := alg.Predict(g, k, opt)
		for _, shards := range []int{2, 5} {
			got := predictSharded(g, alg, k, shards, opt)
			assertSamePairs(t, want, got, fmt.Sprintf("%s fused, %d shards", alg.Name(), shards))
		}
	}
}

// TestMergeTopKOrderInvariance: the merge is a function of the union, not
// of part order or part boundaries.
func TestMergeTopKOrderInvariance(t *testing.T) {
	g := randomGraph(3, 200, 800)
	opt := DefaultOptions()
	const k = 15
	n := g.NumNodes()
	parts := make([][]Pair, 4)
	for s := range parts {
		o := opt
		r := ShardSourceRange(n, s, len(parts))
		o.SourceRange = &r
		parts[s] = AA.Predict(g, k, o)
	}
	want := MergeTopK(parts, k, opt.Seed)
	reversed := make([][]Pair, len(parts))
	for i, p := range parts {
		reversed[len(parts)-1-i] = p
	}
	assertSamePairs(t, want, MergeTopK(reversed, k, opt.Seed), "reversed part order")
	// Merge of merges: regrouping the parts must not change the result.
	regrouped := [][]Pair{
		MergeTopK(parts[:2], k, opt.Seed),
		MergeTopK(parts[2:], k, opt.Seed),
		nil,
	}
	assertSamePairs(t, want, MergeTopK(regrouped, k, opt.Seed), "merge of merges")
}

// TestWeightedSourceRanges pins the weighted split's invariants — a
// contiguous disjoint cover of [0, n) at every shard count — and the merge
// contract on weighted boundaries (the partition the serving layer actually
// uses; merge exactness must hold for ANY contiguous partition).
func TestWeightedSourceRanges(t *testing.T) {
	g := randomGraph(21, 300, 1500)
	n := g.NumNodes()
	for _, shards := range []int{1, 2, 3, 7, 16} {
		ranges := WeightedSourceRanges(g, shards)
		if len(ranges) != shards {
			t.Fatalf("shards=%d: got %d ranges", shards, len(ranges))
		}
		prev := 0
		for s, r := range ranges {
			if r.Lo != prev || r.Hi < r.Lo {
				t.Fatalf("shards=%d: shard %d range [%d,%d) breaks cover at %d", shards, s, r.Lo, r.Hi, prev)
			}
			prev = r.Hi
		}
		if prev != n {
			t.Fatalf("shards=%d: cover ends at %d, want %d", shards, prev, n)
		}
	}
	const k = 20
	for _, alg := range []Algorithm{CN, AA, PA, LP} {
		opt := DefaultOptions()
		want := alg.Predict(g, k, opt)
		for _, shards := range []int{3, 6} {
			parts := make([][]Pair, shards)
			for s, r := range WeightedSourceRanges(g, shards) {
				o := opt
				r := r
				o.SourceRange = &r
				parts[s] = alg.Predict(g, k, o)
			}
			assertSamePairs(t, want, MergeTopK(parts, k, opt.Seed),
				fmt.Sprintf("%s weighted, %d shards", alg.Name(), shards))
		}
	}
}

// TestShardSourceRange pins the contiguous-cover invariants.
func TestShardSourceRange(t *testing.T) {
	for _, n := range []int{0, 1, 5, 97, 1000} {
		for _, shards := range []int{1, 2, 3, 8, 13} {
			prev := 0
			for s := 0; s < shards; s++ {
				r := ShardSourceRange(n, s, shards)
				if r.Lo != prev {
					t.Fatalf("n=%d shards=%d: shard %d starts at %d, want %d", n, shards, s, r.Lo, prev)
				}
				if r.Hi < r.Lo {
					t.Fatalf("n=%d shards=%d: shard %d inverted range [%d,%d)", n, shards, s, r.Lo, r.Hi)
				}
				prev = r.Hi
			}
			if prev != n {
				t.Fatalf("n=%d shards=%d: cover ends at %d", n, shards, prev)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ShardSourceRange accepted an invalid shard index")
		}
	}()
	ShardSourceRange(10, 3, 3)
}

// TestTieHashMatchesSelector: the exported hash is the one the selector
// orders equal scores by, in either endpoint order.
func TestTieHashMatchesSelector(t *testing.T) {
	if TieHash(9, 3, 7) != TieHash(9, 7, 3) {
		t.Fatal("TieHash is not endpoint-order invariant")
	}
	if TieHash(9, 3, 7) != tieHash(9, 3, 7) {
		t.Fatal("TieHash diverges from the internal tie hash")
	}
}

func assertSamePairs(t *testing.T, want, got []Pair, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: rank %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

package predict

import (
	"linkpred/internal/graph"
	"linkpred/internal/snapcache"
)

// Warm prebuilds the per-snapshot cached artifacts the named algorithms
// read on their scoring paths: the shared CSR adjacency, the degree order
// and top-degree candidate block, the log-degree table for the log-weighted
// local metrics, and the latent factor matrices (Katz eigensolve, KatzSC
// landmark embedding, Rescal ALS) under the parameter set opt encodes.
//
// The serving layer calls it off the request path right after a snapshot is
// published, so the first query against the new snapshot pays a cache hit
// instead of an eigensolve. Warming is pure cache population through
// snapcache — it cannot change any later result (the builders are
// deterministic functions of the graph and the key) and is safe to run
// concurrently with scoring against the same or other snapshots. Unknown
// names are ignored so callers can pass a serving allowlist verbatim.
func Warm(g *graph.Graph, names []string, opt Options) {
	if g == nil || g.NumNodes() == 0 {
		return
	}
	// Artifact builds must not inherit a request deadline (see Options.Ctx).
	opt.Ctx = nil
	arts := snapcache.For(g)
	if g.Partition() != nil {
		// Partitioned snapshots serve only the partition-safe local family.
		// The latent factorizations and the linalg CSR would silently read
		// the truncated frontier rows, so only the degree-derived artifacts
		// are warmed (CSRView disables its hub block on partitions itself).
		arts.DegreeOrder()
		arts.CSRView()
		wedgeWork(g)
		for _, name := range names {
			if name == "AA" || name == "RA" {
				logDegTable(g)
			}
		}
		return
	}
	arts.DegreeOrder()
	// The degree-ordered view with hub bitsets backs the local metrics'
	// batch probes and naive Bayes statistics; build it off the request
	// path along with the wedge-work estimate the worker clamp reads.
	arts.CSRView()
	wedgeWork(g)
	for _, name := range names {
		switch name {
		case "CN", "JC":
			// Count-only local metrics: the sweep needs no cached tables.
		case "AA", "RA", "BCN", "BAA", "BRA":
			logDegTable(g)
		case "Katz":
			katzFactors(g, opt)
		case "KatzSC":
			katzSCFactors(g, opt)
		case "Rescal":
			rescalFactors(g, opt)
		default:
			// Walk/path algorithms keep per-source scratch, not snapshot
			// artifacts; the CSR below covers their shared input.
		}
	}
	if _, err := arts.CSR(); err != nil {
		// The int32-offset overflow guard; unreachable for servable
		// in-memory snapshots, and scoring paths re-surface it anyway.
		return
	}
	arts.Block(opt.TopDegreeBlock)
}

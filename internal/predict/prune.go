package predict

import (
	"cmp"
	"slices"
	"sort"

	"linkpred/internal/graph"
	"linkpred/internal/par"
	"linkpred/internal/snapcache"
)

// This file is the pruned candidate-generation engine behind the local
// metric family's Predict. The fused wedge sweep already enumerates only
// 2-hop candidates, but it sweeps *every* source; on power-law graphs the
// long tail of low-degree sources dominates the total wedge count
// (Σ_w deg(w)²) while contributing almost nothing to the top k. The pruned
// engine processes sources in descending order of a per-source score upper
// bound and drops the remaining suffix as soon as the global top-k floor
// provably exceeds it:
//
//   - Per-source bounds. Every local metric admits a cheap sup over all
//     possible candidates of a source u: deg(u) for CN, Σ_{w∈N(u)}
//     max(0, term(w)) for the additive metrics (AA, RA and the naive Bayes
//     family, whose per-witness terms can be negative), 1/deg(u) for LHN,
//     and the constant 1 for the degree-normalized metrics (JC, Salton,
//     Sorensen, HPI, HDI — a degree-twin candidate scores 1, so no
//     per-source bound can beat it and those metrics effectively never
//     prune; DESIGN.md §10 derives all of these).
//   - Deterministic batches. Sources are processed in bound-descending
//     order (ties by ascending ID) in batches of deterministically doubling
//     size. After each batch the per-worker selections are merged; once the
//     merged heap holds k entries its root is the floor, and the ub-sorted
//     suffix with ub < floor (strictly — a candidate scoring exactly the
//     floor can still win its tie-hash) is truncated in one binary search.
//   - Bit-identical output. A pruned source's candidates all score at most
//     its bound, hence strictly below the floor, hence strictly below every
//     later floor (the floor is monotone), so the bounded heaps would have
//     rejected each of them on the score comparison alone. The surviving
//     sweep computes every candidate's score with the same per-source
//     accumulation order as the exhaustive engine, so Predict output is
//     bit-identical to predictFusedTwoHop and referencePredict. Float
//     safety of the bound itself: witness terms are folded in the same
//     ascending order as the score, and appending non-negative terms to an
//     IEEE fold is monotone, so ub ≥ score holds for the floats too.
//
// Batch boundaries, merge points, and floors depend only on (graph, k,
// seed, bounds), never on worker count or timing, so prune decisions — and
// the candidates_generated / sources_pruned telemetry — are worker-
// invariant, preserving the engine's determinism contract.

// minSweepWork is the estimated per-worker wedge-visit count below which a
// local sweep sheds workers: fan-out overhead (goroutine spawn, chunk
// claims, per-worker scratch, heap merges) exceeds the work itself under
// it. A wedge visit is a few nanoseconds, so the threshold corresponds to
// roughly 100µs of per-worker work — an order of magnitude above the
// fan-out cost, which keeps unit-test-scale sweeps serial without shedding
// workers on anything a human would benchmark.
const minSweepWork = 1 << 15

// pruneBatchMin is the smallest source batch the pruned engine processes
// between floor refreshes. Graphs with fewer sources complete in a single
// batch and can never prune, which keeps small inputs on the exact same
// sweep schedule as the exhaustive engine.
const pruneBatchMin = 512

// wedgeWork returns Σ_u deg(u)², the total wedge-visit count of a full
// local sweep over g — the work estimate behind the worker clamp. Cached
// per snapshot.
func wedgeWork(g *graph.Graph) int64 {
	v, _ := snapcache.For(g).Artifact("predict/wedgework", func() (any, error) {
		var t int64
		for u := 0; u < g.NumNodes(); u++ {
			d := int64(g.Degree(graph.NodeID(u)))
			t += d * d
		}
		return t, nil
	})
	return v.(int64)
}

// boundKind selects how a local metric's per-source upper bound is formed.
type boundKind uint8

const (
	// boundAdditive: ub(u) = Σ_{w∈N(u)} max(0, boundTerm(w)). Sound for
	// metrics whose score is a sum of per-witness terms over a subset of
	// N(u): CN (term 1), AA, RA, and the naive Bayes family.
	boundAdditive boundKind = iota
	// boundUnit: ub(u) = 1 for deg(u) > 0. The degree-normalized count
	// metrics are bounded by 1 and a degree-twin candidate attains it, so
	// no tighter per-source bound exists.
	boundUnit
	// boundInvDeg: ub(u) = 1/deg(u). LHN = |Γu∩Γv|/(deg u · deg v) ≤
	// min(du,dv)/(du·dv) = 1/max(du,dv) ≤ 1/deg(u).
	boundInvDeg
)

// bounds computes the per-source upper-bound array for m on g over the
// source window [base, end); entries outside the window stay zero and are
// never read. The result is a deterministic function of the graph, the
// metric, and the window, independent of worker count (entries are
// computed independently).
func (m *localMetric) bounds(g *graph.Graph, nb *naiveBayes, opt Options, workers, base, end int) []float64 {
	n := g.NumNodes()
	ub := make([]float64, n)
	switch m.boundKind {
	case boundUnit:
		for u := base; u < end; u++ {
			if g.Degree(graph.NodeID(u)) > 0 {
				ub[u] = 1
			}
		}
	case boundInvDeg:
		for u := base; u < end; u++ {
			if d := g.Degree(graph.NodeID(u)); d > 0 {
				ub[u] = 1 / float64(d)
			}
		}
	default:
		ld := logDegTable(g)
		shardRange(opt, end-base, workers, func(_, lo, hi int) {
			for u := base + lo; u < base+hi; u++ {
				s := 0.0
				for _, w := range g.Neighbors(graph.NodeID(u)) {
					if t := m.boundTerm(g, ld, nb, w); t > 0 {
						s += t
					}
				}
				ub[u] = s
			}
		})
	}
	return ub
}

// predictPruned is the pruned Predict engine for one local metric: bound,
// order, sweep in doubling batches, truncate below the merged floor. With a
// SourceRange set, only the owned sources are ordered and swept; the floor
// then proves bounds against the shard's own top k, which is exact for the
// shard's ownership universe (any pruned source's candidates score below k
// owned candidates, so none of them can reach the merged global top k
// either — shard.go carries the full argument).
func predictPruned(g *graph.Graph, k int, opt Options, m *localMetric, nb *naiveBayes, kern sweepKernel) []Pair {
	n := g.NumNodes()
	if k <= 0 || n == 0 {
		return newTopK(k, opt.Seed).Result()
	}
	base, end := opt.sourceSpan(n)
	workers := par.LimitWorkers(workerCount(opt), wedgeWork(g), minSweepWork)
	ub := m.bounds(g, nb, opt, workers, base, end)
	order := make([]graph.NodeID, end-base)
	for i := range order {
		order[i] = graph.NodeID(base + i)
	}
	// Stable + ascending initial order keeps equal-bound sources in
	// ascending ID order, making the processing schedule canonical.
	slices.SortStableFunc(order, func(a, b graph.NodeID) int {
		return cmp.Compare(ub[b], ub[a])
	})
	parts := make([]*topK, workers)
	scratch := make([]*sweepScratch, workers)
	pruned := int64(0)
	batch := 2 * k
	if batch < pruneBatchMin {
		batch = pruneBatchMin
	}
	for pos := 0; pos < len(order); {
		if opt.Ctx != nil && opt.Ctx.Err() != nil {
			break
		}
		hi := pos + batch
		if hi > len(order) {
			hi = len(order)
		}
		base := pos
		shardRange(opt, hi-pos, workers, func(w, lo, bhi int) {
			if parts[w] == nil {
				parts[w] = newTopKRec(k, opt)
				scratch[w] = newSweepScratch(n)
			}
			opt.rec.addNodes(int64(bhi - lo))
			top, s := parts[w], scratch[w]
			for i := lo; i < bhi; i++ {
				u := order[base+i]
				s.sweepCandidates(g, u, kern.witness)
				opt.rec.addCands(int64(len(s.cands)))
				for _, v := range s.cands {
					top.Add(u, v, kern.finish(u, v, s.count[v], s.weight[v]))
				}
			}
		})
		pos = hi
		batch *= 2
		if pos >= len(order) {
			break
		}
		// mergeTopK may alias the single live part; the floor read below is
		// still sound — nothing mutates parts between here and the next
		// batch, and Result is only called after the loop.
		merged := mergeTopK(k, opt.Seed, parts)
		if len(merged.pairs) < k {
			continue
		}
		floor := merged.pairs[0].Score
		cut := pos + sort.Search(len(order)-pos, func(i int) bool {
			return ub[order[pos+i]] < floor
		})
		if cut < len(order) {
			pruned += int64(len(order) - cut)
			order = order[:cut]
		}
	}
	opt.rec.addSourcesPruned(pruned)
	return mergeTopK(k, opt.Seed, parts).Result()
}

package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"linkpred/internal/graph"
)

// kite is a small fixture: a triangle 0-1-2 plus 3 connected to 1 and 2, and
// a pendant 4 connected to 3.
//
//	0 - 1
//	|   | \
//	2 --+  3 - 4
//	 \-----/
func kite() *graph.Graph {
	return graph.Build(5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2},
		{U: 1, V: 3}, {U: 2, V: 3}, {U: 3, V: 4},
	})
}

func randomGraph(seed int64, n, m int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n)), Time: int64(i),
		})
	}
	return graph.Build(n, edges)
}

func scoreOne(t *testing.T, a Algorithm, g *graph.Graph, u, v graph.NodeID) float64 {
	t.Helper()
	s := a.ScorePairs(g, []Pair{{U: u, V: v}}, DefaultOptions())
	return s[0]
}

func TestLocalMetricValues(t *testing.T) {
	g := kite()
	// Pair (0,3): common neighbors {1,2}, deg(0)=2, deg(3)=3.
	if got := scoreOne(t, CN, g, 0, 3); got != 2 {
		t.Errorf("CN(0,3) = %v, want 2", got)
	}
	// JC = |∩| / |∪| = 2 / (2+3-2) = 2/3.
	if got := scoreOne(t, JC, g, 0, 3); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("JC(0,3) = %v, want 2/3", got)
	}
	// AA = 1/log(deg 1) + 1/log(deg 2) = 2/log(3).
	if got, want := scoreOne(t, AA, g, 0, 3), 2/math.Log(3); math.Abs(got-want) > 1e-12 {
		t.Errorf("AA(0,3) = %v, want %v", got, want)
	}
	// RA = 1/3 + 1/3.
	if got := scoreOne(t, RA, g, 0, 3); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("RA(0,3) = %v, want 2/3", got)
	}
	// Pair (0,4): no common neighbors.
	for _, a := range []Algorithm{CN, JC, AA, RA, BCN, BAA, BRA} {
		if got := scoreOne(t, a, g, 0, 4); got != 0 {
			t.Errorf("%s(0,4) = %v, want 0", a.Name(), got)
		}
	}
}

func TestNaiveBayesStats(t *testing.T) {
	g := kite()
	nb := newNaiveBayes(g, Options{Workers: 1})
	// s = 5*4/(2*6) - 1 = 10/6*... = 20/12 - 1 = 2/3.
	wantLogS := math.Log(5.0*4.0/(2.0*6.0) - 1)
	if math.Abs(nb.logS-wantLogS) > 1e-12 {
		t.Errorf("logS = %v, want %v", nb.logS, wantLogS)
	}
	// Node 1: deg 3, triangles through 1: (0,1,2) and (1,2,3) → 2.
	// Open 2-paths: C(3,2) - 2 = 1. R = 3/2.
	if got, want := nb.logR[1], math.Log(3.0/2.0); math.Abs(got-want) > 1e-12 {
		t.Errorf("logR[1] = %v, want %v", got, want)
	}
	// Node 4: deg 1, no triangles, no open paths → R = 1.
	if got := nb.logR[4]; math.Abs(got) > 1e-12 {
		t.Errorf("logR[4] = %v, want 0", got)
	}
	// BCN(0,3) = 2*logS + logR[1] + logR[2].
	want := 2*nb.logS + nb.logR[1] + nb.logR[2]
	if got := scoreOne(t, BCN, g, 0, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("BCN(0,3) = %v, want %v", got, want)
	}
}

func TestPredictBasicContract(t *testing.T) {
	g := randomGraph(3, 40, 120)
	opt := DefaultOptions()
	opt.RandomCandidates = 500
	for _, a := range All() {
		pred := a.Predict(g, 10, opt)
		if len(pred) > 10 {
			t.Errorf("%s: returned %d > k pairs", a.Name(), len(pred))
		}
		seen := map[uint64]bool{}
		for i, p := range pred {
			if p.U >= p.V {
				t.Errorf("%s: pair %d not canonical: %+v", a.Name(), i, p)
			}
			if g.HasEdge(p.U, p.V) {
				t.Errorf("%s: predicted existing edge %+v", a.Name(), p)
			}
			if seen[p.Key()] {
				t.Errorf("%s: duplicate prediction %+v", a.Name(), p)
			}
			seen[p.Key()] = true
			if i > 0 && pred[i-1].Score < p.Score {
				t.Errorf("%s: predictions not sorted: %v then %v", a.Name(), pred[i-1].Score, p.Score)
			}
		}
		// Determinism.
		again := a.Predict(g, 10, opt)
		if len(again) != len(pred) {
			t.Errorf("%s: non-deterministic prediction count", a.Name())
			continue
		}
		for i := range pred {
			if pred[i] != again[i] {
				t.Errorf("%s: non-deterministic prediction %d: %+v vs %+v", a.Name(), i, pred[i], again[i])
			}
		}
	}
}

// bruteForceTop computes the exact top-k of a ScorePairs-able algorithm over
// all unconnected pairs.
func bruteForceTop(g *graph.Graph, a Algorithm, k int, opt Options) []Pair {
	var pairs []Pair
	n := g.NumNodes()
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				pairs = append(pairs, Pair{U: graph.NodeID(u), V: graph.NodeID(v)})
			}
		}
	}
	scores := a.ScorePairs(g, pairs, opt)
	top := newTopK(k, opt.Seed)
	for i, p := range pairs {
		top.Add(p.U, p.V, scores[i])
	}
	return top.Result()
}

// TestPredictMatchesBruteForce verifies that for the local metrics and PA,
// Predict (with its candidate pruning) selects exactly the same pairs as
// exhaustive scoring. Zero-scored pairs are excluded: Predict only ranks
// supported candidates.
func TestPredictMatchesBruteForce(t *testing.T) {
	opt := DefaultOptions()
	for _, seed := range []int64{1, 2, 3} {
		g := randomGraph(seed, 30, 70)
		for _, a := range []Algorithm{CN, JC, AA, RA, BCN, BAA, BRA, PA, LP, LRW} {
			k := 8
			pred := a.Predict(g, k, opt)
			brute := bruteForceTop(g, a, k, opt)
			// Compare the positively-scored prefix.
			for i := 0; i < len(brute) && i < len(pred); i++ {
				if brute[i].Score <= 0 {
					break
				}
				if pred[i] != brute[i] {
					t.Errorf("seed %d %s: rank %d mismatch: predict %+v brute %+v",
						seed, a.Name(), i, pred[i], brute[i])
					break
				}
			}
		}
	}
}

func TestTopKSelection(t *testing.T) {
	top := newTopK(3, 7)
	top.Add(0, 1, 5)
	top.Add(0, 2, 1)
	top.Add(0, 3, 9)
	top.Add(0, 4, 7)
	top.Add(0, 5, 3)
	res := top.Result()
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	wantScores := []float64{9, 7, 5}
	for i, w := range wantScores {
		if res[i].Score != w {
			t.Fatalf("result scores = %+v, want %v", res, wantScores)
		}
	}
	// k=0 edge case.
	empty := newTopK(0, 7)
	empty.Add(0, 1, 1)
	if len(empty.Result()) != 0 {
		t.Error("k=0 should select nothing")
	}
}

func TestTopKTieBreakDeterministic(t *testing.T) {
	// All equal scores: selection must be a stable pseudo-random subset.
	run := func() []Pair {
		top := newTopK(5, 42)
		for v := graph.NodeID(1); v < 100; v++ {
			top.Add(0, v, 1.0)
		}
		return top.Result()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tie-break not deterministic: %+v vs %+v", a[i], b[i])
		}
	}
	// Different seed should (overwhelmingly) give a different subset.
	top := newTopK(5, 43)
	for v := graph.NodeID(1); v < 100; v++ {
		top.Add(0, v, 1.0)
	}
	c := top.Result()
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical tie-broken selection")
	}
}

// TestTopKResultTieOrdering pins the equal-score contract of the in-place
// Result sort: pairs with identical scores come back ordered by descending
// tie-hash, matching the merge order the parallel engine relies on.
func TestTopKResultTieOrdering(t *testing.T) {
	const seed = 11
	top := newTopK(6, seed)
	for v := graph.NodeID(1); v <= 6; v++ {
		top.Add(0, v, 1.0)
	}
	res := top.Result()
	if len(res) != 6 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		prev := tieHash(seed, res[i-1].U, res[i-1].V)
		cur := tieHash(seed, res[i].U, res[i].V)
		if prev < cur {
			t.Fatalf("equal-score entries out of tie order at %d: %016x then %016x", i, prev, cur)
		}
	}
	// Result sorts (pairs, ties) in place: a second call must return the
	// same slice in the same order, not a fresh permutation.
	again := top.Result()
	if &again[0] != &res[0] {
		t.Error("Result allocated a new slice")
	}
	for i := range res {
		if res[i] != again[i] {
			t.Fatalf("repeated Result changed order at %d", i)
		}
	}
}

// TestSPFallbackNoDuplicates covers the sparse-graph BFS fallback of SP
// Predict (fewer 2-hop pairs than k). The seed implementation merged the
// 2-hop sweep with the BFS re-discovery and could emit a pair twice; the
// engine rebuild discards the sweep instead.
func TestSPFallbackNoDuplicates(t *testing.T) {
	g := kite() // only 3 two-hop pairs, so k=8 forces the BFS fallback
	pred := SP.Predict(g, 8, DefaultOptions())
	seen := map[uint64]bool{}
	for _, p := range pred {
		if seen[p.Key()] {
			t.Fatalf("duplicate prediction %+v", p)
		}
		seen[p.Key()] = true
	}
	// The three distance-2 pairs must rank above the lone distance-3 pair.
	for _, k := range []uint64{PairKey(0, 3), PairKey(1, 4), PairKey(2, 4)} {
		if !seen[k] {
			u, v := KeyPair(k)
			t.Errorf("missing distance-2 pair (%d,%d)", u, v)
		}
	}
	if last := pred[len(pred)-1]; last.Score != -3 || last.Key() != PairKey(0, 4) {
		t.Errorf("expected (0,4) at distance 3 last, got %+v", last)
	}
}

// Property: topK returns exactly the k highest-scored entries.
func TestTopKQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		top := newTopK(k, seed)
		scores := make([]float64, n)
		for i := 0; i < n; i++ {
			scores[i] = float64(rng.Intn(50))
			top.Add(0, graph.NodeID(i+1), scores[i])
		}
		res := top.Result()
		want := min(k, n)
		if len(res) != want {
			return false
		}
		// The k-th best score must be <= every selected score; count check:
		// number of entries strictly above the minimum selected score must
		// be <= k and all of them selected.
		minSel := res[len(res)-1].Score
		strictlyAbove := 0
		for _, s := range scores {
			if s > minSel {
				strictlyAbove++
			}
		}
		if strictlyAbove > k {
			return false
		}
		selAbove := 0
		for _, p := range res {
			if p.Score > minSel {
				selAbove++
			}
		}
		return selAbove == strictlyAbove
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoHopPairs(t *testing.T) {
	g := kite()
	got := map[uint64]bool{}
	twoHopPairs(g, func(u, v graph.NodeID) {
		if got[PairKey(u, v)] {
			t.Errorf("duplicate 2-hop pair (%d,%d)", u, v)
		}
		got[PairKey(u, v)] = true
	})
	// Unconnected pairs at distance 2: (0,3) via 1/2; (1,4),(2,4) via 3.
	want := []uint64{PairKey(0, 3), PairKey(1, 4), PairKey(2, 4)}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d: %v", len(got), len(want), got)
	}
	for _, w := range want {
		if !got[w] {
			u, v := KeyPair(w)
			t.Errorf("missing 2-hop pair (%d,%d)", u, v)
		}
	}
}

func TestRandomPrediction(t *testing.T) {
	g := kite()
	pred := RandomPrediction(g, 3, 9)
	if len(pred) != 3 {
		t.Fatalf("got %d pairs", len(pred))
	}
	seen := map[uint64]bool{}
	for _, p := range pred {
		if g.HasEdge(p.U, p.V) || p.U >= p.V {
			t.Errorf("bad random pair %+v", p)
		}
		if seen[p.Key()] {
			t.Errorf("duplicate random pair %+v", p)
		}
		seen[p.Key()] = true
	}
	// Requesting more than available clamps to the unconnected pair count.
	all := RandomPrediction(g, 100, 9)
	if int64(len(all)) != g.UnconnectedPairs() {
		t.Errorf("clamp failed: %d pairs, want %d", len(all), g.UnconnectedPairs())
	}
}

func TestAccuracyRatio(t *testing.T) {
	g := kite() // 5 nodes, 6 edges → U = 10-6 = 4
	if got := ExpectedRandomOverlap(g, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("ExpectedRandomOverlap = %v, want 4/4 = 1", got)
	}
	if got := AccuracyRatio(2, 2, g); math.Abs(got-2) > 1e-12 {
		t.Errorf("AccuracyRatio = %v, want 2", got)
	}
	complete := graph.Build(3, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}})
	if got := AccuracyRatio(1, 1, complete); got != 0 {
		t.Errorf("AccuracyRatio on complete graph = %v, want 0", got)
	}
}

func TestTruthSet(t *testing.T) {
	g := kite()
	newEdges := []graph.Edge{
		{U: 0, V: 3},  // valid new link
		{U: 0, V: 1},  // already connected: excluded
		{U: 0, V: 17}, // endpoint beyond snapshot: excluded
	}
	truth := TruthSet(g, newEdges)
	if len(truth) != 1 || !truth[PairKey(0, 3)] {
		t.Fatalf("truth = %v", truth)
	}
	if got := CountCorrect([]Pair{{U: 0, V: 3}, {U: 1, V: 4}}, truth); got != 1 {
		t.Errorf("CountCorrect = %d, want 1", got)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		got, err := ByName(a.Name())
		if err != nil || got.Name() != a.Name() {
			t.Errorf("ByName(%q) failed: %v", a.Name(), err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestPairKeyRoundTrip(t *testing.T) {
	f := func(u, v int32) bool {
		if u < 0 {
			u = -u
		}
		if v < 0 {
			v = -v
		}
		if u == v {
			return true
		}
		a, b := KeyPair(PairKey(u, v))
		return a == min(u, v) && b == max(u, v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

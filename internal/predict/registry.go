package predict

import (
	"errors"
	"fmt"
	"math/rand"

	"linkpred/internal/graph"
)

// ErrUnknownAlgorithm is wrapped by ByName for unrecognized names, so
// callers (e.g. the serving layer's HTTP 400 mapping) can errors.Is it.
var ErrUnknownAlgorithm = errors.New("unknown algorithm")

// All returns every implemented metric-based algorithm, including both Katz
// approximations (the paper's 14 metrics of Table 3, with Katz counted once
// but implemented twice as Katz_lr and Katz_sc).
func All() []Algorithm {
	return []Algorithm{CN, JC, AA, RA, BCN, BAA, BRA, PA, SP, LP, KatzLR, KatzSC, PPR, LRW, Rescal}
}

// FeatureSet returns the 14 metrics used as classifier input features (§5),
// using Katz_lr as "Katz" exactly as the paper does after §4.2.
func FeatureSet() []Algorithm {
	return []Algorithm{CN, JC, AA, RA, BCN, BAA, BRA, PA, SP, LP, KatzLR, PPR, LRW, Rescal}
}

// Figure5Set returns the algorithms plotted in Figure 5 (CN, AA, RA omitted
// in favour of their naive Bayes variants, both Katz variants included).
func Figure5Set() []Algorithm {
	return []Algorithm{JC, BCN, BAA, BRA, PA, SP, LP, KatzLR, KatzSC, PPR, LRW, Rescal}
}

// ByName resolves an algorithm by its paper abbreviation, searching the
// evaluated set first and then the survey extensions.
func ByName(name string) (Algorithm, error) {
	for _, a := range All() {
		if a.Name() == name {
			return a, nil
		}
	}
	for _, a := range Extensions() {
		if a.Name() == name {
			return a, nil
		}
	}
	for _, a := range Comparators() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("predict: %w %q", ErrUnknownAlgorithm, name)
}

// RandomPrediction draws k distinct unconnected pairs uniformly at random,
// the paper's baseline predictor (§4.1).
func RandomPrediction(g *graph.Graph, k int, seed int64) []Pair {
	mustFullGraph(g, "RandomPrediction")
	n := g.NumNodes()
	if n < 2 || k <= 0 {
		return nil
	}
	if int64(k) > g.UnconnectedPairs() {
		k = int(g.UnconnectedPairs())
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, k)
	out := make([]Pair, 0, k)
	for len(out) < k {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		key := PairKey(u, v)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Pair{U: minID(u, v), V: maxID(u, v)})
	}
	return out
}

// Comparators returns reference implementations used to validate the
// paper's approximations (currently the truncated-exact Katz).
func Comparators() []Algorithm {
	return []Algorithm{KatzExact}
}

package predict

import (
	"math"

	"linkpred/internal/graph"
)

// This file implements the additional neighborhood similarity metrics from
// Lü & Zhou's survey [28], which the paper cites as the canonical metric
// catalogue. They are not part of the paper's 14 evaluated algorithms but
// round the library out for downstream studies; Extensions() keeps them
// separate from the paper-faithful registries.

func scoreSalton(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, common []graph.NodeID) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	if du == 0 || dv == 0 {
		return 0
	}
	return float64(len(common)) / math.Sqrt(float64(du)*float64(dv))
}

func scoreSorensen(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, common []graph.NodeID) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	if du+dv == 0 {
		return 0
	}
	return 2 * float64(len(common)) / float64(du+dv)
}

func scoreHPI(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, common []graph.NodeID) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	m := min(du, dv)
	if m == 0 {
		return 0
	}
	return float64(len(common)) / float64(m)
}

func scoreHDI(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, common []graph.NodeID) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	m := max(du, dv)
	if m == 0 {
		return 0
	}
	return float64(len(common)) / float64(m)
}

func scoreLHN(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, common []graph.NodeID) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	if du == 0 || dv == 0 {
		return 0
	}
	return float64(len(common)) / (float64(du) * float64(dv))
}

// The fused accumulate-then-finish forms: all five survey metrics depend
// only on the common-neighbor count and endpoint degrees, so they ride the
// count-only sweep kernel (witness nil).

func fuseSalton(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, count int32, _ float64) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	if du == 0 || dv == 0 {
		return 0
	}
	return float64(count) / math.Sqrt(float64(du)*float64(dv))
}

func fuseSorensen(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, count int32, _ float64) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	if du+dv == 0 {
		return 0
	}
	return 2 * float64(count) / float64(du+dv)
}

func fuseHPI(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, count int32, _ float64) float64 {
	m := min(g.Degree(u), g.Degree(v))
	if m == 0 {
		return 0
	}
	return float64(count) / float64(m)
}

func fuseHDI(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, count int32, _ float64) float64 {
	m := max(g.Degree(u), g.Degree(v))
	if m == 0 {
		return 0
	}
	return float64(count) / float64(m)
}

func fuseLHN(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, count int32, _ float64) float64 {
	du, dv := g.Degree(u), g.Degree(v)
	if du == 0 || dv == 0 {
		return 0
	}
	return float64(count) / (float64(du) * float64(dv))
}

// The four degree-normalized indices are bounded by 1 and a degree-twin
// candidate attains it, so they carry the unit bound (which never prunes —
// DESIGN.md §10); LHN's denominator grows with deg(u), giving it the
// strongest per-source bound in the family.

// Salton is the cosine similarity index (|Γu∩Γv| / sqrt(ku·kv)).
var Salton Algorithm = &localMetric{name: "Salton", score: scoreSalton, fuse: fuseSalton, boundKind: boundUnit}

// Sorensen is the Sørensen index (2|Γu∩Γv| / (ku+kv)).
var Sorensen Algorithm = &localMetric{name: "Sorensen", score: scoreSorensen, fuse: fuseSorensen, boundKind: boundUnit}

// HPI is the Hub Promoted Index (|Γu∩Γv| / min(ku,kv)).
var HPI Algorithm = &localMetric{name: "HPI", score: scoreHPI, fuse: fuseHPI, boundKind: boundUnit}

// HDI is the Hub Depressed Index (|Γu∩Γv| / max(ku,kv)).
var HDI Algorithm = &localMetric{name: "HDI", score: scoreHDI, fuse: fuseHDI, boundKind: boundUnit}

// LHN is the Leicht-Holme-Newman index (|Γu∩Γv| / (ku·kv)).
var LHN Algorithm = &localMetric{name: "LHN", score: scoreLHN, fuse: fuseLHN, boundKind: boundInvDeg}

// Extensions returns the survey metrics beyond the paper's evaluated set.
// SRW (walk.go) rides along: it is the survey's superposed companion to the
// evaluated LRW rather than a neighborhood metric.
func Extensions() []Algorithm {
	return []Algorithm{Salton, Sorensen, HPI, HDI, LHN, SRW}
}

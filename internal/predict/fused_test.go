package predict

import (
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
)

// The fused sweep kernels must be indistinguishable from the per-pair
// intersection reference: same candidate set, bit-identical float scores,
// identical top-k output at every worker count, and identical telemetry
// counts. These tests pin that contract on seeded random graphs.

// fusedMetrics returns every algorithm implemented as a localMetric: the
// paper's 7 local metrics plus the 5 survey extensions.
func fusedMetrics() []*localMetric {
	var ms []*localMetric
	for _, a := range []Algorithm{CN, JC, AA, RA, BCN, BAA, BRA, Salton, Sorensen, HPI, HDI, LHN} {
		ms = append(ms, a.(*localMetric))
	}
	return ms
}

// fusedWorkerCounts are the engine configurations the kernels are checked
// at: serial, even splits, and a count that does not divide the node range.
func fusedWorkerCounts() []int { return []int{1, 2, 4, 7} }

// fusedGraphs are the seeded fixtures: dense, sparse, and one with
// isolated nodes (randomGraph draws endpoints independently, so some nodes
// get no edges).
func fusedGraphs() []*graph.Graph {
	return []*graph.Graph{
		randomGraph(1, 60, 400),
		randomGraph(2, 150, 300),
		randomGraph(3, 40, 60),
	}
}

// TestFusedKernelsMatchReferencePredict cross-checks the fused Predict
// against the visit-callback reference for every local metric, asserting
// bit-identical top-k output (pairs, order, and float scores) at worker
// counts 1/2/4/7.
func TestFusedKernelsMatchReferencePredict(t *testing.T) {
	const k = 40
	for gi, g := range fusedGraphs() {
		for _, m := range fusedMetrics() {
			opt := DefaultOptions()
			opt.Workers = 1
			want := m.referencePredict(g, k, opt)
			if len(want) == 0 {
				t.Fatalf("graph %d %s: reference produced no predictions", gi, m.name)
			}
			for _, w := range fusedWorkerCounts() {
				opt.Workers = w
				got := m.Predict(g, k, opt)
				if len(got) != len(want) {
					t.Errorf("graph %d %s workers=%d: %d pairs, reference %d",
						gi, m.name, w, len(got), len(want))
					continue
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("graph %d %s workers=%d: rank %d fused %+v, reference %+v",
							gi, m.name, w, i, got[i], want[i])
						break
					}
				}
			}
		}
	}
}

// fusedQueryPairs builds a deliberately hostile ScorePairs batch: every
// unordered pair (connected pairs included), a swathe of non-canonical
// (U > V) queries, and self-pairs, in unsorted order.
func fusedQueryPairs(g *graph.Graph) []Pair {
	n := graph.NodeID(g.NumNodes())
	var pairs []Pair
	for u := graph.NodeID(0); u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, Pair{U: u, V: v})
		}
	}
	for i := graph.NodeID(0); i < 30 && i+1 < n; i++ {
		pairs = append(pairs, Pair{U: n - i - 1, V: i % (n - i - 1)}) // U > V
		pairs = append(pairs, Pair{U: i, V: i})                       // self
	}
	for i, j := 0, len(pairs)-1; i < j; i, j = i+2, j-3 {
		pairs[i], pairs[j] = pairs[j], pairs[i]
	}
	return pairs
}

// TestFusedKernelsMatchReferenceScorePairs cross-checks the fused batch
// path against the per-pair reference, asserting equal score vectors
// (bit-identical floats) at worker counts 1/2/4/7.
func TestFusedKernelsMatchReferenceScorePairs(t *testing.T) {
	for gi, g := range fusedGraphs() {
		pairs := fusedQueryPairs(g)
		for _, m := range fusedMetrics() {
			opt := DefaultOptions()
			opt.Workers = 1
			want := m.referenceScorePairs(g, pairs, opt)
			for _, w := range fusedWorkerCounts() {
				opt.Workers = w
				got := m.ScorePairs(g, pairs, opt)
				if len(got) != len(want) {
					t.Fatalf("graph %d %s workers=%d: length mismatch", gi, m.name, w)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("graph %d %s workers=%d: score[%d] fused %v, reference %v (pair %+v)",
							gi, m.name, w, i, got[i], want[i], pairs[i])
						break
					}
				}
			}
		}
	}
}

// TestFusedPairsScoredMatchesReference asserts the fused Predict reports
// exactly as many pairs_scored as the reference enumeration produces
// candidates — the fused sweep must offer the same candidate set to the
// top-k selectors, not an approximation of it.
func TestFusedPairsScoredMatchesReference(t *testing.T) {
	g := randomGraph(9, 200, 900)
	var want int64
	twoHopPairs(g, func(u, v graph.NodeID) { want++ })
	for _, alg := range []Algorithm{CN, BRA} {
		for _, workers := range []int{1, 4} {
			withTelemetry(t, func() {
				opt := DefaultOptions()
				opt.Workers = workers
				// The exhaustive sweep is the path whose candidate set must
				// equal the full enumeration; the pruned default skips
				// provably hopeless sources (prune_test.go covers it).
				opt.ExhaustiveSweep = true
				alg.Predict(g, 50, opt)
				key := "predict/" + alg.Name() + "/pairs_scored"
				c, ok := obs.LookupCounter(key)
				if !ok {
					t.Fatalf("%s workers=%d: counter %q missing", alg.Name(), workers, key)
				}
				if c.Value() != want {
					t.Errorf("%s workers=%d: pairs_scored = %d, reference enumerates %d",
						alg.Name(), workers, c.Value(), want)
				}
			})
		}
	}
}

// TestFusedPredictAllocs is the allocation regression guard: the fused
// Predict path must perform zero per-pair allocations. Each call allocates
// a constant set of per-call state (per-worker scratch, selectors, merge)
// regardless of how many candidate pairs it scores, so the per-run count is
// asserted against a small fixed bound while the sweep scores tens of
// thousands of pairs.
func TestFusedPredictAllocs(t *testing.T) {
	g := randomGraph(4, 400, 4000)
	var pairs int64
	twoHopPairs(g, func(u, v graph.NodeID) { pairs++ })
	if pairs < 10000 {
		t.Fatalf("fixture too small: %d candidate pairs", pairs)
	}
	const maxAllocs = 48
	for _, alg := range []Algorithm{CN, JC, AA, RA, BCN, BAA, BRA} {
		opt := DefaultOptions()
		opt.Workers = 1
		allocs := testing.AllocsPerRun(5, func() { alg.Predict(g, 200, opt) })
		if allocs > maxAllocs {
			t.Errorf("%s: %v allocs per Predict over %d candidate pairs, want <= %d fixed",
				alg.Name(), allocs, pairs, maxAllocs)
		}
	}
}

// TestFusedScorePairsAllocs pins the batch path the same way: out, the
// source-sorted index, and per-worker scratch — never per-query
// allocations.
func TestFusedScorePairsAllocs(t *testing.T) {
	g := randomGraph(4, 400, 4000)
	var pairs []Pair
	twoHopPairs(g, func(u, v graph.NodeID) {
		if len(pairs) < 5000 {
			pairs = append(pairs, Pair{U: u, V: v})
		}
	})
	const maxAllocs = 24
	for _, alg := range []Algorithm{CN, RA, BCN} {
		opt := DefaultOptions()
		opt.Workers = 1
		allocs := testing.AllocsPerRun(5, func() { alg.ScorePairs(g, pairs, opt) })
		if allocs > maxAllocs {
			t.Errorf("%s: %v allocs per ScorePairs over %d queries, want <= %d fixed",
				alg.Name(), allocs, len(pairs), maxAllocs)
		}
	}
}

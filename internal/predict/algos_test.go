package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"linkpred/internal/graph"
	"linkpred/internal/linalg"
)

// denseAdj returns the dense adjacency matrix of g.
func denseAdj(g *graph.Graph) *linalg.Dense {
	n := g.NumNodes()
	a := linalg.NewDense(n, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			a.Set(u, int(v), 1)
		}
	}
	return a
}

func TestSPScorePairs(t *testing.T) {
	g := kite()
	opt := DefaultOptions()
	pairs := []Pair{{U: 0, V: 3}, {U: 0, V: 4}, {U: 1, V: 4}}
	scores := SP.ScorePairs(g, pairs, opt)
	want := []float64{-2, -3, -2}
	for i, w := range want {
		if scores[i] != w {
			t.Errorf("SP score %d = %v, want %v", i, scores[i], w)
		}
	}
	// Disconnected node: beyond horizon.
	g2 := graph.Build(4, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	s := SP.ScorePairs(g2, []Pair{{U: 0, V: 2}}, opt)
	if s[0] != float64(-(opt.SPMaxDepth + 2)) {
		t.Errorf("unreachable SP score = %v", s[0])
	}
}

func TestSPPredictIsTwoHop(t *testing.T) {
	g := randomGraph(5, 50, 150)
	twoHop := map[uint64]bool{}
	twoHopPairs(g, func(u, v graph.NodeID) { twoHop[PairKey(u, v)] = true })
	k := 10
	if len(twoHop) <= k {
		t.Skip("fixture too small")
	}
	for _, p := range SP.Predict(g, k, DefaultOptions()) {
		if !twoHop[p.Key()] {
			t.Errorf("SP predicted non-2-hop pair %+v with %d 2-hop pairs available", p, len(twoHop))
		}
		if p.Score != -2 {
			t.Errorf("SP score = %v, want -2", p.Score)
		}
	}
}

// Property: LP scores equal the dense A² + εA³ entries.
func TestLPMatchesDenseQuick(t *testing.T) {
	opt := DefaultOptions()
	f := func(seed int64) bool {
		g := randomGraph(seed, 12+int(seed%7+7)%7, 30)
		a := denseAdj(g)
		a2 := linalg.MatMul(a, a)
		a3 := linalg.MatMul(a2, a)
		n := g.NumNodes()
		var pairs []Pair
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				pairs = append(pairs, Pair{U: graph.NodeID(u), V: graph.NodeID(v)})
			}
		}
		scores := LP.ScorePairs(g, pairs, opt)
		for i, p := range pairs {
			want := a2.At(int(p.U), int(p.V)) + opt.LPEpsilon*a3.At(int(p.U), int(p.V))
			if math.Abs(scores[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: LRW scores match dense m-step transition matrix powers.
func TestLRWMatchesDenseQuick(t *testing.T) {
	opt := DefaultOptions()
	f := func(seed int64) bool {
		g := randomGraph(seed, 14, 40)
		n := g.NumNodes()
		// Dense transition matrix P[u][v] = 1/deg(u) for v in Γ(u).
		p := linalg.NewDense(n, n)
		for u := 0; u < n; u++ {
			d := g.Degree(graph.NodeID(u))
			if d == 0 {
				continue
			}
			for _, v := range g.Neighbors(graph.NodeID(u)) {
				p.Set(u, int(v), 1/float64(d))
			}
		}
		pm := p.Clone()
		for s := 1; s < opt.LRWSteps; s++ {
			pm = linalg.MatMul(pm, p)
		}
		edges := float64(g.NumEdges())
		var pairs []Pair
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				pairs = append(pairs, Pair{U: graph.NodeID(u), V: graph.NodeID(v)})
			}
		}
		scores := LRW.ScorePairs(g, pairs, opt)
		for i, pr := range pairs {
			want := float64(g.Degree(pr.U)) * pm.At(int(pr.U), int(pr.V)) / edges
			if math.Abs(scores[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestLRWReversibility validates the identity the implementation relies on:
// deg(u) π_uv(m) = deg(v) π_vu(m).
func TestLRWReversibility(t *testing.T) {
	g := randomGraph(8, 20, 60)
	n := g.NumNodes()
	scratch := newWalkScratch(n)
	for u := graph.NodeID(0); u < 6; u++ {
		du := float64(g.Degree(u))
		if du == 0 {
			continue
		}
		distU := lrwDistribution(g, u, 3, scratch)
		vals := map[graph.NodeID]float64{}
		for _, v := range distU.touched {
			vals[v] = distU.val[v]
		}
		for v, puv := range vals {
			dv := float64(g.Degree(v))
			if dv == 0 {
				continue
			}
			distV := lrwDistribution(g, v, 3, scratch)
			pvu := distV.val[u]
			if math.Abs(du*puv-dv*pvu) > 1e-9 {
				t.Fatalf("reversibility violated: deg(%d)*π=%v vs deg(%d)*π=%v", u, du*puv, v, dv*pvu)
			}
			break // distV reused cur/next, invalidating distU; one check per u
		}
	}
}

// pprExact computes personalized PageRank by dense power iteration.
func pprExact(g *graph.Graph, u graph.NodeID, alpha float64) []float64 {
	n := g.NumNodes()
	p := make([]float64, n)
	r := make([]float64, n)
	r[u] = 1
	next := make([]float64, n)
	for it := 0; it < 400; it++ {
		for i := range next {
			next[i] = 0
		}
		for x := 0; x < n; x++ {
			if r[x] == 0 {
				continue
			}
			d := g.Degree(graph.NodeID(x))
			if d == 0 {
				p[x] += r[x]
				continue
			}
			p[x] += alpha * r[x]
			share := (1 - alpha) * r[x] / float64(d)
			for _, y := range g.Neighbors(graph.NodeID(x)) {
				next[y] += share
			}
		}
		r, next = next, r
	}
	return p
}

func TestPPRMatchesPowerIteration(t *testing.T) {
	g := randomGraph(4, 25, 70)
	opt := DefaultOptions()
	opt.PPREps = 1e-9 // tight push for comparison
	n := g.NumNodes()
	scratch := newPPRScratch(n)
	for _, u := range []graph.NodeID{0, 5, 10} {
		if g.Degree(u) == 0 {
			continue
		}
		pprPush(g, u, opt.PPRAlpha, opt.PPREps, scratch)
		exact := pprExact(g, u, opt.PPRAlpha)
		for v := 0; v < n; v++ {
			if math.Abs(scratch.p.val[v]-exact[v]) > 1e-4 {
				t.Fatalf("push from %d at %d: %v vs exact %v", u, v, scratch.p.val[v], exact[v])
			}
		}
	}
}

func TestPPRScorePairsSymmetric(t *testing.T) {
	g := randomGraph(6, 30, 80)
	opt := DefaultOptions()
	pairs := []Pair{{U: 1, V: 7}, {U: 2, V: 9}}
	rev := []Pair{{U: 7, V: 1}, {U: 9, V: 2}}
	a := PPR.ScorePairs(g, pairs, opt)
	b := PPR.ScorePairs(g, rev, opt)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Errorf("PPR score not symmetric: %v vs %v", a[i], b[i])
		}
	}
}

// katzExact computes the full Katz matrix (I - βA)⁻¹ - I via the Neumann
// series, which converges for β < 1/λ_max.
func katzExact(g *graph.Graph, beta float64, terms int) *linalg.Dense {
	a := denseAdj(g)
	n := g.NumNodes()
	sum := linalg.NewDense(n, n)
	term := a.Clone()
	weight := beta
	for l := 1; l <= terms; l++ {
		for i := range sum.Data {
			sum.Data[i] += weight * term.Data[i]
		}
		term = linalg.MatMul(term, a)
		weight *= beta
	}
	return sum
}

func TestKatzLRFullRankMatchesExact(t *testing.T) {
	g := randomGraph(7, 16, 40)
	n := g.NumNodes()
	opt := DefaultOptions()
	opt.KatzRank = n // full rank → approximation becomes exact
	opt.KatzEigIters = 200
	exact := katzExact(g, opt.KatzBeta, 60)
	var pairs []Pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, Pair{U: graph.NodeID(u), V: graph.NodeID(v)})
		}
	}
	scores := KatzLR.ScorePairs(g, pairs, opt)
	for i, p := range pairs {
		want := exact.At(int(p.U), int(p.V))
		if math.Abs(scores[i]-want) > 1e-6 {
			t.Fatalf("Katz(%d,%d) = %v, want %v", p.U, p.V, scores[i], want)
		}
	}
}

// baGraph builds a preferential-attachment graph, whose skewed spectrum is
// the regime low-rank approximations are designed for (social networks).
func baGraph(seed int64, n, perNode int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	endpoints := []graph.NodeID{0, 1}
	edges = append(edges, graph.Edge{U: 0, V: 1})
	for v := graph.NodeID(2); int(v) < n; v++ {
		for e := 0; e < perNode; e++ {
			u := endpoints[rng.Intn(len(endpoints))]
			if u == v {
				continue
			}
			edges = append(edges, graph.Edge{U: u, V: v, Time: int64(len(edges))})
			endpoints = append(endpoints, u, v)
		}
	}
	return graph.Build(n, edges)
}

func TestKatzSCCorrelatesWithExact(t *testing.T) {
	g := baGraph(9, 40, 3)
	n := g.NumNodes()
	opt := DefaultOptions()
	opt.KatzLandmarks = n // all nodes as landmarks → near-exact Nyström
	exact := katzExact(g, opt.KatzBeta, opt.KatzMaxLen)
	var pairs []Pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				pairs = append(pairs, Pair{U: graph.NodeID(u), V: graph.NodeID(v)})
			}
		}
	}
	scores := KatzSC.ScorePairs(g, pairs, opt)
	// With the full landmark set, the Nyström reconstruction should be very
	// close; require high rank agreement via Pearson correlation.
	var ex []float64
	for _, p := range pairs {
		ex = append(ex, exact.At(int(p.U), int(p.V)))
	}
	if c := pearson(scores, ex); c < 0.98 {
		t.Fatalf("KatzSC full-landmark correlation = %v, want >= 0.98", c)
	}
	// With fewer landmarks the approximation degrades sharply — Katz_sc is
	// the cheap, much less accurate Katz variant, exactly the ordering the
	// paper reports (§4.2, Table 4).
	opt.KatzLandmarks = 20
	scSub := pearson(KatzSC.ScorePairs(g, pairs, opt), ex)
	if scSub >= 0.9 {
		t.Fatalf("20-landmark Katz_sc corr %v suspiciously high; expected a lossy approximation", scSub)
	}
}

// TestKatzLRRankMonotone verifies that the low-rank Katz approximation
// approaches the exact Katz scores as the rank grows. (At low rank the
// method degenerates into latent-factor scoring — structured, but far from
// the exact path counts; that is inherent to Katz_lr, not a bug.)
func TestKatzLRRankMonotone(t *testing.T) {
	g := baGraph(9, 40, 3)
	n := g.NumNodes()
	opt := DefaultOptions()
	opt.KatzEigIters = 200
	exact := katzExact(g, opt.KatzBeta, 40)
	var pairs []Pair
	var ex []float64
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				pairs = append(pairs, Pair{U: graph.NodeID(u), V: graph.NodeID(v)})
				ex = append(ex, exact.At(u, v))
			}
		}
	}
	corr := func(rank int) float64 {
		opt.KatzRank = rank
		return pearson(KatzLR.ScorePairs(g, pairs, opt), ex)
	}
	low, full := corr(10), corr(n)
	if full < 0.999 {
		t.Fatalf("full-rank Katz corr = %v, want ~1", full)
	}
	if full <= low {
		t.Fatalf("rank monotonicity violated: full %v <= low %v", full, low)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func TestRescalReconstruction(t *testing.T) {
	// Two dense communities: factorization should reconstruct the block
	// structure, scoring within-community unconnected pairs above
	// cross-community pairs.
	var edges []graph.Edge
	rng := rand.New(rand.NewSource(2))
	for c := 0; c < 2; c++ {
		base := graph.NodeID(c * 10)
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				if rng.Float64() < 0.8 {
					edges = append(edges, graph.Edge{U: base + graph.NodeID(i), V: base + graph.NodeID(j)})
				}
			}
		}
	}
	g := graph.Build(20, edges)
	opt := DefaultOptions()
	opt.RescalRank = 4
	opt.RescalIters = 30
	opt.RescalLambda = 0.1 // light ridge: this test exercises the fit itself
	var within, across []Pair
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			if g.HasEdge(graph.NodeID(u), graph.NodeID(v)) {
				continue
			}
			p := Pair{U: graph.NodeID(u), V: graph.NodeID(v)}
			if (u < 10) == (v < 10) {
				within = append(within, p)
			} else {
				across = append(across, p)
			}
		}
	}
	ws := Rescal.ScorePairs(g, within, opt)
	as := Rescal.ScorePairs(g, across, opt)
	avg := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if avg(ws) <= avg(as) {
		t.Fatalf("Rescal within-community avg %v <= across avg %v", avg(ws), avg(as))
	}
}

func TestRescalScoreSymmetric(t *testing.T) {
	g := randomGraph(11, 25, 60)
	opt := DefaultOptions()
	a := Rescal.ScorePairs(g, []Pair{{U: 2, V: 9}}, opt)
	b := Rescal.ScorePairs(g, []Pair{{U: 9, V: 2}}, opt)
	if math.Abs(a[0]-b[0]) > 1e-9 {
		t.Fatalf("Rescal not symmetric: %v vs %v", a[0], b[0])
	}
}

// TestPAExactTopK cross-checks the frontier-heap against brute force on
// random graphs, including the connected-pair skipping.
func TestPAExactTopKQuick(t *testing.T) {
	opt := DefaultOptions()
	f := func(seed int64) bool {
		g := randomGraph(seed, 20, 50)
		k := 6
		pred := PA.Predict(g, k, opt)
		brute := bruteForceTop(g, PA, k, opt)
		if len(pred) != len(brute) {
			return false
		}
		for i := range pred {
			if pred[i] != brute[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalCandidatesNoDuplicates(t *testing.T) {
	g := randomGraph(13, 60, 150)
	opt := DefaultOptions()
	opt.TopDegreeBlock = 10
	opt.RandomCandidates = 2000
	seen := map[uint64]bool{}
	globalCandidates(g, opt, func(u, v graph.NodeID) {
		if u == v {
			t.Fatalf("self pair emitted: %d", u)
		}
		if g.HasEdge(u, v) {
			t.Fatalf("connected pair emitted: (%d,%d)", u, v)
		}
		key := PairKey(u, v)
		if seen[key] {
			t.Fatalf("duplicate candidate (%d,%d)", u, v)
		}
		seen[key] = true
	})
	if len(seen) == 0 {
		t.Fatal("no candidates emitted")
	}
	// Every unconnected 2-hop pair must be covered.
	twoHopPairs(g, func(u, v graph.NodeID) {
		if !seen[PairKey(u, v)] {
			t.Fatalf("2-hop pair (%d,%d) missing from candidates", u, v)
		}
	})
}

// TestKatzExactMatchesDense validates the truncated-exact comparator
// against the dense Neumann series.
func TestKatzExactMatchesDense(t *testing.T) {
	g := randomGraph(12, 18, 50)
	opt := DefaultOptions()
	exact := katzExact(g, opt.KatzBeta, opt.KatzMaxLen)
	n := g.NumNodes()
	var pairs []Pair
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, Pair{U: graph.NodeID(u), V: graph.NodeID(v)})
		}
	}
	scores := KatzExact.ScorePairs(g, pairs, opt)
	for i, p := range pairs {
		want := exact.At(int(p.U), int(p.V))
		if math.Abs(scores[i]-want) > 1e-12 {
			t.Fatalf("KatzExact(%d,%d) = %v, want %v", p.U, p.V, scores[i], want)
		}
	}
	// Predict agrees with brute force over positive-scored pairs.
	pred := KatzExact.Predict(g, 6, opt)
	brute := bruteForceTop(g, KatzExact, 6, opt)
	for i := range brute {
		if brute[i].Score <= 0 {
			break
		}
		if i < len(pred) && pred[i] != brute[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, pred[i], brute[i])
		}
	}
}

func TestComparatorsRegistry(t *testing.T) {
	if _, err := ByName("KatzExact"); err != nil {
		t.Fatal(err)
	}
	for _, a := range Comparators() {
		for _, core := range All() {
			if core.Name() == a.Name() {
				t.Errorf("comparator %s also in All()", a.Name())
			}
		}
	}
}

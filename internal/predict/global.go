package predict

import (
	"math/rand"
	"sort"

	"linkpred/internal/graph"
)

// globalCandidates enumerates the candidate pairs the latent-space
// algorithms (Katz, Rescal) rank: every unconnected 2-hop pair, the pairings
// of the TopDegreeBlock highest-degree nodes with all other nodes, and a
// seeded sample of RandomCandidates distant pairs. Each unconnected pair is
// emitted at most once.
//
// The paper scores all O(|V|²) pairs on a server fleet; this bounded set
// preserves the regions where those algorithms actually place their top-k
// mass — short-range pairs (the overwhelming majority of predictions, §4.2)
// and supernode pairings (where Rescal concentrates, Table 5) — while
// keeping single-machine runtimes practical. DESIGN.md documents the
// substitution, and the ablation benchmark compares against exhaustive
// enumeration on a small graph.
func globalCandidates(g *graph.Graph, opt Options, emit func(u, v graph.NodeID)) {
	n := g.NumNodes()
	if n < 2 {
		return
	}
	// Phase 1: all unconnected 2-hop pairs.
	twoHopPairs(g, emit)

	// Phase 2: top-degree block x everyone. Pairs at 2 hops were already
	// emitted in phase 1, so skip pairs with common neighbors.
	blockSize := opt.TopDegreeBlock
	if blockSize > n {
		blockSize = n
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	inBlock := make([]bool, n)
	for _, u := range order[:blockSize] {
		inBlock[u] = true
	}
	for bi, u := range order[:blockSize] {
		for v := 0; v < n; v++ {
			vid := graph.NodeID(v)
			if vid == u || g.HasEdge(u, vid) {
				continue
			}
			if inBlock[vid] {
				// Emit block-block pairs once (by block order).
				if idx := blockIndex(order[:blockSize], vid); idx < bi {
					continue
				}
			}
			if g.CountCommonNeighbors(u, vid) > 0 {
				continue // already emitted as a 2-hop pair
			}
			emit(u, vid)
		}
	}

	// Phase 3: seeded random distant pairs, avoiding everything emitted
	// above.
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
	seen := make(map[uint64]bool, opt.RandomCandidates)
	for i := 0; i < opt.RandomCandidates; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || inBlock[u] || inBlock[v] || g.HasEdge(u, v) {
			continue
		}
		if key := PairKey(u, v); seen[key] {
			continue
		} else {
			seen[key] = true
		}
		if g.CountCommonNeighbors(u, v) > 0 {
			continue
		}
		emit(u, v)
	}
}

// blockIndex finds v in the block slice (linear scan; blocks are small).
func blockIndex(block []graph.NodeID, v graph.NodeID) int {
	for i, b := range block {
		if b == v {
			return i
		}
	}
	return len(block)
}

package predict

import (
	"cmp"
	"math/rand"
	"slices"

	"linkpred/internal/graph"
	"linkpred/internal/par"
	"linkpred/internal/snapcache"
)

// The latent-space algorithms (Katz, Rescal) rank a bounded global candidate
// set: every unconnected 2-hop pair, the pairings of the TopDegreeBlock
// highest-degree nodes with all other nodes, and a seeded sample of
// RandomCandidates distant pairs. Each unconnected pair is emitted at most
// once across the three phases.
//
// The paper scores all O(|V|²) pairs on a server fleet; this bounded set
// preserves the regions where those algorithms actually place their top-k
// mass — short-range pairs (the overwhelming majority of predictions, §4.2)
// and supernode pairings (where Rescal concentrates, Table 5) — while
// keeping single-machine runtimes practical. DESIGN.md documents the
// substitution, and the ablation benchmark compares against exhaustive
// enumeration on a small graph.

// degreeBlock computes the degree-descending node order and the block
// membership mask shared by phases 2 and 3.
func degreeBlock(g *graph.Graph, opt Options) (order []graph.NodeID, inBlock []bool, blockSize int) {
	n := g.NumNodes()
	blockSize = opt.TopDegreeBlock
	if blockSize > n {
		blockSize = n
	}
	order = make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	slices.SortStableFunc(order, func(a, b graph.NodeID) int {
		if c := cmp.Compare(g.Degree(b), g.Degree(a)); c != 0 {
			return c
		}
		return cmp.Compare(a, b)
	})
	inBlock = make([]bool, n)
	for _, u := range order[:blockSize] {
		inBlock[u] = true
	}
	return order, inBlock, blockSize
}

// blockPairEligible reports whether phase 2 emits (u, vid) for block entry
// (bi, u): skips self/connected pairs, dedups block-block pairs to one
// orientation, and skips 2-hop pairs already covered by phase 1.
func blockPairEligible(g *graph.Graph, order []graph.NodeID, inBlock []bool, blockSize, bi int, u, vid graph.NodeID) bool {
	if vid == u || g.HasEdge(u, vid) {
		return false
	}
	if inBlock[vid] {
		// Emit block-block pairs once (by block order).
		if idx := blockIndex(order[:blockSize], vid); idx < bi {
			return false
		}
	}
	return g.CountCommonNeighbors(u, vid) == 0
}

// randomCandidates emits the phase-3 seeded random distant pairs, avoiding
// everything phases 1 and 2 covered. The single RNG stream is part of the
// deterministic contract, so this phase always runs serially.
func randomCandidates(g *graph.Graph, opt Options, inBlock []bool, emit func(u, v graph.NodeID)) {
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x5eed))
	seen := make(map[uint64]bool, opt.RandomCandidates)
	for i := 0; i < opt.RandomCandidates; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || inBlock[u] || inBlock[v] || g.HasEdge(u, v) {
			continue
		}
		if key := PairKey(u, v); seen[key] {
			continue
		} else {
			seen[key] = true
		}
		if g.CountCommonNeighbors(u, v) > 0 {
			continue
		}
		emit(u, v)
	}
}

// globalCandidates is the serial single-stream enumeration of the full
// candidate set, kept as the reference the parallel path and the tests
// compare against.
func globalCandidates(g *graph.Graph, opt Options, emit func(u, v graph.NodeID)) {
	n := g.NumNodes()
	if n < 2 {
		return
	}
	// Phase 1: all unconnected 2-hop pairs.
	twoHopPairs(g, emit)

	// Phase 2: top-degree block x everyone.
	order, inBlock, blockSize := degreeBlock(g, opt)
	for bi, u := range order[:blockSize] {
		for v := 0; v < n; v++ {
			vid := graph.NodeID(v)
			if blockPairEligible(g, order, inBlock, blockSize, bi, u, vid) {
				emit(u, vid)
			}
		}
	}

	// Phase 3: seeded random distant pairs.
	randomCandidates(g, opt, inBlock, emit)
}

// predictGlobal ranks the bounded global candidate set under score, sharding
// the 2-hop sweep (by source node) and the top-degree block pairings (by the
// non-block side) across workers; score must be safe for concurrent calls
// over read-only state. The per-worker selections merge deterministically,
// so the result matches the serial enumeration bit for bit.
//
// With a SourceRange set, phase 1 restricts its source loop while phases 2
// and 3 run their full traversals — the block dedup and the phase-3 RNG
// stream plus its seen-set are order-sensitive, so every shard replays them
// identically — and filter emission by pair ownership. The three phases
// emit disjoint pair sets, so the ownership filter partitions the exact
// serial candidate set across shards. Latent scores are pure per-pair
// functions of cached factor matrices, so partition plus per-pair scoring
// merges bit-identically.
func predictGlobal(g *graph.Graph, k int, opt Options, score func(u, v graph.NodeID) float64) []Pair {
	n := g.NumNodes()
	if n < 2 {
		return nil
	}
	// Phase 1: sharded 2-hop sweep.
	parts := twoHopParts(g, k, opt, func(u, v graph.NodeID, top *topK) {
		top.Add(u, v, score(u, v))
	})

	// Phase 2: top-degree block x everyone, sharded over block entries. For
	// each block node u one stamp pass marks everything phase 2 must skip —
	// u itself, its direct neighbors, and every node sharing a common
	// neighbor with u (the 2-hop shell phase 1 already covered) — so the
	// n-node scan below replaces the former per-pair intersection counting
	// with an O(1) stamp test. The candidate set is exactly the one
	// blockPairEligible admits, which the serial-enumeration equivalence
	// test pins.
	blk := snapcache.For(g).Block(opt.TopDegreeBlock)
	workers := workerCount(opt)
	blockParts := make([]*topK, workers)
	stamps := make([][]int32, workers)
	par.ShardRangeCtx(opt.Ctx, len(blk.Order), workers, 1, func(wk, lo, hi int) {
		if blockParts[wk] == nil {
			blockParts[wk] = newTopKRec(k, opt)
			stamps[wk] = newStamp(n)
		}
		top, stamp := blockParts[wk], stamps[wk]
		for bi := lo; bi < hi; bi++ {
			u := blk.Order[bi]
			mark := int32(bi)
			stamp[u] = mark
			for _, w := range g.Neighbors(u) {
				stamp[w] = mark
				for _, x := range g.Neighbors(w) {
					stamp[x] = mark
				}
			}
			for v := 0; v < n; v++ {
				vid := graph.NodeID(v)
				if stamp[vid] == mark {
					continue
				}
				// Emit block-block pairs once (by block order).
				if blk.In[vid] && blk.Pos[vid] < int32(bi) {
					continue
				}
				if !opt.ownsPair(u, vid) {
					continue
				}
				top.Add(u, vid, score(u, vid))
			}
		}
	})

	// Phase 3: serial random distant pairs.
	rest := newTopKRec(k, opt)
	randomCandidates(g, opt, blk.In, func(u, v graph.NodeID) {
		if !opt.ownsPair(u, v) {
			return
		}
		rest.Add(u, v, score(u, v))
	})

	parts = append(parts, blockParts...)
	parts = append(parts, rest)
	return mergeTopK(k, opt.Seed, parts).Result()
}

// blockIndex finds v in the block slice (linear scan; blocks are small).
func blockIndex(block []graph.NodeID, v graph.NodeID) int {
	for i, b := range block {
		if b == v {
			return i
		}
	}
	return len(block)
}

package predict

import "linkpred/internal/graph"

// sparseVec is a reusable dense-array sparse vector: values plus a touched
// list for O(support) reset, the workhorse of the walk- and path-counting
// algorithms (LP, LRW, PPR, Katz_sc columns).
type sparseVec struct {
	val     []float64
	touched []graph.NodeID
	mark    []bool
}

func newSparseVec(n int) *sparseVec {
	return &sparseVec{val: make([]float64, n), mark: make([]bool, n)}
}

func (s *sparseVec) add(i graph.NodeID, v float64) {
	if !s.mark[i] {
		s.mark[i] = true
		s.touched = append(s.touched, i)
	}
	s.val[i] += v
}

func (s *sparseVec) reset() {
	for _, i := range s.touched {
		s.val[i] = 0
		s.mark[i] = false
	}
	s.touched = s.touched[:0]
}

// propagate computes dst = A * src over the graph adjacency, accumulating
// into dst (which should be reset by the caller first).
func propagate(g *graph.Graph, src, dst *sparseVec) {
	for _, x := range src.touched {
		v := src.val[x]
		if v == 0 {
			continue
		}
		for _, y := range g.Neighbors(x) {
			dst.add(y, v)
		}
	}
}

// propagateWalk computes dst = P^T * src where P is the random-walk
// transition matrix (src mass at x spreads as src[x]/deg(x) to neighbors).
func propagateWalk(g *graph.Graph, src, dst *sparseVec) {
	for _, x := range src.touched {
		v := src.val[x]
		d := g.Degree(x)
		if v == 0 || d == 0 {
			continue
		}
		share := v / float64(d)
		for _, y := range g.Neighbors(x) {
			dst.add(y, share)
		}
	}
}

package predict

import (
	"testing"

	"linkpred/internal/linalg"
	"linkpred/internal/snapcache"
)

// TestLatentFactorsWorkerInvariance pins the factor builders themselves to
// bit-identical output at every worker count. The snapshot cache is dropped
// between counts so every run rebuilds from scratch — without the Reset the
// cache would hand back the first run's matrices and hide a divergence.
// This is the property that lets cache keys omit Options.Workers.
func TestLatentFactorsWorkerInvariance(t *testing.T) {
	g := randomGraph(3, 220, 1100)
	builders := []struct {
		name string
		run  func(workers int) []*linalg.Dense
	}{
		{"katz", func(w int) []*linalg.Dense {
			opt := DefaultOptions()
			opt.Workers = w
			a, b := katzFactors(g, opt)
			return []*linalg.Dense{a, b}
		}},
		{"katzsc", func(w int) []*linalg.Dense {
			opt := DefaultOptions()
			opt.Workers = w
			a, b := katzSCFactors(g, opt)
			return []*linalg.Dense{a, b}
		}},
		{"rescal", func(w int) []*linalg.Dense {
			opt := DefaultOptions()
			opt.Workers = w
			a, b := rescalFactors(g, opt)
			return []*linalg.Dense{a, b}
		}},
	}
	for _, b := range builders {
		snapcache.Reset()
		ref := b.run(1)
		for _, w := range []int{2, 4, 7} {
			snapcache.Reset()
			got := b.run(w)
			for fi := range ref {
				if len(got[fi].Data) != len(ref[fi].Data) {
					t.Fatalf("%s workers=%d: factor %d shape differs", b.name, w, fi)
				}
				for i := range ref[fi].Data {
					if got[fi].Data[i] != ref[fi].Data[i] {
						t.Fatalf("%s workers=%d: factor %d element %d = %v, want %v",
							b.name, w, fi, i, got[fi].Data[i], ref[fi].Data[i])
					}
				}
			}
		}
	}
	snapcache.Reset()
}

// TestFactorCacheSharesAcrossCalls asserts two calls against the same
// snapshot return the same matrices (pointer equality — one build).
func TestFactorCacheSharesAcrossCalls(t *testing.T) {
	snapcache.Reset()
	g := randomGraph(4, 120, 500)
	opt := DefaultOptions()
	a1, b1 := katzFactors(g, opt)
	a2, b2 := katzFactors(g, opt)
	if a1 != a2 || b1 != b2 {
		t.Error("katzFactors rebuilt for a cached snapshot")
	}
	// A different parameter set must not collide with the cached key.
	opt.KatzRank = 7
	a3, _ := katzFactors(g, opt)
	if a3 == a1 {
		t.Error("katzFactors with different rank returned the cached factors")
	}
	snapcache.Reset()
}

package predict

import (
	"math"

	"linkpred/internal/graph"
	"linkpred/internal/snapcache"
)

// localMetric is the family of neighborhood similarity metrics: CN, JC, AA,
// RA and their Local Naive Bayes variants BCN, BAA, BRA (Table 3), plus the
// survey extensions. All of them are supported only on pairs sharing at
// least one common neighbor, so Predict enumerates exactly the unconnected
// 2-hop pairs.
//
// Each metric carries two formulations: score is the per-pair fold over the
// explicit common-neighbor list (the reference the property tests pin the
// kernels against), while (witness, fuse) express the same metric in the
// accumulate-then-finish form the fused sweep kernels execute. Both fold
// witnesses in ascending NodeID order, so their float results are
// bit-identical.
type localMetric struct {
	name string
	// score computes the metric given the common neighbor list; nb is nil
	// unless the metric is a naive Bayes variant.
	score func(g *graph.Graph, nb *naiveBayes, u, v graph.NodeID, common []graph.NodeID) float64
	// usesNB marks the BCN/BAA/BRA family, which needs triangle statistics.
	usesNB bool
	// witness is the per-common-neighbor weight accumulated by the fused
	// sweep; nil for count-only metrics. ld is the snapshot's shared
	// nonNegLog-degree table (snapcache), so log-weighted witnesses cost a
	// load instead of a math.Log per wedge.
	witness func(g *graph.Graph, ld []float64, nb *naiveBayes, w graph.NodeID) float64
	// fuse finishes one candidate from the accumulated common-neighbor
	// count and witness-weight sum.
	fuse func(g *graph.Graph, nb *naiveBayes, u, v graph.NodeID, count int32, wsum float64) float64
	// boundKind selects the per-source score upper bound driving top-k
	// threshold pruning (prune.go); boundTerm supplies the per-witness term
	// for boundAdditive metrics and is ignored otherwise.
	boundKind boundKind
	boundTerm func(g *graph.Graph, ld []float64, nb *naiveBayes, w graph.NodeID) float64
}

func (m *localMetric) Name() string { return m.name }

// kernel binds the metric's accumulate/finish forms to one snapshot's
// read-only state (the graph and, for the B* family, the naive Bayes
// statistics); the returned closures are shared by all workers of a call.
func (m *localMetric) kernel(g *graph.Graph, nb *naiveBayes) sweepKernel {
	k := sweepKernel{finish: func(u, v graph.NodeID, count int32, wsum float64) float64 {
		return m.fuse(g, nb, u, v, count, wsum)
	}}
	if m.witness != nil {
		ld := logDegTable(g)
		k.witness = func(w graph.NodeID) float64 { return m.witness(g, ld, nb, w) }
	}
	return k
}

func (m *localMetric) Predict(g *graph.Graph, k int, opt Options) []Pair {
	if m.usesNB {
		mustFullGraph(g, m.name)
	}
	opt = resolvePartition(g, opt)
	validateOptions(opt)
	r := beginRun(m.name, opPredict)
	defer r.end()
	opt.rec = r
	// The naive Bayes statistics are built once per snapshot (snapcache) and
	// are read-only across workers and calls.
	var nb *naiveBayes
	if m.usesNB {
		nb = cachedNaiveBayes(g, opt)
	}
	kern := m.kernel(g, nb)
	if opt.ExhaustiveSweep {
		return predictFusedTwoHop(g, k, opt, kern)
	}
	return predictPruned(g, k, opt, m, nb, kern)
}

// referencePredict is the pre-fusion per-pair intersection path, kept as
// the oracle the fused Predict is property-tested against.
func (m *localMetric) referencePredict(g *graph.Graph, k int, opt Options) []Pair {
	var nb *naiveBayes
	if m.usesNB {
		nb = newNaiveBayes(g, opt)
	}
	return predictTwoHop(g, k, opt, func(u, v graph.NodeID, top *topK) {
		top.Add(u, v, m.score(g, nb, u, v, g.CommonNeighbors(u, v)))
	})
}

func (m *localMetric) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	if m.usesNB {
		mustFullGraph(g, m.name)
	}
	r := beginRun(m.name, opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	var nb *naiveBayes
	if m.usesNB {
		nb = cachedNaiveBayes(g, opt)
	}
	return scorePairsFused(g, pairs, opt, m.kernel(g, nb))
}

// referenceScorePairs is the pre-fusion per-pair batch path, kept as the
// oracle the fused ScorePairs is property-tested against.
func (m *localMetric) referenceScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	var nb *naiveBayes
	if m.usesNB {
		nb = newNaiveBayes(g, opt)
	}
	out := make([]float64, len(pairs))
	shardRange(opt, len(pairs), workerCount(opt), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			common := g.CommonNeighbors(p.U, p.V)
			if len(common) == 0 {
				continue
			}
			out[i] = m.score(g, nb, p.U, p.V, common)
		}
	})
	return out
}

// cachedNaiveBayes returns the snapshot's naive Bayes statistics, built at
// most once per snapshot and shared across calls via snapcache. The
// statistics are integer-exact and path-independent (newNaiveBayes), so
// sharing is safe at any worker count; the build strips the caller's
// context so a cancelled request can never poison the cache — the same
// discipline as the latent factor builds. This matters most under
// sharding: the prepass costs the full graph's triangle census no matter
// how narrow the shard's SourceRange is, and uncached it was the serial
// term pinning BCN/BAA/BRA to ~1.8× at 4 shards.
func cachedNaiveBayes(g *graph.Graph, opt Options) *naiveBayes {
	v, _ := snapcache.For(g).Artifact("predict/naivebayes", func() (any, error) {
		return newNaiveBayes(g, Options{Workers: opt.Workers}), nil
	})
	return v.(*naiveBayes)
}

// naiveBayes holds the per-snapshot statistics of the Local Naive Bayes
// model (Liu et al. [26]): s = |V|(|V|-1)/(2|E|) - 1 and per-node role
// ratios R_w = (N△w + 1)/(N∧w + 1), where N△w counts triangles through w
// and N∧w counts open 2-paths centered at w.
type naiveBayes struct {
	logS float64
	logR []float64
}

func newNaiveBayes(g *graph.Graph, opt Options) *naiveBayes {
	n := g.NumNodes()
	workers := workerCount(opt)
	// The triangle count is sharded by edge source; each worker accumulates
	// into a private array and the integer sums merge exactly, so the
	// statistics are independent of worker count. When one endpoint of an
	// edge is a hub (has a cached neighbor bitset), the intersection walks
	// the shorter adjacency list probing the hub's bitset — min(du,dv) bit
	// tests instead of a du+dv merge — which is where hub-hub edges, the
	// most expensive triangles in a power-law graph, collapse. Either path
	// finds the identical common-neighbor set; only integers accumulate, so
	// the statistics are exact and path-independent.
	view := snapcache.For(g).CSRView()
	partTri := make([][]int64, workers)
	shardRange(opt, n, workers, func(wk, lo, hi int) {
		tri := partTri[wk]
		if tri == nil {
			tri = make([]int64, n)
			partTri[wk] = tri
		}
		for u := lo; u < hi; u++ {
			uid := graph.NodeID(u)
			a := g.Neighbors(uid)
			for _, v := range a {
				if v <= uid {
					continue
				}
				b := g.Neighbors(v)
				short, other := a, v
				if len(b) < len(a) {
					short, other = b, uid
				}
				if hb := view.HubBits(other); hb != nil {
					for _, w := range short {
						if hb.Has(w) {
							tri[uid]++
							tri[v]++
							tri[w]++
						}
					}
					continue
				}
				// Walk the sorted intersection in place: materializing it
				// per edge would make the statistics pass the only
				// per-element allocator left on the local-metric path.
				i, j := 0, 0
				for i < len(a) && j < len(b) {
					switch {
					case a[i] < b[j]:
						i++
					case a[i] > b[j]:
						j++
					default:
						tri[uid]++
						tri[v]++
						tri[a[i]]++
						i++
						j++
					}
				}
			}
		}
	})
	tri3 := make([]int64, n) // 3x triangle count per node
	for _, part := range partTri {
		if part == nil {
			continue
		}
		for i, v := range part {
			tri3[i] += v
		}
	}
	nb := &naiveBayes{logR: make([]float64, n)}
	nodes := float64(n)
	edges := float64(g.NumEdges())
	if edges > 0 {
		s := nodes*(nodes-1)/(2*edges) - 1
		if s > 0 {
			nb.logS = math.Log(s)
		}
	}
	for w := 0; w < n; w++ {
		deg := int64(g.Degree(graph.NodeID(w)))
		triangles := tri3[w] / 3
		open := deg*(deg-1)/2 - triangles
		if open < 0 {
			open = 0
		}
		nb.logR[w] = math.Log(float64(triangles+1) / float64(open+1))
	}
	return nb
}

// The Table 3 formulations.

func scoreCN(_ *graph.Graph, _ *naiveBayes, _, _ graph.NodeID, common []graph.NodeID) float64 {
	return float64(len(common))
}

func scoreJC(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, common []graph.NodeID) float64 {
	union := g.Degree(u) + g.Degree(v) - len(common)
	if union == 0 {
		return 0
	}
	return float64(len(common)) / float64(union)
}

func scoreAA(g *graph.Graph, _ *naiveBayes, _, _ graph.NodeID, common []graph.NodeID) float64 {
	s := 0.0
	for _, w := range common {
		s += 1 / nonNegLog(float64(g.Degree(w)))
	}
	return s
}

func scoreRA(g *graph.Graph, _ *naiveBayes, _, _ graph.NodeID, common []graph.NodeID) float64 {
	s := 0.0
	for _, w := range common {
		s += 1 / float64(g.Degree(w))
	}
	return s
}

func scoreBCN(_ *graph.Graph, nb *naiveBayes, _, _ graph.NodeID, common []graph.NodeID) float64 {
	// Fold the role ratios first, then add the count term once — the same
	// association the fused kernel uses, so both paths produce bit-identical
	// floats.
	s := 0.0
	for _, w := range common {
		s += nb.logR[w]
	}
	return float64(len(common))*nb.logS + s
}

func scoreBAA(g *graph.Graph, nb *naiveBayes, _, _ graph.NodeID, common []graph.NodeID) float64 {
	s := 0.0
	for _, w := range common {
		s += (nb.logS + nb.logR[w]) / nonNegLog(float64(g.Degree(w)))
	}
	return s
}

func scoreBRA(g *graph.Graph, nb *naiveBayes, _, _ graph.NodeID, common []graph.NodeID) float64 {
	s := 0.0
	for _, w := range common {
		s += (nb.logS + nb.logR[w]) / float64(g.Degree(w))
	}
	return s
}

// The same metrics in accumulate-then-finish form for the fused kernels:
// witnesses produce the per-common-neighbor term, fuses finish a candidate.

// The log-weighted witnesses read the cached table (ld[w] is exactly
// nonNegLog(deg(w)), so the division below reproduces the reference float
// bit for bit); the rest ignore it.

func witAA(_ *graph.Graph, ld []float64, _ *naiveBayes, w graph.NodeID) float64 {
	return 1 / ld[w]
}

func witRA(g *graph.Graph, _ []float64, _ *naiveBayes, w graph.NodeID) float64 {
	return 1 / float64(g.Degree(w))
}

func witBCN(_ *graph.Graph, _ []float64, nb *naiveBayes, w graph.NodeID) float64 {
	return nb.logR[w]
}

func witBAA(_ *graph.Graph, ld []float64, nb *naiveBayes, w graph.NodeID) float64 {
	return (nb.logS + nb.logR[w]) / ld[w]
}

func witBRA(g *graph.Graph, _ []float64, nb *naiveBayes, w graph.NodeID) float64 {
	return (nb.logS + nb.logR[w]) / float64(g.Degree(w))
}

func fuseCN(_ *graph.Graph, _ *naiveBayes, _, _ graph.NodeID, count int32, _ float64) float64 {
	return float64(count)
}

func fuseJC(g *graph.Graph, _ *naiveBayes, u, v graph.NodeID, count int32, _ float64) float64 {
	union := g.Degree(u) + g.Degree(v) - int(count)
	if union == 0 {
		return 0
	}
	return float64(count) / float64(union)
}

// fuseWeight finishes the metrics whose value is exactly the accumulated
// witness sum (AA, RA, BAA, BRA).
func fuseWeight(_ *graph.Graph, _ *naiveBayes, _, _ graph.NodeID, _ int32, wsum float64) float64 {
	return wsum
}

func fuseBCN(_ *graph.Graph, nb *naiveBayes, _, _ graph.NodeID, count int32, wsum float64) float64 {
	return float64(count)*nb.logS + wsum
}

// Per-witness bound terms for the additive score upper bounds (prune.go).
// AA, RA, BAA and BRA bound by their witness functions directly; CN's term
// is the unit count and BCN's folds the count term into each witness
// (score = Σ_{w∈common} (logS + logR[w])), which its witness alone omits.

func termOne(_ *graph.Graph, _ []float64, _ *naiveBayes, _ graph.NodeID) float64 {
	return 1
}

func termBCN(_ *graph.Graph, _ []float64, nb *naiveBayes, w graph.NodeID) float64 {
	return nb.logS + nb.logR[w]
}

// The exported local algorithms.

// CN is Common Neighbors [Newman 2001].
var CN Algorithm = &localMetric{name: "CN", score: scoreCN, fuse: fuseCN, boundTerm: termOne}

// JC is Jaccard's Coefficient.
var JC Algorithm = &localMetric{name: "JC", score: scoreJC, fuse: fuseJC, boundKind: boundUnit}

// AA is the Adamic/Adar index.
var AA Algorithm = &localMetric{name: "AA", score: scoreAA, witness: witAA, fuse: fuseWeight, boundTerm: witAA}

// RA is the Resource Allocation index [Zhou et al. 2009].
var RA Algorithm = &localMetric{name: "RA", score: scoreRA, witness: witRA, fuse: fuseWeight, boundTerm: witRA}

// BCN is Local Naive Bayes Common Neighbors [Liu et al. 2011].
var BCN Algorithm = &localMetric{name: "BCN", score: scoreBCN, usesNB: true, witness: witBCN, fuse: fuseBCN, boundTerm: termBCN}

// BAA is Local Naive Bayes Adamic/Adar.
var BAA Algorithm = &localMetric{name: "BAA", score: scoreBAA, usesNB: true, witness: witBAA, fuse: fuseWeight, boundTerm: witBAA}

// BRA is Local Naive Bayes Resource Allocation.
var BRA Algorithm = &localMetric{name: "BRA", score: scoreBRA, usesNB: true, witness: witBRA, fuse: fuseWeight, boundTerm: witBRA}

package predict

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"

	"linkpred/internal/graph"
	"linkpred/internal/par"
	"linkpred/internal/snapcache"
)

// This file is the shared parallel scoring engine. Every algorithm routes
// its Predict sweep and its ScorePairs batch through the helpers here, which
// shard work across Options.Workers goroutines while guaranteeing output
// bit-identical to a serial run:
//
//   - Predict sweeps give each worker a private stamp array and a private
//     bounded top-k; the per-worker selections are merged through the same
//     splitmix64 tie-hash the serial selector uses, so the merged set is
//     exactly the set a single worker would have kept, independent of worker
//     count, chunk assignment, and merge order.
//   - ScorePairs batches are index-sliced: each worker writes disjoint
//     output positions, computed from read-only per-snapshot state, so
//     output order and values are trivially preserved.

// workerCount resolves Options.Workers: values <= 0 mean one worker per
// available CPU.
func workerCount(opt Options) int {
	if opt.Workers > 0 {
		return opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// shardMin is the range size below which goroutine fan-out costs more than
// the sweep itself; smaller ranges run on the calling goroutine.
const shardMin = par.ShardMin

// shardRange fans [0, n) out over workers goroutines with dynamic chunk
// claiming; it wraps par.ShardRangeCtx, which also drives the linalg
// backend so both layers share one chunk-accounting telemetry stream. The
// call's Options carry the cancellation context: a cancelled opt.Ctx stops
// the fan-out within one chunk claim per worker, after which the enclosing
// Predict/ScorePairs returns partial data its caller must discard.
func shardRange(opt Options, n, workers int, body func(worker, lo, hi int)) {
	par.ShardRangeCtx(opt.Ctx, n, workers, par.ShardMin, body)
}

// mergeTopK folds per-worker selections into one selector. Entries carry
// their original tie-hash, so the merged selection equals the serial one
// regardless of how candidates were distributed across parts.
func mergeTopK(k int, seed int64, parts []*topK) *topK {
	var only *topK
	live := 0
	for _, p := range parts {
		if p != nil {
			only = p
			live++
		}
	}
	if live == 1 {
		return only
	}
	merged := newTopK(k, seed)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for i := range p.pairs {
			merged.add(p.pairs[i], p.ties[i])
		}
	}
	return merged
}

// newStamp returns a stamp array initialized to "never visited".
func newStamp(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// twoHopRange enumerates every unconnected pair (u, v) with u < v at
// distance exactly two and u in [lo, hi), calling emit once per pair. The
// caller-owned stamp array keeps the sweep allocation-free across nodes; it
// must have been produced by newStamp and may be reused across ranges as
// long as no two concurrent sweeps share it.
func twoHopRange(g *graph.Graph, lo, hi int, stamp []int32, emit func(u, v graph.NodeID)) {
	for u := lo; u < hi; u++ {
		uid := graph.NodeID(u)
		// Mark direct neighbors so they are excluded.
		for _, w := range g.Neighbors(uid) {
			stamp[w] = int32(u)
		}
		stamp[u] = int32(u)
		for _, w := range g.Neighbors(uid) {
			for _, v := range g.Neighbors(w) {
				if v <= uid || stamp[v] == int32(u) {
					continue
				}
				stamp[v] = int32(u)
				emit(uid, v)
			}
		}
	}
}

// twoHopPairs is the serial full-graph sweep, kept for candidate-set
// enumeration call sites that need a single deterministic emission order.
func twoHopPairs(g *graph.Graph, emit func(u, v graph.NodeID)) {
	n := g.NumNodes()
	twoHopRange(g, 0, n, newStamp(n), emit)
}

// twoHopParts runs the sharded 2-hop candidate sweep over the call's source
// span (Options.SourceRange, full graph when unset): each worker owns a
// stamp array and a bounded top-k, and visit scores one candidate pair into
// the worker's selection. The returned parts merge via mergeTopK.
func twoHopParts(g *graph.Graph, k int, opt Options, visit func(u, v graph.NodeID, top *topK)) []*topK {
	n := g.NumNodes()
	base, end := opt.sourceSpan(n)
	workers := workerCount(opt)
	parts := make([]*topK, workers)
	stamps := make([][]int32, workers)
	shardRange(opt, end-base, workers, func(w, lo, hi int) {
		if parts[w] == nil {
			parts[w] = newTopKRec(k, opt)
			stamps[w] = newStamp(n)
		}
		opt.rec.addNodes(int64(hi - lo))
		top := parts[w]
		twoHopRange(g, base+lo, base+hi, stamps[w], func(u, v graph.NodeID) { visit(u, v, top) })
	})
	return parts
}

// predictTwoHop is the full sharded 2-hop Predict path: sweep, merge, sort.
func predictTwoHop(g *graph.Graph, k int, opt Options, visit func(u, v graph.NodeID, top *topK)) []Pair {
	return mergeTopK(k, opt.Seed, twoHopParts(g, k, opt, visit)).Result()
}

// predictFusedTwoHop is the kernel fast path of predictTwoHop: identical
// sharding, candidate set, telemetry (nodes_swept, and pairs_scored via the
// per-worker selectors), and merge contract, but scoring accumulates inside
// the wedge sweep through kern instead of intersecting adjacency lists per
// pair. The visit-callback path above stays as the reference implementation
// the fused kernels are property-tested against (TestFusedKernels*).
func predictFusedTwoHop(g *graph.Graph, k int, opt Options, kern sweepKernel) []Pair {
	n := g.NumNodes()
	base, end := opt.sourceSpan(n)
	workers := par.LimitWorkers(workerCount(opt), wedgeWork(g), minSweepWork)
	parts := make([]*topK, workers)
	scratch := make([]*sweepScratch, workers)
	shardRange(opt, end-base, workers, func(w, lo, hi int) {
		if parts[w] == nil {
			parts[w] = newTopKRec(k, opt)
			scratch[w] = newSweepScratch(n)
		}
		opt.rec.addNodes(int64(hi - lo))
		top, s := parts[w], scratch[w]
		for u := base + lo; u < base+hi; u++ {
			uid := graph.NodeID(u)
			s.sweepCandidates(g, uid, kern.witness)
			for _, v := range s.cands {
				top.Add(uid, v, kern.finish(uid, v, s.count[v], s.weight[v]))
			}
		}
	})
	return mergeTopK(k, opt.Seed, parts).Result()
}

// scorePairsFused is the kernel batch path: queries grouped by source via
// sourceSortedIndex share one unrestricted sweep per distinct source within
// a chunk, and each query is answered by an O(1) lookup into the worker's
// accumulators. A chunk boundary splitting a group only costs one extra
// sweep; per-query results are unchanged.
//
// Hub fast path: when the group's source has a cached neighbor bitset
// (csr.View via snapcache) and the group's targets are collectively cheaper
// to probe than the source is to sweep, each query (u, v) walks N(v)
// testing membership in u's bitset instead. Witnesses still arrive in
// ascending ID order — N(v) is sorted — so the accumulated floats are
// bit-identical to the sweep's; the path choice is a deterministic function
// of the graph and the batch, and either path computes the same set, so
// output never depends on which one ran.
func scorePairsFused(g *graph.Graph, pairs []Pair, opt Options, kern sweepKernel) []float64 {
	out := make([]float64, len(pairs))
	if len(pairs) == 0 {
		return out
	}
	// On a partitioned snapshot the sweep source must be the pair's min
	// endpoint: its row is complete (ownership is required below), and every
	// frontier row it intersects keeps all entries >= τ_w <= min endpoint,
	// so the accumulated count/weight match the full snapshot's exactly. All
	// partition-safe metrics are symmetric in (u, v), so sweeping from
	// whichever endpoint is canonical never changes the finished score.
	part := g.Partition()
	key := func(p Pair) graph.NodeID { return p.U }
	if part != nil {
		key = func(p Pair) graph.NodeID { return minID(p.U, p.V) }
		for _, p := range pairs {
			if !part.Owns(minID(p.U, p.V)) {
				panic(fmt.Sprintf("predict: ScorePairs pair (%d, %d) not owned by partitioned snapshot range [%d, %d)",
					p.U, p.V, part.Lo, part.Hi))
			}
		}
	}
	idx := sourceSortedIndex(pairs, key)
	n := g.NumNodes()
	view := snapcache.For(g).CSRView()
	avgWedge := int64(1)
	if n > 0 {
		avgWedge += wedgeWork(g) / int64(n)
	}
	workers := par.LimitWorkers(workerCount(opt), int64(len(pairs))*avgWedge, minSweepWork)
	scratch := make([]*sweepScratch, workers)
	shardRange(opt, len(idx), workers, func(wk, lo, hi int) {
		if scratch[wk] == nil {
			scratch[wk] = newSweepScratch(n)
		}
		s := scratch[wk]
		for gi := lo; gi < hi; {
			u := key(pairs[idx[gi]])
			ge := gi + 1
			for ge < hi && key(pairs[idx[ge]]) == u {
				ge++
			}
			if b := view.HubBits(u); part == nil && b != nil && probeCheaper(g, u, pairs, idx[gi:ge]) {
				for _, i := range idx[gi:ge] {
					p := pairs[i]
					var c int32
					var ws float64
					if kern.witness == nil {
						for _, w := range g.Neighbors(p.V) {
							if b.Has(w) {
								c++
							}
						}
					} else {
						for _, w := range g.Neighbors(p.V) {
							if b.Has(w) {
								c++
								ws += kern.witness(w)
							}
						}
					}
					if c != 0 {
						out[i] = kern.finish(p.U, p.V, c, ws)
					}
				}
				gi = ge
				continue
			}
			s.sweepAll(g, u, kern.witness)
			for _, i := range idx[gi:ge] {
				p := pairs[i]
				o := p.V
				if o == u {
					o = p.U
				}
				if c := s.count[o]; c != 0 {
					out[i] = kern.finish(p.U, p.V, c, s.weight[o])
				}
			}
			gi = ge
		}
	})
	return out
}

// probeCheaper estimates whether answering a source group by per-target
// bitset probes (Σ deg(v) bit tests) beats one shared wedge sweep
// (Σ_{w∈N(u)} deg(w) visits). Both sides are exact integer functions of the
// graph and the group, so the decision is deterministic.
func probeCheaper(g *graph.Graph, u graph.NodeID, pairs []Pair, group []int) bool {
	probe := int64(0)
	for _, i := range group {
		probe += int64(g.Degree(pairs[i].V))
	}
	sweep := int64(0)
	for _, w := range g.Neighbors(u) {
		sweep += int64(g.Degree(w))
		if sweep > probe {
			return true
		}
	}
	return false
}

// sourceSortedIndex returns pair indices sorted by the node that key
// extracts, grouping same-source queries so per-source scratch (BFS
// frontiers, walk distributions, push residuals) is built once per distinct
// source within a chunk. A chunk boundary splitting a group only costs one
// extra rebuild; the per-query results are unchanged.
func sourceSortedIndex(pairs []Pair, key func(Pair) graph.NodeID) []int {
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int { return cmp.Compare(key(pairs[a]), key(pairs[b])) })
	return idx
}

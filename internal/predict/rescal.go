package predict

import (
	"fmt"
	"math/rand"

	"linkpred/internal/graph"
	"linkpred/internal/linalg"
)

// rescalAlgorithm factorizes the adjacency matrix as A ≈ X R Xᵀ (Nickel et
// al. [33], restricted to the single "friendship" relation) with ridge-
// regularized alternating least squares, and scores
//
//	score(u,v) = (X R Xᵀ)_{uv} + (X R Xᵀ)_{vu}.
//
// The latent space concentrates weight on structurally central nodes, which
// is why Rescal excels on the supernode-driven YouTube-style network (§4.2).
type rescalAlgorithm struct{}

// Rescal is the tensor-factorization algorithm.
var Rescal Algorithm = rescalAlgorithm{}

func (rescalAlgorithm) Name() string { return "Rescal" }

// rescalFactors runs ALS and returns XR = X·R and XRt = X·Rᵀ along with X;
// score(u,v) = XR_u · X_v + XRt_v · X_u... equivalently XR_u·X_v + XR_v·X_u.
// The factors are cached per snapshot under the full parameter set, so
// Predict and ScorePairs against the same cut share one ALS run.
func rescalFactors(g *graph.Graph, opt Options) (xr, x *linalg.Dense) {
	n := g.NumNodes()
	rank := opt.RescalRank
	if rank <= 0 {
		rank = 16
	}
	if rank > n {
		rank = n
	}
	// A few ALS sweeps from the spectral start refine R and X without
	// drifting away from the dominant-direction anchor (longer refinement
	// can slide into a community-level fit that zeroes the supernode
	// signal on subscription networks).
	iters := opt.RescalIters
	if iters <= 0 {
		iters = 4
	}
	lambda := opt.RescalLambda
	if lambda <= 0 {
		lambda = 10
	}
	key := fmt.Sprintf("predict/rescal/r=%d,it=%d,lambda=%v,seed=%d", rank, iters, lambda, opt.Seed)
	return factorPair(g, key, func() (*linalg.Dense, *linalg.Dense) {
		return buildRescalFactors(g, opt, n, rank, iters, lambda)
	})
}

func buildRescalFactors(g *graph.Graph, opt Options, n, rank, iters int, lambda float64) (xr, x *linalg.Dense) {
	a := snapCSR(g)
	workers := workerCount(opt)
	// Spectral initialization: start X at the dominant eigenvectors of A
	// (perturbed slightly to break symmetric ALS stationary points). This
	// keeps ALS deterministic and anchored to the graph's strongest latent
	// directions — on supernode-driven networks those are the supernode
	// axes, which is the structure the paper credits for Rescal's YouTube
	// performance (§4.2).
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x7e5ca1))
	_, vecs := a.TopEig(rank, 30, opt.Seed^0x7e5ca1, workers)
	x = vecs.Clone()
	for i := range x.Data {
		x.Data[i] += rng.NormFloat64() * 1e-3
	}
	r := linalg.NewDense(rank, rank)
	ax := linalg.NewDense(n, rank)
	for it := 0; it < iters; it++ {
		// R update: R = (XᵀX + λI)⁻¹ XᵀAX (XᵀX + λI)⁻¹.
		xtx := x.T().MatMul(x, workers)
		xtx.AddDiag(lambda)
		a.MulDense(x, ax, workers)
		xtax := x.T().MatMul(ax, workers)
		tmp := linalg.CholSolve(xtx, xtax)     // (XᵀX+λI)⁻¹ XᵀAX
		r = linalg.CholSolve(xtx, tmp.T()).T() // ... (XᵀX+λI)⁻¹, using symmetry
		// X update: X = [AX(R + Rᵀ)] [R C Rᵀ + Rᵀ C R + λI]⁻¹ with C = XᵀX.
		c := x.T().MatMul(x, workers)
		rcrt := linalg.MatMul(linalg.MatMul(r, c), r.T())
		rtcr := linalg.MatMul(linalg.MatMul(r.T(), c), r)
		s := linalg.NewDense(rank, rank)
		for i := range s.Data {
			s.Data[i] = rcrt.Data[i] + rtcr.Data[i]
		}
		s.AddDiag(lambda)
		rrt := linalg.NewDense(rank, rank)
		for i := 0; i < rank; i++ {
			for j := 0; j < rank; j++ {
				rrt.Set(i, j, r.At(i, j)+r.At(j, i))
			}
		}
		a.MulDense(x, ax, workers)
		b := ax.MatMul(rrt, workers)
		x = linalg.CholSolve(s, b.T()).T()
	}
	return x.MatMul(r, workers), x
}

// rescalScore is XR_u · X_v + XR_v · X_u.
func rescalScore(xr, x *linalg.Dense, u, v graph.NodeID) float64 {
	return linalg.Dot(xr.Row(int(u)), x.Row(int(v))) + linalg.Dot(xr.Row(int(v)), x.Row(int(u)))
}

func (rescalAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "Rescal")
	validateOptions(opt)
	r := beginRun("Rescal", opPredict)
	defer r.end()
	opt.rec = r
	// ALS runs once (parallel, cached per snapshot); the factors are
	// read-only across workers.
	xr, x := rescalFactors(g, opt)
	return predictGlobal(g, k, opt, func(u, v graph.NodeID) float64 {
		return rescalScore(xr, x, u, v)
	})
}

func (rescalAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "Rescal")
	r := beginRun("Rescal", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	xr, x := rescalFactors(g, opt)
	out := make([]float64, len(pairs))
	shardRange(opt, len(pairs), workerCount(opt), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			p := pairs[i]
			out[i] = rescalScore(xr, x, p.U, p.V)
		}
	})
	return out
}

package predict

import "linkpred/internal/graph"

// This file implements the fused neighborhood-sweep kernels behind the
// local metric family (CN, JC, AA, RA, the naive Bayes variants and the
// survey extensions). The per-pair reference path — intersect two sorted
// adjacency lists, then fold the common-neighbor slice — allocates a fresh
// intersection per candidate and re-walks both adjacency lists even though
// the enclosing 2-hop sweep already visits every (source, witness,
// candidate) wedge. The fused path instead accumulates, per candidate v of
// a source u, the common-neighbor count and the witness-weight sum *during*
// the wedge enumeration w ∈ N(u), v ∈ N(w): a witness w contributes exactly
// once per candidate it certifies, and adjacency lists are sorted, so
// witnesses arrive in ascending order and the accumulated float sums are
// bit-identical to the reference fold over the sorted intersection.
//
// All per-source state lives in a sweepScratch allocated once per worker
// and reused across sources, so steady-state sweeps perform zero
// allocations (TestFusedPredictAllocs pins this).

// sweepKernel is one local metric expressed in accumulate-then-finish form.
type sweepKernel struct {
	// witness returns the weight a common neighbor w contributes to every
	// candidate it certifies (1/log deg(w) for AA, 1/deg(w) for RA, naive
	// Bayes log-ratios for the B* family). nil means the metric needs only
	// the common-neighbor count and the weight accumulation is skipped.
	witness func(w graph.NodeID) float64
	// finish folds one candidate's accumulated state into the metric value.
	// count is |Γ(u) ∩ Γ(v)| > 0 and wsum the witness-weight sum; both
	// match the reference fold bit for bit.
	finish func(u, v graph.NodeID, count int32, wsum float64) float64
}

// sweepScratch is one worker's reusable accumulation state. mark carries
// the per-source exclusion stamp (same discipline as twoHopRange); count
// and weight are dense per-candidate accumulators, valid only for the
// indices listed in cands and cleared by walking cands, so resetting costs
// O(touched), never O(n).
type sweepScratch struct {
	mark   []int32
	count  []int32
	weight []float64
	cands  []graph.NodeID
}

func newSweepScratch(n int) *sweepScratch {
	return &sweepScratch{
		mark:   newStamp(n),
		count:  make([]int32, n),
		weight: make([]float64, n),
		cands:  make([]graph.NodeID, 0, n),
	}
}

// begin clears the previous source's accumulators.
func (s *sweepScratch) begin() {
	for _, v := range s.cands {
		s.count[v] = 0
		s.weight[v] = 0
	}
	s.cands = s.cands[:0]
}

// sweepCandidates accumulates over the Predict candidate set of source u:
// unconnected pairs (u, v) with v > u at distance exactly two. After the
// call, cands lists the candidates in first-visit order — exactly the order
// twoHopRange emits them — and count/weight hold their accumulated state.
func (s *sweepScratch) sweepCandidates(g *graph.Graph, u graph.NodeID, witness func(graph.NodeID) float64) {
	s.begin()
	st := int32(u)
	nu := g.Neighbors(u)
	for _, w := range nu {
		s.mark[w] = st
	}
	s.mark[u] = st
	count, weight := s.count, s.weight
	if witness == nil {
		for _, w := range nu {
			for _, v := range g.Neighbors(w) {
				if v <= u || s.mark[v] == st {
					continue
				}
				if count[v] == 0 {
					s.cands = append(s.cands, v)
				}
				count[v]++
			}
		}
		return
	}
	for _, w := range nu {
		wf := witness(w)
		for _, v := range g.Neighbors(w) {
			if v <= u || s.mark[v] == st {
				continue
			}
			if count[v] == 0 {
				s.cands = append(s.cands, v)
			}
			count[v]++
			weight[v] += wf
		}
	}
}

// sweepAll accumulates over every 2-hop-reachable node from u with no
// exclusions — batch scoring must handle connected and non-canonical
// (V < U) queries exactly like the reference, which intersects adjacency
// lists unconditionally. Nodes the sweep never touches keep count 0,
// matching the reference's empty-intersection guard.
func (s *sweepScratch) sweepAll(g *graph.Graph, u graph.NodeID, witness func(graph.NodeID) float64) {
	s.begin()
	count, weight := s.count, s.weight
	if witness == nil {
		for _, w := range g.Neighbors(u) {
			for _, v := range g.Neighbors(w) {
				if count[v] == 0 {
					s.cands = append(s.cands, v)
				}
				count[v]++
			}
		}
		return
	}
	for _, w := range g.Neighbors(u) {
		wf := witness(w)
		for _, v := range g.Neighbors(w) {
			if count[v] == 0 {
				s.cands = append(s.cands, v)
			}
			count[v]++
			weight[v] += wf
		}
	}
}

package predict

import (
	"sort"

	"linkpred/internal/graph"
)

// katzExactT is the truncated-exact Katz variant: the series Σ βˡ (Aˡ)_{uv}
// computed exactly up to l = KatzMaxLen by per-source sparse propagation.
// With the paper's β = 0.001 the truncated tail is negligible, so this is
// effectively exact Katz — the reference the approximations are benchmarked
// against in BenchmarkAblationKatzVariants. It is not one of the paper's
// implementations (they could not afford exact Katz at their scale; §3.2's
// footnote reports 27 days for a single Renren snapshot), which is exactly
// why having it at our scale is useful for validating Katz_lr and Katz_sc.
type katzExactT struct{}

// KatzExact is the truncated-exact Katz comparator.
var KatzExact Algorithm = katzExactT{}

func (katzExactT) Name() string { return "KatzExact" }

// katzVector accumulates Σ_{l=1..maxLen} βˡ Aˡ e_u into acc.
func katzVector(g *graph.Graph, u graph.NodeID, beta float64, maxLen int, cur, next, acc *sparseVec) {
	cur.reset()
	acc.reset()
	cur.add(u, 1)
	weight := beta
	for step := 0; step < maxLen; step++ {
		next.reset()
		propagate(g, cur, next)
		for _, v := range next.touched {
			acc.add(v, weight*next.val[v])
		}
		cur, next = next, cur
		weight *= beta
	}
}

func katzLen(opt Options) int {
	if opt.KatzMaxLen <= 0 {
		return 4
	}
	return opt.KatzMaxLen
}

func (katzExactT) Predict(g *graph.Graph, k int, opt Options) []Pair {
	validateOptions(opt)
	n := g.NumNodes()
	top := newTopK(k, opt.Seed)
	cur, next, acc := newSparseVec(n), newSparseVec(n), newSparseVec(n)
	maxLen := katzLen(opt)
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		if g.Degree(uid) == 0 {
			continue
		}
		katzVector(g, uid, opt.KatzBeta, maxLen, cur, next, acc)
		for _, v := range acc.touched {
			if v <= uid || g.HasEdge(uid, v) {
				continue
			}
			top.Add(uid, v, acc.val[v])
		}
	}
	return top.Result()
}

func (katzExactT) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	n := g.NumNodes()
	out := make([]float64, len(pairs))
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pairs[idx[a]].U < pairs[idx[b]].U })
	cur, next, acc := newSparseVec(n), newSparseVec(n), newSparseVec(n)
	maxLen := katzLen(opt)
	curU := graph.NodeID(-1)
	for _, i := range idx {
		p := pairs[i]
		if p.U != curU {
			curU = p.U
			katzVector(g, curU, opt.KatzBeta, maxLen, cur, next, acc)
		}
		out[i] = acc.val[p.V]
	}
	return out
}

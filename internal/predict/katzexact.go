package predict

import (
	"linkpred/internal/graph"
)

// katzExactT is the truncated-exact Katz variant: the series Σ βˡ (Aˡ)_{uv}
// computed exactly up to l = KatzMaxLen by per-source sparse propagation.
// With the paper's β = 0.001 the truncated tail is negligible, so this is
// effectively exact Katz — the reference the approximations are benchmarked
// against in BenchmarkAblationKatzVariants. It is not one of the paper's
// implementations (they could not afford exact Katz at their scale; §3.2's
// footnote reports 27 days for a single Renren snapshot), which is exactly
// why having it at our scale is useful for validating Katz_lr and Katz_sc.
type katzExactT struct{}

// KatzExact is the truncated-exact Katz comparator.
var KatzExact Algorithm = katzExactT{}

func (katzExactT) Name() string { return "KatzExact" }

// katzScratch is one worker's propagation state for truncated Katz columns.
type katzScratch struct {
	cur, next, acc *sparseVec
}

func newKatzScratch(n int) *katzScratch {
	return &katzScratch{cur: newSparseVec(n), next: newSparseVec(n), acc: newSparseVec(n)}
}

// katzVector accumulates Σ_{l=1..maxLen} βˡ Aˡ e_u into s.acc.
func katzVector(g *graph.Graph, u graph.NodeID, beta float64, maxLen int, s *katzScratch) {
	cur, next, acc := s.cur, s.next, s.acc
	cur.reset()
	acc.reset()
	cur.add(u, 1)
	weight := beta
	for step := 0; step < maxLen; step++ {
		next.reset()
		propagate(g, cur, next)
		for _, v := range next.touched {
			acc.add(v, weight*next.val[v])
		}
		cur, next = next, cur
		weight *= beta
	}
	s.cur, s.next = cur, next
}

func katzLen(opt Options) int {
	if opt.KatzMaxLen <= 0 {
		return 4
	}
	return opt.KatzMaxLen
}

func (katzExactT) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "KatzExact")
	validateOptions(opt)
	r := beginRun("KatzExact", opPredict)
	defer r.end()
	opt.rec = r
	n := g.NumNodes()
	base, end := opt.sourceSpan(n)
	maxLen := katzLen(opt)
	workers := workerCount(opt)
	parts := make([]*topK, workers)
	scratch := make([]*katzScratch, workers)
	shardRange(opt, end-base, workers, func(wk, lo, hi int) {
		if parts[wk] == nil {
			parts[wk] = newTopKRec(k, opt)
			scratch[wk] = newKatzScratch(n)
		}
		opt.rec.addNodes(int64(hi - lo))
		top, s := parts[wk], scratch[wk]
		for u := base + lo; u < base+hi; u++ {
			uid := graph.NodeID(u)
			if g.Degree(uid) == 0 {
				continue
			}
			katzVector(g, uid, opt.KatzBeta, maxLen, s)
			for _, v := range s.acc.touched {
				if v <= uid || g.HasEdge(uid, v) {
					continue
				}
				top.Add(uid, v, s.acc.val[v])
			}
		}
	})
	return mergeTopK(k, opt.Seed, parts).Result()
}

func (katzExactT) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "KatzExact")
	r := beginRun("KatzExact", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	n := g.NumNodes()
	out := make([]float64, len(pairs))
	idx := sourceSortedIndex(pairs, func(p Pair) graph.NodeID { return p.U })
	maxLen := katzLen(opt)
	workers := workerCount(opt)
	scratch := make([]*katzScratch, workers)
	shardRange(opt, len(idx), workers, func(wk, lo, hi int) {
		if scratch[wk] == nil {
			scratch[wk] = newKatzScratch(n)
		}
		s := scratch[wk]
		curU := graph.NodeID(-1)
		first := true
		for _, i := range idx[lo:hi] {
			p := pairs[i]
			if p.U != curU || first {
				curU = p.U
				first = false
				katzVector(g, curU, opt.KatzBeta, maxLen, s)
			}
			out[i] = s.acc.val[p.V]
		}
	})
	return out
}

package predict

import (
	"fmt"
	"reflect"
	"testing"

	"linkpred/internal/obs"
)

// withTelemetry runs body with obs collection enabled on a clean slate and
// restores the disabled default afterwards. The predict tests never run in
// parallel, so toggling the package-global state is safe.
func withTelemetry(t *testing.T, body func()) {
	t.Helper()
	obs.Reset()
	obs.Enable(true)
	defer func() {
		obs.Enable(false)
		obs.Reset()
	}()
	body()
}

// registryAlgorithms is every registered entry point: the paper set, the
// similarity-metric extensions, and the comparators.
func registryAlgorithms() []Algorithm {
	var algs []Algorithm
	algs = append(algs, All()...)
	algs = append(algs, Extensions()...)
	algs = append(algs, Comparators()...)
	return algs
}

// TestEveryAlgorithmEmitsTelemetry drives one instrumented Predict and
// ScorePairs through every registered algorithm and asserts each emitted
// its latency histograms and pairs-scored counter. This is the registry
// guard: a new algorithm whose entry points skip beginRun fails here.
func TestEveryAlgorithmEmitsTelemetry(t *testing.T) {
	g := randomGraph(7, 300, 1400)
	pairs := []Pair{{U: 1, V: 2}, {U: 3, V: 4}, {U: 5, V: 6}}
	withTelemetry(t, func() {
		for _, alg := range registryAlgorithms() {
			if got := alg.Predict(g, 25, DefaultOptions()); len(got) == 0 {
				t.Fatalf("%s: Predict returned nothing", alg.Name())
			}
			alg.ScorePairs(g, pairs, DefaultOptions())
		}
		for _, alg := range registryAlgorithms() {
			name := alg.Name()
			for _, op := range []string{"predict_ns", "score_pairs_ns"} {
				key := fmt.Sprintf("predict/%s/%s", name, op)
				h, ok := obs.LookupHistogram(key)
				if !ok {
					t.Errorf("%s: histogram %q missing", name, key)
					continue
				}
				if h.Count() < 1 {
					t.Errorf("%s: histogram %q has no observations", name, key)
				}
			}
			key := "predict/" + name + "/pairs_scored"
			c, ok := obs.LookupCounter(key)
			if !ok {
				t.Errorf("%s: counter %q missing", name, key)
				continue
			}
			// Predict counts candidate pairs through the top-k selectors and
			// ScorePairs adds len(pairs); both ran, so strictly positive.
			if c.Value() < int64(len(pairs)) {
				t.Errorf("%s: pairs_scored = %d, want >= %d", name, c.Value(), len(pairs))
			}
		}
	})
}

// TestTelemetryPreservesDeterminism asserts the bit-identical contract is
// unaffected by collection: Predict and ScorePairs output with telemetry
// enabled (at 1 and 4 workers) must equal the disabled baseline exactly.
func TestTelemetryPreservesDeterminism(t *testing.T) {
	g := randomGraph(3, 220, 900)
	pairs := []Pair{{U: 0, V: 9}, {U: 10, V: 41}, {U: 7, V: 100}}
	for _, alg := range []Algorithm{CN, RA, PA, LP, KatzLR, PPR, Rescal} {
		opt := DefaultOptions()
		opt.Workers = 1
		basePred := alg.Predict(g, 40, opt)
		baseScores := alg.ScorePairs(g, pairs, opt)
		withTelemetry(t, func() {
			for _, workers := range []int{1, 4} {
				o := DefaultOptions()
				o.Workers = workers
				if got := alg.Predict(g, 40, o); !reflect.DeepEqual(got, basePred) {
					t.Errorf("%s: Predict with telemetry at %d workers diverged from baseline", alg.Name(), workers)
				}
				if got := alg.ScorePairs(g, pairs, o); !reflect.DeepEqual(got, baseScores) {
					t.Errorf("%s: ScorePairs with telemetry at %d workers diverged from baseline", alg.Name(), workers)
				}
			}
		})
	}
}

// TestEngineRecordsChunkClaims asserts the parallel engine's dynamic chunk
// accounting reaches the obs layer: a multi-worker Predict over a graph
// large enough to shard must record chunk claims and a fanout.
func TestEngineRecordsChunkClaims(t *testing.T) {
	g := randomGraph(11, 1200, 6000)
	withTelemetry(t, func() {
		opt := DefaultOptions()
		opt.Workers = 4
		CN.Predict(g, 50, opt)
		c, ok := obs.LookupCounter("engine/chunks_claimed")
		if !ok || c.Value() == 0 {
			t.Fatalf("engine/chunks_claimed not recorded (ok=%v)", ok)
		}
		f, ok := obs.LookupCounter("engine/shard_fanouts")
		if !ok || f.Value() == 0 {
			t.Fatalf("engine/shard_fanouts not recorded (ok=%v)", ok)
		}
		var claims int64
		for _, v := range obs.Snapshot().WorkerChunkClaims {
			claims += v
		}
		if claims != c.Value() {
			t.Fatalf("per-worker chunk claims sum %d != chunks_claimed %d", claims, c.Value())
		}
	})
}

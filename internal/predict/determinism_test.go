package predict

import (
	"runtime"
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/linalg"
)

// The parallel engine's contract is that Predict and ScorePairs are
// bit-identical for every worker count (Yang et al. 2015 stress that
// ranking-based evaluation is only trustworthy when tie-handling is
// reproducible). These tests assert that contract for every registered
// algorithm — the evaluated set, the survey extensions, and the comparators
// — on small Facebook and YouTube preset snapshots.

// detSnapshot generates a small preset snapshot for cross-worker-count
// comparisons.
func detSnapshot(t testing.TB, cfg gen.Config) *graph.Graph {
	t.Helper()
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	return tr.SnapshotAtEdge(cuts[len(cuts)-2].EdgeCount)
}

func detGraphs(t testing.TB) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"facebook": detSnapshot(t, gen.Facebook(1).Scaled(0.1)),
		"youtube":  detSnapshot(t, gen.YouTube(2).Scaled(0.1)),
	}
}

// detWorkerCounts are the engine configurations compared: serial, a fixed
// multi-worker count, and whatever the host offers.
func detWorkerCounts() []int {
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	return counts
}

func detAlgorithms() []Algorithm {
	algs := append([]Algorithm{}, All()...)
	algs = append(algs, Extensions()...)
	algs = append(algs, Comparators()...)
	return algs
}

// TestPredictWorkerInvariance asserts Predict output is bit-identical at
// every worker count: same pairs, same order, same float scores.
func TestPredictWorkerInvariance(t *testing.T) {
	counts := detWorkerCounts()
	for name, g := range detGraphs(t) {
		for _, alg := range detAlgorithms() {
			opt := DefaultOptions()
			opt.RandomCandidates = 2000
			opt.Workers = counts[0]
			ref := alg.Predict(g, 60, opt)
			if len(ref) == 0 {
				t.Errorf("%s/%s: no predictions", name, alg.Name())
				continue
			}
			for _, w := range counts[1:] {
				opt.Workers = w
				got := alg.Predict(g, 60, opt)
				if len(got) != len(ref) {
					t.Errorf("%s/%s: workers=%d returned %d pairs, workers=%d returned %d",
						name, alg.Name(), w, len(got), counts[0], len(ref))
					continue
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Errorf("%s/%s: workers=%d rank %d = %+v, workers=%d = %+v",
							name, alg.Name(), w, i, got[i], counts[0], ref[i])
						break
					}
				}
			}
		}
	}
}

// TestScorePairsWorkerInvariance asserts batch scoring is bit-identical at
// every worker count over a mixed candidate sample (2-hop pairs plus distant
// pairs, in deliberately unsorted order).
func TestScorePairsWorkerInvariance(t *testing.T) {
	counts := detWorkerCounts()
	for name, g := range detGraphs(t) {
		var pairs []Pair
		twoHopPairs(g, func(u, v graph.NodeID) {
			if len(pairs) < 600 {
				pairs = append(pairs, Pair{U: u, V: v})
			}
		})
		// Interleave some arbitrary (possibly distant or connected) pairs and
		// break the sorted-by-U order the sweep produced.
		n := graph.NodeID(g.NumNodes())
		for i := graph.NodeID(0); i < 50 && i+7 < n; i++ {
			pairs = append(pairs, Pair{U: n - i - 1, V: (i * 13) % (n - i - 1)})
		}
		for i, j := 0, len(pairs)-1; i < j; i, j = i+2, j-3 {
			pairs[i], pairs[j] = pairs[j], pairs[i]
		}
		for _, alg := range detAlgorithms() {
			opt := DefaultOptions()
			opt.Workers = counts[0]
			ref := alg.ScorePairs(g, pairs, opt)
			for _, w := range counts[1:] {
				opt.Workers = w
				got := alg.ScorePairs(g, pairs, opt)
				if len(got) != len(ref) {
					t.Fatalf("%s/%s: length mismatch", name, alg.Name())
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Errorf("%s/%s: workers=%d score[%d] = %v, workers=%d = %v",
							name, alg.Name(), w, i, got[i], counts[0], ref[i])
						break
					}
				}
			}
		}
	}
}

// TestPredictGlobalMatchesSerialEnumeration pins the parallel global
// candidate path to the serial single-stream enumeration for one latent
// algorithm (they share predictGlobal, so one suffices).
func TestPredictGlobalMatchesSerialEnumeration(t *testing.T) {
	g := detSnapshot(t, gen.YouTube(5).Scaled(0.08))
	opt := DefaultOptions()
	opt.RandomCandidates = 3000
	opt.Workers = 4
	scaled, raw := katzFactors(g, opt)
	score := func(u, v graph.NodeID) float64 {
		return linalg.Dot(scaled.Row(int(u)), raw.Row(int(v)))
	}
	serial := newTopK(40, opt.Seed)
	globalCandidates(g, opt, func(u, v graph.NodeID) { serial.Add(u, v, score(u, v)) })
	want := serial.Result()
	got := predictGlobal(g, 40, opt, score)
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: parallel %+v, serial %+v", i, got[i], want[i])
		}
	}
}

// TestValidateOptionsRejectsNegativeWorkers covers the Workers < 0 guard.
func TestValidateOptionsRejectsNegativeWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Workers = -1 accepted")
		}
	}()
	opt := DefaultOptions()
	opt.Workers = -1
	CN.Predict(kite(), 3, opt)
}

// TestShardRangeCoversRange sanity-checks the sharding helper: every index
// visited exactly once, for degenerate and oversubscribed configurations.
// Chunks never overlap, so the concurrent counts writes are disjoint.
func TestShardRangeCoversRange(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 1}, {100, 3}, {shardMin + 50, 4}, {1000, 16}, {5, 100},
	} {
		counts := make([]int32, tc.n)
		shardRange(Options{}, tc.n, tc.workers, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i]++
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, c)
			}
		}
	}
}

package predict

import (
	"cmp"
	"slices"

	"linkpred/internal/graph"
)

// lrwAlgorithm is the Local Random Walk index [Liu & Lü 2010]:
//
//	score(u,v) = deg(u)/(2|E|) π_uv(m) + deg(v)/(2|E|) π_vu(m)
//
// where π_uv(m) is the probability of an m-step random walk from u ending
// at v. Because the walk is reversible with respect to the degree
// distribution, deg(u) π_uv(m) = deg(v) π_vu(m) exactly, so the score equals
// deg(u) π_uv(m)/|E| and one propagation direction suffices.
type lrwAlgorithm struct{}

// LRW is the Local Random Walk algorithm.
var LRW Algorithm = lrwAlgorithm{}

func (lrwAlgorithm) Name() string { return "LRW" }

func steps(opt Options) int {
	if opt.LRWSteps <= 0 {
		return 3
	}
	return opt.LRWSteps
}

// walkScratch is one worker's pair of propagation vectors.
type walkScratch struct {
	cur, next *sparseVec
}

func newWalkScratch(n int) *walkScratch {
	return &walkScratch{cur: newSparseVec(n), next: newSparseVec(n)}
}

// lrwDistribution fills a scratch vector with π_u·(m) and returns it.
func lrwDistribution(g *graph.Graph, u graph.NodeID, m int, s *walkScratch) *sparseVec {
	cur, next := s.cur, s.next
	cur.reset()
	cur.add(u, 1)
	for step := 0; step < m; step++ {
		next.reset()
		propagateWalk(g, cur, next)
		cur, next = next, cur
	}
	s.cur, s.next = cur, next
	return cur
}

func (lrwAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "LRW")
	validateOptions(opt)
	r := beginRun("LRW", opPredict)
	defer r.end()
	opt.rec = r
	n := g.NumNodes()
	edges := float64(g.NumEdges())
	if edges == 0 {
		return nil
	}
	m := steps(opt)
	base, end := opt.sourceSpan(n)
	workers := workerCount(opt)
	parts := make([]*topK, workers)
	scratch := make([]*walkScratch, workers)
	shardRange(opt, end-base, workers, func(wk, lo, hi int) {
		if parts[wk] == nil {
			parts[wk] = newTopKRec(k, opt)
			scratch[wk] = newWalkScratch(n)
		}
		opt.rec.addNodes(int64(hi - lo))
		top, s := parts[wk], scratch[wk]
		for u := base + lo; u < base+hi; u++ {
			uid := graph.NodeID(u)
			du := float64(g.Degree(uid))
			if du == 0 {
				continue
			}
			dist := lrwDistribution(g, uid, m, s)
			for _, v := range dist.touched {
				if v <= uid || g.HasEdge(uid, v) {
					continue
				}
				top.Add(uid, v, du*dist.val[v]/edges)
			}
		}
	})
	return mergeTopK(k, opt.Seed, parts).Result()
}

func (lrwAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "LRW")
	r := beginRun("LRW", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	n := g.NumNodes()
	edges := float64(g.NumEdges())
	m := steps(opt)
	out := make([]float64, len(pairs))
	if edges == 0 {
		return out
	}
	idx := sourceSortedIndex(pairs, func(p Pair) graph.NodeID { return p.U })
	workers := workerCount(opt)
	scratch := make([]*walkScratch, workers)
	shardRange(opt, len(idx), workers, func(wk, lo, hi int) {
		if scratch[wk] == nil {
			scratch[wk] = newWalkScratch(n)
		}
		s := scratch[wk]
		var dist *sparseVec
		curU := graph.NodeID(-1)
		for _, i := range idx[lo:hi] {
			p := pairs[i]
			if p.U != curU || dist == nil {
				curU = p.U
				dist = lrwDistribution(g, curU, m, s)
			}
			out[i] = float64(g.Degree(p.U)) * dist.val[p.V] / edges
		}
	})
	return out
}

// srwAlgorithm is the Superposed Random Walk index [Liu & Lü 2010], LRW's
// companion in the survey catalogue: the LRW scores summed over every walk
// length 1..m, which rewards targets reachable both early and repeatedly:
//
//	SRW(u,v) = Σ_{l=1..m} LRW_l(u,v).
//
// The same degree-reversibility argument that collapses LRW to one
// propagation direction holds per step, so one walk from the lower endpoint
// suffices here too.
type srwAlgorithm struct{}

// SRW is the Superposed Random Walk survey extension.
var SRW Algorithm = srwAlgorithm{}

func (srwAlgorithm) Name() string { return "SRW" }

// srwScratch is one worker's propagation state plus the step accumulator.
type srwScratch struct {
	walk *walkScratch
	acc  *sparseVec
}

func newSRWScratch(n int) *srwScratch {
	return &srwScratch{walk: newWalkScratch(n), acc: newSparseVec(n)}
}

// srwDistribution fills s.acc with Σ_{l=1..m} π_u·(l) and returns it. The
// accumulation order (per step, in touch order) is a fixed function of the
// source, so results are worker-count independent.
func srwDistribution(g *graph.Graph, u graph.NodeID, m int, s *srwScratch) *sparseVec {
	s.acc.reset()
	cur, next := s.walk.cur, s.walk.next
	cur.reset()
	cur.add(u, 1)
	for step := 0; step < m; step++ {
		next.reset()
		propagateWalk(g, cur, next)
		cur, next = next, cur
		for _, v := range cur.touched {
			s.acc.add(v, cur.val[v])
		}
	}
	s.walk.cur, s.walk.next = cur, next
	return s.acc
}

func (srwAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "SRW")
	validateOptions(opt)
	r := beginRun("SRW", opPredict)
	defer r.end()
	opt.rec = r
	n := g.NumNodes()
	edges := float64(g.NumEdges())
	if edges == 0 {
		return nil
	}
	m := steps(opt)
	base, end := opt.sourceSpan(n)
	workers := workerCount(opt)
	parts := make([]*topK, workers)
	scratch := make([]*srwScratch, workers)
	shardRange(opt, end-base, workers, func(wk, lo, hi int) {
		if parts[wk] == nil {
			parts[wk] = newTopKRec(k, opt)
			scratch[wk] = newSRWScratch(n)
		}
		opt.rec.addNodes(int64(hi - lo))
		top, s := parts[wk], scratch[wk]
		for u := base + lo; u < base+hi; u++ {
			uid := graph.NodeID(u)
			du := float64(g.Degree(uid))
			if du == 0 {
				continue
			}
			acc := srwDistribution(g, uid, m, s)
			for _, v := range acc.touched {
				if v <= uid || g.HasEdge(uid, v) {
					continue
				}
				top.Add(uid, v, du*acc.val[v]/edges)
			}
		}
	})
	return mergeTopK(k, opt.Seed, parts).Result()
}

func (srwAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "SRW")
	r := beginRun("SRW", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	n := g.NumNodes()
	edges := float64(g.NumEdges())
	m := steps(opt)
	out := make([]float64, len(pairs))
	if edges == 0 {
		return out
	}
	idx := sourceSortedIndex(pairs, func(p Pair) graph.NodeID { return p.U })
	workers := workerCount(opt)
	scratch := make([]*srwScratch, workers)
	shardRange(opt, len(idx), workers, func(wk, lo, hi int) {
		if scratch[wk] == nil {
			scratch[wk] = newSRWScratch(n)
		}
		s := scratch[wk]
		var acc *sparseVec
		curU := graph.NodeID(-1)
		for _, i := range idx[lo:hi] {
			p := pairs[i]
			if p.U != curU || acc == nil {
				curU = p.U
				acc = srwDistribution(g, curU, m, s)
			}
			out[i] = float64(g.Degree(p.U)) * acc.val[p.V] / edges
		}
	})
	return out
}

// pprAlgorithm is Personalized PageRank: score(u,v) = π_uv + π_vu with
// restart probability α, estimated with the Andersen-Chung-Lang forward-push
// local approximation. Predict accumulates π contributions from every
// source's push into a global pair map, keeping the strongest
// PPRPerSource targets per source to bound memory (documented deviation:
// targets below a source's top block cannot enter the global top-k at the
// k values the paper's methodology uses). Under a SourceRange the push
// sweep still covers every source — score(u,v) sums contributions from
// both endpoints' pushes, so no contiguous source slice sees a pair's full
// score — and only the accumulation is filtered by pair ownership:
// sharding PPR partitions accumulator memory and selection work across
// shards, not push work (DESIGN.md §12 records the limitation).
type pprAlgorithm struct{}

// PPR is the Personalized PageRank algorithm.
var PPR Algorithm = pprAlgorithm{}

// pprPerSource bounds retained targets per push source in Predict.
const pprPerSource = 256

func (pprAlgorithm) Name() string { return "PPR" }

// pprScratch is one worker's forward-push state.
type pprScratch struct {
	p, r  *sparseVec
	queue []graph.NodeID
}

func newPPRScratch(n int) *pprScratch {
	return &pprScratch{p: newSparseVec(n), r: newSparseVec(n), queue: make([]graph.NodeID, 0, 1024)}
}

// pprPush runs forward push from u, leaving the estimate in s.p. A
// non-positive eps would make the push loop until float underflow, so it
// falls back to the default threshold.
func pprPush(g *graph.Graph, u graph.NodeID, alpha, eps float64, s *pprScratch) {
	if eps <= 0 {
		eps = 1e-5
	}
	p, r := s.p, s.r
	p.reset()
	r.reset()
	r.add(u, 1)
	q := s.queue[:0]
	q = append(q, u)
	inQueue := map[graph.NodeID]bool{u: true}
	for len(q) > 0 {
		x := q[0]
		q = q[1:]
		delete(inQueue, x)
		rx := r.val[x]
		d := g.Degree(x)
		if d == 0 {
			// Dangling mass restarts at the source.
			p.add(x, rx)
			r.val[x] = 0
			continue
		}
		if rx < eps*float64(d) {
			continue
		}
		p.add(x, alpha*rx)
		share := (1 - alpha) * rx / float64(d)
		r.val[x] = 0
		for _, y := range g.Neighbors(x) {
			r.add(y, share)
			if r.val[y] >= eps*float64(g.Degree(y)) && !inQueue[y] {
				inQueue[y] = true
				q = append(q, y)
			}
		}
	}
	s.queue = q[:0]
}

func (pprAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "PPR")
	validateOptions(opt)
	r := beginRun("PPR", opPredict)
	defer r.end()
	opt.rec = r
	n := g.NumNodes()
	type hit struct {
		v graph.NodeID
		s float64
	}
	workers := workerCount(opt)
	accs := make([]map[uint64]float64, workers)
	scratch := make([]*pprScratch, workers)
	hitBufs := make([][]hit, workers)
	shardRange(opt, n, workers, func(wk, lo, hi int) {
		if scratch[wk] == nil {
			scratch[wk] = newPPRScratch(n)
			accs[wk] = make(map[uint64]float64)
			hitBufs[wk] = make([]hit, 0, 1024)
		}
		opt.rec.addNodes(int64(hi - lo))
		s, acc := scratch[wk], accs[wk]
		for u := lo; u < hi; u++ {
			uid := graph.NodeID(u)
			if g.Degree(uid) == 0 {
				continue
			}
			pprPush(g, uid, opt.PPRAlpha, opt.PPREps, s)
			hits := hitBufs[wk][:0]
			for _, v := range s.p.touched {
				if v == uid || g.HasEdge(uid, v) {
					continue
				}
				hits = append(hits, hit{v: v, s: s.p.val[v]})
			}
			// Ownership filter below, not here: truncation to pprPerSource
			// must see the full hit list so the retained set matches the
			// unrestricted sweep's exactly.
			if len(hits) > pprPerSource {
				// Total order (score desc, target asc) so the truncated set
				// is independent of the sort implementation, not only of the
				// worker count.
				slices.SortFunc(hits, func(a, b hit) int {
					if a.s != b.s {
						if a.s > b.s {
							return -1
						}
						return 1
					}
					return cmp.Compare(a.v, b.v)
				})
				hits = hits[:pprPerSource]
			}
			for _, h := range hits {
				if !opt.ownsPair(uid, h.v) {
					continue
				}
				acc[PairKey(uid, h.v)] += h.s
			}
			hitBufs[wk] = hits[:0]
		}
	})
	// Merge the per-worker accumulators. Each pair receives at most two
	// contributions (one per endpoint's push), and two-operand float sums
	// are commutative, so the merged values are worker-count independent.
	var acc map[uint64]float64
	for _, part := range accs {
		if part == nil {
			continue
		}
		if acc == nil {
			acc = part
			continue
		}
		for key, s := range part {
			acc[key] += s
		}
	}
	top := newTopKRec(k, opt)
	for key, s := range acc {
		u, v := KeyPair(key)
		top.Add(u, v, s)
	}
	return top.Result()
}

func (pprAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "PPR")
	r := beginRun("PPR", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	n := g.NumNodes()
	out := make([]float64, len(pairs))
	workers := workerCount(opt)
	scratch := make([]*pprScratch, workers)
	// Two passes: once grouped by U adding π_u[v], once grouped by V adding
	// π_v[u]. Each pass shards the grouped index list; a pass completes
	// fully before the next starts, so the two += writes per output slot
	// never race.
	for pass := 0; pass < 2; pass++ {
		src := func(pr Pair) graph.NodeID {
			if pass == 0 {
				return pr.U
			}
			return pr.V
		}
		dst := func(pr Pair) graph.NodeID {
			if pass == 0 {
				return pr.V
			}
			return pr.U
		}
		idx := sourceSortedIndex(pairs, src)
		shardRange(opt, len(idx), workers, func(wk, lo, hi int) {
			if scratch[wk] == nil {
				scratch[wk] = newPPRScratch(n)
			}
			s := scratch[wk]
			cur := graph.NodeID(-1)
			first := true
			for _, i := range idx[lo:hi] {
				if sv := src(pairs[i]); sv != cur || first {
					cur = sv
					first = false
					pprPush(g, cur, opt.PPRAlpha, opt.PPREps, s)
				}
				out[i] += s.p.val[dst(pairs[i])]
			}
		})
	}
	return out
}

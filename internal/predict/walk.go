package predict

import (
	"sort"

	"linkpred/internal/graph"
)

// lrwAlgorithm is the Local Random Walk index [Liu & Lü 2010]:
//
//	score(u,v) = deg(u)/(2|E|) π_uv(m) + deg(v)/(2|E|) π_vu(m)
//
// where π_uv(m) is the probability of an m-step random walk from u ending
// at v. Because the walk is reversible with respect to the degree
// distribution, deg(u) π_uv(m) = deg(v) π_vu(m) exactly, so the score equals
// deg(u) π_uv(m)/|E| and one propagation direction suffices.
type lrwAlgorithm struct{}

// LRW is the Local Random Walk algorithm.
var LRW Algorithm = lrwAlgorithm{}

func (lrwAlgorithm) Name() string { return "LRW" }

func steps(opt Options) int {
	if opt.LRWSteps <= 0 {
		return 3
	}
	return opt.LRWSteps
}

// lrwDistribution fills dst with π_u·(m), reusing cur/next as scratch.
func lrwDistribution(g *graph.Graph, u graph.NodeID, m int, cur, next *sparseVec) *sparseVec {
	cur.reset()
	cur.add(u, 1)
	for s := 0; s < m; s++ {
		next.reset()
		propagateWalk(g, cur, next)
		cur, next = next, cur
	}
	return cur
}

func (lrwAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	validateOptions(opt)
	n := g.NumNodes()
	edges := float64(g.NumEdges())
	if edges == 0 {
		return nil
	}
	m := steps(opt)
	top := newTopK(k, opt.Seed)
	cur, next := newSparseVec(n), newSparseVec(n)
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		du := float64(g.Degree(uid))
		if du == 0 {
			continue
		}
		dist := lrwDistribution(g, uid, m, cur, next)
		for _, v := range dist.touched {
			if v <= uid || g.HasEdge(uid, v) {
				continue
			}
			top.Add(uid, v, du*dist.val[v]/edges)
		}
	}
	return top.Result()
}

func (lrwAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	n := g.NumNodes()
	edges := float64(g.NumEdges())
	m := steps(opt)
	out := make([]float64, len(pairs))
	if edges == 0 {
		return out
	}
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pairs[idx[a]].U < pairs[idx[b]].U })
	cur, next := newSparseVec(n), newSparseVec(n)
	var dist *sparseVec
	curU := graph.NodeID(-1)
	for _, i := range idx {
		p := pairs[i]
		if p.U != curU {
			curU = p.U
			dist = lrwDistribution(g, curU, m, cur, next)
		}
		out[i] = float64(g.Degree(p.U)) * dist.val[p.V] / edges
	}
	return out
}

// pprAlgorithm is Personalized PageRank: score(u,v) = π_uv + π_vu with
// restart probability α, estimated with the Andersen-Chung-Lang forward-push
// local approximation. Predict accumulates π contributions from every
// source's push into a global pair map, keeping the strongest
// PPRPerSource targets per source to bound memory (documented deviation:
// targets below a source's top block cannot enter the global top-k at the
// k values the paper's methodology uses).
type pprAlgorithm struct{}

// PPR is the Personalized PageRank algorithm.
var PPR Algorithm = pprAlgorithm{}

// pprPerSource bounds retained targets per push source in Predict.
const pprPerSource = 256

func (pprAlgorithm) Name() string { return "PPR" }

// pprPush runs forward push from u, leaving the estimate in p. A
// non-positive eps would make the push loop until float underflow, so it
// falls back to the default threshold.
func pprPush(g *graph.Graph, u graph.NodeID, alpha, eps float64, p, r *sparseVec, queue *[]graph.NodeID) {
	if eps <= 0 {
		eps = 1e-5
	}
	p.reset()
	r.reset()
	r.add(u, 1)
	q := (*queue)[:0]
	q = append(q, u)
	inQueue := map[graph.NodeID]bool{u: true}
	for len(q) > 0 {
		x := q[0]
		q = q[1:]
		delete(inQueue, x)
		rx := r.val[x]
		d := g.Degree(x)
		if d == 0 {
			// Dangling mass restarts at the source.
			p.add(x, rx)
			r.val[x] = 0
			continue
		}
		if rx < eps*float64(d) {
			continue
		}
		p.add(x, alpha*rx)
		share := (1 - alpha) * rx / float64(d)
		r.val[x] = 0
		for _, y := range g.Neighbors(x) {
			r.add(y, share)
			if r.val[y] >= eps*float64(g.Degree(y)) && !inQueue[y] {
				inQueue[y] = true
				q = append(q, y)
			}
		}
	}
	*queue = q[:0]
}

func (pprAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	validateOptions(opt)
	n := g.NumNodes()
	acc := make(map[uint64]float64)
	p, r := newSparseVec(n), newSparseVec(n)
	queue := make([]graph.NodeID, 0, 1024)
	type hit struct {
		v graph.NodeID
		s float64
	}
	hits := make([]hit, 0, 1024)
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		if g.Degree(uid) == 0 {
			continue
		}
		pprPush(g, uid, opt.PPRAlpha, opt.PPREps, p, r, &queue)
		hits = hits[:0]
		for _, v := range p.touched {
			if v == uid || g.HasEdge(uid, v) {
				continue
			}
			hits = append(hits, hit{v: v, s: p.val[v]})
		}
		if len(hits) > pprPerSource {
			sort.Slice(hits, func(a, b int) bool { return hits[a].s > hits[b].s })
			hits = hits[:pprPerSource]
		}
		for _, h := range hits {
			acc[PairKey(uid, h.v)] += h.s
		}
	}
	top := newTopK(k, opt.Seed)
	for key, s := range acc {
		u, v := KeyPair(key)
		top.Add(u, v, s)
	}
	return top.Result()
}

func (pprAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	n := g.NumNodes()
	out := make([]float64, len(pairs))
	p, r := newSparseVec(n), newSparseVec(n)
	queue := make([]graph.NodeID, 0, 1024)
	// Two passes: once grouped by U adding π_u[v], once grouped by V adding
	// π_v[u]; both share the push cache keyed on the group node.
	for pass := 0; pass < 2; pass++ {
		idx := make([]int, len(pairs))
		for i := range idx {
			idx[i] = i
		}
		src := func(pr Pair) graph.NodeID {
			if pass == 0 {
				return pr.U
			}
			return pr.V
		}
		dst := func(pr Pair) graph.NodeID {
			if pass == 0 {
				return pr.V
			}
			return pr.U
		}
		sort.Slice(idx, func(a, b int) bool { return src(pairs[idx[a]]) < src(pairs[idx[b]]) })
		cur := graph.NodeID(-1)
		for _, i := range idx {
			s := src(pairs[i])
			if s != cur {
				cur = s
				pprPush(g, cur, opt.PPRAlpha, opt.PPREps, p, r, &queue)
			}
			out[i] += p.val[dst(pairs[i])]
		}
	}
	return out
}

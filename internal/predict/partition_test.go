package predict

import (
	"fmt"
	"math/rand"
	"testing"

	"linkpred/internal/graph"
)

// partitionBounds mirrors the serving layer's static shard configuration: a
// contiguous equal-count cover of [0, n) with an open-ended last shard.
func partitionBounds(n, shards int) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, shards)
	for s := 0; s < shards; s++ {
		out[s] = [2]graph.NodeID{graph.NodeID(s * n / shards), graph.NodeID((s + 1) * n / shards)}
	}
	out[shards-1][1] = 1 << 30
	return out
}

// TestPartitionedPredictEquivalence is the memory-sharding half of the
// distributed-correctness contract: for every partition-safe algorithm,
// running Predict on each shard's PartitionView (no explicit SourceRange —
// the view's owned range is the default) and merging is bit-identical to
// the unrestricted full-snapshot sweep, for shard counts {1, 2, 3, 5, 8} at
// per-shard worker counts {1, 4}. Partition-unsafe algorithms must panic on
// a partitioned snapshot instead of silently mis-scoring.
func TestPartitionedPredictEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"kite":   kite(),
		"random": randomGraph(42, 400, 1600),
	}
	const k = 25
	for gname, g := range graphs {
		n := g.NumNodes()
		views := map[int][]*graph.Graph{}
		for _, shards := range []int{1, 2, 3, 5, 8} {
			for _, b := range partitionBounds(n, shards) {
				views[shards] = append(views[shards], graph.PartitionView(g, b[0], b[1]))
			}
		}
		for _, alg := range shardTestAlgorithms() {
			alg := alg
			t.Run(fmt.Sprintf("%s/%s", gname, alg.Name()), func(t *testing.T) {
				if !PartitionSafe(alg.Name()) {
					assertPanics(t, "Predict on partitioned snapshot", func() {
						alg.Predict(views[2][0], k, DefaultOptions())
					})
					return
				}
				for _, workers := range []int{1, 4} {
					opt := DefaultOptions()
					opt.Workers = workers
					want := alg.Predict(g, k, opt)
					for _, shards := range []int{1, 2, 3, 5, 8} {
						parts := make([][]Pair, shards)
						for s, pv := range views[shards] {
							parts[s] = alg.Predict(pv, k, opt)
							// Each shard's partial must equal the full
							// snapshot's sweep over the same source range.
							o := opt
							r := SourceRange{Lo: s * n / shards, Hi: (s + 1) * n / shards}
							if s == shards-1 {
								r.Hi = n
							}
							o.SourceRange = &r
							assertSamePairs(t, alg.Predict(g, k, o), parts[s],
								fmt.Sprintf("shard %d of %d, %d workers", s, shards, workers))
						}
						assertSamePairs(t, want, MergeTopK(parts, k, opt.Seed),
							fmt.Sprintf("merged, %d shards x %d workers", shards, workers))
					}
				}
			})
		}
	}
}

// TestPartitionedPredictFusedPath covers the exhaustive fused engine on
// partitioned views (the pruned engine is the default path above).
func TestPartitionedPredictFusedPath(t *testing.T) {
	g := randomGraph(7, 300, 1200)
	n := g.NumNodes()
	const k = 20
	for _, alg := range []Algorithm{CN, AA, JC} {
		opt := DefaultOptions()
		opt.ExhaustiveSweep = true
		opt.Workers = 4
		want := alg.Predict(g, k, opt)
		for _, shards := range []int{2, 5} {
			parts := make([][]Pair, shards)
			for s, b := range partitionBounds(n, shards) {
				parts[s] = alg.Predict(graph.PartitionView(g, b[0], b[1]), k, opt)
			}
			assertSamePairs(t, want, MergeTopK(parts, k, opt.Seed),
				fmt.Sprintf("%s fused, %d shards", alg.Name(), shards))
		}
	}
}

// TestPartitionedStreamingBuilderPredict closes the loop on the serving
// path's representation: snapshots emitted by the streaming partitioned
// builder (which keeps a slightly different — superset — frontier than the
// offline view) produce the same bit-identical merged top-k.
func TestPartitionedStreamingBuilderPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	n, m := 250, 1100
	arr := make([]int64, n)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, Time: 1})
		if rng.Intn(5) == 0 {
			edges = append(edges, graph.Edge{U: v, V: u, Time: 1}) // duplicate
		}
	}
	tr := &graph.Trace{Name: "p", Arrival: arr, Edges: edges}
	full := tr.SnapshotAtEdge(len(edges))
	const k = 25
	const shards = 4
	for _, alg := range []Algorithm{CN, JC, AA, RA, PA, Salton, LHN} {
		opt := DefaultOptions()
		opt.Workers = 2
		want := alg.Predict(full, k, opt)
		parts := make([][]Pair, shards)
		for s, b := range partitionBounds(n, shards) {
			pb := graph.NewPartitionedBuilder(tr, b[0], b[1])
			// Two-step publish to exercise the delta path, not just a bulk load.
			pb.AtEdge(len(edges) / 2)
			parts[s] = alg.Predict(pb.AtEdge(len(edges)), k, opt)
		}
		assertSamePairs(t, want, MergeTopK(parts, k, opt.Seed),
			fmt.Sprintf("%s streaming-partitioned, %d shards", alg.Name(), shards))
	}
}

// TestPartitionedScorePairs: batch scoring on a partitioned snapshot is
// bit-identical to the full snapshot for owned pairs — in either endpoint
// order, including connected pairs — and panics on unowned pairs.
func TestPartitionedScorePairs(t *testing.T) {
	g := randomGraph(13, 300, 1400)
	n := g.NumNodes()
	lo, hi := graph.NodeID(n/4), graph.NodeID(3*n/4)
	pv := graph.PartitionView(g, lo, hi)
	rng := rand.New(rand.NewSource(4))
	var pairs []Pair
	for len(pairs) < 300 {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v {
			continue
		}
		m := u
		if v < u {
			m = v
		}
		if m < lo || m >= hi {
			continue
		}
		pairs = append(pairs, Pair{U: u, V: v}) // both orders occur naturally
	}
	// Connected pairs from owned rows: scoring them is defined (the
	// reference scores any pair), so the partition must match there too.
	for u := lo; u < hi && len(pairs) < 340; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				pairs = append(pairs, Pair{U: v, V: u})
				break
			}
		}
	}
	for _, alg := range []Algorithm{CN, JC, AA, RA, PA, Salton, Sorensen, HPI, HDI, LHN} {
		for _, workers := range []int{1, 4} {
			opt := DefaultOptions()
			opt.Workers = workers
			want := alg.ScorePairs(g, pairs, opt)
			got := alg.ScorePairs(pv, pairs, opt)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%s workers=%d: pair %d (%d,%d): got %v, want %v",
						alg.Name(), workers, i, pairs[i].U, pairs[i].V, got[i], want[i])
				}
			}
		}
	}
	assertPanics(t, "ScorePairs with unowned pair", func() {
		CN.ScorePairs(pv, []Pair{{U: 0, V: 1}}, DefaultOptions())
	})
	assertPanics(t, "BCN ScorePairs on partition", func() {
		BCN.ScorePairs(pv, pairs[:1], DefaultOptions())
	})
}

// TestResolvePartition pins the SourceRange/partition reconciliation rules.
func TestResolvePartition(t *testing.T) {
	g := randomGraph(2, 100, 300)
	pv := graph.PartitionView(g, 20, 60)
	// nil defaults to the owned range.
	got := resolvePartition(pv, DefaultOptions())
	if got.SourceRange == nil || got.SourceRange.Lo != 20 || got.SourceRange.Hi != 60 {
		t.Fatalf("nil SourceRange resolved to %+v", got.SourceRange)
	}
	// A sub-range of the owned range passes through.
	opt := DefaultOptions()
	opt.SourceRange = &SourceRange{Lo: 25, Hi: 40}
	got = resolvePartition(pv, opt)
	if got.SourceRange.Lo != 25 || got.SourceRange.Hi != 40 {
		t.Fatalf("sub-range resolved to %+v", got.SourceRange)
	}
	// Reaching outside the owned range panics.
	assertPanics(t, "SourceRange outside owned range", func() {
		opt := DefaultOptions()
		opt.SourceRange = &SourceRange{Lo: 0, Hi: 60}
		resolvePartition(pv, opt)
	})
	// Full snapshots pass through untouched.
	opt = DefaultOptions()
	if r := resolvePartition(g, opt); r.SourceRange != nil {
		t.Fatalf("full snapshot grew a SourceRange: %+v", r.SourceRange)
	}
}

func assertPanics(t *testing.T, label string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	f()
}

// TestCostModelRanges pins the kernel-aware split invariants: every model
// yields a contiguous disjoint cover, CostWedge reproduces the historical
// WeightedSourceRanges boundaries exactly, and merge exactness holds on
// boundaries chosen by any model (ownership does not care where the
// boundaries sit).
func TestCostModelRanges(t *testing.T) {
	g := randomGraph(21, 300, 1500)
	n := g.NumNodes()
	models := []CostModel{CostWedge, CostCappedWedge, CostRows}
	for _, model := range models {
		for _, shards := range []int{1, 2, 3, 7, 16} {
			ranges := WeightedSourceRangesFor(g, shards, model)
			prev := 0
			for s, r := range ranges {
				if r.Lo != prev || r.Hi < r.Lo {
					t.Fatalf("model=%d shards=%d: shard %d range [%d,%d) breaks cover at %d",
						model, shards, s, r.Lo, r.Hi, prev)
				}
				prev = r.Hi
			}
			if prev != n {
				t.Fatalf("model=%d shards=%d: cover ends at %d, want %d", model, shards, prev, n)
			}
		}
	}
	for s, r := range WeightedSourceRanges(g, 4) {
		if WeightedSourceRangesFor(g, 4, CostWedge)[s] != r {
			t.Fatal("WeightedSourceRanges diverged from CostWedge")
		}
	}
	const k = 20
	for _, alg := range []Algorithm{BCN, BAA, LRW} {
		model := CostModelFor(alg.Name())
		opt := DefaultOptions()
		want := alg.Predict(g, k, opt)
		parts := make([][]Pair, 3)
		for s, r := range WeightedSourceRangesFor(g, 3, model) {
			o := opt
			r := r
			o.SourceRange = &r
			parts[s] = alg.Predict(g, k, o)
		}
		assertSamePairs(t, want, MergeTopK(parts, k, opt.Seed),
			fmt.Sprintf("%s under model %d", alg.Name(), model))
	}
}

// TestCostModelFor pins the family assignments the router relies on.
func TestCostModelFor(t *testing.T) {
	for name, want := range map[string]CostModel{
		"CN": CostWedge, "AA": CostWedge, "Salton": CostWedge,
		"BCN": CostCappedWedge, "BAA": CostCappedWedge, "BRA": CostCappedWedge,
		"SP": CostRows, "LP": CostRows, "PPR": CostRows, "LRW": CostRows,
		"SRW": CostRows, "Katz": CostRows, "KatzSC": CostRows, "KatzExact": CostRows, "Rescal": CostRows,
		"nonsense": CostWedge,
	} {
		if got := CostModelFor(name); got != want {
			t.Fatalf("CostModelFor(%q) = %d, want %d", name, got, want)
		}
	}
}

// TestPartitionSafeRegistry: the safe set is exactly the symmetric local
// family whose scores are functions of owned rows, frontier suffixes, and
// global degrees.
func TestPartitionSafeRegistry(t *testing.T) {
	safe := map[string]bool{
		"CN": true, "JC": true, "AA": true, "RA": true, "PA": true,
		"Salton": true, "Sorensen": true, "HPI": true, "HDI": true, "LHN": true,
	}
	for _, alg := range shardTestAlgorithms() {
		if PartitionSafe(alg.Name()) != safe[alg.Name()] {
			t.Fatalf("PartitionSafe(%q) = %v, want %v", alg.Name(), PartitionSafe(alg.Name()), safe[alg.Name()])
		}
	}
}

package predict

import (
	"testing"

	"linkpred/internal/graph"
)

// fuzzGraph decodes an arbitrary byte string into a small graph: node
// count from the length, edges from consecutive byte pairs. Self loops and
// duplicates are left in deliberately — Build must drop them.
func fuzzGraph(edges []byte) *graph.Graph {
	n := 8 + len(edges)%56
	var es []graph.Edge
	for i := 0; i+1 < len(edges); i += 2 {
		u := graph.NodeID(int(edges[i]) % n)
		v := graph.NodeID(int(edges[i+1]) % n)
		es = append(es, graph.Edge{U: u, V: v})
	}
	return graph.Build(n, es)
}

// fuzzPairs decodes a query batch: arbitrary order, self pairs and
// non-canonical (U > V) pairs included, exactly what a hostile /score
// caller can submit.
func fuzzPairs(raw []byte, n int) []Pair {
	var pairs []Pair
	for i := 0; i+1 < len(raw); i += 2 {
		pairs = append(pairs, Pair{
			U: graph.NodeID(int(raw[i]) % n),
			V: graph.NodeID(int(raw[i+1]) % n),
		})
	}
	return pairs
}

// FuzzScorePairs cross-checks the fused zero-allocation sweep kernels
// against the per-pair intersection reference on arbitrary graphs and
// query batches: bit-identical score vectors and top-k output for every
// local metric, at the serial and a parallel worker count. This is the
// property the serving layer's batching correctness rests on — coalescing
// requests into one sweep is only invisible if per-pair scores never
// depend on batch composition or worker count.
func FuzzScorePairs(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 3, 3, 4, 0, 2}, []byte{0, 3, 1, 4, 2, 2, 4, 0}, byte(0), byte(2))
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 1, 3, 2, 3}, []byte{0, 1, 3, 0, 2, 1}, byte(2), byte(4))
	f.Add([]byte{5, 9, 9, 12, 12, 5, 1, 7}, []byte{5, 12, 9, 9, 7, 1, 0, 0}, byte(7), byte(3))
	f.Add([]byte{}, []byte{0, 1}, byte(3), byte(1))
	f.Fuzz(func(t *testing.T, edgeRaw, pairRaw []byte, algPick, workerPick byte) {
		if len(edgeRaw) > 1<<12 || len(pairRaw) > 1<<12 {
			return
		}
		g := fuzzGraph(edgeRaw)
		pairs := fuzzPairs(pairRaw, g.NumNodes())
		if len(pairs) == 0 {
			return
		}
		metrics := fusedMetrics()
		m := metrics[int(algPick)%len(metrics)]
		opt := DefaultOptions()
		opt.Workers = 1
		want := m.referenceScorePairs(g, pairs, opt)
		for _, w := range []int{1, 2 + int(workerPick)%6} {
			opt.Workers = w
			got := m.ScorePairs(g, pairs, opt)
			if len(got) != len(want) {
				t.Fatalf("%s workers=%d: %d scores for %d pairs (reference %d)",
					m.name, w, len(got), len(pairs), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s workers=%d: score[%d]=%v, reference %v (pair %+v, n=%d)",
						m.name, w, i, got[i], want[i], pairs[i], g.NumNodes())
				}
			}
		}
		const k = 10
		opt.Workers = 1
		wantTop := m.referencePredict(g, k, opt)
		opt.Workers = 2 + int(workerPick)%6
		gotTop := m.Predict(g, k, opt)
		if len(gotTop) != len(wantTop) {
			t.Fatalf("%s: fused Predict returned %d pairs, reference %d", m.name, len(gotTop), len(wantTop))
		}
		for i := range wantTop {
			if gotTop[i] != wantTop[i] {
				t.Fatalf("%s: rank %d fused %+v, reference %+v", m.name, i, gotTop[i], wantTop[i])
			}
		}
	})
}

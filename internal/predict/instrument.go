package predict

import (
	"sync/atomic"
	"time"

	"linkpred/internal/obs"
)

// This file is the telemetry shim between the scoring engine and
// internal/obs. Each Predict/ScorePairs entry point opens an obsRun; the
// engine helpers and the bounded top-k feed it while the call runs, and
// end() flushes the totals into the global obs registry under the
// algorithm's name. When telemetry is disabled beginRun returns nil and
// every hook below degrades to a nil-pointer check, so the engine's hot
// paths carry no measurable overhead (see BenchmarkPredictTelemetry).
// Recording never influences scores, candidate order, or tie-breaking, so
// the engine's bit-identical deterministic output is preserved with
// telemetry on (TestTelemetryPreservesDeterminism).

// The two instrumented Algorithm operations.
const (
	opPredict    = "predict"
	opScorePairs = "score_pairs"
)

// obsRun accumulates one instrumented algorithm call. Workers of the same
// call share it, so the fields are atomics.
type obsRun struct {
	alg   string
	op    string
	start time.Time
	pairs atomic.Int64 // candidates offered to the top-k / pairs batch-scored
	nodes atomic.Int64 // source nodes swept
	evict atomic.Int64 // full-heap replacements in the per-worker top-ks
}

// beginRun opens a run recorder, or returns nil when telemetry is off. All
// obsRun methods are nil-safe.
func beginRun(alg, op string) *obsRun {
	if !obs.Enabled() {
		return nil
	}
	return &obsRun{alg: alg, op: op, start: time.Now()}
}

func (r *obsRun) addPairs(n int64) {
	if r != nil {
		r.pairs.Add(n)
	}
}

func (r *obsRun) addNodes(n int64) {
	if r != nil {
		r.nodes.Add(n)
	}
}

// end flushes the run into the registry: a latency histogram per
// (algorithm, operation) and the standard per-algorithm counters.
func (r *obsRun) end() {
	if r == nil {
		return
	}
	prefix := "predict/" + r.alg
	obs.GetHistogram(prefix + "/" + r.op + "_ns").Observe(time.Since(r.start).Nanoseconds())
	obs.GetCounter(prefix + "/pairs_scored").Add(r.pairs.Load())
	if n := r.nodes.Load(); n != 0 {
		obs.GetCounter(prefix + "/nodes_swept").Add(n)
	}
	if n := r.evict.Load(); n != 0 {
		obs.GetCounter(prefix + "/topk_evictions").Add(n)
	}
}

package predict

import (
	"sync/atomic"

	"linkpred/internal/graph"
)

// spAlgorithm is Shortest Path: score(u,v) = -hops(u,v), so closer pairs
// rank higher. As the paper observes (§4.2), its top-k is effectively a
// random draw over all 2-hop pairs; our deterministic tie-break hash
// reproduces exactly that behaviour.
type spAlgorithm struct{}

// SP is the Shortest Path algorithm.
var SP Algorithm = spAlgorithm{}

func (spAlgorithm) Name() string { return "SP" }

func (spAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "SP")
	validateOptions(opt)
	r := beginRun("SP", opPredict)
	defer r.end()
	opt.rec = r
	// Distance-2 pairs dominate; they are cheap to enumerate exactly.
	var count int64
	parts := twoHopParts(g, k, opt, func(u, v graph.NodeID, top *topK) {
		top.Add(u, v, -2)
		atomic.AddInt64(&count, 1)
	})
	if int(count) >= k {
		return mergeTopK(k, opt.Seed, parts).Result()
	}
	// Not enough 2-hop pairs: per-source truncated BFS out to increasing
	// depths. The BFS re-discovers every distance-2 pair, so the sweep above
	// is discarded rather than merged (merging would insert those pairs
	// twice and could surface duplicates in the result). Under a SourceRange
	// the count — and hence the path taken — is the shard's own: safe,
	// because a shard with ≥ k owned 2-hop pairs proves no deeper pair can
	// enter the global top k, and a shard that falls through scores its
	// distance-2 pairs identically (-2) on the BFS path.
	n := g.NumNodes()
	base, end := opt.sourceSpan(n)
	maxDepth := int32(opt.SPMaxDepth)
	if maxDepth < 3 {
		maxDepth = 3
	}
	workers := workerCount(opt)
	bfsParts := make([]*topK, workers)
	dists := make([][]int32, workers)
	queues := make([][]graph.NodeID, workers)
	shardRange(opt, end-base, workers, func(wk, lo, hi int) {
		if bfsParts[wk] == nil {
			bfsParts[wk] = newTopKRec(k, opt)
			dists[wk] = make([]int32, n)
		}
		opt.rec.addNodes(int64(hi - lo))
		top, dist, queue := bfsParts[wk], dists[wk], queues[wk]
		for u := base + lo; u < base+hi; u++ {
			uid := graph.NodeID(u)
			for i := range dist {
				dist[i] = -1
			}
			dist[uid] = 0
			queue = append(queue[:0], uid)
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				if dist[x] >= maxDepth {
					continue
				}
				for _, y := range g.Neighbors(x) {
					if dist[y] < 0 {
						dist[y] = dist[x] + 1
						queue = append(queue, y)
					}
				}
			}
			for v := u + 1; v < n; v++ {
				if d := dist[v]; d >= 2 {
					top.Add(uid, graph.NodeID(v), float64(-d))
				}
			}
		}
		queues[wk] = queue
	})
	return mergeTopK(k, opt.Seed, bfsParts).Result()
}

func (spAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "SP")
	r := beginRun("SP", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	maxDepth := int32(opt.SPMaxDepth)
	if maxDepth <= 0 {
		maxDepth = 6
	}
	out := make([]float64, len(pairs))
	// Group queries by source to share one truncated BFS per distinct node
	// within a chunk.
	idx := sourceSortedIndex(pairs, func(p Pair) graph.NodeID { return p.U })
	n := g.NumNodes()
	workers := workerCount(opt)
	dists := make([][]int32, workers)
	queues := make([][]graph.NodeID, workers)
	shardRange(opt, len(idx), workers, func(wk, lo, hi int) {
		if dists[wk] == nil {
			dists[wk] = make([]int32, n)
		}
		dist, queue := dists[wk], queues[wk]
		cur := graph.NodeID(-1)
		first := true
		for _, i := range idx[lo:hi] {
			p := pairs[i]
			if p.U != cur || first {
				cur = p.U
				first = false
				for j := range dist {
					dist[j] = -1
				}
				dist[cur] = 0
				queue = append(queue[:0], cur)
				for len(queue) > 0 {
					x := queue[0]
					queue = queue[1:]
					if dist[x] >= maxDepth {
						continue
					}
					for _, y := range g.Neighbors(x) {
						if dist[y] < 0 {
							dist[y] = dist[x] + 1
							queue = append(queue, y)
						}
					}
				}
			}
			if d := dist[p.V]; d >= 0 {
				out[i] = float64(-d)
			} else {
				out[i] = float64(-(maxDepth + 2)) // beyond horizon
			}
		}
		queues[wk] = queue
	})
	return out
}

// lpAlgorithm is the Local Path index: |paths²(u,v)| + ε |paths³(u,v)|,
// where path counts are walk counts (entries of A² and A³) as in Zhou et
// al. [45]. Support is contained within three hops, so per-source sparse
// propagation enumerates every nonzero pair exactly.
type lpAlgorithm struct{}

// LP is the Local Path algorithm.
var LP Algorithm = lpAlgorithm{}

func (lpAlgorithm) Name() string { return "LP" }

// lpScratch is one worker's reusable propagation state.
type lpScratch struct {
	w1, w2, w3 *sparseVec
}

func newLPScratch(n int) *lpScratch {
	return &lpScratch{w1: newSparseVec(n), w2: newSparseVec(n), w3: newSparseVec(n)}
}

// lpCounts computes w1 = A e_u, w2 = A² e_u and w3 = A³ e_u into the
// scratch vectors.
func lpCounts(g *graph.Graph, u graph.NodeID, s *lpScratch) {
	s.w1.reset()
	s.w2.reset()
	s.w3.reset()
	for _, y := range g.Neighbors(u) {
		s.w1.add(y, 1)
	}
	propagate(g, s.w1, s.w2)
	propagate(g, s.w2, s.w3)
}

func (lpAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	mustFullGraph(g, "LP")
	validateOptions(opt)
	r := beginRun("LP", opPredict)
	defer r.end()
	opt.rec = r
	n := g.NumNodes()
	base, end := opt.sourceSpan(n)
	workers := workerCount(opt)
	parts := make([]*topK, workers)
	scratch := make([]*lpScratch, workers)
	shardRange(opt, end-base, workers, func(wk, lo, hi int) {
		if parts[wk] == nil {
			parts[wk] = newTopKRec(k, opt)
			scratch[wk] = newLPScratch(n)
		}
		opt.rec.addNodes(int64(hi - lo))
		top, s := parts[wk], scratch[wk]
		for u := base + lo; u < base+hi; u++ {
			uid := graph.NodeID(u)
			if g.Degree(uid) == 0 {
				continue
			}
			lpCounts(g, uid, s)
			// The support of the score is the union of the A² and A³
			// supports; the second loop skips pairs already covered by the
			// first.
			for _, v := range s.w2.touched {
				if v <= uid || g.HasEdge(uid, v) {
					continue
				}
				top.Add(uid, v, s.w2.val[v]+opt.LPEpsilon*s.w3.val[v])
			}
			for _, v := range s.w3.touched {
				if v <= uid || s.w2.val[v] != 0 || g.HasEdge(uid, v) {
					continue
				}
				top.Add(uid, v, opt.LPEpsilon*s.w3.val[v])
			}
		}
	})
	return mergeTopK(k, opt.Seed, parts).Result()
}

func (lpAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	mustFullGraph(g, "LP")
	r := beginRun("LP", opScorePairs)
	defer r.end()
	r.addPairs(int64(len(pairs)))
	eps := opt.LPEpsilon
	out := make([]float64, len(pairs))
	idx := sourceSortedIndex(pairs, func(p Pair) graph.NodeID { return p.U })
	n := g.NumNodes()
	workers := workerCount(opt)
	scratch := make([]*lpScratch, workers)
	shardRange(opt, len(idx), workers, func(wk, lo, hi int) {
		if scratch[wk] == nil {
			scratch[wk] = newLPScratch(n)
		}
		s := scratch[wk]
		cur := graph.NodeID(-1)
		first := true
		for _, i := range idx[lo:hi] {
			p := pairs[i]
			if p.U != cur || first {
				cur = p.U
				first = false
				lpCounts(g, cur, s)
			}
			out[i] = s.w2.val[p.V] + eps*s.w3.val[p.V]
		}
	})
	return out
}

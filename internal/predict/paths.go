package predict

import (
	"sort"

	"linkpred/internal/graph"
)

// spAlgorithm is Shortest Path: score(u,v) = -hops(u,v), so closer pairs
// rank higher. As the paper observes (§4.2), its top-k is effectively a
// random draw over all 2-hop pairs; our deterministic tie-break hash
// reproduces exactly that behaviour.
type spAlgorithm struct{}

// SP is the Shortest Path algorithm.
var SP Algorithm = spAlgorithm{}

func (spAlgorithm) Name() string { return "SP" }

func (spAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	validateOptions(opt)
	top := newTopK(k, opt.Seed)
	// Distance-2 pairs dominate; they are cheap to enumerate exactly.
	count := 0
	twoHopPairs(g, func(u, v graph.NodeID) {
		top.Add(u, v, -2)
		count++
	})
	if count >= k {
		return top.Result()
	}
	// Not enough 2-hop pairs: BFS out to increasing depths.
	n := g.NumNodes()
	dist := make([]int32, n)
	var queue []graph.NodeID
	maxDepth := int32(opt.SPMaxDepth)
	if maxDepth < 3 {
		maxDepth = 3
	}
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		for i := range dist {
			dist[i] = -1
		}
		dist[uid] = 0
		queue = append(queue[:0], uid)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			if dist[x] >= maxDepth {
				continue
			}
			for _, y := range g.Neighbors(x) {
				if dist[y] < 0 {
					dist[y] = dist[x] + 1
					queue = append(queue, y)
				}
			}
		}
		for v := int(uid) + 1; v < n; v++ {
			if d := dist[v]; d >= 2 {
				top.Add(uid, graph.NodeID(v), float64(-d))
			}
		}
	}
	return top.Result()
}

func (spAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	maxDepth := int32(opt.SPMaxDepth)
	if maxDepth <= 0 {
		maxDepth = 6
	}
	out := make([]float64, len(pairs))
	// Group queries by source to share one truncated BFS per distinct node.
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pairs[idx[a]].U < pairs[idx[b]].U })
	n := g.NumNodes()
	dist := make([]int32, n)
	var queue []graph.NodeID
	cur := graph.NodeID(-1)
	for _, i := range idx {
		p := pairs[i]
		if p.U != cur {
			cur = p.U
			for j := range dist {
				dist[j] = -1
			}
			dist[cur] = 0
			queue = append(queue[:0], cur)
			for len(queue) > 0 {
				x := queue[0]
				queue = queue[1:]
				if dist[x] >= maxDepth {
					continue
				}
				for _, y := range g.Neighbors(x) {
					if dist[y] < 0 {
						dist[y] = dist[x] + 1
						queue = append(queue, y)
					}
				}
			}
		}
		if d := dist[p.V]; d >= 0 {
			out[i] = float64(-d)
		} else {
			out[i] = float64(-(maxDepth + 2)) // beyond horizon
		}
	}
	return out
}

// lpAlgorithm is the Local Path index: |paths²(u,v)| + ε |paths³(u,v)|,
// where path counts are walk counts (entries of A² and A³) as in Zhou et
// al. [45]. Support is contained within three hops, so per-source sparse
// propagation enumerates every nonzero pair exactly.
type lpAlgorithm struct{}

// LP is the Local Path algorithm.
var LP Algorithm = lpAlgorithm{}

func (lpAlgorithm) Name() string { return "LP" }

// lpCounts computes w1 = A e_u, w2 = A² e_u and w3 = A³ e_u into the
// provided reusable vectors.
func lpCounts(g *graph.Graph, u graph.NodeID, w1, w2, w3 *sparseVec) {
	w1.reset()
	w2.reset()
	w3.reset()
	for _, y := range g.Neighbors(u) {
		w1.add(y, 1)
	}
	propagate(g, w1, w2)
	propagate(g, w2, w3)
}

func (lpAlgorithm) Predict(g *graph.Graph, k int, opt Options) []Pair {
	validateOptions(opt)
	n := g.NumNodes()
	top := newTopK(k, opt.Seed)
	w1, w2, w3 := newSparseVec(n), newSparseVec(n), newSparseVec(n)
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		if g.Degree(uid) == 0 {
			continue
		}
		lpCounts(g, uid, w1, w2, w3)
		// The support of the score is the union of the A² and A³ supports;
		// the second loop skips pairs already covered by the first.
		for _, v := range w2.touched {
			if v <= uid || g.HasEdge(uid, v) {
				continue
			}
			top.Add(uid, v, w2.val[v]+opt.LPEpsilon*w3.val[v])
		}
		for _, v := range w3.touched {
			if v <= uid || w2.val[v] != 0 || g.HasEdge(uid, v) {
				continue
			}
			top.Add(uid, v, opt.LPEpsilon*w3.val[v])
		}
	}
	return top.Result()
}

func (lpAlgorithm) ScorePairs(g *graph.Graph, pairs []Pair, opt Options) []float64 {
	eps := opt.LPEpsilon
	out := make([]float64, len(pairs))
	idx := make([]int, len(pairs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pairs[idx[a]].U < pairs[idx[b]].U })
	n := g.NumNodes()
	w1, w2, w3 := newSparseVec(n), newSparseVec(n), newSparseVec(n)
	cur := graph.NodeID(-1)
	for _, i := range idx {
		p := pairs[i]
		if p.U != cur {
			cur = p.U
			lpCounts(g, cur, w1, w2, w3)
		}
		out[i] = w2.val[p.V] + eps*w3.val[p.V]
	}
	return out
}

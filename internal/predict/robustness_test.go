package predict

import (
	"testing"

	"linkpred/internal/graph"
)

// TestDegenerateGraphs runs every algorithm (core + extensions) against the
// pathological inputs a library user will eventually feed it: empty graph,
// single node, single edge, star, complete graph (no unconnected pairs),
// and a graph of only isolated nodes. Nothing may panic; predictions must
// respect the invariants.
func TestDegenerateGraphs(t *testing.T) {
	complete := func(n int) *graph.Graph {
		var edges []graph.Edge
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				edges = append(edges, graph.Edge{U: graph.NodeID(u), V: graph.NodeID(v)})
			}
		}
		return graph.Build(n, edges)
	}
	cases := map[string]*graph.Graph{
		"empty":       graph.Build(0, nil),
		"single node": graph.Build(1, nil),
		"single edge": graph.Build(2, []graph.Edge{{U: 0, V: 1}}),
		"isolated":    graph.Build(5, nil),
		"star":        graph.Build(5, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 0, V: 4}}),
		"complete":    complete(5),
		"two cliques": graph.Build(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5}}),
	}
	opt := DefaultOptions()
	opt.RandomCandidates = 50
	algs := append(All(), Extensions()...)
	for name, g := range cases {
		for _, alg := range algs {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s on %s graph panicked: %v", alg.Name(), name, r)
					}
				}()
				for _, k := range []int{0, 1, 3, 100} {
					pred := alg.Predict(g, k, opt)
					if len(pred) > k {
						t.Errorf("%s on %s: %d predictions for k=%d", alg.Name(), name, len(pred), k)
					}
					for _, p := range pred {
						if g.HasEdge(p.U, p.V) || p.U == p.V {
							t.Errorf("%s on %s: invalid prediction %+v", alg.Name(), name, p)
						}
					}
				}
				// ScorePairs on whatever pairs exist.
				if g.NumNodes() >= 2 {
					pairs := []Pair{{U: 0, V: 1}}
					if s := alg.ScorePairs(g, pairs, opt); len(s) != 1 {
						t.Errorf("%s on %s: score length %d", alg.Name(), name, len(s))
					}
				}
				if s := alg.ScorePairs(g, nil, opt); len(s) != 0 {
					t.Errorf("%s on %s: nonempty scores for no pairs", alg.Name(), name)
				}
			}()
		}
	}
}

// TestOptionValidation ensures nonsense options are rejected loudly rather
// than producing silent garbage.
func TestOptionValidation(t *testing.T) {
	g := kite()
	bad := []Options{
		func() Options { o := DefaultOptions(); o.PPRAlpha = 0; return o }(),
		func() Options { o := DefaultOptions(); o.PPRAlpha = 1.5; return o }(),
		func() Options { o := DefaultOptions(); o.KatzBeta = -1; return o }(),
		func() Options { o := DefaultOptions(); o.LPEpsilon = -0.1; return o }(),
	}
	for i, opt := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad options %d accepted: %+v", i, opt)
				}
			}()
			CN.Predict(g, 3, opt)
		}()
	}
}

// TestZeroValueOptionDefaults verifies every algorithm falls back to sane
// internal defaults when optional knobs are zero.
func TestZeroValueOptionDefaults(t *testing.T) {
	g := randomGraph(31, 30, 80)
	opt := Options{Seed: 1, PPRAlpha: 0.15} // everything else zero
	for _, alg := range All() {
		if alg.Name() == "SP" || alg.Name() == "LP" {
			continue // LPEpsilon=0 and SPMaxDepth=0 are legitimate settings
		}
		pred := alg.Predict(g, 5, opt)
		if len(pred) == 0 {
			t.Errorf("%s with zero-value options made no predictions", alg.Name())
		}
	}
}

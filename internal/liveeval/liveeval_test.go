package liveeval

import (
	"math"
	"sync"
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
)

func pairs(ps ...[2]graph.NodeID) [][2]graph.NodeID { return ps }

// TestPrequentialDeterministicTrace drives a fully known trace through the
// engine and asserts the exact counters: two prediction epochs for one
// algorithm, ground-truth hits known in advance at known ranks.
func TestPrequentialDeterministicTrace(t *testing.T) {
	e := New(Config{TopK: 4, Ring: 4, Window: 8, HalfLife: 2})

	// Epoch 0: snapshot holds trace edges [0,5); prediction ranks
	// (1,2)=1, (3,4)=2, (5,6)=3, (7,8)=4.
	e.Record("CN", 0, 5, 5, pairs(
		[2]graph.NodeID{1, 2}, [2]graph.NodeID{3, 4}, [2]graph.NodeID{5, 6}, [2]graph.NodeID{7, 8}))

	// Edge 5: (3,4) — hit at rank 2.
	e.ObserveEdge(3, 4, 5)
	// Edge 6: (9,10) — miss.
	e.ObserveEdge(9, 10, 6)
	// Edge 7: (4,3) again (repeat pair, already hit) — miss: a pair
	// credits a set at most once.
	e.ObserveEdge(4, 3, 7)

	st, ok := e.Stats("CN")
	if !ok {
		t.Fatal("no stats for CN")
	}
	if st.Recorded != 1 || st.PredictedPairs != 4 {
		t.Fatalf("recorded=%d predicted=%d, want 1/4", st.Recorded, st.PredictedPairs)
	}
	if st.ScoredEdges != 3 || st.Hits != 1 {
		t.Fatalf("scored=%d hits=%d, want 3/1", st.ScoredEdges, st.Hits)
	}
	if want := (1.0 / 2.0) / 3.0; st.MRR != want {
		t.Fatalf("MRR=%v, want %v", st.MRR, want)
	}
	if want := 1.0 / 4.0; st.PrecisionAtK != want {
		t.Fatalf("precision@k=%v, want %v", st.PrecisionAtK, want)
	}
	if want := 1.0 / 3.0; st.WindowHitRate != want {
		t.Fatalf("window hit rate=%v, want %v", st.WindowHitRate, want)
	}
	// One hit at rank 2: AP = (1 hit at rank<=2)/2 = 0.5.
	if want := 0.5; st.WindowAUPR != want {
		t.Fatalf("window AUPR=%v, want %v", st.WindowAUPR, want)
	}
	// Decay: alpha = 1-2^(-1/2); three updates with indicators 1,0,0.
	alpha := 1 - math.Exp2(-1.0/2.0)
	decay := 0.0
	for _, ind := range []float64{1, 0, 0} {
		decay += alpha * (ind - decay)
	}
	if st.DecayedHitRate != decay {
		t.Fatalf("decayed hit rate=%v, want %v", st.DecayedHitRate, decay)
	}

	// Epoch 1: snapshot now holds [0,8); new prediction (5,6)=1, (9,10)=2.
	e.Record("CN", 1, 8, 8, pairs([2]graph.NodeID{5, 6}, [2]graph.NodeID{9, 10}))

	// Edge 8: (5,6) — hit at rank 1 against the NEWEST eligible set only
	// (it also sits at rank 3 of epoch 0, which must not be credited).
	e.ObserveEdge(5, 6, 8)
	st, _ = e.Stats("CN")
	if st.Hits != 2 || st.ScoredEdges != 4 {
		t.Fatalf("after epoch 1 hit: hits=%d scored=%d, want 2/4", st.Hits, st.ScoredEdges)
	}
	if want := (1.0/2.0 + 1.0/1.0) / 4.0; st.MRR != want {
		t.Fatalf("MRR=%v, want %v", st.MRR, want)
	}
	if want := 2.0 / 6.0; st.PrecisionAtK != want {
		t.Fatalf("precision@k=%v, want %v", st.PrecisionAtK, want)
	}
	// Window hits at ranks {2, 1}: AP = (1/1 + 2/2)/2 = 1.
	if want := 1.0; st.WindowAUPR != want {
		t.Fatalf("window AUPR=%v, want %v", st.WindowAUPR, want)
	}
}

// TestEpochBoundary pins the boundary rule: an edge whose trace index
// precedes the prediction's eligibility floor — because it is already part
// of the predicted-on snapshot, or because it was ingested before the
// prediction was recorded (same batch) — must not count, in either
// direction (no scored-edge increment, no hit).
func TestEpochBoundary(t *testing.T) {
	e := New(Config{TopK: 4, Ring: 4, Window: 8, HalfLife: 8})
	// Prediction computed on a 5-edge snapshot but recorded when the trace
	// had already grown to 7 edges: indices 5 and 6 arrived in the same
	// ingest batch as (or before) the recording and are ineligible.
	e.Record("AA", 3, 5, 7, pairs([2]graph.NodeID{1, 2}, [2]graph.NodeID{3, 4}))

	e.ObserveEdge(1, 2, 4) // inside snapshot
	e.ObserveEdge(1, 2, 5) // after snapshot, before recording
	e.ObserveEdge(3, 4, 6) // after snapshot, before recording
	if st, ok := e.Stats("AA"); !ok || st.ScoredEdges != 0 || st.Hits != 0 {
		t.Fatalf("pre-boundary edges scored: %+v", st)
	}

	e.ObserveEdge(1, 2, 7) // first eligible index
	st, _ := e.Stats("AA")
	if st.ScoredEdges != 1 || st.Hits != 1 {
		t.Fatalf("boundary edge: scored=%d hits=%d, want 1/1", st.ScoredEdges, st.Hits)
	}
}

// TestRingEvictionAndIdempotentRecord covers the bounded ring and the
// one-set-per-epoch rule.
func TestRingEvictionAndIdempotentRecord(t *testing.T) {
	e := New(Config{TopK: 2, Ring: 2, Window: 8, HalfLife: 8})
	e.Record("CN", 0, 0, 0, pairs([2]graph.NodeID{1, 2}))
	e.Record("CN", 0, 0, 3, pairs([2]graph.NodeID{8, 9})) // same epoch: no-op
	st, _ := e.Stats("CN")
	if st.Recorded != 1 || st.PredictedPairs != 1 {
		t.Fatalf("re-record changed the books: %+v", st)
	}

	e.Record("CN", 1, 2, 2, pairs([2]graph.NodeID{3, 4}))
	e.Record("CN", 2, 4, 4, pairs([2]graph.NodeID{5, 6})) // evicts epoch 0
	// (1,2) was only in the evicted epoch-0 set; the newest eligible set is
	// epoch 2, so this scores as a miss.
	e.ObserveEdge(1, 2, 9)
	st, _ = e.Stats("CN")
	if st.Hits != 0 || st.ScoredEdges != 1 {
		t.Fatalf("evicted set still credited: %+v", st)
	}
	// (5,6) hits the epoch-2 set.
	e.ObserveEdge(5, 6, 10)
	if st, _ = e.Stats("CN"); st.Hits != 1 {
		t.Fatalf("epoch-2 hit not credited: %+v", st)
	}
}

// TestTopKTruncation: pairs beyond Config.TopK are not retained.
func TestTopKTruncation(t *testing.T) {
	e := New(Config{TopK: 2, Ring: 2, Window: 8, HalfLife: 8})
	e.Record("CN", 0, 0, 0, pairs(
		[2]graph.NodeID{1, 2}, [2]graph.NodeID{3, 4}, [2]graph.NodeID{5, 6}))
	st, _ := e.Stats("CN")
	if st.PredictedPairs != 2 {
		t.Fatalf("predicted pairs=%d, want 2 (TopK)", st.PredictedPairs)
	}
	e.ObserveEdge(5, 6, 1) // rank 3 was truncated: miss
	if st, _ = e.Stats("CN"); st.Hits != 0 {
		t.Fatalf("truncated rank credited: %+v", st)
	}
}

// TestObsExport checks the per-algorithm counters and gauges the engine
// publishes through obs, including exposition-legal label syntax.
func TestObsExport(t *testing.T) {
	obs.Reset()
	obs.Enable(true)
	defer func() {
		obs.Enable(false)
		obs.Reset()
	}()
	e := New(Config{TopK: 4, Ring: 2, Window: 8, HalfLife: 4})
	e.Record("CN", 0, 1, 1, pairs([2]graph.NodeID{1, 2}))
	e.ObserveEdge(1, 2, 1)
	e.ObserveEdge(3, 4, 2)

	if got := obs.GetCounter(`liveeval/predictions_recorded{alg="CN"}`).Value(); got != 1 {
		t.Fatalf("predictions_recorded=%d, want 1", got)
	}
	if got := obs.GetCounter(`liveeval/edges_scored{alg="CN"}`).Value(); got != 2 {
		t.Fatalf("edges_scored=%d, want 2", got)
	}
	if got := obs.GetCounter(`liveeval/hits{alg="CN"}`).Value(); got != 1 {
		t.Fatalf("hits=%d, want 1", got)
	}
	st, _ := e.Stats("CN")
	if got := obs.GetGauge(`liveeval/hit_rate{alg="CN"}`).Value(); got != st.DecayedHitRate {
		t.Fatalf("hit_rate gauge=%v, want %v", got, st.DecayedHitRate)
	}
	if got := obs.GetGauge(`liveeval/mrr{alg="CN"}`).Value(); got != st.MRR {
		t.Fatalf("mrr gauge=%v, want %v", got, st.MRR)
	}
}

// TestConcurrentObserve exercises the engine under the race detector:
// concurrent Record and ObserveEdge must be safe, and the cumulative
// counters must account for every call exactly once.
func TestConcurrentObserve(t *testing.T) {
	e := New(Config{TopK: 8, Ring: 4, Window: 64, HalfLife: 16})
	e.Record("CN", 0, 0, 0, pairs([2]graph.NodeID{1, 2}, [2]graph.NodeID{3, 4}))
	var wg sync.WaitGroup
	const per = 100
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.ObserveEdge(graph.NodeID(10+w), graph.NodeID(100+i), 1+w*per+i)
			}
		}(w)
	}
	wg.Wait()
	st, _ := e.Stats("CN")
	if st.ScoredEdges != 4*per {
		t.Fatalf("scored=%d, want %d", st.ScoredEdges, 4*per)
	}
}

// Package liveeval closes the accuracy loop for the live server with
// prequential ("test-then-train") evaluation: every top-k prediction the
// server answers is recorded, and every subsequently ingested edge is
// scored against the predictions that existed *before* it arrived. The
// result is a rolling, per-algorithm measurement of whether predictions
// actually come true on the growing network itself — the paper's central
// empirical stance, applied to serving ("Evaluating Link Prediction
// Methods", Yang, Lichtenwalter & Chawla, prescribes the hit@k / precision
// family; Fish & Caceres motivate the sampling-robust windowed variants).
//
// Semantics, pinned by the test layer:
//
//   - A recorded prediction set is keyed by its snapshot epoch (the
//     published snapshot's sequence number). Per algorithm, at most one set
//     per epoch is kept (re-recording an epoch is a no-op — the engine's
//     determinism makes re-polls identical), in a bounded ring of the most
//     recent epochs.
//   - An ingested edge, identified by its trace index, is eligible against
//     a set only if the edge is not part of the snapshot the prediction was
//     computed on AND the set was recorded before the edge arrived. An edge
//     arriving in the same ingest batch that precedes the prediction
//     therefore never counts (the epoch-boundary rule).
//   - Each eligible edge is scored against the newest eligible set of each
//     algorithm: a hit if the pair is among its (not yet hit) predictions.
//     A pair hits a given set at most once.
//   - Scoring maintains cumulative counters (hits, reciprocal-rank sum,
//     predicted pairs), observation-count-decayed rates (deterministic: no
//     wall clock), and a sliding window of recent outcomes from which the
//     windowed hit rate and average-precision (AUPR estimate) series are
//     computed.
//
// All state transitions are deterministic functions of the Record /
// ObserveEdge call sequence, so a serving trace driven at engine worker
// counts 1 and 4 produces bit-identical statistics (the engine's top-k is
// worker-invariant, and this package adds no randomness and no clocks).
package liveeval

import (
	"math"
	"sort"
	"sync"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
)

// Config parameterizes an Engine. The zero value takes defaults.
type Config struct {
	// TopK bounds how many ranked pairs each recorded prediction retains
	// (default 128). Hits beyond the retained prefix are not credited.
	TopK int
	// Ring is how many recent prediction sets (epochs) are kept per
	// algorithm (default 4).
	Ring int
	// Window is the sliding-window length, in scored edges per algorithm,
	// behind the windowed hit-rate and AUPR series (default 1024).
	Window int
	// HalfLife is the number of scored edges over which the decayed rates
	// lose half their weight (default 256). The decay is per observation,
	// not per second, keeping the series deterministic.
	HalfLife int
}

func (c Config) withDefaults() Config {
	if c.TopK <= 0 {
		c.TopK = 128
	}
	if c.Ring <= 0 {
		c.Ring = 4
	}
	if c.Window <= 0 {
		c.Window = 1024
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 256
	}
	return c
}

// key canonicalizes a node pair into a map key (same packing as
// predict.PairKey, duplicated to keep this package free of a predict
// dependency so benchmarks in predict can import it).
func key(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// predSet is one recorded top-k prediction.
type predSet struct {
	epoch int64
	// minIndex is the first trace index eligible to score against this
	// set: max(snapshot edge count, trace length at record time). Edges
	// below it either are already part of the predicted-on snapshot or
	// arrived before the prediction existed.
	minIndex int
	// rank maps pair key to 1-based rank; hit pairs are deleted so a pair
	// is credited at most once per set.
	rank map[uint64]int
	size int
	hits int
}

// winEntry is one scored-edge outcome in the sliding window.
type winEntry struct {
	hit  bool
	rank int32
}

// algState is the per-algorithm prequential state.
type algState struct {
	ring []*predSet // oldest first

	recorded       int64
	predictedPairs int64
	scored         int64
	hits           int64
	rrSum          float64

	decayHit float64 // EWMA of the per-edge hit indicator

	win     []winEntry
	winNext int
	winLen  int
}

// Engine is the prequential evaluation engine. Create with New; all
// methods are safe for concurrent use.
type Engine struct {
	cfg   Config
	alpha float64

	mu   sync.Mutex
	algs map[string]*algState
}

// New returns an engine with cfg (zero fields take defaults).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:   cfg,
		alpha: 1 - math.Exp2(-1/float64(cfg.HalfLife)),
		algs:  make(map[string]*algState),
	}
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// Record stores one served top-k prediction for alg: pairs are the ranked
// candidates (best first, dense node IDs), epoch the published snapshot's
// sequence number, snapshotEdges the number of trace edges folded into
// that snapshot, and traceLen the trace length when the prediction was
// served. Re-recording an (alg, epoch) already in the ring is a no-op.
func (e *Engine) Record(alg string, epoch int64, snapshotEdges, traceLen int, pairs [][2]graph.NodeID) {
	if len(pairs) > e.cfg.TopK {
		pairs = pairs[:e.cfg.TopK]
	}
	minIndex := snapshotEdges
	if traceLen > minIndex {
		minIndex = traceLen
	}
	e.mu.Lock()
	st := e.state(alg)
	for _, set := range st.ring {
		if set.epoch == epoch {
			e.mu.Unlock()
			return
		}
	}
	set := &predSet{epoch: epoch, minIndex: minIndex, rank: make(map[uint64]int, len(pairs)), size: len(pairs)}
	for i, p := range pairs {
		k := key(p[0], p[1])
		if _, dup := set.rank[k]; !dup {
			set.rank[k] = i + 1
		}
	}
	st.ring = append(st.ring, set)
	if len(st.ring) > e.cfg.Ring {
		st.ring = st.ring[1:]
	}
	st.recorded++
	st.predictedPairs += int64(set.size)
	e.mu.Unlock()
	if obs.Enabled() {
		obs.GetCounter(`liveeval/predictions_recorded{alg="` + alg + `"}`).Inc()
	}
}

// ObserveEdge scores one accepted ingested edge (dense node IDs) at its
// 0-based trace index against every algorithm's newest eligible prediction
// set, updating the cumulative, decayed, and windowed series.
func (e *Engine) ObserveEdge(u, v graph.NodeID, traceIndex int) {
	k := key(u, v)
	type export struct {
		alg  string
		hit  bool
		rank int
		st   AlgStats
	}
	var exports []export
	e.mu.Lock()
	for alg, st := range e.algs {
		// Newest eligible set: recorded before the edge arrived, snapshot
		// not already containing it.
		var set *predSet
		for i := len(st.ring) - 1; i >= 0; i-- {
			if st.ring[i].minIndex <= traceIndex {
				set = st.ring[i]
				break
			}
		}
		if set == nil {
			continue
		}
		st.scored++
		hit := false
		rank := 0
		if r, ok := set.rank[k]; ok {
			hit = true
			rank = r
			delete(set.rank, k)
			set.hits++
			st.hits++
			st.rrSum += 1 / float64(r)
		}
		ind := 0.0
		if hit {
			ind = 1.0
		}
		st.decayHit += e.alpha * (ind - st.decayHit)
		entry := winEntry{hit: hit, rank: int32(rank)}
		if st.winLen < e.cfg.Window {
			st.win = append(st.win, entry)
			st.winLen++
		} else {
			st.win[st.winNext] = entry
		}
		st.winNext = (st.winNext + 1) % e.cfg.Window
		if obs.Enabled() {
			exports = append(exports, export{alg: alg, hit: hit, rank: rank, st: st.stats()})
		}
	}
	e.mu.Unlock()
	// Export outside the engine lock; per-alg gauges are set to the stats
	// captured under it, so the exported values are internally consistent.
	for _, x := range exports {
		lbl := `{alg="` + x.alg + `"}`
		obs.GetCounter("liveeval/edges_scored" + lbl).Inc()
		if x.hit {
			obs.GetCounter("liveeval/hits" + lbl).Inc()
			obs.GetHistogram("liveeval/hit_rank" + lbl).Observe(int64(x.rank))
		}
		obs.GetGauge("liveeval/hit_rate" + lbl).Set(x.st.DecayedHitRate)
		obs.GetGauge("liveeval/hit_rate_window" + lbl).Set(x.st.WindowHitRate)
		obs.GetGauge("liveeval/mrr" + lbl).Set(x.st.MRR)
		obs.GetGauge("liveeval/precision_at_k" + lbl).Set(x.st.PrecisionAtK)
		obs.GetGauge("liveeval/aupr_window" + lbl).Set(x.st.WindowAUPR)
	}
}

// state returns (creating if needed) the per-algorithm state. Callers hold
// e.mu.
func (e *Engine) state(alg string) *algState {
	st, ok := e.algs[alg]
	if !ok {
		st = &algState{}
		e.algs[alg] = st
	}
	return st
}

// AlgStats is the prequential measurement of one algorithm.
type AlgStats struct {
	// Recorded is the number of prediction sets in the books;
	// PredictedPairs the total ranked pairs they contributed.
	Recorded       int64 `json:"recorded"`
	PredictedPairs int64 `json:"predicted_pairs"`
	// ScoredEdges is the number of ingested edges scored against this
	// algorithm (edges with an eligible prediction set); Hits how many of
	// them were predicted.
	ScoredEdges int64 `json:"scored_edges"`
	Hits        int64 `json:"hits"`
	// MRR is the mean reciprocal rank over scored edges (misses count 0).
	MRR float64 `json:"mrr"`
	// PrecisionAtK is the fraction of all predicted pairs that have (so
	// far) materialized as edges.
	PrecisionAtK float64 `json:"precision_at_k"`
	// DecayedHitRate is the observation-decayed hit rate (half-life
	// Config.HalfLife scored edges).
	DecayedHitRate float64 `json:"decayed_hit_rate"`
	// WindowHitRate and WindowAUPR summarize the last Config.Window scored
	// edges: the raw hit fraction, and the average precision over the hit
	// ranks (an AUPR estimate on the windowed outcome stream).
	WindowHitRate float64 `json:"window_hit_rate"`
	WindowAUPR    float64 `json:"window_aupr"`
}

// stats summarizes one algState. Callers hold e.mu.
func (st *algState) stats() AlgStats {
	s := AlgStats{
		Recorded:       st.recorded,
		PredictedPairs: st.predictedPairs,
		ScoredEdges:    st.scored,
		Hits:           st.hits,
		DecayedHitRate: st.decayHit,
	}
	if st.scored > 0 {
		s.MRR = st.rrSum / float64(st.scored)
	}
	if st.predictedPairs > 0 {
		s.PrecisionAtK = float64(st.hits) / float64(st.predictedPairs)
	}
	if st.winLen > 0 {
		hits := 0
		var ranks []int
		for _, e := range st.win[:st.winLen] {
			if e.hit {
				hits++
				ranks = append(ranks, int(e.rank))
			}
		}
		s.WindowHitRate = float64(hits) / float64(st.winLen)
		s.WindowAUPR = averagePrecision(ranks)
	}
	return s
}

// averagePrecision computes the average precision of a top-k list whose
// hits landed at the given 1-based ranks: the mean, over hits, of
// (hits at rank <= r) / r. Ranks from different epochs' sets may repeat;
// each term is clamped to 1 so the estimate stays a valid precision.
func averagePrecision(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	sort.Ints(ranks)
	ap := 0.0
	for i, r := range ranks {
		p := float64(i+1) / float64(r)
		if p > 1 {
			p = 1
		}
		ap += p
	}
	return ap / float64(len(ranks))
}

// Stats returns the current measurement of one algorithm.
func (e *Engine) Stats(alg string) (AlgStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.algs[alg]
	if !ok {
		return AlgStats{}, false
	}
	return st.stats(), true
}

// All returns the stats of every algorithm seen, keyed by name.
func (e *Engine) All() map[string]AlgStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]AlgStats, len(e.algs))
	for alg, st := range e.algs {
		out[alg] = st.stats()
	}
	return out
}

// Accuracy returns the decayed hit rate of alg, with ok=false until at
// least one edge has been scored against it. The serving degradation
// controller divides it by measured latency to rank proxy candidates.
func (e *Engine) Accuracy(alg string) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.algs[alg]
	if !ok || st.scored == 0 {
		return 0, false
	}
	return st.decayHit, true
}

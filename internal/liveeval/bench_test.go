package liveeval

import (
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
)

// BenchmarkObserveEdge measures the per-ingested-edge cost of the
// prequential hook with telemetry export off and on — the number that has
// to stay negligible next to Trace.Append for the serve wiring to be free.
func BenchmarkObserveEdge(b *testing.B) {
	for _, mode := range []struct {
		name    string
		enabled bool
	}{{"obs-disabled", false}, {"obs-enabled", true}} {
		b.Run(mode.name, func(b *testing.B) {
			obs.Reset()
			obs.Enable(mode.enabled)
			defer func() {
				obs.Enable(false)
				obs.Reset()
			}()
			e := New(Config{TopK: 128, Ring: 4, Window: 1024, HalfLife: 256})
			var ps [][2]graph.NodeID
			for i := 0; i < 128; i++ {
				ps = append(ps, [2]graph.NodeID{graph.NodeID(i), graph.NodeID(i + 1000)})
			}
			for _, alg := range []string{"CN", "AA", "Katz"} {
				e.Record(alg, 0, 0, 0, ps)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ObserveEdge(graph.NodeID(i%500), graph.NodeID(500+i%700), 1+i)
			}
		})
	}
}

package classify

import (
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/ml"
	"linkpred/internal/predict"
	"linkpred/internal/temporal"
)

func TestSnowball(t *testing.T) {
	// Path graph 0-1-2-3-4 plus isolated component 5-6.
	g := graph.Build(7, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 5, V: 6},
	})
	s := Snowball(g, 3, 1)
	if len(s) != 3 {
		t.Fatalf("sample = %v", s)
	}
	// BFS from 1 reaches 1, then 0 and 2.
	want := []graph.NodeID{0, 1, 2}
	for i, v := range want {
		if s[i] != v {
			t.Fatalf("sample = %v, want %v", s, want)
		}
	}
	// Component exhaustion: target 7 must restart and cover everything.
	all := Snowball(g, 7, 1)
	if len(all) != 7 {
		t.Fatalf("full sample = %v", all)
	}
	// Oversized target clamps.
	if got := Snowball(g, 100, 0); len(got) != 7 {
		t.Fatalf("clamped sample = %v", got)
	}
	if got := Snowball(g, 0, 0); got != nil {
		t.Fatalf("zero target = %v", got)
	}
	// Deterministic.
	a, b := Snowball(g, 4, 2), Snowball(g, 4, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("snowball not deterministic")
		}
	}
}

// prepFixture builds a small prepared instance from a generated trace.
func prepFixture(t *testing.T, sample int) (*Prepared, *graph.Trace) {
	t.Helper()
	cfg := gen.Renren(31).Scaled(0.12)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	if len(cuts) < 3 {
		t.Fatal("fixture trace too small")
	}
	i := len(cuts) - 3
	opt := predict.DefaultOptions()
	p, err := Prepare(tr, cuts[i], cuts[i+1], cuts[i+2], sample, 3, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p, tr
}

func TestPrepareShapes(t *testing.T) {
	p, _ := prepFixture(t, 120)
	if len(p.TrainPairs) == 0 || len(p.TestPairs) == 0 {
		t.Fatal("empty pair sets")
	}
	if len(p.TrainX) != len(p.TrainPairs) || len(p.TrainY) != len(p.TrainPairs) {
		t.Fatalf("train shapes: %d pairs, %d X, %d Y", len(p.TrainPairs), len(p.TrainX), len(p.TrainY))
	}
	if len(p.TestX) != len(p.TestPairs) {
		t.Fatalf("test shapes: %d pairs, %d X", len(p.TestPairs), len(p.TestX))
	}
	if len(p.FeatureNames) != 14 {
		t.Fatalf("feature names = %v", p.FeatureNames)
	}
	if got := len(p.TrainX[0]); got != 14 {
		t.Fatalf("feature width = %d", got)
	}
	if p.K != len(p.TruthTest) {
		t.Fatalf("K = %d, truth = %d", p.K, len(p.TruthTest))
	}
	// Labels must have at least one positive for training to make sense;
	// this is a property of the sampled fixture.
	pos := 0
	for _, y := range p.TrainY {
		pos += y
	}
	if pos == 0 {
		t.Fatal("fixture has no positive training pairs; enlarge sample")
	}
	// Train pairs are unconnected in GTrain.
	for _, pr := range p.TrainPairs[:50] {
		if p.GTrain.HasEdge(pr.U, pr.V) {
			t.Fatalf("train pair %+v connected in GTrain", pr)
		}
	}
}

func TestEvaluateClassifierBeatsRandom(t *testing.T) {
	p, _ := prepFixture(t, 150)
	if p.K == 0 {
		t.Skip("no ground truth edges in sampled universe")
	}
	res, err := p.EvaluateClassifier(ml.NewSVM(1), 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.K != p.K {
		t.Errorf("result K = %d, want %d", res.K, p.K)
	}
	// SVM should clearly beat random (ratio >> 1) on a triadic-closure
	// dominated network.
	if res.Ratio <= 1 {
		t.Errorf("SVM accuracy ratio = %v, want > 1", res.Ratio)
	}
	if res.Correct < 0 || res.Correct > res.K {
		t.Errorf("correct = %d out of k = %d", res.Correct, res.K)
	}
}

func TestEvaluateMetricConsistency(t *testing.T) {
	p, _ := prepFixture(t, 150)
	if p.K == 0 {
		t.Skip("no ground truth edges in sampled universe")
	}
	opt := predict.DefaultOptions()
	res := p.EvaluateMetric(predict.BRA, opt)
	if res.Ratio <= 1 {
		t.Errorf("BRA on sample ratio = %v, want > 1", res.Ratio)
	}
	// Determinism.
	res2 := p.EvaluateMetric(predict.BRA, opt)
	if res != res2 {
		t.Errorf("metric evaluation not deterministic: %+v vs %+v", res, res2)
	}
}

func TestSVMCoefficients(t *testing.T) {
	p, _ := prepFixture(t, 150)
	w, err := p.SVMCoefficients(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != len(p.FeatureNames) {
		t.Fatalf("got %d coefficients", len(w))
	}
	sum := 0.0
	for _, v := range w {
		if v < 0 {
			t.Errorf("coefficient %v negative after normalization", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("coefficients sum to %v, want 1", sum)
	}
}

func TestEvaluateScoresAndFilter(t *testing.T) {
	p, tr := prepFixture(t, 150)
	if p.K == 0 {
		t.Skip("no ground truth edges in sampled universe")
	}
	// Perfect oracle scores: rank truth pairs on top → ratio is maximal.
	scores := make([]float64, len(p.TestPairs))
	for i, pr := range p.TestPairs {
		if p.TruthTest[pr.Key()] {
			scores[i] = 1
		}
	}
	res, err := p.EvaluateScores(scores, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != p.K {
		t.Errorf("oracle correct = %d, want %d", res.Correct, p.K)
	}
	if _, err := p.EvaluateScores(scores[:1], 1, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	// Filtered evaluation keeps only passing pairs.
	tk := temporal.NewTracker(tr)
	fc := temporal.ConfigFor("renren")
	keep := p.FilterKeep(tk, fc)
	fres, err := p.EvaluateScores(scores, 1, keep)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Correct > res.Correct {
		t.Errorf("filtered oracle cannot beat oracle: %d > %d", fres.Correct, res.Correct)
	}
}

func TestPrepareRejectsBadCuts(t *testing.T) {
	cfg := gen.Facebook(1).Scaled(0.1)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	if _, err := Prepare(tr, cuts[2], cuts[1], cuts[3], 50, 0, predict.DefaultOptions()); err == nil {
		t.Error("non-increasing cuts accepted")
	}
}

// Package classify implements the paper's classification-based link
// prediction pipeline (§5): snowball sampling of the node set, extraction of
// the 14 similarity metrics as features for every sampled node pair,
// training on the G_{t-2} → G_{t-1} transition with undersampling, and
// top-k evaluation on the G_{t-1} → G_t transition. The same prepared
// instance also evaluates metric-based algorithms on the identical sampled
// universe, enabling the Figure 11 comparison, and exposes SVM coefficients
// for Figure 12.
package classify

import (
	"fmt"
	"math"
	"sort"

	"linkpred/internal/graph"
	"linkpred/internal/ml"
	"linkpred/internal/predict"
	"linkpred/internal/temporal"
)

// Snowball samples nodes from g by breadth-first search from seed until
// target nodes are visited (Goodman [12]); if the seed's component is
// exhausted, the walk restarts from the lowest-ID unvisited node, keeping
// the procedure deterministic. The returned set is sorted by node ID.
func Snowball(g *graph.Graph, target int, seed graph.NodeID) []graph.NodeID {
	n := g.NumNodes()
	if target > n {
		target = n
	}
	if target <= 0 || n == 0 {
		return nil
	}
	visited := make([]bool, n)
	out := make([]graph.NodeID, 0, target)
	queue := make([]graph.NodeID, 0, target)
	visit := func(v graph.NodeID) {
		visited[v] = true
		out = append(out, v)
		queue = append(queue, v)
	}
	if int(seed) >= n {
		seed = graph.NodeID(int(seed) % n)
	}
	visit(seed)
	nextUnvisited := graph.NodeID(0)
	for len(out) < target {
		if len(queue) == 0 {
			for int(nextUnvisited) < n && visited[nextUnvisited] {
				nextUnvisited++
			}
			if int(nextUnvisited) >= n {
				break
			}
			visit(nextUnvisited)
			continue
		}
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(v) {
			if !visited[w] {
				visit(w)
				if len(out) >= target {
					break
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Prepared holds one classification evaluation instance: sampled node sets,
// feature matrices for training and testing pairs, and the ground truth of
// the test transition.
type Prepared struct {
	// GTrain is G_{t-2}, GTest is G_{t-1}.
	GTrain, GTest *graph.Graph
	// TestTime is the timestamp of G_{t-1}, used by temporal filtering.
	TestTime int64
	// FeatureNames are the metric names, in feature-column order.
	FeatureNames []string
	// TrainPairs/TrainX/TrainY: unconnected sampled pairs in G_{t-2}
	// labeled by connection in G_{t-1}.
	TrainPairs []predict.Pair
	TrainX     [][]float64
	TrainY     []int
	// TestPairs/TestX: unconnected sampled pairs in G_{t-1}; TruthTest
	// marks those that connect in G_t.
	TestPairs []predict.Pair
	TestX     [][]float64
	TruthTest map[uint64]bool
	// K is the ground-truth new-edge count within the sampled universe.
	K int
}

// samplePairs enumerates the unconnected pairs among nodes on g.
func samplePairs(g *graph.Graph, nodes []graph.NodeID) []predict.Pair {
	var pairs []predict.Pair
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			if !g.HasEdge(u, v) {
				pairs = append(pairs, predict.Pair{U: u, V: v})
			}
		}
	}
	return pairs
}

// featureMatrix runs every metric's ScorePairs over the pairs. Each raw
// score is passed through the signed logarithm sign(x)·log(1+|x|): the
// similarity metrics span six orders of magnitude (PA in the tens of
// thousands, LRW around 1e-4) with extremely heavy tails, and compressing
// them keeps margin-based classifiers from being dominated by outlier
// pairs. The transform is monotone per feature, so single-metric rankings
// (and therefore the Figure 11 comparison) are unaffected.
func featureMatrix(g *graph.Graph, pairs []predict.Pair, algs []predict.Algorithm, opt predict.Options) [][]float64 {
	x := make([][]float64, len(pairs))
	for i := range x {
		x[i] = make([]float64, len(algs))
	}
	for j, alg := range algs {
		scores := alg.ScorePairs(g, pairs, opt)
		for i, s := range scores {
			x[i][j] = math.Copysign(math.Log1p(math.Abs(s)), s)
		}
	}
	return x
}

// Prepare builds the instance for the three consecutive snapshot cuts
// (train, test, eval) of a trace, snowball-sampling sampleTarget nodes with
// the given seed node.
func Prepare(tr *graph.Trace, cutTrain, cutTest, cutEval graph.SnapshotCut, sampleTarget int, seed graph.NodeID, opt predict.Options) (*Prepared, error) {
	if !(cutTrain.EdgeCount < cutTest.EdgeCount && cutTest.EdgeCount < cutEval.EdgeCount) {
		return nil, fmt.Errorf("classify: cuts must be strictly increasing: %v %v %v", cutTrain, cutTest, cutEval)
	}
	gTrain := tr.SnapshotAtEdge(cutTrain.EdgeCount)
	gTest := tr.SnapshotAtEdge(cutTest.EdgeCount)

	algs := predict.FeatureSet()
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = a.Name()
	}
	p := &Prepared{
		GTrain:       gTrain,
		GTest:        gTest,
		TestTime:     cutTest.Time,
		FeatureNames: names,
	}

	// Training side: sample on G_{t-2}, label by G_{t-1}.
	trainNodes := Snowball(gTrain, sampleTarget, seed)
	p.TrainPairs = samplePairs(gTrain, trainNodes)
	p.TrainX = featureMatrix(gTrain, p.TrainPairs, algs, opt)
	p.TrainY = make([]int, len(p.TrainPairs))
	for i, pr := range p.TrainPairs {
		if gTest.HasEdge(pr.U, pr.V) {
			p.TrainY[i] = 1
		}
	}

	// Test side: sample on G_{t-1} with the same seed, label by G_t.
	testNodes := Snowball(gTest, sampleTarget, seed)
	p.TestPairs = samplePairs(gTest, testNodes)
	p.TestX = featureMatrix(gTest, p.TestPairs, algs, opt)
	truth := predict.TruthSet(gTest, tr.NewEdgesBetween(cutTest, cutEval))
	p.TruthTest = make(map[uint64]bool)
	for _, pr := range p.TestPairs {
		if truth[pr.Key()] {
			p.TruthTest[pr.Key()] = true
		}
	}
	p.K = len(p.TruthTest)
	return p, nil
}

// Result is one evaluation outcome on the sampled universe.
type Result struct {
	// Correct is the overlap between the top-k prediction and the truth.
	Correct int
	// K is the prediction budget (= ground-truth count).
	K int
	// Ratio is the accuracy ratio against random prediction *within the
	// sampled pair universe*: correct / (k²/U) with U = |TestPairs|.
	Ratio float64
	// Accuracy is the absolute top-k precision, correct/k.
	Accuracy float64
}

func (p *Prepared) result(correct int) Result {
	r := Result{Correct: correct, K: p.K}
	if p.K > 0 {
		r.Accuracy = float64(correct) / float64(p.K)
		expected := float64(p.K) * float64(p.K) / float64(len(p.TestPairs))
		if expected > 0 {
			r.Ratio = float64(correct) / expected
		}
	}
	return r
}

// rankTopK selects the k best test pairs by score with the deterministic
// tie-break, optionally restricted by keep (nil = no filter).
func (p *Prepared) rankTopK(scores []float64, seed int64, keep func(predict.Pair) bool) []predict.Pair {
	top := predict.NewRanker(p.K, seed)
	for i, pr := range p.TestPairs {
		if keep != nil && !keep(pr) {
			continue
		}
		top.Add(pr.U, pr.V, scores[i])
	}
	return top.Result()
}

// scoreAndCount ranks and counts correct predictions.
func (p *Prepared) scoreAndCount(scores []float64, seed int64, keep func(predict.Pair) bool) Result {
	pred := p.rankTopK(scores, seed, keep)
	return p.result(predict.CountCorrect(pred, p.TruthTest))
}

// EvaluateClassifier trains clf on the undersampled training set (θ = 1 :
// ratio) and evaluates top-k selection over the test pairs. The classifier
// is mutated (fitted); pass a fresh instance per call.
func (p *Prepared) EvaluateClassifier(clf ml.Classifier, ratio float64, seed int64) (Result, error) {
	res, _, err := p.evaluateClassifier(clf, ratio, seed, nil)
	return res, err
}

// EvaluateClassifierFiltered is EvaluateClassifier with the §6 temporal
// filter applied to the candidate pairs before ranking.
func (p *Prepared) EvaluateClassifierFiltered(clf ml.Classifier, ratio float64, seed int64, tk *temporal.Tracker, fc temporal.FilterConfig) (Result, error) {
	res, _, err := p.evaluateClassifier(clf, ratio, seed, func(pr predict.Pair) bool {
		return tk.Pass(p.GTest, pr.U, pr.V, p.TestTime, fc)
	})
	return res, err
}

func (p *Prepared) evaluateClassifier(clf ml.Classifier, ratio float64, seed int64, keep func(predict.Pair) bool) (Result, ml.Classifier, error) {
	train := ml.Undersample(&ml.Dataset{X: p.TrainX, Y: p.TrainY}, ratio, seed)
	if train.CountClass(1) == 0 {
		return Result{}, nil, fmt.Errorf("classify: no positive training pairs in sample")
	}
	if err := clf.Fit(train); err != nil {
		return Result{}, nil, err
	}
	scores := make([]float64, len(p.TestPairs))
	for i, row := range p.TestX {
		scores[i] = clf.Score(row)
	}
	return p.scoreAndCount(scores, seed, keep), clf, nil
}

// SVMCoefficients trains an SVM at the given undersampling ratio and
// returns the normalized absolute feature weights (summing to 1), keyed by
// FeatureNames order — the Figure 12 analysis.
func (p *Prepared) SVMCoefficients(ratio float64, seed int64) ([]float64, error) {
	svm := ml.NewSVM(seed)
	train := ml.Undersample(&ml.Dataset{X: p.TrainX, Y: p.TrainY}, ratio, seed)
	if train.CountClass(1) == 0 {
		return nil, fmt.Errorf("classify: no positive training pairs in sample")
	}
	if err := svm.Fit(train); err != nil {
		return nil, err
	}
	w := svm.Weights()
	sum := 0.0
	for i := range w {
		if w[i] < 0 {
			w[i] = -w[i]
		}
		sum += w[i]
	}
	if sum > 0 {
		for i := range w {
			w[i] /= sum
		}
	}
	return w, nil
}

// EvaluateMetric scores the test pairs with a single metric-based algorithm
// on the same sampled universe (the Figure 11 comparison).
func (p *Prepared) EvaluateMetric(alg predict.Algorithm, opt predict.Options) Result {
	scores := alg.ScorePairs(p.GTest, p.TestPairs, opt)
	return p.scoreAndCount(scores, opt.Seed, nil)
}

// EvaluateMetricFiltered is EvaluateMetric with the temporal filter.
func (p *Prepared) EvaluateMetricFiltered(alg predict.Algorithm, opt predict.Options, tk *temporal.Tracker, fc temporal.FilterConfig) Result {
	scores := alg.ScorePairs(p.GTest, p.TestPairs, opt)
	return p.scoreAndCount(scores, opt.Seed, func(pr predict.Pair) bool {
		return tk.Pass(p.GTest, pr.U, pr.V, p.TestTime, fc)
	})
}

// EvaluateScores ranks externally computed scores for the test pairs (used
// by the time-series methods of §6.3). keep may be nil.
func (p *Prepared) EvaluateScores(scores []float64, seed int64, keep func(predict.Pair) bool) (Result, error) {
	if len(scores) != len(p.TestPairs) {
		return Result{}, fmt.Errorf("classify: %d scores for %d test pairs", len(scores), len(p.TestPairs))
	}
	return p.scoreAndCount(scores, seed, keep), nil
}

// FilterKeep returns a keep-function for EvaluateScores backed by the
// temporal filter.
func (p *Prepared) FilterKeep(tk *temporal.Tracker, fc temporal.FilterConfig) func(predict.Pair) bool {
	return func(pr predict.Pair) bool {
		return tk.Pass(p.GTest, pr.U, pr.V, p.TestTime, fc)
	}
}

package timeseries

import (
	"math"
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

func TestExtrapolate(t *testing.T) {
	// Perfect line 1,2,3 → next is 4.
	if got := extrapolate([]float64{1, 2, 3}); math.Abs(got-4) > 1e-12 {
		t.Errorf("extrapolate = %v, want 4", got)
	}
	// Constant series stays constant.
	if got := extrapolate([]float64{5, 5, 5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("extrapolate constant = %v, want 5", got)
	}
	// Single point.
	if got := extrapolate([]float64{7}); got != 7 {
		t.Errorf("extrapolate single = %v, want 7", got)
	}
}

func TestMean(t *testing.T) {
	if got := mean([]float64{1, 2, 3, 6}); math.Abs(got-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", got)
	}
}

func TestMethodString(t *testing.T) {
	if MA.String() != "MA" || LR.String() != "LR" {
		t.Errorf("method names: %v %v", MA, LR)
	}
	if Method(9).String() == "" {
		t.Error("unknown method should still render")
	}
}

func TestScoresOnTrace(t *testing.T) {
	cfg := gen.Facebook(41).Scaled(0.1)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	idx := len(cuts) - 2
	g := tr.SnapshotAtEdge(cuts[idx].EdgeCount)
	opt := predict.DefaultOptions()

	// A handful of unconnected 2-hop pairs from the newest snapshot.
	var pairs []predict.Pair
	for u := graph.NodeID(0); int(u) < g.NumNodes() && len(pairs) < 30; u++ {
		for _, w := range g.Neighbors(u) {
			done := false
			for _, v := range g.Neighbors(w) {
				if v > u && !g.HasEdge(u, v) {
					pairs = append(pairs, predict.Pair{U: u, V: v})
					done = true
					break
				}
			}
			if done {
				break
			}
		}
	}
	if len(pairs) == 0 {
		t.Fatal("no candidate pairs")
	}

	maScores, err := Scores(tr, cuts, idx, 4, predict.CN, pairs, MA, opt)
	if err != nil {
		t.Fatal(err)
	}
	lrScores, err := Scores(tr, cuts, idx, 4, predict.CN, pairs, LR, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(maScores) != len(pairs) || len(lrScores) != len(pairs) {
		t.Fatal("score length mismatch")
	}
	// The MA of CN counts over growing snapshots is at most the current CN
	// count (monotone densification) and nonnegative.
	now := predict.CN.ScorePairs(g, pairs, opt)
	for i := range pairs {
		if maScores[i] < 0 || maScores[i] > now[i]+1e-9 {
			t.Errorf("pair %d: MA = %v, current CN = %v", i, maScores[i], now[i])
		}
	}
	// Window of 1 equals the plain metric.
	one, err := Scores(tr, cuts, idx, 1, predict.CN, pairs, MA, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if math.Abs(one[i]-now[i]) > 1e-9 {
			t.Errorf("window-1 MA %v != plain %v", one[i], now[i])
		}
	}
}

func TestScoresErrors(t *testing.T) {
	cfg := gen.Facebook(41).Scaled(0.1)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	opt := predict.DefaultOptions()
	pairs := []predict.Pair{{U: 0, V: 2}}
	if _, err := Scores(tr, cuts, -1, 3, predict.CN, pairs, MA, opt); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := Scores(tr, cuts, 2, 0, predict.CN, pairs, MA, opt); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := Scores(tr, cuts, 2, 3, predict.CN, pairs, Method(42), opt); err == nil {
		t.Error("unknown method accepted")
	}
	// Window longer than history shortens gracefully.
	if _, err := Scores(tr, cuts, 1, 10, predict.CN, pairs, MA, opt); err != nil {
		t.Errorf("long window: %v", err)
	}
}

// Package timeseries implements the time-series link prediction baseline
// the paper compares its temporal filters against (§6.3, da Silva Soares &
// Prudêncio [10]): a pair's similarity metric is computed at equally spaced
// past time points, and the per-pair series is aggregated into a final
// score by Moving Average (MA) or Linear Regression (LR) extrapolation.
package timeseries

import (
	"fmt"

	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// Method selects the aggregation of the per-pair score series.
type Method int

const (
	// MA scores a pair by the mean of its past metric scores; the paper
	// finds MA the stronger of the two aggregations.
	MA Method = iota
	// LR fits a least-squares line to the series and extrapolates one step
	// beyond the newest snapshot.
	LR
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MA:
		return "MA"
	case LR:
		return "LR"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Scores computes aggregated time-series scores for the candidate pairs.
// The series uses `window` snapshots at the cuts ending at cuts[cutIdx]
// (the prediction snapshot G_{t-1}); when cutIdx has fewer predecessors the
// series shortens accordingly. Pairs whose endpoints do not exist yet in a
// past snapshot contribute a zero score at that time point, matching the
// method's "no similarity before arrival" convention.
func Scores(tr *graph.Trace, cuts []graph.SnapshotCut, cutIdx, window int, alg predict.Algorithm, pairs []predict.Pair, method Method, opt predict.Options) ([]float64, error) {
	if cutIdx < 0 || cutIdx >= len(cuts) {
		return nil, fmt.Errorf("timeseries: cut index %d out of range [0,%d)", cutIdx, len(cuts))
	}
	if window < 1 {
		return nil, fmt.Errorf("timeseries: window %d < 1", window)
	}
	if window > cutIdx+1 {
		window = cutIdx + 1
	}
	series := make([][]float64, window) // series[j] = scores at j-th oldest point
	for j := 0; j < window; j++ {
		cut := cuts[cutIdx-(window-1)+j]
		g := tr.SnapshotAtEdge(cut.EdgeCount)
		n := graph.NodeID(g.NumNodes())
		// Score only pairs whose endpoints exist at this time point.
		var valid []predict.Pair
		var validIdx []int
		for i, p := range pairs {
			if p.U < n && p.V < n {
				valid = append(valid, p)
				validIdx = append(validIdx, i)
			}
		}
		col := make([]float64, len(pairs))
		if len(valid) > 0 {
			scores := alg.ScorePairs(g, valid, opt)
			for k, i := range validIdx {
				col[i] = scores[k]
			}
		}
		series[j] = col
	}
	out := make([]float64, len(pairs))
	buf := make([]float64, window)
	for i := range pairs {
		for j := 0; j < window; j++ {
			buf[j] = series[j][i]
		}
		switch method {
		case MA:
			out[i] = mean(buf)
		case LR:
			out[i] = extrapolate(buf)
		default:
			return nil, fmt.Errorf("timeseries: unknown method %v", method)
		}
	}
	return out, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// extrapolate fits y = a + b·j over j = 0..w-1 and returns the prediction
// at j = w (one step past the newest point). A single point extrapolates to
// itself.
func extrapolate(xs []float64) float64 {
	w := len(xs)
	if w == 1 {
		return xs[0]
	}
	n := float64(w)
	var sj, sy, sjj, sjy float64
	for j, y := range xs {
		fj := float64(j)
		sj += fj
		sy += y
		sjj += fj * fj
		sjy += fj * y
	}
	den := n*sjj - sj*sj
	if den == 0 {
		return mean(xs)
	}
	b := (n*sjy - sj*sy) / den
	a := (sy - b*sj) / n
	return a + b*n
}

package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"linkpred/internal/graph"
)

func triangle() *graph.Graph {
	return graph.Build(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}})
}

func path(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = graph.Edge{U: graph.NodeID(i), V: graph.NodeID(i + 1), Time: int64(i)}
	}
	return graph.Build(n, edges)
}

func star(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := 1; i < n; i++ {
		edges[i-1] = graph.Edge{U: 0, V: graph.NodeID(i), Time: int64(i)}
	}
	return graph.Build(n, edges)
}

func TestDegrees(t *testing.T) {
	g := star(5) // degrees: 4,1,1,1,1
	ds := Degrees(g)
	if math.Abs(ds.Avg-8.0/5.0) > 1e-12 {
		t.Errorf("Avg = %v, want 1.6", ds.Avg)
	}
	if ds.Max != 4 {
		t.Errorf("Max = %d, want 4", ds.Max)
	}
	if ds.Median != 1 {
		t.Errorf("Median = %d, want 1", ds.Median)
	}
	if Degrees(graph.Build(0, nil)) != (DegreeStats{}) {
		t.Error("empty graph should produce zero stats")
	}
}

func TestClusteringExact(t *testing.T) {
	if c := Clustering(triangle(), 0, 1); math.Abs(c-1) > 1e-12 {
		t.Errorf("triangle clustering = %v, want 1", c)
	}
	if c := Clustering(path(5), 0, 1); c != 0 {
		t.Errorf("path clustering = %v, want 0", c)
	}
	// Square plus one diagonal: nodes 0-1-2-3-0 and 0-2.
	g := graph.Build(4, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}, {U: 0, V: 2},
	})
	// c(0)=c(2)= 2/3*... deg 3 → pairs 3, links 2 → 2/3; c(1)=c(3)=1 (deg 2, neighbors 0,2 linked).
	want := (2.0/3.0 + 2.0/3.0 + 1 + 1) / 4
	if c := Clustering(g, 0, 1); math.Abs(c-want) > 1e-12 {
		t.Errorf("clustering = %v, want %v", c, want)
	}
}

func TestAvgPathLength(t *testing.T) {
	// Path of 3 nodes: distances 1,1,2 in each direction; BFS from all
	// sources: pairs (0→1)=1,(0→2)=2,(1→0)=1,(1→2)=1,(2→1)=1,(2→0)=2; avg = 8/6.
	g := path(3)
	got := AvgPathLength(g, 3, 1)
	if math.Abs(got-8.0/6.0) > 1e-12 {
		t.Errorf("AvgPathLength = %v, want %v", got, 8.0/6.0)
	}
	if AvgPathLength(graph.Build(1, nil), 1, 1) != 0 {
		t.Error("single node path length should be 0")
	}
}

func TestAssortativitySign(t *testing.T) {
	// Star: maximally disassortative.
	if a := Assortativity(star(20)); a >= 0 {
		t.Errorf("star assortativity = %v, want < 0", a)
	}
	// Two disjoint cliques of different sizes: every node connects to
	// equal-degree nodes → assortativity degenerate (all variance within
	// group); a ring has zero variance → returns 0.
	ring := graph.Build(6, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0},
	})
	if a := Assortativity(ring); a != 0 {
		t.Errorf("ring assortativity = %v, want 0 (degenerate)", a)
	}
}

func TestLambda2(t *testing.T) {
	// prev: path 0-1-2. New edges: (0,2) is a 2-hop pair; (0,3) involves an
	// unseen node; adding (0,1) is already connected.
	prev := path(3)
	newEdges := []graph.Edge{
		{U: 0, V: 2}, // 2-hop
		{U: 0, V: 3}, // node 3 not in prev: skipped
		{U: 0, V: 1}, // already connected: skipped
	}
	if l := Lambda2(prev, newEdges); math.Abs(l-1) > 1e-12 {
		t.Errorf("Lambda2 = %v, want 1", l)
	}
	// Distant pair: 0-1-2-3-4 path, new edge (0,4) is 4 hops.
	prev5 := path(5)
	if l := Lambda2(prev5, []graph.Edge{{U: 0, V: 4}}); l != 0 {
		t.Errorf("Lambda2 = %v, want 0", l)
	}
	if l := Lambda2(prev5, nil); l != 0 {
		t.Errorf("Lambda2(no edges) = %v, want 0", l)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if p := Pearson(x, []float64{2, 4, 6, 8}); math.Abs(p-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", p)
	}
	if p := Pearson(x, []float64{8, 6, 4, 2}); math.Abs(p+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", p)
	}
	if p := Pearson(x, []float64{5, 5, 5, 5}); p != 0 {
		t.Errorf("Pearson with constant series = %v, want 0", p)
	}
	if p := Pearson(x, []float64{1}); p != 0 {
		t.Errorf("Pearson with mismatched lengths = %v, want 0", p)
	}
}

func TestDegreeCCDF(t *testing.T) {
	g := star(5)
	degs, frac := DegreeCCDF(g, []graph.NodeID{0, 1, 2, 3, 4})
	// Degrees sorted: 1,1,1,1,4 → thresholds 1 (frac 1.0) and 4 (frac 0.2).
	if len(degs) != 2 || degs[0] != 1 || degs[1] != 4 {
		t.Fatalf("degs = %v", degs)
	}
	if math.Abs(frac[0]-1) > 1e-12 || math.Abs(frac[1]-0.2) > 1e-12 {
		t.Fatalf("frac = %v", frac)
	}
	if d, f := DegreeCCDF(g, nil); d != nil || f != nil {
		t.Error("empty node list should produce nil CCDF")
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		p := Pearson(x, y)
		q := Pearson(y, x)
		return math.Abs(p-q) < 1e-9 && p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: assortativity and clustering stay within their valid ranges on
// random graphs.
func TestRangesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		var edges []graph.Edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, graph.Edge{
				U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n)), Time: int64(i),
			})
		}
		g := graph.Build(n, edges)
		a := Assortativity(g)
		c := Clustering(g, 0, seed)
		return a >= -1-1e-9 && a <= 1+1e-9 && c >= 0 && c <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFeatures(t *testing.T) {
	g := star(30)
	f := Features(g, 50, 1)
	if len(f) != len(FeatureNames) {
		t.Fatalf("feature vector length %d != %d names", len(f), len(FeatureNames))
	}
	if f[0] != 30 || f[1] != 29 {
		t.Errorf("node/edge features = %v, %v", f[0], f[1])
	}
	if f[9] >= 0 {
		t.Errorf("star assortativity feature = %v, want negative", f[9])
	}
}

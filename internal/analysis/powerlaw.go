package analysis

import (
	"math"
	"sort"

	"linkpred/internal/graph"
)

// Spearman returns the Spearman rank correlation of two equal-length
// series (Pearson correlation of their average ranks). Used to compare
// algorithm orderings across experiment instances.
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	return Pearson(averageRanks(x), averageRanks(y))
}

// averageRanks converts values into 1-based ranks, with ties sharing the
// mean rank.
func averageRanks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	ranks := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && v[idx[j]] == v[idx[i]] {
			j++
		}
		mean := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mean
		}
		i = j
	}
	return ranks
}

// PowerLawAlpha estimates the exponent of a power-law degree distribution
// P(k) ∝ k^-α by the discrete maximum-likelihood estimator (Clauset-style
// with the 1/2 continuity correction), over nodes with degree >= kmin.
// Returns 0 when fewer than two nodes qualify. Heavy-tailed (subscription)
// networks yield small α (2-3); homogeneous networks yield large values.
func PowerLawAlpha(g *graph.Graph, kmin int) float64 {
	if kmin < 1 {
		kmin = 1
	}
	var sum float64
	n := 0
	for u := 0; u < g.NumNodes(); u++ {
		d := g.Degree(graph.NodeID(u))
		if d >= kmin {
			sum += math.Log(float64(d) / (float64(kmin) - 0.5))
			n++
		}
	}
	if n < 2 || sum == 0 {
		return 0
	}
	return 1 + float64(n)/sum
}

// DegreeHistogram returns the count of nodes at each degree, as parallel
// ascending-degree slices.
func DegreeHistogram(g *graph.Graph) (degrees []int, counts []int) {
	h := map[int]int{}
	for u := 0; u < g.NumNodes(); u++ {
		h[g.Degree(graph.NodeID(u))]++
	}
	for d := range h {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = h[d]
	}
	return degrees, counts
}

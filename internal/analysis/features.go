package analysis

import "linkpred/internal/graph"

// FeatureNames lists, in order, the snapshot features fed to the §4.3
// algorithm-choosing decision tree: node count, edge count, degree
// statistics, clustering coefficient, average path length, and assortativity.
var FeatureNames = []string{
	"nodes",
	"edges",
	"deg_avg",
	"deg_std",
	"deg_median",
	"deg_p90",
	"deg_p99",
	"clustering",
	"avg_path_len",
	"assortativity",
}

// Features computes the FeatureNames vector for a snapshot. sample bounds
// the node sample used for the clustering and path-length estimates (<= 0
// means a default of 200 sources).
func Features(g *graph.Graph, sample int, seed int64) []float64 {
	if sample <= 0 {
		sample = 200
	}
	ds := Degrees(g)
	return []float64{
		float64(g.NumNodes()),
		float64(g.NumEdges()),
		ds.Avg,
		ds.Std,
		float64(ds.Median),
		float64(ds.P90),
		float64(ds.P99),
		Clustering(g, sample, seed),
		AvgPathLength(g, min(sample/4+1, 64), seed),
		Assortativity(g),
	}
}

// Package analysis measures the structural network properties the paper uses
// throughout: degree statistics, clustering coefficient, average path length,
// degree assortativity, the 2-hop edge ratio λ₂ (§4.2), and the snapshot
// feature vectors that feed the algorithm-choosing decision tree of §4.3.
package analysis

import (
	"math"
	"math/rand"
	"sort"

	"linkpred/internal/graph"
)

// DegreeStats summarizes a snapshot's degree distribution.
type DegreeStats struct {
	Avg, Std              float64
	Median, P90, P99, Max int
}

// Degrees computes degree statistics for g.
func Degrees(g *graph.Graph) DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	ds := make([]int, n)
	sum := 0.0
	for u := 0; u < n; u++ {
		d := g.Degree(graph.NodeID(u))
		ds[u] = d
		sum += float64(d)
	}
	sort.Ints(ds)
	avg := sum / float64(n)
	varSum := 0.0
	for _, d := range ds {
		diff := float64(d) - avg
		varSum += diff * diff
	}
	pct := func(p float64) int { return ds[min(n-1, int(p*float64(n)))] }
	return DegreeStats{
		Avg:    avg,
		Std:    math.Sqrt(varSum / float64(n)),
		Median: pct(0.5),
		P90:    pct(0.9),
		P99:    pct(0.99),
		Max:    ds[n-1],
	}
}

// DegreeCCDF returns, for each degree threshold d in ascending order, the
// fraction of the given nodes with degree >= d. Used for Fig. 7's degree
// distribution of predicted-edge endpoints.
func DegreeCCDF(g *graph.Graph, nodes []graph.NodeID) (degrees []int, frac []float64) {
	if len(nodes) == 0 {
		return nil, nil
	}
	ds := make([]int, len(nodes))
	for i, v := range nodes {
		ds[i] = g.Degree(v)
	}
	sort.Ints(ds)
	n := len(ds)
	for i := 0; i < n; {
		j := i
		for j < n && ds[j] == ds[i] {
			j++
		}
		degrees = append(degrees, ds[i])
		frac = append(frac, float64(n-i)/float64(n))
		i = j
	}
	return degrees, frac
}

// Clustering returns the average local clustering coefficient. When
// sampleSize > 0 and smaller than the node count, a deterministic random
// sample of nodes is measured instead of all nodes (the paper's graphs make
// exact computation impractical; ours usually don't, but the harness samples
// for speed on the largest snapshots).
func Clustering(g *graph.Graph, sampleSize int, seed int64) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	nodes := allNodes(n)
	if sampleSize > 0 && sampleSize < n {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(n, func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
		nodes = nodes[:sampleSize]
	}
	sum := 0.0
	counted := 0
	for _, u := range nodes {
		d := g.Degree(u)
		if d < 2 {
			counted++ // contributes 0, matching the usual convention
			continue
		}
		links := 0
		nb := g.Neighbors(u)
		for i, w := range nb {
			for _, x := range nb[i+1:] {
				if g.HasEdge(w, x) {
					links++
				}
			}
		}
		sum += 2 * float64(links) / (float64(d) * float64(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// AvgPathLength estimates the mean shortest-path length over reachable pairs
// by BFS from a deterministic sample of source nodes.
func AvgPathLength(g *graph.Graph, sources int, seed int64) float64 {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	nodes := allNodes(n)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	if sources > n {
		sources = n
	}
	dist := make([]int32, n)
	var queue []graph.NodeID
	total, pairs := 0.0, 0
	for _, src := range nodes[:sources] {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
		for v := 0; v < n; v++ {
			if dist[v] > 0 {
				total += float64(dist[v])
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// Assortativity computes the degree assortativity coefficient (Pearson
// correlation of degrees across edge endpoints, counting each undirected
// edge in both directions as is standard).
func Assortativity(g *graph.Graph) float64 {
	var sx, sy, sxx, syy, sxy float64
	m := 0
	for u := 0; u < g.NumNodes(); u++ {
		du := float64(g.Degree(graph.NodeID(u)))
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			dv := float64(g.Degree(v))
			sx += du
			sy += dv
			sxx += du * du
			syy += dv * dv
			sxy += du * dv
			m++
		}
	}
	if m == 0 {
		return 0
	}
	fm := float64(m)
	cov := sxy/fm - (sx/fm)*(sy/fm)
	vx := sxx/fm - (sx/fm)*(sx/fm)
	vy := syy/fm - (sy/fm)*(sy/fm)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Lambda2 is the paper's λ₂: the fraction of new edges (with both endpoints
// existing in prev) whose endpoints were exactly two hops apart in prev,
// i.e. unconnected but sharing at least one common neighbor (§4.2).
func Lambda2(prev *graph.Graph, newEdges []graph.Edge) float64 {
	n := graph.NodeID(prev.NumNodes())
	total, twoHop := 0, 0
	for _, e := range newEdges {
		if e.U >= n || e.V >= n {
			continue // created by a node joining after prev
		}
		if prev.HasEdge(e.U, e.V) {
			continue
		}
		total++
		if prev.CountCommonNeighbors(e.U, e.V) > 0 {
			twoHop++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(twoHop) / float64(total)
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series, the statistic the paper uses to relate metric accuracy to λ₂.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func allNodes(n int) []graph.NodeID {
	nodes := make([]graph.NodeID, n)
	for i := range nodes {
		nodes[i] = graph.NodeID(i)
	}
	return nodes
}

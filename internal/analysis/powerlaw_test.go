package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"linkpred/internal/graph"
)

func TestSpearman(t *testing.T) {
	// Monotone transform preserves ranks exactly.
	x := []float64{1, 5, 3, 9, 7}
	y := []float64{10, 50, 30, 90, 70}
	if s := Spearman(x, y); math.Abs(s-1) > 1e-12 {
		t.Errorf("Spearman = %v, want 1", s)
	}
	rev := []float64{90, 50, 70, 10, 30}
	if s := Spearman(x, rev); math.Abs(s+1) > 1e-12 {
		t.Errorf("reversed Spearman = %v, want -1", s)
	}
	if s := Spearman(x, []float64{1}); s != 0 {
		t.Errorf("mismatched lengths = %v", s)
	}
	// Ties share mean ranks; all-equal series is degenerate → 0.
	if s := Spearman(x, []float64{2, 2, 2, 2, 2}); s != 0 {
		t.Errorf("constant series Spearman = %v", s)
	}
}

// Property: Spearman is invariant under any strictly increasing transform.
func TestSpearmanMonotoneInvarianceQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		base := Spearman(x, y)
		yT := make([]float64, n)
		for i := range y {
			yT[i] = math.Exp(y[i]) // strictly increasing
		}
		return math.Abs(Spearman(x, yT)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// powerLawGraph draws degrees from P(k) ∝ k^-alpha via inverse transform
// and builds a configuration-model-ish star forest realizing them
// approximately.
func powerLawGraph(alpha float64, n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var stubs []graph.NodeID
	for v := 0; v < n; v++ {
		u := rng.Float64()
		k := int(math.Pow(1-u, -1/(alpha-1))) // kmin = 1
		if k > n/2 {
			k = n / 2
		}
		for i := 0; i < k; i++ {
			stubs = append(stubs, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	var edges []graph.Edge
	for i := 0; i+1 < len(stubs); i += 2 {
		if stubs[i] != stubs[i+1] {
			edges = append(edges, graph.Edge{U: stubs[i], V: stubs[i+1], Time: int64(i)})
		}
	}
	return graph.Build(n, edges)
}

func TestPowerLawAlphaRecovers(t *testing.T) {
	// The stub-pairing construction dedupes multi-edges, so realized
	// degrees sit slightly below the drawn ones; accept a generous band
	// around the target exponent.
	g := powerLawGraph(2.5, 20000, 1)
	got := PowerLawAlpha(g, 2)
	if got < 1.7 || got > 3.3 {
		t.Errorf("alpha = %v, want near 2.5", got)
	}
	// Homogeneous graph (ring, every degree exactly 2): at kmin=2 the MLE
	// sees zero spread above kmin and returns a much larger exponent than
	// any heavy-tailed graph.
	ringEdges := make([]graph.Edge, 100)
	for i := 0; i < 100; i++ {
		ringEdges[i] = graph.Edge{U: graph.NodeID(i), V: graph.NodeID((i + 1) % 100), Time: int64(i)}
	}
	ring := graph.Build(100, ringEdges)
	if a := PowerLawAlpha(ring, 2); a < got {
		t.Errorf("ring alpha %v should exceed power-law alpha %v at kmin=2", a, got)
	}
	if a := PowerLawAlpha(graph.Build(1, nil), 1); a != 0 {
		t.Errorf("degenerate alpha = %v", a)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := graph.Build(4, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	degs, counts := DegreeHistogram(g)
	// Degrees present: 1 (x3) and 3 (x1).
	if len(degs) != 2 || degs[0] != 1 || degs[1] != 3 {
		t.Fatalf("degs = %v", degs)
	}
	if counts[0] != 3 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

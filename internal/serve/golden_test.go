package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"linkpred/internal/predict"
)

// goldenDoc is the checked-in end-to-end payload: the full top-k responses
// of three algorithm families after ingesting the seeded fixture over HTTP.
type goldenDoc struct {
	SnapshotSeq   int64              `json:"snapshot_seq"`
	SnapshotEdges int                `json:"snapshot_edges"`
	Nodes         int                `json:"nodes"`
	Results       map[string]*Result `json:"results"`
}

const goldenPath = "testdata/golden_predict.json"

// goldenRun drives the full HTTP path — chunked /ingest, /flush, /predict
// for a local, a bayesian, and a latent algorithm — and returns the
// serialized payload.
func goldenRun(t *testing.T, engineWorkers int) []byte {
	t.Helper()
	tr := testTrace(t)
	events := traceEvents(tr)
	opt := predict.DefaultOptions()
	opt.Workers = engineWorkers
	s := newTestServer(t, Config{
		SnapshotEvery: 1 << 20, // only /flush publishes, keeping seq deterministic
		Workers:       2,
		Opt:           opt,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body any) map[string]any {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("POST %s: decode: %v", path, err)
		}
		return out
	}

	// Ingest in three chunks, exercising incremental trace growth.
	third := len(events) / 3
	for _, chunk := range [][]Event{events[:third], events[third : 2*third], events[2*third:]} {
		out := post("/ingest", ingestRequest{Events: chunk})
		if out["rejected"].(float64) != 0 {
			t.Fatalf("ingest rejected %v events", out["rejected"])
		}
	}
	post("/flush", struct{}{})

	doc := goldenDoc{Results: make(map[string]*Result)}
	for _, alg := range []string{"CN", "AA", "Katz"} {
		resp, err := http.Get(fmt.Sprintf("%s/predict?alg=%s&k=25", ts.URL, alg))
		if err != nil {
			t.Fatalf("GET /predict %s: %v", alg, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("GET /predict %s: status %d", alg, resp.StatusCode)
		}
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			resp.Body.Close()
			t.Fatalf("GET /predict %s: decode: %v", alg, err)
		}
		resp.Body.Close()
		if len(res.Pairs) != 25 {
			t.Fatalf("%s returned %d pairs, want 25", alg, len(res.Pairs))
		}
		doc.Results[alg] = &res
		doc.SnapshotSeq = res.SnapshotSeq
		doc.SnapshotEdges = res.SnapshotEdges
	}
	doc.Nodes = s.Snapshot().Graph.NumNodes()

	raw, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(raw, '\n')
}

// TestGoldenEndToEnd pins the end-to-end serving output bit for bit: the
// seeded fixture ingested over HTTP and queried for CN, AA, and Katz top-25
// must reproduce the checked-in golden JSON exactly — at engine worker
// counts 1 and 4, which must agree with each other byte for byte (the
// engine's determinism contract, now observed through the server).
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/serve -run Golden.
func TestGoldenEndToEnd(t *testing.T) {
	got1 := goldenRun(t, 1)
	got4 := goldenRun(t, 4)
	if !bytes.Equal(got1, got4) {
		t.Fatal("engine workers 1 and 4 produced different payloads; the served output is worker-count dependent")
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got1))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got1, want) {
		t.Fatalf("served payload diverged from %s (regenerate with UPDATE_GOLDEN=1 if the change is intended)\ngot %d bytes, want %d", goldenPath, len(got1), len(want))
	}
}

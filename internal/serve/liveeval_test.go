package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"linkpred/internal/liveeval"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// simSet / prequentialSim independently re-implement the liveeval
// accounting from the *client's* view of the HTTP exchange: recorded
// /predict payloads and the ingest stream in external IDs. The integration
// test replays both sides and demands exact agreement, so a drift anywhere
// in the serve wiring (wrong epoch, wrong trace index, missed edge) shows
// up as a counter mismatch rather than a silently different series.
type simSet struct {
	epoch    int64
	minIndex int
	rank     map[[2]int64]int
}

type simStats struct {
	recorded  int64
	predicted int64
	scored    int64
	hits      int64
	rrSum     float64
}

type prequentialSim struct {
	topK, ring int
	sets       map[string][]*simSet
	stats      map[string]*simStats
}

func newPrequentialSim(topK, ring int) *prequentialSim {
	return &prequentialSim{topK: topK, ring: ring, sets: map[string][]*simSet{}, stats: map[string]*simStats{}}
}

func (ps *prequentialSim) stat(alg string) *simStats {
	st, ok := ps.stats[alg]
	if !ok {
		st = &simStats{}
		ps.stats[alg] = st
	}
	return st
}

func (ps *prequentialSim) record(alg string, epoch int64, snapEdges, traceLen int, pairs []PairScore) {
	if len(pairs) > ps.topK {
		pairs = pairs[:ps.topK]
	}
	for _, s := range ps.sets[alg] {
		if s.epoch == epoch {
			return
		}
	}
	minIndex := snapEdges
	if traceLen > minIndex {
		minIndex = traceLen
	}
	set := &simSet{epoch: epoch, minIndex: minIndex, rank: map[[2]int64]int{}}
	for i, p := range pairs {
		u, v := p.U, p.V
		if u > v {
			u, v = v, u
		}
		if _, dup := set.rank[[2]int64{u, v}]; !dup {
			set.rank[[2]int64{u, v}] = i + 1
		}
	}
	ps.sets[alg] = append(ps.sets[alg], set)
	if len(ps.sets[alg]) > ps.ring {
		ps.sets[alg] = ps.sets[alg][1:]
	}
	st := ps.stat(alg)
	st.recorded++
	st.predicted += int64(len(pairs))
}

func (ps *prequentialSim) observe(u, v int64, traceIndex int) {
	if u > v {
		u, v = v, u
	}
	for alg, sets := range ps.sets {
		var set *simSet
		for i := len(sets) - 1; i >= 0; i-- {
			if sets[i].minIndex <= traceIndex {
				set = sets[i]
				break
			}
		}
		if set == nil {
			continue
		}
		st := ps.stat(alg)
		st.scored++
		if r, ok := set.rank[[2]int64{u, v}]; ok {
			delete(set.rank, [2]int64{u, v})
			st.hits++
			st.rrSum += 1 / float64(r)
		}
	}
}

// liveevalRun drives the fixture trace through the full HTTP path with a
// prequential engine attached: ingest half, flush, predict three algorithm
// families (epoch 1), ingest a quarter, flush, predict again (epoch 2),
// ingest the rest. Returns the engine's stats and the client-side
// simulation's expectations.
func liveevalRun(t *testing.T, engineWorkers int) (map[string]liveeval.AlgStats, map[string]*simStats) {
	t.Helper()
	const topK = 50
	eval := liveeval.New(liveeval.Config{TopK: topK, Ring: 4, Window: 256, HalfLife: 64})
	opt := predict.DefaultOptions()
	opt.Workers = engineWorkers
	s := newTestServer(t, Config{
		SnapshotEvery: 1 << 20, // only /flush publishes
		Workers:       2,
		Opt:           opt,
		Eval:          eval,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	events := traceEvents(testTrace(t))
	sim := newPrequentialSim(topK, 4)
	ingested := 0

	ingest := func(evs []Event) {
		t.Helper()
		raw, _ := json.Marshal(ingestRequest{Events: evs})
		resp, err := http.Post(ts.URL+"/ingest", "application/json", strings.NewReader(string(raw)))
		if err != nil {
			t.Fatalf("ingest: %v", err)
		}
		var out ingestResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("ingest decode: %v", err)
		}
		resp.Body.Close()
		if out.Rejected != 0 || out.Accepted != len(evs) {
			t.Fatalf("ingest accepted=%d rejected=%d of %d", out.Accepted, out.Rejected, len(evs))
		}
		for _, ev := range evs {
			sim.observe(ev.U, ev.V, ingested)
			ingested++
		}
	}
	flush := func() {
		t.Helper()
		resp, err := http.Post(ts.URL+"/flush", "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatalf("flush: %v", err)
		}
		resp.Body.Close()
	}
	predictReq := func(alg string) {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/predict?alg=%s&k=%d", ts.URL, alg, topK))
		if err != nil {
			t.Fatalf("predict %s: %v", alg, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("predict %s: status %d", alg, resp.StatusCode)
		}
		var res Result
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatalf("predict %s decode: %v", alg, err)
		}
		resp.Body.Close()
		if res.Degraded {
			t.Fatalf("predict %s unexpectedly degraded", alg)
		}
		sim.record(res.ServedBy, res.SnapshotSeq, res.SnapshotEdges, ingested, res.Pairs)
	}

	half := len(events) / 2
	threeQ := len(events) * 3 / 4
	algs := []string{"CN", "AA", "Katz"}

	ingest(events[:half])
	flush()
	for _, alg := range algs {
		predictReq(alg)
	}
	ingest(events[half:threeQ])
	flush()
	for _, alg := range algs {
		predictReq(alg)
	}
	ingest(events[threeQ:])

	return eval.All(), sim.stats
}

// TestLiveEvalEndToEnd is the acceptance test for the prequential loop: a
// known trace driven through HTTP produces (a) exactly the hit accounting
// an independent client-side simulation predicts, and (b) bit-identical
// statistics at engine worker counts 1 and 4 (the engine's worker-
// invariant top-k makes the whole prequential series deterministic). It
// runs in CI's race matrix.
func TestLiveEvalEndToEnd(t *testing.T) {
	obs.Reset()
	obs.Enable(true)
	defer func() {
		obs.Enable(false)
		obs.Reset()
	}()

	got1, sim := liveevalRun(t, 1)
	totalHits := int64(0)
	for alg, want := range sim {
		st, ok := got1[alg]
		if !ok {
			t.Fatalf("engine has no stats for %s", alg)
		}
		if st.Recorded != want.recorded || st.PredictedPairs != want.predicted {
			t.Errorf("%s: recorded=%d/%d predicted=%d/%d (engine/sim)",
				alg, st.Recorded, want.recorded, st.PredictedPairs, want.predicted)
		}
		if st.ScoredEdges != want.scored || st.Hits != want.hits {
			t.Errorf("%s: scored=%d/%d hits=%d/%d (engine/sim)",
				alg, st.ScoredEdges, want.scored, st.Hits, want.hits)
		}
		if want.scored > 0 {
			if wantMRR := want.rrSum / float64(want.scored); st.MRR != wantMRR {
				t.Errorf("%s: MRR=%v, sim expects %v", alg, st.MRR, wantMRR)
			}
		}
		if c := obs.GetCounter(`liveeval/hits{alg="` + alg + `"}`).Value(); c != want.hits {
			t.Errorf("%s: obs hits counter=%d, want %d", alg, c, want.hits)
		}
		totalHits += st.Hits
	}
	if totalHits == 0 {
		t.Error("no prequential hits at all; fixture/epoch split no longer exercises the loop")
	}

	obs.Reset()
	got4, _ := liveevalRun(t, 4)
	if !reflect.DeepEqual(got1, got4) {
		t.Fatalf("prequential stats differ between engine workers 1 and 4:\n w1: %+v\n w4: %+v", got1, got4)
	}
}

// TestMetricsEndpointForms pins the /metrics surface: the JSON dump with
// its content type, and the Prometheus exposition — lint-clean, correct
// content type, and carrying the per-algorithm live-accuracy gauges,
// per-endpoint latency quantiles, and snapshot-health gauges the
// dashboards key on.
func TestMetricsEndpointForms(t *testing.T) {
	obs.Reset()
	obs.Enable(true)
	defer func() {
		obs.Enable(false)
		obs.Reset()
	}()

	eval := liveeval.New(liveeval.Config{TopK: 25, Ring: 2, Window: 64, HalfLife: 16})
	s := newTestServer(t, Config{SnapshotEvery: 1 << 20, Workers: 2, Eval: eval})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	events := traceEvents(testTrace(t))
	half := len(events) / 2
	post := func(path string, body any) {
		t.Helper()
		raw, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(string(raw)))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
	}
	post("/ingest", ingestRequest{Events: events[:half]})
	post("/flush", struct{}{})
	if resp, err := http.Get(ts.URL + "/predict?alg=CN&k=25"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	post("/ingest", ingestRequest{Events: events[half:]})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("JSON /metrics Content-Type = %q", ct)
	}
	var dump obs.Dump
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("JSON /metrics decode: %v", err)
	}
	resp.Body.Close()
	if _, ok := dump.Gauges["serve/snapshot_seq"]; !ok {
		t.Error("JSON dump missing serve/snapshot_seq gauge")
	}

	resp, err = http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("prom /metrics Content-Type = %q", ct)
	}
	body := readAll(t, resp)
	if err := obs.LintPrometheus([]byte(body)); err != nil {
		t.Fatalf("prom exposition does not lint: %v", err)
	}
	for _, want := range []string{
		`linkpred_liveeval_hit_rate{alg="CN"}`,
		`linkpred_liveeval_mrr{alg="CN"}`,
		`linkpred_liveeval_edges_scored_total{alg="CN"}`,
		`linkpred_serve_http_latency_ns_p95{endpoint="predict"}`,
		`linkpred_serve_http_latency_ns_bucket{endpoint="ingest",le="+Inf"}`,
		`linkpred_serve_snapshot_age_seconds`,
		`linkpred_serve_publish_lag_edges`,
		`linkpred_predict_predict_ns_count{alg="CN"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("prom exposition missing %s", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 32*1024)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

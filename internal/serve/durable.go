package serve

import (
	"errors"
	"fmt"
	"time"

	"linkpred/internal/obs"
	"linkpred/internal/wal"
)

// ErrDurability rejects ingest after a write-ahead log failure: the server
// can no longer honor "acked means durable", so it stops accepting writes
// (HTTP 500) while continuing to serve queries from the last snapshot.
// The condition is sticky — recovery is a process restart against the
// (intact prefix of the) log.
var ErrDurability = errors.New("serve: write-ahead log failure; ingest disabled")

// WALStatus is the durability block of the /healthz payload, present only
// on WAL-backed servers. A router or operator reads Appended == Committed
// as "no acked-but-unflushed window" (always true between Ingest calls —
// every Ingest group-commits before returning) and CheckpointEdges as the
// replay horizon: a crash now replays TraceEdges − CheckpointEdges records.
type WALStatus struct {
	OK        bool   `json:"ok"`
	Appended  uint64 `json:"appended"`
	Committed uint64 `json:"committed"`
	Segments  int    `json:"segments"`
	// CheckpointEdges is the trace length covered by the newest durable
	// checkpoint; CheckpointBusy reports an in-flight background write.
	CheckpointEdges int  `json:"checkpoint_edges"`
	CheckpointBusy  bool `json:"checkpoint_busy"`
	// RecoveredEdges/RecoveredTail describe the boot-time recovery: total
	// trace length restored and how many of those records were replayed
	// from WAL segments (the rest came from the checkpoint). Truncated
	// reports that a torn tail was discarded — expected after a crash.
	RecoveredEdges int    `json:"recovered_edges"`
	RecoveredTail  uint64 `json:"recovered_tail"`
	Truncated      bool   `json:"truncated,omitempty"`
	Error          string `json:"error,omitempty"`
}

// walRecoveryInfo pins the boot-time recovery outcome (static after New).
type walRecoveryInfo struct {
	edges     int
	tail      uint64
	truncated bool
}

// walFail records the first durability error and trips the sticky failure
// latch. The in-memory trace may now be ahead of the durable log, so no
// further writes are accepted.
func (s *Server) walFail(err error) {
	s.walErrMu.Lock()
	if s.walErrStr == "" {
		s.walErrStr = err.Error()
	}
	s.walErrMu.Unlock()
	s.walFailed.Store(true)
	if obs.Enabled() {
		obs.GetCounter("serve/wal_failures").Inc()
	}
}

func (s *Server) walErr() error {
	s.walErrMu.Lock()
	msg := s.walErrStr
	s.walErrMu.Unlock()
	if msg == "" {
		return ErrDurability
	}
	return fmt.Errorf("%w: %s", ErrDurability, msg)
}

// walSyncStats mirrors the log's counters into atomics so Health and the
// telemetry gauges never take the log's lock (a health probe must not
// block behind an fsync). Callers hold s.mu.
func (s *Server) walSyncStats() {
	s.walAppendedN.Store(s.wal.Appended())
	s.walCommittedN.Store(s.wal.Committed())
	s.walSegmentsN.Store(int64(s.wal.Segments()))
}

// walCommit group-commits everything appended so far; returning nil is the
// durability ack. Callers hold s.mu.
func (s *Server) walCommit() error {
	start := time.Now()
	if err := s.wal.Commit(); err != nil {
		s.walFail(err)
		return s.walErr()
	}
	s.walSyncStats()
	if obs.Enabled() {
		obs.GetCounter("serve/wal_commits").Inc()
		obs.GetHistogram("serve/wal_commit_ns").Observe(time.Since(start).Nanoseconds())
	}
	return nil
}

// walNotePublish logs a publication marker so recovery can restore the
// serving epoch (snapshot seq) alongside the trace, then kicks a
// checkpoint when the replay horizon has grown past CheckpointEvery.
// Callers hold s.mu (publishLocked).
func (s *Server) walNotePublish(snap *Snapshot) {
	if s.walFailed.Load() {
		return
	}
	p := wal.Publish{Seq: snap.Seq, Edges: uint64(snap.Edges), Time: snap.Time}
	if err := s.wal.NotePublish(p); err != nil {
		s.walFail(err)
		return
	}
	s.maybeCheckpointLocked(snap, p)
}

// maybeCheckpointLocked starts a background checkpoint covering snap when
// due. The state capture is synchronous — at the publish instant the trace
// length equals snap.Edges exactly, and Arrival/Edges/rev are append-only,
// so the captured slice headers are an immutable as-of-publish view — but
// serialization (the expensive CSR dump + hashing + fsync) runs off the
// ingest path on a background goroutine; the WAL's own lock orders it
// against concurrent appends. One checkpoint in flight at a time; a missed
// cadence retries at the next publish. Callers hold s.mu.
func (s *Server) maybeCheckpointLocked(snap *Snapshot, p wal.Publish) {
	every := s.cfg.CheckpointEvery
	if every <= 0 || s.cfg.Partition != nil {
		// Partitioned shards never checkpoint: their snapshots materialize
		// only owned rows, not the full graph a checkpoint must carry.
		// Recovery on a shard replays the whole log instead.
		return
	}
	if int64(snap.Edges)-s.ckptEdges.Load() < int64(every) {
		return
	}
	if !s.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	s.idMu.RLock()
	rev := s.rev
	s.idMu.RUnlock()
	data := wal.CheckpointData{
		Name:    s.trace.Name,
		Arrival: s.trace.Arrival,
		Edges:   s.trace.Edges,
		Rev:     rev,
		Graph:   snap.Graph,
		Pub:     p,
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.ckptBusy.Store(false)
		start := time.Now()
		if err := s.wal.WriteCheckpoint(data); err != nil {
			s.walFail(err)
			if obs.Enabled() {
				obs.GetCounter("serve/wal_checkpoint_failures").Inc()
			}
			return
		}
		s.ckptEdges.Store(int64(p.Edges))
		s.walSegmentsN.Store(int64(s.wal.Segments()))
		if obs.Enabled() {
			obs.GetCounter("serve/wal_checkpoints").Inc()
			obs.GetHistogram("serve/wal_checkpoint_ns").Observe(time.Since(start).Nanoseconds())
		}
	}()
}

// walStatus assembles the health block from mirrored atomics only.
func (s *Server) walStatus() *WALStatus {
	if s.wal == nil {
		return nil
	}
	st := &WALStatus{
		OK:              !s.walFailed.Load(),
		Appended:        s.walAppendedN.Load(),
		Committed:       s.walCommittedN.Load(),
		Segments:        int(s.walSegmentsN.Load()),
		CheckpointEdges: int(s.ckptEdges.Load()),
		CheckpointBusy:  s.ckptBusy.Load(),
		RecoveredEdges:  s.walRecovered.edges,
		RecoveredTail:   s.walRecovered.tail,
		Truncated:       s.walRecovered.truncated,
	}
	if !st.OK {
		s.walErrMu.Lock()
		st.Error = s.walErrStr
		s.walErrMu.Unlock()
	}
	return st
}

// registerWALGauges adds the durability gauges (WAL-backed servers only).
func (s *Server) registerWALGauges() {
	obs.SetGaugeFunc("serve/wal_appended", func() float64 {
		return float64(s.walAppendedN.Load())
	})
	obs.SetGaugeFunc("serve/wal_committed", func() float64 {
		return float64(s.walCommittedN.Load())
	})
	obs.SetGaugeFunc("serve/wal_segments", func() float64 {
		return float64(s.walSegmentsN.Load())
	})
	obs.SetGaugeFunc("serve/wal_checkpoint_edges", func() float64 {
		return float64(s.ckptEdges.Load())
	})
	obs.SetGaugeFunc("serve/wal_checkpoint_lag_edges", func() float64 {
		return float64(s.traceLen.Load() - s.ckptEdges.Load())
	})
	obs.SetGaugeFunc("serve/wal_failed", func() float64 {
		if s.walFailed.Load() {
			return 1
		}
		return 0
	})
}

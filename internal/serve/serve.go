// Package serve is the live prediction service: it ingests timestamped
// edge events into a growing trace, publishes immutable snapshots on a
// configurable cadence via atomic pointer swap, and answers top-k and
// pair-score queries from a bounded worker pool.
//
// The serving contract, pinned by the test layer in this package:
//
//   - Snapshots are immutable and published atomically. Every response
//     reports the snapshot (seq, edge count) it was computed against, and
//     its payload is bit-identical to running the offline Predict /
//     ScorePairs path on that same snapshot (TestServeRaceIntegration,
//     TestGoldenEndToEnd).
//   - Requests carry context deadlines. An expired context yields
//     context.DeadlineExceeded promptly: the prediction engine checks the
//     context once per chunk claim (predict.Options.Ctx), so a cancelled
//     sweep stops within one chunk of work (TestDeadlines).
//   - The request queue is bounded. A full queue rejects with
//     ErrOverloaded (HTTP 429) instead of blocking the caller — load sheds
//     at the front door, never as unbounded memory growth.
//   - Same-algorithm pair-score requests waiting in the queue coalesce
//     into one ScorePairs sweep (per-pair results are independent of batch
//     composition, so coalescing is invisible in the payload).
//   - Under pressure — rolling p95 latency or queue depth over threshold —
//     latent-family requests (Katz, KatzSC, Rescal) degrade to fused
//     local-metric proxies and the response is flagged Degraded, with
//     ServedBy naming the proxy. With a prequential engine attached
//     (Config.Eval) the proxy is chosen by measured live accuracy-per-cost;
//     otherwise a static table applies. Recovery re-enables the latent path
//     after a run of healthy observations (TestDegradationProperty).
//   - With Config.Eval set, the accuracy loop is closed: every /predict
//     response is recorded into the prequential engine and every accepted
//     ingest edge is scored against the predictions that existed before it
//     arrived, producing live per-algorithm hit@k / MRR / precision /
//     windowed-AUPR series in /metrics. The statistics are a deterministic
//     function of the request sequence — bit-identical at any engine
//     worker count (TestLiveEvalEndToEnd).
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"linkpred/internal/graph"
	"linkpred/internal/liveeval"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
	"linkpred/internal/wal"
)

// Event is one timestamped edge-creation event in external ID space.
// External IDs are arbitrary non-negative integers; the server remaps them
// densely in first-seen order.
type Event struct {
	U int64 `json:"u"`
	V int64 `json:"v"`
	T int64 `json:"t"`
}

// Config parameterizes a Server. The zero value serves with defaults.
type Config struct {
	// SnapshotEvery publishes a new snapshot every N accepted edges
	// (default 512). Explicit Flush publishes regardless of cadence.
	SnapshotEvery int
	// Workers is the scoring worker pool size (default 2). Each worker
	// serves one request (or one coalesced batch) at a time.
	Workers int
	// QueueDepth bounds the request queue (default 256); a full queue
	// rejects with ErrOverloaded.
	QueueDepth int
	// MaxBatch bounds how many queued same-algorithm score requests
	// coalesce into one ScorePairs sweep (default 16; 1 disables).
	MaxBatch int
	// Opt carries the engine options for every query. A zero Opt takes
	// predict.DefaultOptions; Opt.Workers is the per-request engine
	// parallelism (default 1 — total concurrency is Workers × Opt.Workers).
	Opt predict.Options
	// Warm prebuilds the new snapshot's shared artifacts (CSR, degree
	// order, latent factors) off the request path after each publish.
	Warm bool
	// WarmAlgorithms overrides which algorithms Warm prebuilds for
	// (default: AA, BAA, Katz, KatzSC, Rescal).
	WarmAlgorithms []string
	// Degrade tunes the graceful-degradation controller.
	Degrade DegradeConfig
	// Trace warm-starts the server from an existing history; ownership of
	// the trace transfers to the server. External IDs are the trace's own
	// dense IDs.
	Trace *graph.Trace
	// OnPublish, when set, observes every snapshot immediately before it
	// becomes visible to queries. It runs on the ingest path under the
	// server's ingest lock: keep it fast and do not call back into the
	// server.
	OnPublish func(*Snapshot)
	// Resolve overrides algorithm resolution (default predict.ByName).
	// Tests inject slow or instrumented scorers through it; the
	// degradation proxies resolve through it too.
	Resolve func(name string) (predict.Algorithm, error)
	// Eval, when set, closes the accuracy loop: every /predict response is
	// recorded into the prequential engine under the algorithm that
	// actually served it, every accepted ingest edge is scored against the
	// predictions that existed before it arrived, and the degradation
	// controller routes latent algorithms to the proxy with the best
	// measured accuracy-per-cost instead of the static table.
	Eval *liveeval.Engine
	// WAL, when set, makes ingest durable: every accepted edge is appended
	// to a write-ahead log on this storage and group-committed (one fsync
	// per Ingest batch) before Ingest returns, so an acked event survives a
	// crash. New recovers any prior state found on the storage — checkpoint
	// plus tail replay — before serving; Config.Trace then acts only as the
	// warm-start base for an empty log. After a log failure the server
	// rejects further writes with ErrDurability (HTTP 500) but keeps
	// serving queries.
	WAL wal.Storage
	// WALOptions tunes the log's group-commit batch and segment size; the
	// zero value takes the wal package defaults.
	WALOptions wal.Options
	// CheckpointEvery writes a checkpoint snapshot after the replay horizon
	// (trace edges past the last checkpoint) grows by N edges, bounding
	// recovery time and enabling segment pruning (default 4096; negative
	// disables). Checkpoints serialize in the background, off the ingest
	// path. Ignored without WAL, and on partitioned shards — a shard's
	// snapshot holds only its owned rows, so shards always recover by full
	// replay.
	CheckpointEvery int
	// Partition, when non-nil, runs the server as one ownership shard of a
	// memory-partitioned cluster: the snapshot builder still ingests the
	// full replicated edge stream, but materializes only the adjacency rows
	// of sources in [Partition[0], Partition[1]) plus their 1-hop frontier
	// (DESIGN.md §13). Predict answers exactly the owned source range (the
	// response is shard-restricted, mergeable by predict.MergeTopK), Score
	// answers only pairs whose min endpoint is owned (flagged Owned), and
	// only the partition-safe local family is served — anything else is
	// rejected with ErrPartitionUnsupported. The bounds are static for the
	// life of the process: dropped rows cannot be recovered, so resharding
	// means replaying the trace into new servers.
	Partition *[2]int
}

// DegradeConfig tunes graceful degradation. Zero fields take defaults.
type DegradeConfig struct {
	// P95 is the rolling p95 latency threshold (default 250ms).
	P95 time.Duration
	// QueueDepth is the queue-length threshold (default 3/4 of the request
	// queue capacity).
	QueueDepth int
	// Window is the rolling latency window length (default 32).
	Window int
	// RecoverAfter is the number of consecutive healthy observations that
	// re-enable the latent path (default 16).
	RecoverAfter int
	// Disabled turns the controller off: nothing ever degrades.
	Disabled bool
}

// Snapshot is one published immutable state of the ingested network.
type Snapshot struct {
	Graph *graph.Graph
	// Seq increases by one per publication; 0 is the initial snapshot.
	Seq int64
	// Edges is the number of trace edge events folded into Graph.
	Edges int
	// Time is the snapshot's trace time (last applied event).
	Time int64
}

// PairScore is one scored pair in external ID space. DU/DV carry the
// snapshot's dense node IDs on shard-restricted predict responses only
// (omitempty elsewhere — dense 0 decodes back to 0, so omission is
// lossless): the ranked order's tie-break hash is a function of the dense
// pair, so a cluster router needs them to merge partial lists bit-
// identically to a single-process sweep.
type PairScore struct {
	U     int64        `json:"u"`
	V     int64        `json:"v"`
	DU    graph.NodeID `json:"du,omitempty"`
	DV    graph.NodeID `json:"dv,omitempty"`
	Score float64      `json:"score"`
	// Owned appears on partitioned score responses only: true when this
	// shard owns the pair's min endpoint, so its Score is authoritative. A
	// router broadcasting a score request to every shard keeps exactly the
	// owned answer per pair (ownership is a disjoint cover, so exactly one
	// shard flags each resolvable pair).
	Owned bool `json:"owned,omitempty"`
}

// Result is the payload of one answered query.
type Result struct {
	// Alg is the requested algorithm; ServedBy the one that actually ran
	// (the degradation proxy when Degraded).
	Alg      string `json:"alg"`
	ServedBy string `json:"served_by"`
	Degraded bool   `json:"degraded"`
	// SnapshotSeq/SnapshotEdges/SnapshotTime identify the published
	// snapshot the scores were computed against.
	SnapshotSeq   int64 `json:"snapshot_seq"`
	SnapshotEdges int   `json:"snapshot_edges"`
	SnapshotTime  int64 `json:"snapshot_time"`
	// SnapshotNodes and ShardRange appear only on shard-restricted predict
	// responses (omitempty keeps unrestricted payloads byte-identical to
	// pre-cluster servers): the snapshot's node count, from which a router
	// derives every shard's owned range, and the [lo, hi) source range this
	// response actually swept.
	SnapshotNodes int     `json:"snapshot_nodes,omitempty"`
	ShardRange    *[2]int `json:"shard_range,omitempty"`
	// Pairs holds the ranked top-k (predict) or the per-request scores in
	// request order (score).
	Pairs []PairScore `json:"pairs"`
}

// Health is the /healthz payload. SnapshotSeq is the serving epoch and
// TraceEdges the replicated-ingest position — together they let a cluster
// router check shard alignment from the health probe alone, with no side
// channel into the ingest path.
type Health struct {
	OK            bool  `json:"ok"`
	SnapshotSeq   int64 `json:"snapshot_seq"`
	SnapshotEdges int   `json:"snapshot_edges"`
	SnapshotTime  int64 `json:"snapshot_time"`
	TraceEdges    int   `json:"trace_edges"`
	Nodes         int   `json:"nodes"`
	Degraded      bool  `json:"degraded"`
	QueueDepth    int   `json:"queue_depth"`
	// SnapshotBytes is the resident adjacency footprint of the published
	// snapshot; on a partitioned shard it covers only the owned rows plus
	// frontier, which is the point of partitioning. PartitionRange reports
	// the configured ownership bounds (absent on full servers) so a router
	// can verify its shards form a disjoint cover before merging.
	SnapshotBytes  int64   `json:"snapshot_bytes"`
	PartitionRange *[2]int `json:"partition_range,omitempty"`
	// WAL reports durability state on WAL-backed servers (absent
	// otherwise): commit/checkpoint positions, the boot-time recovery
	// outcome, and the sticky failure latch.
	WAL *WALStatus `json:"wal,omitempty"`
}

var (
	// ErrOverloaded rejects a request when the bounded queue is full; the
	// HTTP layer maps it to 429.
	ErrOverloaded = errors.New("serve: request queue full")
	// ErrClosed rejects requests after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrBatchAborted tells a coalesced follower that its batch leader's
	// deadline cancelled the shared sweep mid-flight; the request is safe
	// to retry (HTTP 503).
	ErrBatchAborted = errors.New("serve: batch aborted by leader deadline; retry")
	// ErrPartitionUnsupported rejects an algorithm outside the
	// partition-safe local family on a memory-partitioned server (HTTP 400):
	// the shard's truncated frontier rows cannot support walks, paths, or
	// latent factorizations exactly, and this system never serves silently
	// wrong scores.
	ErrPartitionUnsupported = errors.New("serve: algorithm not supported on a partitioned shard (see predict.PartitionSafe)")
)

// latentProxy maps each latent-family algorithm to the fused local metric
// that answers for it under degradation. The proxies run zero-allocation
// wedge sweeps (DESIGN.md §7) — orders of magnitude cheaper than an
// eigensolve or ALS on a cold snapshot — and remain fully deterministic, so
// a degraded response is exactly the proxy algorithm's own output.
var latentProxy = map[string]string{
	"Katz":   "AA",
	"KatzSC": "RA",
	"Rescal": "CN",
}

type reqKind int

const (
	kindPredict reqKind = iota
	kindScore
)

type outcome struct {
	res *Result
	err error
}

type request struct {
	kind reqKind
	alg  string
	k    int
	// shards > 1 marks a shard-restricted predict: sweep only the sources
	// owned by shard index shard of shards (computed against the answering
	// snapshot's node count).
	shard, shards int
	// ext holds the queried pairs in external IDs (score only); dense the
	// remapped pairs with ok=false for endpoints unknown at submit time.
	ext   [][2]int64
	dense []densePair
	ctx   context.Context
	done  chan outcome
}

type densePair struct {
	u, v graph.NodeID
	ok   bool
}

// Server is the live prediction service. Create with New, serve HTTP via
// Handler, and stop with Close.
type Server struct {
	cfg   Config
	queue chan *request
	done  chan struct{}
	wg    sync.WaitGroup

	closeMu sync.RWMutex
	closed  bool

	// mu serializes the ingest path: trace growth and snapshot publication.
	mu      sync.Mutex
	trace   *graph.Trace
	builder *graph.IncrementalBuilder
	seq     int64
	pending int

	// idMu guards the external↔dense ID maps, which queries read while
	// ingest extends them.
	idMu  sync.RWMutex
	remap map[int64]graph.NodeID
	rev   []int64

	cur atomic.Pointer[Snapshot]
	deg *degrader

	// traceLen mirrors len(trace.Edges) for lock-free reads on the query
	// path (prequential eligibility floors, publish-lag gauge);
	// lastPublishNS is the wall time of the latest snapshot publication
	// (snapshot-age gauge).
	traceLen      atomic.Int64
	lastPublishNS atomic.Int64
	// lastDeltaRows is the builder's DeltaRows at the previous publication;
	// the per-publish difference feeds the publish_delta_rows counter.
	// Guarded by mu (only publishLocked touches it).
	lastDeltaRows int64

	// costMu guards cost, the per-served-algorithm decayed mean latency
	// feeding the accuracy-per-cost routing.
	costMu sync.Mutex
	cost   map[string]float64

	// wal is the write-ahead log (nil without Config.WAL). The mirrored
	// atomics below keep Health and the gauges off the log's lock; the
	// sticky walFailed latch plus walErrStr record the first durability
	// error. walRecovered pins the boot-time recovery outcome.
	wal           *wal.Log
	walRecovered  walRecoveryInfo
	walAppendedN  atomic.Uint64
	walCommittedN atomic.Uint64
	walSegmentsN  atomic.Int64
	ckptEdges     atomic.Int64
	ckptBusy      atomic.Bool
	walFailed     atomic.Bool
	walErrMu      sync.Mutex
	walErrStr     string
}

// New starts a server: applies defaults, publishes the initial snapshot
// (the warm-start trace, or an empty graph), and launches the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 512
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	if cfg.Opt.PPRAlpha == 0 {
		seed, workers := cfg.Opt.Seed, cfg.Opt.Workers
		cfg.Opt = predict.DefaultOptions()
		if seed != 0 {
			cfg.Opt.Seed = seed
		}
		cfg.Opt.Workers = workers
	}
	if cfg.Opt.Workers <= 0 {
		cfg.Opt.Workers = 1
	}
	if cfg.Opt.Workers > runtime.GOMAXPROCS(0) {
		cfg.Opt.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Resolve == nil {
		cfg.Resolve = predict.ByName
	}
	if cfg.WarmAlgorithms == nil {
		cfg.WarmAlgorithms = []string{"AA", "BAA", "Katz", "KatzSC", "Rescal"}
	}
	if cfg.Trace != nil {
		if err := cfg.Trace.Validate(); err != nil {
			return nil, fmt.Errorf("serve: warm-start trace: %w", err)
		}
	}
	tr := cfg.Trace
	var wlog *wal.Log
	var rec *wal.Recovered
	if cfg.WAL != nil {
		if cfg.CheckpointEvery == 0 {
			cfg.CheckpointEvery = 4096
		}
		var err error
		wlog, rec, err = wal.Open(cfg.WAL, cfg.WALOptions, cfg.Trace)
		if err != nil {
			return nil, fmt.Errorf("serve: wal recovery: %w", err)
		}
		tr = rec.Trace
	}
	if tr == nil {
		tr = &graph.Trace{Name: "live"}
	}
	builder := graph.NewIncrementalBuilder(tr)
	if rec != nil && rec.Graph != nil && cfg.Partition == nil {
		// Seed the builder with the checkpoint's zero-copy CSR so the boot
		// publish materializes only the replayed tail, not the whole graph.
		builder = graph.NewIncrementalBuilderFrom(tr, rec.Graph, int(rec.CheckpointEdges))
	}
	if p := cfg.Partition; p != nil {
		if p[0] < 0 || p[1] <= p[0] {
			return nil, fmt.Errorf("serve: bad partition range [%d, %d)", p[0], p[1])
		}
		builder = graph.NewPartitionedBuilder(tr, graph.NodeID(p[0]), graph.NodeID(p[1]))
	}
	s := &Server{
		cfg:     cfg,
		queue:   make(chan *request, cfg.QueueDepth),
		done:    make(chan struct{}),
		trace:   tr,
		builder: builder,
		remap:   make(map[int64]graph.NodeID, tr.NumNodes()),
		deg:     newDegrader(cfg.Degrade, cfg.QueueDepth),
		cost:    make(map[string]float64),
	}
	s.traceLen.Store(int64(len(tr.Edges)))
	if rec != nil {
		// The log's ID maps are authoritative: external IDs recovered from
		// the records themselves (or identity for a warm-start prefix).
		s.remap, s.rev = rec.Remap, rec.Rev
		s.wal = wlog
		s.walRecovered = walRecoveryInfo{
			edges:     len(tr.Edges),
			tail:      rec.TailRecords,
			truncated: rec.Truncated,
		}
		s.ckptEdges.Store(int64(rec.CheckpointEdges))
		s.walSyncStats()
	} else {
		// Warm-start IDs are the trace's own dense IDs.
		s.rev = make([]int64, tr.NumNodes())
		for i := range s.rev {
			s.rev[i] = int64(i)
			s.remap[int64(i)] = graph.NodeID(i)
		}
	}
	s.mu.Lock()
	s.seq = -1 // the initial publication is seq 0
	if rec != nil && rec.LastPub != nil {
		// Restore the serving epoch: republishing exactly the last logged
		// publication keeps its seq (the boot snapshot is bit-identical to
		// the pre-crash one); recovering past it — edges acked after the
		// last publish — advances the epoch so routers never see one seq
		// with two different edge counts.
		if rec.LastPub.Edges == uint64(len(tr.Edges)) {
			s.seq = rec.LastPub.Seq - 1
		} else {
			s.seq = rec.LastPub.Seq
		}
	}
	s.publishLocked()
	if s.wal != nil {
		if err := s.walCommit(); err != nil {
			s.mu.Unlock()
			wlog.Close()
			return nil, fmt.Errorf("serve: wal boot commit: %w", err)
		}
	}
	s.mu.Unlock()
	s.registerGauges()
	if s.wal != nil {
		s.registerWALGauges()
		if obs.Enabled() {
			obs.GetCounter("serve/wal_recovered_edges").Add(int64(s.walRecovered.edges))
			obs.GetCounter("serve/wal_recovered_tail").Add(int64(s.walRecovered.tail))
			if s.walRecovered.truncated {
				obs.GetCounter("serve/wal_recovered_truncations").Inc()
			}
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// registerGauges publishes the serving-health callback gauges: evaluated
// at scrape time, so snapshot age and queue depth are current without the
// server pushing updates. Re-registration (a newer server in the same
// process) replaces the callbacks; the closures only read atomics and are
// safe after Close.
func (s *Server) registerGauges() {
	obs.SetGaugeFunc("serve/snapshot_seq", func() float64 {
		return float64(s.cur.Load().Seq)
	})
	obs.SetGaugeFunc("serve/snapshot_edges", func() float64 {
		return float64(s.cur.Load().Edges)
	})
	obs.SetGaugeFunc("serve/snapshot_age_seconds", func() float64 {
		return time.Duration(time.Now().UnixNano() - s.lastPublishNS.Load()).Seconds()
	})
	obs.SetGaugeFunc("serve/publish_lag_edges", func() float64 {
		return float64(s.traceLen.Load() - int64(s.cur.Load().Edges))
	})
	obs.SetGaugeFunc("serve/trace_edges", func() float64 {
		return float64(s.traceLen.Load())
	})
	obs.SetGaugeFunc("serve/queue_len", func() float64 {
		return float64(len(s.queue))
	})
	obs.SetGaugeFunc("serve/degraded", func() float64 {
		if s.deg.degraded() {
			return 1
		}
		return 0
	})
	obs.SetGaugeFunc("serve/snapshot_bytes", func() float64 {
		return float64(s.cur.Load().Graph.ResidentBytes())
	})
	obs.SetGaugeFunc("serve/partitioned_bytes", func() float64 {
		snap := s.cur.Load()
		if snap.Graph.Partition() == nil {
			return 0
		}
		return float64(snap.Graph.ResidentBytes())
	})
}

// Close stops the server: in-flight requests finish, queued requests are
// answered with ErrClosed, and new calls are rejected. Idempotent.
func (s *Server) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	close(s.done)
	s.closeMu.Unlock()
	s.wg.Wait() // workers, warmers, and any in-flight background checkpoint
	if s.wal != nil {
		s.mu.Lock()
		if err := s.wal.Close(); err != nil && !s.walFailed.Load() {
			s.walFail(err)
		}
		s.mu.Unlock()
	}
	for {
		select {
		case r := <-s.queue:
			r.done <- outcome{err: ErrClosed}
		default:
			return
		}
	}
}

// Snapshot returns the currently published snapshot.
func (s *Server) Snapshot() *Snapshot { return s.cur.Load() }

// Degraded reports whether the degradation controller currently routes
// latent-family requests to their local-metric proxies.
func (s *Server) Degraded() bool { return s.deg.degraded() }

// Health reports the serving state for /healthz. It reads only atomics —
// never s.mu — so a health probe answers immediately even while a long
// ingest batch holds the ingest lock; a router polling for epoch alignment
// must not block behind the very replication it is waiting on.
func (s *Server) Health() Health {
	snap := s.cur.Load()
	return Health{
		OK:            true,
		SnapshotSeq:   snap.Seq,
		SnapshotEdges: snap.Edges,
		SnapshotTime:  snap.Time,
		TraceEdges:    int(s.traceLen.Load()),
		Nodes:         snap.Graph.NumNodes(),
		Degraded:      s.deg.degraded(),
		QueueDepth:    len(s.queue),
		SnapshotBytes: snap.Graph.ResidentBytes(),
		WAL:           s.walStatus(),
		PartitionRange: func() *[2]int {
			if s.cfg.Partition == nil {
				return nil
			}
			r := *s.cfg.Partition
			return &r
		}(),
	}
}

// Ingest appends edge events to the live trace, publishing snapshots on
// the configured cadence. Events with negative IDs or equal endpoints are
// rejected individually; the rest are accepted in order. It returns the
// accepted and rejected counts.
//
// On a WAL-backed server the return is the durability ack: every accepted
// event has been appended to the log and group-committed (fsynced) before
// Ingest returns nil. A log failure returns ErrDurability with zero counts
// — none of the batch should be considered durable — and latches the
// server read-only for writes.
func (s *Server) Ingest(events []Event) (accepted, rejected int, err error) {
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		return 0, 0, ErrClosed
	}
	if s.wal != nil && s.walFailed.Load() {
		return 0, 0, s.walErr()
	}
	s.mu.Lock()
	for _, ev := range events {
		if ev.U < 0 || ev.V < 0 || ev.U == ev.V {
			rejected++
			continue
		}
		u, v := s.dense(ev.U), s.dense(ev.V)
		e, aerr := s.trace.Append(u, v, ev.T)
		if aerr != nil {
			rejected++
			continue
		}
		if s.wal != nil {
			// Log the event exactly as applied (post-clamp time, dense IDs):
			// replay re-runs Append and asserts it reproduces this edge.
			werr := s.wal.Append(wal.Record{ExtU: ev.U, ExtV: ev.V, U: e.U, V: e.V, T: e.Time})
			if werr != nil {
				s.walFail(werr)
				s.mu.Unlock()
				return 0, 0, s.walErr()
			}
		}
		accepted++
		s.pending++
		s.traceLen.Store(int64(len(s.trace.Edges)))
		if s.cfg.Eval != nil {
			// The prequential step: this edge, identified by its trace
			// index, is scored against every prediction recorded before it
			// arrived (the engine enforces the epoch boundary).
			s.cfg.Eval.ObserveEdge(u, v, len(s.trace.Edges)-1)
		}
		if s.pending >= s.cfg.SnapshotEvery {
			s.publishLocked()
		}
	}
	if s.wal != nil && accepted > 0 {
		if werr := s.walCommit(); werr != nil {
			s.mu.Unlock()
			return 0, 0, werr
		}
	}
	lag := len(s.trace.Edges) - s.builder.Applied()
	s.mu.Unlock()
	if obs.Enabled() {
		obs.GetCounter("serve/ingest_events").Add(int64(accepted))
		if rejected > 0 {
			obs.GetCounter("serve/ingest_rejected").Add(int64(rejected))
		}
		obs.GetHistogram("serve/ingest_lag_events").Observe(int64(lag))
	}
	return accepted, rejected, nil
}

// Flush publishes a snapshot of everything ingested so far, regardless of
// cadence, and returns it. With nothing new to publish it returns the
// current snapshot unchanged.
func (s *Server) Flush() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.builder.Applied() == len(s.trace.Edges) && s.cur.Load() != nil {
		return s.cur.Load()
	}
	snap := s.publishLocked()
	if s.wal != nil && !s.walFailed.Load() {
		// Make the publish marker durable too: Flush is the explicit
		// "everything so far" barrier.
		_ = s.walCommit()
	}
	return snap
}

// dense remaps an external ID, assigning the next dense ID on first sight.
// Callers hold s.mu.
func (s *Server) dense(id int64) graph.NodeID {
	s.idMu.RLock()
	d, ok := s.remap[id]
	s.idMu.RUnlock()
	if ok {
		return d
	}
	s.idMu.Lock()
	d = graph.NodeID(len(s.rev))
	s.remap[id] = d
	s.rev = append(s.rev, id)
	s.idMu.Unlock()
	return d
}

// lookupDense resolves an external ID without assigning.
func (s *Server) lookupDense(id int64) (graph.NodeID, bool) {
	s.idMu.RLock()
	d, ok := s.remap[id]
	s.idMu.RUnlock()
	return d, ok
}

// external maps a dense ID back to the external ID it was assigned for.
func (s *Server) external(d graph.NodeID) int64 {
	s.idMu.RLock()
	id := s.rev[d]
	s.idMu.RUnlock()
	return id
}

// publishLocked builds the snapshot of the full ingested prefix and swaps
// it in. Callers hold s.mu. The OnPublish hook observes the snapshot
// before the pointer swap, so by the time any query can reference a seq
// the hook has already seen it.
func (s *Server) publishLocked() *Snapshot {
	g := s.builder.AtEdge(len(s.trace.Edges))
	s.seq++
	snap := &Snapshot{Graph: g, Seq: s.seq, Edges: s.builder.Applied(), Time: g.Time}
	s.pending = 0
	if s.cfg.OnPublish != nil {
		s.cfg.OnPublish(snap)
	}
	prev := s.cur.Load()
	s.cur.Store(snap)
	s.lastPublishNS.Store(time.Now().UnixNano())
	if s.wal != nil {
		s.walNotePublish(snap)
	}
	deltaRows := s.builder.DeltaRows() - s.lastDeltaRows
	s.lastDeltaRows = s.builder.DeltaRows()
	if obs.Enabled() {
		obs.GetCounter("serve/snapshots_published").Inc()
		if deltaRows > 0 {
			// Rows COW-cloned for this publish: the O(touched) work unit of the
			// delta-CSR path, and the quantity the CI alloc gate tracks.
			obs.GetCounter("serve/publish_delta_rows").Add(deltaRows)
		}
		if prev != nil {
			obs.GetHistogram("serve/publish_batch_edges").Observe(int64(snap.Edges - prev.Edges))
		}
	}
	if s.cfg.Warm {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			start := time.Now()
			predict.Warm(g, s.cfg.WarmAlgorithms, s.cfg.Opt)
			if obs.Enabled() {
				obs.GetHistogram("serve/warm_ns").Observe(time.Since(start).Nanoseconds())
			}
		}()
	}
	return snap
}

// Predict answers a top-k query: the k highest-scored candidate links on
// the current snapshot under the named algorithm.
func (s *Server) Predict(ctx context.Context, alg string, k int) (*Result, error) {
	return s.PredictShard(ctx, alg, k, 0, 1)
}

// PredictShard answers the shard-restricted top-k query behind the cluster
// scatter/gather path: the top k among the candidate pairs owned by shard
// index shard of shards, computed against the server's current snapshot.
// shards <= 1 is the unrestricted Predict. The response carries the swept
// source range and the snapshot's node count so a router can merge
// same-epoch partial lists (predict.MergeTopK) and account for missing
// ranges when a shard is down.
func (s *Server) PredictShard(ctx context.Context, alg string, k, shard, shards int) (*Result, error) {
	if _, err := s.cfg.Resolve(alg); err != nil {
		return nil, err
	}
	if err := s.checkPartitioned(alg); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("serve: k must be positive, got %d", k)
	}
	if s.cfg.Partition != nil && shards > 1 {
		// A partitioned shard's sweep range IS its ownership range; a
		// router-imposed sub-range would double-partition the ID space.
		return nil, fmt.Errorf("serve: %w: shard parameters conflict with the configured partition", ErrPartitionUnsupported)
	}
	if shards > 1 && (shard < 0 || shard >= shards) {
		return nil, fmt.Errorf("serve: shard %d out of range for %d shards", shard, shards)
	}
	if shards < 1 {
		shards = 1
	}
	return s.submit(&request{kind: kindPredict, alg: alg, k: k, shard: shard, shards: shards, ctx: ctx, done: make(chan outcome, 1)})
}

// Score answers a pair-score query: one score per requested pair, in
// request order, in external IDs. Unknown endpoints and pairs beyond the
// current snapshot score zero.
func (s *Server) Score(ctx context.Context, alg string, pairs [][2]int64) (*Result, error) {
	if _, err := s.cfg.Resolve(alg); err != nil {
		return nil, err
	}
	if err := s.checkPartitioned(alg); err != nil {
		return nil, err
	}
	req := &request{kind: kindScore, alg: alg, ext: pairs, ctx: ctx, done: make(chan outcome, 1)}
	req.dense = make([]densePair, len(pairs))
	for i, p := range pairs {
		u, uok := s.lookupDense(p[0])
		v, vok := s.lookupDense(p[1])
		req.dense[i] = densePair{u: u, v: v, ok: uok && vok}
	}
	return s.submit(req)
}

// checkPartitioned rejects algorithms outside the partition-safe local
// family on a memory-partitioned server, before they ever enter the queue.
func (s *Server) checkPartitioned(alg string) error {
	if s.cfg.Partition != nil && !predict.PartitionSafe(alg) {
		return fmt.Errorf("serve: algorithm %q: %w", alg, ErrPartitionUnsupported)
	}
	return nil
}

// submit enqueues a request (rejecting on overload or shutdown) and waits
// for its outcome. Every enqueued request is answered exactly once by the
// worker pool — deadline handling happens there, so the deadline counter
// counts each expired request exactly once.
func (s *Server) submit(req *request) (*Result, error) {
	if req.ctx == nil {
		req.ctx = context.Background()
	}
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- req:
		s.closeMu.RUnlock()
	default:
		s.closeMu.RUnlock()
		if obs.Enabled() {
			obs.GetCounter("serve/overload_rejected").Inc()
		}
		return nil, ErrOverloaded
	}
	if obs.Enabled() {
		obs.GetHistogram("serve/queue_depth").Observe(int64(len(s.queue)))
	}
	out := <-req.done
	return out.res, out.err
}

// worker serves queued requests until Close, then drains the queue with
// ErrClosed so no caller is left waiting.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			for {
				select {
				case r := <-s.queue:
					r.done <- outcome{err: ErrClosed}
				default:
					return
				}
			}
		case r := <-s.queue:
			s.serveBatch(r)
		}
	}
}

// serveBatch serves one dequeued request, coalescing queued same-algorithm
// score requests behind a score leader into shared sweeps. Requests are
// grouped in arrival order; any non-score requests swept up by the drain
// are served after the score groups.
func (s *Server) serveBatch(leader *request) {
	batch := []*request{leader}
	if leader.kind == kindScore {
	drain:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r := <-s.queue:
				batch = append(batch, r)
			default:
				break drain
			}
		}
	}
	snap := s.cur.Load()
	// Bucket score requests by algorithm, preserving arrival order.
	var algOrder []string
	groups := make(map[string][]*request)
	var rest []*request
	for _, r := range batch {
		if r.kind != kindScore {
			rest = append(rest, r)
			continue
		}
		if _, ok := groups[r.alg]; !ok {
			algOrder = append(algOrder, r.alg)
		}
		groups[r.alg] = append(groups[r.alg], r)
	}
	for _, alg := range algOrder {
		s.serveScoreGroup(groups[alg], snap)
	}
	for _, r := range rest {
		s.servePredict(r, snap)
	}
}

// finishDeadline answers a request whose context expired and counts it.
func (s *Server) finishDeadline(r *request) {
	if obs.Enabled() {
		obs.GetCounter("serve/deadline_exceeded").Inc()
	}
	r.done <- outcome{err: r.ctx.Err()}
}

// proxyCandidates are the fused local metrics eligible to answer for a
// degraded latent algorithm, in deterministic preference order.
var proxyCandidates = []string{"AA", "RA", "CN"}

// proxyFor picks the degradation proxy for a latent-family algorithm. With
// a prequential engine attached the choice is data-driven: the candidate
// with the best measured accuracy-per-cost — decayed live hit rate divided
// by decayed mean sweep latency — wins, so the controller degrades onto
// whichever cheap metric is actually predicting well on the live network.
// With no engine, or before any candidate has been measured, the static
// table applies.
func (s *Server) proxyFor(name string) (string, bool) {
	static, ok := latentProxy[name]
	if !ok {
		return "", false
	}
	if s.cfg.Eval == nil {
		return static, true
	}
	best, bestScore := static, -1.0
	for _, cand := range proxyCandidates {
		acc, measured := s.cfg.Eval.Accuracy(cand)
		if !measured {
			continue
		}
		if score := acc / s.costSeconds(cand); score > bestScore {
			best, bestScore = cand, score
		}
	}
	return best, true
}

// noteCost folds one served sweep's latency into the per-algorithm decayed
// mean feeding accuracy-per-cost routing.
func (s *Server) noteCost(alg string, lat time.Duration) {
	s.costMu.Lock()
	if c, ok := s.cost[alg]; ok {
		s.cost[alg] = c + 0.2*(lat.Seconds()-c)
	} else {
		s.cost[alg] = lat.Seconds()
	}
	s.costMu.Unlock()
}

// costSeconds returns the decayed mean latency of alg with a 1µs floor to
// keep the accuracy-per-cost ratio finite; an unmeasured algorithm prices
// at 1ms so a never-tried proxy is neither free nor prohibitive.
func (s *Server) costSeconds(alg string) float64 {
	s.costMu.Lock()
	c, ok := s.cost[alg]
	s.costMu.Unlock()
	switch {
	case !ok || c == 0:
		return 1e-3
	case c < 1e-6:
		return 1e-6
	}
	return c
}

// route resolves the algorithm serving a request: under degradation,
// latent-family names route to a local-metric proxy (accuracy-per-cost
// ranked when a prequential engine is attached).
func (s *Server) route(name string) (predict.Algorithm, string, bool, error) {
	if s.deg.degraded() {
		if proxy, ok := s.proxyFor(name); ok {
			a, err := s.cfg.Resolve(proxy)
			if err == nil {
				if obs.Enabled() {
					obs.GetCounter(`serve/degrade_routed{from="` + name + `",to="` + proxy + `"}`).Inc()
				}
				return a, proxy, true, nil
			}
		}
	}
	a, err := s.cfg.Resolve(name)
	return a, name, false, err
}

// servePredict runs one top-k sweep.
func (s *Server) servePredict(r *request, snap *Snapshot) {
	start := time.Now()
	if r.ctx.Err() != nil {
		s.finishDeadline(r)
		return
	}
	alg, served, degraded, err := s.route(r.alg)
	if err != nil {
		r.done <- outcome{err: err}
		return
	}
	opt := s.cfg.Opt
	opt.Ctx = r.ctx
	sharded := r.shards > 1
	var srange predict.SourceRange
	switch {
	case snap.Graph.Partition() != nil:
		// The memory partition is the shard: sweep exactly the owned source
		// range and report it, so the router merges this partial list the
		// same way it merges work-sharded responses. The range is clamped to
		// the snapshot's node count (the last shard's Hi is a sentinel).
		p := snap.Graph.Partition()
		n := snap.Graph.NumNodes()
		srange = predict.SourceRange{Lo: min(int(p.Lo), n), Hi: min(int(p.Hi), n)}
		opt.SourceRange = &srange
		sharded = true
	case sharded:
		// Cost-weighted boundaries, not equal-count: growth traces put the
		// hubs at low IDs, and equal-count ranges leave shard 0 with most of
		// the sweep. The cost model follows the *requested* algorithm's
		// kernel family (wedge, capped-wedge for the pruned bounded sweeps,
		// row-count for the latents), so BCN no longer inherits a boundary
		// priced for an unpruned hub sweep it will never run. The split is a
		// pure function of (snapshot, shards, alg) — every replica serving
		// the same epoch derives the same disjoint cover, and the router
		// learns the ranges from shard_range.
		model := predict.CostModelFor(r.alg)
		srange = predict.WeightedSourceRangesFor(snap.Graph, r.shards, model)[r.shard]
		opt.SourceRange = &srange
	}
	pairs := alg.Predict(snap.Graph, r.k, opt)
	if r.ctx.Err() != nil {
		// The sweep was cut short; the partial top-k is not the contract's
		// bit-identical answer, so it is discarded.
		s.finishDeadline(r)
		return
	}
	res := &Result{
		Alg:           r.alg,
		ServedBy:      served,
		Degraded:      degraded,
		SnapshotSeq:   snap.Seq,
		SnapshotEdges: snap.Edges,
		SnapshotTime:  snap.Time,
		Pairs:         make([]PairScore, len(pairs)),
	}
	if sharded {
		res.SnapshotNodes = snap.Graph.NumNodes()
		res.ShardRange = &[2]int{srange.Lo, srange.Hi}
		if obs.Enabled() {
			obs.GetCounter("serve/shard_predicts").Inc()
		}
	}
	for i, p := range pairs {
		res.Pairs[i] = PairScore{U: s.external(p.U), V: s.external(p.V), Score: p.Score}
		if sharded {
			res.Pairs[i].DU, res.Pairs[i].DV = p.U, p.V
		}
	}
	if degraded && obs.Enabled() {
		obs.GetCounter("serve/degraded_responses").Inc()
	}
	if s.cfg.Eval != nil && !sharded {
		// Prequential record: the ranked top-k in dense IDs, keyed by the
		// snapshot epoch it was computed on, credited to the algorithm
		// that actually ran. The current trace length fences off edges
		// that arrived before this response existed. Shard-restricted
		// responses are never recorded — a partial list is not a ranked
		// prediction; the router owns the merged list and its accuracy.
		ranked := make([][2]graph.NodeID, len(pairs))
		for i, p := range pairs {
			ranked[i] = [2]graph.NodeID{p.U, p.V}
		}
		s.cfg.Eval.Record(served, snap.Seq, snap.Edges, int(s.traceLen.Load()), ranked)
	}
	s.noteServed(r.alg, served, time.Since(start))
	r.done <- outcome{res: res}
}

// serveScoreGroup answers a coalesced batch of same-algorithm score
// requests with one ScorePairs sweep. The first live member is the batch
// leader; its context bounds the shared sweep.
func (s *Server) serveScoreGroup(grp []*request, snap *Snapshot) {
	start := time.Now()
	live := grp[:0:0]
	for _, r := range grp {
		if r.ctx.Err() != nil {
			s.finishDeadline(r)
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	leader := live[0]
	alg, served, degraded, err := s.route(leader.alg)
	if err != nil {
		for _, r := range live {
			r.done <- outcome{err: err}
		}
		return
	}
	if obs.Enabled() {
		obs.GetHistogram("serve/batch_size").Observe(int64(len(live)))
	}
	// Concatenate the in-range pairs of every member. A pair is scorable
	// when both endpoints exist in the queried snapshot; anything else
	// (unknown external ID, node newer than the snapshot) scores zero
	// rather than indexing out of range in the engine.
	n := graph.NodeID(snap.Graph.NumNodes())
	part := snap.Graph.Partition()
	var flat []predict.Pair
	type span struct{ at []int } // flat index per member pair, -1 = unscorable
	spans := make([]span, len(live))
	for m, r := range live {
		at := make([]int, len(r.dense))
		for i, dp := range r.dense {
			if !dp.ok || dp.u >= n || dp.v >= n {
				at[i] = -1
				continue
			}
			if part != nil {
				// A partitioned shard answers only the pairs it owns (min
				// endpoint in range); the rest score zero with Owned unset,
				// and exactly one shard in the cover flags each pair.
				lo := dp.u
				if dp.v < lo {
					lo = dp.v
				}
				if !part.Owns(lo) {
					at[i] = -1
					continue
				}
			}
			at[i] = len(flat)
			flat = append(flat, predict.Pair{U: dp.u, V: dp.v})
		}
		spans[m] = span{at: at}
	}
	opt := s.cfg.Opt
	opt.Ctx = leader.ctx
	var vals []float64
	if len(flat) > 0 {
		vals = alg.ScorePairs(snap.Graph, flat, opt)
	}
	if leader.ctx.Err() != nil {
		// The shared sweep was cancelled; followers retry, the leader owns
		// the deadline.
		s.finishDeadline(leader)
		for _, r := range live[1:] {
			r.done <- outcome{err: ErrBatchAborted}
		}
		return
	}
	for m, r := range live {
		if r.ctx.Err() != nil {
			s.finishDeadline(r)
			continue
		}
		res := &Result{
			Alg:           r.alg,
			ServedBy:      served,
			Degraded:      degraded,
			SnapshotSeq:   snap.Seq,
			SnapshotEdges: snap.Edges,
			SnapshotTime:  snap.Time,
			Pairs:         make([]PairScore, len(r.ext)),
		}
		for i, p := range r.ext {
			score, owned := 0.0, false
			if at := spans[m].at[i]; at >= 0 {
				score, owned = vals[at], part != nil
			}
			res.Pairs[i] = PairScore{U: p[0], V: p[1], Score: score, Owned: owned}
		}
		if degraded && obs.Enabled() {
			obs.GetCounter("serve/degraded_responses").Inc()
		}
		r.done <- outcome{res: res}
	}
	s.noteServed(leader.alg, served, time.Since(start))
}

// noteServed records one executed sweep: the per-(requested, served)
// routing counter, the served algorithm's decayed latency cost for
// accuracy-per-cost routing, and the degradation controller's
// latency/queue observation.
func (s *Server) noteServed(reqAlg, served string, lat time.Duration) {
	s.noteCost(served, lat)
	if obs.Enabled() {
		obs.GetCounter(`serve/served{alg="` + reqAlg + `",by="` + served + `"}`).Inc()
	}
	s.deg.observe(lat, len(s.queue))
}

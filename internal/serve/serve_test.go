package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// testTrace generates the shared seeded fixture: a small Facebook-analogue
// growth trace (~150 nodes, ~1300 edges).
func testTrace(t testing.TB) *graph.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.Facebook(7).Scaled(0.05))
	if err != nil {
		t.Fatalf("generate fixture: %v", err)
	}
	return tr
}

// traceEvents converts a trace's edge stream into ingest events, using the
// trace's dense IDs as the external IDs.
func traceEvents(tr *graph.Trace) []Event {
	events := make([]Event, len(tr.Edges))
	for i, e := range tr.Edges {
		events[i] = Event{U: int64(e.U), V: int64(e.V), T: e.Time}
	}
	return events
}

// newTestServer starts a server with test-friendly defaults, closing it on
// test cleanup. Callers override cfg fields before passing it in.
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	if cfg.Degrade.P95 == 0 && !cfg.Degrade.Disabled {
		cfg.Degrade.Disabled = true // tests opt in to degradation explicitly
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestServePredictMatchesOffline pins the core serving contract: a /predict
// answer is bit-identical to running the offline Predict path on the same
// published snapshot, for a local, a bayesian, and a latent algorithm.
func TestServePredictMatchesOffline(t *testing.T) {
	tr := testTrace(t)
	s := newTestServer(t, Config{SnapshotEvery: 1 << 20, Workers: 2})
	if acc, rej, err := s.Ingest(traceEvents(tr)); err != nil || rej != 0 {
		t.Fatalf("ingest: accepted=%d rejected=%d err=%v", acc, rej, err)
	}
	snap := s.Flush()
	if snap.Seq != 1 {
		t.Fatalf("flush seq = %d, want 1", snap.Seq)
	}
	const k = 25
	for _, name := range []string{"CN", "BAA", "Katz"} {
		res, err := s.Predict(context.Background(), name, k)
		if err != nil {
			t.Fatalf("%s: predict: %v", name, err)
		}
		if res.SnapshotSeq != snap.Seq || res.SnapshotEdges != snap.Edges {
			t.Fatalf("%s: served against snapshot %d/%d edges, want %d/%d",
				name, res.SnapshotSeq, res.SnapshotEdges, snap.Seq, snap.Edges)
		}
		if res.Degraded || res.ServedBy != name {
			t.Fatalf("%s: unexpected degradation: served_by=%s degraded=%v", name, res.ServedBy, res.Degraded)
		}
		alg, err := predict.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want := alg.Predict(snap.Graph, k, s.cfg.Opt)
		if len(res.Pairs) != len(want) {
			t.Fatalf("%s: %d pairs, offline %d", name, len(res.Pairs), len(want))
		}
		for i, w := range want {
			got := res.Pairs[i]
			if got.U != s.external(w.U) || got.V != s.external(w.V) || got.Score != w.Score {
				t.Fatalf("%s: rank %d served %+v, offline %+v", name, i, got, w)
			}
		}
	}
}

// TestServeScoreMatchesOffline pins the same contract for /score, including
// the zero-score handling of unknown external IDs.
func TestServeScoreMatchesOffline(t *testing.T) {
	tr := testTrace(t)
	s := newTestServer(t, Config{SnapshotEvery: 1 << 20, Workers: 1})
	if _, _, err := s.Ingest(traceEvents(tr)); err != nil {
		t.Fatal(err)
	}
	snap := s.Flush()
	ext := [][2]int64{{0, 5}, {3, 3}, {9, 1}, {999999, 0}, {2, 888888}}
	res, err := s.Score(context.Background(), "AA", ext)
	if err != nil {
		t.Fatal(err)
	}
	var flat []predict.Pair
	for _, p := range ext[:3] {
		u, _ := s.lookupDense(p[0])
		v, _ := s.lookupDense(p[1])
		flat = append(flat, predict.Pair{U: u, V: v})
	}
	want := predict.AA.ScorePairs(snap.Graph, flat, s.cfg.Opt)
	for i := range flat {
		if res.Pairs[i].Score != want[i] {
			t.Fatalf("pair %v: served %v, offline %v", ext[i], res.Pairs[i].Score, want[i])
		}
	}
	for i := 3; i < len(ext); i++ {
		if res.Pairs[i].Score != 0 {
			t.Fatalf("unknown-id pair %v scored %v, want 0", ext[i], res.Pairs[i].Score)
		}
		if res.Pairs[i].U != ext[i][0] || res.Pairs[i].V != ext[i][1] {
			t.Fatalf("pair %d echoed as (%d,%d), want %v", i, res.Pairs[i].U, res.Pairs[i].V, ext[i])
		}
	}
}

// TestSnapshotCadence checks the publish cadence: every SnapshotEvery
// accepted edges a new immutable snapshot becomes visible, and OnPublish
// observes each one before queries can reference it.
func TestSnapshotCadence(t *testing.T) {
	tr := testTrace(t)
	events := traceEvents(tr)
	var published []int64
	s := newTestServer(t, Config{
		SnapshotEvery: 100,
		Workers:       1,
		OnPublish:     func(sn *Snapshot) { published = append(published, sn.Seq) },
	})
	for lo := 0; lo < len(events); lo += 37 {
		hi := lo + 37
		if hi > len(events) {
			hi = len(events)
		}
		if _, _, err := s.Ingest(events[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.Flush()
	wantPubs := int64(len(events)/100) + 1 // cadence publishes + the final flush
	if snap.Seq != wantPubs {
		t.Fatalf("final seq = %d, want %d (%d events)", snap.Seq, wantPubs, len(events))
	}
	// OnPublish saw seq 0 (initial) through the final one, in order.
	for i, seq := range published {
		if seq != int64(i) {
			t.Fatalf("publication %d has seq %d", i, seq)
		}
	}
	if snap.Edges != len(events) {
		t.Fatalf("final snapshot folded %d edges, want %d", snap.Edges, len(events))
	}
}

// TestIngestRejectsMalformedEvents checks per-event rejection: negative IDs
// and self loops are dropped individually without poisoning the batch.
func TestIngestRejectsMalformedEvents(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	acc, rej, err := s.Ingest([]Event{
		{U: 0, V: 1, T: 1},
		{U: -1, V: 2, T: 2},
		{U: 3, V: 3, T: 3},
		{U: 1, V: 2, T: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 2 || rej != 2 {
		t.Fatalf("accepted=%d rejected=%d, want 2/2", acc, rej)
	}
	snap := s.Flush()
	if snap.Graph.NumNodes() != 3 || snap.Graph.NumEdges() != 2 {
		t.Fatalf("snapshot has %d nodes / %d edges, want 3/2",
			snap.Graph.NumNodes(), snap.Graph.NumEdges())
	}
}

// blockingAlg parks Predict calls until released, so tests can hold a
// worker busy deterministically.
type blockingAlg struct {
	name    string
	started chan struct{}
	release chan struct{}
}

func (b *blockingAlg) Name() string { return b.name }
func (b *blockingAlg) Predict(g *graph.Graph, k int, opt predict.Options) []predict.Pair {
	b.started <- struct{}{}
	<-b.release
	return nil
}
func (b *blockingAlg) ScorePairs(g *graph.Graph, pairs []predict.Pair, opt predict.Options) []float64 {
	return make([]float64, len(pairs))
}

// TestOverloadBackpressure checks the bounded queue: with the only worker
// parked and the queue full, the next request is rejected with
// ErrOverloaded instead of blocking, and the rejection counter advances.
func TestOverloadBackpressure(t *testing.T) {
	obs.Enable(true)
	obs.Reset()
	t.Cleanup(func() { obs.Enable(false) })
	blocker := &blockingAlg{name: "Block", started: make(chan struct{}), release: make(chan struct{})}
	s := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Resolve: func(name string) (predict.Algorithm, error) {
			if name == "Block" {
				return blocker, nil
			}
			return predict.ByName(name)
		},
	})
	if _, _, err := s.Ingest([]Event{{U: 0, V: 1, T: 1}}); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	errs := make(chan error, 2)
	go func() {
		_, err := s.Predict(context.Background(), "Block", 5)
		errs <- err
	}()
	<-blocker.started // the worker is now parked inside the first request
	go func() {
		_, err := s.Predict(context.Background(), "CN", 5)
		errs <- err
	}()
	// Wait until the second request occupies the queue's only slot (its
	// enqueue is concurrent), then probe: with the worker parked and the
	// queue full, the probe must bounce rather than block.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Predict(context.Background(), "CN", 5); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("probe with full queue: err = %v, want ErrOverloaded", err)
	}
	if got := obs.GetCounter("serve/overload_rejected").Value(); got < 1 {
		t.Fatalf("overload_rejected = %d, want >= 1", got)
	}
	close(blocker.release)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("parked request %d failed: %v", i, err)
		}
	}
}

// TestClosedServerRejects checks shutdown: Close answers everything and
// later calls fail fast with ErrClosed.
func TestClosedServerRejects(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	s.Close()
	if _, _, err := s.Ingest([]Event{{U: 0, V: 1, T: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after close: %v, want ErrClosed", err)
	}
	if _, err := s.Predict(context.Background(), "CN", 5); !errors.Is(err, ErrClosed) {
		t.Fatalf("predict after close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestUnknownAlgorithmRejected checks that resolution fails fast at submit,
// before a queue slot is consumed.
func TestUnknownAlgorithmRejected(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	if _, err := s.Predict(context.Background(), "NoSuchAlg", 5); !errors.Is(err, predict.ErrUnknownAlgorithm) {
		t.Fatalf("err = %v, want ErrUnknownAlgorithm", err)
	}
}

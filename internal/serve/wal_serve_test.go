package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/wal"
)

// walReference replays the exact event stream a WAL test ingests through
// the same validation/first-seen remapping the server applies, yielding
// the reference trace and ID maps a recovered server must prefix-match.
type walReference struct {
	tr    *graph.Trace
	rev   []int64
	remap map[int64]graph.NodeID
}

func buildWALReference(t testing.TB, events []Event) *walReference {
	t.Helper()
	ref := &walReference{tr: &graph.Trace{Name: "live"}, remap: make(map[int64]graph.NodeID)}
	dense := func(id int64) graph.NodeID {
		if d, ok := ref.remap[id]; ok {
			return d
		}
		d := graph.NodeID(len(ref.rev))
		ref.remap[id] = d
		ref.rev = append(ref.rev, id)
		return d
	}
	for _, ev := range events {
		if ev.U < 0 || ev.V < 0 || ev.U == ev.V {
			continue
		}
		u, v := dense(ev.U), dense(ev.V)
		if _, err := ref.tr.Append(u, v, ev.T); err != nil {
			t.Fatalf("reference append: %v", err)
		}
	}
	return ref
}

// requireGraphEqual compares adjacency structure exactly.
func requireGraphEqual(t *testing.T, got, want *graph.Graph, label string) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() || got.Time != want.Time {
		t.Fatalf("%s: graph %v, want %v", label, got, want)
	}
	for u := 0; u < want.NumNodes(); u++ {
		a, b := got.Neighbors(graph.NodeID(u)), want.Neighbors(graph.NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("%s: node %d degree %d, want %d", label, u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: node %d entry %d = %d, want %d", label, u, i, a[i], b[i])
			}
		}
	}
}

// verifyRecoveredServer boots a server from a crash-state storage and
// checks the full recovery contract against the reference stream: the
// recovered trace is a state-prefix, at or past the acked floor, the ID
// maps match, the boot snapshot is bit-identical to an offline
// SnapshotAtEdge recompute, and the server keeps serving.
func verifyRecoveredServer(t *testing.T, st wal.Storage, ref *walReference, ackedFloor int, label string) {
	t.Helper()
	srv, err := New(Config{WAL: st, SnapshotEvery: 64, CheckpointEvery: 128, Workers: 2})
	if err != nil {
		t.Fatalf("%s: recovery boot: %v", label, err)
	}
	defer srv.Close()

	h := srv.Health()
	if h.WAL == nil || !h.WAL.OK {
		t.Fatalf("%s: health WAL block: %+v", label, h.WAL)
	}
	k := h.TraceEdges
	if k < ackedFloor {
		t.Fatalf("%s: recovered %d edges, but %d were acked durable", label, k, ackedFloor)
	}
	if k > len(ref.tr.Edges) {
		t.Fatalf("%s: recovered %d edges, reference has %d", label, k, len(ref.tr.Edges))
	}
	if h.WAL.RecoveredEdges != k {
		t.Fatalf("%s: WAL.RecoveredEdges = %d, want %d", label, h.WAL.RecoveredEdges, k)
	}
	// State-prefix: every recovered edge and external ID matches the
	// reference replay byte for byte.
	srv.mu.Lock()
	tr := srv.trace
	srv.mu.Unlock()
	for i := 0; i < k; i++ {
		if tr.Edges[i] != ref.tr.Edges[i] {
			t.Fatalf("%s: edge %d = %+v, want %+v", label, i, tr.Edges[i], ref.tr.Edges[i])
		}
	}
	srv.idMu.RLock()
	rev := append([]int64(nil), srv.rev...)
	srv.idMu.RUnlock()
	for i := range rev {
		if rev[i] != ref.rev[i] {
			t.Fatalf("%s: rev[%d] = %d, want %d", label, i, rev[i], ref.rev[i])
		}
	}
	// The boot snapshot — rebuilt through checkpoint CSR + tail replay —
	// must equal the offline from-scratch build at the same length.
	snap := srv.Snapshot()
	if snap.Edges != k {
		t.Fatalf("%s: boot snapshot at %d edges, trace has %d", label, snap.Edges, k)
	}
	requireGraphEqual(t, snap.Graph, ref.tr.SnapshotAtEdge(k), label+": boot snapshot")
	// And the server must still serve from it.
	if k > 0 {
		res, err := srv.Predict(context.Background(), "CN", 10)
		if err != nil {
			t.Fatalf("%s: predict after recovery: %v", label, err)
		}
		if res.SnapshotEdges != k {
			t.Fatalf("%s: predict answered at %d edges, want %d", label, res.SnapshotEdges, k)
		}
	}
}

// TestWALServeRaceRecovery is the serving-layer crash drill, run under
// -race in CI: concurrent ingest, background checkpoints, and queries on a
// WAL-backed server; crash states captured mid-flight (the moment-in-time
// journal prefix a SIGKILL would leave — no clean shutdown, synced bytes
// only); each recovered into a fresh server and verified against an
// offline recompute of the same event stream.
func TestWALServeRaceRecovery(t *testing.T) {
	src := testTrace(t)
	events := traceEvents(src)
	if len(events) > 1200 {
		events = events[:1200]
	}
	ref := buildWALReference(t, events)

	st := wal.NewMemStorage()
	srv := newTestServer(t, Config{
		WAL:             st,
		WALOptions:      wal.Options{GroupCommit: 32, SegmentRecords: 128},
		CheckpointEvery: 200,
		SnapshotEvery:   64,
		Workers:         3,
		QueueDepth:      128,
	})

	// Seed a prefix so queriers have known IDs, then hammer concurrently.
	const prefix = 100
	if _, _, err := srv.Ingest(events[:prefix]); err != nil {
		t.Fatal(err)
	}
	var ackedEdges atomic.Int64
	ackedEdges.Store(int64(srv.Health().TraceEdges))

	type crashState struct {
		st    *wal.MemStorage
		floor int
	}
	var crashes []crashState
	var crashMu sync.Mutex
	capture := func() {
		// Order matters: read the acked floor BEFORE snapshotting the
		// journal, so every Ingest counted in floor has its commit bytes in
		// the captured prefix. syncedOnly models a crash that loses the OS
		// page cache: only fsynced bytes survive.
		floor := int(ackedEdges.Load())
		crashMu.Lock()
		crashes = append(crashes, crashState{st: st.Reconstruct(st.TotalWriteBytes(), true), floor: floor})
		crashMu.Unlock()
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // ingester: sequential batches, acked floor after each
		defer wg.Done()
		defer close(done)
		for i := prefix; i < len(events); i += 48 {
			end := min(i+48, len(events))
			if _, _, err := srv.Ingest(events[i:end]); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
			ackedEdges.Store(int64(srv.Health().TraceEdges))
			if (i/48)%6 == 0 {
				capture() // crash snapshots while checkpoints race appends
			}
		}
	}()
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(q int) { // queriers: predict, score, health, flush
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				switch i % 4 {
				case 0:
					if _, err := srv.Predict(ctx, "CN", 8); err != nil && !errors.Is(err, ErrOverloaded) {
						t.Errorf("querier %d predict: %v", q, err)
						return
					}
				case 1:
					pairs := [][2]int64{{events[0].U, events[1].V}, {events[2].U, events[3].V}}
					if _, err := srv.Score(ctx, "AA", pairs); err != nil && !errors.Is(err, ErrOverloaded) {
						t.Errorf("querier %d score: %v", q, err)
						return
					}
				case 2:
					if h := srv.Health(); h.WAL == nil || !h.WAL.OK {
						t.Errorf("querier %d: WAL health %+v", q, h.WAL)
						return
					}
				case 3:
					srv.Flush()
				}
			}
		}(q)
	}
	wg.Wait()
	capture() // the end-of-stream crash state
	srv.Close()

	if h := srv.Health(); h.WAL.Appended != h.WAL.Committed {
		t.Fatalf("acked-but-unflushed window at close: %+v", h.WAL)
	}
	for i, c := range crashes {
		verifyRecoveredServer(t, c.st, ref, c.floor, fmt.Sprintf("crash %d (floor %d)", i, c.floor))
	}
	// The final capture must have lost nothing: every event was acked.
	last := crashes[len(crashes)-1]
	if last.floor != len(ref.tr.Edges) {
		t.Fatalf("final floor %d, reference %d", last.floor, len(ref.tr.Edges))
	}
}

// TestWALServeSeqRestore: recovery restores the serving epoch. A restart
// with no new edges republishes the last logged (seq, edges) pair
// bit-identically; a restart that recovered past the last publish advances
// the epoch so one seq never names two edge counts.
func TestWALServeSeqRestore(t *testing.T) {
	src := testTrace(t)
	events := traceEvents(src)[:300]

	st := wal.NewMemStorage()
	cfg := Config{WAL: st, SnapshotEvery: 64, Workers: 1}
	srv := newTestServer(t, Config{WAL: st, SnapshotEvery: 64, Workers: 1})
	if _, _, err := srv.Ingest(events); err != nil {
		t.Fatal(err)
	}
	snap := srv.Flush()
	srv.Close()

	// Clean restart: same epoch, same snapshot.
	srv2 := newTestServer(t, cfg)
	snap2 := srv2.Snapshot()
	if snap2.Seq != snap.Seq || snap2.Edges != snap.Edges {
		t.Fatalf("clean restart republished (seq %d, edges %d), want (%d, %d)",
			snap2.Seq, snap2.Edges, snap.Seq, snap.Edges)
	}
	srv2.Close()

	// Crash past the last publish: edges beyond snap.Edges were acked but
	// never published. The boot snapshot must take a NEW epoch.
	srv3 := newTestServer(t, Config{WAL: st, SnapshotEvery: 1 << 30, Workers: 1})
	extra := []Event{{U: 900001, V: 900002, T: events[len(events)-1].T + 1}}
	if _, _, err := srv3.Ingest(extra); err != nil {
		t.Fatal(err)
	}
	srv3.Close() // publish never happened for the extra edge
	srv4 := newTestServer(t, cfg)
	defer srv4.Close()
	snap4 := srv4.Snapshot()
	if snap4.Edges != snap.Edges+1 {
		t.Fatalf("restart recovered %d edges, want %d", snap4.Edges, snap.Edges+1)
	}
	if snap4.Seq <= snap.Seq {
		t.Fatalf("boot seq %d does not advance past %d despite new edges", snap4.Seq, snap.Seq)
	}
}

// TestWALServeDurabilityFailure: an injected storage failure latches the
// server read-only for writes — Ingest returns ErrDurability (HTTP 500),
// the health block reports the error — while queries keep serving, and the
// intact log prefix still recovers.
func TestWALServeDurabilityFailure(t *testing.T) {
	src := testTrace(t)
	events := traceEvents(src)[:400]
	ref := buildWALReference(t, events)

	st := wal.NewMemStorage()
	srv := newTestServer(t, Config{
		WAL:           st,
		WALOptions:    wal.Options{GroupCommit: 16, SegmentRecords: 64},
		SnapshotEvery: 128,
		Workers:       1,
	})
	if _, _, err := srv.Ingest(events[:200]); err != nil {
		t.Fatal(err)
	}
	acked := srv.Health().TraceEdges

	st.FailWritesAfter(100) // arm: fail every write after 100 more bytes
	var ingErr error
	for i := 200; i < len(events); i += 16 {
		if _, _, ingErr = srv.Ingest(events[i:min(i+16, len(events))]); ingErr != nil {
			break
		}
	}
	if !errors.Is(ingErr, ErrDurability) {
		t.Fatalf("ingest after write failure: %v, want ErrDurability", ingErr)
	}
	// Sticky: immediate rejection from now on.
	if _, _, err := srv.Ingest(events[:1]); !errors.Is(err, ErrDurability) {
		t.Fatalf("latch not sticky: %v", err)
	}
	h := srv.Health()
	if h.WAL.OK || h.WAL.Error == "" {
		t.Fatalf("health after failure: %+v", h.WAL)
	}
	// Queries still serve from the last snapshot.
	if _, err := srv.Predict(context.Background(), "CN", 5); err != nil {
		t.Fatalf("predict after durability failure: %v", err)
	}
	srv.Close()

	// The synced prefix recovers to at least everything acked pre-failure.
	verifyRecoveredServer(t, st.Reconstruct(st.TotalWriteBytes(), true), ref, acked, "post-failure recovery")
}

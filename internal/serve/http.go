package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// Handler returns the server's HTTP API:
//
//	GET  /predict?alg=CN&k=50[&timeout_ms=200][&shard=i&shards=N]
//	               — top-k ranked candidate links; shard/shards restrict the
//	               sweep to one source shard for the cluster scatter path
//	POST /score    {"alg":"AA","pairs":[[u,v],...][,"timeout_ms":200]}
//	POST /ingest   {"events":[{"u":1,"v":2,"t":10},...]}
//	POST /flush    — publish a snapshot of everything ingested so far
//	GET  /healthz  — serving state
//	GET  /metrics  — telemetry: JSON dump by default (application/json),
//	                 Prometheus text exposition with ?format=prom
//	                 (text/plain; version=0.0.4)
//
// Every endpoint is instrumented when obs is enabled: per-endpoint request
// latency histograms plus one-minute rolling windows, in-flight gauges,
// and per-status response counters, all labeled {endpoint=...}.
//
// Error mapping: unknown algorithm or malformed input → 400, queue full →
// 429, request deadline → 504, aborted coalesced batch or closed server →
// 503.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", instrument("predict", s.handlePredict))
	mux.HandleFunc("/score", instrument("score", s.handleScore))
	mux.HandleFunc("/ingest", instrument("ingest", s.handleIngest))
	mux.HandleFunc("/flush", instrument("flush", s.handleFlush))
	mux.HandleFunc("/healthz", instrument("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", instrument("metrics", obs.Handler().ServeHTTP))
	return mux
}

// statusWriter records the response status for the per-endpoint counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps one endpoint with the serving-health surface:
// request latency (cumulative histogram + one-minute rolling window for
// scraper-free rates), an in-flight gauge, and per-status response
// counters. One atomic load when telemetry is disabled.
func instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !obs.Enabled() {
			h(w, r)
			return
		}
		inflight := obs.GetGauge(`serve/http/in_flight{endpoint="` + endpoint + `"}`)
		inflight.Add(1)
		defer inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		lat := time.Since(start).Nanoseconds()
		obs.GetHistogram(`serve/http/latency_ns{endpoint="` + endpoint + `"}`).Observe(lat)
		obs.GetRolling(`serve/http/latency_ns{endpoint="`+endpoint+`"}`, time.Minute).Add(lat)
		obs.GetCounter(fmt.Sprintf(`serve/http/responses{endpoint=%q,code="%d"}`, endpoint, sw.code)).Inc()
	}
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// errStatus maps a serving error to its HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrBatchAborted), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDurability):
		return http.StatusInternalServerError
	case errors.Is(err, predict.ErrUnknownAlgorithm), errors.Is(err, ErrPartitionUnsupported):
		return http.StatusBadRequest
	default:
		return http.StatusBadRequest
	}
}

// reqCtx derives the request context, applying an optional timeout_ms.
func reqCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	if timeoutMS > 0 {
		return context.WithTimeout(r.Context(), time.Duration(timeoutMS)*time.Millisecond)
	}
	return r.Context(), func() {}
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	alg := q.Get("alg")
	if alg == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "missing alg parameter"})
		return
	}
	k := 50
	if raw := q.Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad k %q", raw)})
			return
		}
		k = v
	}
	var timeoutMS int64
	if raw := q.Get("timeout_ms"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad timeout_ms %q", raw)})
			return
		}
		timeoutMS = v
	}
	// shard/shards select the cluster scatter path: answer only the
	// requested source shard's slice of the sweep (DESIGN.md §12).
	shard, shards := 0, 1
	if raw := q.Get("shards"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad shards %q", raw)})
			return
		}
		shards = v
	}
	if raw := q.Get("shard"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 || v >= shards {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad shard %q of %d", raw, shards)})
			return
		}
		shard = v
	}
	ctx, cancel := reqCtx(r, timeoutMS)
	defer cancel()
	res, err := s.PredictShard(ctx, alg, k, shard, shards)
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type scoreRequest struct {
	Alg       string     `json:"alg"`
	Pairs     [][2]int64 `json:"pairs"`
	TimeoutMS int64      `json:"timeout_ms"`
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST required"})
		return
	}
	var req scoreRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad score request: " + err.Error()})
		return
	}
	if req.Alg == "" || len(req.Pairs) == 0 {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "alg and pairs are required"})
		return
	}
	ctx, cancel := reqCtx(r, req.TimeoutMS)
	defer cancel()
	res, err := s.Score(ctx, req.Alg, req.Pairs)
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type ingestRequest struct {
	Events []Event `json:"events"`
}

type ingestResponse struct {
	Accepted    int   `json:"accepted"`
	Rejected    int   `json:"rejected"`
	SnapshotSeq int64 `json:"snapshot_seq"`
	TraceEdges  int   `json:"trace_edges"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST required"})
		return
	}
	var req ingestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad ingest request: " + err.Error()})
		return
	}
	accepted, rejected, err := s.Ingest(req.Events)
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	h := s.Health()
	writeJSON(w, http.StatusOK, ingestResponse{
		Accepted:    accepted,
		Rejected:    rejected,
		SnapshotSeq: h.SnapshotSeq,
		TraceEdges:  h.TraceEdges,
	})
}

type flushResponse struct {
	SnapshotSeq   int64 `json:"snapshot_seq"`
	SnapshotEdges int   `json:"snapshot_edges"`
	Nodes         int   `json:"nodes"`
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST required"})
		return
	}
	snap := s.Flush()
	writeJSON(w, http.StatusOK, flushResponse{
		SnapshotSeq:   snap.Seq,
		SnapshotEdges: snap.Edges,
		Nodes:         snap.Graph.NumNodes(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

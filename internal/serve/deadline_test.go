package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// chunkAlg simulates a scorer that works in fixed-duration chunks and
// honors Options.Ctx between chunks — the same cancellation granularity the
// real engine has (one chunk claim). It lets the deadline tests control
// sweep duration precisely on a tiny graph.
type chunkAlg struct {
	chunk  time.Duration
	chunks int
}

func (a *chunkAlg) Name() string { return "Chunky" }

func (a *chunkAlg) run(ctx context.Context) {
	for i := 0; i < a.chunks; i++ {
		if ctx != nil && ctx.Err() != nil {
			return
		}
		time.Sleep(a.chunk)
	}
}

func (a *chunkAlg) Predict(g *graph.Graph, k int, opt predict.Options) []predict.Pair {
	a.run(opt.Ctx)
	return []predict.Pair{{U: 0, V: 1, Score: 1}}
}

func (a *chunkAlg) ScorePairs(g *graph.Graph, pairs []predict.Pair, opt predict.Options) []float64 {
	a.run(opt.Ctx)
	return make([]float64, len(pairs))
}

// TestDeadlines is the table-driven deadline contract: expired or
// too-short contexts return context.DeadlineExceeded promptly — bounded by
// one chunk of engine work, not the full sweep — ample ones succeed, and
// the serve/deadline_exceeded counter advances exactly once per expired
// request.
func TestDeadlines(t *testing.T) {
	obs.Enable(true)
	t.Cleanup(func() { obs.Enable(false) })

	const chunk = 20 * time.Millisecond
	cases := []struct {
		name    string
		kind    reqKind
		timeout time.Duration // 0 = already-cancelled context
		chunks  int           // sweep length in chunks
		wantErr error
		// maxElapsed bounds the response time: deadline + one chunk + slack.
		maxElapsed time.Duration
	}{
		{
			name: "predict expired before service", kind: kindPredict,
			timeout: 0, chunks: 50,
			wantErr: context.Canceled, maxElapsed: chunk,
		},
		{
			name: "predict expires mid sweep", kind: kindPredict,
			timeout: 2 * chunk, chunks: 50,
			wantErr: context.DeadlineExceeded, maxElapsed: 2*chunk + chunk + 250*time.Millisecond,
		},
		{
			name: "predict ample deadline", kind: kindPredict,
			timeout: 10 * time.Second, chunks: 2,
			wantErr: nil, maxElapsed: 5 * time.Second,
		},
		{
			name: "score expired before service", kind: kindScore,
			timeout: 0, chunks: 50,
			wantErr: context.Canceled, maxElapsed: chunk,
		},
		{
			name: "score expires mid sweep", kind: kindScore,
			timeout: 2 * chunk, chunks: 50,
			wantErr: context.DeadlineExceeded, maxElapsed: 2*chunk + chunk + 250*time.Millisecond,
		},
		{
			name: "score ample deadline", kind: kindScore,
			timeout: 10 * time.Second, chunks: 2,
			wantErr: nil, maxElapsed: 5 * time.Second,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			obs.Reset()
			alg := &chunkAlg{chunk: chunk, chunks: tc.chunks}
			s := newTestServer(t, Config{
				Workers: 1,
				Resolve: func(name string) (predict.Algorithm, error) {
					if name == "Chunky" {
						return alg, nil
					}
					return predict.ByName(name)
				},
			})
			if _, _, err := s.Ingest([]Event{{U: 0, V: 1, T: 1}, {U: 1, V: 2, T: 2}}); err != nil {
				t.Fatal(err)
			}
			s.Flush()

			ctx := context.Background()
			var cancel context.CancelFunc
			if tc.timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, tc.timeout)
			} else {
				ctx, cancel = context.WithCancel(ctx)
				cancel() // expired before the request is even submitted
			}
			defer cancel()

			start := time.Now()
			var err error
			if tc.kind == kindPredict {
				_, err = s.Predict(ctx, "Chunky", 5)
			} else {
				_, err = s.Score(ctx, "Chunky", [][2]int64{{0, 2}})
			}
			elapsed := time.Since(start)

			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if elapsed > tc.maxElapsed {
				t.Errorf("took %v, deadline contract bounds it by %v", elapsed, tc.maxElapsed)
			}
			wantCount := int64(0)
			if tc.wantErr != nil {
				wantCount = 1
			}
			if got := obs.GetCounter("serve/deadline_exceeded").Value(); got != wantCount {
				t.Errorf("serve/deadline_exceeded = %d, want %d", got, wantCount)
			}
		})
	}
}

// TestDeadlineRealEngine drives a real latent sweep (Katz) with an
// already-expired context through the full stack: the engine's per-chunk
// context checks surface the deadline instead of completing the sweep.
func TestDeadlineRealEngine(t *testing.T) {
	obs.Enable(true)
	t.Cleanup(func() { obs.Enable(false) })
	obs.Reset()
	tr := testTrace(t)
	s := newTestServer(t, Config{Workers: 1})
	if _, _, err := s.Ingest(traceEvents(tr)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Predict(ctx, "Katz", 25); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := obs.GetCounter("serve/deadline_exceeded").Value(); got != 1 {
		t.Fatalf("serve/deadline_exceeded = %d, want 1", got)
	}
	// The same request with a live context succeeds and matches offline.
	res, err := s.Predict(context.Background(), "Katz", 25)
	if err != nil {
		t.Fatal(err)
	}
	want := mustAlg(t, "Katz").Predict(s.Snapshot().Graph, 25, s.cfg.Opt)
	if len(res.Pairs) != len(want) {
		t.Fatalf("%d pairs, offline %d", len(res.Pairs), len(want))
	}
	for i, w := range want {
		if res.Pairs[i].Score != w.Score {
			t.Fatalf("rank %d score %v, offline %v", i, res.Pairs[i].Score, w.Score)
		}
	}
}

func mustAlg(t *testing.T, name string) predict.Algorithm {
	t.Helper()
	a, err := predict.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

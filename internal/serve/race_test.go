package serve

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"linkpred/internal/predict"
)

// TestServeRaceIntegration exercises the full concurrent serving path —
// parallel ingest, snapshot publication, and queries — and then proves no
// response was computed against a torn or unpublished snapshot: every
// response names a snapshot seq the OnPublish hook observed *before* the
// pointer swap, and recomputing the query offline on that recorded
// snapshot reproduces the served payload bit for bit. Run under -race in
// CI (see the GOMAXPROCS matrix).
func TestServeRaceIntegration(t *testing.T) {
	tr := testTrace(t)
	events := traceEvents(tr)
	if len(events) < 600 {
		t.Fatalf("fixture too small: %d events", len(events))
	}

	var pubMu sync.Mutex
	published := make(map[int64]*Snapshot)
	s := newTestServer(t, Config{
		SnapshotEvery: 64,
		Workers:       4,
		QueueDepth:    256,
		MaxBatch:      8,
		Opt:           func() predict.Options { o := predict.DefaultOptions(); o.Workers = 2; return o }(),
		OnPublish: func(sn *Snapshot) {
			pubMu.Lock()
			published[sn.Seq] = sn
			pubMu.Unlock()
		},
	})

	// Ingest a prefix synchronously so queriers have known external IDs.
	const prefix = 200
	if _, _, err := s.Ingest(events[:prefix]); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	var ids []int64
	seen := make(map[int64]bool)
	for _, ev := range events[:prefix] {
		for _, id := range []int64{ev.U, ev.V} {
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}

	type record struct {
		kind reqKind
		alg  string
		ext  [][2]int64
		res  *Result
	}

	var wg sync.WaitGroup
	rest := events[prefix:]

	// Two ingesters interleave chunks of the remaining stream while a
	// flusher forces extra publications between cadence points.
	for part := 0; part < 2; part++ {
		wg.Add(1)
		go func(part int) {
			defer wg.Done()
			for c := part * 8; c < len(rest); c += 16 {
				hi := c + 8
				if hi > len(rest) {
					hi = len(rest)
				}
				if _, _, err := s.Ingest(rest[c:hi]); err != nil {
					t.Errorf("ingest: %v", err)
					return
				}
				runtime.Gosched()
			}
		}(part)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.Flush()
			runtime.Gosched()
		}
	}()

	// Four queriers mix top-k and coalesced pair-score requests, recording
	// every successful response for offline verification.
	records := make([][]record, 4)
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for iter := 0; iter < 30; iter++ {
				switch (q + iter) % 3 {
				case 0, 1:
					alg := "CN"
					if (q+iter)%3 == 1 {
						alg = "AA"
					}
					res, err := s.Predict(context.Background(), alg, 10)
					if errors.Is(err, ErrOverloaded) {
						continue
					}
					if err != nil {
						t.Errorf("querier %d: predict %s: %v", q, alg, err)
						return
					}
					records[q] = append(records[q], record{kind: kindPredict, alg: alg, res: res})
				case 2:
					ext := make([][2]int64, 0, 6)
					for j := 0; j < 6; j++ {
						u := ids[(q*31+iter*7+j)%len(ids)]
						v := ids[(q*17+iter*13+j*5)%len(ids)]
						ext = append(ext, [2]int64{u, v})
					}
					res, err := s.Score(context.Background(), "RA", ext)
					if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrBatchAborted) {
						continue
					}
					if err != nil {
						t.Errorf("querier %d: score: %v", q, err)
						return
					}
					records[q] = append(records[q], record{kind: kindScore, alg: "RA", ext: ext, res: res})
				}
			}
		}(q)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	final := s.Flush()
	if final.Edges != len(events) {
		t.Fatalf("final snapshot folded %d edges, want %d", final.Edges, len(events))
	}

	// Offline verification: every recorded response must be reproducible
	// bit for bit from the published snapshot it claims.
	opt := s.cfg.Opt
	verified := 0
	for q, recs := range records {
		for i, rec := range recs {
			pubMu.Lock()
			snap := published[rec.res.SnapshotSeq]
			pubMu.Unlock()
			if snap == nil {
				t.Fatalf("querier %d record %d: response names unpublished snapshot seq %d", q, i, rec.res.SnapshotSeq)
			}
			if rec.res.SnapshotEdges != snap.Edges || rec.res.SnapshotTime != snap.Time {
				t.Fatalf("querier %d record %d: snapshot fields (%d,%d) disagree with publication (%d,%d)",
					q, i, rec.res.SnapshotEdges, rec.res.SnapshotTime, snap.Edges, snap.Time)
			}
			alg := mustAlg(t, rec.alg)
			switch rec.kind {
			case kindPredict:
				want := alg.Predict(snap.Graph, 10, opt)
				if len(rec.res.Pairs) != len(want) {
					t.Fatalf("querier %d record %d (%s@%d): %d pairs, offline %d",
						q, i, rec.alg, rec.res.SnapshotSeq, len(rec.res.Pairs), len(want))
				}
				for j, w := range want {
					got := rec.res.Pairs[j]
					if got.U != s.external(w.U) || got.V != s.external(w.V) || got.Score != w.Score {
						t.Fatalf("querier %d record %d (%s@%d): rank %d served %+v, offline %+v",
							q, i, rec.alg, rec.res.SnapshotSeq, j, got, w)
					}
				}
			case kindScore:
				n := snap.Graph.NumNodes()
				for j, p := range rec.ext {
					u, uok := s.lookupDense(p[0])
					v, vok := s.lookupDense(p[1])
					var want float64
					if uok && vok && int(u) < n && int(v) < n {
						want = alg.ScorePairs(snap.Graph, []predict.Pair{{U: u, V: v}}, opt)[0]
					}
					if rec.res.Pairs[j].Score != want {
						t.Fatalf("querier %d record %d (%s@%d): pair %v served %v, offline %v",
							q, i, rec.alg, rec.res.SnapshotSeq, p, rec.res.Pairs[j].Score, want)
					}
				}
			}
			verified++
		}
	}
	if verified == 0 {
		t.Fatal("no responses were verified")
	}
	t.Logf("verified %d responses against %d published snapshots", verified, len(published))
}

package serve

import (
	"context"
	"testing"
	"time"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// slowLatent wraps a real latent algorithm with a fixed artificial delay,
// simulating a latent sweep that blows the latency budget on a cold
// snapshot.
type slowLatent struct {
	inner predict.Algorithm
	delay time.Duration
	calls int // sweeps actually executed on the latent path
}

func (s *slowLatent) Name() string { return s.inner.Name() }
func (s *slowLatent) Predict(g *graph.Graph, k int, opt predict.Options) []predict.Pair {
	s.calls++
	time.Sleep(s.delay)
	return s.inner.Predict(g, k, opt)
}
func (s *slowLatent) ScorePairs(g *graph.Graph, pairs []predict.Pair, opt predict.Options) []float64 {
	time.Sleep(s.delay)
	return s.inner.ScorePairs(g, pairs, opt)
}

// TestDegradationProperty pins the graceful-degradation contract end to
// end with an injected slow latent scorer:
//
//  1. the first (slow) Katz sweep trips the controller;
//  2. while degraded, Katz requests are served by the AA proxy, flagged
//     Degraded with ServedBy "AA", and are bit-identical to running AA
//     offline on the same snapshot — degradation never makes output
//     nondeterministic;
//  3. fast proxy sweeps recover the controller after RecoverAfter healthy
//     observations, and the next Katz request takes the latent path again;
//  4. serve/degraded_responses matches the flagged responses exactly.
func TestDegradationProperty(t *testing.T) {
	obs.Enable(true)
	obs.Reset()
	t.Cleanup(func() { obs.Enable(false) })

	const (
		k            = 20
		recoverAfter = 3
		p95Limit     = 60 * time.Millisecond
		slowDelay    = 150 * time.Millisecond
	)
	tr := testTrace(t)
	slow := &slowLatent{inner: mustAlg(t, "Katz"), delay: slowDelay}
	s := newTestServer(t, Config{
		SnapshotEvery: 1 << 20,
		Workers:       1, // serialize sweeps so controller transitions are deterministic
		Degrade: DegradeConfig{
			P95:          p95Limit,
			Window:       1, // react to the latest sweep alone
			RecoverAfter: recoverAfter,
		},
		Resolve: func(name string) (predict.Algorithm, error) {
			if name == "Katz" {
				return slow, nil
			}
			return predict.ByName(name)
		},
	})
	if _, _, err := s.Ingest(traceEvents(tr)); err != nil {
		t.Fatal(err)
	}
	snap := s.Flush()
	wantProxy := mustAlg(t, "AA").Predict(snap.Graph, k, s.cfg.Opt)

	ask := func() *Result {
		t.Helper()
		res, err := s.Predict(context.Background(), "Katz", k)
		if err != nil {
			t.Fatalf("predict: %v", err)
		}
		return res
	}

	// 1. The first sweep takes the (slow) latent path and trips the
	// controller on its way out.
	r1 := ask()
	if r1.Degraded || r1.ServedBy != "Katz" {
		t.Fatalf("first response: served_by=%s degraded=%v, want the latent path", r1.ServedBy, r1.Degraded)
	}
	if !s.Degraded() {
		t.Fatal("controller did not trip after a slow sweep")
	}

	// 2. Degraded responses: flagged, proxy-served, deterministic.
	var degradedSeen int
	for i := 0; i < recoverAfter; i++ {
		r := ask()
		if !r.Degraded || r.ServedBy != "AA" {
			t.Fatalf("response %d under degradation: served_by=%s degraded=%v, want AA/true", i, r.ServedBy, r.Degraded)
		}
		degradedSeen++
		if len(r.Pairs) != len(wantProxy) {
			t.Fatalf("degraded response %d: %d pairs, proxy offline %d", i, len(r.Pairs), len(wantProxy))
		}
		for j, w := range wantProxy {
			got := r.Pairs[j]
			if got.U != s.external(w.U) || got.V != s.external(w.V) || got.Score != w.Score {
				t.Fatalf("degraded response %d rank %d: %+v, proxy offline %+v", i, j, got, w)
			}
		}
	}

	// 3. recoverAfter fast proxy sweeps re-enable the latent path.
	if s.Degraded() {
		t.Fatalf("controller still degraded after %d healthy sweeps", recoverAfter)
	}
	r5 := ask()
	if r5.Degraded || r5.ServedBy != "Katz" {
		t.Fatalf("post-recovery response: served_by=%s degraded=%v, want the latent path", r5.ServedBy, r5.Degraded)
	}

	// 4. The counter matches the flagged responses exactly.
	if got := obs.GetCounter("serve/degraded_responses").Value(); got != int64(degradedSeen) {
		t.Fatalf("serve/degraded_responses = %d, %d responses were flagged", got, degradedSeen)
	}
	if got := obs.GetCounter("serve/degrade_transitions").Value(); got != 2 {
		t.Fatalf("serve/degrade_transitions = %d, want 2 (tripped by both slow sweeps)", got)
	}
	if slow.calls != 2 {
		t.Fatalf("latent path swept %d times, want 2 (first sweep and post-recovery sweep)", slow.calls)
	}
}

// TestDegradeScorePath checks the pair-score side: a degraded Katz score
// request is served by the AA proxy, flagged, and bit-identical to AA's
// offline ScorePairs.
func TestDegradeScorePath(t *testing.T) {
	obs.Enable(true)
	obs.Reset()
	t.Cleanup(func() { obs.Enable(false) })
	tr := testTrace(t)
	s := newTestServer(t, Config{
		SnapshotEvery: 1 << 20,
		Workers:       1,
		Degrade:       DegradeConfig{P95: 40 * time.Millisecond, Window: 1, RecoverAfter: 100},
		Resolve: func(name string) (predict.Algorithm, error) {
			a, err := predict.ByName(name)
			if err != nil {
				return nil, err
			}
			if name == "Katz" {
				return &slowLatent{inner: a, delay: 100 * time.Millisecond}, nil
			}
			return a, nil
		},
	})
	if _, _, err := s.Ingest(traceEvents(tr)); err != nil {
		t.Fatal(err)
	}
	snap := s.Flush()
	if _, err := s.Predict(context.Background(), "Katz", 5); err != nil { // trip it
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("controller did not trip")
	}
	ext := [][2]int64{{0, 7}, {4, 9}, {1, 12}}
	res, err := s.Score(context.Background(), "Katz", ext)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.ServedBy != "AA" {
		t.Fatalf("served_by=%s degraded=%v, want AA/true", res.ServedBy, res.Degraded)
	}
	var flat []predict.Pair
	for _, p := range ext {
		u, _ := s.lookupDense(p[0])
		v, _ := s.lookupDense(p[1])
		flat = append(flat, predict.Pair{U: u, V: v})
	}
	want := predict.AA.ScorePairs(snap.Graph, flat, s.cfg.Opt)
	for i := range want {
		if res.Pairs[i].Score != want[i] {
			t.Fatalf("pair %v: degraded score %v, proxy offline %v", ext[i], res.Pairs[i].Score, want[i])
		}
	}
}

// TestDegraderHysteresis unit-tests the controller: one over-limit
// observation trips it, recovery needs RecoverAfter consecutive healthy
// ones, and a relapse resets the healthy run.
func TestDegraderHysteresis(t *testing.T) {
	d := newDegrader(DegradeConfig{P95: 10 * time.Millisecond, Window: 1, RecoverAfter: 3, QueueDepth: 100}, 128)
	if d.degraded() {
		t.Fatal("fresh controller is degraded")
	}
	d.observe(50*time.Millisecond, 0)
	if !d.degraded() {
		t.Fatal("over-limit latency did not trip")
	}
	d.observe(time.Millisecond, 0)
	d.observe(time.Millisecond, 0)
	if !d.degraded() {
		t.Fatal("recovered before RecoverAfter healthy observations")
	}
	d.observe(50*time.Millisecond, 0) // relapse resets the run
	d.observe(time.Millisecond, 0)
	d.observe(time.Millisecond, 0)
	if !d.degraded() {
		t.Fatal("relapse did not reset the healthy run")
	}
	d.observe(time.Millisecond, 0)
	if d.degraded() {
		t.Fatal("did not recover after RecoverAfter consecutive healthy observations")
	}
	// Queue depth alone also trips it.
	d.observe(time.Millisecond, 101)
	if !d.degraded() {
		t.Fatal("over-limit queue depth did not trip")
	}
}

package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// testPartitionBounds is a deliberately uneven static ownership cover of
// the dense ID space: the last shard's Hi is a sentinel far above any node
// the fixture creates, as an operator would configure it.
var testPartitionBounds = [][2]int{{0, 40}, {40, 90}, {90, 1 << 30}}

// newPartitionedSet starts one full server plus one partitioned server per
// bound, ingests the same fixture into all of them, and flushes.
func newPartitionedSet(t *testing.T, seed int64) (full *Server, parts []*Server) {
	t.Helper()
	events := traceEvents(testTrace(t))
	mk := func(p *[2]int) *Server {
		cfg := Config{SnapshotEvery: 1 << 20, Workers: 2, Partition: p}
		cfg.Opt.Seed = seed
		s := newTestServer(t, cfg)
		if acc, rej, err := s.Ingest(events); err != nil || rej != 0 {
			t.Fatalf("ingest: accepted=%d rejected=%d err=%v", acc, rej, err)
		}
		s.Flush()
		return s
	}
	full = mk(nil)
	for i := range testPartitionBounds {
		b := testPartitionBounds[i]
		parts = append(parts, mk(&b))
	}
	return full, parts
}

// TestServePartitionedPredict checks the partitioned serving contract end
// to end: each shard sweeps exactly its clamped ownership range, reports it
// as a shard-restricted response, and merging the shards' partial lists
// with the engine's own MergeTopK reproduces the full server's unrestricted
// ranking bit for bit.
func TestServePartitionedPredict(t *testing.T) {
	const seed, k = 11, 25
	full, parts := newPartitionedSet(t, seed)
	ctx := context.Background()
	n := full.Snapshot().Graph.NumNodes()

	for _, alg := range []string{"CN", "AA", "RA", "PA", "LHN"} {
		want, err := full.Predict(ctx, alg, k)
		if err != nil {
			t.Fatalf("%s: full predict: %v", alg, err)
		}
		lists := make([][]predict.Pair, len(parts))
		for i, s := range parts {
			res, err := s.Predict(ctx, alg, k)
			if err != nil {
				t.Fatalf("%s: shard %d: %v", alg, i, err)
			}
			if res.ShardRange == nil || res.SnapshotNodes != n {
				t.Fatalf("%s: shard %d response not shard-restricted: %+v", alg, i, res)
			}
			wantLo, wantHi := testPartitionBounds[i][0], testPartitionBounds[i][1]
			if wantHi > n {
				wantHi = n
			}
			if got := *res.ShardRange; got != [2]int{wantLo, wantHi} {
				t.Fatalf("%s: shard %d swept %v, want [%d %d]", alg, i, got, wantLo, wantHi)
			}
			lists[i] = make([]predict.Pair, len(res.Pairs))
			for j, p := range res.Pairs {
				lists[i][j] = predict.Pair{U: p.DU, V: p.DV, Score: p.Score}
			}
		}
		merged := predict.MergeTopK(lists, k, seed)
		if len(merged) != len(want.Pairs) {
			t.Fatalf("%s: merged %d pairs, full served %d", alg, len(merged), len(want.Pairs))
		}
		for i, p := range merged {
			w := want.Pairs[i]
			if full.external(p.U) != w.U || full.external(p.V) != w.V || p.Score != w.Score {
				t.Fatalf("%s: rank %d: merged (%d,%d,%v), full (%d,%d,%v)",
					alg, i, full.external(p.U), full.external(p.V), p.Score, w.U, w.V, w.Score)
			}
		}
	}
}

// TestServePartitionedRejects pins the refusal surface: non-partition-safe
// algorithms and router-style shard parameters are rejected up front with
// ErrPartitionUnsupported, mapped to HTTP 400.
func TestServePartitionedRejects(t *testing.T) {
	b := [2]int{0, 1 << 30}
	cfg := Config{SnapshotEvery: 1 << 20, Partition: &b}
	s := newTestServer(t, cfg)
	ctx := context.Background()

	for _, alg := range []string{"Katz", "KatzSC", "Rescal", "BCN", "SP", "PPR"} {
		if _, err := s.Predict(ctx, alg, 5); !errors.Is(err, ErrPartitionUnsupported) {
			t.Fatalf("Predict(%s) err = %v, want ErrPartitionUnsupported", alg, err)
		}
		if _, err := s.Score(ctx, alg, [][2]int64{{1, 2}}); !errors.Is(err, ErrPartitionUnsupported) {
			t.Fatalf("Score(%s) err = %v, want ErrPartitionUnsupported", alg, err)
		}
	}
	if _, err := s.PredictShard(ctx, "CN", 5, 0, 2); !errors.Is(err, ErrPartitionUnsupported) {
		t.Fatalf("PredictShard err = %v, want ErrPartitionUnsupported", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/predict?alg=Katz&k=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partitioned Katz predict status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/score", "application/json",
		strings.NewReader(`{"alg":"Rescal","pairs":[[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partitioned Rescal score status = %d, want 400", resp.StatusCode)
	}

	if _, err := New(Config{Partition: &[2]int{5, 5}}); err == nil {
		t.Fatal("New accepted an empty partition range")
	}
}

// TestServePartitionedScoreOwned checks the ownership contract on the score
// path: every resolvable pair is flagged Owned by exactly one shard, the
// owning shard's score equals the full server's, and non-owners (and pairs
// with unknown endpoints) answer zero without the flag.
func TestServePartitionedScoreOwned(t *testing.T) {
	const seed = 13
	full, parts := newPartitionedSet(t, seed)
	ctx := context.Background()

	pairs := [][2]int64{{0, 1}, {3, 97}, {41, 88}, {90, 145}, {2, 9999999}}
	want, err := full.Score(ctx, "AA", pairs)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]int, len(pairs))
	for i := range owners {
		owners[i] = -1
	}
	for si, s := range parts {
		res, err := s.Score(ctx, "AA", pairs)
		if err != nil {
			t.Fatalf("shard %d: %v", si, err)
		}
		for i, p := range res.Pairs {
			if !p.Owned {
				if p.Score != 0 {
					t.Fatalf("shard %d pair %v: unowned but scored %v", si, pairs[i], p.Score)
				}
				continue
			}
			if owners[i] != -1 {
				t.Fatalf("pair %v owned by shards %d and %d", pairs[i], owners[i], si)
			}
			owners[i] = si
			if p.Score != want.Pairs[i].Score {
				t.Fatalf("pair %v: owned score %v, full %v", pairs[i], p.Score, want.Pairs[i].Score)
			}
		}
	}
	for i, owner := range owners {
		known := pairs[i][0] < 9999999 && pairs[i][1] < 9999999
		if known && owner == -1 {
			t.Fatalf("pair %v has no owner", pairs[i])
		}
		if !known && owner != -1 {
			t.Fatalf("unknown-endpoint pair %v claimed by shard %d", pairs[i], owner)
		}
	}
}

// TestServePartitionedHealthAndMetrics checks the memory telemetry: the
// partitioned shard's health reports its bounds and a resident footprint no
// larger than the full server's, and the Prometheus exposition carries the
// snapshot_bytes / partitioned_bytes / publish_delta_rows families and
// passes the linter.
func TestServePartitionedHealthAndMetrics(t *testing.T) {
	obs.Reset()
	obs.Enable(true)
	defer func() {
		obs.Enable(false)
		obs.Reset()
	}()

	events := traceEvents(testTrace(t))
	fullCfg := Config{SnapshotEvery: 64}
	full := newTestServer(t, fullCfg)
	if _, _, err := full.Ingest(events); err != nil {
		t.Fatal(err)
	}
	full.Flush()
	// A high-lo shard, where partitioning genuinely drops rows: shard 0
	// (lo=0) keeps every min-endpoint entry by construction and saves
	// nothing on a small graph (DESIGN.md §13 quantifies this asymmetry).
	// Created after the full server so the process-global gauge callbacks
	// read the partitioned server (last registration wins).
	b := [2]int{90, 1 << 30}
	cfg := Config{SnapshotEvery: 64, Partition: &b}
	s := newTestServer(t, cfg)
	if _, _, err := s.Ingest(events); err != nil {
		t.Fatal(err)
	}
	s.Flush()

	h := s.Health()
	if h.PartitionRange == nil || *h.PartitionRange != b {
		t.Fatalf("health partition_range = %v, want %v", h.PartitionRange, b)
	}
	if h.SnapshotBytes <= 0 {
		t.Fatalf("health snapshot_bytes = %d, want > 0", h.SnapshotBytes)
	}
	if fh := full.Health(); fh.PartitionRange != nil || h.SnapshotBytes >= fh.SnapshotBytes {
		t.Fatalf("partitioned resident %d bytes exceeds full %d (full range=%v)",
			h.SnapshotBytes, fh.SnapshotBytes, fh.PartitionRange)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 0, 1<<20)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		body = append(body, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	resp.Body.Close()
	if err := obs.LintPrometheus(body); err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}
	for _, fam := range []string{
		"linkpred_serve_snapshot_bytes",
		"linkpred_serve_partitioned_bytes",
		"linkpred_serve_publish_delta_rows",
	} {
		if !strings.Contains(string(body), fam) {
			t.Fatalf("exposition missing family %s", fam)
		}
	}

	// The partitioned gauge mirrors the snapshot gauge on a partitioned
	// shard; on the full server it must read zero.
	if got := gaugeValue(t, body, "linkpred_serve_snapshot_bytes"); got != float64(s.Health().SnapshotBytes) {
		t.Fatalf("snapshot_bytes gauge = %v, health says %d", got, s.Health().SnapshotBytes)
	}
	if got := gaugeValue(t, body, "linkpred_serve_partitioned_bytes"); got == 0 {
		t.Fatal("partitioned_bytes gauge is zero on a partitioned shard")
	}
}

// gaugeValue extracts one unlabeled gauge sample from a Prometheus
// exposition.
func gaugeValue(t *testing.T, body []byte, family string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, family+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[len(family)+1:], "%g", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("family %s has no sample", family)
	return 0
}

// TestServePartitionedDeltaPublish checks that incremental publishes on a
// partitioned server keep the delta counters moving and that graph state
// reaches queries through the partition: a freshly ingested edge's
// endpoints score against the new snapshot.
func TestServePartitionedDeltaPublish(t *testing.T) {
	b := [2]int{0, 1 << 30}
	cfg := Config{SnapshotEvery: 4, Partition: &b}
	s := newTestServer(t, cfg)
	ctx := context.Background()

	var events []Event
	for i := 0; i < 32; i++ {
		events = append(events, Event{U: int64(i), V: int64(i + 1), T: int64(i)})
	}
	if _, _, err := s.Ingest(events); err != nil {
		t.Fatal(err)
	}
	snap := s.Flush()
	if snap.Graph.Partition() == nil {
		t.Fatal("published snapshot is not partitioned")
	}
	res, err := s.Score(ctx, "CN", [][2]int64{{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs[0].Score != 1 || !res.Pairs[0].Owned {
		t.Fatalf("CN(0,2) = %+v, want owned score 1", res.Pairs[0])
	}
	g1 := snap.Graph
	if _, _, err := s.Ingest([]Event{{U: 0, V: 33, T: 100}, {U: 2, V: 33, T: 101}}); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	res, err = s.Score(ctx, "CN", [][2]int64{{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs[0].Score != 2 {
		t.Fatalf("CN(0,2) after delta publish = %v, want 2", res.Pairs[0].Score)
	}
	// The earlier snapshot must be untouched by the later publish.
	if got := graph.NodeID(g1.NumNodes()); got != 33 {
		t.Fatalf("old snapshot grew to %d nodes", got)
	}
}

package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"linkpred/internal/obs"
)

// degrader is the graceful-degradation controller. Workers feed it one
// observation per executed sweep (latency plus the queue depth at finish);
// it maintains a rolling latency window and trips when the window's p95 or
// the queue depth crosses its threshold. Recovery is hysteretic: the
// latent path re-enables only after RecoverAfter consecutive healthy
// observations, so a single fast request under sustained pressure cannot
// flap the route.
//
// The degraded flag is read lock-free on every request (route); only the
// observation path takes the mutex.
type degrader struct {
	p95Limit   time.Duration
	queueLimit int
	recover    int
	disabled   bool

	state atomic.Bool

	mu      sync.Mutex
	ring    []time.Duration
	next    int
	filled  int
	healthy int
	scratch []time.Duration
}

func newDegrader(cfg DegradeConfig, queueCap int) *degrader {
	if cfg.P95 <= 0 {
		cfg.P95 = 250 * time.Millisecond
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = queueCap * 3 / 4
		if cfg.QueueDepth < 1 {
			cfg.QueueDepth = 1
		}
	}
	if cfg.Window <= 0 {
		cfg.Window = 32
	}
	if cfg.RecoverAfter <= 0 {
		cfg.RecoverAfter = 16
	}
	return &degrader{
		p95Limit:   cfg.P95,
		queueLimit: cfg.QueueDepth,
		recover:    cfg.RecoverAfter,
		disabled:   cfg.Disabled,
		ring:       make([]time.Duration, cfg.Window),
		scratch:    make([]time.Duration, 0, cfg.Window),
	}
}

// degraded reports whether latent-family requests currently route to their
// local-metric proxies.
func (d *degrader) degraded() bool {
	if d == nil || d.disabled {
		return false
	}
	return d.state.Load()
}

// observe records one executed sweep and updates the route state.
func (d *degrader) observe(lat time.Duration, queueLen int) {
	if d.disabled {
		return
	}
	d.mu.Lock()
	d.ring[d.next] = lat
	d.next = (d.next + 1) % len(d.ring)
	if d.filled < len(d.ring) {
		d.filled++
	}
	over := d.p95() > d.p95Limit || queueLen > d.queueLimit
	switch {
	case over:
		d.healthy = 0
		if !d.state.Load() {
			d.state.Store(true)
			if obs.Enabled() {
				obs.GetCounter("serve/degrade_transitions").Inc()
			}
		}
	case d.state.Load():
		d.healthy++
		if d.healthy >= d.recover {
			d.healthy = 0
			d.state.Store(false)
		}
	}
	d.mu.Unlock()
}

// p95 computes the 95th percentile of the filled window. Callers hold d.mu.
func (d *degrader) p95() time.Duration {
	if d.filled == 0 {
		return 0
	}
	d.scratch = append(d.scratch[:0], d.ring[:d.filled]...)
	sort.Slice(d.scratch, func(i, j int) bool { return d.scratch[i] < d.scratch[j] })
	idx := (d.filled*95 + 99) / 100
	if idx > d.filled {
		idx = d.filled
	}
	return d.scratch[idx-1]
}

// Package experiments reproduces every table and figure of the paper's
// evaluation on the synthetic trace analogues (see DESIGN.md §3 for the
// experiment index). Each runner returns structured rows; cmd/experiments
// renders them, the test suite asserts their qualitative shape, and the
// root bench harness regenerates them under `go test -bench`.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"linkpred/internal/classify"
	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
	"linkpred/internal/temporal"
)

// Config bounds the scale and effort of every experiment runner.
type Config struct {
	// Scale multiplies the preset trace sizes (1.0 = the sizes of
	// DESIGN.md §1; tests use ~0.1).
	Scale float64
	// Seed drives trace generation and every stochastic component.
	Seed int64
	// Seeds is the number of snowball seeds averaged in classification
	// experiments (the paper uses 5).
	Seeds int
	// SampleTarget is the snowball sample size in nodes for the
	// classification pipeline.
	SampleTarget int
	// Stride evaluates every Stride-th snapshot transition in the metric
	// sweeps (1 = all transitions, as the paper plots).
	Stride int
	// MaxTransitions caps the number of transitions evaluated per network
	// (0 = no cap).
	MaxTransitions int
	// Workers bounds the goroutines used by the metric sweep (0 = one per
	// CPU). The sweep parallelizes at task level — one (transition,
	// algorithm) prediction per task — and pins each task's internal
	// predict engine to a single worker so the two levels don't multiply.
	// Results are identical regardless of worker count; the paper ran the
	// equivalent computation on a 10-server fleet.
	Workers int
	// Opt carries the algorithm parameters.
	Opt predict.Options

	// Ctx, when set, parents the obs spans the runners emit, so a full
	// run's timing tree nests generation → scoring → evaluation under the
	// caller's root span. It is carried in Config (rather than threaded as
	// a parameter) so every experiment entry point keeps its signature;
	// nil means context.Background() and, with obs disabled, spans cost
	// nothing.
	Ctx context.Context
}

// ctx resolves the span-parent context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// DefaultConfig is the full-scale configuration used by the benchmark
// harness and cmd/experiments.
func DefaultConfig() Config {
	return Config{
		Scale:        1.0,
		Seed:         1,
		Seeds:        5,
		SampleTarget: 400,
		Stride:       1,
		Opt:          predict.DefaultOptions(),
	}
}

// BenchConfig is the configuration of the root benchmark harness: half the
// reference trace scale with a thinned transition set, keeping the full
// table/figure regeneration in the minutes range on one machine while
// preserving every qualitative shape. EXPERIMENTS.md records results at
// this configuration.
func BenchConfig() Config {
	return Config{
		Scale:          0.5,
		Seed:           1,
		Seeds:          3,
		SampleTarget:   350,
		Stride:         2,
		MaxTransitions: 12,
		Opt:            predict.DefaultOptions(),
	}
}

// TestConfig is a reduced configuration keeping the full pipeline under a
// few seconds per experiment for the test suite.
func TestConfig() Config {
	return Config{
		Scale:          0.3,
		Seed:           1,
		Seeds:          2,
		SampleTarget:   140,
		Stride:         4,
		MaxTransitions: 4,
		Opt:            predict.DefaultOptions(),
	}
}

// Network bundles a generated trace with its snapshot cuts and lazily built
// derived state shared by experiment runners.
type Network struct {
	Cfg   gen.Config
	Trace *graph.Trace
	Cuts  []graph.SnapshotCut
	Delta int

	trackerOnce sync.Once
	tracker     *temporal.Tracker

	sweepOnce sync.Once
	sweep     []SweepCell
	sweepCfg  Config

	prepMu    sync.Mutex
	prepCache map[string][]*classify.Prepared
}

// Tracker returns the temporal index, built on first use.
func (n *Network) Tracker() *temporal.Tracker {
	n.trackerOnce.Do(func() { n.tracker = temporal.NewTracker(n.Trace) })
	return n.tracker
}

// LoadNetworks generates the three paper-analogue networks at the
// configured scale: Facebook, YouTube, Renren (the paper's tabulation
// order).
func LoadNetworks(c Config) []*Network {
	ctx, sp := obs.StartSpan(c.ctx(), "generate")
	defer sp.End()
	var nets []*Network
	for _, cfg := range gen.Presets(c.Seed) {
		cfg = cfg.Scaled(c.Scale)
		tr := gen.MustGenerateCtx(ctx, cfg)
		delta := gen.DefaultDelta(cfg)
		nets = append(nets, &Network{
			Cfg:   cfg,
			Trace: tr,
			Cuts:  tr.Cuts(delta),
			Delta: delta,
		})
	}
	return nets
}

// LoadNetwork generates a single preset by name.
func LoadNetwork(c Config, name string) *Network {
	for _, n := range LoadNetworks(c) {
		if n.Cfg.Name == name {
			return n
		}
	}
	return nil
}

// transitions returns the evaluated transition indices (prev cut index i:
// predict G_{i} → G_{i+1}) after applying Stride and MaxTransitions.
func (c Config) transitions(numCuts int) []int {
	stride := c.Stride
	if stride <= 0 {
		stride = 1
	}
	var idx []int
	for i := 0; i+1 < numCuts; i += stride {
		idx = append(idx, i)
	}
	if c.MaxTransitions > 0 && len(idx) > c.MaxTransitions {
		// Keep a spread across the trace rather than only the beginning.
		step := float64(len(idx)) / float64(c.MaxTransitions)
		var keep []int
		for j := 0; j < c.MaxTransitions; j++ {
			keep = append(keep, idx[int(float64(j)*step)])
		}
		idx = keep
	}
	return idx
}

// SweepCell is one (algorithm, transition) evaluation of the full-graph
// metric prediction experiment (§4.1): top-k prediction on G_t compared
// against the new edges of G_{t+1}.
type SweepCell struct {
	Alg       string
	CutIdx    int
	EdgeCount int
	K         int
	Correct   int
	// Ratio is the accuracy ratio |E_M| / E[|E_R|].
	Ratio float64
	// Accuracy is the absolute top-k precision.
	Accuracy float64
	// Lambda2 is the 2-hop edge ratio of the transition (shared by all
	// algorithms of the same transition).
	Lambda2 float64
}

// MetricSweep evaluates the Figure 5 algorithm set over the configured
// transitions of a network, caching the result (several experiments share
// it). The first call's Config wins for the cache.
func (n *Network) MetricSweep(c Config) []SweepCell {
	n.sweepOnce.Do(func() {
		n.sweepCfg = c
		n.sweep = n.runSweep(c, predict.Figure5Set())
	})
	return n.sweep
}

func (n *Network) runSweep(c Config, algs []predict.Algorithm) []SweepCell {
	ctx, sweepSpan := obs.StartSpan(c.ctx(), "sweep/"+n.Cfg.Name)
	defer sweepSpan.End()
	// Materialize the transitions sequentially (cheap), then fan the
	// (transition, algorithm) prediction tasks out over a worker pool.
	// Every algorithm is deterministic for a fixed Options, so the result
	// is independent of scheduling.
	type transition struct {
		cutIdx  int
		prev    *graph.Graph
		truth   map[uint64]bool
		lambda2 float64
	}
	var trans []transition
	// The transition indices are increasing, so the snapshots extend one
	// another: one incremental builder applies each cut's edge delta instead
	// of re-materializing O(E) adjacency per cut.
	builder := graph.NewIncrementalBuilder(n.Trace)
	for _, i := range c.transitions(len(n.Cuts)) {
		if n.Cuts[i].Time <= 0 {
			// Still inside the pre-trace seed community; the paper's traces
			// start from an already-grown network, so skip these cuts.
			continue
		}
		prev := builder.AtEdge(n.Cuts[i].EdgeCount)
		truth := predict.TruthSet(prev, n.Trace.NewEdgesBetween(n.Cuts[i], n.Cuts[i+1]))
		if len(truth) == 0 {
			continue
		}
		two := 0
		for key := range truth {
			u, v := predict.KeyPair(key)
			if prev.CountCommonNeighbors(u, v) > 0 {
				two++
			}
		}
		trans = append(trans, transition{
			cutIdx:  i,
			prev:    prev,
			truth:   truth,
			lambda2: float64(two) / float64(len(truth)),
		})
	}

	cells := make([]SweepCell, len(trans)*len(algs))
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// With far more tasks than cores, the parallel split lives at task
	// level: a semaphore bounds in-flight tasks to the worker budget, and
	// each task's Predict runs with the engine pinned to one worker so the
	// sweep doesn't oversubscribe the machine by multiplying both levels.
	// Predict output is worker-count independent, so this changes nothing
	// about the results.
	taskOpt := c.Opt
	taskOpt.Workers = 1
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for idx := range cells {
		sem <- struct{}{}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			defer func() { <-sem }()
			t := trans[idx/len(algs)]
			alg := algs[idx%len(algs)]
			k := len(t.truth)
			cellCtx, cellSpan := obs.StartSpan(ctx, fmt.Sprintf("cut%d/%s", t.cutIdx, alg.Name()))
			defer cellSpan.End()
			_, scoreSpan := obs.StartSpan(cellCtx, "score")
			pred := alg.Predict(t.prev, k, taskOpt)
			scoreSpan.End()
			_, evalSpan := obs.StartSpan(cellCtx, "evaluate")
			defer evalSpan.End()
			correct := predict.CountCorrect(pred, t.truth)
			cells[idx] = SweepCell{
				Alg:       alg.Name(),
				CutIdx:    t.cutIdx,
				EdgeCount: n.Cuts[t.cutIdx].EdgeCount,
				K:         k,
				Correct:   correct,
				Ratio:     predict.AccuracyRatio(correct, k, t.prev),
				Accuracy:  float64(correct) / float64(k),
				Lambda2:   t.lambda2,
			}
		}(idx)
	}
	wg.Wait()
	return cells
}

// instanceCuts selects the three consecutive cuts (train, test, eval) for a
// classification instance: "small" sits ~40% into the trace, "large" ~85%.
func (n *Network) instanceCuts(size string) (graph.SnapshotCut, graph.SnapshotCut, graph.SnapshotCut) {
	frac := 0.85
	if size == "small" {
		frac = 0.40
	}
	// Never place an instance inside the seed community.
	for int(frac*float64(len(n.Cuts))) < len(n.Cuts)-3 && n.Cuts[int(frac*float64(len(n.Cuts)))].Time <= 0 {
		frac += 0.05
	}
	i := int(frac * float64(len(n.Cuts)))
	if i > len(n.Cuts)-3 {
		i = len(n.Cuts) - 3
	}
	if i < 0 {
		i = 0
	}
	return n.Cuts[i], n.Cuts[i+1], n.Cuts[i+2]
}

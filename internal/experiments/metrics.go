package experiments

import (
	"sort"

	"linkpred/internal/analysis"
	"linkpred/internal/graph"
	"linkpred/internal/ml"
	"linkpred/internal/predict"
	"linkpred/internal/temporal"
)

// Table4Row reports an algorithm's best absolute accuracy (%) over all
// evaluated snapshot transitions of a network.
type Table4Row struct {
	Network string
	Alg     string
	// BestAccuracyPct is the maximum top-k precision over transitions, in
	// percent (the paper's Table 4).
	BestAccuracyPct float64
}

// Table4 reproduces the best-absolute-accuracy table.
func Table4(c Config, nets []*Network) []Table4Row {
	var rows []Table4Row
	for _, n := range nets {
		best := map[string]float64{}
		for _, cell := range n.MetricSweep(c) {
			if cell.Accuracy > best[cell.Alg] {
				best[cell.Alg] = cell.Accuracy
			}
		}
		algs := make([]string, 0, len(best))
		for a := range best {
			algs = append(algs, a)
		}
		sort.Strings(algs)
		for _, a := range algs {
			rows = append(rows, Table4Row{Network: n.Cfg.Name, Alg: a, BestAccuracyPct: 100 * best[a]})
		}
	}
	return rows
}

// Figure5Series is one algorithm's accuracy-ratio curve over a network's
// growth (x = total edge count of the predicted-from snapshot).
type Figure5Series struct {
	Network   string
	Alg       string
	EdgeCount []int
	Ratio     []float64
}

// Figure5 reproduces the accuracy-ratio-versus-growth curves for the
// Figure 5 algorithm set.
func Figure5(c Config, nets []*Network) []Figure5Series {
	var out []Figure5Series
	for _, n := range nets {
		byAlg := map[string]*Figure5Series{}
		var order []string
		for _, cell := range n.MetricSweep(c) {
			s, ok := byAlg[cell.Alg]
			if !ok {
				s = &Figure5Series{Network: n.Cfg.Name, Alg: cell.Alg}
				byAlg[cell.Alg] = s
				order = append(order, cell.Alg)
			}
			s.EdgeCount = append(s.EdgeCount, cell.EdgeCount)
			s.Ratio = append(s.Ratio, cell.Ratio)
		}
		for _, a := range order {
			out = append(out, *byAlg[a])
		}
	}
	return out
}

// Lambda2Correlation reports, per network, the mean Pearson correlation
// between the accuracy-ratio curves of the top-performing metrics and the
// λ₂ series (§4.2: 0.95 Renren, 0.83 YouTube, 0.81 Facebook).
type Lambda2Correlation struct {
	Network     string
	TopMetrics  []string
	Correlation float64
}

// CorrelateLambda2 computes the §4.2 correlation using the top `top`
// metrics by mean accuracy ratio.
func CorrelateLambda2(c Config, nets []*Network, top int) []Lambda2Correlation {
	var out []Lambda2Correlation
	for _, n := range nets {
		cells := n.MetricSweep(c)
		// Collect per-algorithm ratio series and the λ₂ series.
		series := map[string][]float64{}
		var l2 []float64
		seenCut := map[int]bool{}
		for _, cell := range cells {
			series[cell.Alg] = append(series[cell.Alg], cell.Ratio)
			if !seenCut[cell.CutIdx] {
				seenCut[cell.CutIdx] = true
				l2 = append(l2, cell.Lambda2)
			}
		}
		// Rank algorithms by mean ratio.
		type ranked struct {
			alg  string
			mean float64
		}
		var rs []ranked
		for alg, r := range series {
			m := 0.0
			for _, v := range r {
				m += v
			}
			rs = append(rs, ranked{alg, m / float64(len(r))})
		}
		sort.Slice(rs, func(i, j int) bool {
			if rs[i].mean != rs[j].mean {
				return rs[i].mean > rs[j].mean
			}
			return rs[i].alg < rs[j].alg
		})
		if top > len(rs) {
			top = len(rs)
		}
		var sum float64
		var names []string
		for _, r := range rs[:top] {
			sum += analysis.Pearson(series[r.alg], l2)
			names = append(names, r.alg)
		}
		out = append(out, Lambda2Correlation{
			Network:     n.Cfg.Name,
			TopMetrics:  names,
			Correlation: sum / float64(top),
		})
	}
	return out
}

// Figure6Result carries the §4.3 decision-tree analysis: the multi-class
// tree choosing the best algorithm from snapshot features, plus the
// per-algorithm binary rules.
type Figure6Result struct {
	// FeatureNames indexes the tree's features.
	FeatureNames []string
	// Winners maps each data point (snapshot transition) to its winning
	// algorithm.
	Winners []string
	// Rules renders the fitted multi-class tree.
	Rules []string
	// Tree is the fitted tree for structural inspection.
	Tree *ml.DecisionTree
	// AlgClasses maps class index → algorithm name.
	AlgClasses []string
	// BinaryRules maps algorithm → rules of its one-vs-rest tree ("good"
	// means within 90% of the optimal ratio).
	BinaryRules map[string][]string
}

// Figure6 trains the algorithm-choosing decision tree over every snapshot
// transition of every network.
func Figure6(c Config, nets []*Network) Figure6Result {
	res := Figure6Result{FeatureNames: analysis.FeatureNames, BinaryRules: map[string][]string{}}
	var feats [][]float64
	var winnerNames []string
	bestRatio := map[int]float64{} // data point → best ratio
	ratioByAlg := []map[string]float64{}

	for _, n := range nets {
		cells := n.MetricSweep(c)
		byCut := map[int]map[string]float64{}
		for _, cell := range cells {
			if byCut[cell.CutIdx] == nil {
				byCut[cell.CutIdx] = map[string]float64{}
			}
			byCut[cell.CutIdx][cell.Alg] = cell.Ratio
		}
		var cutIdxs []int
		for i := range byCut {
			cutIdxs = append(cutIdxs, i)
		}
		sort.Ints(cutIdxs)
		for _, i := range cutIdxs {
			g := n.Trace.SnapshotAtEdge(n.Cuts[i].EdgeCount)
			feats = append(feats, analysis.Features(g, 250, c.Seed))
			winner, best := "", -1.0
			for alg, r := range byCut[i] {
				if r > best || (r == best && alg < winner) {
					winner, best = alg, r
				}
			}
			winnerNames = append(winnerNames, winner)
			bestRatio[len(feats)-1] = best
			ratioByAlg = append(ratioByAlg, byCut[i])
		}
	}
	res.Winners = winnerNames

	// Multi-class tree over winners.
	classOf := map[string]int{}
	for _, w := range winnerNames {
		if _, ok := classOf[w]; !ok {
			classOf[w] = len(classOf)
			res.AlgClasses = append(res.AlgClasses, w)
		}
	}
	y := make([]int, len(winnerNames))
	for i, w := range winnerNames {
		y[i] = classOf[w]
	}
	tree := ml.NewDecisionTree(c.Seed)
	tree.MaxDepth = 4
	tree.MinLeaf = 2
	if err := tree.FitMulti(&ml.Dataset{X: feats, Y: y}, len(classOf)); err == nil {
		res.Tree = tree
		res.Rules = tree.Rules(analysis.FeatureNames, res.AlgClasses)
	}

	// Per-algorithm binary trees: positive when within 90% of optimal.
	perAlg := map[string][]int{}
	for i, ratios := range ratioByAlg {
		for alg, r := range ratios {
			label := 0
			if r >= 0.9*bestRatio[i] {
				label = 1
			}
			perAlg[alg] = append(perAlg[alg], label)
		}
	}
	var algNames []string
	for alg := range perAlg {
		algNames = append(algNames, alg)
	}
	sort.Strings(algNames)
	for _, alg := range algNames {
		labels := perAlg[alg]
		pos := 0
		for _, l := range labels {
			pos += l
		}
		if pos == 0 || pos == len(labels) {
			continue // degenerate, as the paper omits such algorithms
		}
		bt := ml.NewDecisionTree(c.Seed)
		bt.MaxDepth = 2
		bt.MinLeaf = 2
		if err := bt.Fit(&ml.Dataset{X: feats, Y: labels}); err == nil {
			res.BinaryRules[alg] = bt.Rules(analysis.FeatureNames, []string{"not-good", "good"})
		}
	}
	return res
}

// Table5Row reports, for one algorithm on the analysis snapshot, the share
// of predicted and of real new edges that involve the 0.1% most frequently
// predicted nodes.
type Table5Row struct {
	Alg            string
	PredictedShare float64
	RealShare      float64
}

// analysisTransition picks the snapshot transition used for the §4.4
// analyses (the paper uses the Renren 55M-edge snapshot; we use the
// transition at ~70% of the trace).
func (n *Network) analysisTransition() int {
	i := int(0.7 * float64(len(n.Cuts)))
	if i > len(n.Cuts)-2 {
		i = len(n.Cuts) - 2
	}
	return i
}

// Table5 reproduces the hot-node concentration analysis on a network.
func Table5(c Config, n *Network, algs []predict.Algorithm) []Table5Row {
	i := n.analysisTransition()
	prev := n.Trace.SnapshotAtEdge(n.Cuts[i].EdgeCount)
	truth := predict.TruthSet(prev, n.Trace.NewEdgesBetween(n.Cuts[i], n.Cuts[i+1]))
	k := len(truth)
	var rows []Table5Row
	for _, alg := range algs {
		pred := alg.Predict(prev, k, c.Opt)
		freq := map[graph.NodeID]int{}
		for _, p := range pred {
			freq[p.U]++
			freq[p.V]++
		}
		type nf struct {
			v graph.NodeID
			f int
		}
		var nodes []nf
		for v, f := range freq {
			nodes = append(nodes, nf{v, f})
		}
		sort.Slice(nodes, func(a, b int) bool {
			if nodes[a].f != nodes[b].f {
				return nodes[a].f > nodes[b].f
			}
			return nodes[a].v < nodes[b].v
		})
		topCount := prev.NumNodes() / 1000
		if topCount < 1 {
			topCount = 1
		}
		if topCount > len(nodes) {
			topCount = len(nodes)
		}
		hot := map[graph.NodeID]bool{}
		for _, e := range nodes[:topCount] {
			hot[e.v] = true
		}
		count := func(keys map[uint64]bool, pairs []predict.Pair) (int, int) {
			hit, total := 0, 0
			if pairs != nil {
				for _, p := range pairs {
					total++
					if hot[p.U] || hot[p.V] {
						hit++
					}
				}
				return hit, total
			}
			for key := range keys {
				u, v := predict.KeyPair(key)
				total++
				if hot[u] || hot[v] {
					hit++
				}
			}
			return hit, total
		}
		ph, pt := count(nil, pred)
		rh, rt := count(truth, nil)
		row := Table5Row{Alg: alg.Name()}
		if pt > 0 {
			row.PredictedShare = float64(ph) / float64(pt)
		}
		if rt > 0 {
			row.RealShare = float64(rh) / float64(rt)
		}
		rows = append(rows, row)
	}
	return rows
}

// Figure7Series is a degree CCDF of the nodes involved in an algorithm's
// predicted edges (plus the ground-truth series).
type Figure7Series struct {
	Label   string
	Degrees []int
	Frac    []float64
}

// Figure7 reproduces the degree-distribution bias analysis.
func Figure7(c Config, n *Network, algs []predict.Algorithm) []Figure7Series {
	i := n.analysisTransition()
	prev := n.Trace.SnapshotAtEdge(n.Cuts[i].EdgeCount)
	truth := predict.TruthSet(prev, n.Trace.NewEdgesBetween(n.Cuts[i], n.Cuts[i+1]))
	k := len(truth)
	var out []Figure7Series
	var truthNodes []graph.NodeID
	for key := range truth {
		u, v := predict.KeyPair(key)
		truthNodes = append(truthNodes, u, v)
	}
	sort.Slice(truthNodes, func(a, b int) bool { return truthNodes[a] < truthNodes[b] })
	d, f := analysis.DegreeCCDF(prev, truthNodes)
	out = append(out, Figure7Series{Label: "ground-truth", Degrees: d, Frac: f})
	for _, alg := range algs {
		pred := alg.Predict(prev, k, c.Opt)
		var nodes []graph.NodeID
		for _, p := range pred {
			nodes = append(nodes, p.U, p.V)
		}
		d, f := analysis.DegreeCCDF(prev, nodes)
		out = append(out, Figure7Series{Label: alg.Name(), Degrees: d, Frac: f})
	}
	return out
}

// Figure8Series is an idle-time CDF of the nodes in predicted edges.
type Figure8Series struct {
	Label string
	CDF   temporal.CDF
}

// Figure8 reproduces the idle-time bias analysis: predicted edges skew to
// dormant nodes compared with ground truth.
func Figure8(c Config, n *Network, algs []predict.Algorithm) []Figure8Series {
	i := n.analysisTransition()
	prev := n.Trace.SnapshotAtEdge(n.Cuts[i].EdgeCount)
	tm := n.Cuts[i].Time
	truth := predict.TruthSet(prev, n.Trace.NewEdgesBetween(n.Cuts[i], n.Cuts[i+1]))
	k := len(truth)
	tk := n.Tracker()
	var truthPairs []predict.Pair
	for key := range truth {
		u, v := predict.KeyPair(key)
		truthPairs = append(truthPairs, predict.Pair{U: u, V: v})
	}
	sort.Slice(truthPairs, func(a, b int) bool { return truthPairs[a].Key() < truthPairs[b].Key() })
	out := []Figure8Series{{Label: "ground-truth", CDF: temporal.NewCDF(tk.PairIdleDays(truthPairs, tm))}}
	for _, alg := range algs {
		pred := alg.Predict(prev, k, c.Opt)
		out = append(out, Figure8Series{Label: alg.Name(), CDF: temporal.NewCDF(tk.PairIdleDays(pred, tm))})
	}
	return out
}

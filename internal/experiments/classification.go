package experiments

import (
	"fmt"
	"math"
	"sort"

	"linkpred/internal/classify"
	"linkpred/internal/graph"
	"linkpred/internal/ml"
	"linkpred/internal/predict"
)

// Table6Row describes one classification data instance (Table 6).
type Table6Row struct {
	Network    string
	Size       string
	TrainNodes int
	TrainEdges int
	TestNodes  int
	TestEdges  int
	SampleSize int
}

// Table6 lists the small and large classification instances per network.
func Table6(c Config, nets []*Network) []Table6Row {
	var rows []Table6Row
	for _, n := range nets {
		for _, size := range []string{"small", "large"} {
			cutTrain, cutTest, _ := n.instanceCuts(size)
			gTrain := n.Trace.SnapshotAtEdge(cutTrain.EdgeCount)
			gTest := n.Trace.SnapshotAtEdge(cutTest.EdgeCount)
			target, _ := n.samplePolicy(c, gTrain.NumNodes())
			rows = append(rows, Table6Row{
				Network:    n.Cfg.Name,
				Size:       size,
				TrainNodes: gTrain.NumNodes(),
				TrainEdges: gTrain.NumEdges(),
				TestNodes:  gTest.NumNodes(),
				TestEdges:  gTest.NumEdges(),
				SampleSize: target,
			})
		}
	}
	return rows
}

// prepareSeeds builds (and caches) the instance for each snowball seed.
// Seeds are spread deterministically over the node ID space. The cache key
// ignores Config differences beyond size — experiment runners within one
// process always share a Config.
func (n *Network) prepareSeeds(c Config, size string) ([]*classify.Prepared, error) {
	n.prepMu.Lock()
	if cached, ok := n.prepCache[size]; ok {
		n.prepMu.Unlock()
		return cached, nil
	}
	n.prepMu.Unlock()
	preps, err := n.buildSeeds(c, size)
	if err != nil {
		return nil, err
	}
	n.prepMu.Lock()
	if n.prepCache == nil {
		n.prepCache = map[string][]*classify.Prepared{}
	}
	n.prepCache[size] = preps
	n.prepMu.Unlock()
	return preps, nil
}

func (n *Network) buildSeeds(c Config, size string) ([]*classify.Prepared, error) {
	cutTrain, cutTest, cutEval := n.instanceCuts(size)
	gTrain := n.Trace.SnapshotAtEdge(cutTrain.EdgeCount)
	target, seeds := n.samplePolicy(c, gTrain.NumNodes())
	var out []*classify.Prepared
	for s := 0; s < seeds; s++ {
		seedNode := graph.NodeID((int64(s)*2654435761 + c.Seed) % int64(gTrain.NumNodes()))
		if seedNode < 0 {
			seedNode = -seedNode
		}
		p, err := classify.Prepare(n.Trace, cutTrain, cutTest, cutEval, target, seedNode, c.Opt)
		if err != nil {
			return nil, fmt.Errorf("experiments: prepare %s/%s seed %d: %w", n.Cfg.Name, size, s, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// samplePolicy mirrors Table 6: the Facebook analogue is sampled at
// (nearly) p = 100% — capped at 4x the configured target to bound the pair
// universe — with a single seed (a full sample has no seed variance), while
// the larger networks use the configured snowball target and seed count.
func (n *Network) samplePolicy(c Config, trainNodes int) (target, seeds int) {
	target = c.SampleTarget
	seeds = c.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	if n.Cfg.Name == "facebook" {
		target = 4 * c.SampleTarget
		if target >= trainNodes {
			target = trainNodes
			seeds = 1
		}
	}
	return target, seeds
}

// MeanStd is a mean ± standard deviation pair over snowball seeds.
type MeanStd struct {
	Mean, Std float64
}

func meanStd(xs []float64) MeanStd {
	if len(xs) == 0 {
		return MeanStd{}
	}
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return MeanStd{Mean: m, Std: math.Sqrt(v / float64(len(xs)))}
}

// newClassifier constructs a fresh classifier by family name.
func newClassifier(name string, seed int64) ml.Classifier {
	switch name {
	case "SVM":
		return ml.NewSVM(seed)
	case "LR":
		return ml.NewLogisticRegression(seed)
	case "NB":
		return ml.NewGaussianNB()
	case "RF":
		return ml.NewRandomForest(seed)
	default:
		panic("experiments: unknown classifier " + name)
	}
}

// ClassifierNames lists the four §5 classifier families.
var ClassifierNames = []string{"RF", "NB", "LR", "SVM"}

// Figure9Row is one classifier's accuracy ratio at an undersampling ratio.
type Figure9Row struct {
	Classifier string
	Theta      float64
	Ratio      MeanStd
}

// Figure9 compares the four classifiers at θ = 1:1 and 1:50 on a network's
// small instance (the paper uses Facebook at 345K edges).
func Figure9(c Config, n *Network) ([]Figure9Row, error) {
	preps, err := n.prepareSeeds(c, "small")
	if err != nil {
		return nil, err
	}
	var rows []Figure9Row
	for _, name := range ClassifierNames {
		for _, theta := range []float64{1, 50} {
			var ratios []float64
			for s, p := range preps {
				res, err := p.EvaluateClassifier(newClassifier(name, int64(s+1)), theta, int64(s+1))
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, res.Ratio)
			}
			rows = append(rows, Figure9Row{Classifier: name, Theta: theta, Ratio: meanStd(ratios)})
		}
	}
	return rows, nil
}

// ThetaSweep returns the undersampling ratios evaluated in Figure 10,
// capped by the available negative pool of the instance.
func ThetaSweep() []float64 { return []float64{1, 10, 100, 1000, 10000} }

// Figure10Row is the SVM accuracy ratio at one undersampling ratio.
type Figure10Row struct {
	Network string
	Theta   float64
	Ratio   MeanStd
}

// Figure10 sweeps the undersampling ratio for the SVM on each network's
// large instance.
func Figure10(c Config, nets []*Network) ([]Figure10Row, error) {
	var rows []Figure10Row
	for _, n := range nets {
		preps, err := n.prepareSeeds(c, "large")
		if err != nil {
			return nil, err
		}
		for _, theta := range ThetaSweep() {
			var ratios []float64
			for s, p := range preps {
				res, err := p.EvaluateClassifier(ml.NewSVM(int64(s+1)), theta, int64(s+1))
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, res.Ratio)
			}
			rows = append(rows, Figure10Row{Network: n.Cfg.Name, Theta: theta, Ratio: meanStd(ratios)})
		}
	}
	return rows, nil
}

// Figure11Row compares one method (a metric or the SVM) on the sampled
// universe.
type Figure11Row struct {
	Network string
	Method  string
	Ratio   MeanStd
}

// Figure11 evaluates all 14 metrics and the SVM (best θ of the sweep) on
// identical snowball-sampled data. Rows are sorted ascending by mean ratio
// within each network, matching the figure's layout.
func Figure11(c Config, nets []*Network) ([]Figure11Row, error) {
	var rows []Figure11Row
	for _, n := range nets {
		preps, err := n.prepareSeeds(c, "large")
		if err != nil {
			return nil, err
		}
		var netRows []Figure11Row
		for _, alg := range predict.FeatureSet() {
			var ratios []float64
			for _, p := range preps {
				ratios = append(ratios, p.EvaluateMetric(alg, c.Opt).Ratio)
			}
			netRows = append(netRows, Figure11Row{Network: n.Cfg.Name, Method: alg.Name(), Ratio: meanStd(ratios)})
		}
		bestSVM := MeanStd{Mean: -1}
		for _, theta := range ThetaSweep() {
			var ratios []float64
			for s, p := range preps {
				res, err := p.EvaluateClassifier(ml.NewSVM(int64(s+1)), theta, int64(s+1))
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, res.Ratio)
			}
			if ms := meanStd(ratios); ms.Mean > bestSVM.Mean {
				bestSVM = ms
			}
		}
		netRows = append(netRows, Figure11Row{Network: n.Cfg.Name, Method: "SVM", Ratio: bestSVM})
		sort.SliceStable(netRows, func(i, j int) bool { return netRows[i].Ratio.Mean < netRows[j].Ratio.Mean })
		rows = append(rows, netRows...)
	}
	return rows, nil
}

// Figure12Series is the cumulative normalized SVM coefficient of the top-N
// similarity metrics (ranked by their standalone accuracy on the same
// instance), N = 1..14.
type Figure12Series struct {
	Network    string
	MetricRank []string
	Cumulative []float64
}

// Figure12 reproduces the metric-ranking versus SVM-feature-weight
// analysis on each network's large instance, using the largest θ of the
// sweep (as the paper does).
func Figure12(c Config, nets []*Network) ([]Figure12Series, error) {
	thetas := ThetaSweep()
	theta := thetas[len(thetas)-1]
	var out []Figure12Series
	for _, n := range nets {
		preps, err := n.prepareSeeds(c, "large")
		if err != nil {
			return nil, err
		}
		// Rank metrics by mean standalone ratio.
		algs := predict.FeatureSet()
		type rankEntry struct {
			name string
			mean float64
			idx  int
		}
		var ranks []rankEntry
		for j, alg := range algs {
			var ratios []float64
			for _, p := range preps {
				ratios = append(ratios, p.EvaluateMetric(alg, c.Opt).Ratio)
			}
			ranks = append(ranks, rankEntry{name: alg.Name(), mean: meanStd(ratios).Mean, idx: j})
		}
		sort.SliceStable(ranks, func(i, j int) bool { return ranks[i].mean > ranks[j].mean })
		// Average normalized |coefficients| across seeds.
		coef := make([]float64, len(algs))
		for s, p := range preps {
			w, err := p.SVMCoefficients(theta, int64(s+1))
			if err != nil {
				return nil, err
			}
			for j := range coef {
				coef[j] += w[j] / float64(len(preps))
			}
		}
		series := Figure12Series{Network: n.Cfg.Name}
		cum := 0.0
		for _, r := range ranks {
			cum += coef[r.idx]
			series.MetricRank = append(series.MetricRank, r.name)
			series.Cumulative = append(series.Cumulative, cum)
		}
		out = append(out, series)
	}
	return out, nil
}

package experiments

import (
	"math"
	"sync"
	"testing"

	"linkpred/internal/predict"
)

var (
	fixtureOnce sync.Once
	fixtureNets []*Network
	fixtureCfg  Config
)

// nets returns a process-wide fixture so the expensive sweeps and prepared
// instances are built once across test functions.
func nets(t *testing.T) (Config, []*Network) {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureCfg = TestConfig()
		fixtureNets = LoadNetworks(fixtureCfg)
	})
	return fixtureCfg, fixtureNets
}

func byName(ns []*Network, name string) *Network {
	for _, n := range ns {
		if n.Cfg.Name == name {
			return n
		}
	}
	return nil
}

func TestLoadNetworks(t *testing.T) {
	_, ns := nets(t)
	if len(ns) != 3 {
		t.Fatalf("got %d networks", len(ns))
	}
	names := map[string]bool{}
	for _, n := range ns {
		names[n.Cfg.Name] = true
		if len(n.Cuts) < 15 {
			t.Errorf("%s: %d snapshots, want > 15", n.Cfg.Name, len(n.Cuts))
		}
	}
	for _, want := range []string{"facebook", "youtube", "renren"} {
		if !names[want] {
			t.Errorf("missing network %s", want)
		}
	}
}

func TestTransitionsSelection(t *testing.T) {
	c := Config{Stride: 2, MaxTransitions: 3}
	idx := c.transitions(20)
	if len(idx) != 3 {
		t.Fatalf("idx = %v", idx)
	}
	for _, i := range idx {
		if i%2 != 0 || i >= 19 {
			t.Errorf("bad transition index %d", i)
		}
	}
	if got := (Config{}).transitions(3); len(got) != 2 {
		t.Errorf("default transitions = %v", got)
	}
}

func TestTable2(t *testing.T) {
	c, _ := nets(t)
	rows := Table2(c)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var renren, youtube Table2Row
	for _, r := range rows {
		if r.Snapshots < 15 {
			t.Errorf("%s: %d snapshots", r.Network, r.Snapshots)
		}
		if r.EndEdges <= r.StartEdges || r.EndNodes < r.StartNodes {
			t.Errorf("%s did not grow: %+v", r.Network, r)
		}
		switch r.Network {
		case "renren":
			renren = r
		case "youtube":
			youtube = r
		}
	}
	// Renren is the densest/fastest-growing network.
	if renren.EndEdges <= youtube.EndEdges {
		t.Errorf("renren (%d edges) should exceed youtube (%d)", renren.EndEdges, youtube.EndEdges)
	}
}

func TestFigure1Growth(t *testing.T) {
	c, _ := nets(t)
	for _, s := range Figure1(c) {
		half := len(s.Day) / 2
		first, second := 0, 0
		for d := 0; d < half; d++ {
			first += s.NewEdges[d]
		}
		for d := half; d < len(s.Day); d++ {
			second += s.NewEdges[d]
		}
		if second <= first {
			t.Errorf("%s: edge growth not accelerating (%d then %d)", s.Network, first, second)
		}
	}
}

func TestFigures2to4(t *testing.T) {
	c, ns := nets(t)
	series := Figures2to4(c)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.EdgeCount) == 0 {
			t.Fatalf("%s: empty series", s.Network)
		}
		last := len(s.AvgDegree) - 1
		if s.AvgDegree[last] <= s.AvgDegree[0] {
			t.Errorf("%s: average degree not growing: %v", s.Network, s.AvgDegree)
		}
		for _, cc := range s.Clustering {
			if cc < 0 || cc > 1 {
				t.Errorf("%s: clustering out of range: %v", s.Network, cc)
			}
		}
	}
	// YouTube is the sparsest network with the longest paths (Fig. 3).
	var fb, yt StructureSeries
	for _, s := range series {
		switch s.Network {
		case "facebook":
			fb = s
		case "youtube":
			yt = s
		}
	}
	if yt.AvgDegree[len(yt.AvgDegree)-1] >= fb.AvgDegree[len(fb.AvgDegree)-1] {
		t.Errorf("youtube avg degree %v should be below facebook %v",
			yt.AvgDegree[len(yt.AvgDegree)-1], fb.AvgDegree[len(fb.AvgDegree)-1])
	}
	_ = ns
}

func TestMetricSweepAndFigure5(t *testing.T) {
	c, ns := nets(t)
	for _, n := range ns {
		cells := n.MetricSweep(c)
		if len(cells) == 0 {
			t.Fatalf("%s: empty sweep", n.Cfg.Name)
		}
		seen := map[string]bool{}
		for _, cell := range cells {
			seen[cell.Alg] = true
			if cell.Ratio < 0 || math.IsNaN(cell.Ratio) {
				t.Errorf("%s/%s: bad ratio %v", n.Cfg.Name, cell.Alg, cell.Ratio)
			}
			if cell.Correct > cell.K {
				t.Errorf("%s/%s: correct %d > k %d", n.Cfg.Name, cell.Alg, cell.Correct, cell.K)
			}
		}
		for _, alg := range predict.Figure5Set() {
			if !seen[alg.Name()] {
				t.Errorf("%s: missing algorithm %s in sweep", n.Cfg.Name, alg.Name())
			}
		}
	}
	series := Figure5(c, ns)
	if len(series) != 3*len(predict.Figure5Set()) {
		t.Errorf("figure5 series = %d", len(series))
	}
}

// meanRatio averages an algorithm's sweep ratio on a network.
func meanRatio(n *Network, c Config, alg string) float64 {
	s, cnt := 0.0, 0
	for _, cell := range n.MetricSweep(c) {
		if cell.Alg == alg {
			s += cell.Ratio
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return s / float64(cnt)
}

// TestFigure5Shape asserts the paper's headline orderings: the naive Bayes
// common-neighbor family dominates on friendship networks, SP and PA are
// consistently poor, and every decent metric beats random by a wide margin.
func TestFigure5Shape(t *testing.T) {
	c, ns := nets(t)
	for _, name := range []string{"renren", "facebook"} {
		n := byName(ns, name)
		bra := meanRatio(n, c, "BRA")
		if bra < 5 {
			t.Errorf("%s: BRA mean ratio = %v, want >> 1", name, bra)
		}
		if w := meanRatio(n, c, "SP"); w > bra/2 {
			t.Errorf("%s: SP ratio %v not clearly below BRA %v", name, w, bra)
		}
		if w := meanRatio(n, c, "PA"); w > 0.75*bra {
			t.Errorf("%s: PA ratio %v not clearly below BRA %v", name, w, bra)
		}
	}
	// On the subscription network, Rescal must be competitive: within the
	// top tier rather than dominated by the CN family (paper: Rescal is
	// the outperformer on YouTube).
	yt := byName(ns, "youtube")
	rescal := meanRatio(yt, c, "Rescal")
	bra := meanRatio(yt, c, "BRA")
	if rescal <= 0 {
		t.Fatalf("youtube: Rescal ratio = %v", rescal)
	}
	ratio := rescal / math.Max(bra, 1e-9)
	fb := byName(ns, "facebook")
	fbRatio := meanRatio(fb, c, "Rescal") / math.Max(meanRatio(fb, c, "BRA"), 1e-9)
	if ratio <= fbRatio {
		t.Errorf("Rescal/BRA on youtube (%v) should exceed facebook (%v)", ratio, fbRatio)
	}
	// JC collapses on the subscription network (~80% of nodes have degree
	// <= 3, §4.2) while staying useful on the friendship networks.
	if jcYT, jcRR := meanRatio(yt, c, "JC"), meanRatio(byName(ns, "renren"), c, "JC"); jcYT >= jcRR/4 {
		t.Errorf("JC on youtube (%v) should collapse versus renren (%v)", jcYT, jcRR)
	}
}

func TestTable4AbsoluteAccuracyLow(t *testing.T) {
	c, ns := nets(t)
	rows := Table4(c, ns)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	anyPositive := false
	for _, r := range rows {
		if r.BestAccuracyPct < 0 || r.BestAccuracyPct > 100 {
			t.Errorf("%s/%s: accuracy %v%%", r.Network, r.Alg, r.BestAccuracyPct)
		}
		// The paper's core finding: absolute accuracy is poor; even the
		// best methods stay far from 100% (single digits in the paper; we
		// allow <50% at our small scale).
		if r.BestAccuracyPct > 50 {
			t.Errorf("%s/%s: accuracy %v%% implausibly high", r.Network, r.Alg, r.BestAccuracyPct)
		}
		if r.BestAccuracyPct > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		t.Error("every algorithm at zero accuracy")
	}
}

func TestCorrelateLambda2(t *testing.T) {
	c, ns := nets(t)
	for _, row := range CorrelateLambda2(c, ns, 6) {
		if len(row.TopMetrics) == 0 {
			t.Errorf("%s: no top metrics", row.Network)
		}
		if row.Correlation < -1 || row.Correlation > 1 {
			t.Errorf("%s: correlation %v", row.Network, row.Correlation)
		}
	}
}

func TestFigure6(t *testing.T) {
	c, ns := nets(t)
	res := Figure6(c, ns)
	if len(res.Winners) == 0 {
		t.Fatal("no winners")
	}
	if res.Tree == nil || len(res.Rules) == 0 {
		t.Fatal("no fitted tree")
	}
	if len(res.AlgClasses) < 1 {
		t.Fatal("no classes")
	}
	// The tree must reference at least one real feature by name.
	found := false
	for _, rule := range res.Rules {
		for _, f := range res.FeatureNames {
			if len(rule) > 0 && containsStr(rule, f) {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("rules reference no features: %v", res.Rules)
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	})()
}

func TestTable5(t *testing.T) {
	c, ns := nets(t)
	n := byName(ns, "renren")
	rows := Table5(c, n, []predict.Algorithm{predict.Rescal, predict.BRA})
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	for _, r := range rows {
		if r.PredictedShare < 0 || r.PredictedShare > 1 || r.RealShare < 0 || r.RealShare > 1 {
			t.Errorf("%s: shares out of range: %+v", r.Alg, r)
		}
		// By construction the hot nodes are the most frequently predicted,
		// so the predicted share must be at least the real share is not
		// guaranteed — but predicted share must be positive.
		if r.PredictedShare == 0 {
			t.Errorf("%s: zero predicted share", r.Alg)
		}
	}
}

func TestFigure7(t *testing.T) {
	c, ns := nets(t)
	series := Figure7(c, byName(ns, "renren"), []predict.Algorithm{predict.BRA, predict.JC})
	if len(series) != 3 || series[0].Label != "ground-truth" {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Degrees) == 0 {
			t.Errorf("%s: empty CCDF", s.Label)
		}
		for _, f := range s.Frac {
			if f <= 0 || f > 1 {
				t.Errorf("%s: CCDF value %v", s.Label, f)
			}
		}
	}
}

func TestFigure8PredictionsSkewDormant(t *testing.T) {
	c, ns := nets(t)
	series := Figure8(c, byName(ns, "renren"), []predict.Algorithm{predict.BCN, predict.JC, predict.LP})
	if series[0].Label != "ground-truth" {
		t.Fatal("first series must be ground truth")
	}
	truthMedian := series[0].CDF.Quantile(0.5)
	// The paper's finding: predicted edges involve more dormant nodes than
	// the ground truth; require it for the majority of algorithms.
	skewed := 0
	for _, s := range series[1:] {
		if s.CDF.Quantile(0.5) >= truthMedian {
			skewed++
		}
	}
	if skewed*2 < len(series)-1 {
		t.Errorf("only %d/%d algorithms skew dormant", skewed, len(series)-1)
	}
}

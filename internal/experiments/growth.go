package experiments

import (
	"linkpred/internal/analysis"
	"linkpred/internal/graph"
)

// Table2Row describes one dataset as in Table 2: start/end sizes, snapshot
// delta, and snapshot count.
type Table2Row struct {
	Network    string
	StartNodes int
	StartEdges int
	EndNodes   int
	EndEdges   int
	Delta      int
	Snapshots  int
}

// Table2 reproduces the dataset-statistics table on the synthetic traces.
func Table2(c Config) []Table2Row {
	var rows []Table2Row
	for _, n := range LoadNetworks(c) {
		first := n.Trace.SnapshotAtEdge(n.Cuts[0].EdgeCount)
		last := n.Trace.SnapshotAtEdge(n.Cuts[len(n.Cuts)-1].EdgeCount)
		rows = append(rows, Table2Row{
			Network:    n.Cfg.Name,
			StartNodes: first.NumNodes(),
			StartEdges: first.NumEdges(),
			EndNodes:   last.NumNodes(),
			EndEdges:   last.NumEdges(),
			Delta:      n.Delta,
			Snapshots:  len(n.Cuts),
		})
	}
	return rows
}

// Figure1Series holds a network's daily growth counts.
type Figure1Series struct {
	Network  string
	Day      []int
	NewNodes []int
	NewEdges []int
}

// Figure1 reproduces the daily new-node/new-edge growth curves. Seed
// community events (before day 0) are excluded, as the paper's traces start
// at the crawl epoch.
func Figure1(c Config) []Figure1Series {
	var out []Figure1Series
	for _, n := range LoadNetworks(c) {
		days := n.Cfg.Days
		s := Figure1Series{
			Network:  n.Cfg.Name,
			Day:      make([]int, days),
			NewNodes: make([]int, days),
			NewEdges: make([]int, days),
		}
		for d := 0; d < days; d++ {
			s.Day[d] = d
		}
		for _, arr := range n.Trace.Arrival {
			if d := int(arr / graph.Day); d >= 0 && d < days {
				s.NewNodes[d]++
			}
		}
		for _, e := range n.Trace.Edges {
			if d := int(e.Time / graph.Day); d >= 0 && d < days && e.Time > 0 {
				s.NewEdges[d]++
			}
		}
		out = append(out, s)
	}
	return out
}

// StructureSeries holds the per-snapshot structural metrics of Figures 2-4.
type StructureSeries struct {
	Network    string
	EdgeCount  []int
	AvgDegree  []float64
	PathLen    []float64
	Clustering []float64
}

// Figures2to4 reproduces average degree, average path length, and average
// clustering coefficient over network growth.
func Figures2to4(c Config) []StructureSeries {
	var out []StructureSeries
	for _, n := range LoadNetworks(c) {
		s := StructureSeries{Network: n.Cfg.Name}
		for _, i := range c.transitions(len(n.Cuts) + 1) {
			g := n.Trace.SnapshotAtEdge(n.Cuts[i].EdgeCount)
			ds := analysis.Degrees(g)
			s.EdgeCount = append(s.EdgeCount, g.NumEdges())
			s.AvgDegree = append(s.AvgDegree, ds.Avg)
			s.PathLen = append(s.PathLen, analysis.AvgPathLength(g, 48, c.Seed))
			s.Clustering = append(s.Clustering, analysis.Clustering(g, 300, c.Seed))
		}
		out = append(out, s)
	}
	return out
}

package experiments

import (
	"linkpred/internal/analysis"
	"linkpred/internal/digraph"
	"linkpred/internal/eval"
	"linkpred/internal/ml"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// This file hosts the beyond-the-paper experiment runners: the missing-link
// detection protocol §2 contrasts with future-link prediction, and the
// directed prediction task from the paper's future work (§7). Both reuse
// the same synthetic networks.

// MissingRow is one hide-and-recover measurement.
type MissingRow struct {
	Network string
	Alg     string
	eval.MissingLinkResult
}

// MissingLinks runs the hide-10%-and-recover protocol for a representative
// algorithm set on each network's final snapshot. The contrast with Table 4
// (detection ≫ prediction accuracy) quantifies how much harder the paper's
// forward-prediction task is.
func MissingLinks(c Config, nets []*Network) ([]MissingRow, error) {
	algs := []predict.Algorithm{predict.AA, predict.RA, predict.BRA, predict.KatzLR}
	var rows []MissingRow
	for _, n := range nets {
		ctx, sp := obs.StartSpan(c.ctx(), "missing/"+n.Cfg.Name)
		g := n.Trace.SnapshotAtEdge(n.Cuts[len(n.Cuts)-1].EdgeCount)
		for _, alg := range algs {
			res, err := eval.DetectMissingCtx(ctx, g, alg, 0.1, c.Opt)
			if err != nil {
				sp.End()
				return nil, err
			}
			rows = append(rows, MissingRow{Network: n.Cfg.Name, Alg: alg.Name(), MissingLinkResult: res})
		}
		sp.End()
	}
	return rows, nil
}

// DirectedRow is one directed-prediction measurement.
type DirectedRow struct {
	Network string
	Scorer  string
	Hits    int
	Ratio   float64
}

// Directed evaluates the directed metric catalogue on the final delta-arc
// window of each trace (arcs are initiator → target).
func Directed(c Config, nets []*Network) ([]DirectedRow, error) {
	var rows []DirectedRow
	for _, n := range nets {
		m := n.Trace.NumEdges() - n.Delta
		for _, s := range digraph.Scorers() {
			hits, ratio, err := digraph.Evaluate(n.Trace, m, n.Delta, 0, s, c.Seed)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DirectedRow{Network: n.Cfg.Name, Scorer: s.Name(), Hits: hits, Ratio: ratio})
		}
	}
	return rows, nil
}

// EnsembleRow is one ensemble-size comparison measurement.
type EnsembleRow struct {
	Network string
	Method  string
	Ratio   MeanStd
}

// Ensembles reproduces the introduction's claim that "more complex
// techniques, e.g. larger ensemble methods do not produce noticeable
// improvements in accuracy": it compares the SVM against random forests
// and gradient-boosted ensembles of increasing size on the same instance.
func Ensembles(c Config, n *Network) ([]EnsembleRow, error) {
	preps, err := n.prepareSeeds(c, "large")
	if err != nil {
		return nil, err
	}
	type entry struct {
		name string
		make func(seed int64) ml.Classifier
	}
	entries := []entry{
		{"SVM", func(seed int64) ml.Classifier { return ml.NewSVM(seed) }},
		{"RF-20", func(seed int64) ml.Classifier { return ml.NewRandomForest(seed) }},
		{"RF-80", func(seed int64) ml.Classifier {
			rf := ml.NewRandomForest(seed)
			rf.Trees = 80
			return rf
		}},
		{"GBT-60", func(seed int64) ml.Classifier { return ml.NewGradientBoost(seed) }},
		{"GBT-200", func(seed int64) ml.Classifier {
			g := ml.NewGradientBoost(seed)
			g.Trees = 200
			return g
		}},
	}
	theta := 100.0
	var rows []EnsembleRow
	for _, e := range entries {
		var ratios []float64
		for s, p := range preps {
			res, err := p.EvaluateClassifier(e.make(int64(s+1)), theta, int64(s+1))
			if err != nil {
				return nil, err
			}
			ratios = append(ratios, res.Ratio)
		}
		rows = append(rows, EnsembleRow{Network: n.Cfg.Name, Method: e.name, Ratio: meanStd(ratios)})
	}
	return rows, nil
}

// ConsistencyRow reports how consistently the metric-based algorithms rank
// across a network's small and large classification instances.
type ConsistencyRow struct {
	Network string
	// Spearman is the rank correlation of the 14 metrics' accuracy ratios
	// between the two instances.
	Spearman float64
	// SmallTop and LargeTop are the best metric on each instance.
	SmallTop, LargeTop string
}

// Consistency quantifies §5's "these instances produce highly consistent
// results": the relative ordering of the similarity metrics should be
// stable between the small and large instance of each network.
func Consistency(c Config, nets []*Network) ([]ConsistencyRow, error) {
	var rows []ConsistencyRow
	for _, n := range nets {
		ratios := map[string][]float64{}
		tops := map[string]string{}
		for _, size := range []string{"small", "large"} {
			preps, err := n.prepareSeeds(c, size)
			if err != nil {
				return nil, err
			}
			var vec []float64
			best, bestRatio := "", -1.0
			for _, alg := range predict.FeatureSet() {
				var rs []float64
				for _, p := range preps {
					rs = append(rs, p.EvaluateMetric(alg, c.Opt).Ratio)
				}
				m := meanStd(rs).Mean
				vec = append(vec, m)
				if m > bestRatio {
					best, bestRatio = alg.Name(), m
				}
			}
			ratios[size] = vec
			tops[size] = best
		}
		rows = append(rows, ConsistencyRow{
			Network:  n.Cfg.Name,
			Spearman: analysis.Spearman(ratios["small"], ratios["large"]),
			SmallTop: tops["small"],
			LargeTop: tops["large"],
		})
	}
	return rows, nil
}

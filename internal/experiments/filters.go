package experiments

import (
	"fmt"

	"linkpred/internal/ml"
	"linkpred/internal/predict"
	"linkpred/internal/temporal"
	"linkpred/internal/timeseries"
)

// TemporalCDFs carries the positive-versus-negative pair distributions of
// Figures 13-15 for one network.
type TemporalCDFs struct {
	Network string
	// ActiveIdle: idle time (days) of the more recently active endpoint.
	PosActiveIdle, NegActiveIdle temporal.CDF
	// InactiveIdle: the other endpoint.
	PosInactiveIdle, NegInactiveIdle temporal.CDF
	// NewEdges7d: edges created by the active endpoint in the past 7 days.
	PosNewEdges, NegNewEdges temporal.CDF
	// CNGap: common-neighbor time gap (days).
	PosCNGap, NegCNGap temporal.CDF
}

// Figures13to15 measures the temporal separations between positive and
// negative node pairs on each network's analysis transition.
func Figures13to15(c Config, nets []*Network) []TemporalCDFs {
	var out []TemporalCDFs
	for _, n := range nets {
		i := n.analysisTransition()
		g := n.Trace.SnapshotAtEdge(n.Cuts[i].EdgeCount)
		tm := n.Cuts[i].Time
		newEdges := n.Trace.NewEdgesBetween(n.Cuts[i], n.Cuts[i+1])
		pos, neg := temporal.PairSamples(g, newEdges, 5000, c.Seed)
		tk := n.Tracker()
		out = append(out, TemporalCDFs{
			Network:         n.Cfg.Name,
			PosActiveIdle:   temporal.NewCDF(tk.ActiveIdleDays(pos, tm)),
			NegActiveIdle:   temporal.NewCDF(tk.ActiveIdleDays(neg, tm)),
			PosInactiveIdle: temporal.NewCDF(tk.InactiveIdleDays(pos, tm)),
			NegInactiveIdle: temporal.NewCDF(tk.InactiveIdleDays(neg, tm)),
			PosNewEdges:     temporal.NewCDF(tk.ActiveNewEdgeCounts(pos, tm, 7)),
			NegNewEdges:     temporal.NewCDF(tk.ActiveNewEdgeCounts(neg, tm, 7)),
			PosCNGap:        temporal.NewCDF(tk.CNGaps(g, pos, tm)),
			NegCNGap:        temporal.NewCDF(tk.CNGaps(g, neg, tm)),
		})
	}
	return out
}

// Table7Row echoes the filter thresholds in use (Table 7).
type Table7Row struct {
	Network string
	Config  temporal.FilterConfig
}

// Table7 lists the per-network temporal filter parameters.
func Table7(nets []*Network) []Table7Row {
	var rows []Table7Row
	for _, n := range nets {
		rows = append(rows, Table7Row{Network: n.Cfg.Name, Config: temporal.ConfigFor(n.Cfg.Name)})
	}
	return rows
}

// Table8Row is the normalized improvement (filtered ratio / unfiltered
// ratio) for one method on one network.
type Table8Row struct {
	Network string
	Method  string
	// Unfiltered and Filtered are mean accuracy ratios across seeds.
	Unfiltered, Filtered float64
	// Improvement = Filtered / Unfiltered (Inf encoded as 0 when the
	// unfiltered ratio is 0, matching the paper's "-" entries).
	Improvement float64
}

// Table8Metrics is the metric-method list of Table 8.
func Table8Metrics() []predict.Algorithm {
	return []predict.Algorithm{
		predict.JC, predict.BCN, predict.BAA, predict.BRA, predict.LP,
		predict.LRW, predict.PPR, predict.SP, predict.KatzLR, predict.Rescal, predict.PA,
	}
}

// Table8 measures the filtering improvement for every metric method and
// for SVM classifiers across the θ sweep, on each network's large instance.
func Table8(c Config, nets []*Network) ([]Table8Row, error) {
	var rows []Table8Row
	for _, n := range nets {
		preps, err := n.prepareSeeds(c, "large")
		if err != nil {
			return nil, err
		}
		tk := n.Tracker()
		fc := temporal.ConfigFor(n.Cfg.Name)
		addRow := func(method string, unf, fil []float64) {
			row := Table8Row{
				Network:    n.Cfg.Name,
				Method:     method,
				Unfiltered: meanStd(unf).Mean,
				Filtered:   meanStd(fil).Mean,
			}
			if row.Unfiltered > 0 {
				row.Improvement = row.Filtered / row.Unfiltered
			}
			rows = append(rows, row)
		}
		for _, alg := range Table8Metrics() {
			var unf, fil []float64
			for _, p := range preps {
				unf = append(unf, p.EvaluateMetric(alg, c.Opt).Ratio)
				fil = append(fil, p.EvaluateMetricFiltered(alg, c.Opt, tk, fc).Ratio)
			}
			addRow(alg.Name(), unf, fil)
		}
		for _, theta := range ThetaSweep() {
			var unf, fil []float64
			for s, p := range preps {
				ru, err := p.EvaluateClassifier(ml.NewSVM(int64(s+1)), theta, int64(s+1))
				if err != nil {
					return nil, err
				}
				rf, err := p.EvaluateClassifierFiltered(ml.NewSVM(int64(s+1)), theta, int64(s+1), tk, fc)
				if err != nil {
					return nil, err
				}
				unf = append(unf, ru.Ratio)
				fil = append(fil, rf.Ratio)
			}
			addRow(fmt.Sprintf("SVM 1:%g", theta), unf, fil)
		}
	}
	return rows, nil
}

// Figure16Row compares a metric's Basic and Time-Model (moving-average)
// variants with and without temporal filtering.
type Figure16Row struct {
	Network string
	Metric  string
	// Ratios, mean over seeds.
	Basic, BasicFiltered, TimeModel, TimeModelFiltered float64
}

// Figure16Metrics is the representative metric set plotted in Figure 16.
func Figure16Metrics() []predict.Algorithm {
	return []predict.Algorithm{predict.JC, predict.BCN, predict.BRA, predict.LP, predict.PPR}
}

// Figure16 compares temporal filtering against the §6.3 time-series method
// (moving average over past snapshots) and their combination.
func Figure16(c Config, nets []*Network, window int) ([]Figure16Row, error) {
	if window <= 0 {
		window = 4
	}
	var rows []Figure16Row
	for _, n := range nets {
		_, cutTest, _ := n.instanceCuts("large")
		// Index of the test cut for the time-series history.
		testIdx := -1
		for i, cut := range n.Cuts {
			if cut.EdgeCount == cutTest.EdgeCount {
				testIdx = i
				break
			}
		}
		if testIdx < 0 {
			return nil, fmt.Errorf("experiments: test cut not found for %s", n.Cfg.Name)
		}
		preps, err := n.prepareSeeds(c, "large")
		if err != nil {
			return nil, err
		}
		tk := n.Tracker()
		fc := temporal.ConfigFor(n.Cfg.Name)
		for _, alg := range Figure16Metrics() {
			var basic, basicF, tmodel, tmodelF []float64
			for _, p := range preps {
				keep := p.FilterKeep(tk, fc)
				basic = append(basic, p.EvaluateMetric(alg, c.Opt).Ratio)
				basicF = append(basicF, p.EvaluateMetricFiltered(alg, c.Opt, tk, fc).Ratio)
				scores, err := timeseries.Scores(n.Trace, n.Cuts, testIdx, window, alg, p.TestPairs, timeseries.MA, c.Opt)
				if err != nil {
					return nil, err
				}
				rm, err := p.EvaluateScores(scores, c.Seed, nil)
				if err != nil {
					return nil, err
				}
				rmf, err := p.EvaluateScores(scores, c.Seed, keep)
				if err != nil {
					return nil, err
				}
				tmodel = append(tmodel, rm.Ratio)
				tmodelF = append(tmodelF, rmf.Ratio)
			}
			rows = append(rows, Figure16Row{
				Network:           n.Cfg.Name,
				Metric:            alg.Name(),
				Basic:             meanStd(basic).Mean,
				BasicFiltered:     meanStd(basicF).Mean,
				TimeModel:         meanStd(tmodel).Mean,
				TimeModelFiltered: meanStd(tmodelF).Mean,
			})
		}
	}
	return rows, nil
}

package experiments

import (
	"testing"

	"linkpred/internal/obs"
	"linkpred/internal/predict"
	"linkpred/internal/snapcache"
)

// TestSweepTelemetryShowsIncrementalSnapshots pins the sweep's two sharing
// layers to the telemetry dump: snapshots are materialized through the
// incremental builder (graph/inc_snapshots) rather than per-cut rebuilds,
// and the algorithms scoring one cut share its cached artifacts
// (snapcache/hits alongside the initial misses).
func TestSweepTelemetryShowsIncrementalSnapshots(t *testing.T) {
	obs.Enable(true)
	defer obs.Enable(false)
	obs.Reset()
	snapcache.Reset()
	defer snapcache.Reset()

	c := TestConfig()
	c.Scale = 0.12
	c.MaxTransitions = 3
	n := LoadNetwork(c, "facebook")
	cells := n.runSweep(c, []predict.Algorithm{predict.KatzLR, predict.Rescal, predict.PA})
	if len(cells) == 0 {
		t.Fatal("sweep produced no cells")
	}

	counters := obs.Snapshot().Counters
	if counters["graph/inc_snapshots"] == 0 {
		t.Error("sweep did not build snapshots incrementally")
	}
	if counters["snapcache/misses"] == 0 {
		t.Error("no snapshot artifacts were built")
	}
	if counters["snapcache/hits"] == 0 {
		t.Error("algorithms sharing a cut produced no artifact cache hits")
	}
}

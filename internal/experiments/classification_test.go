package experiments

import (
	"math"
	"testing"
)

func TestTable6(t *testing.T) {
	c, ns := nets(t)
	rows := Table6(c, ns)
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 networks x 2 sizes)", len(rows))
	}
	bySize := map[string]map[string]Table6Row{}
	for _, r := range rows {
		if bySize[r.Network] == nil {
			bySize[r.Network] = map[string]Table6Row{}
		}
		bySize[r.Network][r.Size] = r
		if r.TestEdges < r.TrainEdges {
			t.Errorf("%s/%s: test smaller than train: %+v", r.Network, r.Size, r)
		}
	}
	for net, m := range bySize {
		if m["large"].TrainEdges <= m["small"].TrainEdges {
			t.Errorf("%s: large instance not larger than small", net)
		}
	}
}

func TestFigure9(t *testing.T) {
	c, ns := nets(t)
	rows, err := Figure9(c, byName(ns, "facebook"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 4 classifiers x 2 thetas", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.Ratio.Mean) || r.Ratio.Mean < 0 {
			t.Errorf("%s θ=%v: ratio %+v", r.Classifier, r.Theta, r.Ratio)
		}
	}
	// At least one classifier beats random at some θ.
	best := 0.0
	for _, r := range rows {
		best = math.Max(best, r.Ratio.Mean)
	}
	if best <= 1 {
		t.Errorf("no classifier beat random: best = %v", best)
	}
}

func TestFigure10(t *testing.T) {
	c, ns := nets(t)
	rows, err := Figure10(c, ns[:1]) // facebook only, to bound runtime
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ThetaSweep()) {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.Ratio.Mean) || r.Ratio.Mean < 0 || r.Ratio.Std < 0 {
			t.Errorf("θ=%v: %+v", r.Theta, r.Ratio)
		}
	}
}

func TestFigure11SVMCompetitive(t *testing.T) {
	c, ns := nets(t)
	rr := byName(ns, "renren")
	rows, err := Figure11(c, []*Network{rr})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 14 metrics + SVM", len(rows))
	}
	// Rows are sorted ascending by mean ratio; the paper's claim is that
	// SVM with a well-chosen θ performs as well as or better than the best
	// metric. Require SVM within the top half and >= 60% of the best
	// metric's ratio (sampling noise at test scale).
	var svmRank = -1
	var svmMean, bestMetric float64
	for i, r := range rows {
		if r.Method == "SVM" {
			svmRank = i
			svmMean = r.Ratio.Mean
		} else {
			bestMetric = math.Max(bestMetric, r.Ratio.Mean)
		}
	}
	if svmRank < 0 {
		t.Fatal("SVM row missing")
	}
	if svmRank < len(rows)/2 {
		t.Errorf("SVM ranked %d of %d (ascending), want top half", svmRank, len(rows))
	}
	if svmMean < 0.6*bestMetric {
		t.Errorf("SVM mean %v < 60%% of best metric %v", svmMean, bestMetric)
	}
}

func TestFigure12(t *testing.T) {
	c, ns := nets(t)
	series, err := Figure12(c, []*Network{byName(ns, "renren")})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 {
		t.Fatalf("series = %d", len(series))
	}
	s := series[0]
	if len(s.MetricRank) != 14 || len(s.Cumulative) != 14 {
		t.Fatalf("lengths: %d ranks, %d cumulative", len(s.MetricRank), len(s.Cumulative))
	}
	prev := 0.0
	for i, v := range s.Cumulative {
		if v < prev-1e-9 {
			t.Errorf("cumulative not monotone at %d: %v after %v", i, v, prev)
		}
		prev = v
	}
	if last := s.Cumulative[13]; math.Abs(last-1) > 1e-6 {
		t.Errorf("total cumulative weight = %v, want 1", last)
	}
}

func TestFigures13to15Separation(t *testing.T) {
	c, ns := nets(t)
	for _, cdfs := range Figures13to15(c, ns) {
		// Positive pairs are more recently active (Fig. 13) and gained
		// common neighbors more recently (Fig. 15) on every network.
		if p, n := cdfs.PosActiveIdle.FractionBelow(3), cdfs.NegActiveIdle.FractionBelow(3); p <= n {
			t.Errorf("%s: active idle separation pos %.3f <= neg %.3f", cdfs.Network, p, n)
		}
		if p, n := cdfs.PosCNGap.FractionBelow(10), cdfs.NegCNGap.FractionBelow(10); p <= n {
			t.Errorf("%s: CN gap separation pos %.3f <= neg %.3f", cdfs.Network, p, n)
		}
		if p, n := 1-cdfs.PosNewEdges.FractionBelow(2.5), 1-cdfs.NegNewEdges.FractionBelow(2.5); p <= n {
			t.Errorf("%s: new-edge separation pos %.3f <= neg %.3f", cdfs.Network, p, n)
		}
	}
}

func TestTable7(t *testing.T) {
	_, ns := nets(t)
	rows := Table7(ns)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Config.ActIdleDays <= 0 || r.Config.CNGapDays <= 0 {
			t.Errorf("%s: zero thresholds %+v", r.Network, r.Config)
		}
	}
}

func TestTable8FiltersImprove(t *testing.T) {
	c, ns := nets(t)
	rows, err := Table8(c, []*Network{byName(ns, "renren")})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table8Metrics())+len(ThetaSweep()) {
		t.Fatalf("rows = %d", len(rows))
	}
	improved, total := 0, 0
	var sum float64
	for _, r := range rows {
		if math.IsNaN(r.Improvement) {
			t.Errorf("%s: NaN improvement", r.Method)
		}
		if r.Unfiltered > 0 {
			total++
			sum += r.Improvement
			if r.Improvement >= 1 {
				improved++
			}
		}
	}
	if total == 0 {
		t.Fatal("no method had nonzero unfiltered ratio")
	}
	// The paper's headline: filtering improves prediction across methods.
	// Require improvement for a clear majority and on average.
	if improved*3 < total*2 {
		t.Errorf("only %d/%d methods improved by filtering", improved, total)
	}
	if sum/float64(total) <= 1 {
		t.Errorf("mean improvement = %v, want > 1", sum/float64(total))
	}
}

func TestFigure16FiltersBeatTimeModel(t *testing.T) {
	c, ns := nets(t)
	rows, err := Figure16(c, []*Network{byName(ns, "renren")}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Figure16Metrics()) {
		t.Fatalf("rows = %d", len(rows))
	}
	filterWins, combos := 0, 0
	for _, r := range rows {
		if math.IsNaN(r.Basic) || math.IsNaN(r.TimeModel) {
			t.Errorf("%s: NaN entries %+v", r.Metric, r)
		}
		if r.Basic > 0 {
			if r.BasicFiltered >= r.TimeModel {
				filterWins++
			}
			if r.TimeModelFiltered >= r.TimeModel {
				combos++
			}
		}
	}
	// Filtering should help at least as much as the MA time model for most
	// metrics, and composing filter + time model should not hurt.
	if filterWins*2 < len(rows) {
		t.Errorf("filter beat the time model on only %d/%d metrics", filterWins, len(rows))
	}
	if combos*2 < len(rows) {
		t.Errorf("filter improved the time model on only %d/%d metrics", combos, len(rows))
	}
}

func TestExtrasMissingAndDirected(t *testing.T) {
	c, ns := nets(t)
	missing, err := MissingLinks(c, ns[:1])
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 4 {
		t.Fatalf("missing rows = %d", len(missing))
	}
	for _, r := range missing {
		if r.AUC < 0.5 {
			t.Errorf("%s/%s: detection AUC %v below chance", r.Network, r.Alg, r.AUC)
		}
		if r.Ratio <= 1 {
			t.Errorf("%s/%s: detection ratio %v", r.Network, r.Alg, r.Ratio)
		}
	}
	directed, err := Directed(c, ns)
	if err != nil {
		t.Fatal(err)
	}
	if len(directed) != 12 {
		t.Fatalf("directed rows = %d", len(directed))
	}
	// Direction makes the task strictly harder and friendship networks
	// carry little directional signal at test scale; require only that the
	// directed transitivity metric beats random on the densest network.
	for _, r := range directed {
		if r.Network == "renren" && r.Scorer == "DCN" && r.Ratio <= 1 {
			t.Errorf("renren DCN directed ratio = %v, want > 1", r.Ratio)
		}
		if math.IsNaN(r.Ratio) || r.Ratio < 0 {
			t.Errorf("%s/%s: bad ratio %v", r.Network, r.Scorer, r.Ratio)
		}
	}
}

func TestEnsembles(t *testing.T) {
	c, ns := nets(t)
	rows, err := Ensembles(c, byName(ns, "renren"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	var svm, bestEnsemble float64
	for _, r := range rows {
		if math.IsNaN(r.Ratio.Mean) || r.Ratio.Mean < 0 {
			t.Errorf("%s: ratio %+v", r.Method, r.Ratio)
		}
		if r.Method == "SVM" {
			svm = r.Ratio.Mean
		} else if r.Ratio.Mean > bestEnsemble {
			bestEnsemble = r.Ratio.Mean
		}
	}
	// The intro claim: larger ensembles do not produce *dramatic*
	// improvements over the SVM. Allow noise but forbid an order of
	// magnitude.
	if svm > 0 && bestEnsemble > 10*svm {
		t.Errorf("ensembles (%v) dwarf SVM (%v); intro claim violated", bestEnsemble, svm)
	}
}

func TestConsistency(t *testing.T) {
	c, ns := nets(t)
	rows, err := Consistency(c, ns)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.Spearman) || r.Spearman < -1 || r.Spearman > 1 {
			t.Errorf("%s: Spearman %v", r.Network, r.Spearman)
		}
		if r.SmallTop == "" || r.LargeTop == "" {
			t.Errorf("%s: missing top metrics", r.Network)
		}
	}
	// The paper reports consistent small/large results at its scale; at
	// test scale the sampled instances are quantization-dominated, so only
	// validity is asserted here. EXPERIMENTS.md records the bench-scale
	// correlation.
}

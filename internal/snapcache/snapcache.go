// Package snapcache is the per-snapshot artifact cache shared by every
// algorithm scoring one evaluation cut. A snapshot's CSR adjacency, its
// degree-descending order, the top-degree block mask, and algorithm-owned
// derived artifacts (log-degree tables, latent factor matrices) are built
// lazily once and shared by all subsequent algorithms, worker counts, and
// Predict/ScorePairs calls against the same *graph.Graph.
//
// Correctness constraints:
//
//   - Keys identify graphs by pointer. The cache holds a strong reference to
//     every resident graph, so a pointer can never be recycled while its
//     artifacts are live; eviction drops the graph and all artifacts
//     together.
//   - Artifact builders must be deterministic functions of the graph and the
//     key. Callers encode every parameter that changes the result (rank,
//     iterations, seed, ...) into the key; worker counts are deliberately
//     excluded because every builder in this repository is bit-identical at
//     any worker count (DESIGN.md §8).
//   - Values are shared read-only across goroutines after construction.
//
// Telemetry: snapcache/{hits,misses} counters and the snapcache/build_ns
// histogram make sharing visible in -metrics-out dumps.
package snapcache

import (
	"cmp"
	"container/list"
	"fmt"
	"slices"
	"sync"
	"time"

	"linkpred/internal/csr"
	"linkpred/internal/graph"
	"linkpred/internal/linalg"
	"linkpred/internal/obs"
)

// DefaultCapacity bounds resident snapshots. Eight covers every concurrent
// sweep pattern in this repository (experiments pins task engines to one
// worker and bounds in-flight tasks) while keeping worst-case factor-matrix
// memory modest.
const DefaultCapacity = 8

var global = struct {
	sync.Mutex
	capacity int
	lru      list.List                      // of *Artifacts, front = most recent
	index    map[*graph.Graph]*list.Element // graph -> lru element
}{capacity: DefaultCapacity}

// For returns the artifact set of g, creating it on first use and marking it
// most recently used. The least recently used snapshot is evicted beyond
// capacity.
func For(g *graph.Graph) *Artifacts {
	global.Lock()
	defer global.Unlock()
	if global.index == nil {
		global.index = make(map[*graph.Graph]*list.Element)
	}
	if el, ok := global.index[g]; ok {
		global.lru.MoveToFront(el)
		return el.Value.(*Artifacts)
	}
	a := &Artifacts{g: g, entries: make(map[string]*entry)}
	global.index[g] = global.lru.PushFront(a)
	for global.lru.Len() > global.capacity {
		el := global.lru.Back()
		global.lru.Remove(el)
		delete(global.index, el.Value.(*Artifacts).g)
		if obs.Enabled() {
			obs.GetCounter("snapcache/evictions").Inc()
		}
	}
	return a
}

// Reset drops every cached snapshot. Intended for tests and long-lived
// processes that want a memory floor between phases.
func Reset() {
	global.Lock()
	defer global.Unlock()
	global.lru.Init()
	global.index = nil
}

// SetCapacity changes the resident-snapshot bound (minimum one) and returns
// the previous value. Shrinking evicts oldest-first on the next For call.
func SetCapacity(n int) int {
	global.Lock()
	defer global.Unlock()
	prev := global.capacity
	if n < 1 {
		n = 1
	}
	global.capacity = n
	return prev
}

// Artifacts is one snapshot's lazily built shared state.
type Artifacts struct {
	g       *graph.Graph
	mu      sync.Mutex
	entries map[string]*entry
}

// entry decouples registration from construction: the map lock is held only
// to claim the key, and the per-entry once lets slow builds (eigensolves)
// run without blocking readers of other artifacts.
type entry struct {
	once sync.Once
	val  any
	err  error
}

// Graph returns the snapshot these artifacts belong to.
func (a *Artifacts) Graph() *graph.Graph { return a.g }

// Artifact returns the value under key, building it at most once per
// snapshot via build. Concurrent callers for the same key block on the
// first builder; other keys proceed independently. The error, like the
// value, is cached.
func (a *Artifacts) Artifact(key string, build func() (any, error)) (any, error) {
	a.mu.Lock()
	e, hit := a.entries[key]
	if !hit {
		e = &entry{}
		a.entries[key] = e
	}
	a.mu.Unlock()
	track := obs.Enabled()
	if track && hit {
		obs.GetCounter("snapcache/hits").Inc()
	}
	e.once.Do(func() {
		var start time.Time
		if track {
			start = time.Now()
			obs.GetCounter("snapcache/misses").Inc()
		}
		e.val, e.err = build()
		if track {
			obs.GetHistogram("snapcache/build_ns").Observe(time.Since(start).Nanoseconds())
		}
	})
	return e.val, e.err
}

// CSR returns the snapshot's shared adjacency matrix, building it on first
// use. The construction error (int32 offset overflow) is cached and
// returned to every caller.
func (a *Artifacts) CSR() (*linalg.CSR, error) {
	v, err := a.Artifact("csr", func() (any, error) {
		c, err := linalg.FromGraph(a.g)
		if err != nil {
			return nil, err
		}
		return c, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*linalg.CSR), nil
}

// CSRView returns the snapshot's degree-ordered relabeling and hub-block
// bitsets (csr.Build with the default budget), building them on first use.
// The view is shared read-only; its Order agrees element-for-element with
// DegreeOrder.
func (a *Artifacts) CSRView() *csr.View {
	v, _ := a.Artifact("csrview", func() (any, error) {
		return csr.Build(a.g, csr.DefaultHubBudget), nil
	})
	return v.(*csr.View)
}

// DegreeOrder returns all node IDs sorted by descending degree, ties broken
// by ascending ID — the canonical supernode order shared by the top-degree
// candidate block, PA's frontier walk, and landmark selection. The slice is
// shared and must not be modified.
func (a *Artifacts) DegreeOrder() []graph.NodeID {
	v, _ := a.Artifact("degree-order", func() (any, error) {
		n := a.g.NumNodes()
		order := make([]graph.NodeID, n)
		for i := range order {
			order[i] = graph.NodeID(i)
		}
		slices.SortStableFunc(order, func(x, y graph.NodeID) int {
			if c := cmp.Compare(a.g.Degree(y), a.g.Degree(x)); c != 0 {
				return c
			}
			return cmp.Compare(x, y)
		})
		return order, nil
	})
	return v.([]graph.NodeID)
}

// Block is the top-degree candidate block of one snapshot: the size
// highest-degree nodes in canonical order, a membership mask, and each
// member's block position (Pos[v] < 0 for non-members).
type Block struct {
	Order []graph.NodeID
	In    []bool
	Pos   []int32
}

// Block returns the top-degree block of the given size, clamped to the node
// count. All fields are shared and must not be modified.
func (a *Artifacts) Block(size int) *Block {
	if n := a.g.NumNodes(); size > n {
		size = n
	}
	if size < 0 {
		size = 0
	}
	v, _ := a.Artifact(fmt.Sprintf("block/%d", size), func() (any, error) {
		order := a.DegreeOrder()
		b := &Block{
			Order: order[:size],
			In:    make([]bool, len(order)),
			Pos:   make([]int32, len(order)),
		}
		for i := range b.Pos {
			b.Pos[i] = -1
		}
		for i, u := range b.Order {
			b.In[u] = true
			b.Pos[u] = int32(i)
		}
		return b, nil
	})
	return v.(*Block)
}

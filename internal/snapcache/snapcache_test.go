package snapcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
)

func pathGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = graph.Edge{U: graph.NodeID(i), V: graph.NodeID(i + 1), Time: int64(i)}
	}
	return graph.Build(n, edges)
}

func counterValue(name string) int64 {
	return obs.Snapshot().Counters[name]
}

func TestArtifactBuildsOncePerSnapshot(t *testing.T) {
	Reset()
	a := For(pathGraph(5))
	builds := 0
	get := func() (int, error) {
		v, err := a.Artifact("k", func() (any, error) {
			builds++
			return builds, nil
		})
		return v.(int), err
	}
	for i := 0; i < 3; i++ {
		v, err := get()
		if err != nil || v != 1 {
			t.Fatalf("call %d: v=%d err=%v", i, v, err)
		}
	}
	if builds != 1 {
		t.Fatalf("builder ran %d times", builds)
	}
}

func TestArtifactCachesError(t *testing.T) {
	Reset()
	a := For(pathGraph(3))
	builds := 0
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_, err := a.Artifact("bad", func() (any, error) {
			builds++
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if builds != 1 {
		t.Fatalf("failed builder retried: %d builds", builds)
	}
}

func TestForSharesAndDistinguishesGraphs(t *testing.T) {
	Reset()
	g1, g2 := pathGraph(4), pathGraph(4)
	if For(g1) != For(g1) {
		t.Fatal("same graph pointer should share artifacts")
	}
	if For(g1) == For(g2) {
		t.Fatal("distinct graph pointers must not share artifacts")
	}
}

func TestLRUEviction(t *testing.T) {
	Reset()
	prev := SetCapacity(2)
	defer SetCapacity(prev)
	g1, g2, g3 := pathGraph(3), pathGraph(3), pathGraph(3)
	a1 := For(g1)
	For(g2)
	a1b := For(g1) // touch g1 so g2 is the LRU victim
	if a1 != a1b {
		t.Fatal("resident snapshot rebuilt")
	}
	For(g3) // evicts g2
	if For(g1) != a1 {
		t.Fatal("g1 evicted despite being recently used")
	}
	// g2 must have been dropped: a fresh Artifacts set comes back.
	a2 := For(g2)
	if _, ok := a2.entries["probe"]; ok {
		t.Fatal("unexpected entries in fresh artifacts")
	}
}

func TestHitMissCounters(t *testing.T) {
	obs.Enable(true)
	defer obs.Enable(false)
	obs.Reset()
	Reset()
	a := For(pathGraph(6))
	if _, err := a.CSR(); err != nil {
		t.Fatal(err)
	}
	a.DegreeOrder()
	if _, err := a.CSR(); err != nil { // hit
		t.Fatal(err)
	}
	a.DegreeOrder() // hit
	if got := counterValue("snapcache/misses"); got != 2 {
		t.Errorf("misses = %d, want 2", got)
	}
	if got := counterValue("snapcache/hits"); got != 2 {
		t.Errorf("hits = %d, want 2", got)
	}
}

func TestDegreeOrderAndBlock(t *testing.T) {
	Reset()
	// Star plus pendant: degrees 0:3, 1:1, 2:1, 3:2, 4:1.
	g := graph.Build(5, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}, {U: 3, V: 4},
	})
	a := For(g)
	order := a.DegreeOrder()
	want := []graph.NodeID{0, 3, 1, 2, 4}
	for i, u := range want {
		if order[i] != u {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	blk := a.Block(2)
	if len(blk.Order) != 2 || blk.Order[0] != 0 || blk.Order[1] != 3 {
		t.Fatalf("block order = %v", blk.Order)
	}
	if !blk.In[0] || !blk.In[3] || blk.In[1] {
		t.Fatalf("block mask = %v", blk.In)
	}
	if blk.Pos[0] != 0 || blk.Pos[3] != 1 || blk.Pos[2] != -1 {
		t.Fatalf("block pos = %v", blk.Pos)
	}
	if a.Block(99).Order == nil || len(a.Block(99).Order) != 5 {
		t.Fatal("oversized block should clamp to n")
	}
	if len(a.Block(-1).Order) != 0 {
		t.Fatal("negative block size should clamp to 0")
	}
}

func TestConcurrentArtifactAccess(t *testing.T) {
	Reset()
	g := pathGraph(50)
	var wg sync.WaitGroup
	vals := make([]any, 16)
	for i := range vals {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _ := For(g).Artifact(fmt.Sprintf("k%d", i%4), func() (any, error) {
				return new(int), nil
			})
			vals[i] = v
		}(i)
	}
	wg.Wait()
	for i := range vals {
		if vals[i] != vals[i%4] {
			t.Fatalf("key k%d returned distinct values", i%4)
		}
	}
}

// Package cluster implements horizontal scale-out for prediction serving:
// a thin router in front of N linkpredd workers, each answering for one
// contiguous source-node shard of the candidate universe (DESIGN.md §12).
//
// The scatter/gather contract: every shard holds the FULL graph (ingest is
// replicated to all shards in identical order), but /predict?shard=i&shards=N
// restricts the sweep to pairs owned by shard i — those whose min endpoint
// falls in ShardSourceRange(n, i, N). The shard ranges partition the dense
// node space, so the union of the shards' ownership universes is exactly the
// unrestricted candidate universe, and merging the N partial top-k lists
// with predict.MergeTopK — which reuses the engine's seeded tie-break hash —
// reproduces the single-process top-k bit for bit, at any shard count and
// any per-shard worker count.
//
// Epoch consistency: the merge is only meaningful when every partial list
// was computed against the same snapshot. The router tags each response
// with its snapshot sequence number, takes the maximum across the gather,
// and re-asks stale shards (bounded retries with backoff) until all ranges
// agree — a shard that just published seq s+1 pulls the others forward
// rather than being discarded. Shards that stay down or stay behind yield a
// partial response: partial:true plus the missing source ranges, so the
// caller knows exactly which slice of the universe is unaccounted for.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"linkpred/internal/graph"
	"linkpred/internal/liveeval"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
	"linkpred/internal/serve"
)

// Config parameterizes a Router. Shards is required; everything else has a
// serviceable default.
type Config struct {
	// Shards lists the worker base URLs (e.g. http://127.0.0.1:8081), one
	// per source shard, in shard-index order. The order is the sharding:
	// Shards[i] answers for ShardSourceRange(n, i, len(Shards)).
	Shards []string
	// Seed must equal every shard's engine seed (predict.Options.Seed):
	// the gather merge breaks score ties with the same seeded hash the
	// shards used, which is what makes the merged ranking bit-identical
	// to a single-process sweep.
	Seed int64
	// Client issues the fan-out requests (default: http.Client with the
	// router's Timeout).
	Client *http.Client
	// Timeout bounds each scatter/gather when the request carries no
	// explicit budget (default 10s). Explicit timeout_ms wins.
	Timeout time.Duration
	// HedgeAfter launches one backup request against a straggling shard
	// after this delay (default 150ms; 0 keeps the default, negative
	// disables hedging). First response wins; the loser is cancelled.
	HedgeAfter time.Duration
	// EpochRetries bounds how many times a stale shard is re-asked to
	// catch up to the gather's maximum snapshot epoch (default 4).
	EpochRetries int
	// EpochBackoff is the wait between epoch re-asks (default 25ms): the
	// stale shard's publish is usually mid-flight, not missing.
	EpochBackoff time.Duration
	// Partitioned declares the shards memory-partitioned (linkpredd
	// -partition, DESIGN.md §13): each worker materializes only its owned
	// adjacency rows plus frontier, with the partition bounds configured on
	// the workers in ascending shard order. /predict then scatters with NO
	// shard parameters — each worker sweeps exactly its ownership range and
	// reports it via shard_range — and /score broadcasts to every shard,
	// keeping the Owned answer per pair. Only the partition-safe local
	// algorithm family is servable in this mode (workers reject the rest
	// with 400).
	Partitioned bool
	// Eval, when set, runs prequential evaluation at the router: every
	// merged (non-partial) /predict response is recorded and every
	// replicated ingest edge is scored against the merged predictions that
	// existed before it arrived. This measures what the cluster actually
	// serves — shard-local evaluation cannot see the merged ranking, and in
	// partitioned mode no single shard even holds it. The live series
	// appear in the router's /metrics.
	Eval *liveeval.Engine
}

// Response is a merged cluster answer. For a full gather it serializes
// byte-identically to a single node's serve.Result (the omitempty cluster
// fields stay absent); a degraded gather adds partial:true and the source
// ranges no aligned shard answered for.
type Response struct {
	serve.Result
	Partial       bool     `json:"partial,omitempty"`
	MissingRanges [][2]int `json:"missing_ranges,omitempty"`
}

// IngestResult reports one replicated ingest fan-out.
type IngestResult struct {
	Accepted    int   `json:"accepted"`
	Rejected    int   `json:"rejected"`
	SnapshotSeq int64 `json:"snapshot_seq"`
	TraceEdges  int   `json:"trace_edges"`
	// ShardErrors counts shards that failed to apply the batch. Non-zero
	// means the cluster has diverged (see Router doc) — surfaced, not
	// hidden, so the operator can restart the lagging shard.
	ShardErrors int `json:"shard_errors,omitempty"`
}

// ShardHealth is one worker's view in the aggregate health payload.
type ShardHealth struct {
	Shard int    `json:"shard"`
	URL   string `json:"url"`
	Up    bool   `json:"up"`
	Err   string `json:"err,omitempty"`
	// CatchingUp marks an up shard whose ingest position (TraceEdges)
	// trails the most advanced up shard — typically one that crashed,
	// recovered its trace from the write-ahead log, and is replaying the
	// ingest delta it missed. Its snapshots are internally consistent but
	// epoch-stale, so the router serves its ranges partial until the edge
	// counts realign.
	CatchingUp bool `json:"catching_up,omitempty"`
	serve.Health
}

// ClusterHealth is the router's /healthz payload. SnapshotBytes sums the
// up shards' resident adjacency footprints — on a partitioned cluster
// (Partitioned true) that total plus frontier overhead replaces N full
// copies of the graph, which is the memory win §13 quantifies.
type ClusterHealth struct {
	OK        bool  `json:"ok"`
	Shards    int   `json:"shards"`
	ShardsUp  int   `json:"shards_up"`
	EpochSkew int64 `json:"epoch_skew"`
	// CatchingUp counts up shards still replaying missed ingest after a
	// crash-recovery restart (see ShardHealth.CatchingUp).
	CatchingUp    int           `json:"catching_up,omitempty"`
	SnapshotBytes int64         `json:"snapshot_bytes"`
	Partitioned   bool          `json:"partitioned,omitempty"`
	Workers       []ShardHealth `json:"workers"`
}

// ErrAllShardsDown reports a gather in which no shard produced a usable
// response.
var ErrAllShardsDown = errors.New("cluster: all shards down")

// ShardRejection is a shard's deterministic client-error refusal (unknown
// algorithm, partition-unsupported family). All shards share one
// configuration, so retrying or hedging cannot change the answer; the
// gather surfaces the refusal with its original status instead of
// misreporting a healthy cluster as an outage.
type ShardRejection struct {
	Status int
	Msg    string
}

func (e *ShardRejection) Error() string { return e.Msg }

// Router scatters predict requests across source shards and gathers the
// partial top-k lists into the bit-identical global ranking. It holds no
// graph state of its own: shards are the system of record, and the router's
// only invariants are (a) replicated ingest order and (b) same-epoch merge.
//
// Shard recovery (ROADMAP item 2): a shard that misses ingest batches
// (crash, partition) diverges, and the router detects this as persistent
// epoch misalignment, serving partial responses for that shard's ranges.
// With the durable trace landed (internal/wal), a crashed shard restarts
// from its own write-ahead log + checkpoint, resumes at its pre-crash
// ingest position, and reports catching_up in the aggregate health until
// its trace length realigns with the most advanced shard; the operator
// replays the missed delta (or the upstream source re-sends it) to close
// the gap. Router-driven automatic delta replay remains future work.
type Router struct {
	cfg    Config
	client *http.Client

	// ingestMu serializes ingest fan-outs so every shard applies batches
	// in the same order — the whole epoch-consistency protocol rests on
	// identical traces producing identical snapshot sequences.
	ingestMu sync.Mutex

	// rr round-robins /score forwards across shards.
	rr atomic.Uint64

	// lastSeq tracks each shard's most recently observed snapshot epoch,
	// feeding the epoch-skew gauge.
	lastSeq []atomic.Int64

	// evalMu guards the router-side prequential mirror (Config.Eval): a
	// replay of the replicated event stream through exactly the validation
	// and first-seen dense remapping the workers apply, so the router's
	// dense IDs and trace indices match every shard's. Ingest (already
	// serialized by ingestMu) extends it; Predict reads it to record merged
	// rankings in dense space.
	evalMu    sync.RWMutex
	evalTrace *graph.Trace
	evalRemap map[int64]graph.NodeID
}

// New builds a Router. It panics on an empty shard list — a router with
// nothing behind it is a configuration error, not a runtime state.
func New(cfg Config) *Router {
	if len(cfg.Shards) == 0 {
		panic("cluster: Config.Shards is empty")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 150 * time.Millisecond
	}
	if cfg.EpochRetries <= 0 {
		cfg.EpochRetries = 4
	}
	if cfg.EpochBackoff <= 0 {
		cfg.EpochBackoff = 25 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	r := &Router{cfg: cfg, client: client, lastSeq: make([]atomic.Int64, len(cfg.Shards))}
	if cfg.Eval != nil {
		r.evalTrace = &graph.Trace{Name: "cluster-eval"}
		r.evalRemap = make(map[int64]graph.NodeID)
	}
	if obs.Enabled() {
		obs.SetGaugeFunc("cluster/shards", func() float64 { return float64(len(cfg.Shards)) })
		obs.SetGaugeFunc("cluster/epoch_skew", func() float64 { return float64(r.epochSkew()) })
	}
	return r
}

// epochSkew is max-min of the last observed per-shard snapshot epochs.
func (r *Router) epochSkew() int64 {
	var lo, hi int64
	for i := range r.lastSeq {
		s := r.lastSeq[i].Load()
		if i == 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return hi - lo
}

// shardResp is one gathered partial response.
type shardResp struct {
	shard int
	res   *serve.Result
	err   error
}

// fetchShard asks shard i for its partial top-k, with one retry on failure
// and one hedged backup after cfg.HedgeAfter. At most two attempts are ever
// in flight; the first success wins and cancels the other.
func (r *Router) fetchShard(ctx context.Context, shard int, alg string, k int) (*serve.Result, error) {
	// Memory-partitioned workers define their own sweep range (the
	// configured ownership bounds); shard parameters would conflict with
	// it, so the partitioned scatter sends none.
	u := fmt.Sprintf("%s/predict?alg=%s&k=%d", r.cfg.Shards[shard], url.QueryEscape(alg), k)
	if !r.cfg.Partitioned {
		u = fmt.Sprintf("%s/predict?alg=%s&k=%d&shard=%d&shards=%d",
			r.cfg.Shards[shard], url.QueryEscape(alg), k, shard, len(r.cfg.Shards))
	}
	type attempt struct {
		res *serve.Result
		err error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attempt, 2)
	launch := func() {
		go func() {
			res, err := r.getResult(ctx, u)
			results <- attempt{res, err}
		}()
	}
	launch()
	launched, done := 1, 0
	var hedge <-chan time.Time
	if r.cfg.HedgeAfter > 0 {
		t := time.NewTimer(r.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			if firstErr != nil {
				return nil, firstErr
			}
			return nil, ctx.Err()
		case <-hedge:
			hedge = nil
			if launched < 2 {
				launched++
				if obs.Enabled() {
					obs.GetCounter("cluster/shard_hedges").Inc()
				}
				launch()
			}
		case a := <-results:
			done++
			if a.err == nil {
				r.lastSeq[shard].Store(a.res.SnapshotSeq)
				return a.res, nil
			}
			var rej *ShardRejection
			if errors.As(a.err, &rej) {
				// Deterministic refusal: the retry and the hedge would get
				// the same 4xx, so fail the shard fetch immediately.
				return nil, a.err
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if obs.Enabled() {
				obs.GetCounter(fmt.Sprintf(`cluster/shard_errors{shard="%d"}`, shard)).Inc()
			}
			if launched < 2 && ctx.Err() == nil {
				// Retry immediately rather than waiting out the hedge
				// timer: the shard failed fast, so ask again fast.
				launched++
				if obs.Enabled() {
					obs.GetCounter("cluster/shard_retries").Inc()
				}
				launch()
			} else if done == launched {
				return nil, firstErr
			}
		}
	}
}

// getResult issues one GET and decodes a serve.Result, recording the
// per-shard latency histogram.
func (r *Router) getResult(ctx context.Context, u string) (*serve.Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			msg := string(bytes.TrimSpace(body))
			var env struct {
				Error string `json:"error"`
			}
			if json.Unmarshal(body, &env) == nil && env.Error != "" {
				msg = env.Error
			}
			return nil, &ShardRejection{Status: resp.StatusCode, Msg: msg}
		}
		return nil, fmt.Errorf("cluster: shard status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var res serve.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("cluster: bad shard response: %w", err)
	}
	if obs.Enabled() {
		obs.GetHistogram("cluster/shard_latency_ns").Observe(time.Since(start).Nanoseconds())
	}
	return &res, nil
}

// Predict scatters alg/k across all shards, gathers same-epoch partial
// lists, and merges them into the global top-k. A fully aligned gather is
// bit-identical to a single-process sweep; a gather with dead or
// persistently stale shards returns partial:true with their source ranges.
// It fails with ErrAllShardsDown only when no shard answered at all.
func (r *Router) Predict(ctx context.Context, alg string, k int) (*Response, error) {
	if obs.Enabled() {
		obs.GetCounter("cluster/scatter_requests").Inc()
	}
	// The caller's deadline is the scatter budget (the HTTP layer derives
	// it from timeout_ms); fall back to the router default only when the
	// request carries none.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	}

	n := len(r.cfg.Shards)
	got := make([]*serve.Result, n)
	var rejected *ShardRejection
	gather := func(shards []int) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := r.fetchShard(ctx, i, alg, k)
				mu.Lock()
				if err == nil {
					got[i] = res
				} else {
					got[i] = nil
					var rej *ShardRejection
					if errors.As(err, &rej) && rejected == nil {
						rejected = rej
					}
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	gather(all)

	// Epoch alignment: find the maximum snapshot epoch across the gather
	// and re-ask shards that answered from an older one. A re-ask may
	// itself raise the maximum (the straggler published again while we
	// waited), so loop — bounded by EpochRetries.
	maxSeq := func() int64 {
		var m int64 = -1
		for _, res := range got {
			if res != nil && res.SnapshotSeq > m {
				m = res.SnapshotSeq
			}
		}
		return m
	}
	target := maxSeq()
	if target < 0 {
		if rejected != nil {
			return nil, rejected
		}
		return nil, ErrAllShardsDown
	}
	for try := 0; try < r.cfg.EpochRetries; try++ {
		var stale []int
		for i, res := range got {
			if res != nil && res.SnapshotSeq < target {
				stale = append(stale, i)
			}
		}
		if len(stale) == 0 {
			break
		}
		if obs.Enabled() {
			obs.GetCounter("cluster/epoch_reasks").Add(int64(len(stale)))
			obs.GetCounter("cluster/stragglers").Add(int64(len(stale)))
		}
		if r.cfg.EpochBackoff > 0 {
			select {
			case <-time.After(r.cfg.EpochBackoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		gather(stale)
		if m := maxSeq(); m > target {
			target = m
		}
	}

	// A single-shard cluster needs no merge: the worker answered the
	// unrestricted sweep (shards=1 disables range restriction server-side)
	// and its result passes through whole.
	if n == 1 {
		if got[0] == nil {
			return nil, ErrAllShardsDown
		}
		if obs.Enabled() {
			obs.GetCounter("cluster/gather_full").Inc()
		}
		out := &Response{Result: *got[0]}
		r.recordEval(out)
		return out, nil
	}

	// Assemble: aligned shards contribute their partial lists; dead or
	// still-stale shards contribute their owned ranges to missing_ranges.
	// The boundaries are derived from the aligned responses: the split is
	// degree-weighted and computed shard-side from the snapshot
	// (predict.WeightedSourceRanges), so the router cannot reconstruct a
	// dead shard's range alone — but the ranges are contiguous and ordered
	// by shard index, so a run of unanswered shards owns exactly the gap
	// between its alive neighbors' boundaries (closed by 0 on the left and
	// the snapshot's node count on the right).
	var (
		aligned  []*serve.Result
		missing  [][2]int
		numNodes int
		ok       = make([]bool, n)
		lo       = make([]int, n)
		hi       = make([]int, n)
	)
	for i, res := range got {
		if res != nil && res.SnapshotSeq == target {
			aligned = append(aligned, res)
			if res.SnapshotNodes > numNodes {
				numNodes = res.SnapshotNodes
			}
			if res.ShardRange != nil {
				ok[i] = true
				lo[i], hi[i] = res.ShardRange[0], res.ShardRange[1]
			}
		}
	}
	if len(aligned) == 0 {
		return nil, ErrAllShardsDown
	}
	prevHi := 0
	for i := 0; i < n; {
		if ok[i] {
			prevHi = hi[i]
			i++
			continue
		}
		j := i
		for j < n && !ok[j] {
			j++
		}
		end := numNodes
		if j < n {
			end = lo[j]
		}
		// An empty gap means the unanswered shards owned no sources (more
		// shards than weight to split); nothing is missing from the merge.
		if end > prevHi {
			missing = append(missing, [2]int{prevHi, end})
		}
		prevHi = end
		i = j
	}

	out := &Response{Result: r.merge(aligned, k)}
	out.Alg = alg
	if len(missing) > 0 {
		out.Partial = true
		out.MissingRanges = missing
		if obs.Enabled() {
			obs.GetCounter("cluster/gather_partial").Inc()
		}
	} else if obs.Enabled() {
		obs.GetCounter("cluster/gather_full").Inc()
	}
	r.recordEval(out)
	return out, nil
}

// recordEval records one merged top-k into the router's prequential engine.
// Partial gathers are skipped: a ranking missing source ranges is not the
// cluster's answer, and crediting it would reward losing shards. The ranked
// pairs are remapped to the dense ID space shared with the workers via the
// router's ingest mirror; endpoints the mirror has never seen (possible only
// when a worker was warm-started outside the router's stream) are skipped.
func (r *Router) recordEval(out *Response) {
	if r.cfg.Eval == nil || out.Partial {
		return
	}
	r.evalMu.RLock()
	ranked := make([][2]graph.NodeID, 0, len(out.Pairs))
	for _, p := range out.Pairs {
		u, uok := r.evalRemap[p.U]
		v, vok := r.evalRemap[p.V]
		if !uok || !vok {
			continue
		}
		ranked = append(ranked, [2]graph.NodeID{u, v})
	}
	traceLen := len(r.evalTrace.Edges)
	r.evalMu.RUnlock()
	r.cfg.Eval.Record(out.ServedBy, out.SnapshotSeq, out.SnapshotEdges, traceLen, ranked)
}

// merge folds the aligned partial lists into the global top-k. The merge
// runs in the DENSE ID space the shards rank in — the tie-break hash is a
// function of the dense pair, so merging on external IDs would break bit-
// identity whenever ties cross a shard boundary — then maps the winners
// back to external IDs via the (dense → external) pairs the shard responses
// carry. The merged payload drops the dense fields: a full gather
// serializes exactly like a single-node serve.Result.
func (r *Router) merge(aligned []*serve.Result, k int) serve.Result {
	parts := make([][]predict.Pair, len(aligned))
	ext := make(map[graph.NodeID]int64)
	for i, res := range aligned {
		part := make([]predict.Pair, len(res.Pairs))
		for j, p := range res.Pairs {
			part[j] = predict.Pair{U: p.DU, V: p.DV, Score: p.Score}
			ext[p.DU] = p.U
			ext[p.DV] = p.V
		}
		parts[i] = part
	}
	merged := predict.MergeTopK(parts, k, r.cfg.Seed)
	base := aligned[0]
	out := serve.Result{
		Alg:           base.Alg,
		ServedBy:      base.ServedBy,
		Degraded:      base.Degraded,
		SnapshotSeq:   base.SnapshotSeq,
		SnapshotEdges: base.SnapshotEdges,
		SnapshotTime:  base.SnapshotTime,
		Pairs:         make([]serve.PairScore, len(merged)),
	}
	for _, res := range aligned[1:] {
		if res.Degraded {
			out.Degraded = true
			out.ServedBy = res.ServedBy
		}
	}
	for i, p := range merged {
		out.Pairs[i] = serve.PairScore{U: ext[p.U], V: ext[p.V], Score: p.Score}
	}
	return out
}

// Ingest replicates one event batch to every shard. Fan-outs are serialized
// so all shards apply batches in identical order — the precondition for
// identical snapshot cadence and therefore for epoch-aligned gathers. The
// returned counts come from the first healthy shard (all healthy shards
// agree by construction); ShardErrors reports divergence.
func (r *Router) Ingest(ctx context.Context, events []serve.Event) (*IngestResult, error) {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	body, err := json.Marshal(struct {
		Events []serve.Event `json:"events"`
	}{events})
	if err != nil {
		return nil, err
	}
	type reply struct {
		shard int
		out   IngestResult
		err   error
	}
	replies := make(chan reply, len(r.cfg.Shards))
	for i, base := range r.cfg.Shards {
		go func(i int, base string) {
			var out IngestResult
			err := r.postJSON(ctx, base+"/ingest", body, &out)
			replies <- reply{i, out, err}
		}(i, base)
	}
	var ok *IngestResult
	errCount := 0
	for range r.cfg.Shards {
		rep := <-replies
		if rep.err != nil {
			errCount++
			if obs.Enabled() {
				obs.GetCounter("cluster/ingest_errors").Inc()
			}
			continue
		}
		r.lastSeq[rep.shard].Store(rep.out.SnapshotSeq)
		if ok == nil {
			out := rep.out
			ok = &out
		}
	}
	if ok == nil {
		return nil, ErrAllShardsDown
	}
	r.observeEval(events)
	if obs.Enabled() {
		obs.GetCounter("cluster/ingest_replicated").Inc()
	}
	ok.ShardErrors = errCount
	return ok, nil
}

// observeEval replays one replicated batch into the router's prequential
// mirror, applying the same per-event validation and first-seen dense
// remapping serve.(*Server).Ingest applies — including assigning dense IDs
// before the append that might still reject the event — so the mirror's
// dense IDs and trace indices are identical to every worker's. Each
// accepted edge is then scored against the merged predictions recorded
// before it arrived. Callers hold ingestMu.
func (r *Router) observeEval(events []serve.Event) {
	if r.cfg.Eval == nil {
		return
	}
	r.evalMu.Lock()
	type obsEdge struct {
		u, v graph.NodeID
		idx  int
	}
	accepted := make([]obsEdge, 0, len(events))
	for _, ev := range events {
		if ev.U < 0 || ev.V < 0 || ev.U == ev.V {
			continue
		}
		u, v := r.evalDenseLocked(ev.U), r.evalDenseLocked(ev.V)
		if _, err := r.evalTrace.Append(u, v, ev.T); err != nil {
			continue
		}
		accepted = append(accepted, obsEdge{u, v, len(r.evalTrace.Edges) - 1})
	}
	r.evalMu.Unlock()
	for _, e := range accepted {
		r.cfg.Eval.ObserveEdge(e.u, e.v, e.idx)
	}
}

// evalDenseLocked remaps an external ID, assigning the next dense ID on
// first sight. Callers hold evalMu.
func (r *Router) evalDenseLocked(id int64) graph.NodeID {
	if d, ok := r.evalRemap[id]; ok {
		return d
	}
	d := graph.NodeID(len(r.evalRemap))
	r.evalRemap[id] = d
	return d
}

// Flush fans a snapshot publish to every shard and reports the maximum
// resulting epoch.
func (r *Router) Flush(ctx context.Context) (int64, error) {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		maxSeq int64 = -1
		anyOK  bool
	)
	for i, base := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			var out struct {
				SnapshotSeq int64 `json:"snapshot_seq"`
			}
			if err := r.postJSON(ctx, base+"/flush", nil, &out); err != nil {
				return
			}
			r.lastSeq[i].Store(out.SnapshotSeq)
			mu.Lock()
			anyOK = true
			if out.SnapshotSeq > maxSeq {
				maxSeq = out.SnapshotSeq
			}
			mu.Unlock()
		}(i, base)
	}
	wg.Wait()
	if !anyOK {
		return 0, ErrAllShardsDown
	}
	return maxSeq, nil
}

// Score answers one /score body. On a replicated cluster every shard holds
// the full graph, so the body forwards to a single shard (round-robin with
// failover) and the raw response passes through untouched. On a partitioned
// cluster no single shard can score an arbitrary pair, so the body
// broadcasts to every shard and the router keeps, per pair, the answer from
// the shard that flagged it Owned — ownership is a disjoint cover, so
// exactly one shard is authoritative for each resolvable pair.
func (r *Router) Score(ctx context.Context, body []byte) (status int, respBody []byte, err error) {
	if r.cfg.Partitioned {
		return r.scoreBroadcast(ctx, body)
	}
	n := len(r.cfg.Shards)
	start := int(r.rr.Add(1)-1) % n
	var lastErr error
	for off := 0; off < n; off++ {
		base := r.cfg.Shards[(start+off)%n]
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/score", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if obs.Enabled() {
			obs.GetCounter("cluster/score_forwarded").Inc()
		}
		return resp.StatusCode, raw, nil
	}
	return 0, nil, fmt.Errorf("cluster: score forward failed on all shards: %w", lastErr)
}

// scoreBroadcast fans one /score body to every partitioned shard, aligns
// the responses on the maximum snapshot epoch (bounded re-asks, as in
// Predict), and merges by the Owned flag. A pair whose owning shard is down
// or stale scores zero — the same value a single node reports for an
// unresolvable pair — rather than failing the whole request. A non-200
// from any shard (unknown algorithm, partition-unsupported family) passes
// through as the response: the shards share one configuration, so they
// agree on rejections.
func (r *Router) scoreBroadcast(ctx context.Context, body []byte) (int, []byte, error) {
	n := len(r.cfg.Shards)
	got := make([]*serve.Result, n)
	var non200Status int
	var non200Raw []byte
	gather := func(shards []int) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				status, raw, err := r.postRaw(ctx, r.cfg.Shards[i]+"/score", body)
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					got[i] = nil
					return
				}
				if status != http.StatusOK {
					if non200Status == 0 {
						non200Status, non200Raw = status, raw
					}
					got[i] = nil
					return
				}
				var res serve.Result
				if json.Unmarshal(raw, &res) != nil {
					got[i] = nil
					return
				}
				r.lastSeq[i].Store(res.SnapshotSeq)
				got[i] = &res
			}(i)
		}
		wg.Wait()
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	gather(all)
	if non200Status != 0 {
		return non200Status, non200Raw, nil
	}
	maxSeq := func() int64 {
		var m int64 = -1
		for _, res := range got {
			if res != nil && res.SnapshotSeq > m {
				m = res.SnapshotSeq
			}
		}
		return m
	}
	target := maxSeq()
	if target < 0 {
		return 0, nil, ErrAllShardsDown
	}
	for try := 0; try < r.cfg.EpochRetries; try++ {
		var stale []int
		for i, res := range got {
			if res != nil && res.SnapshotSeq < target {
				stale = append(stale, i)
			}
		}
		if len(stale) == 0 {
			break
		}
		if r.cfg.EpochBackoff > 0 {
			select {
			case <-time.After(r.cfg.EpochBackoff):
			case <-ctx.Done():
				return 0, nil, ctx.Err()
			}
		}
		gather(stale)
		if m := maxSeq(); m > target {
			target = m
		}
	}
	var base *serve.Result
	for _, res := range got {
		if res != nil && res.SnapshotSeq == target {
			base = res
			break
		}
	}
	if base == nil {
		return 0, nil, ErrAllShardsDown
	}
	// The merged payload carries plain scores with the Owned flags dropped:
	// a full broadcast serializes exactly like a single replicated node's
	// score response.
	out := *base
	out.Pairs = make([]serve.PairScore, len(base.Pairs))
	for i := range base.Pairs {
		ps := serve.PairScore{U: base.Pairs[i].U, V: base.Pairs[i].V}
		for _, res := range got {
			if res == nil || res.SnapshotSeq != target || i >= len(res.Pairs) {
				continue
			}
			if res.Pairs[i].Owned {
				ps.Score = res.Pairs[i].Score
				break
			}
		}
		out.Pairs[i] = ps
	}
	raw, err := json.Marshal(&out)
	if err != nil {
		return 0, nil, err
	}
	if obs.Enabled() {
		obs.GetCounter("cluster/score_broadcasts").Inc()
	}
	// handleScore on a worker answers via json.Encoder, which terminates
	// with a newline; match it so the broadcast is byte-compatible.
	return http.StatusOK, append(raw, '\n'), nil
}

// postRaw posts body and returns the raw status and payload.
func (r *Router) postRaw(ctx context.Context, u string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

// Health probes every shard and aggregates. OK requires all shards up with
// zero epoch skew.
func (r *Router) Health(ctx context.Context) *ClusterHealth {
	n := len(r.cfg.Shards)
	out := &ClusterHealth{Shards: n, Workers: make([]ShardHealth, n)}
	var wg sync.WaitGroup
	for i, base := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			w := ShardHealth{Shard: i, URL: base}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
			if err == nil {
				var resp *http.Response
				resp, err = r.client.Do(req)
				if err == nil {
					err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&w.Health)
					resp.Body.Close()
				}
			}
			if err != nil {
				w.Err = err.Error()
			} else {
				w.Up = true
				r.lastSeq[i].Store(w.SnapshotSeq)
			}
			out.Workers[i] = w
		}(i, base)
	}
	wg.Wait()
	var lo, hi int64
	maxEdges := 0
	first := true
	for _, w := range out.Workers {
		if !w.Up {
			continue
		}
		out.ShardsUp++
		out.SnapshotBytes += w.SnapshotBytes
		if w.PartitionRange != nil {
			out.Partitioned = true
		}
		if w.TraceEdges > maxEdges {
			maxEdges = w.TraceEdges
		}
		if first || w.SnapshotSeq < lo {
			lo = w.SnapshotSeq
		}
		if first || w.SnapshotSeq > hi {
			hi = w.SnapshotSeq
		}
		first = false
	}
	// A recovering shard is up and self-consistent but behind the
	// replicated stream: its trace is shorter than the most advanced up
	// shard's. Flag it so operators can tell "replaying after restart"
	// apart from "down".
	for i := range out.Workers {
		w := &out.Workers[i]
		if w.Up && w.TraceEdges < maxEdges {
			w.CatchingUp = true
			out.CatchingUp++
		}
	}
	out.EpochSkew = hi - lo
	out.OK = out.ShardsUp == n && out.EpochSkew == 0 && out.CatchingUp == 0
	if obs.Enabled() {
		obs.GetGauge("cluster/shards_up").Set(float64(out.ShardsUp))
		obs.GetGauge("cluster/shards_catching_up").Set(float64(out.CatchingUp))
		obs.GetGauge("cluster/snapshot_bytes").Set(float64(out.SnapshotBytes))
		partBytes := 0.0
		if out.Partitioned {
			partBytes = float64(out.SnapshotBytes)
		}
		obs.GetGauge("cluster/partitioned_bytes").Set(partBytes)
	}
	return out
}

// postJSON posts body (nil allowed) and decodes a 200 response into out
// (nil allowed).
func (r *Router) postJSON(ctx context.Context, u string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s status %d: %s", u, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// parseTimeout reads timeout_ms from a query, returning the router default
// on absence.
func (r *Router) parseTimeout(q url.Values) (time.Duration, error) {
	raw := q.Get("timeout_ms")
	if raw == "" {
		return r.cfg.Timeout, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad timeout_ms %q", raw)
	}
	if v == 0 {
		return r.cfg.Timeout, nil
	}
	return time.Duration(v) * time.Millisecond, nil
}

// Package cluster implements horizontal scale-out for prediction serving:
// a thin router in front of N linkpredd workers, each answering for one
// contiguous source-node shard of the candidate universe (DESIGN.md §12).
//
// The scatter/gather contract: every shard holds the FULL graph (ingest is
// replicated to all shards in identical order), but /predict?shard=i&shards=N
// restricts the sweep to pairs owned by shard i — those whose min endpoint
// falls in ShardSourceRange(n, i, N). The shard ranges partition the dense
// node space, so the union of the shards' ownership universes is exactly the
// unrestricted candidate universe, and merging the N partial top-k lists
// with predict.MergeTopK — which reuses the engine's seeded tie-break hash —
// reproduces the single-process top-k bit for bit, at any shard count and
// any per-shard worker count.
//
// Epoch consistency: the merge is only meaningful when every partial list
// was computed against the same snapshot. The router tags each response
// with its snapshot sequence number, takes the maximum across the gather,
// and re-asks stale shards (bounded retries with backoff) until all ranges
// agree — a shard that just published seq s+1 pulls the others forward
// rather than being discarded. Shards that stay down or stay behind yield a
// partial response: partial:true plus the missing source ranges, so the
// caller knows exactly which slice of the universe is unaccounted for.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
	"linkpred/internal/serve"
)

// Config parameterizes a Router. Shards is required; everything else has a
// serviceable default.
type Config struct {
	// Shards lists the worker base URLs (e.g. http://127.0.0.1:8081), one
	// per source shard, in shard-index order. The order is the sharding:
	// Shards[i] answers for ShardSourceRange(n, i, len(Shards)).
	Shards []string
	// Seed must equal every shard's engine seed (predict.Options.Seed):
	// the gather merge breaks score ties with the same seeded hash the
	// shards used, which is what makes the merged ranking bit-identical
	// to a single-process sweep.
	Seed int64
	// Client issues the fan-out requests (default: http.Client with the
	// router's Timeout).
	Client *http.Client
	// Timeout bounds each scatter/gather when the request carries no
	// explicit budget (default 10s). Explicit timeout_ms wins.
	Timeout time.Duration
	// HedgeAfter launches one backup request against a straggling shard
	// after this delay (default 150ms; 0 keeps the default, negative
	// disables hedging). First response wins; the loser is cancelled.
	HedgeAfter time.Duration
	// EpochRetries bounds how many times a stale shard is re-asked to
	// catch up to the gather's maximum snapshot epoch (default 4).
	EpochRetries int
	// EpochBackoff is the wait between epoch re-asks (default 25ms): the
	// stale shard's publish is usually mid-flight, not missing.
	EpochBackoff time.Duration
}

// Response is a merged cluster answer. For a full gather it serializes
// byte-identically to a single node's serve.Result (the omitempty cluster
// fields stay absent); a degraded gather adds partial:true and the source
// ranges no aligned shard answered for.
type Response struct {
	serve.Result
	Partial       bool     `json:"partial,omitempty"`
	MissingRanges [][2]int `json:"missing_ranges,omitempty"`
}

// IngestResult reports one replicated ingest fan-out.
type IngestResult struct {
	Accepted    int   `json:"accepted"`
	Rejected    int   `json:"rejected"`
	SnapshotSeq int64 `json:"snapshot_seq"`
	TraceEdges  int   `json:"trace_edges"`
	// ShardErrors counts shards that failed to apply the batch. Non-zero
	// means the cluster has diverged (see Router doc) — surfaced, not
	// hidden, so the operator can restart the lagging shard.
	ShardErrors int `json:"shard_errors,omitempty"`
}

// ShardHealth is one worker's view in the aggregate health payload.
type ShardHealth struct {
	Shard int    `json:"shard"`
	URL   string `json:"url"`
	Up    bool   `json:"up"`
	Err   string `json:"err,omitempty"`
	serve.Health
}

// ClusterHealth is the router's /healthz payload.
type ClusterHealth struct {
	OK        bool          `json:"ok"`
	Shards    int           `json:"shards"`
	ShardsUp  int           `json:"shards_up"`
	EpochSkew int64         `json:"epoch_skew"`
	Workers   []ShardHealth `json:"workers"`
}

// ErrAllShardsDown reports a gather in which no shard produced a usable
// response.
var ErrAllShardsDown = errors.New("cluster: all shards down")

// Router scatters predict requests across source shards and gathers the
// partial top-k lists into the bit-identical global ranking. It holds no
// graph state of its own: shards are the system of record, and the router's
// only invariants are (a) replicated ingest order and (b) same-epoch merge.
//
// Known limitation (ROADMAP item 2): if a shard misses an ingest batch
// (crash, partition), its trace diverges and its snapshots stop matching
// the others' — the router detects this as persistent epoch misalignment
// and serves partial responses for that shard's ranges, but recovery
// (replaying the WAL into the lagging shard) is out of scope until the
// durable-trace work lands.
type Router struct {
	cfg    Config
	client *http.Client

	// ingestMu serializes ingest fan-outs so every shard applies batches
	// in the same order — the whole epoch-consistency protocol rests on
	// identical traces producing identical snapshot sequences.
	ingestMu sync.Mutex

	// rr round-robins /score forwards across shards.
	rr atomic.Uint64

	// lastSeq tracks each shard's most recently observed snapshot epoch,
	// feeding the epoch-skew gauge.
	lastSeq []atomic.Int64
}

// New builds a Router. It panics on an empty shard list — a router with
// nothing behind it is a configuration error, not a runtime state.
func New(cfg Config) *Router {
	if len(cfg.Shards) == 0 {
		panic("cluster: Config.Shards is empty")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 150 * time.Millisecond
	}
	if cfg.EpochRetries <= 0 {
		cfg.EpochRetries = 4
	}
	if cfg.EpochBackoff <= 0 {
		cfg.EpochBackoff = 25 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	r := &Router{cfg: cfg, client: client, lastSeq: make([]atomic.Int64, len(cfg.Shards))}
	if obs.Enabled() {
		obs.SetGaugeFunc("cluster/shards", func() float64 { return float64(len(cfg.Shards)) })
		obs.SetGaugeFunc("cluster/epoch_skew", func() float64 { return float64(r.epochSkew()) })
	}
	return r
}

// epochSkew is max-min of the last observed per-shard snapshot epochs.
func (r *Router) epochSkew() int64 {
	var lo, hi int64
	for i := range r.lastSeq {
		s := r.lastSeq[i].Load()
		if i == 0 || s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return hi - lo
}

// shardResp is one gathered partial response.
type shardResp struct {
	shard int
	res   *serve.Result
	err   error
}

// fetchShard asks shard i for its partial top-k, with one retry on failure
// and one hedged backup after cfg.HedgeAfter. At most two attempts are ever
// in flight; the first success wins and cancels the other.
func (r *Router) fetchShard(ctx context.Context, shard int, alg string, k int) (*serve.Result, error) {
	u := fmt.Sprintf("%s/predict?alg=%s&k=%d&shard=%d&shards=%d",
		r.cfg.Shards[shard], url.QueryEscape(alg), k, shard, len(r.cfg.Shards))
	type attempt struct {
		res *serve.Result
		err error
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attempt, 2)
	launch := func() {
		go func() {
			res, err := r.getResult(ctx, u)
			results <- attempt{res, err}
		}()
	}
	launch()
	launched, done := 1, 0
	var hedge <-chan time.Time
	if r.cfg.HedgeAfter > 0 {
		t := time.NewTimer(r.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			if firstErr != nil {
				return nil, firstErr
			}
			return nil, ctx.Err()
		case <-hedge:
			hedge = nil
			if launched < 2 {
				launched++
				if obs.Enabled() {
					obs.GetCounter("cluster/shard_hedges").Inc()
				}
				launch()
			}
		case a := <-results:
			done++
			if a.err == nil {
				r.lastSeq[shard].Store(a.res.SnapshotSeq)
				return a.res, nil
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if obs.Enabled() {
				obs.GetCounter(fmt.Sprintf(`cluster/shard_errors{shard="%d"}`, shard)).Inc()
			}
			if launched < 2 && ctx.Err() == nil {
				// Retry immediately rather than waiting out the hedge
				// timer: the shard failed fast, so ask again fast.
				launched++
				if obs.Enabled() {
					obs.GetCounter("cluster/shard_retries").Inc()
				}
				launch()
			} else if done == launched {
				return nil, firstErr
			}
		}
	}
}

// getResult issues one GET and decodes a serve.Result, recording the
// per-shard latency histogram.
func (r *Router) getResult(ctx context.Context, u string) (*serve.Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: shard status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var res serve.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, fmt.Errorf("cluster: bad shard response: %w", err)
	}
	if obs.Enabled() {
		obs.GetHistogram("cluster/shard_latency_ns").Observe(time.Since(start).Nanoseconds())
	}
	return &res, nil
}

// Predict scatters alg/k across all shards, gathers same-epoch partial
// lists, and merges them into the global top-k. A fully aligned gather is
// bit-identical to a single-process sweep; a gather with dead or
// persistently stale shards returns partial:true with their source ranges.
// It fails with ErrAllShardsDown only when no shard answered at all.
func (r *Router) Predict(ctx context.Context, alg string, k int) (*Response, error) {
	if obs.Enabled() {
		obs.GetCounter("cluster/scatter_requests").Inc()
	}
	// The caller's deadline is the scatter budget (the HTTP layer derives
	// it from timeout_ms); fall back to the router default only when the
	// request carries none.
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	}

	n := len(r.cfg.Shards)
	got := make([]*serve.Result, n)
	gather := func(shards []int) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				res, err := r.fetchShard(ctx, i, alg, k)
				mu.Lock()
				if err == nil {
					got[i] = res
				} else {
					got[i] = nil
				}
				mu.Unlock()
			}(i)
		}
		wg.Wait()
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	gather(all)

	// Epoch alignment: find the maximum snapshot epoch across the gather
	// and re-ask shards that answered from an older one. A re-ask may
	// itself raise the maximum (the straggler published again while we
	// waited), so loop — bounded by EpochRetries.
	maxSeq := func() int64 {
		var m int64 = -1
		for _, res := range got {
			if res != nil && res.SnapshotSeq > m {
				m = res.SnapshotSeq
			}
		}
		return m
	}
	target := maxSeq()
	if target < 0 {
		return nil, ErrAllShardsDown
	}
	for try := 0; try < r.cfg.EpochRetries; try++ {
		var stale []int
		for i, res := range got {
			if res != nil && res.SnapshotSeq < target {
				stale = append(stale, i)
			}
		}
		if len(stale) == 0 {
			break
		}
		if obs.Enabled() {
			obs.GetCounter("cluster/epoch_reasks").Add(int64(len(stale)))
			obs.GetCounter("cluster/stragglers").Add(int64(len(stale)))
		}
		if r.cfg.EpochBackoff > 0 {
			select {
			case <-time.After(r.cfg.EpochBackoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		gather(stale)
		if m := maxSeq(); m > target {
			target = m
		}
	}

	// A single-shard cluster needs no merge: the worker answered the
	// unrestricted sweep (shards=1 disables range restriction server-side)
	// and its result passes through whole.
	if n == 1 {
		if got[0] == nil {
			return nil, ErrAllShardsDown
		}
		if obs.Enabled() {
			obs.GetCounter("cluster/gather_full").Inc()
		}
		return &Response{Result: *got[0]}, nil
	}

	// Assemble: aligned shards contribute their partial lists; dead or
	// still-stale shards contribute their owned ranges to missing_ranges.
	// The boundaries are derived from the aligned responses: the split is
	// degree-weighted and computed shard-side from the snapshot
	// (predict.WeightedSourceRanges), so the router cannot reconstruct a
	// dead shard's range alone — but the ranges are contiguous and ordered
	// by shard index, so a run of unanswered shards owns exactly the gap
	// between its alive neighbors' boundaries (closed by 0 on the left and
	// the snapshot's node count on the right).
	var (
		aligned  []*serve.Result
		missing  [][2]int
		numNodes int
		ok       = make([]bool, n)
		lo       = make([]int, n)
		hi       = make([]int, n)
	)
	for i, res := range got {
		if res != nil && res.SnapshotSeq == target {
			aligned = append(aligned, res)
			if res.SnapshotNodes > numNodes {
				numNodes = res.SnapshotNodes
			}
			if res.ShardRange != nil {
				ok[i] = true
				lo[i], hi[i] = res.ShardRange[0], res.ShardRange[1]
			}
		}
	}
	if len(aligned) == 0 {
		return nil, ErrAllShardsDown
	}
	prevHi := 0
	for i := 0; i < n; {
		if ok[i] {
			prevHi = hi[i]
			i++
			continue
		}
		j := i
		for j < n && !ok[j] {
			j++
		}
		end := numNodes
		if j < n {
			end = lo[j]
		}
		// An empty gap means the unanswered shards owned no sources (more
		// shards than weight to split); nothing is missing from the merge.
		if end > prevHi {
			missing = append(missing, [2]int{prevHi, end})
		}
		prevHi = end
		i = j
	}

	out := &Response{Result: r.merge(aligned, k)}
	out.Alg = alg
	if len(missing) > 0 {
		out.Partial = true
		out.MissingRanges = missing
		if obs.Enabled() {
			obs.GetCounter("cluster/gather_partial").Inc()
		}
	} else if obs.Enabled() {
		obs.GetCounter("cluster/gather_full").Inc()
	}
	return out, nil
}

// merge folds the aligned partial lists into the global top-k. The merge
// runs in the DENSE ID space the shards rank in — the tie-break hash is a
// function of the dense pair, so merging on external IDs would break bit-
// identity whenever ties cross a shard boundary — then maps the winners
// back to external IDs via the (dense → external) pairs the shard responses
// carry. The merged payload drops the dense fields: a full gather
// serializes exactly like a single-node serve.Result.
func (r *Router) merge(aligned []*serve.Result, k int) serve.Result {
	parts := make([][]predict.Pair, len(aligned))
	ext := make(map[graph.NodeID]int64)
	for i, res := range aligned {
		part := make([]predict.Pair, len(res.Pairs))
		for j, p := range res.Pairs {
			part[j] = predict.Pair{U: p.DU, V: p.DV, Score: p.Score}
			ext[p.DU] = p.U
			ext[p.DV] = p.V
		}
		parts[i] = part
	}
	merged := predict.MergeTopK(parts, k, r.cfg.Seed)
	base := aligned[0]
	out := serve.Result{
		Alg:           base.Alg,
		ServedBy:      base.ServedBy,
		Degraded:      base.Degraded,
		SnapshotSeq:   base.SnapshotSeq,
		SnapshotEdges: base.SnapshotEdges,
		SnapshotTime:  base.SnapshotTime,
		Pairs:         make([]serve.PairScore, len(merged)),
	}
	for _, res := range aligned[1:] {
		if res.Degraded {
			out.Degraded = true
			out.ServedBy = res.ServedBy
		}
	}
	for i, p := range merged {
		out.Pairs[i] = serve.PairScore{U: ext[p.U], V: ext[p.V], Score: p.Score}
	}
	return out
}

// Ingest replicates one event batch to every shard. Fan-outs are serialized
// so all shards apply batches in identical order — the precondition for
// identical snapshot cadence and therefore for epoch-aligned gathers. The
// returned counts come from the first healthy shard (all healthy shards
// agree by construction); ShardErrors reports divergence.
func (r *Router) Ingest(ctx context.Context, events []serve.Event) (*IngestResult, error) {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	body, err := json.Marshal(struct {
		Events []serve.Event `json:"events"`
	}{events})
	if err != nil {
		return nil, err
	}
	type reply struct {
		shard int
		out   IngestResult
		err   error
	}
	replies := make(chan reply, len(r.cfg.Shards))
	for i, base := range r.cfg.Shards {
		go func(i int, base string) {
			var out IngestResult
			err := r.postJSON(ctx, base+"/ingest", body, &out)
			replies <- reply{i, out, err}
		}(i, base)
	}
	var ok *IngestResult
	errCount := 0
	for range r.cfg.Shards {
		rep := <-replies
		if rep.err != nil {
			errCount++
			if obs.Enabled() {
				obs.GetCounter("cluster/ingest_errors").Inc()
			}
			continue
		}
		r.lastSeq[rep.shard].Store(rep.out.SnapshotSeq)
		if ok == nil {
			out := rep.out
			ok = &out
		}
	}
	if ok == nil {
		return nil, ErrAllShardsDown
	}
	if obs.Enabled() {
		obs.GetCounter("cluster/ingest_replicated").Inc()
	}
	ok.ShardErrors = errCount
	return ok, nil
}

// Flush fans a snapshot publish to every shard and reports the maximum
// resulting epoch.
func (r *Router) Flush(ctx context.Context) (int64, error) {
	r.ingestMu.Lock()
	defer r.ingestMu.Unlock()
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		maxSeq int64 = -1
		anyOK  bool
	)
	for i, base := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			var out struct {
				SnapshotSeq int64 `json:"snapshot_seq"`
			}
			if err := r.postJSON(ctx, base+"/flush", nil, &out); err != nil {
				return
			}
			r.lastSeq[i].Store(out.SnapshotSeq)
			mu.Lock()
			anyOK = true
			if out.SnapshotSeq > maxSeq {
				maxSeq = out.SnapshotSeq
			}
			mu.Unlock()
		}(i, base)
	}
	wg.Wait()
	if !anyOK {
		return 0, ErrAllShardsDown
	}
	return maxSeq, nil
}

// Score forwards one /score body to a single shard (every shard holds the
// full graph, so any can answer), round-robining with failover on error.
// The shard's raw response bytes pass through untouched.
func (r *Router) Score(ctx context.Context, body []byte) (status int, respBody []byte, err error) {
	n := len(r.cfg.Shards)
	start := int(r.rr.Add(1)-1) % n
	var lastErr error
	for off := 0; off < n; off++ {
		base := r.cfg.Shards[(start+off)%n]
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/score", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := r.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if obs.Enabled() {
			obs.GetCounter("cluster/score_forwarded").Inc()
		}
		return resp.StatusCode, raw, nil
	}
	return 0, nil, fmt.Errorf("cluster: score forward failed on all shards: %w", lastErr)
}

// Health probes every shard and aggregates. OK requires all shards up with
// zero epoch skew.
func (r *Router) Health(ctx context.Context) *ClusterHealth {
	n := len(r.cfg.Shards)
	out := &ClusterHealth{Shards: n, Workers: make([]ShardHealth, n)}
	var wg sync.WaitGroup
	for i, base := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			w := ShardHealth{Shard: i, URL: base}
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
			if err == nil {
				var resp *http.Response
				resp, err = r.client.Do(req)
				if err == nil {
					err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&w.Health)
					resp.Body.Close()
				}
			}
			if err != nil {
				w.Err = err.Error()
			} else {
				w.Up = true
				r.lastSeq[i].Store(w.SnapshotSeq)
			}
			out.Workers[i] = w
		}(i, base)
	}
	wg.Wait()
	var lo, hi int64
	first := true
	for _, w := range out.Workers {
		if !w.Up {
			continue
		}
		out.ShardsUp++
		if first || w.SnapshotSeq < lo {
			lo = w.SnapshotSeq
		}
		if first || w.SnapshotSeq > hi {
			hi = w.SnapshotSeq
		}
		first = false
	}
	out.EpochSkew = hi - lo
	out.OK = out.ShardsUp == n && out.EpochSkew == 0
	if obs.Enabled() {
		obs.GetGauge("cluster/shards_up").Set(float64(out.ShardsUp))
	}
	return out
}

// postJSON posts body (nil allowed) and decodes a 200 response into out
// (nil allowed).
func (r *Router) postJSON(ctx context.Context, u string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s status %d: %s", u, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

// parseTimeout reads timeout_ms from a query, returning the router default
// on absence.
func (r *Router) parseTimeout(q url.Values) (time.Duration, error) {
	raw := q.Get("timeout_ms")
	if raw == "" {
		return r.cfg.Timeout, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad timeout_ms %q", raw)
	}
	if v == 0 {
		return r.cfg.Timeout, nil
	}
	return time.Duration(v) * time.Millisecond, nil
}

package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"linkpred/internal/obs"
	"linkpred/internal/serve"
)

// Handler returns the router's HTTP API — the same surface a single
// linkpredd exposes, so clients point at the router and see one big server:
//
//	GET  /predict?alg=CN&k=50[&timeout_ms=200]
//	               — scatter/gather merged top-k; adds partial:true +
//	               missing_ranges when shards are down or misaligned
//	POST /score    — forwarded to one shard (round-robin with failover)
//	POST /ingest   — replicated to every shard in serialized order
//	POST /flush    — snapshot publish on every shard
//	GET  /healthz  — aggregate shard health + epoch skew
//	GET  /metrics  — router telemetry (JSON, or ?format=prom)
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", r.instrument("predict", r.handlePredict))
	mux.HandleFunc("/score", r.instrument("score", r.handleScore))
	mux.HandleFunc("/ingest", r.instrument("ingest", r.handleIngest))
	mux.HandleFunc("/flush", r.instrument("flush", r.handleFlush))
	mux.HandleFunc("/healthz", r.instrument("healthz", r.handleHealthz))
	mux.HandleFunc("/metrics", obs.Handler().ServeHTTP)
	return mux
}

// instrument mirrors the worker's per-endpoint serving-health surface under
// the cluster/http namespace.
func (r *Router) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if !obs.Enabled() {
			h(w, req)
			return
		}
		start := time.Now()
		h(w, req)
		obs.GetHistogram(`cluster/http/latency_ns{endpoint="` + endpoint + `"}`).Observe(time.Since(start).Nanoseconds())
		obs.GetCounter(`cluster/http/requests{endpoint="` + endpoint + `"}`).Inc()
	}
}

// httpError is the JSON error envelope, matching the worker's.
type httpError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errStatus maps a gather error to its HTTP status: every shard down is an
// upstream outage (502), an exhausted budget a gateway timeout (504), and a
// shard's deterministic refusal passes through with its original status.
func errStatus(err error) int {
	var rej *ShardRejection
	switch {
	case errors.As(err, &rej):
		return rej.Status
	case errors.Is(err, ErrAllShardsDown):
		return http.StatusBadGateway
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	q := req.URL.Query()
	alg := q.Get("alg")
	if alg == "" {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "missing alg parameter"})
		return
	}
	k := 50
	if raw := q.Get("k"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 {
			writeJSON(w, http.StatusBadRequest, httpError{Error: fmt.Sprintf("bad k %q", raw)})
			return
		}
		k = v
	}
	budget, err := r.parseTimeout(q)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(req.Context(), budget)
	defer cancel()
	res, err := r.Predict(ctx, alg, k)
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (r *Router) handleScore(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST required"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 8<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad score request: " + err.Error()})
		return
	}
	status, raw, err := r.Score(req.Context(), body)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, httpError{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(raw)
}

func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST required"})
		return
	}
	var in struct {
		Events []serve.Event `json:"events"`
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, 64<<20))
	if err := dec.Decode(&in); err != nil {
		writeJSON(w, http.StatusBadRequest, httpError{Error: "bad ingest request: " + err.Error()})
		return
	}
	out, err := r.Ingest(req.Context(), in.Events)
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleFlush(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, httpError{Error: "POST required"})
		return
	}
	seq, err := r.Flush(req.Context())
	if err != nil {
		writeJSON(w, errStatus(err), httpError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"snapshot_seq": seq})
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	h := r.Health(req.Context())
	status := http.StatusOK
	if h.ShardsUp == 0 {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"linkpred/internal/liveeval"
	"linkpred/internal/serve"
)

// partitionBounds3 is a disjoint cover of the dense source space for a
// 3-shard partitioned cluster over the randomEvents fixture (~300 dense
// nodes). The last shard's hi is effectively unbounded so late-arriving
// nodes always have an owner.
var partitionBounds3 = [][2]int{{0, 100}, {100, 200}, {200, 1 << 30}}

// newPartitionedCluster builds a router over memory-partitioned in-process
// workers: each worker ingests the full replicated stream but materializes
// only its owned adjacency rows plus frontier (serve.Config.Partition), and
// the router runs in Partitioned mode (scatter without shard parameters,
// score broadcast merged by ownership).
func newPartitionedCluster(t *testing.T, bounds [][2]int, seed int64, eval *liveeval.Engine) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, len(bounds))
	for i, b := range bounds {
		b := b
		cfg := serve.Config{SnapshotEvery: 256, Partition: &b}
		cfg.Opt.Seed = seed
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatalf("partitioned shard %d: %v", i, err)
		}
		tc.servers = append(tc.servers, srv)
		ts := httptest.NewServer(srv.Handler())
		tc.ts = append(tc.ts, ts)
		urls[i] = ts.URL
	}
	tc.router = New(Config{
		Shards:      urls,
		Seed:        seed,
		Timeout:     30 * time.Second,
		Partitioned: true,
		Eval:        eval,
	})
	t.Cleanup(func() {
		for _, ts := range tc.ts {
			ts.Close()
		}
		for _, s := range tc.servers {
			s.Close()
		}
	})
	return tc
}

// ingestBoth drives the same event stream through the router (replicated to
// every partitioned shard) and the single-node reference, in identical
// batches, then flushes both.
func ingestBoth(t *testing.T, tc *testCluster, ref *serve.Server, events []serve.Event) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < len(events); i += 90 {
		end := i + 90
		if end > len(events) {
			end = len(events)
		}
		if _, err := tc.router.Ingest(ctx, events[i:end]); err != nil {
			t.Fatalf("router ingest: %v", err)
		}
		if _, _, err := ref.Ingest(events[i:end]); err != nil {
			t.Fatalf("ref ingest: %v", err)
		}
	}
	if _, err := tc.router.Flush(ctx); err != nil {
		t.Fatalf("router flush: %v", err)
	}
	ref.Flush()
}

// TestClusterPartitionedPredict is the partitioned determinism contract:
// the router's merged /predict over 3 memory-partitioned shards — each
// holding only a fraction of the adjacency — is byte-identical to a single
// full node that ingested the same stream, for every partition-safe
// algorithm family member exercised here.
func TestClusterPartitionedPredict(t *testing.T) {
	const seed = 7
	tc := newPartitionedCluster(t, partitionBounds3, seed, nil)
	refSrv, ref := refServer(t, seed)
	ingestBoth(t, tc, refSrv, randomEvents(11, 900))

	rt := httptest.NewServer(tc.router.Handler())
	defer rt.Close()

	for _, alg := range []string{"CN", "AA", "RA", "PA", "LHN"} {
		u := fmt.Sprintf("/predict?alg=%s&k=25", alg)
		ccode, cbody := httpGet(t, rt.URL+u)
		rcode, rbody := httpGet(t, ref.URL+u)
		if ccode != 200 || rcode != 200 {
			t.Fatalf("%s: status cluster=%d ref=%d (%s / %s)", alg, ccode, rcode, cbody, rbody)
		}
		if string(cbody) != string(rbody) {
			t.Fatalf("%s: partitioned merge is not byte-identical to single node\ncluster: %s\nsingle:  %s", alg, cbody, rbody)
		}
		var res Response
		if err := json.Unmarshal(cbody, &res); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Partial || len(res.Pairs) == 0 {
			t.Fatalf("%s: unexpected partial=%v pairs=%d", alg, res.Partial, len(res.Pairs))
		}
	}
}

// TestClusterPartitionedScoreBroadcast checks the ownership-merged /score
// broadcast: byte-identical to a single node for resolvable and
// unresolvable pairs alike, and a 400 passthrough when the algorithm is
// outside the partition-safe family.
func TestClusterPartitionedScoreBroadcast(t *testing.T) {
	const seed = 3
	tc := newPartitionedCluster(t, partitionBounds3, seed, nil)
	refSrv, ref := refServer(t, seed)
	ingestBoth(t, tc, refSrv, randomEvents(5, 900))

	rt := httptest.NewServer(tc.router.Handler())
	defer rt.Close()

	// Pairs spanning every ownership range, plus one with an unknown
	// endpoint (scores zero on both sides).
	body := `{"alg":"CN","pairs":[[1001,1002],[1003,1250],[1100,1150],[1200,1290],[1001,9999999]]}`
	resp, err := http.Post(rt.URL+"/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	craw := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("broadcast score status %d: %s", resp.StatusCode, craw)
	}
	rresp, err := http.Post(ref.URL+"/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rraw := readBody(t, rresp)
	if rresp.StatusCode != 200 {
		t.Fatalf("ref score status %d: %s", rresp.StatusCode, rraw)
	}
	if string(craw) != string(rraw) {
		t.Fatalf("broadcast score is not byte-identical to single node\ncluster: %s\nsingle:  %s", craw, rraw)
	}
	var res serve.Result
	if err := json.Unmarshal(craw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 5 {
		t.Fatalf("score pairs = %d, want 5", len(res.Pairs))
	}
	if res.Pairs[len(res.Pairs)-1].Score != 0 {
		t.Fatalf("unknown-endpoint pair scored %v, want 0", res.Pairs[len(res.Pairs)-1].Score)
	}

	// Latent-family algorithms are unsupported on partitioned shards; the
	// workers' 400 passes through the broadcast.
	bad := `{"alg":"Katz","pairs":[[1001,1002]]}`
	resp, err = http.Post(rt.URL+"/score", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	raw := readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partition-unsupported score status %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "partitioned") {
		t.Fatalf("400 body does not explain the partition rejection: %s", raw)
	}

	// Same on the scatter path.
	code, raw := httpGet(t, rt.URL+"/predict?alg=Rescal&k=10")
	if code != http.StatusBadRequest {
		t.Fatalf("partition-unsupported predict status %d: %s", code, raw)
	}
}

// bandEvents builds a banded graph: node i links to i+1..i+3. Ownership
// genuinely bounds the materialized rows here — an owned range's 1-hop
// frontier is a 3-node fringe — unlike the dense randomEvents fixture,
// whose frontier covers nearly the whole graph at any boundary. The band
// width keeps entry savings above the partition's fixed per-node degree
// table (4 bytes × all nodes), which a bare path graph cannot.
func bandEvents(n int) []serve.Event {
	var events []serve.Event
	for i := 0; i < n; i++ {
		for w := 1; w <= 3 && i+w < n; w++ {
			events = append(events, serve.Event{U: int64(5000 + i), V: int64(5000 + i + w), T: int64(len(events))})
		}
	}
	return events
}

// TestClusterPartitionedHealth checks the aggregate health and memory
// telemetry: the router reports the cluster partitioned, sums the shards'
// resident snapshot bytes, and a partitioned shard undercuts a full
// replica (the point of §13).
func TestClusterPartitionedHealth(t *testing.T) {
	const seed = 9
	bounds := [][2]int{{0, 300}, {300, 600}, {600, 1 << 30}}
	tc := newPartitionedCluster(t, bounds, seed, nil)
	refSrv, _ := refServer(t, seed)
	ingestBoth(t, tc, refSrv, bandEvents(900))
	ctx := context.Background()

	h := tc.router.Health(ctx)
	if !h.OK || h.ShardsUp != len(bounds) {
		t.Fatalf("health: ok=%v up=%d, want ok=true up=%d", h.OK, h.ShardsUp, len(bounds))
	}
	if !h.Partitioned {
		t.Fatal("health does not report the cluster partitioned")
	}
	if h.SnapshotBytes <= 0 {
		t.Fatalf("snapshot_bytes = %d, want > 0", h.SnapshotBytes)
	}
	for _, w := range h.Workers {
		if w.PartitionRange == nil {
			t.Fatalf("shard %d health missing partition_range", w.Shard)
		}
		if *w.PartitionRange != bounds[w.Shard] {
			t.Fatalf("shard %d partition_range = %v, want %v", w.Shard, *w.PartitionRange, bounds[w.Shard])
		}
	}
	// A high-lo shard must hold strictly less than a full replica. (Shard 0
	// keeps every entry by construction — the min-endpoint row is the
	// duplicate detector — so the asymmetry lands the savings on the upper
	// shards; DESIGN.md §13 quantifies this and the measured per-shard
	// fractions on renren-100k.)
	full := refSrv.Health().SnapshotBytes
	last := h.Workers[len(h.Workers)-1]
	if last.SnapshotBytes >= full {
		t.Fatalf("high-lo shard resident %d bytes >= full replica %d", last.SnapshotBytes, full)
	}
}

// TestClusterRouterEval exercises router-side prequential evaluation: the
// merged (cluster-level) /predict rankings are recorded, and subsequently
// replicated ingest edges are scored against them — measurements no single
// partitioned shard could produce, since none holds the merged ranking.
func TestClusterRouterEval(t *testing.T) {
	const seed = 7
	eval := liveeval.New(liveeval.Config{TopK: 64, Window: 256})
	tc := newPartitionedCluster(t, partitionBounds3, seed, eval)
	ctx := context.Background()

	events := randomEvents(11, 900)
	warm, rest := events[:600], events[600:]
	if _, err := tc.router.Ingest(ctx, warm); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.router.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.router.Predict(ctx, "CN", 64); err != nil {
		t.Fatal(err)
	}
	st, ok := eval.Stats("CN")
	if !ok || st.Recorded == 0 {
		t.Fatalf("merged prediction not recorded: ok=%v stats=%+v", ok, st)
	}
	if _, err := tc.router.Ingest(ctx, rest); err != nil {
		t.Fatal(err)
	}
	st, _ = eval.Stats("CN")
	if st.ScoredEdges == 0 {
		t.Fatalf("no replicated edges scored against the merged ranking: %+v", st)
	}
	// The fixture revisits a small ID pool, so some top-64 CN pairs come
	// true; a zero hit count would mean the dense remap diverged from the
	// workers' and nothing the cluster predicted could ever match.
	if st.Hits == 0 {
		t.Fatalf("no hits against merged predictions (remap divergence?): %+v", st)
	}
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	raw := make([]byte, 0, 4096)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		raw = append(raw, buf[:n]...)
		if err != nil {
			break
		}
	}
	return raw
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"linkpred/internal/serve"
)

// snapRecord is one shard's view of one published snapshot, captured via
// OnPublish for the cross-shard determinism check.
type snapRecord struct {
	edges int
	time  int64
	nodes int
}

// testCluster is a router over in-process worker servers.
type testCluster struct {
	router  *Router
	servers []*serve.Server
	ts      []*httptest.Server
	// snaps[i] maps seq -> record for shard i.
	snaps []map[int64]snapRecord
	mu    sync.Mutex
}

func newTestCluster(t *testing.T, shards int, seed int64) *testCluster {
	t.Helper()
	tc := &testCluster{snaps: make([]map[int64]snapRecord, shards)}
	urls := make([]string, shards)
	for i := 0; i < shards; i++ {
		i := i
		tc.snaps[i] = make(map[int64]snapRecord)
		cfg := serve.Config{
			SnapshotEvery: 256,
			OnPublish: func(s *serve.Snapshot) {
				tc.mu.Lock()
				tc.snaps[i][s.Seq] = snapRecord{edges: s.Edges, time: s.Time, nodes: s.Graph.NumNodes()}
				tc.mu.Unlock()
			},
		}
		cfg.Opt.Seed = seed
		srv, err := serve.New(cfg)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		tc.servers = append(tc.servers, srv)
		ts := httptest.NewServer(srv.Handler())
		tc.ts = append(tc.ts, ts)
		urls[i] = ts.URL
	}
	tc.router = New(Config{Shards: urls, Seed: seed, Timeout: 30 * time.Second})
	t.Cleanup(func() {
		for _, ts := range tc.ts {
			ts.Close()
		}
		for _, s := range tc.servers {
			s.Close()
		}
	})
	return tc
}

// refServer is the single-node reference the cluster's merged output must
// match byte for byte.
func refServer(t *testing.T, seed int64) (*serve.Server, *httptest.Server) {
	t.Helper()
	cfg := serve.Config{SnapshotEvery: 256}
	cfg.Opt.Seed = seed
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// randomEvents builds a deterministic event stream with external IDs offset
// from the dense space, so the dense<->external remap is exercised.
func randomEvents(seed int64, n int) []serve.Event {
	r := rand.New(rand.NewSource(seed))
	events := make([]serve.Event, 0, n)
	for i := 0; i < n; i++ {
		u := int64(1000 + r.Intn(300))
		v := int64(1000 + r.Intn(300))
		if u == v {
			continue
		}
		events = append(events, serve.Event{U: u, V: v, T: int64(i)})
	}
	return events
}

// TestClusterBitIdenticalMerge is the end-to-end determinism contract: the
// router's merged /predict response over 3 shards is byte-identical to a
// single-node server that ingested the same stream — same pairs, same
// order, same scores, same snapshot metadata, same JSON bytes.
func TestClusterBitIdenticalMerge(t *testing.T) {
	const seed = 7
	tc := newTestCluster(t, 3, seed)
	refSrv, ref := refServer(t, seed)
	ctx := context.Background()

	events := randomEvents(11, 900)
	for i := 0; i < len(events); i += 90 {
		end := i + 90
		if end > len(events) {
			end = len(events)
		}
		batch := events[i:end]
		if _, err := tc.router.Ingest(ctx, batch); err != nil {
			t.Fatalf("router ingest: %v", err)
		}
		if _, _, err := refSrv.Ingest(batch); err != nil {
			t.Fatalf("ref ingest: %v", err)
		}
	}
	if _, err := tc.router.Flush(ctx); err != nil {
		t.Fatalf("router flush: %v", err)
	}
	refSrv.Flush()

	rt := httptest.NewServer(tc.router.Handler())
	defer rt.Close()

	for _, alg := range []string{"CN", "AA", "Katz"} {
		u := fmt.Sprintf("/predict?alg=%s&k=25", alg)
		ccode, cbody := httpGet(t, rt.URL+u)
		rcode, rbody := httpGet(t, ref.URL+u)
		if ccode != 200 || rcode != 200 {
			t.Fatalf("%s: status cluster=%d ref=%d (%s / %s)", alg, ccode, rcode, cbody, rbody)
		}
		if string(cbody) != string(rbody) {
			t.Fatalf("%s: cluster response is not byte-identical to single node\ncluster: %s\nsingle:  %s", alg, cbody, rbody)
		}
		var res Response
		if err := json.Unmarshal(cbody, &res); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if res.Partial || len(res.Pairs) == 0 {
			t.Fatalf("%s: unexpected partial=%v pairs=%d", alg, res.Partial, len(res.Pairs))
		}
		for _, p := range res.Pairs {
			if p.DU != 0 || p.DV != 0 {
				t.Fatalf("%s: merged response leaked dense IDs: %+v", alg, p)
			}
		}
	}

	// Same-seq snapshots must be identical across shards: replicated
	// ingest in serialized order is the whole epoch-consistency story.
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for seq, want := range tc.snaps[0] {
		for i := 1; i < len(tc.snaps); i++ {
			got, ok := tc.snaps[i][seq]
			if !ok {
				continue // shard published later; absence is a skew, not a divergence
			}
			if got != want {
				t.Fatalf("seq %d diverged: shard 0 %+v, shard %d %+v", seq, want, i, got)
			}
		}
	}
}

// TestClusterConcurrentIngestPredict hammers the router with interleaved
// replicated ingest and scatter/gather predicts under the race detector,
// then verifies the quiesced cluster still merges bit-identically.
func TestClusterConcurrentIngestPredict(t *testing.T) {
	const seed = 3
	tc := newTestCluster(t, 3, seed)
	ctx := context.Background()
	rt := httptest.NewServer(tc.router.Handler())
	defer rt.Close()

	events := randomEvents(5, 1200)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < len(events); i += 60 {
			end := i + 60
			if end > len(events) {
				end = len(events)
			}
			if _, err := tc.router.Ingest(ctx, events[i:end]); err != nil {
				t.Errorf("concurrent ingest: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			// Mid-stream responses may be partial if a publish lands
			// between gathers and the re-ask budget runs out; only
			// transport-level failure is an error here.
			code, body := httpGet(t, rt.URL+"/predict?alg=CN&k=10")
			if code != 200 && code != 502 {
				t.Errorf("concurrent predict: status %d: %s", code, body)
				return
			}
		}
	}()
	wg.Wait()

	if _, err := tc.router.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	code, body := httpGet(t, rt.URL+"/predict?alg=CN&k=20")
	if code != 200 {
		t.Fatalf("quiesced predict: status %d: %s", code, body)
	}
	var res Response
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatalf("quiesced cluster served partial: %s", body)
	}

	// Offline recomputation: rebuild the final graph on a fresh server
	// from the same event stream and compare the ranked list.
	cfg := serve.Config{SnapshotEvery: 256}
	cfg.Opt.Seed = seed
	offline, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer offline.Close()
	if _, _, err := offline.Ingest(events); err != nil {
		t.Fatal(err)
	}
	offline.Flush()
	want, err := offline.Predict(ctx, "CN", 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) != len(res.Pairs) {
		t.Fatalf("got %d pairs, want %d", len(res.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		if res.Pairs[i] != want.Pairs[i] {
			t.Fatalf("rank %d: got %+v, want %+v", i, res.Pairs[i], want.Pairs[i])
		}
	}
}

// TestClusterShardDown kills one shard and checks the degradation
// contract: partial:true, the dead shard's exact source range reported
// missing, the surviving shards' merge still served, and health reflecting
// the outage.
func TestClusterShardDown(t *testing.T) {
	const seed = 9
	tc := newTestCluster(t, 3, seed)
	// Fail fast: a dead httptest server refuses connections immediately,
	// so tight retry bounds keep the test quick.
	tc.router.cfg.EpochBackoff = time.Millisecond
	ctx := context.Background()

	events := randomEvents(2, 600)
	if _, err := tc.router.Ingest(ctx, events); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.router.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	full, err := tc.router.Predict(ctx, "CN", 15)
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatalf("healthy cluster served partial")
	}

	// Learn the dead shard's degree-weighted range before killing it: ask
	// it directly for its restricted sweep and read the reported
	// shard_range — exactly what the router must later reconstruct from
	// the surviving neighbors' boundaries.
	const dead = 1
	deadRes, err := tc.servers[dead].PredictShard(ctx, "CN", 15, dead, 3)
	if err != nil {
		t.Fatal(err)
	}
	if deadRes.ShardRange == nil {
		t.Fatal("sharded response missing shard_range")
	}
	want := *deadRes.ShardRange
	tc.ts[dead].Close()

	res, err := tc.router.Predict(ctx, "CN", 15)
	if err != nil {
		t.Fatalf("predict with dead shard: %v", err)
	}
	if !res.Partial {
		t.Fatal("dead shard not reported: partial=false")
	}
	if len(res.MissingRanges) != 1 || res.MissingRanges[0] != want {
		t.Fatalf("missing_ranges = %v, want [%v]", res.MissingRanges, want)
	}
	if len(res.Pairs) == 0 {
		t.Fatal("partial response carried no pairs from surviving shards")
	}
	// The surviving merge must equal the full merge minus the dead
	// shard's owned pairs — every served pair must appear in the full
	// ranking's universe with an identical score.
	fullSet := map[[2]int64]float64{}
	for _, p := range full.Pairs {
		fullSet[[2]int64{p.U, p.V}] = p.Score
	}
	for _, p := range res.Pairs {
		if s, ok := fullSet[[2]int64{p.U, p.V}]; ok && s != p.Score {
			t.Fatalf("pair (%d,%d) score changed across partial merge: %v vs %v", p.U, p.V, p.Score, s)
		}
	}

	h := tc.router.Health(ctx)
	if h.OK || h.ShardsUp != 2 {
		t.Fatalf("health after kill: ok=%v up=%d, want ok=false up=2", h.OK, h.ShardsUp)
	}

	// Ingest keeps flowing to survivors, reporting the divergence.
	out, err := tc.router.Ingest(ctx, randomEvents(4, 50))
	if err != nil {
		t.Fatalf("ingest with dead shard: %v", err)
	}
	if out.ShardErrors != 1 {
		t.Fatalf("ingest shard_errors = %d, want 1", out.ShardErrors)
	}
}

// TestClusterScoreForward checks the round-robin /score proxy, including
// failover past a dead shard.
func TestClusterScoreForward(t *testing.T) {
	tc := newTestCluster(t, 2, 1)
	ctx := context.Background()
	if _, err := tc.router.Ingest(ctx, []serve.Event{
		{U: 1, V: 2, T: 1}, {U: 2, V: 3, T: 2}, {U: 1, V: 3, T: 3}, {U: 3, V: 4, T: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tc.router.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	rt := httptest.NewServer(tc.router.Handler())
	defer rt.Close()

	tc.ts[0].Close() // failover must route around shard 0
	body := `{"alg":"CN","pairs":[[1,4],[2,4]]}`
	resp, err := http.Post(rt.URL+"/score", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("score status %d: %s", resp.StatusCode, raw)
	}
	var res serve.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("score pairs = %d, want 2", len(res.Pairs))
	}
}

// TestClusterCatchingUpHealth: a shard that rejoins behind the replicated
// stream — the post-crash-recovery state, where its WAL restored an older
// ingest position — is reported up but catching_up in the aggregate
// health, and the flag clears once the missed delta is replayed into it.
func TestClusterCatchingUpHealth(t *testing.T) {
	const seed = 31
	tc := newTestCluster(t, 2, seed)
	ctx := context.Background()

	events := randomEvents(seed, 120)
	if _, err := tc.router.Ingest(ctx, events[:80]); err != nil {
		t.Fatal(err)
	}
	h := tc.router.Health(ctx)
	if !h.OK || h.CatchingUp != 0 {
		t.Fatalf("aligned cluster: ok=%v catching_up=%d", h.OK, h.CatchingUp)
	}

	// Shard 1 misses a batch (the crash window): feed it to shard 0 only.
	if _, _, err := tc.servers[0].Ingest(events[80:]); err != nil {
		t.Fatal(err)
	}
	h = tc.router.Health(ctx)
	if h.OK {
		t.Fatal("health OK with a lagging shard")
	}
	if h.CatchingUp != 1 {
		t.Fatalf("catching_up = %d, want 1", h.CatchingUp)
	}
	if h.Workers[0].CatchingUp || !h.Workers[1].CatchingUp {
		t.Fatalf("wrong shard flagged: %+v", h.Workers)
	}
	if !h.Workers[1].Up {
		t.Fatal("a catching-up shard must still be up")
	}

	// Replaying the missed delta realigns the traces and clears the flag.
	if _, _, err := tc.servers[1].Ingest(events[80:]); err != nil {
		t.Fatal(err)
	}
	h = tc.router.Health(ctx)
	if !h.OK || h.CatchingUp != 0 {
		t.Fatalf("after delta replay: ok=%v catching_up=%d (%+v)", h.OK, h.CatchingUp, h.Workers)
	}
}

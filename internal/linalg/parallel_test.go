package linalg

import (
	"math"
	"math/rand"
	"testing"

	"linkpred/internal/graph"
)

var invarianceWorkers = []int{1, 2, 4, 7}

func randomTestGraph(rng *rand.Rand, n, m int) *graph.Graph {
	edges := make([]graph.Edge, m)
	for i := range edges {
		edges[i] = graph.Edge{
			U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n)), Time: int64(i),
		}
	}
	return graph.Build(n, edges)
}

// The parallel backend's contract is bit-identical results at any worker
// count: rows are owned by exactly one worker and each row's accumulation
// order is unchanged, so no float operation reorders.

func TestMulVecWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := mustCSR(t, randomTestGraph(rng, 300, 1500))
	x := make([]float64, a.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ref := make([]float64, a.N)
	a.MulVec(x, ref, 1)
	for _, w := range invarianceWorkers[1:] {
		y := make([]float64, a.N)
		a.MulVec(x, y, w)
		for i := range y {
			if y[i] != ref[i] {
				t.Fatalf("workers=%d: y[%d] = %v, want %v", w, i, y[i], ref[i])
			}
		}
	}
}

func TestMulDenseWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := mustCSR(t, randomTestGraph(rng, 250, 1200))
	x := NewDense(a.N, 9)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	ref := NewDense(a.N, 9)
	a.MulDense(x, ref, 1)
	for _, w := range invarianceWorkers[1:] {
		y := NewDense(a.N, 9)
		a.MulDense(x, y, w)
		for i := range y.Data {
			if y.Data[i] != ref.Data[i] {
				t.Fatalf("workers=%d: element %d = %v, want %v", w, i, y.Data[i], ref.Data[i])
			}
		}
	}
}

func TestMatMulWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Tall-skinny times small (the ALS shape) plus a short-wide product that
	// crosses the low fan-out threshold.
	shapes := [][3]int{{400, 8, 8}, {8, 400, 80}}
	for _, s := range shapes {
		a := NewDense(s[0], s[1])
		b := NewDense(s[1], s[2])
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		ref := a.MatMul(b, 1)
		for _, w := range invarianceWorkers[1:] {
			got := a.MatMul(b, w)
			for i := range got.Data {
				if got.Data[i] != ref.Data[i] {
					t.Fatalf("shape %v workers=%d: element %d = %v, want %v",
						s, w, i, got.Data[i], ref.Data[i])
				}
			}
		}
	}
}

func TestTopEigWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := mustCSR(t, randomTestGraph(rng, 200, 900))
	refVals, refVecs := a.TopEig(6, 40, 42, 1)
	for _, w := range invarianceWorkers[1:] {
		vals, vecs := a.TopEig(6, 40, 42, w)
		for i := range refVals {
			if vals[i] != refVals[i] {
				t.Fatalf("workers=%d: eigenvalue %d = %v, want %v", w, i, vals[i], refVals[i])
			}
		}
		for i := range refVecs.Data {
			if vecs.Data[i] != refVecs.Data[i] {
				t.Fatalf("workers=%d: eigenvector element %d differs", w, i)
			}
		}
	}
}

func TestCheckCSRSizeBoundary(t *testing.T) {
	if err := checkCSRSize(math.MaxInt32); err != nil {
		t.Errorf("nnz = MaxInt32 should fit: %v", err)
	}
	if err := checkCSRSize(math.MaxInt32 + 1); err == nil {
		t.Error("nnz = MaxInt32+1 should overflow the int32 RowPtr offsets")
	}
	if err := checkCSRSize(0); err != nil {
		t.Errorf("nnz = 0: %v", err)
	}
}

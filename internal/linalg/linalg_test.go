package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"linkpred/internal/graph"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMul(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Dense{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := &Dense{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows, at.Cols)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("T data = %v", at.Data)
	}
}

func TestCholSolveIdentity(t *testing.T) {
	a := NewDense(3, 3)
	for i := 0; i < 3; i++ {
		a.Set(i, i, 2)
	}
	b := &Dense{Rows: 3, Cols: 1, Data: []float64{2, 4, 6}}
	x := CholSolve(a, b)
	for i, want := range []float64{1, 2, 3} {
		if !almostEq(x.At(i, 0), want, 1e-12) {
			t.Fatalf("x = %v", x.Data)
		}
	}
}

// Property: CholSolve(A, A*x) recovers x for random SPD A = M^T M + I.
func TestCholSolveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := NewDense(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		a := MatMul(m.T(), m)
		a.AddDiag(1)
		x := NewDense(n, 2)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		b := MatMul(a, x)
		got := CholSolve(a, b)
		for i := range x.Data {
			if !almostEq(got.Data[i], x.Data[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestJacobiEigDiagonal(t *testing.T) {
	a := NewDense(3, 3)
	a.Set(0, 0, 1)
	a.Set(1, 1, 5)
	a.Set(2, 2, 3)
	vals, vecs := JacobiEig(a)
	want := []float64{5, 3, 1}
	for i, w := range want {
		if !almostEq(vals[i], w, 1e-10) {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvector for eigenvalue 5 should be e_1 up to sign.
	if !almostEq(math.Abs(vecs.At(1, 0)), 1, 1e-10) {
		t.Fatalf("vecs col 0 = %v %v %v", vecs.At(0, 0), vecs.At(1, 0), vecs.At(2, 0))
	}
}

// Property: JacobiEig reconstructs A = V diag(vals) V^T for random symmetric A.
func TestJacobiEigQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := JacobiEig(a)
		// Reconstruct.
		d := NewDense(n, n)
		for i, v := range vals {
			d.Set(i, i, v)
		}
		recon := MatMul(MatMul(vecs, d), vecs.T())
		for i := range a.Data {
			if !almostEq(recon.Data[i], a.Data[i], 1e-7) {
				return false
			}
		}
		// Sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func ringGraph(n int) *graph.Graph {
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: graph.NodeID(i), V: graph.NodeID((i + 1) % n), Time: int64(i)}
	}
	return graph.Build(n, edges)
}

func mustCSR(t *testing.T, g *graph.Graph) *CSR {
	t.Helper()
	a, err := FromGraph(g)
	if err != nil {
		t.Fatalf("FromGraph: %v", err)
	}
	return a
}

func TestCSRFromGraph(t *testing.T) {
	g := ringGraph(5)
	a := mustCSR(t, g)
	if a.N != 5 || len(a.Col) != 10 {
		t.Fatalf("CSR dims: N=%d nnz=%d", a.N, len(a.Col))
	}
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, 5)
	a.MulVec(x, y, 1)
	// Node 0 neighbors are 1 and 4: y[0] = 2 + 5.
	if y[0] != 7 {
		t.Fatalf("MulVec y = %v", y)
	}
}

func TestMulDenseMatchesMulVec(t *testing.T) {
	g := ringGraph(8)
	a := mustCSR(t, g)
	x := NewDense(8, 3)
	rng := rand.New(rand.NewSource(1))
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := NewDense(8, 3)
	a.MulDense(x, y, 1)
	col := make([]float64, 8)
	out := make([]float64, 8)
	for j := 0; j < 3; j++ {
		for i := 0; i < 8; i++ {
			col[i] = x.At(i, j)
		}
		a.MulVec(col, out, 1)
		for i := 0; i < 8; i++ {
			if !almostEq(out[i], y.At(i, j), 1e-12) {
				t.Fatalf("col %d row %d: %v vs %v", j, i, out[i], y.At(i, j))
			}
		}
	}
}

func TestTopEigStar(t *testing.T) {
	// Star graph K_{1,n-1}: adjacency eigenvalues ±sqrt(n-1), rest 0.
	n := 10
	edges := make([]graph.Edge, n-1)
	for i := 1; i < n; i++ {
		edges[i-1] = graph.Edge{U: 0, V: graph.NodeID(i), Time: int64(i)}
	}
	g := graph.Build(n, edges)
	a := mustCSR(t, g)
	vals, vecs := a.TopEig(2, 60, 1, 1)
	want := math.Sqrt(float64(n - 1))
	if !almostEq(vals[0], want, 1e-6) {
		t.Fatalf("dominant eigenvalue = %v, want %v", vals[0], want)
	}
	if !almostEq(vals[1], -want, 1e-6) {
		t.Fatalf("second eigenvalue = %v, want %v", vals[1], -want)
	}
	// Columns orthonormal.
	var dot, n0 float64
	for i := 0; i < n; i++ {
		dot += vecs.At(i, 0) * vecs.At(i, 1)
		n0 += vecs.At(i, 0) * vecs.At(i, 0)
	}
	if !almostEq(dot, 0, 1e-6) || !almostEq(n0, 1, 1e-6) {
		t.Fatalf("eigenvectors not orthonormal: dot=%v norm=%v", dot, n0)
	}
}

// Property: for random graphs, TopEig residuals ||A v - λ v|| are small for
// the dominant pair.
func TestTopEigResidualQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		var edges []graph.Edge
		for i := 0; i < 4*n; i++ {
			edges = append(edges, graph.Edge{
				U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n)), Time: int64(i),
			})
		}
		g := graph.Build(n, edges)
		a, err := FromGraph(g)
		if err != nil {
			return false
		}
		vals, vecs := a.TopEig(3, 80, seed, 1)
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			v[i] = vecs.At(i, 0)
		}
		av := make([]float64, n)
		a.MulVec(v, av, 1)
		var res float64
		for i := 0; i < n; i++ {
			d := av[i] - vals[0]*v[i]
			res += d * d
		}
		return math.Sqrt(res) < 1e-3*math.Max(1, math.Abs(vals[0]))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestTopEigEdgeCases(t *testing.T) {
	g := ringGraph(4)
	a := mustCSR(t, g)
	vals, vecs := a.TopEig(0, 10, 1, 1)
	if vals != nil || vecs.Cols != 0 {
		t.Error("r=0 should return empty decomposition")
	}
	vals, _ = a.TopEig(10, 40, 1, 2) // r > n clamps
	if len(vals) != 4 {
		t.Errorf("clamped rank = %d, want 4", len(vals))
	}
}

func TestPanicPaths(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	a := NewDense(2, 3)
	b := NewDense(2, 2)
	expectPanic("MatMul shape", func() { MatMul(a, b) })
	expectPanic("CholSolve shape", func() { CholSolve(a, b) })
	expectPanic("JacobiEig non-square", func() { JacobiEig(a) })
	// CholSolve on an irreparably indefinite matrix panics after jitter.
	neg := NewDense(2, 2)
	neg.Set(0, 0, -1e6)
	neg.Set(1, 1, -1e6)
	expectPanic("CholSolve indefinite", func() { CholSolve(neg, NewDense(2, 1)) })
}

func TestDenseHelpers(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 5 {
		t.Error("Clone aliases the original")
	}
	m.AddDiag(3)
	if m.At(0, 0) != 3 || m.At(1, 1) != 3 {
		t.Errorf("AddDiag: %v", m.Data)
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2")
	}
	row := m.Row(0)
	row[0] = 42
	if m.At(0, 0) != 42 {
		t.Error("Row should share storage")
	}
}

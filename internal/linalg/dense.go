// Package linalg implements the small linear-algebra substrate the latent
// metric-based predictors need: dense matrices, sparse CSR adjacency
// matrices, Cholesky solves for ALS (Rescal), a Jacobi eigensolver for small
// symmetric systems, and rank-r subspace iteration used by the low-rank Katz
// approximation. Everything is from scratch on the standard library.
package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"linkpred/internal/obs"
	"linkpred/internal/par"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed r x c matrix.
func NewDense(r, c int) *Dense {
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a shared slice.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MatMul returns a * b, computing disjoint row blocks of the product on
// workers goroutines. Each output row accumulates over k in the same order
// as a serial run, so the product is bit-identical at any worker count.
func (a *Dense) MatMul(b *Dense, workers int) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	var start time.Time
	track := obs.Enabled()
	if track {
		start = time.Now()
	}
	out := NewDense(a.Rows, b.Cols)
	// Short-but-wide products (XᵀX in ALS: rank rows, each costing n·rank
	// flops) would fall under the generic fan-out threshold despite heavy
	// per-row work, so the threshold drops when rows are individually large.
	minRows := par.ShardMin
	if a.Cols*b.Cols >= 1<<12 {
		minRows = 2
	}
	par.ShardRangeMin(a.Rows, workers, minRows, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	if track {
		obs.GetHistogram("linalg/mat_mul_ns").Observe(time.Since(start).Nanoseconds())
	}
	return out
}

// MatMul returns a * b on the calling goroutine.
func MatMul(a, b *Dense) *Dense { return a.MatMul(b, 1) }

// AddDiag adds v to every diagonal element in place (ridge regularization).
func (m *Dense) AddDiag(v float64) {
	n := min(m.Rows, m.Cols)
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// CholSolve solves the SPD system a * x = b via Cholesky factorization,
// overwriting neither input. a must be square and b must have matching rows.
// A tiny jitter is added when the factorization encounters a non-positive
// pivot, which keeps ridge-regularized ALS robust.
func CholSolve(a, b *Dense) *Dense {
	n := a.Rows
	if a.Cols != n || b.Rows != n {
		panic(fmt.Sprintf("linalg: CholSolve shapes %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	l := a.Clone()
	for attempt := 0; ; attempt++ {
		if cholesky(l) {
			break
		}
		if attempt > 6 {
			panic("linalg: CholSolve failed on a matrix that stays non-SPD under jitter")
		}
		l = a.Clone()
		l.AddDiag(math.Pow(10, float64(attempt-8)))
	}
	// Solve L y = b (forward), then L^T x = y (backward), column by column.
	x := b.Clone()
	for col := 0; col < b.Cols; col++ {
		for i := 0; i < n; i++ {
			s := x.At(i, col)
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * x.At(k, col)
			}
			x.Set(i, col, s/l.At(i, i))
		}
		for i := n - 1; i >= 0; i-- {
			s := x.At(i, col)
			for k := i + 1; k < n; k++ {
				s -= l.At(k, i) * x.At(k, col)
			}
			x.Set(i, col, s/l.At(i, i))
		}
	}
	return x
}

// cholesky factors a in place into its lower-triangular factor, returning
// false if a pivot is non-positive.
func cholesky(a *Dense) bool {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= a.At(j, k) * a.At(j, k)
		}
		if d <= 0 {
			return false
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= a.At(i, k) * a.At(j, k)
			}
			a.Set(i, j, s/d)
		}
		for i := 0; i < j; i++ {
			a.Set(i, j, 0)
		}
	}
	return true
}

// JacobiEig computes the full eigendecomposition of a small symmetric matrix
// using cyclic Jacobi rotations, returning eigenvalues in descending order
// and the corresponding orthonormal eigenvectors as matrix columns.
func JacobiEig(a *Dense) (vals []float64, vecs *Dense) {
	n := a.Rows
	if a.Cols != n {
		panic("linalg: JacobiEig needs a square matrix")
	}
	m := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < 64; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				theta := (m.At(q, q) - m.At(p, p)) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	// Extract and sort.
	type pair struct {
		val float64
		idx int
	}
	ps := make([]pair, n)
	for i := range ps {
		ps[i] = pair{val: m.At(i, i), idx: i}
	}
	for i := 0; i < n; i++ { // simple selection sort, n is small
		best := i
		for j := i + 1; j < n; j++ {
			if ps[j].val > ps[best].val {
				best = j
			}
		}
		ps[i], ps[best] = ps[best], ps[i]
	}
	vals = make([]float64, n)
	vecs = NewDense(n, n)
	for k, p := range ps {
		vals[k] = p.val
		for i := 0; i < n; i++ {
			vecs.Set(i, k, v.At(i, p.idx))
		}
	}
	return vals, vecs
}

// rotate applies the Jacobi rotation (c, s) in the (p, q) plane to m and
// accumulates it in v.
func rotate(m, v *Dense, p, q int, c, s float64) {
	n := m.Rows
	for i := 0; i < n; i++ {
		mip, miq := m.At(i, p), m.At(i, q)
		m.Set(i, p, c*mip-s*miq)
		m.Set(i, q, s*mip+c*miq)
	}
	for j := 0; j < n; j++ {
		mpj, mqj := m.At(p, j), m.At(q, j)
		m.Set(p, j, c*mpj-s*mqj)
		m.Set(q, j, s*mpj+c*mqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// qrRows replaces the rows of m with an orthonormal basis of their span
// (modified Gram-Schmidt over contiguous rows — the transposed view TopEig
// keeps its iterate in, which turns the strided column walks of the former
// column-major variant into sequential memory scans). Near-dependent rows
// are replaced by fresh random directions drawn from rng so subspace
// iteration never collapses. The float operation sequence per basis vector
// is exactly the former column-major one, so results are bit-identical.
func qrRows(m *Dense, rng *rand.Rand) {
	for j := 0; j < m.Rows; j++ {
		row := m.Row(j)
		for attempt := 0; ; attempt++ {
			for k := 0; k < j; k++ {
				prev := m.Row(k)
				var dot float64
				for i := range row {
					dot += row[i] * prev[i]
				}
				for i := range row {
					row[i] -= dot * prev[i]
				}
			}
			norm := Norm2(row)
			if norm > 1e-10 {
				for i := range row {
					row[i] /= norm
				}
				break
			}
			if attempt > 4 {
				// Degenerate subspace smaller than the basis; zero the row.
				for i := range row {
					row[i] = 0
				}
				break
			}
			for i := range row {
				row[i] = rng.NormFloat64()
			}
		}
	}
}

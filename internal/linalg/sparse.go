package linalg

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/par"
)

// CSR is a sparse matrix in compressed-sparse-row form with unit values,
// exactly what an unweighted adjacency matrix needs.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []graph.NodeID
}

// checkCSRSize verifies the directed entry count fits the int32 RowPtr
// offsets. Factored out so the boundary is unit-testable without allocating
// two-billion-entry slices.
func checkCSRSize(nnz int64) error {
	if nnz > math.MaxInt32 {
		return fmt.Errorf("linalg: adjacency has %d directed entries, exceeding the int32 CSR offset limit %d", nnz, int64(math.MaxInt32))
	}
	return nil
}

// FromGraph builds the (symmetric) adjacency matrix of g. It fails if the
// graph's directed entry count (2|E|) overflows the int32 row offsets.
func FromGraph(g *graph.Graph) (*CSR, error) {
	n := g.NumNodes()
	nnz := int64(0)
	for u := 0; u < n; u++ {
		nnz += int64(g.Degree(graph.NodeID(u)))
	}
	if err := checkCSRSize(nnz); err != nil {
		return nil, err
	}
	c := &CSR{N: n, RowPtr: make([]int32, n+1)}
	c.Col = make([]graph.NodeID, 0, nnz)
	for u := 0; u < n; u++ {
		c.Col = append(c.Col, g.Neighbors(graph.NodeID(u))...)
		c.RowPtr[u+1] = int32(len(c.Col))
	}
	return c, nil
}

// mulVecRange computes rows [lo, hi) of y = A x.
func (a *CSR) mulVecRange(x, y []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += x[a.Col[k]]
		}
		y[i] = s
	}
}

// MulVec computes y = A x across workers goroutines. y must have length N
// and is overwritten. Each output row is owned by exactly one worker and
// accumulates in the same neighbor order as a serial run, so the result is
// bit-identical at any worker count.
func (a *CSR) MulVec(x, y []float64, workers int) {
	par.ShardRange(a.N, workers, func(_, lo, hi int) { a.mulVecRange(x, y, lo, hi) })
}

// mulDenseRange computes rows [lo, hi) of Y = A X.
func (a *CSR) mulDenseRange(x, y *Dense, lo, hi int) {
	r := x.Cols
	for i := lo; i < hi; i++ {
		yrow := y.Row(i)
		for j := 0; j < r; j++ {
			yrow[j] = 0
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			xrow := x.Row(int(a.Col[k]))
			for j := 0; j < r; j++ {
				yrow[j] += xrow[j]
			}
		}
	}
}

// MulDense computes Y = A X for a dense n x r matrix X across workers
// goroutines, overwriting Y. Row ownership keeps the per-row accumulation
// order identical to a serial run, so the result is bit-identical at any
// worker count.
func (a *CSR) MulDense(x, y *Dense, workers int) {
	var start time.Time
	track := obs.Enabled()
	if track {
		start = time.Now()
	}
	par.ShardRange(a.N, workers, func(_, lo, hi int) { a.mulDenseRange(x, y, lo, hi) })
	if track {
		obs.GetHistogram("linalg/mul_dense_ns").Observe(time.Since(start).Nanoseconds())
	}
}

// transposeInto writes src^T into dst; shapes must already agree.
func transposeInto(dst, src *Dense) {
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

// TopEig approximates the r dominant (largest magnitude) eigenpairs of the
// symmetric matrix a using subspace iteration with Rayleigh-Ritz extraction,
// spreading the sparse multiplies and the Ritz projection over workers
// goroutines. Eigenvalues are returned in descending order of signed value;
// the i-th column of vecs is the eigenvector for vals[i].
//
// Internally the iterate basis lives in transposed r x n form so each basis
// vector is a contiguous row during orthonormalization and projection; the
// random initialization and every float operation replay the historical
// n x r element order, so results are bit-identical to the original serial
// column-major implementation at any worker count.
func (a *CSR) TopEig(r, iters int, seed int64, workers int) (vals []float64, vecs *Dense) {
	if r > a.N {
		r = a.N
	}
	if r <= 0 {
		return nil, NewDense(a.N, 0)
	}
	var startAll time.Time
	track := obs.Enabled()
	if track {
		startAll = time.Now()
	}
	rng := rand.New(rand.NewSource(seed))
	qt := NewDense(r, a.N) // basis vectors as rows
	// Draw in the element order of the historical row-major n x r fill so
	// the starting subspace (and therefore every downstream float) matches
	// the original implementation exactly.
	for i := 0; i < a.N; i++ {
		for j := 0; j < r; j++ {
			qt.Data[j*a.N+i] = rng.NormFloat64()
		}
	}
	qrRows(qt, rng)
	q := NewDense(a.N, r)
	y := NewDense(a.N, r)
	for it := 0; it < iters; it++ {
		transposeInto(q, qt)
		a.MulDense(q, y, workers)
		transposeInto(qt, y)
		qrRows(qt, rng)
	}
	// Rayleigh-Ritz: T = Q^T A Q, then rotate Q by T's eigenvectors.
	transposeInto(q, qt)
	a.MulDense(q, y, workers) // y = A Q
	yt := NewDense(r, a.N)
	transposeInto(yt, y)
	t := NewDense(r, r)
	par.ShardRangeMin(r, workers, 2, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			qrow := qt.Row(i)
			trow := t.Row(i)
			for j := 0; j < r; j++ {
				trow[j] = Dot(qrow, yt.Row(j))
			}
		}
	})
	// Symmetrize against round-off before Jacobi.
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			v := (t.At(i, j) + t.At(j, i)) / 2
			t.Set(i, j, v)
			t.Set(j, i, v)
		}
	}
	tvals, tvecs := JacobiEig(t)
	ritz := q.MatMul(tvecs, workers)
	if track {
		obs.GetHistogram("linalg/top_eig_ns").Observe(time.Since(startAll).Nanoseconds())
	}
	return tvals, ritz
}

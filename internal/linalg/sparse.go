package linalg

import (
	"math/rand"

	"linkpred/internal/graph"
)

// CSR is a sparse matrix in compressed-sparse-row form with unit values,
// exactly what an unweighted adjacency matrix needs.
type CSR struct {
	N      int
	RowPtr []int32
	Col    []graph.NodeID
}

// FromGraph builds the (symmetric) adjacency matrix of g.
func FromGraph(g *graph.Graph) *CSR {
	n := g.NumNodes()
	c := &CSR{N: n, RowPtr: make([]int32, n+1)}
	nnz := 0
	for u := 0; u < n; u++ {
		nnz += g.Degree(graph.NodeID(u))
	}
	c.Col = make([]graph.NodeID, 0, nnz)
	for u := 0; u < n; u++ {
		c.Col = append(c.Col, g.Neighbors(graph.NodeID(u))...)
		c.RowPtr[u+1] = int32(len(c.Col))
	}
	return c
}

// MulVec computes y = A x. y must have length N and is overwritten.
func (a *CSR) MulVec(x, y []float64) {
	for i := 0; i < a.N; i++ {
		var s float64
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			s += x[a.Col[k]]
		}
		y[i] = s
	}
}

// MulDense computes Y = A X for a dense n x r matrix X, overwriting Y.
func (a *CSR) MulDense(x, y *Dense) {
	r := x.Cols
	for i := 0; i < a.N; i++ {
		yrow := y.Row(i)
		for j := 0; j < r; j++ {
			yrow[j] = 0
		}
		for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
			xrow := x.Row(int(a.Col[k]))
			for j := 0; j < r; j++ {
				yrow[j] += xrow[j]
			}
		}
	}
}

// TopEig approximates the r dominant (largest magnitude) eigenpairs of the
// symmetric matrix a using subspace iteration with Rayleigh-Ritz extraction.
// Eigenvalues are returned in descending order of signed value; the i-th
// column of vecs is the eigenvector for vals[i].
func (a *CSR) TopEig(r, iters int, seed int64) (vals []float64, vecs *Dense) {
	if r > a.N {
		r = a.N
	}
	if r <= 0 {
		return nil, NewDense(a.N, 0)
	}
	rng := rand.New(rand.NewSource(seed))
	q := NewDense(a.N, r)
	for i := range q.Data {
		q.Data[i] = rng.NormFloat64()
	}
	qrOrthonormalize(q, rng)
	y := NewDense(a.N, r)
	for it := 0; it < iters; it++ {
		a.MulDense(q, y)
		q, y = y, q
		qrOrthonormalize(q, rng)
	}
	// Rayleigh-Ritz: T = Q^T A Q, then rotate Q by T's eigenvectors.
	a.MulDense(q, y) // y = A Q
	t := NewDense(r, r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			var s float64
			for k := 0; k < a.N; k++ {
				s += q.At(k, i) * y.At(k, j)
			}
			t.Set(i, j, s)
		}
	}
	// Symmetrize against round-off before Jacobi.
	for i := 0; i < r; i++ {
		for j := i + 1; j < r; j++ {
			v := (t.At(i, j) + t.At(j, i)) / 2
			t.Set(i, j, v)
			t.Set(j, i, v)
		}
	}
	tvals, tvecs := JacobiEig(t)
	ritz := MatMul(q, tvecs)
	return tvals, ritz
}

package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// TreeNode is one node of a CART decision tree. Leaves have Left == nil and
// carry the training class distribution.
type TreeNode struct {
	Feature   int
	Threshold float64
	Left      *TreeNode
	Right     *TreeNode
	// Counts is the per-class sample count reaching the node.
	Counts []float64
}

// leaf reports whether the node is terminal.
func (n *TreeNode) leaf() bool { return n.Left == nil }

// class returns the majority class at the node.
func (n *TreeNode) class() int {
	best := 0
	for c, v := range n.Counts {
		if v > n.Counts[best] {
			best = c
		}
	}
	return best
}

// DecisionTree is a CART classifier (Gini impurity, binary splits on
// numeric features). It supports arbitrary class counts so the §4.3
// best-algorithm analysis can reuse it, and exports its decision rules for
// the Figure 6 reproduction.
type DecisionTree struct {
	// MaxDepth bounds tree depth (0 means 10).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (0 means 1).
	MinLeaf int
	// MaxFeatures limits the features considered per split (0 means all);
	// random forests set it to sqrt(F).
	MaxFeatures int
	// Seed drives feature subsampling.
	Seed int64

	root    *TreeNode
	classes int
	rng     *rand.Rand
}

// NewDecisionTree returns a tree with experiment defaults.
func NewDecisionTree(seed int64) *DecisionTree {
	return &DecisionTree{MaxDepth: 10, MinLeaf: 1, Seed: seed}
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "DT" }

// Fit implements Classifier (binary labels).
func (t *DecisionTree) Fit(d *Dataset) error {
	if err := checkBinary(d); err != nil {
		return err
	}
	return t.FitMulti(d, 2)
}

// FitMulti trains on labels in [0, classes).
func (t *DecisionTree) FitMulti(d *Dataset, classes int) error {
	if err := d.Validate(); err != nil {
		return err
	}
	for i, y := range d.Y {
		if y < 0 || y >= classes {
			return fmt.Errorf("ml: row %d label %d outside [0,%d)", i, y, classes)
		}
	}
	t.classes = classes
	t.rng = rand.New(rand.NewSource(t.Seed))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(d, idx, 0)
	return nil
}

func gini(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

func (t *DecisionTree) build(d *Dataset, idx []int, depth int) *TreeNode {
	counts := make([]float64, t.classes)
	for _, i := range idx {
		counts[d.Y[i]]++
	}
	node := &TreeNode{Counts: counts}
	maxDepth := t.MaxDepth
	if maxDepth <= 0 {
		maxDepth = 10
	}
	minLeaf := t.MinLeaf
	if minLeaf <= 0 {
		minLeaf = 1
	}
	total := float64(len(idx))
	if depth >= maxDepth || len(idx) < 2*minLeaf || gini(counts, total) == 0 {
		return node
	}

	f := len(d.X[0])
	features := make([]int, f)
	for i := range features {
		features[i] = i
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < f {
		t.rng.Shuffle(f, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.MaxFeatures]
		sort.Ints(features)
	}

	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0
	sorted := make([]int, len(idx))
	leftCounts := make([]float64, t.classes)
	for _, feat := range features {
		copy(sorted, idx)
		sort.SliceStable(sorted, func(a, b int) bool { return d.X[sorted[a]][feat] < d.X[sorted[b]][feat] })
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		parentGini := gini(counts, total)
		for pos := 0; pos < len(sorted)-1; pos++ {
			leftCounts[d.Y[sorted[pos]]]++
			v, next := d.X[sorted[pos]][feat], d.X[sorted[pos+1]][feat]
			if v == next {
				continue
			}
			nl := float64(pos + 1)
			nr := total - nl
			if int(nl) < minLeaf || int(nr) < minLeaf {
				continue
			}
			rightCounts := make([]float64, t.classes)
			for c := range rightCounts {
				rightCounts[c] = counts[c] - leftCounts[c]
			}
			gain := parentGini - (nl/total)*gini(leftCounts, nl) - (nr/total)*gini(rightCounts, nr)
			if gain > bestGain {
				bestGain = gain
				bestFeature = feat
				bestThreshold = (v + next) / 2
			}
		}
	}
	if bestFeature < 0 {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if d.X[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.Feature = bestFeature
	node.Threshold = bestThreshold
	node.Left = t.build(d, left, depth+1)
	node.Right = t.build(d, right, depth+1)
	return node
}

func (t *DecisionTree) route(x []float64) *TreeNode {
	n := t.root
	for !n.leaf() {
		if x[n.Feature] <= n.Threshold {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// Score implements Classifier: the leaf's positive-class fraction. Note the
// paper's observation that trees produce coarse, near-binary scores.
func (t *DecisionTree) Score(x []float64) float64 {
	n := t.route(x)
	total := 0.0
	for _, c := range n.Counts {
		total += c
	}
	if total == 0 || t.classes < 2 {
		return 0
	}
	return n.Counts[1] / total
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int { return t.route(x).class() }

// PredictClass is Predict for multiclass trees.
func (t *DecisionTree) PredictClass(x []float64) int { return t.route(x).class() }

// Root exposes the fitted tree for structural inspection (Figure 6).
func (t *DecisionTree) Root() *TreeNode { return t.root }

// Rules renders the tree as one human-readable line per leaf:
//
//	deg_std > 60.30 → Rescal (12 samples)
//
// featureNames maps feature indices to names, classNames class IDs to
// labels; either may be nil for positional fallbacks.
func (t *DecisionTree) Rules(featureNames, classNames []string) []string {
	if t.root == nil {
		return nil
	}
	fname := func(i int) string {
		if i < len(featureNames) {
			return featureNames[i]
		}
		return fmt.Sprintf("f%d", i)
	}
	cname := func(c int) string {
		if c < len(classNames) {
			return classNames[c]
		}
		return fmt.Sprintf("class%d", c)
	}
	var out []string
	var walk func(n *TreeNode, conds []string)
	walk = func(n *TreeNode, conds []string) {
		if n.leaf() {
			total := 0.0
			for _, c := range n.Counts {
				total += c
			}
			cond := strings.Join(conds, " && ")
			if cond == "" {
				cond = "always"
			}
			out = append(out, fmt.Sprintf("%s → %s (%.0f samples)", cond, cname(n.class()), total))
			return
		}
		walk(n.Left, append(conds[:len(conds):len(conds)], fmt.Sprintf("%s <= %.3g", fname(n.Feature), n.Threshold)))
		walk(n.Right, append(conds[:len(conds):len(conds)], fmt.Sprintf("%s > %.3g", fname(n.Feature), n.Threshold)))
	}
	walk(t.root, nil)
	return out
}

// RandomForest bags MaxDepth-bounded CART trees over bootstrap samples with
// per-split feature subsampling.
type RandomForest struct {
	Trees    int
	MaxDepth int
	MinLeaf  int
	Seed     int64

	forest  []*DecisionTree
	classes int
}

// NewRandomForest returns a forest with experiment defaults.
func NewRandomForest(seed int64) *RandomForest {
	return &RandomForest{Trees: 20, MaxDepth: 10, MinLeaf: 1, Seed: seed}
}

// Name implements Classifier.
func (r *RandomForest) Name() string { return "RF" }

// Fit implements Classifier.
func (r *RandomForest) Fit(d *Dataset) error {
	if err := checkBinary(d); err != nil {
		return err
	}
	r.classes = 2
	trees := r.Trees
	if trees <= 0 {
		trees = 20
	}
	f := len(d.X[0])
	maxFeat := int(math.Ceil(math.Sqrt(float64(f))))
	rng := rand.New(rand.NewSource(r.Seed))
	r.forest = r.forest[:0]
	n := d.Len()
	for b := 0; b < trees; b++ {
		boot := &Dataset{X: make([][]float64, n), Y: make([]int, n)}
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			boot.X[i] = d.X[j]
			boot.Y[i] = d.Y[j]
		}
		tr := &DecisionTree{
			MaxDepth:    r.MaxDepth,
			MinLeaf:     r.MinLeaf,
			MaxFeatures: maxFeat,
			Seed:        rng.Int63(),
		}
		if err := tr.Fit(boot); err != nil {
			return err
		}
		r.forest = append(r.forest, tr)
	}
	return nil
}

// Score implements Classifier: mean leaf positive fraction across trees.
func (r *RandomForest) Score(x []float64) float64 {
	if len(r.forest) == 0 {
		return 0
	}
	s := 0.0
	for _, t := range r.forest {
		s += t.Score(x)
	}
	return s / float64(len(r.forest))
}

// Predict implements Classifier.
func (r *RandomForest) Predict(x []float64) int {
	if r.Score(x) >= 0.5 {
		return 1
	}
	return 0
}

package ml

import (
	"math"
	"testing"
)

func TestGradientBoostOnBlobs(t *testing.T) {
	train := blobs(31, 400, 4)
	test := blobs(32, 200, 4)
	gbt := NewGradientBoost(1)
	if err := gbt.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(gbt, test); acc < 0.9 {
		t.Errorf("GBT blob accuracy = %v", acc)
	}
}

func TestGradientBoostOnXOR(t *testing.T) {
	train := xor(33, 600)
	test := xor(34, 300)
	gbt := NewGradientBoost(1)
	if err := gbt.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(gbt, test); acc < 0.9 {
		t.Errorf("GBT XOR accuracy = %v (trees should solve XOR)", acc)
	}
}

func TestGradientBoostDeterministic(t *testing.T) {
	train := blobs(35, 200, 3)
	probe := []float64{0.2, -0.1, 0.4}
	a, b := NewGradientBoost(9), NewGradientBoost(9)
	if err := a.Fit(train); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(train); err != nil {
		t.Fatal(err)
	}
	if a.Score(probe) != b.Score(probe) {
		t.Error("GBT not deterministic")
	}
}

func TestGradientBoostImbalance(t *testing.T) {
	// 1:50 imbalance: the ensemble must still rank positives above
	// negatives even if the decision threshold is conservative.
	d := blobs(37, 102, 5)
	var imb Dataset
	posKept := 0
	for i := range d.X {
		if d.Y[i] == 1 {
			if posKept >= 2 {
				continue
			}
			posKept++
		}
		imb.X = append(imb.X, d.X[i])
		imb.Y = append(imb.Y, d.Y[i])
	}
	gbt := NewGradientBoost(3)
	if err := gbt.Fit(&imb); err != nil {
		t.Fatal(err)
	}
	// Score separation on fresh data.
	fresh := blobs(38, 100, 5)
	var posMean, negMean float64
	var nPos, nNeg int
	for i := range fresh.X {
		s := gbt.Score(fresh.X[i])
		if fresh.Y[i] == 1 {
			posMean += s
			nPos++
		} else {
			negMean += s
			nNeg++
		}
	}
	posMean /= float64(nPos)
	negMean /= float64(nNeg)
	if posMean <= negMean {
		t.Errorf("GBT imbalanced ranking inverted: pos %v <= neg %v", posMean, negMean)
	}
}

func TestRegTreeFitsConstant(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	target := []float64{5, 5, 5}
	tree := fitRegTree(x, target, []int{0, 1, 2}, 3, 1)
	if !tree.leaf() {
		t.Error("constant target should yield a leaf")
	}
	if math.Abs(tree.predict([]float64{2})-5) > 1e-12 {
		t.Errorf("leaf value = %v", tree.value)
	}
	if fitRegTree(x, target, nil, 3, 1) != nil {
		t.Error("empty rows should yield nil")
	}
}

func TestRegTreeSplits(t *testing.T) {
	// Step function: target -1 below 0, +1 above.
	var x [][]float64
	var target []float64
	var rows []int
	for i := -10; i < 10; i++ {
		x = append(x, []float64{float64(i)})
		v := -1.0
		if i >= 0 {
			v = 1
		}
		target = append(target, v)
		rows = append(rows, len(rows))
	}
	tree := fitRegTree(x, target, rows, 2, 1)
	if tree.leaf() {
		t.Fatal("step target should split")
	}
	if p := tree.predict([]float64{-5}); p > -0.9 {
		t.Errorf("left prediction = %v", p)
	}
	if p := tree.predict([]float64{5}); p < 0.9 {
		t.Errorf("right prediction = %v", p)
	}
}

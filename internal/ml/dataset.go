// Package ml implements the supervised-learning substrate for the
// classification-based link prediction experiments (§5) and the §4.3
// algorithm-choosing analysis: a linear SVM (Pegasos), logistic regression,
// Gaussian naive Bayes, a CART decision tree and a random forest, plus
// standardization and the undersampling routine central to Figure 10.
// Everything is deterministic given a seed.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a feature matrix with integer class labels (0/1 for the link
// prediction task; arbitrary classes for the decision-tree analyses).
type Dataset struct {
	X [][]float64
	Y []int
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Validate checks shape consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d feature rows but %d labels", len(d.X), len(d.Y))
	}
	if len(d.X) == 0 {
		return fmt.Errorf("ml: empty dataset")
	}
	w := len(d.X[0])
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), w)
		}
	}
	return nil
}

// CountClass returns the number of rows labeled c.
func (d *Dataset) CountClass(c int) int {
	n := 0
	for _, y := range d.Y {
		if y == c {
			n++
		}
	}
	return n
}

// Undersample keeps every positive (label 1) row and draws negatives
// uniformly without replacement so that the result has at most ratio
// negatives per positive — the paper's θ = (1 : ratio) training-set
// construction (§5.2). If fewer negatives exist, all are kept.
func Undersample(d *Dataset, ratio float64, seed int64) *Dataset {
	var posIdx, negIdx []int
	for i, y := range d.Y {
		if y == 1 {
			posIdx = append(posIdx, i)
		} else {
			negIdx = append(negIdx, i)
		}
	}
	want := int(math.Ceil(float64(len(posIdx)) * ratio))
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(negIdx), func(i, j int) { negIdx[i], negIdx[j] = negIdx[j], negIdx[i] })
	if want < len(negIdx) {
		negIdx = negIdx[:want]
	}
	out := &Dataset{}
	for _, i := range posIdx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, 1)
	}
	for _, i := range negIdx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, 0)
	}
	// Shuffle rows so SGD-based learners see mixed classes.
	rng.Shuffle(out.Len(), func(i, j int) {
		out.X[i], out.X[j] = out.X[j], out.X[i]
		out.Y[i], out.Y[j] = out.Y[j], out.Y[i]
	})
	return out
}

// Standardizer rescales features to zero mean and unit variance, the usual
// preprocessing for the margin- and gradient-based classifiers.
type Standardizer struct {
	Mean, Std []float64
}

// FitStandardizer computes per-feature statistics.
func FitStandardizer(x [][]float64) *Standardizer {
	if len(x) == 0 {
		return &Standardizer{}
	}
	f := len(x[0])
	s := &Standardizer{Mean: make([]float64, f), Std: make([]float64, f)}
	for _, row := range x {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(x))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range x {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1 // constant feature: leave centered at zero
		}
	}
	return s
}

// Transform returns the standardized copy of x.
func (s *Standardizer) Transform(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i] = r
	}
	return out
}

// TransformRow standardizes a single row in place into dst (allocated if nil).
func (s *Standardizer) TransformRow(row []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(row))
	}
	for j, v := range row {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return dst
}

// Classifier is a binary classifier that also exposes a real-valued ranking
// score for the positive class, which the link prediction pipeline uses to
// select its top-k pairs.
type Classifier interface {
	// Fit trains on the dataset. Labels must be 0 or 1.
	Fit(d *Dataset) error
	// Score returns a monotone score for the positive class.
	Score(x []float64) float64
	// Predict returns the predicted label.
	Predict(x []float64) int
	// Name identifies the classifier family (SVM, LR, NB, RF).
	Name() string
}

// Accuracy is the fraction of rows a classifier labels correctly.
func Accuracy(c Classifier, d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	right := 0
	for i, row := range d.X {
		if c.Predict(row) == d.Y[i] {
			right++
		}
	}
	return float64(right) / float64(d.Len())
}

func checkBinary(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	for i, y := range d.Y {
		if y != 0 && y != 1 {
			return fmt.Errorf("ml: row %d label %d, want 0 or 1", i, y)
		}
	}
	return nil
}

package ml

import (
	"math"
	"math/rand"
	"sort"
)

// GradientBoost is a gradient-boosted ensemble of shallow regression trees
// on the logistic loss. The paper's introduction asserts that "more complex
// techniques, e.g. larger ensemble methods do not produce noticeable
// improvements in accuracy" over the §5 classifiers; this implementation
// exists to reproduce that claim (the `ensembles` experiment).
type GradientBoost struct {
	// Trees is the ensemble size.
	Trees int
	// Depth bounds each regression tree.
	Depth int
	// LearningRate shrinks each tree's contribution.
	LearningRate float64
	// Subsample is the per-tree row sampling fraction (stochastic gradient
	// boosting); 1 uses every row.
	Subsample float64
	// Seed drives subsampling.
	Seed int64

	f0    float64
	trees []*regTree
}

// NewGradientBoost returns an ensemble with common defaults.
func NewGradientBoost(seed int64) *GradientBoost {
	return &GradientBoost{Trees: 60, Depth: 3, LearningRate: 0.1, Subsample: 0.7, Seed: seed}
}

// Name implements Classifier.
func (g *GradientBoost) Name() string { return "GBT" }

// Fit implements Classifier.
func (g *GradientBoost) Fit(d *Dataset) error {
	if err := checkBinary(d); err != nil {
		return err
	}
	n := d.Len()
	pos := d.CountClass(1)
	// Initial score: log-odds of the base rate (clamped for degenerate
	// single-class sets).
	p0 := math.Min(math.Max(float64(pos)/float64(n), 1e-6), 1-1e-6)
	g.f0 = math.Log(p0 / (1 - p0))
	f := make([]float64, n)
	for i := range f {
		f[i] = g.f0
	}
	trees := g.Trees
	if trees <= 0 {
		trees = 60
	}
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	sub := g.Subsample
	if sub <= 0 || sub > 1 {
		sub = 1
	}
	rng := rand.New(rand.NewSource(g.Seed))
	g.trees = g.trees[:0]
	residual := make([]float64, n)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = i
	}
	for t := 0; t < trees; t++ {
		for i := range residual {
			residual[i] = float64(d.Y[i]) - sigmoid(f[i])
		}
		rng.Shuffle(n, func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		take := int(sub * float64(n))
		if take < 2 {
			take = min(2, n)
		}
		tree := fitRegTree(d.X, residual, rows[:take], g.Depth, 4)
		if tree == nil {
			break
		}
		g.trees = append(g.trees, tree)
		for i := range f {
			f[i] += lr * tree.predict(d.X[i])
		}
	}
	return nil
}

// Score implements Classifier: the ensemble log-odds.
func (g *GradientBoost) Score(x []float64) float64 {
	s := g.f0
	lr := g.LearningRate
	if lr <= 0 {
		lr = 0.1
	}
	for _, t := range g.trees {
		s += lr * t.predict(x)
	}
	return s
}

// Predict implements Classifier.
func (g *GradientBoost) Predict(x []float64) int {
	if g.Score(x) >= 0 {
		return 1
	}
	return 0
}

// regTree is a CART regression tree minimizing squared error.
type regTree struct {
	feature   int
	threshold float64
	left      *regTree
	right     *regTree
	value     float64
}

func (t *regTree) leaf() bool { return t.left == nil }

func (t *regTree) predict(x []float64) float64 {
	n := t
	for !n.leaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// fitRegTree builds a depth-bounded regression tree on target[rows].
func fitRegTree(x [][]float64, target []float64, rows []int, depth, minLeaf int) *regTree {
	if len(rows) == 0 {
		return nil
	}
	mean := 0.0
	for _, i := range rows {
		mean += target[i]
	}
	mean /= float64(len(rows))
	node := &regTree{value: mean}
	if depth <= 0 || len(rows) < 2*minLeaf {
		return node
	}
	// Best squared-error split.
	bestGain := 1e-12
	bestFeature, bestThreshold := -1, 0.0
	f := len(x[0])
	sorted := make([]int, len(rows))
	for feat := 0; feat < f; feat++ {
		copy(sorted, rows)
		sort.SliceStable(sorted, func(a, b int) bool { return x[sorted[a]][feat] < x[sorted[b]][feat] })
		var sumL float64
		var sumAll float64
		for _, i := range sorted {
			sumAll += target[i]
		}
		total := float64(len(sorted))
		for pos := 0; pos < len(sorted)-1; pos++ {
			sumL += target[sorted[pos]]
			v, next := x[sorted[pos]][feat], x[sorted[pos+1]][feat]
			if v == next {
				continue
			}
			nl := float64(pos + 1)
			nr := total - nl
			if int(nl) < minLeaf || int(nr) < minLeaf {
				continue
			}
			sumR := sumAll - sumL
			// Variance reduction ∝ nl*meanL² + nr*meanR² (parent constant).
			gain := sumL*sumL/nl + sumR*sumR/nr - sumAll*sumAll/total
			if gain > bestGain {
				bestGain = gain
				bestFeature = feat
				bestThreshold = (v + next) / 2
			}
		}
	}
	if bestFeature < 0 {
		return node
	}
	var left, right []int
	for _, i := range rows {
		if x[i][bestFeature] <= bestThreshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return node
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = fitRegTree(x, target, left, depth-1, minLeaf)
	node.right = fitRegTree(x, target, right, depth-1, minLeaf)
	return node
}

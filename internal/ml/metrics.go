package ml

import (
	"fmt"
	"math/rand"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Evaluate fills a confusion matrix for a fitted classifier on a dataset.
func Evaluate(c Classifier, d *Dataset) Confusion {
	var m Confusion
	for i, row := range d.X {
		pred := c.Predict(row)
		switch {
		case pred == 1 && d.Y[i] == 1:
			m.TP++
		case pred == 1 && d.Y[i] == 0:
			m.FP++
		case pred == 0 && d.Y[i] == 0:
			m.TN++
		default:
			m.FN++
		}
	}
	return m
}

// Precision is TP / (TP + FP); zero when the classifier predicted no
// positives.
func (m Confusion) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall is TP / (TP + FN); zero when the data has no positives.
func (m Confusion) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 is the harmonic mean of precision and recall.
func (m Confusion) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy is the overall fraction correct.
func (m Confusion) Accuracy() float64 {
	total := m.TP + m.FP + m.TN + m.FN
	if total == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(total)
}

// String implements fmt.Stringer.
func (m Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d precision=%.3f recall=%.3f f1=%.3f",
		m.TP, m.FP, m.TN, m.FN, m.Precision(), m.Recall(), m.F1())
}

// CrossValidate runs seeded k-fold cross-validation, fitting a fresh
// classifier (from make) on each training fold and accumulating one
// confusion matrix over all held-out folds. Folds are stratified-free
// random partitions; k is clamped to the dataset size.
func CrossValidate(make func() Classifier, d *Dataset, folds int, seed int64) (Confusion, error) {
	if err := checkBinary(d); err != nil {
		return Confusion{}, err
	}
	n := d.Len()
	if folds < 2 {
		return Confusion{}, fmt.Errorf("ml: need >= 2 folds, got %d", folds)
	}
	if folds > n {
		folds = n
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	var total Confusion
	for f := 0; f < folds; f++ {
		var train, test Dataset
		for i, idx := range perm {
			if i%folds == f {
				test.X = append(test.X, d.X[idx])
				test.Y = append(test.Y, d.Y[idx])
			} else {
				train.X = append(train.X, d.X[idx])
				train.Y = append(train.Y, d.Y[idx])
			}
		}
		if train.CountClass(0) == 0 || train.CountClass(1) == 0 {
			// Degenerate fold: skip (tiny or single-class datasets).
			continue
		}
		clf := make()
		if err := clf.Fit(&train); err != nil {
			return Confusion{}, err
		}
		m := Evaluate(clf, &test)
		total.TP += m.TP
		total.FP += m.FP
		total.TN += m.TN
		total.FN += m.FN
	}
	return total, nil
}

package ml

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionArithmetic(t *testing.T) {
	m := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if p := m.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if r := m.Recall(); math.Abs(r-8.0/13.0) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	wantF1 := 2 * 0.8 * (8.0 / 13.0) / (0.8 + 8.0/13.0)
	if f := m.F1(); math.Abs(f-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", f, wantF1)
	}
	if a := m.Accuracy(); math.Abs(a-0.93) > 1e-12 {
		t.Errorf("accuracy = %v", a)
	}
	if !strings.Contains(m.String(), "precision=0.800") {
		t.Errorf("String() = %q", m.String())
	}
	var zero Confusion
	if zero.Precision() != 0 || zero.Recall() != 0 || zero.F1() != 0 || zero.Accuracy() != 0 {
		t.Error("zero confusion should yield zero metrics")
	}
}

func TestEvaluate(t *testing.T) {
	train := blobs(21, 400, 4)
	svm := NewSVM(1)
	if err := svm.Fit(train); err != nil {
		t.Fatal(err)
	}
	test := blobs(22, 200, 4)
	m := Evaluate(svm, test)
	if m.TP+m.FP+m.TN+m.FN != test.Len() {
		t.Fatalf("confusion total %d != %d", m.TP+m.FP+m.TN+m.FN, test.Len())
	}
	if m.F1() < 0.85 {
		t.Errorf("F1 = %v on separable blobs", m.F1())
	}
}

func TestCrossValidate(t *testing.T) {
	d := blobs(23, 300, 4)
	m, err := CrossValidate(func() Classifier { return NewLogisticRegression(1) }, d, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TP + m.FP + m.TN + m.FN; got != d.Len() {
		t.Fatalf("CV covered %d of %d rows", got, d.Len())
	}
	if m.Accuracy() < 0.85 {
		t.Errorf("CV accuracy = %v", m.Accuracy())
	}
	// Deterministic.
	m2, err := CrossValidate(func() Classifier { return NewLogisticRegression(1) }, d, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m != m2 {
		t.Error("cross-validation not deterministic")
	}
	if _, err := CrossValidate(func() Classifier { return NewSVM(1) }, d, 1, 1); err == nil {
		t.Error("folds=1 accepted")
	}
	bad := &Dataset{X: [][]float64{{1}}, Y: []int{3}}
	if _, err := CrossValidate(func() Classifier { return NewSVM(1) }, bad, 2, 1); err == nil {
		t.Error("non-binary labels accepted")
	}
}

func TestCrossValidateDegenerateFolds(t *testing.T) {
	// Only 2 positives: some folds have single-class training sets and are
	// skipped without error.
	d := &Dataset{}
	for i := 0; i < 20; i++ {
		label := 0
		if i < 2 {
			label = 1
		}
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, label)
	}
	if _, err := CrossValidate(func() Classifier { return NewGaussianNB() }, d, 10, 3); err != nil {
		t.Fatalf("degenerate folds: %v", err)
	}
}

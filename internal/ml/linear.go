package ml

import (
	"math"
	"math/rand"
)

// SVM is a linear support vector machine trained by dual coordinate
// descent (the liblinear algorithm, Hsieh et al. 2008) on the L1-hinge
// loss, which is what the paper's scikit-learn classifiers [34] use under
// the hood. Unlike stochastic sub-gradient methods, the dual solver stays
// well-behaved under the severe class imbalance of link prediction training
// sets — the property the Figure 10 undersampling experiments depend on.
// The learned weight vector doubles as the feature-importance signal of
// Figure 12.
type SVM struct {
	// C is the misclassification cost (scikit's default C = 1).
	C float64
	// Balanced scales the per-class cost inversely to class frequency
	// (scikit's class_weight="balanced"). Without it the hinge objective of
	// a heavily undersampled-ratio training set is minimized by w → 0 and
	// the ranking degenerates; with it, additional negatives sharpen the
	// decision boundary, which is the behaviour behind the paper's Figure
	// 10 trend.
	Balanced bool
	// Epochs is the number of coordinate-descent passes.
	Epochs int
	// Seed drives the coordinate permutation order.
	Seed int64

	w   []float64
	b   float64
	std *Standardizer
}

// NewSVM returns an SVM with the defaults used across the experiments.
func NewSVM(seed int64) *SVM { return &SVM{C: 1, Balanced: true, Epochs: 40, Seed: seed} }

// Name implements Classifier.
func (s *SVM) Name() string { return "SVM" }

// Weights returns a copy of the learned feature weights (in original,
// unstandardized feature order), used for the SVM-coefficient analysis.
func (s *SVM) Weights() []float64 {
	out := make([]float64, len(s.w))
	copy(out, s.w)
	return out
}

// Fit implements Classifier by solving the dual problem
//
//	min_α ½ αᵀQα - Σα   s.t. 0 <= α_i <= C,  Q_ij = y_i y_j x_iᵀx_j
//
// by coordinate descent with random permutations, maintaining the primal
// w = Σ α_i y_i x_i incrementally. The bias is handled by augmenting each
// row with a constant feature (liblinear's bias trick).
func (s *SVM) Fit(d *Dataset) error {
	if err := checkBinary(d); err != nil {
		return err
	}
	s.std = FitStandardizer(d.X)
	x := s.std.Transform(d.X)
	n := len(x)
	f := len(x[0])
	c := s.C
	if c <= 0 {
		c = 1
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 40
	}
	// Per-class costs: balanced weighting scales each class inversely to
	// its frequency, normalized so the average cost stays C.
	cost := [2]float64{c, c}
	if s.Balanced {
		n0 := float64(d.CountClass(0))
		n1 := float64(d.CountClass(1))
		if n0 > 0 && n1 > 0 {
			cost[0] = c * float64(n) / (2 * n0)
			cost[1] = c * float64(n) / (2 * n1)
		}
	}
	w := make([]float64, f)
	var b float64
	alpha := make([]float64, n)
	qii := make([]float64, n)
	y := make([]float64, n)
	ci := make([]float64, n)
	for i, row := range x {
		qii[i] = dot(row, row) + 1 // +1 for the bias feature
		y[i] = float64(2*d.Y[i] - 1)
		ci[i] = cost[d.Y[i]]
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rng := rand.New(rand.NewSource(s.Seed))
	const tol = 1e-4
	for e := 0; e < epochs; e++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		maxStep := 0.0
		for _, i := range perm {
			if qii[i] == 0 {
				continue
			}
			g := y[i]*(dot(w, x[i])+b) - 1
			// Projected-gradient check for bound-constrained coordinates.
			pg := g
			switch {
			case alpha[i] == 0 && g > 0:
				pg = 0
			case alpha[i] == ci[i] && g < 0:
				pg = 0
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			ai := old - g/qii[i]
			if ai < 0 {
				ai = 0
			} else if ai > ci[i] {
				ai = ci[i]
			}
			if ai == old {
				continue
			}
			alpha[i] = ai
			step := (ai - old) * y[i]
			for j, v := range x[i] {
				w[j] += step * v
			}
			b += step
			if abs := math.Abs(ai - old); abs > maxStep {
				maxStep = abs
			}
		}
		if maxStep < tol {
			break
		}
	}
	s.w = w
	s.b = b
	return nil
}

// Score implements Classifier: the signed distance to the hyperplane.
func (s *SVM) Score(x []float64) float64 {
	row := s.std.TransformRow(x, nil)
	return dot(s.w, row) + s.b
}

// Predict implements Classifier.
func (s *SVM) Predict(x []float64) int {
	if s.Score(x) >= 0 {
		return 1
	}
	return 0
}

// LogisticRegression is an L2-regularized logistic regression trained with
// SGD.
type LogisticRegression struct {
	Lambda float64
	Epochs int
	LR     float64
	Seed   int64

	w   []float64
	b   float64
	std *Standardizer
}

// NewLogisticRegression returns an LR classifier with experiment defaults.
func NewLogisticRegression(seed int64) *LogisticRegression {
	return &LogisticRegression{Lambda: 1e-5, Epochs: 12, LR: 0.1, Seed: seed}
}

// Name implements Classifier.
func (l *LogisticRegression) Name() string { return "LR" }

// Fit implements Classifier.
func (l *LogisticRegression) Fit(d *Dataset) error {
	if err := checkBinary(d); err != nil {
		return err
	}
	l.std = FitStandardizer(d.X)
	x := l.std.Transform(d.X)
	n := len(x)
	l.w = make([]float64, len(x[0]))
	l.b = 0
	rng := rand.New(rand.NewSource(l.Seed))
	step := l.LR
	if step <= 0 {
		step = 0.1
	}
	for e := 0; e < max(l.Epochs, 1); e++ {
		eta := step / (1 + float64(e)/4)
		for iter := 0; iter < n; iter++ {
			i := rng.Intn(n)
			p := sigmoid(dot(l.w, x[i]) + l.b)
			g := p - float64(d.Y[i])
			for j, v := range x[i] {
				l.w[j] -= eta * (g*v + l.Lambda*l.w[j])
			}
			l.b -= eta * g
		}
	}
	return nil
}

// Score implements Classifier: the log-odds of the positive class.
func (l *LogisticRegression) Score(x []float64) float64 {
	return dot(l.w, l.std.TransformRow(x, nil)) + l.b
}

// Predict implements Classifier.
func (l *LogisticRegression) Predict(x []float64) int {
	if l.Score(x) >= 0 {
		return 1
	}
	return 0
}

// Probability returns P(y=1 | x).
func (l *LogisticRegression) Probability(x []float64) float64 { return sigmoid(l.Score(x)) }

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// GaussianNB is a Gaussian naive Bayes classifier: features are modeled as
// independent normals per class.
type GaussianNB struct {
	prior [2]float64
	mean  [2][]float64
	vari  [2][]float64
}

// NewGaussianNB returns an NB classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "NB" }

// Fit implements Classifier.
func (g *GaussianNB) Fit(d *Dataset) error {
	if err := checkBinary(d); err != nil {
		return err
	}
	f := len(d.X[0])
	var count [2]float64
	for c := 0; c < 2; c++ {
		g.mean[c] = make([]float64, f)
		g.vari[c] = make([]float64, f)
	}
	for i, row := range d.X {
		c := d.Y[i]
		count[c]++
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			count[c] = 1 // degenerate single-class training set
		}
		for j := range g.mean[c] {
			g.mean[c][j] /= count[c]
		}
	}
	for i, row := range d.X {
		c := d.Y[i]
		for j, v := range row {
			dlt := v - g.mean[c][j]
			g.vari[c][j] += dlt * dlt
		}
	}
	for c := 0; c < 2; c++ {
		for j := range g.vari[c] {
			g.vari[c][j] = g.vari[c][j]/count[c] + 1e-9
		}
	}
	total := count[0] + count[1]
	g.prior[0] = count[0] / total
	g.prior[1] = count[1] / total
	return nil
}

// Score implements Classifier: log P(1|x) - log P(0|x).
func (g *GaussianNB) Score(x []float64) float64 {
	var ll [2]float64
	for c := 0; c < 2; c++ {
		p := g.prior[c]
		if p <= 0 {
			p = 1e-12
		}
		ll[c] = math.Log(p)
		for j, v := range x {
			d := v - g.mean[c][j]
			ll[c] += -0.5*math.Log(2*math.Pi*g.vari[c][j]) - d*d/(2*g.vari[c][j])
		}
	}
	return ll[1] - ll[0]
}

// Predict implements Classifier.
func (g *GaussianNB) Predict(x []float64) int {
	if g.Score(x) >= 0 {
		return 1
	}
	return 0
}

package ml

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// blobs builds a 2-class Gaussian-blob dataset separated along a diagonal.
func blobs(seed int64, n int, gap float64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		y := i % 2
		cx := -gap / 2
		if y == 1 {
			cx = gap / 2
		}
		d.X = append(d.X, []float64{cx + rng.NormFloat64(), cx + rng.NormFloat64(), rng.NormFloat64()})
		d.Y = append(d.Y, y)
	}
	return d
}

// xor builds the classic non-linearly-separable dataset.
func xor(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		y := 0
		if (a > 0) != (b > 0) {
			y = 1
		}
		d.X = append(d.X, []float64{a, b})
		d.Y = append(d.Y, y)
	}
	return d
}

func TestStandardizer(t *testing.T) {
	x := [][]float64{{1, 10, 5}, {3, 10, 7}, {5, 10, 9}}
	s := FitStandardizer(x)
	out := s.Transform(x)
	for j := 0; j < 3; j++ {
		mean, varr := 0.0, 0.0
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			varr += d * d
		}
		if math.Abs(mean) > 1e-12 {
			t.Errorf("feature %d mean = %v", j, mean)
		}
		if j != 1 && math.Abs(varr/3-1) > 1e-12 {
			t.Errorf("feature %d variance = %v", j, varr/3)
		}
	}
	// Constant feature maps to zero, not NaN.
	if out[0][1] != 0 || math.IsNaN(out[0][1]) {
		t.Errorf("constant feature transformed to %v", out[0][1])
	}
}

func TestUndersample(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 10; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, 1)
	}
	for i := 0; i < 1000; i++ {
		d.X = append(d.X, []float64{float64(100 + i)})
		d.Y = append(d.Y, 0)
	}
	u := Undersample(d, 5, 3)
	if got := u.CountClass(1); got != 10 {
		t.Errorf("positives = %d, want all 10", got)
	}
	if got := u.CountClass(0); got != 50 {
		t.Errorf("negatives = %d, want 50", got)
	}
	// Deterministic.
	u2 := Undersample(d, 5, 3)
	for i := range u.X {
		if u.X[i][0] != u2.X[i][0] || u.Y[i] != u2.Y[i] {
			t.Fatal("undersampling not deterministic")
		}
	}
	// Clamp when negatives are scarce.
	small := &Dataset{X: [][]float64{{1}, {2}, {3}}, Y: []int{1, 0, 0}}
	c := Undersample(small, 100, 1)
	if c.Len() != 3 {
		t.Errorf("clamped size = %d, want 3", c.Len())
	}
}

func TestLinearClassifiersOnBlobs(t *testing.T) {
	train := blobs(1, 400, 4)
	test := blobs(2, 200, 4)
	for _, c := range []Classifier{NewSVM(7), NewLogisticRegression(7), NewGaussianNB()} {
		if err := c.Fit(train); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if acc := Accuracy(c, test); acc < 0.9 {
			t.Errorf("%s accuracy = %v, want >= 0.9", c.Name(), acc)
		}
	}
}

func TestSVMWeightsDirection(t *testing.T) {
	train := blobs(3, 400, 4)
	s := NewSVM(1)
	if err := s.Fit(train); err != nil {
		t.Fatal(err)
	}
	w := s.Weights()
	if len(w) != 3 {
		t.Fatalf("weights = %v", w)
	}
	// The first two features carry the signal (positive direction); the
	// third is noise with a much smaller |weight|.
	if w[0] <= 0 || w[1] <= 0 {
		t.Errorf("signal weights should be positive: %v", w)
	}
	if math.Abs(w[2]) > math.Abs(w[0])/2 {
		t.Errorf("noise weight %v not dominated by signal %v", w[2], w[0])
	}
}

func TestTreeAndForestOnXOR(t *testing.T) {
	train := xor(1, 600)
	test := xor(2, 300)
	tree := NewDecisionTree(5)
	if err := tree.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(tree, test); acc < 0.9 {
		t.Errorf("tree XOR accuracy = %v, want >= 0.9", acc)
	}
	rf := NewRandomForest(5)
	if err := rf.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(rf, test); acc < 0.9 {
		t.Errorf("forest XOR accuracy = %v, want >= 0.9", acc)
	}
	// Linear models cannot solve XOR — sanity check the fixture.
	svm := NewSVM(5)
	if err := svm.Fit(train); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(svm, test); acc > 0.75 {
		t.Errorf("SVM XOR accuracy = %v; fixture is not XOR-like", acc)
	}
}

func TestTreeMulticlass(t *testing.T) {
	// Three 1-D clusters.
	d := &Dataset{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		c := i % 3
		d.X = append(d.X, []float64{float64(c)*10 + rng.NormFloat64()})
		d.Y = append(d.Y, c)
	}
	tree := NewDecisionTree(1)
	if err := tree.FitMulti(d, 3); err != nil {
		t.Fatal(err)
	}
	right := 0
	for i := range d.X {
		if tree.PredictClass(d.X[i]) == d.Y[i] {
			right++
		}
	}
	if acc := float64(right) / float64(d.Len()); acc < 0.95 {
		t.Errorf("multiclass accuracy = %v", acc)
	}
	if err := tree.FitMulti(&Dataset{X: [][]float64{{1}}, Y: []int{5}}, 3); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestTreeRules(t *testing.T) {
	// Single perfect split on feature "size" at 5.
	d := &Dataset{
		X: [][]float64{{1}, {2}, {3}, {8}, {9}, {10}},
		Y: []int{0, 0, 0, 1, 1, 1},
	}
	tree := NewDecisionTree(1)
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	rules := tree.Rules([]string{"size"}, []string{"no", "yes"})
	if len(rules) != 2 {
		t.Fatalf("rules = %v", rules)
	}
	joined := strings.Join(rules, "\n")
	if !strings.Contains(joined, "size <= 5.5") || !strings.Contains(joined, "yes") {
		t.Errorf("rules missing expected split: %v", rules)
	}
	root := tree.Root()
	if root.Feature != 0 || root.Threshold != 5.5 {
		t.Errorf("root split = f%d @ %v", root.Feature, root.Threshold)
	}
}

func TestTreeScoreGranularity(t *testing.T) {
	// A pure leaf scores 1.0/0.0; mixed leaves score fractions.
	d := &Dataset{
		X: [][]float64{{1}, {1}, {1}, {10}, {10}, {10}, {10}},
		Y: []int{1, 1, 0, 0, 0, 0, 0},
	}
	tree := &DecisionTree{MaxDepth: 1, MinLeaf: 3, Seed: 1}
	if err := tree.Fit(d); err != nil {
		t.Fatal(err)
	}
	if s := tree.Score([]float64{1}); math.Abs(s-2.0/3.0) > 1e-12 {
		t.Errorf("mixed leaf score = %v, want 2/3", s)
	}
	if s := tree.Score([]float64{10}); s != 0 {
		t.Errorf("pure negative leaf score = %v", s)
	}
}

func TestClassifierDeterminism(t *testing.T) {
	train := blobs(9, 300, 3)
	probe := []float64{0.3, -0.4, 0.1}
	for _, mk := range []func() Classifier{
		func() Classifier { return NewSVM(11) },
		func() Classifier { return NewLogisticRegression(11) },
		func() Classifier { return NewGaussianNB() },
		func() Classifier { return NewDecisionTree(11) },
		func() Classifier { return NewRandomForest(11) },
	} {
		a, b := mk(), mk()
		if err := a.Fit(train); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(train); err != nil {
			t.Fatal(err)
		}
		if a.Score(probe) != b.Score(probe) {
			t.Errorf("%s not deterministic: %v vs %v", a.Name(), a.Score(probe), b.Score(probe))
		}
	}
}

func TestValidationErrors(t *testing.T) {
	bad := &Dataset{X: [][]float64{{1}, {2}}, Y: []int{0}}
	if err := bad.Validate(); err == nil {
		t.Error("shape mismatch accepted")
	}
	ragged := &Dataset{X: [][]float64{{1}, {2, 3}}, Y: []int{0, 1}}
	if err := ragged.Validate(); err == nil {
		t.Error("ragged rows accepted")
	}
	nonBinary := &Dataset{X: [][]float64{{1}}, Y: []int{2}}
	if err := NewSVM(1).Fit(nonBinary); err == nil {
		t.Error("non-binary labels accepted by SVM")
	}
	empty := &Dataset{}
	if err := empty.Validate(); err == nil {
		t.Error("empty dataset accepted")
	}
}

// Property: tree scores stay in [0,1] and predictions in {0,1} on random
// data.
func TestTreeBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(80)
		d := &Dataset{}
		for i := 0; i < n; i++ {
			d.X = append(d.X, []float64{rng.NormFloat64(), rng.NormFloat64()})
			d.Y = append(d.Y, rng.Intn(2))
		}
		tree := NewDecisionTree(seed)
		if err := tree.Fit(d); err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			x := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
			s := tree.Score(x)
			p := tree.Predict(x)
			if s < 0 || s > 1 || (p != 0 && p != 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: NB score is monotone in the evidence — moving a point toward
// the positive blob center increases the score.
func TestNBMonotoneQuick(t *testing.T) {
	train := blobs(13, 400, 4)
	nb := NewGaussianNB()
	if err := nb.Fit(train); err != nil {
		t.Fatal(err)
	}
	f := func(raw int8) bool {
		base := float64(raw) / 64
		a := nb.Score([]float64{base, base, 0})
		b := nb.Score([]float64{base + 0.5, base + 0.5, 0})
		return b > a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracyHelper(t *testing.T) {
	d := &Dataset{X: [][]float64{{-1}, {1}}, Y: []int{0, 1}}
	svm := NewSVM(1)
	if err := svm.Fit(&Dataset{X: [][]float64{{-2}, {-1}, {1}, {2}}, Y: []int{0, 0, 1, 1}}); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(svm, d); acc != 1 {
		t.Errorf("accuracy = %v, want 1", acc)
	}
	if acc := Accuracy(svm, &Dataset{}); acc != 0 {
		t.Errorf("empty accuracy = %v", acc)
	}
}

// Package gen synthesizes dynamic online-social-network traces that stand in
// for the proprietary Facebook, Renren and YouTube datasets of the paper
// (see DESIGN.md §1). The generator reproduces the structural and temporal
// properties the paper's results depend on:
//
//   - exponential daily growth in nodes and edges (Fig. 1);
//   - a tunable mix of triadic closure, preferential attachment and random
//     edges, controlling the 2-hop edge ratio λ₂ and its trend over time;
//   - friendship mode (positive degree assortativity, high clustering) vs
//     subscription mode (supernodes, negative assortativity);
//   - a node-activity lifecycle in which recently active nodes initiate a
//     disproportionate share of new edges, producing the idle-time and
//     common-neighbor-gap separations of Figs. 13-15.
//
// Every generator is fully deterministic given Config.Seed.
package gen

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
)

// Config parameterizes the dynamic-network model. The zero value is not
// useful; start from a preset (Facebook, Renren, YouTube) or fill every
// field.
type Config struct {
	// Name labels the resulting trace.
	Name string
	// Seed drives all randomness; equal seeds give identical traces.
	Seed int64
	// Days is the trace duration in days.
	Days int
	// InitialNodes and InitialEdges form the seed community generated
	// before day zero.
	InitialNodes int
	InitialEdges int
	// FinalNodes and FinalEdges are the totals at the end of the trace;
	// both nodes and edges arrive on exponential daily schedules
	// interpolating from the initial to the final counts.
	FinalNodes int
	FinalEdges int

	// PTriad, PPref are the probabilities that a new edge closes a 2-hop
	// pair (triadic closure) or attaches degree-proportionally; the
	// remainder of the probability mass creates uniform random edges.
	PTriad float64
	PPref  float64
	// TriadSlope linearly scales PTriad over the trace: at day d the
	// effective closure probability is PTriad * (1 + TriadSlope * d/Days),
	// clamped to [0, 0.98]. Negative values emulate the Facebook regional
	// subsampling effect (λ₂ decreasing over time); positive values emulate
	// the densification of Renren and YouTube.
	TriadSlope float64

	// PActiveReuse is the probability that a new edge is initiated by a
	// node from the recent-activity pool rather than a fresh draw. Higher
	// values yield burstier per-node edge creation.
	PActiveReuse float64
	// ActiveWindowDays bounds the recent-activity pool.
	ActiveWindowDays int

	// LifetimeDays is the mean active lifetime of a node (exponentially
	// distributed per node, refreshed a little by engagement). After its
	// lifetime a node churns: it stops initiating edges and is rarely
	// chosen as a partner. Churn is what strands unclosed, structurally
	// attractive node pairs in dormant regions — the §4.4 bias of static
	// similarity metrics (Fig. 8). Zero disables churn.
	LifetimeDays int

	// SupernodeCount designates the first SupernodeCount arrived nodes as
	// supernodes (subscription hubs). Zero disables subscription behaviour.
	SupernodeCount int
	// PSupernode is the probability that a new edge involves a supernode
	// endpoint (YouTube: ~0.4 of new edges touch the top 0.1% of nodes).
	PSupernode float64
}

// Validate reports configuration errors before generation starts.
func (c *Config) Validate() error {
	switch {
	case c.Days <= 0:
		return fmt.Errorf("gen: Days = %d, need > 0", c.Days)
	case c.InitialNodes < 2:
		return fmt.Errorf("gen: InitialNodes = %d, need >= 2", c.InitialNodes)
	case c.FinalNodes < c.InitialNodes:
		return fmt.Errorf("gen: FinalNodes %d < InitialNodes %d", c.FinalNodes, c.InitialNodes)
	case c.FinalEdges < c.InitialEdges:
		return fmt.Errorf("gen: FinalEdges %d < InitialEdges %d", c.FinalEdges, c.InitialEdges)
	case c.PTriad < 0 || c.PPref < 0 || c.PTriad+c.PPref > 1:
		return fmt.Errorf("gen: mechanism mix PTriad=%v PPref=%v invalid", c.PTriad, c.PPref)
	case c.PActiveReuse < 0 || c.PActiveReuse > 1:
		return fmt.Errorf("gen: PActiveReuse = %v out of [0,1]", c.PActiveReuse)
	case c.SupernodeCount > c.InitialNodes:
		return fmt.Errorf("gen: SupernodeCount %d exceeds InitialNodes %d", c.SupernodeCount, c.InitialNodes)
	}
	maxInit := int64(c.InitialNodes) * int64(c.InitialNodes-1) / 2
	if int64(c.InitialEdges) > maxInit {
		return fmt.Errorf("gen: InitialEdges %d exceeds complete graph on %d nodes", c.InitialEdges, c.InitialNodes)
	}
	maxFinal := int64(c.FinalNodes) * int64(c.FinalNodes-1) / 2
	if int64(c.FinalEdges) > maxFinal/2 {
		return fmt.Errorf("gen: FinalEdges %d too dense for %d nodes", c.FinalEdges, c.FinalNodes)
	}
	return nil
}

// Scaled returns a copy of the config with node and edge counts multiplied
// by f (minimum sizes preserved). Tests use small scales; benchmarks and the
// experiment CLI use 1.0.
func (c Config) Scaled(f float64) Config {
	scale := func(v int, lo int) int {
		s := int(math.Round(float64(v) * f))
		if s < lo {
			s = lo
		}
		return s
	}
	c.InitialNodes = scale(c.InitialNodes, 16)
	c.InitialEdges = scale(c.InitialEdges, 24)
	c.FinalNodes = scale(c.FinalNodes, c.InitialNodes)
	c.FinalEdges = scale(c.FinalEdges, c.InitialEdges)
	if c.SupernodeCount > 0 {
		c.SupernodeCount = scale(c.SupernodeCount, 2)
		if c.SupernodeCount > c.InitialNodes {
			c.SupernodeCount = c.InitialNodes
		}
	}
	return c
}

// generator holds the mutable growth state.
type generator struct {
	cfg Config
	rng *rand.Rand

	adj       [][]graph.NodeID // unsorted adjacency
	edgeSet   map[uint64]struct{}
	endpoints []graph.NodeID // flat endpoint list for degree-proportional draws
	arrival   []int64
	edges     []graph.Edge

	// recent is a FIFO of recent edge initiators with their times.
	recent     []activity
	supernodes []graph.NodeID

	// lastEdge[v] is the time of v's most recent edge (MinInt64 if none);
	// activeUntil[v] is the end of v's engagement lifetime;
	// stamp/stampGen implement O(degree) common-neighbor counting.
	lastEdge    []int64
	activeUntil []int64
	stamp       []int64
	stampGen    int64
}

type activity struct {
	node graph.NodeID
	time int64
}

func pairKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Generate runs the model and returns a validated trace.
func Generate(cfg Config) (*graph.Trace, error) {
	return GenerateCtx(context.Background(), cfg)
}

// GenerateCtx is Generate with an obs span parented by ctx, so trace
// synthesis shows up as the "generation" stage of a run's timing tree.
func GenerateCtx(ctx context.Context, cfg Config) (*graph.Trace, error) {
	_, sp := obs.StartSpan(ctx, "gen/"+cfg.Name)
	defer sp.End()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		edgeSet: make(map[uint64]struct{}, cfg.FinalEdges),
	}
	g.seedCommunity()
	g.grow()
	tr := &graph.Trace{Name: cfg.Name, Arrival: g.arrival, Edges: g.edges}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("gen: generated invalid trace: %w", err)
	}
	if obs.Enabled() {
		obs.GetCounter("gen/nodes_generated").Add(int64(tr.NumNodes()))
		obs.GetCounter("gen/edges_generated").Add(int64(tr.NumEdges()))
	}
	return tr, nil
}

// MustGenerate is Generate that panics on error; presets are known valid, so
// examples and benchmarks use it freely.
func MustGenerate(cfg Config) *graph.Trace {
	return MustGenerateCtx(context.Background(), cfg)
}

// MustGenerateCtx is GenerateCtx that panics on error.
func MustGenerateCtx(ctx context.Context, cfg Config) *graph.Trace {
	tr, err := GenerateCtx(ctx, cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

func (g *generator) addNode(tm int64) graph.NodeID {
	id := graph.NodeID(len(g.arrival))
	g.arrival = append(g.arrival, tm)
	g.adj = append(g.adj, nil)
	g.lastEdge = append(g.lastEdge, math.MinInt64)
	g.activeUntil = append(g.activeUntil, g.lifetimeFrom(tm))
	g.stamp = append(g.stamp, 0)
	return id
}

// lifetimeFrom draws an exponentially distributed active lifetime starting
// at tm. With churn disabled every node stays active forever.
func (g *generator) lifetimeFrom(tm int64) int64 {
	if g.cfg.LifetimeDays <= 0 {
		return math.MaxInt64
	}
	d := g.rng.ExpFloat64() * float64(g.cfg.LifetimeDays) * float64(graph.Day)
	return tm + int64(d)
}

// isActive reports whether v is still within its engagement lifetime at tm.
// Supernodes never churn ("super nodes remain super active", §4.2).
func (g *generator) isActive(v graph.NodeID, tm int64) bool {
	return g.activeUntil[v] >= tm || int(v) < len(g.supernodes)
}

func (g *generator) addEdge(u, v graph.NodeID, tm int64) bool {
	if u == v {
		return false
	}
	key := pairKey(u, v)
	if _, dup := g.edgeSet[key]; dup {
		return false
	}
	g.edgeSet[key] = struct{}{}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.endpoints = append(g.endpoints, u, v)
	g.edges = append(g.edges, graph.Edge{U: u, V: v, Time: tm})
	g.lastEdge[u] = tm
	g.lastEdge[v] = tm
	// Engagement mildly refreshes the lifetime, creating bursty sessions
	// rather than one fixed window.
	if g.cfg.LifetimeDays > 0 {
		ext := tm + int64(g.rng.ExpFloat64()*float64(g.cfg.LifetimeDays)*float64(graph.Day)/4)
		if ext > g.activeUntil[u] && g.activeUntil[u] >= tm {
			g.activeUntil[u] = ext
		}
		if ext > g.activeUntil[v] && g.activeUntil[v] >= tm {
			g.activeUntil[v] = ext
		}
	}
	g.noteActive(u, tm)
	g.noteActive(v, tm)
	return true
}

func (g *generator) noteActive(v graph.NodeID, tm int64) {
	g.recent = append(g.recent, activity{node: v, time: tm})
	window := int64(g.cfg.ActiveWindowDays) * graph.Day
	if window <= 0 {
		window = 7 * graph.Day
	}
	for len(g.recent) > 0 && g.recent[0].time < tm-window {
		g.recent = g.recent[1:]
	}
	// Bound memory: the pool never needs more entries than a few times the
	// largest daily edge budget.
	if limit := 4 * g.cfg.FinalEdges / max(g.cfg.Days, 1); limit > 64 && len(g.recent) > limit {
		g.recent = g.recent[len(g.recent)-limit:]
	}
}

// seedCommunity builds the pre-trace network: InitialNodes nodes joined at
// time zero (spread over the 10 "days" before day 0 for idle-time realism)
// connected by a small-world style base of InitialEdges edges.
func (g *generator) seedCommunity() {
	n := g.cfg.InitialNodes
	preSpan := int64(10) * graph.Day
	for i := 0; i < n; i++ {
		g.addNode(-preSpan)
	}
	if g.cfg.SupernodeCount > 0 {
		g.supernodes = make([]graph.NodeID, g.cfg.SupernodeCount)
		for i := range g.supernodes {
			g.supernodes[i] = graph.NodeID(i)
		}
	}
	// Ring base guarantees connectivity of the seed.
	tm := -preSpan
	step := preSpan / int64(max(g.cfg.InitialEdges, 1))
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i++ {
		g.addEdge(graph.NodeID(i), graph.NodeID((i+1)%n), tm)
		tm += step
	}
	for len(g.edges) < g.cfg.InitialEdges {
		u := graph.NodeID(g.rng.Intn(n))
		var v graph.NodeID
		if len(g.supernodes) > 0 && g.rng.Float64() < g.cfg.PSupernode {
			v = g.supernodes[g.rng.Intn(len(g.supernodes))]
		} else if g.rng.Float64() < g.cfg.PTriad {
			v = g.twoHop(u)
		} else {
			v = graph.NodeID(g.rng.Intn(n))
		}
		if v < 0 {
			v = graph.NodeID(g.rng.Intn(n))
		}
		if g.addEdge(u, v, tm) {
			tm += step
		}
	}
	// Normalize: seed edges all timestamped before 0; clamp any overshoot.
	for i := range g.edges {
		if g.edges[i].Time > 0 {
			g.edges[i].Time = 0
		}
	}
}

// dailyBudget returns per-day counts interpolating exponentially from start
// to end totals across cfg.Days days.
func dailyBudget(start, end, days int) []int {
	out := make([]int, days)
	if end <= start {
		return out
	}
	r := math.Log(float64(end)/float64(start)) / float64(days)
	prev := float64(start)
	total := 0
	for d := 0; d < days; d++ {
		next := float64(start) * math.Exp(r*float64(d+1))
		out[d] = int(math.Round(next - prev))
		prev = next
		total += out[d]
	}
	// Fix rounding drift on the final day.
	out[days-1] += (end - start) - total
	if out[days-1] < 0 {
		out[days-1] = 0
	}
	return out
}

func (g *generator) grow() {
	days := g.cfg.Days
	nodeBudget := dailyBudget(g.cfg.InitialNodes, g.cfg.FinalNodes, days)
	edgeBudget := dailyBudget(g.cfg.InitialEdges, g.cfg.FinalEdges, days)
	for d := 0; d < days; d++ {
		dayStart := int64(d) * graph.Day
		nNew, eNew := nodeBudget[d], edgeBudget[d]
		// Newcomer attachment consumes one edge each, so draw those from
		// the day's edge budget to keep total edge counts on target.
		eNew -= nNew
		if eNew < 0 {
			eNew = 0
		}
		// Interleave node arrivals and edge events uniformly through the day.
		events := nNew + eNew
		if events == 0 {
			continue
		}
		times := make([]int64, events)
		for i := range times {
			times[i] = dayStart + int64(g.rng.Int63n(graph.Day))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		// Node arrivals take the earliest nNew slots spread across the day:
		// interleave deterministically by ratio.
		ei := 0
		ni := 0
		for i := 0; i < events; i++ {
			takeNode := ni < nNew && (eNew == 0 || ni*eNew <= ei*nNew)
			if takeNode {
				v := g.addNode(times[i])
				g.attachNewcomer(v, times[i], d)
				ni++
			} else {
				g.createEdge(times[i], d)
				ei++
			}
		}
	}
	sort.SliceStable(g.edges, func(i, j int) bool { return g.edges[i].Time < g.edges[j].Time })
}

// attachNewcomer connects a newly arrived node. In subscription mode
// newcomers predominantly follow supernodes; in friendship mode they attach
// preferentially and then immediately participate in the activity pool.
func (g *generator) attachNewcomer(v graph.NodeID, tm int64, day int) {
	var u graph.NodeID = -1
	if len(g.supernodes) > 0 && g.rng.Float64() < g.cfg.PSupernode {
		u = g.supernodes[g.rng.Intn(len(g.supernodes))]
	} else if len(g.endpoints) > 0 {
		u = g.endpoints[g.rng.Intn(len(g.endpoints))]
	}
	if u < 0 || u == v {
		u = graph.NodeID(g.rng.Intn(len(g.arrival)))
	}
	if !g.addEdge(v, u, tm) {
		// Rare collision; fall back to a uniform partner.
		for tries := 0; tries < 8; tries++ {
			w := graph.NodeID(g.rng.Intn(len(g.arrival)))
			if g.addEdge(v, w, tm) {
				return
			}
		}
	}
}

// effectivePTriad applies the TriadSlope trend.
func (g *generator) effectivePTriad(day int) float64 {
	p := g.cfg.PTriad * (1 + g.cfg.TriadSlope*float64(day)/float64(g.cfg.Days))
	return math.Max(0, math.Min(0.98, p))
}

// createEdge produces one link-creation event at time tm.
func (g *generator) createEdge(tm int64, day int) {
	for tries := 0; tries < 24; tries++ {
		u := g.pickInitiator(tm)
		v := g.pickTarget(u, tm, day)
		if v >= 0 && g.addEdge(u, v, tm) {
			return
		}
	}
	// Dense corner: fall back to exhaustive-ish random pairs so the edge
	// budget is met even late in small graphs.
	n := len(g.arrival)
	for tries := 0; tries < 200; tries++ {
		u := graph.NodeID(g.rng.Intn(n))
		v := graph.NodeID(g.rng.Intn(n))
		if g.addEdge(u, v, tm) {
			return
		}
	}
}

// pickInitiator draws the node that initiates a new edge, biased toward
// recently active nodes (the paper's node-activeness observation, §6.1).
// In friendship mode the fallback draw is uniform: link creation requires
// "joint efforts from both users" (§4.2), so degree alone must not make a
// node an initiator — this is what makes Preferential Attachment a poor
// predictor on Facebook/Renren-style networks, as the paper observes. In
// subscription mode (supernodes configured) the fallback is degree-biased,
// reflecting that popular channels keep attracting and creating links.
func (g *generator) pickInitiator(tm int64) graph.NodeID {
	if len(g.recent) > 0 && g.rng.Float64() < g.cfg.PActiveReuse {
		return g.recent[g.rng.Intn(len(g.recent))].node
	}
	if len(g.supernodes) > 0 {
		if g.rng.Float64() < g.cfg.PSupernode {
			return g.supernodes[g.rng.Intn(len(g.supernodes))]
		}
		if len(g.endpoints) > 0 && g.rng.Float64() < 0.5 {
			return g.endpoints[g.rng.Intn(len(g.endpoints))]
		}
	}
	return g.pickNode(tm)
}

// pickNode draws a node with a bias toward recent arrivals and active
// nodes: user engagement decays with account age (churn), so older regions
// of the graph stop growing. This aging leaves long-standing unclosed 2-hop
// pairs behind — exactly the dormant, structurally attractive pairs that
// static similarity metrics over-predict (Fig. 8).
func (g *generator) pickNode(tm int64) graph.NodeID {
	n := len(g.arrival)
	for tries := 0; tries < 6; tries++ {
		var v graph.NodeID
		if young := n / 4; young > 0 && g.rng.Float64() < 0.5 {
			v = graph.NodeID(n - 1 - g.rng.Intn(young))
		} else {
			v = graph.NodeID(g.rng.Intn(n))
		}
		if g.isActive(v, tm) {
			return v
		}
	}
	return graph.NodeID(g.rng.Intn(n))
}

// pickTarget draws the other endpoint according to the mechanism mix.
// Returns -1 when the chosen mechanism has no valid candidate. Targets are
// also biased toward recently active nodes: both endpoints of real new
// edges tend to be recently active (§6.1, Figs. 13-14), which is what the
// static similarity metrics cannot see (Fig. 8).
func (g *generator) pickTarget(u graph.NodeID, tm int64, day int) graph.NodeID {
	if len(g.supernodes) > 0 && g.rng.Float64() < g.cfg.PSupernode {
		return g.supernodes[g.rng.Intn(len(g.supernodes))]
	}
	roll := g.rng.Float64()
	switch {
	case roll < g.effectivePTriad(day):
		return g.twoHop(u)
	case roll < g.effectivePTriad(day)+g.cfg.PPref:
		if len(g.endpoints) == 0 {
			return -1
		}
		v := g.endpoints[g.rng.Intn(len(g.endpoints))]
		// Friendship requires consent from both sides: two already-popular
		// users rarely add each other, so hub-hub preferential pairs are
		// resampled once toward an ordinary partner (§4.2's PA discussion).
		if len(g.supernodes) == 0 && len(g.adj[u]) > 24 && len(g.adj[v]) > 24 {
			return g.pickNode(g.lastEdge[u])
		}
		return v
	default:
		// Random-partner edges still prefer recently active partners half
		// the time: link creation requires attention from both sides.
		if len(g.recent) > 0 && g.rng.Float64() < 0.5 {
			return g.recent[g.rng.Intn(len(g.recent))].node
		}
		return g.pickNode(tm)
	}
}

// twoHop samples candidate 2-hop neighbors of u (neighbor of a neighbor)
// and closes the triad with the best of them, preferring candidates with
// many common neighbors and recent activity. Sampling via a random
// neighbor's neighbor already weights candidates by path count; the
// best-of-candidates selection makes the closure probability grow
// superlinearly with shared neighborhood size — the empirical property
// (triads with many mutual friends close first, recency matters) that
// gives the common-neighbor metric family its predictive power and that
// Figs. 8 and 13-15 measure.
func (g *generator) twoHop(u graph.NodeID) graph.NodeID {
	if len(g.adj[u]) == 0 {
		return -1
	}
	best := graph.NodeID(-1)
	bestScore := -1.0
	for tries := 0; tries < 16; tries++ {
		w := g.adj[u][g.rng.Intn(len(g.adj[u]))]
		if len(g.adj[w]) == 0 {
			continue
		}
		v := g.adj[w][g.rng.Intn(len(g.adj[w]))]
		if v == u {
			continue
		}
		if _, dup := g.edgeSet[pairKey(u, v)]; dup {
			continue
		}
		// Shared-friend count drives closure, but a busy candidate's
		// attention is divided across its whole neighborhood — the
		// resource-allocation effect. The damping keeps hub-hub closures
		// rare, so degree product alone (PA) stays a poor predictor on
		// friendship networks, matching §4.2.
		score := float64(g.commonCount(u, v)) / math.Pow(1+float64(len(g.adj[v])), 0.75)
		if g.lastEdge[v] >= g.lastEdge[u]-int64(g.cfg.ActiveWindowDays)*graph.Day {
			score += 1.5
		}
		// Mild noise keeps the choice among near-ties stochastic, so the
		// trace stays hard to predict pair-exactly (Table 4's low absolute
		// accuracy).
		score += 0.6 * g.rng.Float64()
		if score > bestScore {
			best, bestScore = v, score
		}
	}
	return best
}

// commonCount counts common neighbors between u and v on the (unsorted)
// working adjacency, using a stamp array reused across calls.
func (g *generator) commonCount(u, v graph.NodeID) int {
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	g.stampGen++
	for _, w := range g.adj[u] {
		g.stamp[w] = g.stampGen
	}
	n := 0
	for _, w := range g.adj[v] {
		if g.stamp[w] == g.stampGen {
			n++
		}
	}
	return n
}

package gen

import (
	"testing"

	"linkpred/internal/analysis"
	"linkpred/internal/graph"
)

func TestValidate(t *testing.T) {
	ok := Facebook(1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("facebook preset invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"days", func(c *Config) { c.Days = 0 }},
		{"initial nodes", func(c *Config) { c.InitialNodes = 1 }},
		{"final nodes", func(c *Config) { c.FinalNodes = c.InitialNodes - 1 }},
		{"final edges", func(c *Config) { c.FinalEdges = c.InitialEdges - 1 }},
		{"mix", func(c *Config) { c.PTriad = 0.9; c.PPref = 0.9 }},
		{"reuse", func(c *Config) { c.PActiveReuse = 1.5 }},
		{"supernodes", func(c *Config) { c.SupernodeCount = c.InitialNodes + 1 }},
		{"too dense init", func(c *Config) { c.InitialNodes = 4; c.InitialEdges = 10 }},
		{"too dense final", func(c *Config) { c.FinalNodes = 20; c.FinalEdges = 150 }},
	}
	for _, tc := range cases {
		cfg := Facebook(1)
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Facebook(42).Scaled(0.15)
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("non-deterministic sizes: %d/%d vs %d/%d",
			a.NumNodes(), a.NumEdges(), b.NumNodes(), b.NumEdges())
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	c := MustGenerate(YouTube(43).Scaled(0.15))
	if c.NumEdges() == a.NumEdges() && c.NumNodes() == a.NumNodes() {
		t.Error("different presets produced identical sizes (suspicious)")
	}
}

func TestGenerateSizes(t *testing.T) {
	for _, cfg := range Presets(7) {
		cfg = cfg.Scaled(0.2)
		tr := MustGenerate(cfg)
		if got, want := tr.NumNodes(), cfg.FinalNodes; got < want*9/10 || got > want*11/10 {
			t.Errorf("%s: nodes = %d, want ≈%d", cfg.Name, got, want)
		}
		if got, want := tr.NumEdges(), cfg.FinalEdges; got < want*9/10 || got > want*11/10 {
			t.Errorf("%s: edges = %d, want ≈%d", cfg.Name, got, want)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
		cuts := tr.Cuts(DefaultDelta(cfg))
		if len(cuts) < 15 {
			t.Errorf("%s: only %d snapshots, paper methodology needs >15", cfg.Name, len(cuts))
		}
	}
}

func TestExponentialDailyGrowth(t *testing.T) {
	// Fig. 1 reproduction sanity: daily edge counts in the second half of
	// the trace exceed those of the first half.
	tr := MustGenerate(Renren(11).Scaled(0.2))
	mid := tr.Edges[0].Time + tr.Duration()/2
	first, second := 0, 0
	for _, e := range tr.Edges {
		if e.Time <= 0 {
			continue // seed community
		}
		if e.Time < mid {
			first++
		} else {
			second++
		}
	}
	if second <= first {
		t.Errorf("edge growth not accelerating: first half %d, second half %d", first, second)
	}
}

func TestAssortativitySigns(t *testing.T) {
	fb := MustGenerate(Facebook(3).Scaled(0.25))
	yt := MustGenerate(YouTube(3).Scaled(0.25))
	gFB := fb.SnapshotAtEdge(fb.NumEdges())
	gYT := yt.SnapshotAtEdge(yt.NumEdges())
	aFB := analysis.Assortativity(gFB)
	aYT := analysis.Assortativity(gYT)
	if aYT >= 0 {
		t.Errorf("youtube assortativity = %v, want negative (subscription structure)", aYT)
	}
	if aFB <= aYT {
		t.Errorf("facebook assortativity %v should exceed youtube %v", aFB, aYT)
	}
}

func TestYouTubeSupernodeShare(t *testing.T) {
	cfg := YouTube(5).Scaled(0.25)
	tr := MustGenerate(cfg)
	super := int32(cfg.SupernodeCount)
	touch := 0
	grown := 0
	for _, e := range tr.Edges {
		if e.Time <= 0 {
			continue
		}
		grown++
		if e.U < super || e.V < super {
			touch++
		}
	}
	share := float64(touch) / float64(grown)
	// Paper: >40% of new edges involve the top 0.1% of YouTube nodes.
	if share < 0.30 {
		t.Errorf("supernode edge share = %v, want >= 0.30", share)
	}
	// And the vast majority of nodes stay low degree (~80% with degree <= 3).
	g := tr.SnapshotAtEdge(tr.NumEdges())
	low := 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(graph.NodeID(v)) <= 3 {
			low++
		}
	}
	if f := float64(low) / float64(g.NumNodes()); f < 0.55 {
		t.Errorf("low-degree fraction = %v, want >= 0.55", f)
	}
}

func TestLambda2Trends(t *testing.T) {
	// Renren: λ₂ increases with growth; Facebook: decreases (§4.2).
	check := func(cfg Config, wantIncreasing bool) {
		t.Helper()
		tr := MustGenerate(cfg.Scaled(0.25))
		cuts := tr.Cuts(DefaultDelta(cfg.Scaled(0.25)))
		if len(cuts) < 6 {
			t.Fatalf("%s: too few cuts", cfg.Name)
		}
		l2 := func(i int) float64 {
			prev := tr.SnapshotAtEdge(cuts[i].EdgeCount)
			return analysis.Lambda2(prev, tr.NewEdgesBetween(cuts[i], cuts[i+1]))
		}
		// Compare early vs late averages (skip the very first transition,
		// which the paper notes has a spike).
		early := (l2(1) + l2(2)) / 2
		n := len(cuts)
		late := (l2(n-3) + l2(n-2)) / 2
		if wantIncreasing && late <= early {
			t.Errorf("%s: λ₂ early=%v late=%v, want increasing", cfg.Name, early, late)
		}
		if !wantIncreasing && late >= early {
			t.Errorf("%s: λ₂ early=%v late=%v, want decreasing", cfg.Name, early, late)
		}
	}
	check(Renren(21), true)
	check(Facebook(21), false)
}

func TestScaled(t *testing.T) {
	cfg := Renren(1)
	s := cfg.Scaled(0.1)
	if s.FinalNodes >= cfg.FinalNodes || s.FinalEdges >= cfg.FinalEdges {
		t.Errorf("Scaled(0.1) did not shrink: %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("scaled config invalid: %v", err)
	}
	tiny := cfg.Scaled(0.0001)
	if tiny.InitialNodes < 16 {
		t.Errorf("scale floor violated: %+v", tiny)
	}
}

func TestScalePresets(t *testing.T) {
	for _, tc := range []struct {
		cfg        Config
		name       string
		finalNodes int
	}{
		{Renren100K(1), "renren-100k", 104000},
		{Renren1M(1), "renren-1m", 1040000},
	} {
		if tc.cfg.Name != tc.name {
			t.Errorf("preset name = %q, want %q", tc.cfg.Name, tc.name)
		}
		if tc.cfg.FinalNodes != tc.finalNodes {
			t.Errorf("%s FinalNodes = %d, want %d", tc.name, tc.cfg.FinalNodes, tc.finalNodes)
		}
		if err := tc.cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tc.name, err)
		}
		// The distinct Name must still resolve a sane snapshot delta
		// (>15 snapshots, like the paper's rule) through DefaultDelta.
		if d := DefaultDelta(tc.cfg); d <= 0 || tc.cfg.FinalEdges/d < 15 {
			t.Errorf("%s DefaultDelta = %d (%d snapshots)", tc.name, d, tc.cfg.FinalEdges/d)
		}
	}
}

func TestDailyBudget(t *testing.T) {
	b := dailyBudget(100, 1000, 30)
	total := 0
	for _, v := range b {
		if v < 0 {
			t.Fatalf("negative daily budget: %v", b)
		}
		total += v
	}
	if total != 900 {
		t.Fatalf("budget total = %d, want 900", total)
	}
	if b[29] < b[0] {
		t.Errorf("budget not growing: first=%d last=%d", b[0], b[29])
	}
	if got := dailyBudget(100, 100, 10); got[0] != 0 {
		t.Errorf("flat budget should be all zeros, got %v", got)
	}
}

// TestChurnCreatesDormantMass verifies the engagement lifecycle: by the end
// of the trace a large share of older nodes are dormant (idle > 30 days),
// the precondition for the paper's Fig. 8 dormancy-bias observation.
func TestChurnCreatesDormantMass(t *testing.T) {
	cfg := Renren(29).Scaled(0.2)
	tr := MustGenerate(cfg)
	end := tr.Edges[len(tr.Edges)-1].Time
	last := make([]int64, tr.NumNodes())
	for i := range last {
		last[i] = -1 << 62
	}
	for _, e := range tr.Edges {
		last[e.U] = e.Time
		last[e.V] = e.Time
	}
	// Among the oldest half of nodes, a substantial fraction is dormant.
	dormant, total := 0, 0
	for v := 0; v < tr.NumNodes()/2; v++ {
		total++
		if end-last[v] > 30*graph.Day {
			dormant++
		}
	}
	if f := float64(dormant) / float64(total); f < 0.2 {
		t.Errorf("dormant fraction of old nodes = %v, want >= 0.2 (churn missing)", f)
	}
	// Churn disabled: everyone stays comparatively active.
	noChurn := cfg
	noChurn.LifetimeDays = 0
	tr2 := MustGenerate(noChurn)
	end2 := tr2.Edges[len(tr2.Edges)-1].Time
	last2 := make([]int64, tr2.NumNodes())
	for _, e := range tr2.Edges {
		last2[e.U] = e.Time
		last2[e.V] = e.Time
	}
	dormant2, total2 := 0, 0
	for v := 0; v < tr2.NumNodes()/2; v++ {
		total2++
		if end2-last2[v] > 30*graph.Day {
			dormant2++
		}
	}
	if float64(dormant2)/float64(total2) >= float64(dormant)/float64(total) {
		t.Errorf("disabling churn did not reduce dormancy: %d/%d vs %d/%d",
			dormant2, total2, dormant, total)
	}
}

package gen

// The three presets are scaled-down analogues of the paper's Table 2
// datasets. The absolute sizes are ~20-1000x smaller than the originals so
// the full experiment suite runs on one machine, but the *relative*
// structural properties the paper's analysis depends on are preserved:
//
//   - Facebook: regional friendship network. Dense, positively assortative,
//     triadic-closure dominated, but with a *declining* 2-hop edge ratio λ₂
//     over time (the regional-subsampling artifact of §4.2), emulated with a
//     negative TriadSlope.
//   - Renren: non-sampled friendship network. The fastest grower, densest,
//     with λ₂ *increasing* over time (densification).
//   - YouTube: subscription network. Sparse (~80% of nodes end with degree
//     ≤ 3), supernode-driven (top ~0.1% of nodes participate in ~40% of new
//     edges), negatively assortative.
//
// Snapshot deltas follow the paper's rule (§3.2): enough snapshots (>15)
// with bounded wall-clock per transition. DefaultDelta exposes the delta
// used for each preset by the experiment harness.

// Facebook returns the Facebook (New Orleans) analogue configuration.
func Facebook(seed int64) Config {
	return Config{
		Name:             "facebook",
		Seed:             seed,
		Days:             365,
		InitialNodes:     400,
		InitialEdges:     2400,
		FinalNodes:       3000,
		FinalEdges:       26000,
		PTriad:           0.78,
		PPref:            0.06,
		TriadSlope:       -0.45,
		PActiveReuse:     0.55,
		ActiveWindowDays: 15,
		LifetimeDays:     60,
	}
}

// Renren returns the Renren analogue configuration (non-sampled, fastest
// growth, densest).
func Renren(seed int64) Config {
	return Config{
		Name:             "renren",
		Seed:             seed,
		Days:             365,
		InitialNodes:     700,
		InitialEdges:     5600,
		FinalNodes:       5200,
		FinalEdges:       60000,
		PTriad:           0.62,
		PPref:            0.18,
		TriadSlope:       0.45,
		PActiveReuse:     0.65,
		ActiveWindowDays: 7,
		LifetimeDays:     45,
	}
}

// YouTube returns the YouTube analogue configuration (subscription network
// with supernodes and negative assortativity).
func YouTube(seed int64) Config {
	return Config{
		Name:             "youtube",
		Seed:             seed,
		Days:             150,
		InitialNodes:     1200,
		InitialEdges:     2600,
		FinalNodes:       7000,
		FinalEdges:       19000,
		PTriad:           0.22,
		PPref:            0.48,
		TriadSlope:       0.50,
		PActiveReuse:     0.50,
		ActiveWindowDays: 7,
		LifetimeDays:     30,
		SupernodeCount:   8,
		PSupernode:       0.40,
	}
}

// Renren100K returns the 10⁵-node Renren analogue (~104K final nodes,
// ~1.2M final edges): the Renren growth mechanics scaled 20x, sized to
// exercise the candidate-generation engine's scaling behavior on one
// machine. The paper's real Renren snapshots span 1.4M-10.5M nodes; this
// preset is the single-machine benchmark point between the unit-test scale
// and Renren1M.
func Renren100K(seed int64) Config {
	c := Renren(seed).Scaled(20)
	c.Name = "renren-100k"
	return c
}

// Renren1M returns the 10⁶-node Renren analogue (~1.04M final nodes, ~12M
// final edges), the largest generated benchmark preset — comparable in node
// count to the paper's earliest full Renren snapshot.
func Renren1M(seed int64) Config {
	c := Renren(seed).Scaled(200)
	c.Name = "renren-1m"
	return c
}

// DefaultDelta returns the snapshot delta used by the experiment harness for
// a preset, chosen so each trace yields a Table 2-like number of snapshots
// (Facebook 31, YouTube 21, Renren 17).
func DefaultDelta(cfg Config) int {
	switch cfg.Name {
	case "facebook":
		return cfg.FinalEdges / 31
	case "youtube":
		return cfg.FinalEdges / 21
	case "renren":
		return cfg.FinalEdges / 17
	default:
		return cfg.FinalEdges / 20
	}
}

// Presets returns the three paper-analogue configurations in the order the
// paper tabulates them (Facebook, YouTube, Renren).
func Presets(seed int64) []Config {
	return []Config{Facebook(seed), YouTube(seed + 1), Renren(seed + 2)}
}

package temporal

import (
	"math"
	"sort"

	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// This file implements the weighted-metric extension the paper lists as
// future work (§7, citing Lü & Zhou's weighted link prediction [27]). Our
// traces have no interaction multiplicities, but they do have creation
// times, so edge weights are derived from recency: an edge of age a days
// carries weight exp(-a/τ). Fresh ties are strong, old ties weak — the
// "weak ties" of [27] reinterpreted through the §6 temporal lens. The
// weighted variants consistently inherit the temporal signal the unweighted
// metrics lack (Fig. 8's dormancy bias).

// WeightedMetric is a recency-weighted neighborhood similarity algorithm.
// It satisfies predict.Algorithm; construct with NewWeightedCN/AA/RA.
type WeightedMetric struct {
	name string
	tk   *Tracker
	// TauDays is the exponential decay scale of edge weights.
	TauDays float64
	// combine folds one common neighbor's two edge weights into the score.
	combine func(g *graph.Graph, w graph.NodeID, wu, wv float64) float64
}

// edgeWeight returns exp(-age/τ) for the edge (u,v) as of time t; zero if
// the tracker never saw the edge or it is newer than t.
func (m *WeightedMetric) edgeWeight(u, v graph.NodeID, t int64) float64 {
	created, ok := m.tk.edgeTime[predict.PairKey(u, v)]
	if !ok || created > t {
		return 0
	}
	ageDays := float64(t-created) / float64(graph.Day)
	return math.Exp(-ageDays / m.TauDays)
}

// NewWeightedCN returns the recency-weighted Common Neighbors metric:
// Σ_w (weight(u,w) + weight(w,v)) / 2.
func NewWeightedCN(tk *Tracker, tauDays float64) *WeightedMetric {
	return &WeightedMetric{
		name:    "WCN",
		tk:      tk,
		TauDays: tauDays,
		combine: func(_ *graph.Graph, _ graph.NodeID, wu, wv float64) float64 {
			return (wu + wv) / 2
		},
	}
}

// NewWeightedAA returns the recency-weighted Adamic/Adar metric.
func NewWeightedAA(tk *Tracker, tauDays float64) *WeightedMetric {
	return &WeightedMetric{
		name:    "WAA",
		tk:      tk,
		TauDays: tauDays,
		combine: func(g *graph.Graph, w graph.NodeID, wu, wv float64) float64 {
			d := float64(g.Degree(w))
			if d < 2 {
				d = 2
			}
			return (wu + wv) / 2 / math.Log(d)
		},
	}
}

// NewWeightedRA returns the recency-weighted Resource Allocation metric.
func NewWeightedRA(tk *Tracker, tauDays float64) *WeightedMetric {
	return &WeightedMetric{
		name:    "WRA",
		tk:      tk,
		TauDays: tauDays,
		combine: func(g *graph.Graph, w graph.NodeID, wu, wv float64) float64 {
			return (wu + wv) / 2 / float64(g.Degree(w))
		},
	}
}

// Name implements predict.Algorithm.
func (m *WeightedMetric) Name() string { return m.name }

// score rates one pair as of the snapshot time g.Time.
func (m *WeightedMetric) score(g *graph.Graph, u, v graph.NodeID) float64 {
	s := 0.0
	for _, w := range g.CommonNeighbors(u, v) {
		wu := m.edgeWeight(u, w, g.Time)
		wv := m.edgeWeight(w, v, g.Time)
		if wu == 0 && wv == 0 {
			continue
		}
		s += m.combine(g, w, wu, wv)
	}
	return s
}

// Predict implements predict.Algorithm over the unconnected 2-hop pairs.
func (m *WeightedMetric) Predict(g *graph.Graph, k int, opt predict.Options) []predict.Pair {
	top := predict.NewRanker(k, opt.Seed)
	TwoHopPairs(g, func(u, v graph.NodeID) {
		if s := m.score(g, u, v); s > 0 {
			top.Add(u, v, s)
		}
	})
	return top.Result()
}

// ScorePairs implements predict.Algorithm.
func (m *WeightedMetric) ScorePairs(g *graph.Graph, pairs []predict.Pair, _ predict.Options) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = m.score(g, p.U, p.V)
	}
	return out
}

// TwoHopPairs enumerates unconnected pairs at distance exactly two (u < v).
func TwoHopPairs(g *graph.Graph, emit func(u, v graph.NodeID)) {
	n := g.NumNodes()
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		for _, w := range g.Neighbors(uid) {
			stamp[w] = int32(u)
		}
		stamp[u] = int32(u)
		for _, w := range g.Neighbors(uid) {
			for _, v := range g.Neighbors(w) {
				if v <= uid || stamp[v] == int32(u) {
					continue
				}
				stamp[v] = int32(u)
				emit(uid, v)
			}
		}
	}
}

// WeightedMetrics returns the recency-weighted catalogue with a default
// decay of 30 days.
func WeightedMetrics(tk *Tracker) []predict.Algorithm {
	return []predict.Algorithm{
		NewWeightedCN(tk, 30),
		NewWeightedAA(tk, 30),
		NewWeightedRA(tk, 30),
	}
}

// sortPairsByKey is a shared helper for deterministic pair ordering in
// tests and reports.
func sortPairsByKey(pairs []predict.Pair) {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key() < pairs[j].Key() })
}

package temporal

import (
	"math"
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// weightedFixture: two structurally identical open triads, one built from
// fresh edges (days 99-100) and one from stale edges (days 1-2).
//
//	fresh: 0-1, 1-2 (u=0, v=2 share neighbor 1)
//	stale: 3-4, 4-5
func weightedFixture() (*graph.Trace, *graph.Graph) {
	d := graph.Day
	tr := &graph.Trace{
		Name:    "weighted",
		Arrival: []int64{0, 0, 0, 0, 0, 0},
		Edges: []graph.Edge{
			{U: 3, V: 4, Time: 1 * d},
			{U: 4, V: 5, Time: 2 * d},
			{U: 0, V: 1, Time: 99 * d},
			{U: 1, V: 2, Time: 100 * d},
		},
	}
	g := tr.SnapshotAtTime(100 * d)
	return tr, g
}

func TestWeightedRecencyOrdering(t *testing.T) {
	tr, g := weightedFixture()
	tk := NewTracker(tr)
	for _, mk := range []func(*Tracker, float64) *WeightedMetric{NewWeightedCN, NewWeightedAA, NewWeightedRA} {
		m := mk(tk, 30)
		scores := m.ScorePairs(g, []predict.Pair{{U: 0, V: 2}, {U: 3, V: 5}}, predict.DefaultOptions())
		if scores[0] <= scores[1] {
			t.Errorf("%s: fresh triad %v should outscore stale %v", m.Name(), scores[0], scores[1])
		}
		if scores[1] <= 0 {
			t.Errorf("%s: stale triad score %v should stay positive", m.Name(), scores[1])
		}
	}
}

func TestWeightedCNValue(t *testing.T) {
	tr, g := weightedFixture()
	tk := NewTracker(tr)
	m := NewWeightedCN(tk, 30)
	// Pair (0,2) via neighbor 1: edge (0,1) age 1 day, edge (1,2) age 0.
	want := (math.Exp(-1.0/30) + 1) / 2
	got := m.ScorePairs(g, []predict.Pair{{U: 0, V: 2}}, predict.DefaultOptions())[0]
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("WCN = %v, want %v", got, want)
	}
}

func TestWeightedDegreesNormalize(t *testing.T) {
	// Star center w with many leaves, all fresh: WRA divides by deg(w).
	d := graph.Day
	var edges []graph.Edge
	for i := 1; i <= 5; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.NodeID(i), Time: int64(i) * d})
	}
	tr := &graph.Trace{Name: "star", Arrival: make([]int64, 6), Edges: edges}
	g := tr.SnapshotAtTime(5 * d)
	tk := NewTracker(tr)
	ra := NewWeightedRA(tk, 1e9) // effectively unweighted
	cn := NewWeightedCN(tk, 1e9)
	pair := []predict.Pair{{U: 1, V: 2}}
	sRA := ra.ScorePairs(g, pair, predict.DefaultOptions())[0]
	sCN := cn.ScorePairs(g, pair, predict.DefaultOptions())[0]
	if math.Abs(sCN-1) > 1e-6 {
		t.Errorf("WCN with huge tau = %v, want ~1", sCN)
	}
	if math.Abs(sRA-1.0/5.0) > 1e-6 {
		t.Errorf("WRA = %v, want 1/deg(0) = 0.2", sRA)
	}
}

func TestWeightedPredictContract(t *testing.T) {
	tr := gen.MustGenerate(gen.Renren(3).Scaled(0.08))
	g := tr.SnapshotAtEdge(tr.NumEdges() * 3 / 4)
	tk := NewTracker(tr)
	opt := predict.DefaultOptions()
	for _, m := range WeightedMetrics(tk) {
		pred := m.Predict(g, 20, opt)
		if len(pred) == 0 {
			t.Fatalf("%s: no predictions", m.Name())
		}
		for _, p := range pred {
			if g.HasEdge(p.U, p.V) {
				t.Errorf("%s predicted existing edge", m.Name())
			}
		}
		again := m.Predict(g, 20, opt)
		for i := range pred {
			if pred[i] != again[i] {
				t.Errorf("%s not deterministic", m.Name())
			}
		}
	}
}

// TestWeightedReducesDormancyBias: the recency-weighted RA should select
// pairs with fresher neighborhoods than plain RA — the §6-motivated fix for
// the Fig. 8 bias.
func TestWeightedReducesDormancyBias(t *testing.T) {
	cfg := gen.Renren(19).Scaled(0.2)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	i := len(cuts) - 2
	g := tr.SnapshotAtEdge(cuts[i].EdgeCount)
	tm := cuts[i].Time
	tk := NewTracker(tr)
	opt := predict.DefaultOptions()
	k := 150
	plain := predict.RA.Predict(g, k, opt)
	weighted := NewWeightedRA(tk, 30).Predict(g, k, opt)
	plainIdle := NewCDF(tk.PairIdleDays(plain, tm))
	weightedIdle := NewCDF(tk.PairIdleDays(weighted, tm))
	if weightedIdle.Quantile(0.5) >= plainIdle.Quantile(0.5) {
		t.Errorf("weighted RA median idle %v not below plain RA %v",
			weightedIdle.Quantile(0.5), plainIdle.Quantile(0.5))
	}
}

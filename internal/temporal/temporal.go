// Package temporal implements §6 of the paper: measurement of temporal
// edge-creation properties (node idle time, recent edge counts, common-
// neighbor time gaps) and the temporal filters built from them, which prune
// the link prediction search space to recently active regions.
package temporal

import (
	"math"
	"sort"

	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// InfDays marks "never active" idle times and "no common neighbor" gaps.
const InfDays = math.MaxFloat64 / 4

// Tracker indexes a trace for temporal queries evaluated *as of* a snapshot
// time t: only events with Time <= t are visible, so there is no lookahead
// into the prediction window.
type Tracker struct {
	// times[v] holds the sorted edge-creation times involving node v.
	times [][]int64
	// edgeTime maps a canonical pair key to the creation time of that edge.
	edgeTime map[uint64]int64
}

// NewTracker builds the index for a trace.
func NewTracker(tr *graph.Trace) *Tracker {
	tk := &Tracker{
		times:    make([][]int64, tr.NumNodes()),
		edgeTime: make(map[uint64]int64, tr.NumEdges()),
	}
	for _, e := range tr.Edges {
		tk.times[e.U] = append(tk.times[e.U], e.Time)
		tk.times[e.V] = append(tk.times[e.V], e.Time)
		key := predict.PairKey(e.U, e.V)
		if _, dup := tk.edgeTime[key]; !dup {
			tk.edgeTime[key] = e.Time
		}
	}
	// Trace edges are time-sorted, so per-node lists already are too; keep
	// a defensive sort for externally built traces.
	for _, ts := range tk.times {
		if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i] < ts[j] }) {
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		}
	}
	return tk
}

// IdleDays returns the node's idle time in days as of time t: the gap since
// its most recent edge creation at or before t (§4.4). Nodes with no
// activity yet return InfDays.
func (tk *Tracker) IdleDays(v graph.NodeID, t int64) float64 {
	if int(v) >= len(tk.times) {
		return InfDays
	}
	ts := tk.times[v]
	i := sort.Search(len(ts), func(i int) bool { return ts[i] > t })
	if i == 0 {
		return InfDays
	}
	return float64(t-ts[i-1]) / float64(graph.Day)
}

// NewEdgeCount returns how many edges v created in the window (t-days, t].
func (tk *Tracker) NewEdgeCount(v graph.NodeID, t int64, days int) int {
	if int(v) >= len(tk.times) {
		return 0
	}
	ts := tk.times[v]
	lo := sort.Search(len(ts), func(i int) bool { return ts[i] > t-int64(days)*graph.Day })
	hi := sort.Search(len(ts), func(i int) bool { return ts[i] > t })
	return hi - lo
}

// CNGapDays returns the common-neighbor time gap of the pair (u, v) in g as
// of time t: the gap between t and the most recent moment the pair gained a
// common neighbor (a common neighborship with w is completed when the later
// of the edges (u,w), (v,w) is created). Pairs with no common neighbor
// return InfDays (§6.1).
func (tk *Tracker) CNGapDays(g *graph.Graph, u, v graph.NodeID, t int64) float64 {
	latest := int64(math.MinInt64)
	for _, w := range g.CommonNeighbors(u, v) {
		tu, okU := tk.edgeTime[predict.PairKey(u, w)]
		tv, okV := tk.edgeTime[predict.PairKey(v, w)]
		if !okU || !okV || tu > t || tv > t {
			continue
		}
		completed := tu
		if tv > completed {
			completed = tv
		}
		if completed > latest {
			latest = completed
		}
	}
	if latest == int64(math.MinInt64) {
		return InfDays
	}
	return float64(t-latest) / float64(graph.Day)
}

// FilterConfig holds the four Table 7 thresholds.
type FilterConfig struct {
	// ActIdleDays: the more recently active endpoint must have idle time
	// below this.
	ActIdleDays float64
	// InactIdleDays: the other endpoint's bound.
	InactIdleDays float64
	// WindowDays and MinNewEdges: the active endpoint must have created at
	// least MinNewEdges edges in the last WindowDays days.
	WindowDays  int
	MinNewEdges int
	// CNGapDays: pairs with common neighbors must have gained one within
	// this many days. Pairs beyond 2 hops skip this criterion (paper fn. 5).
	CNGapDays float64
}

// ConfigFor returns the Table 7 thresholds for a named network preset. The
// thresholds were discovered with the paper's methodology (CDF separation
// between positive and negative pairs); they transfer to our synthetic
// analogues because the generator's activity model is tuned to the same
// separations.
func ConfigFor(name string) FilterConfig {
	switch name {
	case "facebook":
		return FilterConfig{ActIdleDays: 15, InactIdleDays: 40, WindowDays: 21, MinNewEdges: 2, CNGapDays: 40}
	case "youtube":
		return FilterConfig{ActIdleDays: 3, InactIdleDays: 30, WindowDays: 7, MinNewEdges: 3, CNGapDays: 20}
	case "renren":
		return FilterConfig{ActIdleDays: 3, InactIdleDays: 20, WindowDays: 7, MinNewEdges: 3, CNGapDays: 10}
	default:
		// Generic defaults between the presets.
		return FilterConfig{ActIdleDays: 7, InactIdleDays: 30, WindowDays: 14, MinNewEdges: 2, CNGapDays: 30}
	}
}

// Pass reports whether the pair survives all four filter criteria (§6.2) as
// of time t on snapshot g.
func (tk *Tracker) Pass(g *graph.Graph, u, v graph.NodeID, t int64, fc FilterConfig) bool {
	idleU := tk.IdleDays(u, t)
	idleV := tk.IdleDays(v, t)
	act, inact := u, idleV
	actIdle := idleU
	if idleV < idleU {
		act, inact = v, idleU
		actIdle = idleV
	}
	if actIdle >= fc.ActIdleDays {
		return false
	}
	if inact >= fc.InactIdleDays {
		return false
	}
	if tk.NewEdgeCount(act, t, fc.WindowDays) < fc.MinNewEdges {
		return false
	}
	if gap := tk.CNGapDays(g, u, v, t); gap != InfDays && gap >= fc.CNGapDays {
		return false
	}
	return true
}

// FilterPairs returns the subset of pairs passing the filter, preserving
// order.
func (tk *Tracker) FilterPairs(g *graph.Graph, pairs []predict.Pair, t int64, fc FilterConfig) []predict.Pair {
	out := make([]predict.Pair, 0, len(pairs))
	for _, p := range pairs {
		if tk.Pass(g, p.U, p.V, t, fc) {
			out = append(out, p)
		}
	}
	return out
}

// FilteredPredict augments any prediction algorithm with the temporal
// filter: it ranks an oversampled prediction list, drops pairs failing the
// filter, and returns the best k survivors. Depth is increased
// geometrically until k survivors are found or the candidate pool is
// exhausted, which makes the result equal to filtering the full candidate
// set before ranking.
func FilteredPredict(alg predict.Algorithm, g *graph.Graph, tk *Tracker, t int64, k int, fc FilterConfig, opt predict.Options) []predict.Pair {
	depth := 4 * k
	for {
		ranked := alg.Predict(g, depth, opt)
		kept := tk.FilterPairs(g, ranked, t, fc)
		if len(kept) >= k {
			return kept[:k]
		}
		if len(ranked) < depth {
			// Candidate pool exhausted; return every survivor.
			return kept
		}
		depth *= 4
	}
}

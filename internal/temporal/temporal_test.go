package temporal

import (
	"math"
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// fixtureTrace: nodes 0..4. Edge times chosen in days for readable queries.
func fixtureTrace() *graph.Trace {
	d := graph.Day
	return &graph.Trace{
		Name:    "fixture",
		Arrival: []int64{0, 0, 0, 0, 0},
		Edges: []graph.Edge{
			{U: 0, V: 1, Time: 1 * d},
			{U: 1, V: 2, Time: 3 * d},
			{U: 0, V: 2, Time: 5 * d},
			{U: 2, V: 3, Time: 8 * d},
			{U: 3, V: 4, Time: 20 * d},
		},
	}
}

func TestIdleDays(t *testing.T) {
	tk := NewTracker(fixtureTrace())
	d := graph.Day
	// As of day 10: node 0's last edge at day 5 → idle 5.
	if got := tk.IdleDays(0, 10*d); got != 5 {
		t.Errorf("IdleDays(0) = %v, want 5", got)
	}
	// Node 4's first edge is at day 20: as of day 10 it has never acted.
	if got := tk.IdleDays(4, 10*d); got != InfDays {
		t.Errorf("IdleDays(4) = %v, want InfDays", got)
	}
	// As of day 20 node 4 acted at day 20 → idle 0 (event at t counts).
	if got := tk.IdleDays(4, 20*d); got != 0 {
		t.Errorf("IdleDays(4)@20 = %v, want 0", got)
	}
}

func TestNewEdgeCount(t *testing.T) {
	tk := NewTracker(fixtureTrace())
	d := graph.Day
	// Node 2 edges at days 3, 5, 8. Window (3,10] → days 5 and 8.
	if got := tk.NewEdgeCount(2, 10*d, 7); got != 2 {
		t.Errorf("NewEdgeCount = %d, want 2", got)
	}
	if got := tk.NewEdgeCount(2, 10*d, 100); got != 3 {
		t.Errorf("NewEdgeCount wide = %d, want 3", got)
	}
	if got := tk.NewEdgeCount(4, 10*d, 7); got != 0 {
		t.Errorf("NewEdgeCount future node = %d, want 0", got)
	}
}

func TestCNGapDays(t *testing.T) {
	tr := fixtureTrace()
	tk := NewTracker(tr)
	d := graph.Day
	g := tr.SnapshotAtTime(10 * d)
	// Pair (0,3): common neighbor 2; (0,2) at day 5, (2,3) at day 8 →
	// completed day 8. As of day 10 → gap 2.
	if got := tk.CNGapDays(g, 0, 3, 10*d); got != 2 {
		t.Errorf("CNGapDays(0,3) = %v, want 2", got)
	}
	// Pair (1,3): common neighbor 2; (1,2) day 3, (2,3) day 8 → gap 2.
	if got := tk.CNGapDays(g, 1, 3, 10*d); got != 2 {
		t.Errorf("CNGapDays(1,3) = %v, want 2", got)
	}
	// Pair (0,4): node 4 isolated in g → no common neighbor.
	if got := tk.CNGapDays(g, 0, 4, 10*d); got != InfDays {
		t.Errorf("CNGapDays(0,4) = %v, want InfDays", got)
	}
}

func TestNoLookahead(t *testing.T) {
	tr := fixtureTrace()
	tk := NewTracker(tr)
	d := graph.Day
	// As of day 6, the day-8 and day-20 edges must be invisible.
	if got := tk.IdleDays(3, 6*d); got != InfDays {
		t.Errorf("IdleDays(3)@6 = %v, want InfDays (first edge at day 8)", got)
	}
	if got := tk.NewEdgeCount(3, 6*d, 100); got != 0 {
		t.Errorf("NewEdgeCount(3)@6 = %d, want 0", got)
	}
	g := tr.SnapshotAtTime(6 * d)
	if got := tk.CNGapDays(g, 0, 3, 6*d); got != InfDays {
		t.Errorf("CNGapDays@6 = %v, want InfDays", got)
	}
}

func TestPass(t *testing.T) {
	tr := fixtureTrace()
	tk := NewTracker(tr)
	d := graph.Day
	g := tr.SnapshotAtTime(10 * d)
	fc := FilterConfig{ActIdleDays: 5, InactIdleDays: 10, WindowDays: 7, MinNewEdges: 2, CNGapDays: 5}
	// Pair (0,3): idle(0)=5 (not < 5) → fails on active idle? idle(3)=2 is
	// smaller → active is 3 with idle 2 < 5 OK; inactive 0 idle 5 < 10 OK;
	// active node 3 created 1 edge in last 7 days < 2 → fail.
	if tk.Pass(g, 0, 3, 10*d, fc) {
		t.Error("pair (0,3) should fail the new-edge criterion")
	}
	// Pair (1,3): idle(1)=7, idle(3)=2 → active 3 idle 2 OK; inactive 7 <
	// 10 OK; active edges in window = 1 < 2 → fail. Relax MinNewEdges.
	fc.MinNewEdges = 1
	if !tk.Pass(g, 1, 3, 10*d, fc) {
		t.Error("pair (1,3) should pass with MinNewEdges=1")
	}
	// CN gap criterion: tighten to 1 day → (1,3) has gap 2 → fail.
	fc.CNGapDays = 1
	if tk.Pass(g, 1, 3, 10*d, fc) {
		t.Error("pair (1,3) should fail the CN-gap criterion")
	}
	// Pairs beyond two hops skip the CN criterion (footnote 5): (0,4) has
	// no common neighbor; only the activity criteria apply. Node 4 has no
	// activity → fails inactive idle anyway.
	if tk.Pass(g, 0, 4, 10*d, fc) {
		t.Error("pair (0,4) should fail idle criteria")
	}
}

func TestConfigFor(t *testing.T) {
	fb := ConfigFor("facebook")
	if fb.ActIdleDays != 15 || fb.InactIdleDays != 40 || fb.WindowDays != 21 || fb.MinNewEdges != 2 || fb.CNGapDays != 40 {
		t.Errorf("facebook config = %+v", fb)
	}
	rr := ConfigFor("renren")
	if rr.ActIdleDays != 3 || rr.CNGapDays != 10 {
		t.Errorf("renren config = %+v", rr)
	}
	yt := ConfigFor("youtube")
	if yt.InactIdleDays != 30 || yt.MinNewEdges != 3 {
		t.Errorf("youtube config = %+v", yt)
	}
	if def := ConfigFor("other"); def.ActIdleDays <= 0 {
		t.Errorf("default config = %+v", def)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if got := c.FractionBelow(2); math.Abs(got-3.0/5.0) > 1e-12 {
		t.Errorf("FractionBelow(2) = %v, want 0.6", got)
	}
	if got := c.FractionBelow(0); got != 0 {
		t.Errorf("FractionBelow(0) = %v", got)
	}
	if got := c.FractionBelow(100); got != 1 {
		t.Errorf("FractionBelow(100) = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v", got)
	}
	empty := NewCDF(nil)
	if empty.FractionBelow(1) != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty CDF should return zeros")
	}
}

func TestPairSamples(t *testing.T) {
	tr := fixtureTrace()
	d := graph.Day
	g := tr.SnapshotAtTime(8 * d) // nodes 0..4, edges through day 8
	newEdges := []graph.Edge{{U: 3, V: 4, Time: 20 * d}}
	pos, neg := PairSamples(g, newEdges, 3, 1)
	if len(pos) != 1 || pos[0] != (predict.Pair{U: 3, V: 4}) {
		t.Fatalf("pos = %+v", pos)
	}
	if len(neg) != 3 {
		t.Fatalf("neg = %+v", neg)
	}
	for _, p := range neg {
		if g.HasEdge(p.U, p.V) || p.Key() == pos[0].Key() {
			t.Errorf("bad negative %+v", p)
		}
	}
}

// TestPositiveNegativeSeparation reproduces the §6.1 observation on a
// generated trace: positive pairs have far smaller active-node idle times
// and CN gaps than negative pairs.
func TestPositiveNegativeSeparation(t *testing.T) {
	cfg := gen.Renren(17).Scaled(0.2)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	i := len(cuts) - 2
	g := tr.SnapshotAtEdge(cuts[i].EdgeCount)
	newEdges := tr.NewEdgesBetween(cuts[i], cuts[i+1])
	pos, neg := PairSamples(g, newEdges, 2000, 5)
	tk := NewTracker(tr)
	tm := cuts[i].Time

	posIdle := NewCDF(tk.ActiveIdleDays(pos, tm))
	negIdle := NewCDF(tk.ActiveIdleDays(neg, tm))
	// Positives: most have short idle; negatives: far fewer.
	pShort := posIdle.FractionBelow(3)
	nShort := negIdle.FractionBelow(3)
	if pShort <= nShort {
		t.Errorf("idle separation missing: pos %.3f <= neg %.3f below 3 days", pShort, nShort)
	}

	posGap := NewCDF(tk.CNGaps(g, pos, tm))
	negGap := NewCDF(tk.CNGaps(g, neg, tm))
	pGap := posGap.FractionBelow(10)
	nGap := negGap.FractionBelow(10)
	if pGap <= nGap {
		t.Errorf("CN-gap separation missing: pos %.3f <= neg %.3f below 10 days", pGap, nGap)
	}

	posNew := NewCDF(tk.ActiveNewEdgeCounts(pos, tm, 7))
	negNew := NewCDF(tk.ActiveNewEdgeCounts(neg, tm, 7))
	// More new edges for positives: fraction with >= 3 should be higher.
	pMany := 1 - posNew.FractionBelow(2.5)
	nMany := 1 - negNew.FractionBelow(2.5)
	if pMany <= nMany {
		t.Errorf("new-edge separation missing: pos %.3f <= neg %.3f with >=3 edges", pMany, nMany)
	}
}

func TestFilteredPredict(t *testing.T) {
	cfg := gen.Renren(23).Scaled(0.15)
	tr := gen.MustGenerate(cfg)
	cuts := tr.Cuts(gen.DefaultDelta(cfg))
	i := len(cuts) - 2
	g := tr.SnapshotAtEdge(cuts[i].EdgeCount)
	tk := NewTracker(tr)
	fc := ConfigFor("renren")
	opt := predict.DefaultOptions()
	k := 50
	pred := FilteredPredict(predict.BRA, g, tk, cuts[i].Time, k, fc, opt)
	if len(pred) > k {
		t.Fatalf("got %d predictions, want <= %d", len(pred), k)
	}
	for _, p := range pred {
		if !tk.Pass(g, p.U, p.V, cuts[i].Time, fc) {
			t.Errorf("filtered prediction %+v fails the filter", p)
		}
		if g.HasEdge(p.U, p.V) {
			t.Errorf("filtered prediction %+v already connected", p)
		}
	}
}

func TestFilterPairsPreservesOrder(t *testing.T) {
	tr := fixtureTrace()
	tk := NewTracker(tr)
	d := graph.Day
	g := tr.SnapshotAtTime(10 * d)
	pairs := []predict.Pair{{U: 0, V: 3, Score: 5}, {U: 1, V: 3, Score: 4}, {U: 0, V: 4, Score: 3}}
	fc := FilterConfig{ActIdleDays: 100, InactIdleDays: 100, WindowDays: 30, MinNewEdges: 1, CNGapDays: 100}
	kept := tk.FilterPairs(g, pairs, 10*d, fc)
	// (0,4) fails: node 4 never active → inactive idle is InfDays.
	if len(kept) != 2 || kept[0].Score != 5 || kept[1].Score != 4 {
		t.Fatalf("kept = %+v", kept)
	}
}

package temporal

import (
	"math/rand"
	"sort"

	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// CDF is an empirical cumulative distribution over float64 samples, used to
// reproduce the paper's temporal-property figures (Figs. 8, 13, 14, 15).
type CDF struct {
	sorted []float64
}

// NewCDF builds the distribution from samples (copied, then sorted).
func NewCDF(samples []float64) CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return CDF{sorted: s}
}

// Len returns the sample count.
func (c CDF) Len() int { return len(c.sorted) }

// FractionBelow returns P(X <= x).
func (c CDF) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	// Include equal values.
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1).
func (c CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(c.sorted)-1))
	return c.sorted[i]
}

// PairSamples builds the positive and negative node-pair sets of §6.1:
// positives are the pairs (both already in g, unconnected) that connect in
// the prediction window; negatives are uniformly sampled unconnected pairs
// that do not.
func PairSamples(g *graph.Graph, newEdges []graph.Edge, nNeg int, seed int64) (pos, neg []predict.Pair) {
	truth := predict.TruthSet(g, newEdges)
	for key := range truth {
		u, v := predict.KeyPair(key)
		pos = append(pos, predict.Pair{U: u, V: v})
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i].Key() < pos[j].Key() })
	rng := rand.New(rand.NewSource(seed))
	n := g.NumNodes()
	seen := make(map[uint64]bool, nNeg)
	for len(neg) < nNeg && len(seen) < 20*nNeg {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		key := predict.PairKey(u, v)
		if seen[key] || truth[key] {
			continue
		}
		seen[key] = true
		neg = append(neg, predict.Pair{U: predictMin(u, v), V: predictMax(u, v)})
	}
	return pos, neg
}

func predictMin(a, b graph.NodeID) graph.NodeID {
	if a < b {
		return a
	}
	return b
}

func predictMax(a, b graph.NodeID) graph.NodeID {
	if a < b {
		return b
	}
	return a
}

// ActiveIdleDays returns, per pair, the idle time of the more recently
// active endpoint (Fig. 13).
func (tk *Tracker) ActiveIdleDays(pairs []predict.Pair, t int64) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		a, b := tk.IdleDays(p.U, t), tk.IdleDays(p.V, t)
		out[i] = min(a, b)
	}
	return out
}

// InactiveIdleDays returns, per pair, the idle time of the less recently
// active endpoint.
func (tk *Tracker) InactiveIdleDays(pairs []predict.Pair, t int64) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		a, b := tk.IdleDays(p.U, t), tk.IdleDays(p.V, t)
		out[i] = max(a, b)
	}
	return out
}

// ActiveNewEdgeCounts returns, per pair, the number of edges the active
// endpoint created in the last `days` days (Fig. 14).
func (tk *Tracker) ActiveNewEdgeCounts(pairs []predict.Pair, t int64, days int) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		act := p.U
		if tk.IdleDays(p.V, t) < tk.IdleDays(p.U, t) {
			act = p.V
		}
		out[i] = float64(tk.NewEdgeCount(act, t, days))
	}
	return out
}

// CNGaps returns, per pair, the common-neighbor time gap in days (Fig. 15).
// Pairs without common neighbors yield InfDays.
func (tk *Tracker) CNGaps(g *graph.Graph, pairs []predict.Pair, t int64) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = tk.CNGapDays(g, p.U, p.V, t)
	}
	return out
}

// PairIdleDays returns the idle days of every node appearing in the pairs,
// one sample per pair endpoint occurrence (Fig. 8's "nodes in predicted
// edges" distribution).
func (tk *Tracker) PairIdleDays(pairs []predict.Pair, t int64) []float64 {
	out := make([]float64, 0, 2*len(pairs))
	for _, p := range pairs {
		out = append(out, tk.IdleDays(p.U, t), tk.IdleDays(p.V, t))
	}
	return out
}

//go:build linux

package wal

import (
	"os"
	"syscall"
)

// readFile memory-maps the file read-only, so loading a checkpoint is
// zero-copy: DecodeCheckpoint aliases its bulk sections straight out of
// the mapping. Mappings are intentionally never unmapped — a recovered
// graph's adjacency may alias them for the life of the process, and
// recovery runs once per boot.
func (d *DirStorage) readFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return []byte{}, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Filesystems that cannot map (or size races) fall back to a read.
		return os.ReadFile(path)
	}
	return b, nil
}

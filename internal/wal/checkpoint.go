package wal

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"unsafe"

	"linkpred/internal/graph"
)

// Checkpoint file layout (checkpoint.ckpt, little-endian):
//
//	"LPCKPT01" | edges u64 | nodes u64 | traceTime i64 | firstSeq u64 |
//	chainAnchor [32]B | pubSeq i64 | pubEdges u64 | pubTime i64 |
//	nameLen u32 | name | pad to 8 |
//	rev    nodes × i64
//	arrival nodes × i64
//	edges  edges × (u i32 | v i32 | t i64)
//	csrN u64 | csrEdges u64 | csrTime i64 |
//	rowptr (csrN+1) × i64 | cols rowptr[csrN] × i32 |
//	sha256 digest of everything above
//
// Every section after the name starts 8-aligned, so a little-endian host
// can alias the rev/arrival/edge/rowptr/cols sections straight out of a
// memory-mapped buffer with no copy. The file is written to checkpoint.tmp
// and renamed into place, so a crash mid-write never clobbers the previous
// checkpoint.
const (
	ckptMagic      = "LPCKPT01"
	ckptName       = "checkpoint.ckpt"
	ckptTmpName    = "checkpoint.tmp"
	ckptHeaderSize = 8 + 8 + 8 + 8 + 8 + 32 + 8 + 8 + 8 + 4
)

// CheckpointData is the state one checkpoint persists, captured atomically
// at a publish: the trace prefix the published snapshot covers, the
// dense→external ID map, and the snapshot itself. Arrival, Edges, and Rev
// must be the exact prefixes as of the publish (serve captures the slice
// headers under its ingest lock; the arrays are append-only, so the
// capture stays valid while the checkpoint serializes in the background).
type CheckpointData struct {
	Name    string
	Arrival []int64
	Edges   []graph.Edge
	Rev     []int64
	Graph   *graph.Graph
	Pub     Publish
}

// Checkpoint is a decoded checkpoint: the trace prefix, ID map, publish
// state, the log position replay resumes from, and the snapshot graph.
type Checkpoint struct {
	Name        string
	Arrival     []int64
	Edges       []graph.Edge
	Rev         []int64
	TraceTime   int64
	FirstSeq    uint64
	ChainAnchor [32]byte
	Pub         Publish
	Graph       *graph.Graph
}

// WriteCheckpoint persists d atomically and prunes segments it fully
// covers. It first commits anything pending (the checkpoint must not
// cover records the log hasn't made durable), anchors replay at the
// earliest segment extending past the checkpoint, serializes without
// holding the log lock, and renames into place.
func (l *Log) WriteCheckpoint(d CheckpointData) error {
	if len(d.Arrival) != len(d.Rev) {
		return fmt.Errorf("wal: checkpoint arrival/rev length mismatch (%d vs %d)", len(d.Arrival), len(d.Rev))
	}
	if d.Graph == nil || d.Graph.Partition() != nil {
		return fmt.Errorf("wal: checkpoint requires a full snapshot")
	}
	E := uint64(len(d.Edges))

	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	if err := l.commitLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if E > l.committed {
		l.mu.Unlock()
		return fmt.Errorf("wal: checkpoint at edge %d beyond committed log (%d)", E, l.committed)
	}
	firstSeq, anchor := l.coverLocked(E)
	l.mu.Unlock()

	f, err := l.st.Create(ckptTmpName)
	if err != nil {
		return fmt.Errorf("wal: checkpoint create: %w", err)
	}
	if err := encodeCheckpoint(f, d, firstSeq, anchor); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := l.st.Rename(ckptTmpName, ckptName); err != nil {
		return fmt.Errorf("wal: checkpoint publish: %w", err)
	}

	// Prune sealed segments the checkpoint fully covers. Each entry is
	// dropped from the index before its file is removed: a failed Remove
	// leaves a stale file recovery cleans up, never an index entry pointing
	// at a missing file.
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.segs) > 0 && l.segs[0].seq < firstSeq {
		seq := l.segs[0].seq
		l.segs = l.segs[1:]
		if err := l.st.Remove(segName(seq)); err != nil {
			return fmt.Errorf("wal: prune segment %d: %w", seq, err)
		}
	}
	return nil
}

// coverLocked returns the earliest live segment whose records extend past
// trace index E — where replay from a checkpoint at E resumes — and the
// chain value its header commits (the verification anchor once earlier
// segments are pruned). With every segment ending at or before E it
// returns the open segment.
func (l *Log) coverLocked(E uint64) (uint64, [32]byte) {
	for i, s := range l.segs {
		end := l.committed
		if i+1 < len(l.segs) {
			end = l.segs[i+1].base
		}
		if end > E {
			return s.seq, s.prevChain
		}
	}
	last := l.segs[len(l.segs)-1]
	return last.seq, last.prevChain
}

// hashedWriter tees everything through a sha256 so the trailing digest
// covers exactly the bytes written.
type hashedWriter struct {
	w io.Writer
	h io.Writer
}

func (hw *hashedWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	if n > 0 {
		hw.h.Write(p[:n])
	}
	return n, err
}

func encodeCheckpoint(f io.Writer, d CheckpointData, firstSeq uint64, anchor [32]byte) error {
	h := sha256.New()
	hw := &hashedWriter{w: f, h: h}

	hdr := make([]byte, ckptHeaderSize, ckptHeaderSize+len(d.Name)+8)
	copy(hdr[:8], ckptMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(d.Edges)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(d.Arrival)))
	var traceTime int64
	if n := len(d.Edges); n > 0 {
		traceTime = d.Edges[n-1].Time
	}
	binary.LittleEndian.PutUint64(hdr[24:], uint64(traceTime))
	binary.LittleEndian.PutUint64(hdr[32:], firstSeq)
	copy(hdr[40:72], anchor[:])
	binary.LittleEndian.PutUint64(hdr[72:], uint64(d.Pub.Seq))
	binary.LittleEndian.PutUint64(hdr[80:], d.Pub.Edges)
	binary.LittleEndian.PutUint64(hdr[88:], uint64(d.Pub.Time))
	binary.LittleEndian.PutUint32(hdr[96:], uint32(len(d.Name)))
	hdr = append(hdr, d.Name...)
	for len(hdr)%8 != 0 {
		hdr = append(hdr, 0)
	}
	if _, err := hw.Write(hdr); err != nil {
		return err
	}

	if err := writeInt64s(hw, d.Rev); err != nil {
		return err
	}
	if err := writeInt64s(hw, d.Arrival); err != nil {
		return err
	}
	if err := writeEdges(hw, d.Edges); err != nil {
		return err
	}

	rowptr, cols := d.Graph.CSR()
	var ghdr [24]byte
	binary.LittleEndian.PutUint64(ghdr[0:], uint64(d.Graph.NumNodes()))
	binary.LittleEndian.PutUint64(ghdr[8:], uint64(d.Graph.NumEdges()))
	binary.LittleEndian.PutUint64(ghdr[16:], uint64(d.Graph.Time))
	if _, err := hw.Write(ghdr[:]); err != nil {
		return err
	}
	if err := writeInt64s(hw, rowptr); err != nil {
		return err
	}
	if err := writeInt32s(hw, cols); err != nil {
		return err
	}

	_, err := f.Write(h.Sum(nil))
	return err
}

// encodeChunk is the buffer size the bulk sections stream through —
// bounded memory, and enough distinct writes that the in-memory crash
// model can place a crash inside a checkpoint body.
const encodeChunk = 1 << 16

func writeInt64s(w io.Writer, xs []int64) error {
	buf := make([]byte, 0, min(len(xs)*8, encodeChunk))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		if len(buf)+8 > encodeChunk {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func writeInt32s(w io.Writer, xs []int32) error {
	buf := make([]byte, 0, min(len(xs)*4, encodeChunk))
	for _, x := range xs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		if len(buf)+4 > encodeChunk {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

func writeEdges(w io.Writer, es []graph.Edge) error {
	buf := make([]byte, 0, min(len(es)*16, encodeChunk))
	for _, e := range es {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.U))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.V))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Time))
		if len(buf)+16 > encodeChunk {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// hostLittleEndian reports whether the checkpoint's on-disk byte order
// matches the host's, enabling zero-copy section aliasing.
var hostLittleEndian = func() bool {
	var probe [2]byte
	binary.NativeEndian.PutUint16(probe[:], 0x0102)
	return probe[0] == 0x02
}()

// alias reinterprets an 8-aligned little-endian byte section as a []T
// without copying. The result has cap == len, so any append reallocates
// instead of writing through to the (possibly memory-mapped, read-only)
// backing buffer.
func alias[T any](b []byte, n int) ([]T, bool) {
	var zero T
	sz := int(unsafe.Sizeof(zero))
	if !hostLittleEndian || n == 0 || uintptr(unsafe.Pointer(&b[0]))%8 != 0 || len(b) < n*sz {
		return nil, false
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)[:n:n], true
}

type cursor struct {
	b   []byte
	off int
}

func (c *cursor) take(n int) ([]byte, error) {
	if n < 0 || len(c.b)-c.off < n {
		return nil, fmt.Errorf("wal: checkpoint truncated at offset %d (need %d bytes, have %d)", c.off, n, len(c.b)-c.off)
	}
	s := c.b[c.off : c.off+n]
	c.off += n
	return s, nil
}

func (c *cursor) int64s(n int) ([]int64, error) {
	raw, err := c.take(n * 8)
	if err != nil {
		return nil, err
	}
	if out, ok := alias[int64](raw, n); ok {
		return out, nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out, nil
}

func (c *cursor) int32s(n int) ([]int32, error) {
	raw, err := c.take(n * 4)
	if err != nil {
		return nil, err
	}
	if out, ok := alias[int32](raw, n); ok {
		return out, nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out, nil
}

func (c *cursor) edges(n int) ([]graph.Edge, error) {
	raw, err := c.take(n * 16)
	if err != nil {
		return nil, err
	}
	if out, ok := alias[graph.Edge](raw, n); ok {
		return out, nil
	}
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{
			U:    graph.NodeID(binary.LittleEndian.Uint32(raw[i*16:])),
			V:    graph.NodeID(binary.LittleEndian.Uint32(raw[i*16+4:])),
			Time: int64(binary.LittleEndian.Uint64(raw[i*16+8:])),
		}
	}
	return out, nil
}

// DecodeCheckpoint parses and fully validates a checkpoint image: digest,
// structural bounds (every count is checked against the buffer before any
// allocation, so a lying header cannot force a giant up-front alloc),
// trace invariants, and CSR well-formedness. On a little-endian host the
// bulk sections alias b zero-copy; callers loading from a memory map must
// keep the mapping alive and treat the result as immutable-backed
// (appends to the returned slices reallocate and are safe).
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < ckptHeaderSize+sha256.Size {
		return nil, fmt.Errorf("wal: checkpoint too short (%d bytes)", len(b))
	}
	if string(b[:8]) != ckptMagic {
		return nil, fmt.Errorf("wal: not a checkpoint file")
	}
	body, tail := b[:len(b)-sha256.Size], b[len(b)-sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], tail) {
		return nil, fmt.Errorf("wal: checkpoint digest mismatch")
	}

	ck := &Checkpoint{}
	edgeCount := binary.LittleEndian.Uint64(b[8:])
	nodeCount := binary.LittleEndian.Uint64(b[16:])
	ck.TraceTime = int64(binary.LittleEndian.Uint64(b[24:]))
	ck.FirstSeq = binary.LittleEndian.Uint64(b[32:])
	copy(ck.ChainAnchor[:], b[40:72])
	ck.Pub.Seq = int64(binary.LittleEndian.Uint64(b[72:]))
	ck.Pub.Edges = binary.LittleEndian.Uint64(b[80:])
	ck.Pub.Time = int64(binary.LittleEndian.Uint64(b[88:]))
	nameLen := int(binary.LittleEndian.Uint32(b[96:]))

	c := &cursor{b: body, off: ckptHeaderSize}
	name, err := c.take(nameLen)
	if err != nil {
		return nil, err
	}
	ck.Name = string(name)
	if pad := (8 - c.off%8) % 8; pad > 0 {
		if _, err := c.take(pad); err != nil {
			return nil, err
		}
	}

	maxN := uint64(len(body)) / 16 // rev + arrival cost 16 B per node
	if nodeCount > maxN {
		return nil, fmt.Errorf("wal: checkpoint node count %d exceeds file capacity", nodeCount)
	}
	if edgeCount > uint64(len(body))/16 {
		return nil, fmt.Errorf("wal: checkpoint edge count %d exceeds file capacity", edgeCount)
	}
	if ck.Rev, err = c.int64s(int(nodeCount)); err != nil {
		return nil, err
	}
	if ck.Arrival, err = c.int64s(int(nodeCount)); err != nil {
		return nil, err
	}
	if ck.Edges, err = c.edges(int(edgeCount)); err != nil {
		return nil, err
	}

	ghdr, err := c.take(24)
	if err != nil {
		return nil, err
	}
	gn := binary.LittleEndian.Uint64(ghdr[0:])
	gedges := binary.LittleEndian.Uint64(ghdr[8:])
	gtime := int64(binary.LittleEndian.Uint64(ghdr[16:]))
	if gn > uint64(len(body))/8 || gedges > uint64(len(body))/8 {
		return nil, fmt.Errorf("wal: checkpoint graph dimensions (%d nodes, %d edges) exceed file capacity", gn, gedges)
	}
	rowptr, err := c.int64s(int(gn) + 1)
	if err != nil {
		return nil, err
	}
	ncols := rowptr[gn]
	if ncols < 0 || uint64(ncols) > uint64(len(body))/4 {
		return nil, fmt.Errorf("wal: checkpoint CSR entry count %d exceeds file capacity", ncols)
	}
	cols, err := c.int32s(int(ncols))
	if err != nil {
		return nil, err
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("wal: checkpoint has %d trailing bytes", len(body)-c.off)
	}

	// Semantic validation: the embedded trace prefix must satisfy every
	// invariant the snapshot builders rely on, and the CSR must be a
	// well-formed full snapshot over a node prefix of it.
	tr := &graph.Trace{Name: ck.Name, Arrival: ck.Arrival, Edges: ck.Edges}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("wal: checkpoint trace: %w", err)
	}
	if gn > nodeCount {
		return nil, fmt.Errorf("wal: checkpoint snapshot has %d nodes but trace has %d", gn, nodeCount)
	}
	if ck.Graph, err = graph.FromCSR(int(gn), rowptr, cols, int(gedges), gtime); err != nil {
		return nil, fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	if ck.Pub.Edges > edgeCount {
		return nil, fmt.Errorf("wal: checkpoint publish at edge %d beyond its own trace prefix (%d)", ck.Pub.Edges, edgeCount)
	}
	return ck, nil
}

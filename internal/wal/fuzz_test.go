package wal

import (
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"linkpred/internal/graph"
)

// putFile installs raw bytes as a fully-synced file in a MemStorage —
// the fuzzer's way of handing recovery arbitrary on-disk states.
func putFile(t testing.TB, st *MemStorage, name string, b []byte) {
	t.Helper()
	f, err := st.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 0 {
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

// fuzzFixture builds a small real log (two segments, publishes, a
// checkpoint) and returns the checkpoint bytes and the first two live
// segment images — structurally valid seeds the fuzzer mutates from.
func fuzzFixture(t testing.TB) (ckpt, seg0, seg1 []byte) {
	t.Helper()
	st := NewMemStorage()
	opt := Options{GroupCommit: 8, SegmentRecords: 16}
	l, rec, err := Open(st, opt, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, rev, remap := rec.Trace, rec.Rev, rec.Remap
	dense := func(ext int64) graph.NodeID {
		if d, ok := remap[ext]; ok {
			return d
		}
		d := graph.NodeID(len(rev))
		remap[ext] = d
		rev = append(rev, ext)
		return d
	}
	for i := 0; i < 48; i++ {
		extU, extV := int64(i%7)*10+1, int64((i+1)%9)*10+2
		if extU == extV {
			extV += 10
		}
		u, v := dense(extU), dense(extV)
		e, err := tr.Append(u, v, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append(Record{ExtU: extU, ExtV: extV, U: e.U, V: e.V, T: e.Time}); err != nil {
			t.Fatal(err)
		}
		if (i+1)%12 == 0 {
			p := Publish{Seq: int64(i / 12), Edges: uint64(len(tr.Edges)), Time: e.Time}
			if err := l.NotePublish(p); err != nil {
				t.Fatal(err)
			}
			if i+1 == 24 {
				if err := l.WriteCheckpoint(CheckpointData{
					Name: "fuzz", Arrival: tr.Arrival, Edges: tr.Edges,
					Rev: rev, Graph: tr.SnapshotAtEdge(len(tr.Edges)), Pub: p,
				}); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ckpt, err = st.Bytes(ckptName)
	if err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	var segs [][]byte
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			b, err := st.Bytes(n)
			if err != nil {
				t.Fatal(err)
			}
			segs = append(segs, b)
		}
	}
	if len(segs) < 2 {
		t.Fatalf("fixture produced %d segments, need 2", len(segs))
	}
	return ckpt, segs[0], segs[1]
}

// renumberSeg rewrites a segment image's header sequence number (fixing
// the header CRC) so fixture segments can seed the wal-00000000/1 slots.
func renumberSeg(b []byte, seq uint64) []byte {
	if len(b) < headerSize {
		return b
	}
	out := append([]byte(nil), b...)
	putU64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			out[off+i] = byte(v >> (8 * i))
		}
	}
	putU64(8, seq)
	crc := crc32.ChecksumIEEE(out[:56])
	out[56], out[57], out[58], out[59] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	return out
}

// FuzzWALReplay feeds recovery arbitrary checkpoint and segment images.
// Hostile input must either be rejected with an error or recover to an
// internally consistent state (valid trace, aligned ID maps, buildable
// snapshot) — never panic, and never allocate beyond the input's size
// class (every count in the formats is bounds-checked before use).
func FuzzWALReplay(f *testing.F) {
	ckpt, seg0, seg1 := fuzzFixture(f)
	f.Add([]byte{}, seg0, []byte{})
	f.Add([]byte{}, renumberSeg(seg0, 0), renumberSeg(seg1, 1))
	f.Add(ckpt, seg0, seg1)
	f.Add(ckpt, []byte{}, []byte{})
	f.Add([]byte{}, seg0[:headerSize], []byte{})
	f.Add([]byte{}, seg0[:headerSize+7], []byte{})
	f.Add(ckpt[:60], seg0[:30], seg1)

	f.Fuzz(func(t *testing.T, ck, a, b []byte) {
		st := NewMemStorage()
		if len(ck) > 0 {
			putFile(t, st, ckptName, ck)
		}
		putFile(t, st, segName(0), a)
		if len(b) > 0 {
			putFile(t, st, segName(1), b)
		}
		l, rec, err := Open(st, Options{}, nil)
		if err != nil {
			return
		}
		defer l.Close()
		if verr := rec.Trace.Validate(); verr != nil {
			t.Fatalf("recovered trace invalid: %v", verr)
		}
		if len(rec.Rev) != len(rec.Trace.Arrival) {
			t.Fatalf("rev has %d entries, arrival %d", len(rec.Rev), len(rec.Trace.Arrival))
		}
		for d, ext := range rec.Rev {
			if got, ok := rec.Remap[ext]; !ok || got != graph.NodeID(d) {
				t.Fatalf("remap inconsistent at dense %d", d)
			}
		}
		if rec.LastPub != nil && rec.LastPub.Edges > uint64(len(rec.Trace.Edges)) {
			t.Fatalf("publish beyond recovered trace")
		}
		// The recovered state must be buildable end to end.
		k := len(rec.Trace.Edges)
		if rec.Graph != nil {
			graph.NewIncrementalBuilderFrom(rec.Trace, rec.Graph, int(rec.CheckpointEdges)).AtEdge(k)
		} else {
			graph.NewIncrementalBuilder(rec.Trace).AtEdge(k)
		}
	})
}

// FuzzCheckpointDecode hardens the checkpoint parser: arbitrary bytes must
// error cleanly or decode to a fully validated checkpoint.
func FuzzCheckpointDecode(f *testing.F) {
	ckpt, _, _ := fuzzFixture(f)
	f.Add(ckpt)
	f.Add(ckpt[:len(ckpt)-1])
	f.Add(ckpt[:ckptHeaderSize])
	f.Add([]byte(ckptMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := DecodeCheckpoint(data)
		if err != nil {
			return
		}
		// DecodeCheckpoint promises full validation on success.
		tr := &graph.Trace{Name: ck.Name, Arrival: ck.Arrival, Edges: ck.Edges}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("decoded checkpoint trace invalid: %v", verr)
		}
		if len(ck.Rev) != len(ck.Arrival) {
			t.Fatalf("rev/arrival length mismatch")
		}
		if ck.Graph == nil {
			t.Fatalf("validated checkpoint with nil graph")
		}
	})
}

// TestGenerateFuzzCorpus writes the seed corpora under testdata/fuzz when
// WAL_GEN_CORPUS=1 — run manually to refresh the checked-in seeds.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("WAL_GEN_CORPUS") == "" {
		t.Skip("set WAL_GEN_CORPUS=1 to regenerate seed corpora")
	}
	ckpt, seg0, seg1 := fuzzFixture(t)
	writeSeed := func(dir, name string, parts ...[]byte) {
		path := filepath.Join("testdata", "fuzz", dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		out := "go test fuzz v1\n"
		for _, p := range parts {
			out += "[]byte(" + strconv.Quote(string(p)) + ")\n"
		}
		if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeSeed("FuzzWALReplay", "seed_segment", []byte{}, seg0, []byte{})
	writeSeed("FuzzWALReplay", "seed_two_segments", []byte{}, renumberSeg(seg0, 0), renumberSeg(seg1, 1))
	writeSeed("FuzzWALReplay", "seed_full_state", ckpt, seg0, seg1)
	writeSeed("FuzzWALReplay", "seed_torn_tail", []byte{}, seg0[:len(seg0)-9], []byte{})
	writeSeed("FuzzCheckpointDecode", "seed_valid", ckpt)
	writeSeed("FuzzCheckpointDecode", "seed_truncated", ckpt[:len(ckpt)/2])
	writeSeed("FuzzCheckpointDecode", "seed_header", ckpt[:ckptHeaderSize])
}

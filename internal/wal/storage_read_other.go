//go:build !linux

package wal

import "os"

// readFile loads the file with a plain read on platforms without the mmap
// path.
func (d *DirStorage) readFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

package wal

import (
	"bytes"
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
)

// simWriter drives a Log exactly the way the serving layer does: events
// arrive in external ID space, get densely remapped first-seen, append to
// the trace (which clamps timestamps), and every accepted edge is logged
// with both ID spaces plus the post-clamp time.
type simWriter struct {
	t     *testing.T
	tr    *graph.Trace
	rev   []int64
	remap map[int64]graph.NodeID
	log   *Log
}

func newSimWriter(t *testing.T, l *Log, rec *Recovered) *simWriter {
	t.Helper()
	return &simWriter{t: t, tr: rec.Trace, rev: rec.Rev, remap: rec.Remap, log: l}
}

func (w *simWriter) dense(ext int64) graph.NodeID {
	if d, ok := w.remap[ext]; ok {
		return d
	}
	d := graph.NodeID(len(w.rev))
	w.remap[ext] = d
	w.rev = append(w.rev, ext)
	return d
}

func (w *simWriter) ingest(extU, extV, tm int64) {
	w.t.Helper()
	u, v := w.dense(extU), w.dense(extV)
	e, err := w.tr.Append(u, v, tm)
	if err != nil {
		w.t.Fatalf("trace append: %v", err)
	}
	if err := w.log.Append(Record{ExtU: extU, ExtV: extV, U: e.U, V: e.V, T: e.Time}); err != nil {
		w.t.Fatalf("wal append: %v", err)
	}
}

// extID scrambles a dense source ID into a sparse external one so the
// remap recovery path is actually exercised.
func extID(v graph.NodeID) int64 { return int64(v)*11 + 1000 }

// testEvents returns a small generated trace's edges as (extU, extV, time)
// events plus the trace itself as the replay reference.
func testEvents(t *testing.T) *graph.Trace {
	t.Helper()
	tr, err := gen.Generate(gen.Facebook(11).Scaled(0.06))
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if tr.NumEdges() < 800 {
		t.Fatalf("fixture too small: %d edges", tr.NumEdges())
	}
	return tr
}

// feed ingests edges [from, to) of src into w, publishing every pubEvery
// edges (0 = never).
func feed(t *testing.T, w *simWriter, src *graph.Trace, from, to, pubEvery int) {
	t.Helper()
	for i := from; i < to; i++ {
		e := src.Edges[i]
		w.ingest(extID(e.U), extID(e.V), e.Time)
		if pubEvery > 0 && (i+1)%pubEvery == 0 {
			n := len(w.tr.Edges)
			pub := Publish{Seq: int64(n / pubEvery), Edges: uint64(n), Time: w.tr.Edges[n-1].Time}
			if err := w.log.NotePublish(pub); err != nil {
				t.Fatalf("note publish: %v", err)
			}
		}
	}
	if err := w.log.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func sameTrace(t *testing.T, got, want *graph.Trace, label string) {
	t.Helper()
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("%s: %d edges, want %d", label, len(got.Edges), len(want.Edges))
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("%s: edge %d = %v, want %v", label, i, got.Edges[i], want.Edges[i])
		}
	}
	if len(got.Arrival) != len(want.Arrival) {
		t.Fatalf("%s: %d arrivals, want %d", label, len(got.Arrival), len(want.Arrival))
	}
	for i := range got.Arrival {
		if got.Arrival[i] != want.Arrival[i] {
			t.Fatalf("%s: arrival %d = %d, want %d", label, i, got.Arrival[i], want.Arrival[i])
		}
	}
}

// samePrefix asserts got is a strict state-prefix of want: its edges and
// arrivals match want's leading entries.
func samePrefix(t *testing.T, got, want *graph.Trace, label string) {
	t.Helper()
	if len(got.Edges) > len(want.Edges) || len(got.Arrival) > len(want.Arrival) {
		t.Fatalf("%s: recovered state larger than reference (%d/%d edges, %d/%d arrivals)",
			label, len(got.Edges), len(want.Edges), len(got.Arrival), len(want.Arrival))
	}
	for i := range got.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("%s: edge %d = %v, want %v", label, i, got.Edges[i], want.Edges[i])
		}
	}
	for i := range got.Arrival {
		if got.Arrival[i] != want.Arrival[i] {
			t.Fatalf("%s: arrival %d = %d, want %d", label, i, got.Arrival[i], want.Arrival[i])
		}
	}
}

func sameGraph(t *testing.T, got, want *graph.Graph, label string) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() || got.Time != want.Time {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for u := 0; u < got.NumNodes(); u++ {
		a, b := got.Neighbors(graph.NodeID(u)), want.Neighbors(graph.NodeID(u))
		if len(a) != len(b) {
			t.Fatalf("%s: node %d degree %d, want %d", label, u, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: node %d entry %d = %d, want %d", label, u, i, a[i], b[i])
			}
		}
	}
}

// replayReference rebuilds the expected trace/rev by feeding src's events
// through a fresh in-memory writer with no faults — the ground truth every
// recovery is compared against.
func replayReference(t *testing.T, src *graph.Trace, n int) (*graph.Trace, []int64) {
	t.Helper()
	st := NewMemStorage()
	l, rec, err := Open(st, Options{}, nil)
	if err != nil {
		t.Fatalf("reference open: %v", err)
	}
	w := newSimWriter(t, l, rec)
	feed(t, w, src, 0, n, 0)
	return w.tr, w.rev
}

func TestRoundTripNoCheckpoint(t *testing.T) {
	src := testEvents(t)
	n := min(500, src.NumEdges())
	st := NewMemStorage()
	opt := Options{GroupCommit: 32, SegmentRecords: 128}

	l, rec, err := Open(st, opt, nil)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	w := newSimWriter(t, l, rec)
	feed(t, w, src, 0, n, 100)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	ref, refRev := w.tr, w.rev
	l2, rec2, err := Open(st, opt, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	sameTrace(t, rec2.Trace, ref, "recovered trace")
	if len(rec2.Rev) != len(refRev) {
		t.Fatalf("recovered %d rev entries, want %d", len(rec2.Rev), len(refRev))
	}
	for i := range refRev {
		if rec2.Rev[i] != refRev[i] {
			t.Fatalf("rev[%d] = %d, want %d", i, rec2.Rev[i], refRev[i])
		}
	}
	if rec2.Truncated {
		t.Fatal("clean close reported a truncated tail")
	}
	if rec2.LastPub == nil || rec2.LastPub.Edges != uint64(n/100*100) {
		t.Fatalf("last publish = %+v, want edges %d", rec2.LastPub, n/100*100)
	}
	if rec2.TailRecords != uint64(n) {
		t.Fatalf("tail records = %d, want %d", rec2.TailRecords, n)
	}

	// The recovered log keeps accepting writes and survives another cycle.
	w2 := newSimWriter(t, l2, rec2)
	feed(t, w2, src, n, min(n+137, src.NumEdges()), 0)
	if err := l2.Close(); err != nil {
		t.Fatalf("close 2: %v", err)
	}
	_, rec3, err := Open(st, opt, nil)
	if err != nil {
		t.Fatalf("open 3: %v", err)
	}
	sameTrace(t, rec3.Trace, w2.tr, "second-generation recovery")
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := testEvents(t)
	n := min(600, src.NumEdges())
	ckAt := 384
	st := NewMemStorage()
	opt := Options{GroupCommit: 32, SegmentRecords: 128}

	l, rec, err := Open(st, opt, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w := newSimWriter(t, l, rec)
	feed(t, w, src, 0, ckAt, 0)

	snap := w.tr.SnapshotAtEdge(ckAt)
	pub := Publish{Seq: 7, Edges: uint64(ckAt), Time: snap.Time}
	if err := l.NotePublish(pub); err != nil {
		t.Fatalf("note publish: %v", err)
	}
	data := CheckpointData{
		Name:    w.tr.Name,
		Arrival: w.tr.Arrival,
		Edges:   w.tr.Edges,
		Rev:     w.rev,
		Graph:   snap,
		Pub:     pub,
	}
	if err := l.WriteCheckpoint(data); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// ckAt covers exactly 3 sealed segments of 128; all must be pruned.
	if got := l.Segments(); got != 1 {
		t.Fatalf("segments after prune = %d, want 1", got)
	}
	feed(t, w, src, ckAt, n, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2, err := Open(st, opt, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	sameTrace(t, rec2.Trace, w.tr, "recovered trace")
	if rec2.CheckpointEdges != uint64(ckAt) {
		t.Fatalf("checkpoint edges = %d, want %d", rec2.CheckpointEdges, ckAt)
	}
	if rec2.TailRecords != uint64(n-ckAt) {
		t.Fatalf("tail records = %d, want %d", rec2.TailRecords, n-ckAt)
	}
	if rec2.Graph == nil {
		t.Fatal("no checkpoint graph recovered")
	}
	sameGraph(t, rec2.Graph, snap, "checkpoint snapshot")
	if rec2.LastPub == nil || *rec2.LastPub != pub {
		t.Fatalf("last publish = %+v, want %+v", rec2.LastPub, pub)
	}

	// The checkpoint graph seeds an incremental builder whose emissions
	// match offline snapshots of the recovered trace.
	b := graph.NewIncrementalBuilderFrom(rec2.Trace, rec2.Graph, int(rec2.CheckpointEdges))
	got := b.AtEdge(n)
	sameGraph(t, got, w.tr.SnapshotAtEdge(n), "builder from checkpoint")
}

func TestCheckpointWithWarmPrefix(t *testing.T) {
	src := testEvents(t)
	warmN := 200
	warm := &graph.Trace{Name: "warm", Arrival: src.Arrival[:0], Edges: nil}
	// Build the warm trace by replaying a prefix (dense IDs, identity map).
	for _, e := range src.Edges[:warmN] {
		if _, err := warm.Append(e.U, e.V, e.Time); err != nil {
			t.Fatalf("warm append: %v", err)
		}
	}
	st := NewMemStorage()
	opt := Options{GroupCommit: 16, SegmentRecords: 64}
	l, rec, err := Open(st, opt, warm)
	if err != nil {
		t.Fatalf("open with warm: %v", err)
	}
	if len(rec.Trace.Edges) != warmN {
		t.Fatalf("fresh open kept %d warm edges, want %d", len(rec.Trace.Edges), warmN)
	}
	// Warm nodes map identity: external ID i ↔ dense i.
	w := newSimWriter(t, l, rec)
	for _, e := range src.Edges[warmN : warmN+150] {
		// Events over warm nodes arrive with identity externals; new nodes
		// use the scrambled space.
		eu, ev := int64(e.U), int64(e.V)
		if int(e.U) >= len(warm.Arrival) {
			eu = extID(e.U)
		}
		if int(e.V) >= len(warm.Arrival) {
			ev = extID(e.V)
		}
		w.ingest(eu, ev, e.Time)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	_, rec2, err := Open(st, opt, warm)
	if err != nil {
		t.Fatalf("reopen with warm: %v", err)
	}
	sameTrace(t, rec2.Trace, w.tr, "warm-prefix recovery")
}

func TestCreateRefusesExistingLog(t *testing.T) {
	st := NewMemStorage()
	l, err := Create(st, Options{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := l.Append(Record{ExtU: 1, ExtV: 2, U: 0, V: 1, T: 5}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := Create(st, Options{}); err == nil {
		t.Fatal("Create on non-empty storage succeeded")
	}
}

func TestInjectedWriteFailurePoisonsLog(t *testing.T) {
	st := NewMemStorage()
	l, rec, err := Open(st, Options{GroupCommit: 4}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w := newSimWriter(t, l, rec)
	w.ingest(1, 2, 10)
	if err := l.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	st.FailWritesAfter(0)
	u, v := w.dense(3), w.dense(4)
	if _, err := w.tr.Append(u, v, 11); err != nil {
		t.Fatalf("trace append: %v", err)
	}
	if err := l.Append(Record{ExtU: 3, ExtV: 4, U: u, V: v, T: 11}); err != nil {
		t.Fatalf("buffered append should not fail: %v", err)
	}
	if err := l.Commit(); err == nil {
		t.Fatal("commit after injected failure succeeded")
	}
	if err := l.Append(Record{ExtU: 5, ExtV: 6, U: 4, V: 5, T: 12}); err == nil {
		t.Fatal("append on poisoned log succeeded")
	}
}

func TestMemStorageReconstruct(t *testing.T) {
	st := NewMemStorage()
	f, err := st.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("hello"))
	f.Sync()
	f.Write([]byte("world"))
	g, err := st.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	g.Write([]byte("xyz"))

	// Crash after 7 payload bytes, everything written survives: "hello" +
	// torn "wo"; b not yet written.
	at7 := st.Reconstruct(7, false)
	if b, _ := at7.Bytes("a"); !bytes.Equal(b, []byte("hellowo")) {
		t.Fatalf("a at byte 7 = %q", b)
	}
	if _, err := at7.Bytes("b"); err == nil {
		t.Fatal("b should not exist at byte 7")
	}

	// Same crash point, only synced bytes survive.
	at7s := st.Reconstruct(7, true)
	if b, _ := at7s.Bytes("a"); !bytes.Equal(b, []byte("hello")) {
		t.Fatalf("synced a at byte 7 = %q", b)
	}

	// Crash at the very end: everything written.
	full := st.Reconstruct(st.TotalWriteBytes(), false)
	if b, _ := full.Bytes("a"); !bytes.Equal(b, []byte("helloworld")) {
		t.Fatalf("full a = %q", b)
	}
	if b, _ := full.Bytes("b"); !bytes.Equal(b, []byte("xyz")) {
		t.Fatalf("full b = %q", b)
	}

	// Rename ordering: a rename before the crash point applies.
	if err := st.Rename("b", "c"); err != nil {
		t.Fatal(err)
	}
	ren := st.Reconstruct(st.TotalWriteBytes(), false)
	if _, err := ren.Bytes("b"); err == nil {
		t.Fatal("b should have been renamed")
	}
	if b, _ := ren.Bytes("c"); !bytes.Equal(b, []byte("xyz")) {
		t.Fatalf("c = %q", b)
	}
}

func TestDirStorageRoundTrip(t *testing.T) {
	src := testEvents(t)
	n := min(300, src.NumEdges())
	dir := t.TempDir()
	st, err := NewDirStorage(dir)
	if err != nil {
		t.Fatalf("dir storage: %v", err)
	}
	opt := Options{GroupCommit: 32, SegmentRecords: 128}
	l, rec, err := Open(st, opt, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w := newSimWriter(t, l, rec)
	feed(t, w, src, 0, 256, 0)
	snap := w.tr.SnapshotAtEdge(256)
	pub := Publish{Seq: 1, Edges: 256, Time: snap.Time}
	if err := l.NotePublish(pub); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteCheckpoint(CheckpointData{
		Name: w.tr.Name, Arrival: w.tr.Arrival, Edges: w.tr.Edges,
		Rev: w.rev, Graph: snap, Pub: pub,
	}); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	feed(t, w, src, 256, n, 0)
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l2, rec2, err := Open(st, opt, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	sameTrace(t, rec2.Trace, w.tr, "dir-backed recovery")
	sameGraph(t, rec2.Graph, snap, "dir-backed checkpoint graph")
}

package wal

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Storage is the byte-level substrate the log writes through. Two backends
// ship: DirStorage (real files, fsync durability) and MemStorage (an
// in-memory journal that can reconstruct the state a crash at any byte
// boundary would have left behind — the fault-injection vehicle the crash
// matrix drives). The log's durability contract is expressed entirely in
// these five operations: data survives a crash only once Sync returned, and
// Rename is the atomic publish primitive checkpoints rely on.
type Storage interface {
	// List returns every stored file name, sorted.
	List() ([]string, error)
	// Bytes returns the full content of a file. Backends return a zero-copy
	// view where they can (MemStorage's buffer, DirStorage's mmap on linux);
	// callers must treat the slice as immutable.
	Bytes(name string) ([]byte, error)
	// Create opens a new file for appending, truncating any existing one.
	Create(name string) (File, error)
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// Remove deletes a file. Removing a missing file is not an error.
	Remove(name string) error
}

// File is the injectable write handle. Tests wrap it (DirStorage.Wrap, or
// MemStorage's built-in fault hooks) to simulate short writes, write errors,
// and fsync loss without touching the log layer above.
type File interface {
	io.Writer
	// Sync makes everything written so far crash-durable.
	Sync() error
	Close() error
}

// ---------------------------------------------------------------------------
// Filesystem backend.

// DirStorage stores files flat in one directory. Creates, renames, and
// removes fsync the directory so the namespace operations are as durable as
// the data; Bytes memory-maps on platforms that support it (see
// storage_mmap_linux.go) so checkpoint loads are zero-copy.
type DirStorage struct {
	Dir string
	// Wrap, when set, intercepts every created file — the filesystem-level
	// fault-injection hook (short writes, dropped syncs).
	Wrap func(name string, f File) File
}

// NewDirStorage creates the directory if needed and returns the backend.
func NewDirStorage(dir string) (*DirStorage, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStorage{Dir: dir}, nil
}

func (d *DirStorage) List() ([]string, error) {
	ents, err := os.ReadDir(d.Dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (d *DirStorage) Bytes(name string) ([]byte, error) {
	return d.readFile(filepath.Join(d.Dir, name))
}

type dirFile struct{ f *os.File }

func (f *dirFile) Write(p []byte) (int, error) { return f.f.Write(p) }
func (f *dirFile) Sync() error                 { return f.f.Sync() }
func (f *dirFile) Close() error                { return f.f.Close() }

func (d *DirStorage) Create(name string) (File, error) {
	f, err := os.Create(filepath.Join(d.Dir, name))
	if err != nil {
		return nil, err
	}
	if err := d.syncDir(); err != nil {
		f.Close()
		return nil, err
	}
	var out File = &dirFile{f: f}
	if d.Wrap != nil {
		out = d.Wrap(name, out)
	}
	return out, nil
}

func (d *DirStorage) Rename(oldname, newname string) error {
	if err := os.Rename(filepath.Join(d.Dir, oldname), filepath.Join(d.Dir, newname)); err != nil {
		return err
	}
	return d.syncDir()
}

func (d *DirStorage) Remove(name string) error {
	if err := os.Remove(filepath.Join(d.Dir, name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return d.syncDir()
}

// syncDir fsyncs the directory so creates/renames/removes survive a crash.
func (d *DirStorage) syncDir() error {
	f, err := os.Open(d.Dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	f.Close()
	return err
}

// ---------------------------------------------------------------------------
// In-memory backend with crash reconstruction.

// OpKind labels one journaled storage operation.
type OpKind int

const (
	OpCreate OpKind = iota
	OpWrite
	OpSync
	OpRename
	OpRemove
)

func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// Op is one journal entry: a namespace operation (zero-width) or a write
// (Len payload bytes starting at global byte offset Start). The crash
// harness enumerates these to place crashes at every interesting boundary.
type Op struct {
	Kind  OpKind
	Name  string
	To    string // rename target
	Start int64  // global write-stream offset (writes only)
	Len   int64  // payload length (writes only)
}

type memOp struct {
	Op
	data []byte
}

type memFile struct {
	data   []byte
	synced int
}

// MemStorage is the deterministic in-memory backend. Every operation is
// journaled; Reconstruct replays a prefix of the journal onto a fresh
// MemStorage, optionally dropping bytes that were never synced — exactly the
// two states a kill -9 can leave behind (everything-persisted up to a torn
// byte, or synced-data-only). Safe for concurrent use.
type MemStorage struct {
	mu      sync.Mutex
	files   map[string]*memFile
	journal []memOp
	written int64

	// failWriteAfter, when >= 0, makes Write return errInjected once the
	// cumulative payload reaches it — the write-error injection hook.
	failWriteAfter int64
}

// ErrInjected is the failure MemStorage write/sync fault hooks return.
var ErrInjected = fmt.Errorf("wal: injected storage failure")

// NewMemStorage returns an empty in-memory backend.
func NewMemStorage() *MemStorage {
	return &MemStorage{files: make(map[string]*memFile), failWriteAfter: -1}
}

// FailWritesAfter arms the write-error hook: once n more payload bytes have
// been written, every subsequent Write fails with ErrInjected. Pass a
// negative n to disarm.
func (m *MemStorage) FailWritesAfter(n int64) {
	m.mu.Lock()
	if n < 0 {
		m.failWriteAfter = -1
	} else {
		m.failWriteAfter = m.written + n
	}
	m.mu.Unlock()
}

func (m *MemStorage) List() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemStorage) Bytes(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("wal: %s: %w", name, os.ErrNotExist)
	}
	return f.data, nil
}

type memHandle struct {
	st   *MemStorage
	name string
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.st.mu.Lock()
	defer h.st.mu.Unlock()
	f, ok := h.st.files[h.name]
	if !ok {
		return 0, fmt.Errorf("wal: write to removed file %s", h.name)
	}
	if h.st.failWriteAfter >= 0 && h.st.written >= h.st.failWriteAfter {
		return 0, ErrInjected
	}
	data := make([]byte, len(p))
	copy(data, p)
	h.st.journal = append(h.st.journal, memOp{
		Op:   Op{Kind: OpWrite, Name: h.name, Start: h.st.written, Len: int64(len(p))},
		data: data,
	})
	f.data = append(f.data, data...)
	h.st.written += int64(len(p))
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.st.mu.Lock()
	defer h.st.mu.Unlock()
	f, ok := h.st.files[h.name]
	if !ok {
		return fmt.Errorf("wal: sync of removed file %s", h.name)
	}
	f.synced = len(f.data)
	h.st.journal = append(h.st.journal, memOp{Op: Op{Kind: OpSync, Name: h.name}})
	return nil
}

func (h *memHandle) Close() error { return nil }

func (m *MemStorage) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{}
	m.journal = append(m.journal, memOp{Op: Op{Kind: OpCreate, Name: name}})
	return &memHandle{st: m, name: name}, nil
}

func (m *MemStorage) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("wal: rename missing file %s", oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	m.journal = append(m.journal, memOp{Op: Op{Kind: OpRename, Name: oldname, To: newname}})
	return nil
}

func (m *MemStorage) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
	m.journal = append(m.journal, memOp{Op: Op{Kind: OpRemove, Name: name}})
	return nil
}

// Ops returns the journal's operation summaries (no payloads), for crash
// harnesses picking boundaries.
func (m *MemStorage) Ops() []Op {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Op, len(m.journal))
	for i, op := range m.journal {
		out[i] = op.Op
	}
	return out
}

// TotalWriteBytes returns the length of the global write stream so far —
// the exclusive upper bound for Reconstruct crash points.
func (m *MemStorage) TotalWriteBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Reconstruct builds the storage state a crash at global write offset
// byteLimit would leave behind: namespace operations that happened before
// the write carrying byteLimit are applied, write payloads are kept up to
// the limit (the last write possibly torn mid-record), and — when
// syncedOnly is set — each file is additionally truncated to the length its
// last pre-crash Sync covered, modeling lost page-cache contents. The
// receiver is untouched; the result is an independent MemStorage ready for
// recovery.
func (m *MemStorage) Reconstruct(byteLimit int64, syncedOnly bool) *MemStorage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemStorage()
	syncedAt := make(map[*memFile]int)
	for _, op := range m.journal {
		if op.Kind == OpWrite && op.Start >= byteLimit {
			break
		}
		switch op.Kind {
		case OpCreate:
			out.files[op.Name] = &memFile{}
		case OpWrite:
			torn := op.Start+op.Len > byteLimit
			f := out.files[op.Name]
			if f != nil {
				data := op.data
				if torn {
					data = data[:byteLimit-op.Start]
				}
				f.data = append(f.data, data...)
			}
			if torn {
				// The crash landed inside this write; nothing after it —
				// including namespace operations — happened.
				goto done
			}
		case OpSync:
			if f := out.files[op.Name]; f != nil {
				syncedAt[f] = len(f.data)
			}
		case OpRename:
			if f := out.files[op.Name]; f != nil {
				delete(out.files, op.Name)
				out.files[op.To] = f
			}
		case OpRemove:
			delete(out.files, op.Name)
		}
	}
done:
	if syncedOnly {
		for _, f := range out.files {
			f.data = f.data[:syncedAt[f]]
			f.synced = len(f.data)
		}
	}
	return out
}

// Clone returns an independent deep copy of the current state (journal not
// included) — the "clean shutdown" reference the crash harness compares
// recoveries against.
func (m *MemStorage) Clone() *MemStorage {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemStorage()
	for name, f := range m.files {
		data := make([]byte, len(f.data))
		copy(data, f.data)
		out.files[name] = &memFile{data: data, synced: f.synced}
	}
	return out
}

// segName formats the file name of segment seq; parseSegName inverts it.
func segName(seq uint64) string { return fmt.Sprintf("wal-%08d.seg", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name, "wal-%08d.seg", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"linkpred/internal/graph"
)

// propEvent is one randomized ingest event in external ID space.
type propEvent struct {
	extU, extV, tm int64
}

// randomEvents generates a hostile-but-legal event stream: sparse external
// IDs, occasional out-of-order timestamps (exercising Append's clamping —
// the replay-determinism linchpin), and heavy pair reuse.
func randomEvents(rnd *rand.Rand, n int) []propEvent {
	pool := 20 + rnd.Intn(60)
	tm := int64(1_000)
	out := make([]propEvent, n)
	for i := range out {
		u := rnd.Intn(pool)
		v := rnd.Intn(pool - 1)
		if v >= u {
			v++
		}
		tm += rnd.Int63n(7) - 2 // sometimes steps backwards
		out[i] = propEvent{extU: int64(u)*13 + 7, extV: int64(v)*13 + 7, tm: tm}
	}
	return out
}

// propRun drives one randomized lifecycle: ingest with random publish and
// checkpoint cadence under random batching/segmentation parameters.
type propRun struct {
	st     *MemStorage
	opt    Options
	events []propEvent
	ref    *graph.Trace
	refRev []int64
	acks   []ackPoint
}

func buildPropRun(t *testing.T, rnd *rand.Rand, events []propEvent) *propRun {
	t.Helper()
	run := &propRun{
		st: NewMemStorage(),
		opt: Options{
			GroupCommit:    1 + rnd.Intn(32),
			SegmentRecords: 8 + rnd.Intn(88),
		},
		events: events,
	}
	ckEvery := 40 + rnd.Intn(200) // edges between checkpoints
	pubEvery := 8 + rnd.Intn(24)

	l, rec, err := Open(run.st, run.opt, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	w := newSimWriter(t, l, rec)
	pubSeq := int64(0)
	lastCk := 0
	for i, ev := range events {
		w.ingest(ev.extU, ev.extV, ev.tm)
		nn := len(w.tr.Edges)
		if (i+1)%pubEvery == 0 {
			pubSeq++
			p := Publish{Seq: pubSeq, Edges: uint64(nn), Time: w.tr.Edges[nn-1].Time}
			if err := l.NotePublish(p); err != nil {
				t.Fatalf("publish: %v", err)
			}
			if nn-lastCk >= ckEvery {
				if err := l.WriteCheckpoint(CheckpointData{
					Name: w.tr.Name, Arrival: w.tr.Arrival, Edges: w.tr.Edges,
					Rev: w.rev, Graph: w.tr.SnapshotAtEdge(nn), Pub: p,
				}); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
				lastCk = nn
				run.acks = append(run.acks, ackPoint{bytes: run.st.TotalWriteBytes(), edges: nn})
			}
		}
		if rnd.Intn(16) == 0 {
			if err := l.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			run.acks = append(run.acks, ackPoint{bytes: run.st.TotalWriteBytes(), edges: nn})
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("final commit: %v", err)
	}
	run.acks = append(run.acks, ackPoint{bytes: run.st.TotalWriteBytes(), edges: len(w.tr.Edges)})
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	run.ref, run.refRev = w.tr, w.rev
	return run
}

func (r *propRun) ackedFloor(limit int64) int {
	floor := 0
	for _, a := range r.acks {
		if a.bytes <= limit {
			floor = a.edges
		}
	}
	return floor
}

// TestPropertyCrashRecovery: for random traces and random (checkpoint
// interval, batch size, crash point) triples, recovery from checkpoint +
// tail is equivalent to a full from-scratch replay of the same event
// prefix — same trace state, same ID map, and a rebuilt snapshot
// bit-identical to the offline one.
func TestPropertyCrashRecovery(t *testing.T) {
	trials := 24
	crashesPer := 12
	if testing.Short() {
		trials, crashesPer = 6, 6
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(int64(9000 + trial)))
			events := randomEvents(rnd, 150+rnd.Intn(350))
			run := buildPropRun(t, rnd, events)
			total := run.st.TotalWriteBytes()
			for c := 0; c < crashesPer; c++ {
				limit := rnd.Int63n(total + 1)
				synced := rnd.Intn(2) == 0
				label := fmt.Sprintf("crash@%d synced=%v", limit, synced)

				st := run.st.Reconstruct(limit, synced)
				_, rec, err := Open(st, run.opt, nil)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				samePrefix(t, rec.Trace, run.ref, label)
				k := len(rec.Trace.Edges)
				if synced && k < run.ackedFloor(limit) {
					t.Fatalf("%s: recovered %d < acked floor %d", label, k, run.ackedFloor(limit))
				}
				// Rev must be the reference prefix.
				if len(rec.Rev) > len(run.refRev) {
					t.Fatalf("%s: recovered %d rev entries, reference has %d", label, len(rec.Rev), len(run.refRev))
				}
				for i := range rec.Rev {
					if rec.Rev[i] != run.refRev[i] {
						t.Fatalf("%s: rev[%d] = %d, want %d", label, i, rec.Rev[i], run.refRev[i])
					}
				}
				// replay(checkpoint + tail) ≡ full replay, down to the
				// rebuilt snapshot bytes.
				var rebuilt *graph.Graph
				if rec.Graph != nil {
					rebuilt = graph.NewIncrementalBuilderFrom(rec.Trace, rec.Graph, int(rec.CheckpointEdges)).AtEdge(k)
				} else {
					rebuilt = graph.NewIncrementalBuilder(rec.Trace).AtEdge(k)
				}
				sameGraph(t, rebuilt, rec.Trace.SnapshotAtEdge(k), label)
			}
		})
	}
}

// TestPropertyFlippedByteRejected: any single flipped byte in a sealed
// segment breaks either a frame CRC or the hash chain and recovery must
// refuse; a flipped byte in the checkpoint breaks its digest. A flip in
// the open tail segment may legally truncate (indistinguishable from a
// torn write) but must never yield a non-prefix state.
func TestPropertyFlippedByteRejected(t *testing.T) {
	flipsPerFile := 48
	if testing.Short() {
		flipsPerFile = 12
	}
	rnd := rand.New(rand.NewSource(4242))
	events := randomEvents(rnd, 400)
	run := buildPropRun(t, rnd, events)

	names, err := run.st.List()
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	hasCkpt := false
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segs = append(segs, n)
		}
		if n == ckptName {
			hasCkpt = true
		}
	}
	if len(segs) < 2 || !hasCkpt {
		t.Fatalf("need sealed segments and a checkpoint (segments=%d ckpt=%v)", len(segs), hasCkpt)
	}
	tail := segs[len(segs)-1] // highest seq: the open tail, List is sorted

	flip := func(name string, off int) *MemStorage {
		st := run.st.Clone()
		b, err := st.Bytes(name)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), b...)
		mut[off] ^= 0x41
		st.files[name] = &memFile{data: mut, synced: len(mut)}
		return st
	}

	check := func(name string, sealed bool) {
		b, err := run.st.Bytes(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < flipsPerFile && len(b) > 0; i++ {
			off := rnd.Intn(len(b))
			st := flip(name, off)
			_, rec, err := Open(st, run.opt, nil)
			if sealed {
				if err == nil {
					t.Fatalf("flip %s@%d: recovery accepted a corrupted sealed file", name, off)
				}
				continue
			}
			// Tail flips: rejection or a clean truncation to a prefix.
			if err != nil {
				continue
			}
			samePrefix(t, rec.Trace, run.ref, fmt.Sprintf("tail flip %s@%d", name, off))
			if len(rec.Trace.Edges) == len(run.ref.Edges) {
				t.Fatalf("tail flip %s@%d: full-length recovery despite corruption", name, off)
			}
		}
	}
	check(ckptName, true)
	for _, s := range segs[:len(segs)-1] {
		check(s, true)
	}
	check(tail, false)
}

// TestPropertyChainDetectsCrossSegmentSplice: replacing a sealed segment
// with a same-length, individually-CRC-valid forgery still fails the hash
// chain — integrity is not just per-frame.
func TestPropertyChainDetectsCrossSegmentSplice(t *testing.T) {
	rnd := rand.New(rand.NewSource(777))
	opt := Options{GroupCommit: 8, SegmentRecords: 32}
	build := func(events []propEvent) *MemStorage {
		st := NewMemStorage()
		l, rec, err := Open(st, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		w := newSimWriter(t, l, rec)
		for _, ev := range events {
			w.ingest(ev.extU, ev.extV, ev.tm)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	// Same parameters, different event streams: segment bases line up
	// (rotation is at exact record counts), contents differ, and every
	// spliced segment is individually well-formed — only the chain can
	// tell the logs apart.
	stA := build(randomEvents(rnd, 200))
	stB := build(randomEvents(rnd, 200))
	// 200 records at 32/segment = 6 sealed segments + open tail in each.
	spliced := stA.Clone()
	bb, err := stB.Bytes(segName(2))
	if err != nil {
		t.Fatal(err)
	}
	spliced.files[segName(2)] = &memFile{data: append([]byte(nil), bb...), synced: len(bb)}
	if _, _, err := Open(spliced, opt, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("spliced segment recovery: err = %v, want ErrCorrupt", err)
	}
}

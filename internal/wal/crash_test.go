package wal

import (
	"errors"
	"fmt"
	"testing"

	"linkpred/internal/graph"
)

// crashScenario drives a full ingest/publish/checkpoint/ingest lifecycle
// against a journaled MemStorage and returns everything the crash matrix
// needs: the storage (with its journal), the reference end state, the
// event stream by index, and the ack floor — for every byte offset, the
// trace length whose durability had been acknowledged to the application
// before that offset was written.
type crashScenario struct {
	st  *MemStorage
	opt Options
	src *graph.Trace // event source: event i = (extID(U), extID(V), Time)
	ref *graph.Trace // uninterrupted end state
	// acks[i] = {bytes, edges}: after acks[i].bytes journal bytes, edges
	// trace edges were acked durable. Sorted by bytes.
	acks []ackPoint
	n    int // events ingested
}

type ackPoint struct {
	bytes int64
	edges int
}

func buildCrashScenario(t *testing.T, src *graph.Trace, n, ckAt int, opt Options) *crashScenario {
	t.Helper()
	sc := &crashScenario{st: NewMemStorage(), opt: opt, src: src, n: n}
	l, rec, err := Open(sc.st, opt, nil)
	if err != nil {
		t.Fatalf("scenario open: %v", err)
	}
	w := newSimWriter(t, l, rec)
	ack := func() {
		sc.acks = append(sc.acks, ackPoint{bytes: sc.st.TotalWriteBytes(), edges: len(w.tr.Edges)})
	}
	pubSeq := int64(0)
	pub := func() Publish {
		pubSeq++
		nn := len(w.tr.Edges)
		p := Publish{Seq: pubSeq, Edges: uint64(nn), Time: w.tr.Edges[nn-1].Time}
		if err := l.NotePublish(p); err != nil {
			t.Fatalf("note publish: %v", err)
		}
		return p
	}
	for i := 0; i < n; i++ {
		e := src.Edges[i]
		w.ingest(extID(e.U), extID(e.V), e.Time)
		if (i+1)%32 == 0 {
			pub()
		}
		if (i+1)%24 == 0 {
			if err := l.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			ack()
		}
		if i+1 == ckAt {
			p := pub()
			snap := w.tr.SnapshotAtEdge(ckAt)
			if err := l.WriteCheckpoint(CheckpointData{
				Name: w.tr.Name, Arrival: w.tr.Arrival, Edges: w.tr.Edges,
				Rev: w.rev, Graph: snap, Pub: p,
			}); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			ack()
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("final commit: %v", err)
	}
	ack()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	sc.ref = w.tr
	return sc
}

// ackedFloor returns the trace length guaranteed durable before journal
// byte offset limit.
func (sc *crashScenario) ackedFloor(limit int64) int {
	floor := 0
	for _, a := range sc.acks {
		if a.bytes <= limit {
			floor = a.edges
		}
	}
	return floor
}

// verifyRecovery reconstructs the crash state at the given byte limit,
// recovers, and checks the full contract: recovery never errors on a
// crash-shaped state, lands on a state-prefix of the reference at or above
// the ack floor, and the snapshot rebuilt through the real recovery path
// (zero-copy checkpoint CSR + seeded incremental builder + tail replay) is
// identical to an offline from-scratch SnapshotAtEdge at the recovered
// length.
func (sc *crashScenario) verifyRecovery(t *testing.T, limit int64, syncedOnly bool, label string) *Recovered {
	t.Helper()
	st := sc.st.Reconstruct(limit, syncedOnly)
	_, rec, err := Open(st, sc.opt, nil)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	samePrefix(t, rec.Trace, sc.ref, label)
	k := len(rec.Trace.Edges)
	if floor := sc.ackedFloor(limit); syncedOnly && k < floor {
		t.Fatalf("%s: recovered %d edges, but %d were acked durable", label, k, floor)
	}
	var rebuilt *graph.Graph
	if rec.Graph != nil {
		rebuilt = graph.NewIncrementalBuilderFrom(rec.Trace, rec.Graph, int(rec.CheckpointEdges)).AtEdge(k)
	} else {
		rebuilt = graph.NewIncrementalBuilder(rec.Trace).AtEdge(k)
	}
	sameGraph(t, rebuilt, rec.Trace.SnapshotAtEdge(k), label+": rebuilt snapshot")
	if rec.LastPub != nil && rec.LastPub.Edges > uint64(k) {
		t.Fatalf("%s: recovered publish at %d beyond trace length %d", label, rec.LastPub.Edges, k)
	}
	return rec
}

// continueAndReconverge resumes ingest from the recovered state, feeding
// the remaining reference events, and verifies the resumed log round-trips
// to the exact reference end state.
func (sc *crashScenario) continueAndReconverge(t *testing.T, limit int64, syncedOnly bool, label string) {
	t.Helper()
	st := sc.st.Reconstruct(limit, syncedOnly)
	l, rec, err := Open(st, sc.opt, nil)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	w := &simWriter{t: t, tr: rec.Trace, rev: rec.Rev, remap: rec.Remap, log: l}
	for i := len(rec.Trace.Edges); i < sc.n; i++ {
		e := sc.src.Edges[i]
		w.ingest(extID(e.U), extID(e.V), e.Time)
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("%s: resumed commit: %v", label, err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("%s: resumed close: %v", label, err)
	}
	_, rec2, err := Open(st, sc.opt, nil)
	if err != nil {
		t.Fatalf("%s: re-recovery failed: %v", label, err)
	}
	sameTrace(t, rec2.Trace, sc.ref, label+": reconverged trace")
}

// TestCrashMatrix is the named half of the fault-injection harness: one
// cell per crash class the design calls out, each located by inspecting
// the storage journal so the cell provably hits the intended boundary.
func TestCrashMatrix(t *testing.T) {
	src := testEvents(t)
	opt := Options{GroupCommit: 16, SegmentRecords: 48}
	n := min(160, src.NumEdges())
	sc := buildCrashScenario(t, src, n, 96, opt)
	ops := sc.st.Ops()

	findWrite := func(name string, pred func(op Op, isFirstWrite bool) bool) (Op, bool) {
		first := map[string]bool{}
		for _, op := range ops {
			if op.Kind != OpWrite {
				continue
			}
			isFirst := !first[op.Name]
			first[op.Name] = true
			if (name == "" || op.Name == name) && pred(op, isFirst) {
				return op, true
			}
		}
		return Op{}, false
	}
	isSeg := func(n string) bool { _, ok := parseSegName(n); return ok }

	type cell struct {
		name  string
		limit int64
	}
	var cells []cell
	add := func(name string, limit int64, found bool) {
		if !found {
			t.Fatalf("crash cell %q: no matching journal operation in scenario", name)
		}
		cells = append(cells, cell{name, limit})
	}

	// Crash mid-record: inside the payload of a segment E-frame.
	op, ok := findWrite("", func(op Op, first bool) bool {
		return isSeg(op.Name) && !first && op.Len >= 9+recordSize
	})
	add("mid-record", op.Start+5+recordSize/2, ok)

	// Crash mid-segment-header: halfway through a header write. The first
	// write to any segment file is its 60-byte header.
	op, ok = findWrite("", func(op Op, first bool) bool {
		return isSeg(op.Name) && first && op.Len == headerSize
	})
	add("mid-segment-header", op.Start+headerSize/2, ok)

	// Crash between group-commit batches: exactly at the end of an E-frame
	// write, before the next frame (and before the covering sync).
	op, ok = findWrite("", func(op Op, first bool) bool {
		return isSeg(op.Name) && !first && op.Len >= 9+recordSize
	})
	add("between-batches", op.Start+op.Len, ok)

	// Crash during checkpoint write: inside the checkpoint.tmp body.
	op, ok = findWrite(ckptTmpName, func(op Op, first bool) bool { return !first })
	add("during-checkpoint", op.Start+op.Len/2, ok)

	// Crash during segment rotation: a successor segment's header write is
	// exactly the rotation boundary — crash at its start (file created,
	// zero bytes) and mid-way.
	var headerWrites []Op
	first := map[string]bool{}
	for _, o := range ops {
		if o.Kind != OpWrite {
			continue
		}
		if isSeg(o.Name) && !first[o.Name] && o.Len == headerSize {
			headerWrites = append(headerWrites, o)
		}
		first[o.Name] = true
	}
	if len(headerWrites) < 2 {
		t.Fatalf("scenario produced %d segments, need a rotation", len(headerWrites))
	}
	rot := headerWrites[1] // first rotated-into segment
	add("during-rotation-created", rot.Start, true)
	add("during-rotation-header", rot.Start+headerSize-1, true)

	for _, c := range cells {
		for _, synced := range []bool{false, true} {
			mode := "written"
			if synced {
				mode = "synced-only"
			}
			label := fmt.Sprintf("%s/%s", c.name, mode)
			t.Run(label, func(t *testing.T) {
				sc.verifyRecovery(t, c.limit, synced, label)
				sc.continueAndReconverge(t, c.limit, synced, label)
			})
		}
	}
}

// TestCrashEveryByte is the exhaustive half: a crash at every single byte
// boundary of the scenario's write stream, in both torn-write and
// fsync-loss modes, must recover to a verified prefix. Short mode strides.
func TestCrashEveryByte(t *testing.T) {
	src := testEvents(t)
	opt := Options{GroupCommit: 16, SegmentRecords: 48}
	n := min(160, src.NumEdges())
	sc := buildCrashScenario(t, src, n, 96, opt)
	total := sc.st.TotalWriteBytes()
	stride := int64(1)
	if testing.Short() {
		stride = 17
	}
	resample := int64(251) // prime stride for the (expensive) resume check
	for limit := int64(0); limit <= total; limit += stride {
		for _, synced := range []bool{false, true} {
			label := fmt.Sprintf("byte %d/%d synced=%v", limit, total, synced)
			sc.verifyRecovery(t, limit, synced, label)
			if limit%resample == 0 {
				sc.continueAndReconverge(t, limit, synced, label)
			}
		}
	}
}

// TestRecoveryRejectsNonCrashDamage: deleting a whole mid-log segment is
// not crash-shaped and must refuse with ErrCorrupt rather than silently
// skipping records.
func TestRecoveryRejectsNonCrashDamage(t *testing.T) {
	src := testEvents(t)
	opt := Options{GroupCommit: 16, SegmentRecords: 32}
	sc := buildCrashScenario(t, src, min(128, src.NumEdges()), 64, opt)

	st := sc.st.Clone()
	names, _ := st.List()
	var segs []string
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			segs = append(segs, n)
		}
	}
	if len(segs) < 2 {
		t.Fatalf("need ≥2 live segments, have %d", len(segs))
	}
	if err := st.Remove(segs[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(st, opt, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovery with a missing segment: err = %v, want ErrCorrupt", err)
	}
}

package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"linkpred/internal/graph"
)

// ErrCorrupt marks recovery failures that cannot be explained by a crash:
// a hash-chain break, a CRC-valid frame whose replay contradicts the
// trace, a missing segment. A torn tail is not corruption — it truncates.
var ErrCorrupt = errors.New("corrupt write-ahead log")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("wal: %w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Recovered is the state Open rebuilt: the recovered trace (checkpoint
// prefix plus replayed tail, provably a prefix of the pre-crash trace),
// the external↔dense ID maps, the checkpoint's snapshot (nil without a
// checkpoint), and the last publish marker at or before the recovered
// length — a restarted server that lands exactly on a published length
// reuses its snapshot sequence number, keeping responses byte-identical
// across the crash.
type Recovered struct {
	Trace *graph.Trace
	// Rev maps dense → external IDs; Remap is its inverse.
	Rev   []int64
	Remap map[int64]graph.NodeID
	// Graph is the checkpoint's published snapshot, loaded zero-copy where
	// the platform allows. Nil when no checkpoint exists.
	Graph *graph.Graph
	// CheckpointEdges is the trace length the checkpoint covered (0 if none).
	CheckpointEdges uint64
	// LastPub is the most recent publish marker covered by the recovered
	// trace, or nil if nothing was ever published durably.
	LastPub *Publish
	// TailRecords counts records replayed from segments past the
	// checkpoint; Truncated reports whether a torn tail was discarded.
	TailRecords uint64
	Truncated   bool
	// Segments is the number of live segment files scanned.
	Segments int
}

// Open recovers a log from st and returns it positioned to continue
// appending, plus the recovered state. warm supplies the pre-WAL trace
// prefix (what the server was originally booted with) when no checkpoint
// covers it; pass nil or an empty trace for a server born empty. On fresh
// storage Open degenerates to Create with warm as the initial state.
//
// The recovery protocol: load and verify the checkpoint (if any), then
// scan segments ascending from its anchor. Every segment header must
// chain-match the state recovered so far (base = next trace index,
// prevChain = running chain value); every frame must pass its CRC; every
// record must replay through graph.Trace.Append to exactly the edge it
// recorded. A torn frame truncates the log there — tolerated in the final
// segment unconditionally, and in an earlier segment only when its
// successor's header commits the truncated state (otherwise data loss is
// not crash-shaped and recovery refuses with ErrCorrupt). Recovery never
// appends to a recovered segment: the log rotates, so the first post-
// recovery write starts a fresh segment whose header commits the verified
// chain.
func Open(st Storage, opt Options, warm *graph.Trace) (*Log, *Recovered, error) {
	opt = opt.withDefaults()
	names, err := st.List()
	if err != nil {
		return nil, nil, err
	}

	// A leftover checkpoint.tmp is a checkpoint that crashed before its
	// rename — the previous checkpoint (if any) is still authoritative.
	var ck *Checkpoint
	for _, n := range names {
		switch n {
		case ckptTmpName:
			if err := st.Remove(n); err != nil {
				return nil, nil, err
			}
		case ckptName:
			b, err := st.Bytes(n)
			if err != nil {
				return nil, nil, err
			}
			if ck, err = DecodeCheckpoint(b); err != nil {
				return nil, nil, err
			}
		}
	}

	rec := &Recovered{}
	var tr *graph.Trace
	var rev []int64
	var firstSeq uint64
	var chain [32]byte
	if ck != nil {
		tr = &graph.Trace{Name: ck.Name, Arrival: ck.Arrival, Edges: ck.Edges}
		if tr.Name == "" && warm != nil {
			tr.Name = warm.Name
		}
		rev = ck.Rev
		firstSeq = ck.FirstSeq
		chain = ck.ChainAnchor
		rec.Graph = ck.Graph
		rec.CheckpointEdges = uint64(len(ck.Edges))
		pub := ck.Pub
		rec.LastPub = &pub
	} else {
		tr = &graph.Trace{}
		if warm != nil {
			tr.Name = warm.Name
			tr.Arrival = append([]int64(nil), warm.Arrival...)
			tr.Edges = append([]graph.Edge(nil), warm.Edges...)
		}
		rev = make([]int64, len(tr.Arrival))
		for i := range rev {
			rev[i] = int64(i)
		}
	}
	start := uint64(len(tr.Edges))
	remap := make(map[int64]graph.NodeID, len(rev))
	for d, ext := range rev {
		if prev, dup := remap[ext]; dup {
			return nil, nil, corruptf("checkpoint maps external id %d to dense %d and %d", ext, prev, d)
		}
		remap[ext] = graph.NodeID(d)
	}

	// Collect live segments. Anything below the checkpoint anchor is fully
	// covered — a crash between checkpoint rename and prune leaves them
	// behind; finish the prune here.
	var seqs []uint64
	for _, n := range names {
		seq, ok := parseSegName(n)
		if !ok {
			continue
		}
		if seq < firstSeq {
			if err := st.Remove(n); err != nil {
				return nil, nil, err
			}
			continue
		}
		seqs = append(seqs, seq)
	}
	for i, seq := range seqs {
		if want := firstSeq + uint64(i); seq != want {
			return nil, nil, corruptf("segment %d missing (found %d)", want, seq)
		}
	}

	r := &replayer{tr: tr, rev: rev, remap: remap, start: start}
	idx := start
	var sealed []segMeta
	openSeq := firstSeq
	for i, seq := range seqs {
		last := i == len(seqs)-1
		b, err := st.Bytes(segName(seq))
		if err != nil {
			return nil, nil, err
		}
		meta, ok := parseSegHeader(b, seq)
		if !ok {
			// A torn header means the segment's very first write never
			// completed — nothing in the file can have been acked. Tolerable
			// only at the end of the log.
			if !last {
				return nil, nil, corruptf("segment %d header unreadable mid-log", seq)
			}
			if err := st.Remove(segName(seq)); err != nil {
				return nil, nil, err
			}
			rec.Truncated = rec.Truncated || len(b) > 0
			openSeq = seq
			break
		}
		if i == 0 {
			if meta.base > start {
				return nil, nil, corruptf("segment %d starts at trace index %d past recovered state %d", seq, meta.base, start)
			}
			idx = meta.base
			// Records below the recovered prefix replay as assertions only;
			// tell the replayer where this segment rejoins.
			r.idx = meta.base
		} else if meta.base != idx {
			return nil, nil, corruptf("segment %d starts at trace index %d, want %d", seq, meta.base, idx)
		}
		if meta.prevChain != chain {
			return nil, nil, corruptf("segment %d hash chain mismatch", seq)
		}
		valid, torn, err := walkFrames(b[headerSize:], r.frame)
		if err != nil {
			return nil, nil, err
		}
		idx = r.idx
		if torn {
			rec.Truncated = true
		}
		digest := sha256.Sum256(b[headerSize : headerSize+valid])
		chain = foldChain(chain, digest[:])
		sealed = append(sealed, meta)
		openSeq = seq + 1
		// A torn frame in a non-final segment is only crash-shaped if the
		// successor was created against exactly this truncated state; the
		// next iteration's base and prevChain checks enforce that.
	}

	rec.Trace = tr
	rec.Rev = r.rev
	rec.Remap = remap
	rec.Segments = len(sealed)
	if r.lastPub != nil {
		rec.LastPub = r.lastPub
	}
	rec.TailRecords = uint64(len(tr.Edges)) - start

	l := newLog(st, opt, openSeq, uint64(len(tr.Edges)), chain, sealed)
	return l, rec, nil
}

// parseSegHeader validates a segment header against its expected sequence
// number, returning ok=false for torn or corrupt headers.
func parseSegHeader(b []byte, seq uint64) (segMeta, bool) {
	if len(b) < headerSize || string(b[:8]) != segMagic {
		return segMeta{}, false
	}
	if crc32.ChecksumIEEE(b[:56]) != binary.LittleEndian.Uint32(b[56:]) {
		return segMeta{}, false
	}
	if binary.LittleEndian.Uint64(b[8:]) != seq {
		return segMeta{}, false
	}
	m := segMeta{seq: seq, base: binary.LittleEndian.Uint64(b[16:])}
	copy(m.prevChain[:], b[24:56])
	return m, true
}

// walkFrames iterates the complete, CRC-valid frames at the start of b,
// invoking fn for each. It returns the byte length of the valid prefix and
// whether trailing bytes past it exist (a torn tail). fn errors abort the
// walk immediately.
func walkFrames(b []byte, fn func(typ byte, body []byte) error) (valid int, torn bool, err error) {
	off := 0
	for off < len(b) {
		rest := b[off:]
		var n int // full frame length including type and CRC
		switch rest[0] {
		case frameEdges:
			if len(rest) < 5 {
				return off, true, nil
			}
			count := int(binary.LittleEndian.Uint32(rest[1:]))
			// count is bounded against the buffer before any use, so a
			// hostile length cannot force allocation beyond the input size.
			if count > (len(rest)-9)/recordSize {
				return off, true, nil
			}
			n = 5 + count*recordSize + 4
		case framePublish:
			n = 1 + pubBodySize + 4
			if len(rest) < n {
				return off, true, nil
			}
		default:
			return off, true, nil
		}
		if len(rest) < n {
			return off, true, nil
		}
		if crc32.ChecksumIEEE(rest[:n-4]) != binary.LittleEndian.Uint32(rest[n-4:]) {
			return off, true, nil
		}
		if err := fn(rest[0], rest[1:n-4]); err != nil {
			return off, false, err
		}
		off += n
	}
	return off, false, nil
}

// replayer applies scanned frames to the recovering trace: records below
// the recovered prefix are asserted byte-equal to what the trace already
// holds; records at the frontier replay through Trace.Append, whose
// deterministic clamping must reproduce the recorded edge exactly.
type replayer struct {
	tr    *graph.Trace
	rev   []int64
	remap map[int64]graph.NodeID
	start uint64 // trace length recovered before any segment scan
	idx   uint64 // absolute index of the next record

	lastPub *Publish
}

func (r *replayer) frame(typ byte, body []byte) error {
	if typ == framePublish {
		p := Publish{
			Seq:   int64(binary.LittleEndian.Uint64(body[0:])),
			Edges: binary.LittleEndian.Uint64(body[8:]),
			Time:  int64(binary.LittleEndian.Uint64(body[16:])),
		}
		if p.Edges > r.idx {
			return corruptf("publish marker at edge %d precedes its own records (%d logged)", p.Edges, r.idx)
		}
		r.lastPub = &p
		return nil
	}
	count := int(binary.LittleEndian.Uint32(body[0:]))
	for i := 0; i < count; i++ {
		if err := r.record(decodeRecord(body[4+i*recordSize:])); err != nil {
			return err
		}
	}
	return nil
}

// bind asserts or establishes the external↔dense mapping for one endpoint.
func (r *replayer) bind(ext int64, d graph.NodeID) error {
	if got, ok := r.remap[ext]; ok {
		if got != d {
			return corruptf("record %d maps external id %d to dense %d, previously %d", r.idx, ext, d, got)
		}
		return nil
	}
	if int(d) != len(r.rev) {
		return corruptf("record %d assigns dense id %d out of first-seen order (next is %d)", r.idx, d, len(r.rev))
	}
	r.rev = append(r.rev, ext)
	r.remap[ext] = d
	return nil
}

func (r *replayer) record(rc Record) error {
	defer func() { r.idx++ }()
	if r.idx < r.start {
		// Already covered by the checkpoint (or warm prefix): assert, don't
		// re-apply. The record must match the trace byte for byte and its ID
		// bindings must agree with the recovered map.
		e := r.tr.Edges[r.idx]
		if e.U != rc.U || e.V != rc.V || e.Time != rc.T {
			return corruptf("record %d (%d-%d@%d) contradicts recovered trace edge (%d-%d@%d)",
				r.idx, rc.U, rc.V, rc.T, e.U, e.V, e.Time)
		}
		if got, ok := r.remap[rc.ExtU]; !ok || got != rc.U {
			return corruptf("record %d external id %d does not map to dense %d", r.idx, rc.ExtU, rc.U)
		}
		if got, ok := r.remap[rc.ExtV]; !ok || got != rc.V {
			return corruptf("record %d external id %d does not map to dense %d", r.idx, rc.ExtV, rc.V)
		}
		return nil
	}
	if r.idx != uint64(len(r.tr.Edges)) {
		return corruptf("record %d arrived at trace length %d", r.idx, len(r.tr.Edges))
	}
	// The writer assigned U before V (first-seen order within the event).
	if err := r.bind(rc.ExtU, rc.U); err != nil {
		return err
	}
	if err := r.bind(rc.ExtV, rc.V); err != nil {
		return err
	}
	e, err := r.tr.Append(rc.U, rc.V, rc.T)
	if err != nil {
		return corruptf("record %d replay: %v", r.idx, err)
	}
	if e.U != rc.U || e.V != rc.V || e.Time != rc.T {
		return corruptf("record %d replayed to %d-%d@%d, logged %d-%d@%d",
			r.idx, e.U, e.V, e.Time, rc.U, rc.V, rc.T)
	}
	return nil
}

// RemoveAll deletes every log artifact in st — segments, checkpoint, and
// temp files. Test and tooling helper.
func RemoveAll(st Storage) error {
	names, err := st.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		if _, ok := parseSegName(n); ok || n == ckptName || n == ckptTmpName {
			if err := st.Remove(n); err != nil && !errors.Is(err, os.ErrNotExist) {
				return err
			}
		}
	}
	return nil
}

// Package wal is the durability layer for the live server: an append-only
// segmented binary edge log with group-commit batching, periodic checkpoint
// snapshots (a compact binary CSR dump, mmap-able for zero-copy load), and
// replay-from-checkpoint crash recovery. Segment headers are hash-chained —
// each commits the SHA-256 chain value of its predecessor, and every frame
// carries a CRC — so a restarted server can prove it rebuilt the exact
// pre-crash trace prefix. Storage goes through a five-operation interface
// with filesystem and in-memory backends; the in-memory backend journals
// every byte so tests can reconstruct the state a crash at any write
// boundary would leave behind.
//
// On-disk layout (all integers little-endian):
//
//	segment file wal-%08d.seg:
//	  header (60 B): "LPWALSG1" | seq u64 | base u64 | prevChain [32]B | crc32
//	  frames:
//	    'E' | count u32 | count × record (32 B)            | crc32
//	    'P' | pubSeq i64 | edges u64 | time i64            | crc32
//	  record (32 B): extU i64 | extV i64 | u i32 | v i32 | t i64
//
// base is the absolute trace index of the segment's first record; frame
// CRCs cover the type byte and body. The chain value after segment k is
// SHA256(chain_{k-1} || SHA256(k's frame bytes)), with a zero genesis; a
// segment's header commits the chain value of everything before it.
package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"sync"

	"linkpred/internal/graph"
)

const (
	segMagic   = "LPWALSG1"
	headerSize = 8 + 8 + 8 + 32 + 4
	recordSize = 32

	frameEdges   = 'E'
	framePublish = 'P'

	pubBodySize = 8 + 8 + 8
)

// Record is one durable edge event: the external endpoint IDs as submitted,
// the dense IDs the server assigned, and the post-clamp timestamp
// graph.Trace.Append recorded. Replay re-runs Append (whose clamping is
// idempotent) and asserts it reproduces (U, V, T) exactly; the external IDs
// rebuild the ID remap.
type Record struct {
	ExtU, ExtV int64
	U, V       graph.NodeID
	T          int64
}

func (r Record) encode(b []byte) {
	binary.LittleEndian.PutUint64(b[0:], uint64(r.ExtU))
	binary.LittleEndian.PutUint64(b[8:], uint64(r.ExtV))
	binary.LittleEndian.PutUint32(b[16:], uint32(r.U))
	binary.LittleEndian.PutUint32(b[20:], uint32(r.V))
	binary.LittleEndian.PutUint64(b[24:], uint64(r.T))
}

func decodeRecord(b []byte) Record {
	return Record{
		ExtU: int64(binary.LittleEndian.Uint64(b[0:])),
		ExtV: int64(binary.LittleEndian.Uint64(b[8:])),
		U:    graph.NodeID(binary.LittleEndian.Uint32(b[16:])),
		V:    graph.NodeID(binary.LittleEndian.Uint32(b[20:])),
		T:    int64(binary.LittleEndian.Uint64(b[24:])),
	}
}

// Publish marks a snapshot publish in the log: after `Edges` trace edges,
// snapshot sequence Seq was published at trace time Time. Recovery reports
// the last publish at or before the recovered length so a restarted server
// can reuse the same snapshot sequence number — byte-identical responses
// across the crash.
type Publish struct {
	Seq   int64
	Edges uint64
	Time  int64
}

// Options configures batching and segmentation. Zero values take defaults.
type Options struct {
	// GroupCommit bounds the record batch one commit flushes as a single
	// frame + fsync; Append auto-commits when the buffer reaches it.
	// Default 256.
	GroupCommit int
	// SegmentRecords is the record capacity of one segment file; commits
	// rotate (seal, fsync, fold the chain) at the boundary. Default 4096.
	SegmentRecords int
}

func (o Options) withDefaults() Options {
	if o.GroupCommit <= 0 {
		o.GroupCommit = 256
	}
	if o.SegmentRecords <= 0 {
		o.SegmentRecords = 4096
	}
	return o
}

// segMeta is the in-memory index entry for one live segment.
type segMeta struct {
	seq       uint64
	base      uint64 // absolute trace index of the first record
	prevChain [32]byte
}

// frame is one queued unit of pending work: a sealed record batch or a
// publish marker.
type frame struct {
	pub  Publish
	recs []Record // nil for publish frames
}

// Log is the write path. All methods are safe for concurrent use; Commit
// returns only after everything previously appended is fsynced, so an acked
// commit survives any crash.
type Log struct {
	st  Storage
	opt Options

	mu  sync.Mutex
	err error // sticky: first storage failure poisons the log

	segs      []segMeta // live segments, ascending seq; last is the open one
	f         File      // open segment file; nil until its first frame
	segCount  int       // records written into the open segment
	digest    hash.Hash // sha256 over the open segment's frame bytes
	committed uint64    // records written to storage (synced by Commit)

	pending  []frame  // sealed batches + publish markers awaiting Commit
	batch    []Record // open record batch
	appended uint64   // records accepted (written + buffered)
}

// newLog wires a Log around already-recovered state: the open segment
// (created lazily on first write) has sequence seq, starts at trace index
// base, and commits prevChain in its header.
func newLog(st Storage, opt Options, seq, base uint64, prevChain [32]byte, sealed []segMeta) *Log {
	l := &Log{
		st:        st,
		opt:       opt.withDefaults(),
		segs:      append(sealed, segMeta{seq: seq, base: base, prevChain: prevChain}),
		digest:    sha256.New(),
		committed: base,
		appended:  base,
	}
	return l
}

// Create initializes a fresh log on empty storage. Use Open to recover an
// existing one.
func Create(st Storage, opt Options) (*Log, error) {
	names, err := st.List()
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if _, ok := parseSegName(n); ok {
			return nil, fmt.Errorf("wal: Create on non-empty storage (found %s); use Open", n)
		}
	}
	return newLog(st, opt, 0, 0, [32]byte{}, nil), nil
}

// Append buffers one record, auto-committing when the group-commit batch
// fills. The record's absolute trace index is the current Appended count.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.batch = append(l.batch, r)
	l.appended++
	if len(l.batch) >= l.opt.GroupCommit {
		return l.commitLocked()
	}
	return nil
}

// NotePublish queues a publish marker after everything appended so far. It
// does not itself commit; the marker becomes durable with the next Commit.
func (l *Log) NotePublish(p Publish) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	l.sealBatchLocked()
	l.pending = append(l.pending, frame{pub: p})
	return nil
}

// Commit writes every buffered record and publish marker and fsyncs. When
// it returns nil, everything previously appended is crash-durable.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	return l.commitLocked()
}

// Close flushes and closes the open segment. The log is unusable after.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = l.commitLocked()
	}
	if l.f != nil {
		cerr := l.f.Close()
		l.f = nil
		if l.err == nil && cerr != nil {
			return cerr
		}
	}
	if l.err != nil {
		return l.err
	}
	l.err = fmt.Errorf("wal: log closed")
	return nil
}

// Appended returns the absolute trace index the next Append will get.
func (l *Log) Appended() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Committed returns the number of records written to storage.
func (l *Log) Committed() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.committed
}

// Segments returns the number of live (unpruned) segments including the
// open one.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs)
}

func (l *Log) sealBatchLocked() {
	if len(l.batch) > 0 {
		l.pending = append(l.pending, frame{recs: l.batch})
		l.batch = nil
	}
}

func (l *Log) commitLocked() error {
	l.sealBatchLocked()
	if len(l.pending) == 0 {
		return nil
	}
	for _, fr := range l.pending {
		var err error
		if fr.recs == nil {
			err = l.writePublishLocked(fr.pub)
		} else {
			err = l.writeRecordsLocked(fr.recs)
		}
		if err != nil {
			l.err = fmt.Errorf("wal: commit: %w", err)
			return l.err
		}
	}
	l.pending = nil
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			l.err = fmt.Errorf("wal: commit sync: %w", err)
			return l.err
		}
	}
	return nil
}

// openSegmentLocked lazily creates the open segment's file and writes its
// header.
func (l *Log) openSegmentLocked() error {
	if l.f != nil {
		return nil
	}
	cur := &l.segs[len(l.segs)-1]
	f, err := l.st.Create(segName(cur.seq))
	if err != nil {
		return err
	}
	var hdr [headerSize]byte
	copy(hdr[:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], cur.seq)
	binary.LittleEndian.PutUint64(hdr[16:], cur.base)
	copy(hdr[24:56], cur.prevChain[:])
	binary.LittleEndian.PutUint32(hdr[56:], crc32.ChecksumIEEE(hdr[:56]))
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return err
	}
	l.f = f
	return nil
}

// rotateLocked seals the open segment — fsync, close, fold its frame digest
// into the chain — and stages the successor (file created lazily).
func (l *Log) rotateLocked() error {
	cur := l.segs[len(l.segs)-1]
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return err
		}
		if err := l.f.Close(); err != nil {
			return err
		}
		l.f = nil
	}
	next := segMeta{
		seq:       cur.seq + 1,
		base:      l.committed,
		prevChain: foldChain(cur.prevChain, l.digest.Sum(nil)),
	}
	l.segs = append(l.segs, next)
	l.digest = sha256.New()
	l.segCount = 0
	return nil
}

// foldChain advances the hash chain: SHA256(prev || segmentDigest).
func foldChain(prev [32]byte, digest []byte) [32]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(digest)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// writeRecordsLocked writes a record batch as one or more 'E' frames,
// rotating at the segment capacity so every sealed segment holds exactly
// SegmentRecords records.
func (l *Log) writeRecordsLocked(recs []Record) error {
	for len(recs) > 0 {
		if l.segCount >= l.opt.SegmentRecords {
			if err := l.rotateLocked(); err != nil {
				return err
			}
		}
		if err := l.openSegmentLocked(); err != nil {
			return err
		}
		n := min(len(recs), l.opt.SegmentRecords-l.segCount)
		buf := make([]byte, 1+4+n*recordSize+4)
		buf[0] = frameEdges
		binary.LittleEndian.PutUint32(buf[1:], uint32(n))
		for i, r := range recs[:n] {
			r.encode(buf[5+i*recordSize:])
		}
		body := buf[:len(buf)-4]
		binary.LittleEndian.PutUint32(buf[len(buf)-4:], crc32.ChecksumIEEE(body))
		if _, err := l.f.Write(buf); err != nil {
			return err
		}
		l.digest.Write(buf)
		l.segCount += n
		l.committed += uint64(n)
		recs = recs[n:]
	}
	return nil
}

// writePublishLocked writes a 'P' frame into the open segment. Publish
// frames occupy no record capacity and stay in the segment whose records
// they follow.
func (l *Log) writePublishLocked(p Publish) error {
	if err := l.openSegmentLocked(); err != nil {
		return err
	}
	var buf [1 + pubBodySize + 4]byte
	buf[0] = framePublish
	binary.LittleEndian.PutUint64(buf[1:], uint64(p.Seq))
	binary.LittleEndian.PutUint64(buf[9:], p.Edges)
	binary.LittleEndian.PutUint64(buf[17:], uint64(p.Time))
	binary.LittleEndian.PutUint32(buf[25:], crc32.ChecksumIEEE(buf[:25]))
	if _, err := l.f.Write(buf[:]); err != nil {
		return err
	}
	l.digest.Write(buf[:])
	return nil
}

// Package eval provides ranking-quality measures beyond the paper's
// headline accuracy ratio: AUC (which §4.1 discusses and deliberately does
// not use, because it scores the entire ranked list rather than the top k),
// precision@k curves, and average precision. These make the toolkit usable
// for studies that do want whole-list evaluation, and power the extended
// analyses in the benchmark harness.
package eval

import (
	"fmt"
	"sort"

	"linkpred/internal/predict"
)

// AUC computes the area under the ROC curve for scored items with binary
// labels: the probability that a uniformly chosen positive outranks a
// uniformly chosen negative, counting ties as one half (the standard
// Mann-Whitney estimator, and the form used across the link prediction
// literature [28]). Returns 0.5 when either class is empty.
func AUC(scores []float64, labels []bool) float64 {
	if len(scores) != len(labels) {
		panic(fmt.Sprintf("eval: %d scores, %d labels", len(scores), len(labels)))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Average ranks with tie groups sharing the mean rank.
	ranks := make([]float64, len(scores))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		mean := float64(i+j+1) / 2 // ranks are 1-based
		for k := i; k < j; k++ {
			ranks[idx[k]] = mean
		}
		i = j
	}
	var rankSum float64
	nPos, nNeg := 0, 0
	for i, l := range labels {
		if l {
			nPos++
			rankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// RankLabels orders the labels of scored pairs best-first, breaking score
// ties with the same deterministic hash the prediction top-k uses, so
// precision curves are consistent with Predict's selections.
func RankLabels(pairs []predict.Pair, scores []float64, truth map[uint64]bool, seed int64) []bool {
	if len(pairs) != len(scores) {
		panic(fmt.Sprintf("eval: %d pairs, %d scores", len(pairs), len(scores)))
	}
	ranked := predict.NewRanker(len(pairs), seed)
	for i, p := range pairs {
		ranked.Add(p.U, p.V, scores[i])
	}
	out := make([]bool, 0, len(pairs))
	for _, p := range ranked.Result() {
		out = append(out, truth[p.Key()])
	}
	return out
}

// PrecisionAtK returns precision of the first k ranked labels for each
// requested k (clamped to the list length).
func PrecisionAtK(ranked []bool, ks []int) []float64 {
	out := make([]float64, len(ks))
	// Prefix sums of hits.
	hits := make([]int, len(ranked)+1)
	for i, l := range ranked {
		hits[i+1] = hits[i]
		if l {
			hits[i+1]++
		}
	}
	for i, k := range ks {
		if k <= 0 {
			continue
		}
		if k > len(ranked) {
			k = len(ranked)
		}
		if k > 0 {
			out[i] = float64(hits[k]) / float64(k)
		}
	}
	return out
}

// AveragePrecision is the mean of precision@rank over the ranks of the
// positive items (area under the precision-recall curve for a ranking).
// Returns 0 when there are no positives.
func AveragePrecision(ranked []bool) float64 {
	hits := 0
	var sum float64
	for i, l := range ranked {
		if l {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(hits)
}

// RecallAtK returns, for each k, the fraction of all positives found in the
// first k ranked items.
func RecallAtK(ranked []bool, ks []int) []float64 {
	total := 0
	for _, l := range ranked {
		if l {
			total++
		}
	}
	out := make([]float64, len(ks))
	if total == 0 {
		return out
	}
	hits := make([]int, len(ranked)+1)
	for i, l := range ranked {
		hits[i+1] = hits[i]
		if l {
			hits[i+1]++
		}
	}
	for i, k := range ks {
		if k <= 0 {
			continue
		}
		if k > len(ranked) {
			k = len(ranked)
		}
		out[i] = float64(hits[k]) / float64(total)
	}
	return out
}

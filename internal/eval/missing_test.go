package eval

import (
	"testing"

	"linkpred/internal/gen"
	"linkpred/internal/predict"
)

func TestHideEdges(t *testing.T) {
	tr := gen.MustGenerate(gen.Renren(3).Scaled(0.05))
	g := tr.SnapshotAtEdge(tr.NumEdges())
	reduced, hidden, err := HideEdges(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if reduced.NumEdges()+len(hidden) != g.NumEdges() {
		t.Fatalf("edge conservation: %d + %d != %d", reduced.NumEdges(), len(hidden), g.NumEdges())
	}
	want := int(0.1 * float64(g.NumEdges()))
	if len(hidden) != want {
		t.Fatalf("hidden = %d, want %d", len(hidden), want)
	}
	for _, p := range hidden {
		if !g.HasEdge(p.U, p.V) {
			t.Errorf("hidden pair %+v was never an edge", p)
		}
		if reduced.HasEdge(p.U, p.V) {
			t.Errorf("hidden pair %+v still present", p)
		}
	}
	// Determinism.
	_, hidden2, err := HideEdges(g, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range hidden {
		if hidden[i] != hidden2[i] {
			t.Fatal("HideEdges not deterministic")
		}
	}
}

func TestHideEdgesErrors(t *testing.T) {
	tr := gen.MustGenerate(gen.Renren(3).Scaled(0.05))
	g := tr.SnapshotAtEdge(tr.NumEdges())
	for _, frac := range []float64{0, 1, -0.5, 2} {
		if _, _, err := HideEdges(g, frac, 1); err == nil {
			t.Errorf("frac %v accepted", frac)
		}
	}
}

func TestDetectMissingBeatsRandom(t *testing.T) {
	tr := gen.MustGenerate(gen.Renren(9).Scaled(0.08))
	g := tr.SnapshotAtEdge(tr.NumEdges())
	opt := predict.DefaultOptions()
	res, err := DetectMissing(g, predict.AA, 0.1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hidden == 0 {
		t.Fatal("nothing hidden")
	}
	// Missing-link detection is much easier than future prediction: hidden
	// edges leave their neighborhoods behind. AA must crush random and
	// produce a strong AUC.
	if res.Ratio < 5 {
		t.Errorf("AA missing-link ratio = %v, want >= 5", res.Ratio)
	}
	if res.AUC < 0.7 {
		t.Errorf("AA missing-link AUC = %v, want >= 0.7", res.AUC)
	}
	if res.Recovered > res.Hidden {
		t.Errorf("recovered %d > hidden %d", res.Recovered, res.Hidden)
	}
}

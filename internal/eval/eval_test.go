package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"linkpred/internal/predict"
)

func TestAUCPerfect(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUC(scores, labels); got != 1 {
		t.Fatalf("AUC = %v, want 1", got)
	}
	// Inverted ranking.
	if got := AUC(scores, []bool{false, false, true, true}); got != 0 {
		t.Fatalf("inverted AUC = %v, want 0", got)
	}
}

func TestAUCTies(t *testing.T) {
	// All scores equal → AUC is exactly 0.5 by the tie convention.
	scores := []float64{1, 1, 1, 1}
	labels := []bool{true, false, true, false}
	if got := AUC(scores, labels); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("tied AUC = %v, want 0.5", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if got := AUC([]float64{1, 2}, []bool{true, true}); got != 0.5 {
		t.Fatalf("single-class AUC = %v, want 0.5", got)
	}
	if got := AUC(nil, nil); got != 0.5 {
		t.Fatalf("empty AUC = %v, want 0.5", got)
	}
}

// Property: AUC equals the direct pair-counting definition on random data.
func TestAUCMatchesPairCountQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		scores := make([]float64, n)
		labels := make([]bool, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(8)) // small range to force ties
			labels[i] = rng.Intn(2) == 0
		}
		var wins, total float64
		for i := range scores {
			if !labels[i] {
				continue
			}
			for j := range scores {
				if labels[j] {
					continue
				}
				total++
				switch {
				case scores[i] > scores[j]:
					wins++
				case scores[i] == scores[j]:
					wins += 0.5
				}
			}
		}
		want := 0.5
		if total > 0 {
			want = wins / total
		}
		return math.Abs(AUC(scores, labels)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	ranked := []bool{true, false, true, false, false}
	got := PrecisionAtK(ranked, []int{1, 2, 3, 100, 0})
	want := []float64{1, 0.5, 2.0 / 3.0, 2.0 / 5.0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("precision = %v, want %v", got, want)
		}
	}
}

func TestRecallAtK(t *testing.T) {
	ranked := []bool{true, false, true, false}
	got := RecallAtK(ranked, []int{1, 3, 4})
	want := []float64{0.5, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("recall = %v, want %v", got, want)
		}
	}
	if z := RecallAtK([]bool{false}, []int{1}); z[0] != 0 {
		t.Fatalf("no-positive recall = %v", z)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Positives at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
	ranked := []bool{true, false, true}
	want := (1.0 + 2.0/3.0) / 2
	if got := AveragePrecision(ranked); math.Abs(got-want) > 1e-12 {
		t.Fatalf("AP = %v, want %v", got, want)
	}
	if got := AveragePrecision([]bool{false, false}); got != 0 {
		t.Fatalf("no-positive AP = %v", got)
	}
	if got := AveragePrecision([]bool{true, true}); got != 1 {
		t.Fatalf("perfect AP = %v", got)
	}
}

func TestRankLabels(t *testing.T) {
	pairs := []predict.Pair{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}}
	scores := []float64{0.1, 0.9, 0.5}
	truth := map[uint64]bool{predict.PairKey(0, 2): true}
	ranked := RankLabels(pairs, scores, truth, 1)
	if len(ranked) != 3 || !ranked[0] || ranked[1] || ranked[2] {
		t.Fatalf("ranked = %v", ranked)
	}
}

// Property: AP and precision@k stay within [0,1]; AUC in [0,1].
func TestBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		ranked := make([]bool, n)
		scores := make([]float64, n)
		for i := range ranked {
			ranked[i] = rng.Intn(3) == 0
			scores[i] = rng.NormFloat64()
		}
		ap := AveragePrecision(ranked)
		auc := AUC(scores, ranked)
		p := PrecisionAtK(ranked, []int{1, n / 2, n})
		for _, v := range append(p, ap, auc) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

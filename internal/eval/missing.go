package eval

import (
	"context"
	"fmt"
	"math/rand"

	"linkpred/internal/graph"
	"linkpred/internal/obs"
	"linkpred/internal/predict"
)

// This file implements the *missing link detection* task that §2 of the
// paper distinguishes from future-link prediction: given a partially
// observed graph, identify the links that exist but were not observed. The
// standard protocol (Liben-Nowell & Kleinberg [23], Lü & Zhou [28]) hides a
// random fraction of edges and measures how well an algorithm recovers
// them.

// HideEdges removes a uniform random fraction of the edges of g, returning
// the reduced graph and the hidden pairs (the recovery ground truth). At
// least one edge always remains hidden when frac > 0 and g has edges.
func HideEdges(g *graph.Graph, frac float64, seed int64) (*graph.Graph, []predict.Pair, error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("eval: hide fraction %v outside (0,1)", frac)
	}
	var edges []graph.Edge
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) < v {
				edges = append(edges, graph.Edge{U: graph.NodeID(u), V: v})
			}
		}
	}
	if len(edges) == 0 {
		return nil, nil, fmt.Errorf("eval: graph has no edges to hide")
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	hideCount := int(frac * float64(len(edges)))
	if hideCount == 0 {
		hideCount = 1
	}
	hidden := make([]predict.Pair, 0, hideCount)
	for _, e := range edges[:hideCount] {
		hidden = append(hidden, predict.Pair{U: e.U, V: e.V})
	}
	reduced := graph.Build(g.NumNodes(), edges[hideCount:])
	reduced.Time = g.Time
	return reduced, hidden, nil
}

// MissingLinkResult reports a detection experiment.
type MissingLinkResult struct {
	// Hidden is the number of removed edges, Recovered the overlap between
	// the top-|hidden| predictions on the reduced graph and the removed
	// edges, and Ratio the improvement over random recovery.
	Hidden    int
	Recovered int
	Ratio     float64
	// AUC is the whole-list score of hidden pairs versus an equal-size
	// sample of never-connected pairs, the survey's standard measure.
	AUC float64
}

// DetectMissing runs the hide-and-recover protocol for one algorithm.
func DetectMissing(g *graph.Graph, alg predict.Algorithm, frac float64, opt predict.Options) (MissingLinkResult, error) {
	return DetectMissingCtx(context.Background(), g, alg, frac, opt)
}

// DetectMissingCtx is DetectMissing with its phases (recover sweep,
// negative scoring, AUC) emitted as obs spans parented by ctx.
func DetectMissingCtx(ctx context.Context, g *graph.Graph, alg predict.Algorithm, frac float64, opt predict.Options) (MissingLinkResult, error) {
	ctx, sp := obs.StartSpan(ctx, "missing/"+alg.Name())
	defer sp.End()
	reduced, hidden, err := HideEdges(g, frac, opt.Seed)
	if err != nil {
		return MissingLinkResult{}, err
	}
	truth := make(map[uint64]bool, len(hidden))
	for _, p := range hidden {
		truth[p.Key()] = true
	}
	k := len(hidden)
	_, recoverSpan := obs.StartSpan(ctx, "recover")
	pred := alg.Predict(reduced, k, opt)
	recovered := predict.CountCorrect(pred, truth)
	recoverSpan.End()

	// AUC over hidden pairs vs sampled never-connected pairs.
	rng := rand.New(rand.NewSource(opt.Seed ^ 0x315516))
	n := reduced.NumNodes()
	var negatives []predict.Pair
	for len(negatives) < len(hidden) {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if u == v || g.HasEdge(u, v) || reduced.HasEdge(u, v) {
			continue
		}
		negatives = append(negatives, predict.Pair{U: u, V: v})
	}
	pairs := append(append([]predict.Pair{}, hidden...), negatives...)
	_, scoreSpan := obs.StartSpan(ctx, "score")
	scores := alg.ScorePairs(reduced, pairs, opt)
	scoreSpan.End()
	labels := make([]bool, len(pairs))
	for i := range hidden {
		labels[i] = true
	}
	_, aucSpan := obs.StartSpan(ctx, "auc")
	defer aucSpan.End()
	return MissingLinkResult{
		Hidden:    k,
		Recovered: recovered,
		Ratio:     predict.AccuracyRatio(recovered, k, reduced),
		AUC:       AUC(scores, labels),
	}, nil
}

// Package community implements scalable community detection (asynchronous
// label propagation) and a stochastic-block-model link predictor on top of
// it. The paper classifies community/hierarchy probabilistic models ([9],
// [13]) as metric-based "learning models" that do not scale to large
// graphs; this package provides the scalable approximation of that family
// so the catalogue is complete, exposed as the SBM extension algorithm.
package community

import (
	"math/rand"
	"sort"

	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// Labels assigns every node a community label in [0, Count).
type Labels struct {
	Of    []int32
	Count int
}

// Detect runs asynchronous label propagation: every node repeatedly adopts
// the most frequent label among its neighbors (ties broken toward the
// smallest label for determinism), in a seeded random node order, until no
// label changes or maxSweeps is hit. Isolated nodes keep singleton labels.
func Detect(g *graph.Graph, maxSweeps int, seed int64) Labels {
	n := g.NumNodes()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	if maxSweeps <= 0 {
		maxSweeps = 16
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	rng := rand.New(rand.NewSource(seed))
	counts := map[int32]int{}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := 0
		for _, v := range order {
			nb := g.Neighbors(v)
			if len(nb) == 0 {
				continue
			}
			clear(counts)
			for _, w := range nb {
				counts[labels[w]]++
			}
			best := labels[v]
			bestCount := counts[best] // stickiness: current label wins ties
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != labels[v] {
				labels[v] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	// Compact labels to [0, Count).
	remap := map[int32]int32{}
	for i, l := range labels {
		if _, ok := remap[l]; !ok {
			remap[l] = int32(len(remap))
		}
		labels[i] = remap[l]
	}
	return Labels{Of: labels, Count: len(remap)}
}

// Modularity computes Newman's modularity of a labeling: the fraction of
// edges within communities minus the expectation under the configuration
// model. Used to validate that Detect finds real structure.
func Modularity(g *graph.Graph, labels Labels) float64 {
	m2 := float64(2 * g.NumEdges())
	if m2 == 0 {
		return 0
	}
	within := 0.0
	degSum := make([]float64, labels.Count)
	for u := 0; u < g.NumNodes(); u++ {
		lu := labels.Of[u]
		degSum[lu] += float64(g.Degree(graph.NodeID(u)))
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if labels.Of[v] == lu {
				within++
			}
		}
	}
	q := within / m2
	for _, d := range degSum {
		q -= (d / m2) * (d / m2)
	}
	return q
}

// sbm is the degree-corrected-flavoured stochastic block model scorer:
// after detecting communities, the maximum-likelihood connection
// probability between blocks r and s is e_rs / n_rs (edges observed over
// pairs possible), and a pair's score combines its block probability with
// the endpoints' degrees (higher-degree nodes take a larger share of their
// block's connections).
type sbm struct{}

// SBM is the community-model link prediction algorithm.
var SBM predict.Algorithm = sbm{}

func (sbm) Name() string { return "SBM" }

// model holds the fitted block statistics.
type model struct {
	labels Labels
	// prob[r][s] is the MLE edge probability between blocks r and s,
	// with add-one smoothing.
	prob [][]float64
}

func fit(g *graph.Graph, opt predict.Options) *model {
	labels := Detect(g, 16, opt.Seed^0x5b3)
	k := labels.Count
	size := make([]float64, k)
	for _, l := range labels.Of {
		size[l]++
	}
	edges := make([][]float64, k)
	prob := make([][]float64, k)
	for r := 0; r < k; r++ {
		edges[r] = make([]float64, k)
		prob[r] = make([]float64, k)
	}
	for u := 0; u < g.NumNodes(); u++ {
		lu := labels.Of[u]
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			if graph.NodeID(u) < v {
				edges[lu][labels.Of[v]]++
				if lu != labels.Of[v] {
					edges[labels.Of[v]][lu]++
				}
			}
		}
	}
	for r := 0; r < k; r++ {
		for s := 0; s < k; s++ {
			var pairs float64
			if r == s {
				pairs = size[r] * (size[r] - 1) / 2
			} else {
				pairs = size[r] * size[s]
			}
			prob[r][s] = (edges[r][s] + 1) / (pairs + 2) // add-one smoothing
		}
	}
	return &model{labels: labels, prob: prob}
}

func (m *model) score(g *graph.Graph, u, v graph.NodeID) float64 {
	p := m.prob[m.labels.Of[u]][m.labels.Of[v]]
	// Degree correction: within its block probability, a pair of
	// better-connected endpoints is proportionally more likely.
	return p * float64(g.Degree(u)+1) * float64(g.Degree(v)+1)
}

func (sbm) Predict(g *graph.Graph, k int, opt predict.Options) []predict.Pair {
	m := fit(g, opt)
	top := predict.NewRanker(k, opt.Seed)
	// Candidates: 2-hop pairs plus sampled within-block pairs, since the
	// model's mass concentrates within dense blocks.
	seen := map[uint64]bool{}
	emit := func(u, v graph.NodeID) {
		key := predict.PairKey(u, v)
		if seen[key] {
			return
		}
		seen[key] = true
		top.Add(u, v, m.score(g, u, v))
	}
	TwoHopPairs(g, emit)
	// Within-block sampling.
	byBlock := make([][]graph.NodeID, m.labels.Count)
	for v, l := range m.labels.Of {
		byBlock[l] = append(byBlock[l], graph.NodeID(v))
	}
	rng := rand.New(rand.NewSource(opt.Seed ^ 0xb10c))
	for _, members := range byBlock {
		budget := 8 * len(members)
		for t := 0; t < budget; t++ {
			u := members[rng.Intn(len(members))]
			v := members[rng.Intn(len(members))]
			if u == v || g.HasEdge(u, v) {
				continue
			}
			emit(u, v)
		}
	}
	return top.Result()
}

func (sbm) ScorePairs(g *graph.Graph, pairs []predict.Pair, opt predict.Options) []float64 {
	m := fit(g, opt)
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = m.score(g, p.U, p.V)
	}
	return out
}

// TwoHopPairs enumerates unconnected pairs at distance exactly two (u < v),
// the support set of the neighborhood metrics. Exported here for reuse by
// extension algorithms outside the predict package.
func TwoHopPairs(g *graph.Graph, emit func(u, v graph.NodeID)) {
	n := g.NumNodes()
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		for _, w := range g.Neighbors(uid) {
			stamp[w] = int32(u)
		}
		stamp[u] = int32(u)
		for _, w := range g.Neighbors(uid) {
			for _, v := range g.Neighbors(w) {
				if v <= uid || stamp[v] == int32(u) {
					continue
				}
				stamp[v] = int32(u)
				emit(uid, v)
			}
		}
	}
}

// Sizes returns the community size distribution, largest first.
func (l Labels) Sizes() []int {
	sizes := make([]int, l.Count)
	for _, c := range l.Of {
		sizes[c]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

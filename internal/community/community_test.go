package community

import (
	"math/rand"
	"testing"
	"testing/quick"

	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// twoBlocks builds two dense communities joined by a single bridge edge.
func twoBlocks(seed int64, size int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for b := 0; b < 2; b++ {
		base := graph.NodeID(b * size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < p {
					edges = append(edges, graph.Edge{U: base + graph.NodeID(i), V: base + graph.NodeID(j)})
				}
			}
		}
	}
	edges = append(edges, graph.Edge{U: 0, V: graph.NodeID(size)})
	return graph.Build(2*size, edges)
}

func TestDetectTwoBlocks(t *testing.T) {
	g := twoBlocks(1, 20, 0.6)
	labels := Detect(g, 20, 1)
	// All nodes of block 0 should share a label; likewise block 1; and the
	// labels should differ.
	l0 := labels.Of[1]
	l1 := labels.Of[21]
	if l0 == l1 {
		t.Fatalf("blocks merged into one community")
	}
	for v := 1; v < 20; v++ {
		if labels.Of[v] != l0 {
			t.Errorf("node %d: label %d, want %d", v, labels.Of[v], l0)
		}
	}
	for v := 21; v < 40; v++ {
		if labels.Of[v] != l1 {
			t.Errorf("node %d: label %d, want %d", v, labels.Of[v], l1)
		}
	}
	if q := Modularity(g, labels); q < 0.3 {
		t.Errorf("modularity = %v, want >= 0.3 for planted blocks", q)
	}
	sizes := labels.Sizes()
	if sizes[0] < 19 || sizes[0] > 21 {
		t.Errorf("sizes = %v", sizes)
	}
}

func TestDetectDeterministic(t *testing.T) {
	g := twoBlocks(3, 15, 0.5)
	a := Detect(g, 20, 7)
	b := Detect(g, 20, 7)
	for i := range a.Of {
		if a.Of[i] != b.Of[i] {
			t.Fatal("label propagation not deterministic for fixed seed")
		}
	}
}

func TestDetectIsolated(t *testing.T) {
	g := graph.Build(4, []graph.Edge{{U: 0, V: 1}})
	labels := Detect(g, 10, 1)
	if labels.Of[2] == labels.Of[0] || labels.Of[3] == labels.Of[0] {
		t.Errorf("isolated nodes joined a community: %v", labels.Of)
	}
	if labels.Of[0] != labels.Of[1] {
		t.Errorf("connected pair split: %v", labels.Of)
	}
}

func TestModularityBounds(t *testing.T) {
	// Random labels on a random graph: modularity near 0; valid range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(30)
		var edges []graph.Edge
		for i := 0; i < 3*n; i++ {
			edges = append(edges, graph.Edge{U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n))})
		}
		g := graph.Build(n, edges)
		labels := Detect(g, 8, seed)
		q := Modularity(g, labels)
		return q >= -1 && q <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	if q := Modularity(graph.Build(3, nil), Labels{Of: []int32{0, 1, 2}, Count: 3}); q != 0 {
		t.Errorf("empty-graph modularity = %v", q)
	}
}

func TestSBMPredictsWithinBlocks(t *testing.T) {
	g := twoBlocks(5, 20, 0.55)
	opt := predict.DefaultOptions()
	k := 30
	pred := SBM.Predict(g, k, opt)
	if len(pred) == 0 {
		t.Fatal("no predictions")
	}
	within := 0
	for _, p := range pred {
		if g.HasEdge(p.U, p.V) {
			t.Fatalf("predicted existing edge %+v", p)
		}
		if (p.U < 20) == (p.V < 20) {
			within++
		}
	}
	if within*10 < len(pred)*9 {
		t.Errorf("only %d/%d predictions within blocks", within, len(pred))
	}
	// Determinism.
	again := SBM.Predict(g, k, opt)
	for i := range pred {
		if pred[i] != again[i] {
			t.Fatal("SBM not deterministic")
		}
	}
}

func TestSBMScorePairs(t *testing.T) {
	g := twoBlocks(7, 20, 0.55)
	opt := predict.DefaultOptions()
	pairs := []predict.Pair{
		{U: 1, V: 3},  // within block 0
		{U: 1, V: 25}, // across blocks
	}
	scores := SBM.ScorePairs(g, pairs, opt)
	if scores[0] <= scores[1] {
		t.Fatalf("within-block score %v <= cross-block %v", scores[0], scores[1])
	}
}

func TestTwoHopPairsMatchesDefinition(t *testing.T) {
	g := graph.Build(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}})
	got := map[uint64]bool{}
	TwoHopPairs(g, func(u, v graph.NodeID) { got[predict.PairKey(u, v)] = true })
	want := []uint64{predict.PairKey(0, 2), predict.PairKey(1, 3)}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v", got)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing pair %d", w)
		}
	}
}

// Package par is the shared fan-out primitive underneath the prediction
// engine and the parallel linear-algebra backend. It splits an index range
// into contiguous chunks that workers claim dynamically, which rebalances
// the skewed per-row costs of power-law graphs without giving up the
// determinism contract: a chunk is a set of output indices, every index is
// processed by exactly one worker, and the per-index work never depends on
// which worker ran it.
package par

import (
	"context"
	"sync"
	"sync/atomic"

	"linkpred/internal/obs"
)

// ShardMin is the default range size below which goroutine fan-out costs
// more than the work itself; smaller ranges run on the calling goroutine.
const ShardMin = 128

// chunksPerWorker oversplits the range so dynamically claimed chunks
// rebalance skewed per-index costs.
const chunksPerWorker = 8

// ShardRange splits [0, n) into contiguous chunks and fans them out over
// workers goroutines. Chunks are claimed dynamically; body receives the
// claiming worker's index so callers can keep per-worker scratch state
// (invocations for the same worker never overlap, so that state needs no
// locking). Ranges smaller than ShardMin run serially.
func ShardRange(n, workers int, body func(worker, lo, hi int)) {
	ShardRangeMin(n, workers, ShardMin, body)
}

// ShardRangeCtx is ShardRangeMin with cooperative cancellation: the chunk
// claim loop checks ctx before every claim and stops claiming once the
// context is cancelled, so a cancelled fan-out returns within one chunk of
// work per worker. Chunks already claimed always run to completion — a chunk
// is the cancellation granularity, which keeps the per-index work free of
// cancellation checks and the determinism contract intact: a fan-out whose
// context is never cancelled produces exactly the same per-index calls as
// ShardRangeMin. The returned error is ctx.Err() when the range was cut
// short, nil when every index ran. A nil or never-cancellable context takes
// the uninstrumented ShardRangeMin path.
func ShardRangeCtx(ctx context.Context, n, workers, min int, body func(worker, lo, hi int)) error {
	if ctx == nil || ctx.Done() == nil {
		ShardRangeMin(n, workers, min, body)
		return nil
	}
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	// The serial path is chunked too (unlike ShardRangeMin's single body
	// call), so even a one-worker sweep honors the one-chunk cancellation
	// bound.
	if workers < 1 {
		workers = 1
	}
	chunks := workers * chunksPerWorker
	size := (n + chunks - 1) / chunks
	if workers <= 1 || n < min {
		for lo := 0; lo < n; lo += size {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			body(0, lo, minInt(lo+size, n))
		}
		return ctx.Err()
	}
	track := obs.Enabled()
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			claimed := int64(0)
			for ctx.Err() == nil {
				c := int(atomic.AddInt64(&next, 1)) - 1
				lo := c * size
				if lo >= n {
					break
				}
				body(w, lo, minInt(lo+size, n))
				claimed++
			}
			if track && claimed > 0 {
				obs.AddWorkerChunks(w, claimed)
				obs.GetCounter("engine/chunks_claimed").Add(claimed)
				obs.GetHistogram("engine/chunks_per_worker").Observe(claimed)
			}
		}(w)
	}
	wg.Wait()
	if track {
		obs.GetCounter("engine/shard_fanouts").Inc()
	}
	return ctx.Err()
}

// LimitWorkers clamps a requested worker count so each worker gets at least
// minWork units of estimated total work. Fan-out has a fixed cost per
// goroutine (spawn, chunk claims, heap merge); on tiny inputs that overhead
// exceeds the sweep itself and parallelism turns into the small-graph
// regression BENCH_predict.json records (JC 0.83x at 4 workers). Callers
// estimate work in whatever unit dominates their loop (wedge visits for the
// local sweeps) and the clamp keeps sub-threshold inputs serial. The result
// depends only on (workers, work, minWork), never on timing, so clamped
// sweeps keep the worker-invariance contract: output is bit-identical
// because the engine is bit-identical at every worker count anyway — the
// clamp only removes overhead.
func LimitWorkers(workers int, work, minWork int64) int {
	if minWork <= 0 || workers <= 1 {
		return workers
	}
	max := int(work / minWork)
	if max < 1 {
		max = 1
	}
	if workers > max {
		return max
	}
	return workers
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ShardRangeMin is ShardRange with an explicit serial-fallback threshold.
// Callers whose per-index work is heavy (a whole supernode pairing sweep, a
// dense matrix row block) pass a small min so even short ranges fan out.
func ShardRangeMin(n, workers, min int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < min {
		body(0, 0, n)
		return
	}
	chunks := workers * chunksPerWorker
	size := (n + chunks - 1) / chunks
	// track is resolved once per fan-out: per-chunk accounting stays in a
	// goroutine-local counter and flushes to obs after the worker drains,
	// so the claim loop itself carries no telemetry cost.
	track := obs.Enabled()
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			claimed := int64(0)
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				lo := c * size
				if lo >= n {
					break
				}
				hi := lo + size
				if hi > n {
					hi = n
				}
				body(w, lo, hi)
				claimed++
			}
			if track && claimed > 0 {
				obs.AddWorkerChunks(w, claimed)
				obs.GetCounter("engine/chunks_claimed").Add(claimed)
				obs.GetHistogram("engine/chunks_per_worker").Observe(claimed)
			}
		}(w)
	}
	wg.Wait()
	if track {
		obs.GetCounter("engine/shard_fanouts").Inc()
	}
}

// Package digraph extends the toolkit to directed link prediction, the
// first item in the paper's future work (§7, citing Yin/Hong/Davison's
// structural link analysis in microblogs [43]). The synthetic traces are
// naturally directed — Edge.U is the initiator (follower) and Edge.V the
// target (followee) — so the directed variants of the neighborhood metrics
// can be evaluated on the same data.
package digraph

import (
	"fmt"
	"math"
	"sort"

	"linkpred/internal/graph"
	"linkpred/internal/predict"
)

// DiGraph is an immutable directed snapshot with sorted out- and in-
// adjacency.
type DiGraph struct {
	out, in [][]graph.NodeID
	arcs    int
}

// Build constructs a directed snapshot from arcs U→V over n nodes.
// Duplicate arcs and self loops are dropped; the reverse arc is a distinct
// arc.
func Build(n int, edges []graph.Edge) *DiGraph {
	d := &DiGraph{out: make([][]graph.NodeID, n), in: make([][]graph.NodeID, n)}
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		d.out[e.U] = append(d.out[e.U], e.V)
		d.in[e.V] = append(d.in[e.V], e.U)
	}
	dedupe := func(adj [][]graph.NodeID) int {
		total := 0
		for i, a := range adj {
			sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
			w := 0
			for j := range a {
				if j == 0 || a[j] != a[j-1] {
					a[w] = a[j]
					w++
				}
			}
			adj[i] = a[:w]
			total += w
		}
		return total
	}
	d.arcs = dedupe(d.out)
	dedupe(d.in)
	return d
}

// FromTrace builds the directed snapshot of the first m arcs of a trace.
func FromTrace(tr *graph.Trace, m int) *DiGraph {
	if m > len(tr.Edges) {
		m = len(tr.Edges)
	}
	var tm int64
	if m > 0 {
		tm = tr.Edges[m-1].Time
	}
	n := 0
	for n < tr.NumNodes() && tr.Arrival[n] <= tm {
		n++
	}
	return Build(n, tr.Edges[:m])
}

// NumNodes returns the node count.
func (d *DiGraph) NumNodes() int { return len(d.out) }

// NumArcs returns the directed edge count.
func (d *DiGraph) NumArcs() int { return d.arcs }

// OutDegree and InDegree return the respective degrees of u.
func (d *DiGraph) OutDegree(u graph.NodeID) int { return len(d.out[u]) }

// InDegree returns the in-degree of u.
func (d *DiGraph) InDegree(u graph.NodeID) int { return len(d.in[u]) }

// Out returns the sorted out-neighbors (shared slice; do not modify).
func (d *DiGraph) Out(u graph.NodeID) []graph.NodeID { return d.out[u] }

// In returns the sorted in-neighbors (shared slice; do not modify).
func (d *DiGraph) In(u graph.NodeID) []graph.NodeID { return d.in[u] }

// HasArc reports whether u→v exists.
func (d *DiGraph) HasArc(u, v graph.NodeID) bool {
	a := d.out[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// Arc is a scored directed candidate.
type Arc struct {
	From, To graph.NodeID
	Score    float64
}

// Scorer is a directed link prediction metric.
type Scorer interface {
	Name() string
	// Score rates the arc u→v.
	Score(d *DiGraph, u, v graph.NodeID) float64
}

// sortedIntersectionCount counts common elements of two sorted slices.
func sortedIntersectionCount(a, b []graph.NodeID) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// sortedIntersection returns the common elements of two sorted slices.
func sortedIntersection(a, b []graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// The directed metric catalogue.

// TransitiveCN counts length-2 directed paths u→w→v (|Γout(u) ∩ Γin(v)|),
// the directed analogue of Common Neighbors.
type TransitiveCN struct{}

// Name implements Scorer.
func (TransitiveCN) Name() string { return "DCN" }

// Score implements Scorer.
func (TransitiveCN) Score(d *DiGraph, u, v graph.NodeID) float64 {
	return float64(sortedIntersectionCount(d.out[u], d.in[v]))
}

// TransitiveAA is the directed Adamic/Adar: intermediate hubs on u→w→v
// paths are discounted by their total degree.
type TransitiveAA struct{}

// Name implements Scorer.
func (TransitiveAA) Name() string { return "DAA" }

// Score implements Scorer.
func (TransitiveAA) Score(d *DiGraph, u, v graph.NodeID) float64 {
	s := 0.0
	for _, w := range sortedIntersection(d.out[u], d.in[v]) {
		deg := float64(d.OutDegree(w) + d.InDegree(w))
		if deg < 2 {
			deg = 2
		}
		s += 1 / math.Log(deg)
	}
	return s
}

// Reciprocity predicts follow-backs: u→v is likely when v→u exists (the
// dominant microblog link creation mechanism in [43]). Secondary signal:
// shared audience.
type Reciprocity struct{}

// Name implements Scorer.
func (Reciprocity) Name() string { return "Recip" }

// Score implements Scorer.
func (Reciprocity) Score(d *DiGraph, u, v graph.NodeID) float64 {
	s := 0.0
	if d.HasArc(v, u) {
		s = 1
	}
	// Shared-audience tiebreak, scaled below the reciprocity signal.
	shared := sortedIntersectionCount(d.in[u], d.in[v])
	return s + float64(shared)/(1+float64(shared))*0.5
}

// DirectedPA scores by out-degree of the source times in-degree of the
// target: active followers attach to popular followees.
type DirectedPA struct{}

// Name implements Scorer.
func (DirectedPA) Name() string { return "DPA" }

// Score implements Scorer.
func (DirectedPA) Score(d *DiGraph, u, v graph.NodeID) float64 {
	return float64(d.OutDegree(u)) * float64(d.InDegree(v))
}

// Scorers returns the directed metric catalogue.
func Scorers() []Scorer {
	return []Scorer{TransitiveCN{}, TransitiveAA{}, Reciprocity{}, DirectedPA{}}
}

// PredictArcs returns the top-k directed candidates of a scorer. The
// candidate set is every non-arc (u, v) pair reachable by a directed 2-path
// u→w→v plus every unreciprocated arc's reverse — the support sets of the
// catalogue metrics. Tie-breaking matches the undirected machinery.
func PredictArcs(d *DiGraph, s Scorer, k int, seed int64) []Arc {
	type cand struct{ u, v graph.NodeID }
	seen := map[uint64]bool{}
	var cands []cand
	add := func(u, v graph.NodeID) {
		if u == v || d.HasArc(u, v) {
			return
		}
		key := uint64(uint32(u))<<32 | uint64(uint32(v))
		if seen[key] {
			return
		}
		seen[key] = true
		cands = append(cands, cand{u, v})
	}
	n := d.NumNodes()
	for u := 0; u < n; u++ {
		uid := graph.NodeID(u)
		for _, w := range d.out[uid] {
			for _, v := range d.out[w] {
				add(uid, v)
			}
		}
		// Reverse of unreciprocated incoming arcs.
		for _, w := range d.in[uid] {
			add(uid, w)
		}
	}
	top := predict.NewRanker(k, seed)
	scores := map[uint64]float64{}
	for _, c := range cands {
		sc := s.Score(d, c.u, c.v)
		// Encode direction in the ranker by keying on the ordered pair; the
		// ranker canonicalizes (u,v), so disambiguate via the score map.
		key := uint64(uint32(c.u))<<32 | uint64(uint32(c.v))
		scores[key] = sc
		top.Add(c.u, c.v, sc)
	}
	// Recover direction: the ranker returns canonical pairs; emit the
	// direction(s) that were actually scored, preferring the higher score.
	var out []Arc
	for _, p := range top.Result() {
		fwd := uint64(uint32(p.U))<<32 | uint64(uint32(p.V))
		rev := uint64(uint32(p.V))<<32 | uint64(uint32(p.U))
		sf, okF := scores[fwd]
		sr, okR := scores[rev]
		switch {
		case okF && (!okR || sf >= sr):
			out = append(out, Arc{From: p.U, To: p.V, Score: sf})
		case okR:
			out = append(out, Arc{From: p.V, To: p.U, Score: sr})
		}
	}
	return out
}

// Evaluate runs directed prediction on the trace's m-arc snapshot against
// the following delta arcs, returning hits and the random-baseline ratio.
func Evaluate(tr *graph.Trace, m, delta, k int, s Scorer, seed int64) (hits int, ratio float64, err error) {
	if m <= 0 || m+delta > len(tr.Edges) {
		return 0, 0, fmt.Errorf("digraph: window [%d, %d) out of range", m, m+delta)
	}
	d := FromTrace(tr, m)
	truth := map[uint64]bool{}
	n := graph.NodeID(d.NumNodes())
	for _, e := range tr.Edges[m : m+delta] {
		if e.U < n && e.V < n && !d.HasArc(e.U, e.V) {
			truth[uint64(uint32(e.U))<<32|uint64(uint32(e.V))] = true
		}
	}
	if len(truth) == 0 {
		return 0, 0, fmt.Errorf("digraph: no directed ground truth in window")
	}
	if k <= 0 {
		k = len(truth)
	}
	pred := PredictArcs(d, s, k, seed)
	for _, a := range pred {
		if truth[uint64(uint32(a.From))<<32|uint64(uint32(a.To))] {
			hits++
		}
	}
	// Random baseline over ordered non-arc pairs.
	possible := float64(d.NumNodes())*float64(d.NumNodes()-1) - float64(d.NumArcs())
	expected := float64(k) * float64(len(truth)) / possible
	if expected > 0 {
		ratio = float64(hits) / expected
	}
	return hits, ratio, nil
}

package digraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"linkpred/internal/gen"
	"linkpred/internal/graph"
)

// fan is a small directed fixture: 0→1, 0→2, 1→3, 2→3, 3→0.
func fan() *DiGraph {
	return Build(4, []graph.Edge{
		{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 3}, {U: 2, V: 3}, {U: 3, V: 0},
	})
}

func TestBuildDirected(t *testing.T) {
	d := fan()
	if d.NumArcs() != 5 {
		t.Fatalf("arcs = %d, want 5", d.NumArcs())
	}
	if !d.HasArc(0, 1) || d.HasArc(1, 0) {
		t.Error("direction not preserved")
	}
	if d.OutDegree(0) != 2 || d.InDegree(0) != 1 {
		t.Errorf("deg(0) = out %d in %d", d.OutDegree(0), d.InDegree(0))
	}
	if d.OutDegree(3) != 1 || d.InDegree(3) != 2 {
		t.Errorf("deg(3) = out %d in %d", d.OutDegree(3), d.InDegree(3))
	}
	// Duplicates and self loops dropped.
	d2 := Build(2, []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 1}})
	if d2.NumArcs() != 1 {
		t.Errorf("arcs = %d, want 1", d2.NumArcs())
	}
}

func TestDirectedScores(t *testing.T) {
	d := fan()
	// Arc 0→3: paths 0→1→3 and 0→2→3 → DCN = 2.
	if got := (TransitiveCN{}).Score(d, 0, 3); got != 2 {
		t.Errorf("DCN(0→3) = %v, want 2", got)
	}
	// Reverse direction 3→0 exists as an arc... score candidates only for
	// non-arcs; score function itself: DCN(3→1): paths 3→0→1 → 1.
	if got := (TransitiveCN{}).Score(d, 3, 1); got != 1 {
		t.Errorf("DCN(3→1) = %v, want 1", got)
	}
	// DAA discounts by intermediate total degree: w=1 (deg 2), w=2 (deg 2).
	want := 2 / math.Log(2)
	if got := (TransitiveAA{}).Score(d, 0, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("DAA(0→3) = %v, want %v", got, want)
	}
	// Reciprocity: 0→3 where 3→0 exists → >= 1.
	if got := (Reciprocity{}).Score(d, 0, 3); got < 1 {
		t.Errorf("Recip(0→3) = %v, want >= 1", got)
	}
	if got := (Reciprocity{}).Score(d, 1, 2); got >= 1 {
		t.Errorf("Recip(1→2) = %v, want < 1 (no reverse arc)", got)
	}
	// DPA: out(0)=2, in(3)=2.
	if got := (DirectedPA{}).Score(d, 0, 3); got != 4 {
		t.Errorf("DPA(0→3) = %v, want 4", got)
	}
}

func TestPredictArcsContract(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var edges []graph.Edge
	for i := 0; i < 200; i++ {
		edges = append(edges, graph.Edge{U: graph.NodeID(rng.Intn(40)), V: graph.NodeID(rng.Intn(40))})
	}
	d := Build(40, edges)
	for _, s := range Scorers() {
		arcs := PredictArcs(d, s, 15, 1)
		if len(arcs) == 0 {
			t.Errorf("%s: no predictions", s.Name())
		}
		for _, a := range arcs {
			if d.HasArc(a.From, a.To) {
				t.Errorf("%s: predicted existing arc %d→%d", s.Name(), a.From, a.To)
			}
			if a.From == a.To {
				t.Errorf("%s: self arc", s.Name())
			}
		}
		again := PredictArcs(d, s, 15, 1)
		for i := range arcs {
			if arcs[i] != again[i] {
				t.Errorf("%s: non-deterministic", s.Name())
			}
		}
	}
}

func TestReciprocityTopsFollowbacks(t *testing.T) {
	// Star of unreciprocated follows toward node 0: reciprocity should
	// predict the follow-backs 0→i first.
	var edges []graph.Edge
	for i := 1; i <= 10; i++ {
		edges = append(edges, graph.Edge{U: graph.NodeID(i), V: 0})
	}
	d := Build(11, edges)
	arcs := PredictArcs(d, Reciprocity{}, 10, 1)
	if len(arcs) != 10 {
		t.Fatalf("got %d arcs", len(arcs))
	}
	for _, a := range arcs {
		if a.From != 0 {
			t.Errorf("expected follow-back from 0, got %d→%d", a.From, a.To)
		}
	}
}

func TestEvaluateOnTrace(t *testing.T) {
	tr := gen.MustGenerate(gen.YouTube(13).Scaled(0.15))
	m := tr.NumEdges() * 3 / 4
	delta := tr.NumEdges() / 10
	hits, ratio, err := Evaluate(tr, m, delta, 0, TransitiveCN{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hits < 0 {
		t.Fatalf("hits = %d", hits)
	}
	// Directed transitivity should beat random on the subscription trace.
	if ratio <= 1 {
		t.Errorf("DCN directed ratio = %v, want > 1", ratio)
	}
	if _, _, err := Evaluate(tr, 0, 10, 0, TransitiveCN{}, 1); err == nil {
		t.Error("invalid window accepted")
	}
	if _, _, err := Evaluate(tr, tr.NumEdges(), 10, 0, TransitiveCN{}, 1); err == nil {
		t.Error("overrunning window accepted")
	}
}

func TestFromTrace(t *testing.T) {
	tr := gen.MustGenerate(gen.Facebook(5).Scaled(0.05))
	m := tr.NumEdges() / 2
	d := FromTrace(tr, m)
	if d.NumArcs() == 0 || d.NumArcs() > m {
		t.Fatalf("arcs = %d for %d trace edges", d.NumArcs(), m)
	}
	full := FromTrace(tr, tr.NumEdges()+100)
	if full.NumNodes() != tr.NumNodes() {
		t.Errorf("clamped FromTrace nodes = %d", full.NumNodes())
	}
}

// Property: every arc is counted once in out and once in in; degrees sum
// equal; DCN is bounded by min(outdeg(u), indeg(v)).
func TestDiGraphInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(25)
		var edges []graph.Edge
		for i := 0; i < 4*n; i++ {
			edges = append(edges, graph.Edge{U: graph.NodeID(rng.Intn(n)), V: graph.NodeID(rng.Intn(n))})
		}
		d := Build(n, edges)
		outSum, inSum := 0, 0
		for u := 0; u < n; u++ {
			outSum += d.OutDegree(graph.NodeID(u))
			inSum += d.InDegree(graph.NodeID(u))
		}
		if outSum != inSum || outSum != d.NumArcs() {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			cn := (TransitiveCN{}).Score(d, u, v)
			if cn > float64(min(d.OutDegree(u), d.InDegree(v))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node of the hierarchical timing tree. Spans are created with
// StartSpan, propagate through context, and are closed with End. All
// methods are safe on a nil receiver (StartSpan returns nil when telemetry
// is disabled), so instrumented code never branches on the enabled flag.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	durNs    int64 // 0 while open; >= 1 once ended
	children []*Span
}

// spanKey carries the active parent span in a context.
type spanKey struct{}

const (
	// maxRoots and maxChildren bound the recorded tree so a pathological
	// loop cannot grow memory without bound; overflow is counted in
	// obs/spans_dropped instead of silently ignored.
	maxRoots    = 1024
	maxChildren = 4096
)

var (
	rootsMu sync.Mutex
	roots   []*Span

	spansStarted atomic.Int64
)

// StartSpan begins a span named name as a child of the span carried by ctx
// (or as a new root) and returns a derived context carrying it. When
// telemetry is disabled it returns (ctx, nil) and records nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !Enabled() {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now()}
	spansStarted.Add(1)
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		parent.addChild(s)
	} else {
		addRoot(s)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// End closes the span, fixing its duration (clamped to >= 1ns so "ended"
// is distinguishable from "open"). Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.durNs == 0 {
		d := time.Since(s.start).Nanoseconds()
		if d < 1 {
			d = 1
		}
		s.durNs = d
	}
	s.mu.Unlock()
}

// Name returns the span's name (empty for nil spans).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	if len(s.children) < maxChildren {
		s.children = append(s.children, c)
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	GetCounter("obs/spans_dropped").Inc()
}

func addRoot(s *Span) {
	rootsMu.Lock()
	if len(roots) < maxRoots {
		roots = append(roots, s)
		rootsMu.Unlock()
		return
	}
	rootsMu.Unlock()
	GetCounter("obs/spans_dropped").Inc()
}

func resetSpans() {
	rootsMu.Lock()
	roots = nil
	rootsMu.Unlock()
	spansStarted.Store(0)
}

// SpansStarted returns the number of spans created since the last Reset
// (including dropped ones), used by progress logging.
func SpansStarted() int64 { return spansStarted.Load() }

// SpanSnapshot is the JSON form of a span subtree.
type SpanSnapshot struct {
	Name  string `json:"name"`
	Start string `json:"start"`
	// DurNs is the span's wall-clock duration; open spans report the
	// elapsed time so far with Open=true.
	DurNs    int64          `json:"dur_ns"`
	Open     bool           `json:"open,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

func (s *Span) snapshot() SpanSnapshot {
	s.mu.Lock()
	dur, open := s.durNs, false
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	if dur == 0 {
		dur, open = time.Since(s.start).Nanoseconds(), true
	}
	snap := SpanSnapshot{
		Name:  s.name,
		Start: s.start.UTC().Format(time.RFC3339Nano),
		DurNs: dur,
		Open:  open,
	}
	for _, c := range kids {
		snap.Children = append(snap.Children, c.snapshot())
	}
	return snap
}

func snapshotRoots() []SpanSnapshot {
	rootsMu.Lock()
	rs := make([]*Span, len(roots))
	copy(rs, roots)
	rootsMu.Unlock()
	var out []SpanSnapshot
	for _, r := range rs {
		out = append(out, r.snapshot())
	}
	return out
}

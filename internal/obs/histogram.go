package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two histogram buckets: bucket 0
// holds values <= 1, bucket i holds values in [2^(i-1)+1 .. 2^i] (i.e. bit
// length i), which spans the full int64 range — plenty for nanosecond
// latencies and count distributions alike.
const histBuckets = 64

// Histogram is a lock-free distribution of non-negative int64 samples in
// power-of-two buckets. The zero value is ready to use; a nil Histogram
// ignores all operations. Recording costs a handful of uncontended-in-
// practice atomic adds, cheap enough for per-call latency tracking.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	minPlus atomic.Int64 // min+1; 0 means "no samples yet" (samples are clamped >= 0)
	buckets [histBuckets]atomic.Int64
}

func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketHigh returns the inclusive upper bound of bucket b.
func bucketHigh(b int) int64 {
	if b == 0 {
		return 1
	}
	if b >= 63 {
		return 1<<62 + (1<<62 - 1)
	}
	return 1 << b
}

// Observe records one sample; negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.minPlus.Load()
		if cur != 0 && v+1 >= cur {
			break
		}
		if h.minPlus.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

// Time returns a stop function that records the elapsed nanoseconds since
// the call as one sample: `defer h.Time()()`.
func (h *Histogram) Time() func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start).Nanoseconds()) }
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts, interpolating at each bucket's geometric midpoint.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum int64
	for b := 0; b < histBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum > rank {
			lo := int64(0)
			if b > 0 {
				lo = bucketHigh(b-1) + 1
			}
			hi := bucketHigh(b)
			mid := lo + (hi-lo)/2
			if min := h.minPlus.Load() - 1; mid < min {
				mid = min
			}
			if max := h.max.Load(); mid > max {
				mid = max
			}
			return mid
		}
	}
	return h.max.Load()
}

// HistogramBucket is one nonzero bucket of a snapshot: Count samples with
// values <= Le (and greater than the previous bucket's Le).
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a Histogram.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Min     int64             `json:"min"`
	Max     int64             `json:"max"`
	Mean    float64           `json:"mean"`
	P50     int64             `json:"p50"`
	P90     int64             `json:"p90"`
	P95     int64             `json:"p95"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot summarizes the histogram. Concurrent Observe calls may leave the
// summary internally off by a sample; the dump is diagnostic, not a ledger.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
	if s.Count == 0 {
		return s
	}
	s.Min = h.minPlus.Load() - 1
	s.Max = h.max.Load()
	s.Mean = float64(s.Sum) / float64(s.Count)
	s.P50 = h.Quantile(0.50)
	s.P90 = h.Quantile(0.90)
	s.P95 = h.Quantile(0.95)
	s.P99 = h.Quantile(0.99)
	for b := 0; b < histBuckets; b++ {
		if c := h.buckets[b].Load(); c != 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{Le: bucketHigh(b), Count: c})
		}
	}
	return s
}

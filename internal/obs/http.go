package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Handler returns the /metrics HTTP handler. By default it serves the
// telemetry Dump as JSON with Content-Type application/json; with
// ?format=prom it serves the Prometheus text exposition (version 0.0.4)
// with the matching text/plain content type, so standard scrapers and the
// JSON-reading tooling share one endpoint.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r != nil && r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", PromContentType)
			if err := WritePrometheus(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

var publishOnce sync.Once

// PublishExpvar registers the telemetry Dump as the expvar variable
// "linkpred", making it visible on any /debug/vars endpoint. Safe to call
// more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("linkpred", expvar.Func(func() any { return Snapshot() }))
	})
}

// ServeDebug starts an HTTP server on addr exposing the opt-in runtime
// surfaces: /metrics (JSON telemetry dump), /debug/vars (expvar, including
// the published Dump), and /debug/pprof/* (CPU, heap, goroutine, trace
// profiling). It returns after the listener is bound; the server runs until
// the process exits or the returned server is shut down.
func ServeDebug(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: ln.Addr().String(), Handler: mux}
	go srv.Serve(ln)
	return srv, nil
}

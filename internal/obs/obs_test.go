package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// withObs runs the body with telemetry enabled on a clean slate and
// restores the disabled default afterwards.
func withObs(t *testing.T, body func()) {
	t.Helper()
	Reset()
	Enable(true)
	defer func() {
		Enable(false)
		Reset()
	}()
	body()
}

func TestCounterRegistry(t *testing.T) {
	withObs(t, func() {
		GetCounter("a/b").Add(3)
		GetCounter("a/b").Inc()
		if got := GetCounter("a/b").Value(); got != 4 {
			t.Fatalf("counter = %d, want 4", got)
		}
		if _, ok := LookupCounter("missing"); ok {
			t.Fatal("LookupCounter created a counter")
		}
		var nilC *Counter
		nilC.Add(1) // must not panic
		if nilC.Value() != 0 {
			t.Fatal("nil counter has a value")
		}
	})
}

func TestHistogramConcurrent(t *testing.T) {
	withObs(t, func() {
		h := GetHistogram("lat")
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 1; i <= 1000; i++ {
					h.Observe(int64(i * (w + 1)))
				}
			}(w)
		}
		wg.Wait()
		s := h.Snapshot()
		if s.Count != 8000 {
			t.Fatalf("count = %d, want 8000", s.Count)
		}
		if s.Min != 1 || s.Max != 8000 {
			t.Fatalf("min/max = %d/%d, want 1/8000", s.Min, s.Max)
		}
		if s.P50 < s.Min || s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.Max {
			t.Fatalf("quantiles out of order: %+v", s)
		}
		var total int64
		for _, b := range s.Buckets {
			total += b.Count
		}
		if total != s.Count {
			t.Fatalf("bucket total %d != count %d", total, s.Count)
		}
		var nilH *Histogram
		nilH.Observe(1) // must not panic
	})
}

func TestHistogramEdgeValues(t *testing.T) {
	withObs(t, func() {
		h := GetHistogram("edge")
		h.Observe(-5) // clamps to 0
		h.Observe(0)
		h.Observe(1)
		h.Observe(1 << 40)
		s := h.Snapshot()
		if s.Count != 4 || s.Min != 0 || s.Max != 1<<40 {
			t.Fatalf("snapshot = %+v", s)
		}
	})
}

func TestResetClearsEverything(t *testing.T) {
	withObs(t, func() {
		GetCounter("x").Inc()
		GetHistogram("y").Observe(1)
		AddWorkerChunks(2, 5)
		_, sp := StartSpan(context.Background(), "root")
		sp.End()
		Reset()
		d := Snapshot()
		if len(d.Counters) != 0 || len(d.Histograms) != 0 || len(d.Spans) != 0 || d.WorkerChunkClaims != nil {
			t.Fatalf("reset left state behind: %+v", d)
		}
	})
}

func TestDumpJSONRoundTrip(t *testing.T) {
	withObs(t, func() {
		GetCounter("predict/CN/pairs_scored").Add(42)
		GetHistogram("predict/CN/predict_ns").Observe(1234)
		AddWorkerChunks(0, 7)
		AddWorkerChunks(3, 2)
		var buf bytes.Buffer
		if err := WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var d Dump
		if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		if d.Counters["predict/CN/pairs_scored"] != 42 {
			t.Fatalf("counter lost in round trip: %+v", d.Counters)
		}
		if d.Histograms["predict/CN/predict_ns"].Count != 1 {
			t.Fatalf("histogram lost in round trip: %+v", d.Histograms)
		}
		want := []int64{7, 0, 0, 2}
		if len(d.WorkerChunkClaims) != len(want) {
			t.Fatalf("worker claims = %v, want %v", d.WorkerChunkClaims, want)
		}
		for i, w := range want {
			if d.WorkerChunkClaims[i] != w {
				t.Fatalf("worker claims = %v, want %v", d.WorkerChunkClaims, want)
			}
		}
	})
}

func TestHandlerServesDump(t *testing.T) {
	withObs(t, func() {
		GetCounter("served").Inc()
		rec := httptest.NewRecorder()
		Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
		if rec.Code != 200 {
			t.Fatalf("status = %d", rec.Code)
		}
		if !strings.Contains(rec.Body.String(), `"served": 1`) {
			t.Fatalf("body missing counter: %s", rec.Body.String())
		}
	})
}

func TestLogProgress(t *testing.T) {
	withObs(t, func() {
		GetHistogram("predict/CN/predict_ns").Observe(10)
		GetCounter("predict/CN/pairs_scored").Add(99)
		var mu sync.Mutex
		var buf bytes.Buffer
		w := writerFunc(func(p []byte) (int, error) {
			mu.Lock()
			defer mu.Unlock()
			return buf.Write(p)
		})
		stop := LogProgress(5*time.Millisecond, w)
		deadline := time.Now().Add(2 * time.Second)
		for {
			mu.Lock()
			out := buf.String()
			mu.Unlock()
			if strings.Contains(out, "pairs_scored=99") {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("no progress line after 2s: %q", out)
			}
			time.Sleep(5 * time.Millisecond)
		}
		stop()
		stop() // idempotent
	})
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestBootDisabledIsNoop(t *testing.T) {
	Reset()
	Enable(false)
	stop, err := Boot(false, "", 0, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if Enabled() {
		t.Fatal("Boot enabled telemetry without any surface requested")
	}
}

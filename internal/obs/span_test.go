package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	withObs(t, func() {
		ctx, root := StartSpan(context.Background(), "run")
		sctx, child := StartSpan(ctx, "sweep")
		_, leaf := StartSpan(sctx, "predict")
		leaf.End()
		child.End()
		// Sibling of "sweep" under the root.
		_, sib := StartSpan(ctx, "evaluate")
		sib.End()
		root.End()

		d := Snapshot()
		if len(d.Spans) != 1 {
			t.Fatalf("got %d roots, want 1", len(d.Spans))
		}
		r := d.Spans[0]
		if r.Name != "run" || r.Open || r.DurNs <= 0 {
			t.Fatalf("root = %+v", r)
		}
		if len(r.Children) != 2 || r.Children[0].Name != "sweep" || r.Children[1].Name != "evaluate" {
			t.Fatalf("root children = %+v", r.Children)
		}
		sw := r.Children[0]
		if len(sw.Children) != 1 || sw.Children[0].Name != "predict" {
			t.Fatalf("sweep children = %+v", sw.Children)
		}
		if sw.Children[0].DurNs > sw.DurNs || sw.DurNs > r.DurNs {
			t.Fatalf("child durations exceed parents: %+v", r)
		}
	})
}

func TestSpanOpenInSnapshot(t *testing.T) {
	withObs(t, func() {
		_, sp := StartSpan(context.Background(), "open")
		d := Snapshot()
		if len(d.Spans) != 1 || !d.Spans[0].Open || d.Spans[0].DurNs <= 0 {
			t.Fatalf("open span snapshot = %+v", d.Spans)
		}
		sp.End()
		sp.End() // double End keeps first duration
		d2 := Snapshot()
		if d2.Spans[0].Open {
			t.Fatal("ended span still open")
		}
	})
}

func TestSpanDisabledIsNoop(t *testing.T) {
	Reset()
	Enable(false)
	defer Reset()
	ctx, sp := StartSpan(context.Background(), "nope")
	if sp != nil {
		t.Fatal("disabled StartSpan returned a span")
	}
	sp.End() // nil-safe
	if sp.Name() != "" {
		t.Fatal("nil span has a name")
	}
	if FromContext(ctx) != nil {
		t.Fatal("disabled StartSpan attached a span to the context")
	}
	if d := Snapshot(); len(d.Spans) != 0 {
		t.Fatalf("disabled run recorded spans: %+v", d.Spans)
	}
}

// TestSpanConcurrentChildren exercises concurrent child creation under one
// parent; run with -race in CI.
func TestSpanConcurrentChildren(t *testing.T) {
	withObs(t, func() {
		ctx, root := StartSpan(context.Background(), "root")
		const workers, perWorker = 8, 50
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					cctx, c := StartSpan(ctx, fmt.Sprintf("w%d/%d", w, i))
					_, g := StartSpan(cctx, "inner")
					g.End()
					c.End()
				}
			}(w)
		}
		wg.Wait()
		root.End()
		d := Snapshot()
		if got := len(d.Spans[0].Children); got != workers*perWorker {
			t.Fatalf("got %d children, want %d", got, workers*perWorker)
		}
		for _, c := range d.Spans[0].Children {
			if len(c.Children) != 1 || c.Children[0].Name != "inner" {
				t.Fatalf("child %q lost its inner span", c.Name)
			}
		}
	})
}

func TestSpanChildCapDropsAndCounts(t *testing.T) {
	withObs(t, func() {
		ctx, root := StartSpan(context.Background(), "root")
		for i := 0; i < maxChildren+10; i++ {
			_, c := StartSpan(ctx, "c")
			c.End()
		}
		root.End()
		d := Snapshot()
		if got := len(d.Spans[0].Children); got != maxChildren {
			t.Fatalf("got %d children, want cap %d", got, maxChildren)
		}
		if d.Counters["obs/spans_dropped"] != 10 {
			t.Fatalf("spans_dropped = %d, want 10", d.Counters["obs/spans_dropped"])
		}
	})
}

package obs

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"
)

// ProgressLine returns a one-line summary of the run so far: elapsed time
// since start, Predict calls completed, pairs scored, engine chunks
// claimed, spans recorded, and current heap size.
func ProgressLine(start time.Time) string {
	var predicts, pairs int64
	histograms.Range(func(k, v any) bool {
		if strings.HasSuffix(k.(string), "/predict_ns") {
			predicts += v.(*Histogram).Count()
		}
		return true
	})
	counters.Range(func(k, v any) bool {
		if strings.HasSuffix(k.(string), "/pairs_scored") {
			pairs += v.(*Counter).Value()
		}
		return true
	})
	var chunks int64
	if c, ok := LookupCounter("engine/chunks_claimed"); ok {
		chunks = c.Value()
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return fmt.Sprintf("obs: t=%s predicts=%d pairs_scored=%d chunks_claimed=%d spans=%d heap=%dMB",
		time.Since(start).Round(time.Second), predicts, pairs, chunks,
		SpansStarted(), m.HeapAlloc>>20)
}

// LogProgress starts a goroutine writing ProgressLine to w every interval
// until the returned stop function is called. Stop is idempotent.
func LogProgress(interval time.Duration, w io.Writer) (stop func()) {
	start := time.Now()
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				fmt.Fprintln(w, ProgressLine(start))
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// Boot wires the opt-in telemetry surfaces for a cmd binary in one call:
// enables collection when any surface is requested (or force is set),
// starts the debug HTTP server when debugAddr is nonempty, and starts
// periodic progress logging when progress > 0. The returned stop function
// halts progress logging; it is never nil.
func Boot(force bool, debugAddr string, progress time.Duration, logw io.Writer) (stop func(), err error) {
	stop = func() {}
	if !force && debugAddr == "" && progress <= 0 {
		return stop, nil
	}
	Enable(true)
	if debugAddr != "" {
		srv, err := ServeDebug(debugAddr)
		if err != nil {
			return stop, err
		}
		fmt.Fprintf(logw, "obs: debug server on http://%s (/metrics, /debug/pprof)\n", srv.Addr)
	}
	if progress > 0 {
		stop = LogProgress(progress, logw)
	}
	return stop, nil
}

// Package obs is the pipeline's zero-dependency telemetry layer: atomic
// counters, lock-cheap log2-bucket histograms, hierarchical spans, and the
// export surfaces (JSON dump, expvar-style HTTP handler, opt-in pprof
// server, periodic progress logging) the cmd binaries wire up.
//
// Collection is off by default and guarded by a single package-level flag:
// every instrumentation hook in the hot paths reduces to one atomic load
// (or a nil-pointer check) when disabled, so the prediction engine pays no
// measurable cost unless a run opts in. Telemetry only observes — it never
// feeds back into scoring, ranking, or tie-breaking — so enabling it cannot
// perturb the engine's bit-identical deterministic output (proved by
// TestTelemetryPreservesDeterminism in internal/predict).
package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates all collection. Off by default.
var enabled atomic.Bool

// Enable switches telemetry collection on or off. Instrumented code paths
// check Enabled once per operation and skip all recording when off.
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether telemetry collection is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil Counter ignores all operations.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

var (
	counters   sync.Map // string -> *Counter
	histograms sync.Map // string -> *Histogram
)

// GetCounter returns the named counter, creating it on first use. Callers
// on hot paths should check Enabled before calling, both to skip the map
// lookup and to keep disabled runs metric-free.
func GetCounter(name string) *Counter {
	if v, ok := counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// LookupCounter returns the named counter without creating it.
func LookupCounter(name string) (*Counter, bool) {
	v, ok := counters.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Counter), true
}

// GetHistogram returns the named histogram, creating it on first use.
func GetHistogram(name string) *Histogram {
	if v, ok := histograms.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := histograms.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// LookupHistogram returns the named histogram without creating it.
func LookupHistogram(name string) (*Histogram, bool) {
	v, ok := histograms.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Histogram), true
}

// MaxWorkerSlots bounds the per-worker chunk-claim vector. Worker indices
// come from the predict engine, which never exceeds GOMAXPROCS.
const MaxWorkerSlots = 256

// workerChunks[w] counts chunks dynamically claimed by worker slot w across
// all sharded sweeps, the engine's load-imbalance signal.
var workerChunks [MaxWorkerSlots]atomic.Int64

// AddWorkerChunks records n chunk claims for worker slot w.
func AddWorkerChunks(w int, n int64) {
	if w >= 0 && w < MaxWorkerSlots {
		workerChunks[w].Add(n)
	}
}

// Reset clears all counters, gauges (value and callback), histograms,
// rolling windows, worker chunk claims, and recorded spans. It does not
// change the enabled flag. Intended for tests and for separating phases of
// a long-lived process.
func Reset() {
	counters.Range(func(k, _ any) bool { counters.Delete(k); return true })
	histograms.Range(func(k, _ any) bool { histograms.Delete(k); return true })
	gauges.Range(func(k, _ any) bool { gauges.Delete(k); return true })
	gaugeFuncs.Range(func(k, _ any) bool { gaugeFuncs.Delete(k); return true })
	rollings.Range(func(k, _ any) bool { rollings.Delete(k); return true })
	for i := range workerChunks {
		workerChunks[i].Store(0)
	}
	resetSpans()
}

// Dump is the JSON-serializable snapshot of all telemetry: the schema of
// the -metrics-out file and of the /metrics endpoint.
type Dump struct {
	Enabled bool `json:"enabled"`
	// Counters maps metric name to its current value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps metric name to its current value; callback gauges
	// (SetGaugeFunc) are evaluated at snapshot time and merged in.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// Histograms maps metric name to its distribution summary.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	// Rolling maps metric name to its sliding-window summary.
	Rolling map[string]RollingSnapshot `json:"rolling,omitempty"`
	// WorkerChunkClaims[w] is the number of engine chunks claimed by worker
	// slot w (trimmed at the last nonzero slot); skew across slots exposes
	// load imbalance in the parallel scoring engine.
	WorkerChunkClaims []int64 `json:"worker_chunk_claims,omitempty"`
	// Spans holds the root spans of the hierarchical timing tree.
	Spans []SpanSnapshot `json:"spans,omitempty"`
}

// Snapshot captures the current state of every counter, histogram, the
// worker chunk-claim vector, and the span tree.
func Snapshot() *Dump {
	d := &Dump{
		Enabled:    Enabled(),
		Counters:   map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	counters.Range(func(k, v any) bool {
		d.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	histograms.Range(func(k, v any) bool {
		d.Histograms[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	gauges.Range(func(k, v any) bool {
		if d.Gauges == nil {
			d.Gauges = map[string]float64{}
		}
		d.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	gaugeFuncs.Range(func(k, v any) bool {
		if d.Gauges == nil {
			d.Gauges = map[string]float64{}
		}
		d.Gauges[k.(string)] = v.(func() float64)()
		return true
	})
	rollings.Range(func(k, v any) bool {
		if d.Rolling == nil {
			d.Rolling = map[string]RollingSnapshot{}
		}
		d.Rolling[k.(string)] = v.(*Rolling).Snapshot()
		return true
	})
	last := -1
	for i := range workerChunks {
		if workerChunks[i].Load() != 0 {
			last = i
		}
	}
	if last >= 0 {
		d.WorkerChunkClaims = make([]int64, last+1)
		for i := range d.WorkerChunkClaims {
			d.WorkerChunkClaims[i] = workerChunks[i].Load()
		}
	}
	d.Spans = snapshotRoots()
	return d
}

// CounterNames returns the sorted names of all registered counters.
func CounterNames() []string {
	var names []string
	counters.Range(func(k, _ any) bool { names = append(names, k.(string)); return true })
	sort.Strings(names)
	return names
}

// WriteJSON writes the current Dump to w as indented JSON.
func WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the current Dump to path.
func WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Gauge is a float64 value that can move in both directions: queue depths,
// in-flight request counts, rolling accuracy estimates, snapshot ages. The
// zero value is ready to use; a nil Gauge ignores all operations. Reads and
// writes are single atomic word operations, cheap enough for per-request
// paths.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add moves the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

var (
	gauges     sync.Map // string -> *Gauge
	gaugeFuncs sync.Map // string -> func() float64
)

// GetGauge returns the named gauge, creating it on first use. Callers on
// hot paths should check Enabled before calling.
func GetGauge(name string) *Gauge {
	if v, ok := gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// LookupGauge returns the named gauge without creating it.
func LookupGauge(name string) (*Gauge, bool) {
	v, ok := gauges.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Gauge), true
}

// SetGaugeFunc registers a callback gauge: fn is evaluated at every
// Snapshot (and therefore at every /metrics scrape), so the exported value
// is current without anyone pushing updates — the natural shape for
// "seconds since last snapshot publish" or "current queue length".
// Re-registering a name replaces the callback; fn must be safe to call
// concurrently and must not call back into obs.
func SetGaugeFunc(name string, fn func() float64) {
	gaugeFuncs.Store(name, fn)
}

package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Rolling is a sliding-window sample accumulator: it keeps the samples
// observed over the trailing window (bounded by a fixed capacity) and
// reports their count, rate, and quantiles. It complements the cumulative
// Counter/Histogram pair: a cumulative counter needs a scraper to turn two
// readings into a rate, while a Rolling window is readable directly from a
// single /metrics hit — "requests per second right now", "p95 over the last
// minute" — which is what an operator tailing a dump file actually wants.
//
// Recording takes a mutex; at serving-request frequencies (not per-pair
// scoring frequencies) this is cheap. When the capacity fills inside the
// window, the oldest samples are dropped and the snapshot reports a
// clipped window so rates stay honest.
type Rolling struct {
	window time.Duration
	now    func() int64 // nanosecond clock, injectable for tests

	mu    sync.Mutex
	times []int64 // arrival times, circular
	vals  []int64 // sample values, circular
	head  int     // index of oldest live sample
	n     int     // live samples
}

// defaultRollingCap bounds the samples a Rolling window retains.
const defaultRollingCap = 4096

// NewRolling returns a sliding-window accumulator over the given window
// retaining at most capacity samples (0 = default 4096). A nil clock uses
// wall time; tests inject a fake one.
func NewRolling(window time.Duration, capacity int, clock func() int64) *Rolling {
	if window <= 0 {
		window = time.Minute
	}
	if capacity <= 0 {
		capacity = defaultRollingCap
	}
	if clock == nil {
		clock = func() int64 { return time.Now().UnixNano() }
	}
	return &Rolling{
		window: window,
		now:    clock,
		times:  make([]int64, capacity),
		vals:   make([]int64, capacity),
	}
}

// Add records one sample at the current time.
func (r *Rolling) Add(v int64) {
	if r == nil {
		return
	}
	now := r.now()
	r.mu.Lock()
	r.evict(now)
	if r.n == len(r.times) { // capacity full: drop the oldest
		r.head = (r.head + 1) % len(r.times)
		r.n--
	}
	i := (r.head + r.n) % len(r.times)
	r.times[i] = now
	r.vals[i] = v
	r.n++
	r.mu.Unlock()
}

// evict drops samples older than the window. Callers hold r.mu.
func (r *Rolling) evict(now int64) {
	cutoff := now - int64(r.window)
	for r.n > 0 && r.times[r.head] < cutoff {
		r.head = (r.head + 1) % len(r.times)
		r.n--
	}
}

// RollingSnapshot summarizes a sliding window: the samples observed over
// the trailing WindowSeconds, their per-second arrival rate, and value
// quantiles. It appears in the telemetry Dump and, as a family of gauges,
// in the Prometheus exposition.
type RollingSnapshot struct {
	WindowSeconds float64 `json:"window_seconds"`
	Count         int64   `json:"count"`
	Sum           int64   `json:"sum"`
	Rate          float64 `json:"rate"`
	P50           int64   `json:"p50"`
	P95           int64   `json:"p95"`
	P99           int64   `json:"p99"`
}

// Snapshot evicts expired samples and summarizes the live window.
func (r *Rolling) Snapshot() RollingSnapshot {
	if r == nil {
		return RollingSnapshot{}
	}
	now := r.now()
	r.mu.Lock()
	r.evict(now)
	s := RollingSnapshot{WindowSeconds: r.window.Seconds(), Count: int64(r.n)}
	if r.n == 0 {
		r.mu.Unlock()
		return s
	}
	live := make([]int64, r.n)
	for i := 0; i < r.n; i++ {
		live[i] = r.vals[(r.head+i)%len(r.times)]
	}
	// When capacity clipped the window, rate over the clipped span (oldest
	// retained sample to now) rather than the nominal window.
	span := r.window
	if oldest := r.times[r.head]; now-oldest < int64(r.window) && r.n == len(r.times) {
		span = time.Duration(now - oldest)
		if span <= 0 {
			span = time.Nanosecond
		}
	}
	r.mu.Unlock()
	for _, v := range live {
		s.Sum += v
	}
	s.Rate = float64(s.Count) / span.Seconds()
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	q := func(q float64) int64 {
		i := int(q * float64(len(live)))
		if i >= len(live) {
			i = len(live) - 1
		}
		return live[i]
	}
	s.P50, s.P95, s.P99 = q(0.50), q(0.95), q(0.99)
	return s
}

// rollings is the registry of named Rolling windows. Unlike counters it
// also remembers each window's configuration, fixed at first GetRolling.
var rollings sync.Map // string -> *Rolling

// rollingClock lets tests freeze the registry's clock; nil = wall time.
var rollingClock atomic.Pointer[func() int64]

// SetRollingClock overrides the clock used by registry-created Rolling
// windows (for deterministic golden tests); pass nil to restore wall time.
// It does not affect windows already created.
func SetRollingClock(clock func() int64) {
	if clock == nil {
		rollingClock.Store(nil)
		return
	}
	rollingClock.Store(&clock)
}

// GetRolling returns the named sliding window, creating it with the given
// window length on first use (later calls ignore the argument).
func GetRolling(name string, window time.Duration) *Rolling {
	if v, ok := rollings.Load(name); ok {
		return v.(*Rolling)
	}
	var clock func() int64
	if p := rollingClock.Load(); p != nil {
		clock = *p
	}
	v, _ := rollings.LoadOrStore(name, NewRolling(window, 0, clock))
	return v.(*Rolling)
}

// LookupRolling returns the named sliding window without creating it.
func LookupRolling(name string) (*Rolling, bool) {
	v, ok := rollings.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Rolling), true
}
